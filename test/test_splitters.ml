(* Tests for approximate K-splitters (Theorem 5). *)

let solve_and_verify ?(mem = 4096) ?(block = 64) ~seed ~kind spec =
  let ctx = Tu.ctx ~mem ~block () in
  let a = Core.Workload.generate kind ~seed ~n:spec.Core.Problem.n ~block in
  let v = Tu.int_vec ctx a in
  let out = Core.Splitters.solve Tu.icmp v spec in
  let splitters = Em.Vec.Oracle.to_array out in
  Tu.check_ok
    (Format.asprintf "verify %a" Core.Problem.pp_spec spec)
    (Core.Verify.splitters Tu.icmp ~input:a spec splitters);
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use;
  (ctx, a, splitters)

let perm = Core.Workload.Random_perm

let test_right_grounded_basic () =
  ignore
    (solve_and_verify ~seed:1 ~kind:perm { Core.Problem.n = 10_000; k = 16; a = 100; b = 10_000 })

let test_right_grounded_tiny_a () =
  ignore
    (solve_and_verify ~seed:2 ~kind:perm { Core.Problem.n = 10_000; k = 8; a = 2; b = 10_000 })

let test_right_grounded_max_a () =
  ignore
    (solve_and_verify ~seed:3 ~kind:perm { Core.Problem.n = 10_000; k = 10; a = 1_000; b = 10_000 })

let test_right_grounded_sublinear_io () =
  (* With a*K << N the right-grounded algorithm must not even read all of S. *)
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let n = 262_144 in
  let v = Tu.int_vec ctx (Core.Workload.generate perm ~seed:4 ~n ~block:64) in
  let spec = { Core.Problem.n; k = 16; a = 8; b = n } in
  let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
  let out = Core.Splitters.right_grounded Tu.icmp v spec in
  let ios = Em.Stats.ios_since ctx.Em.Ctx.stats snap in
  let one_scan = n / 64 in
  Tu.check_bool
    (Printf.sprintf "sublinear: %d I/Os vs %d for one scan" ios one_scan)
    true
    (ios < one_scan / 8);
  ignore out

let test_left_grounded_basic () =
  ignore
    (solve_and_verify ~seed:5 ~kind:perm { Core.Problem.n = 10_000; k = 16; a = 0; b = 1_000 })

let test_left_grounded_padding () =
  (* K much larger than ceil(n/b): most splitters are padding. *)
  ignore
    (solve_and_verify ~seed:6 ~kind:perm { Core.Problem.n = 10_000; k = 64; a = 0; b = 5_000 })

let test_left_grounded_b_half () =
  ignore
    (solve_and_verify ~seed:7 ~kind:perm { Core.Problem.n = 10_000; k = 4; a = 0; b = 5_000 })

let test_two_sided_easy_case () =
  (* a >= n/2K triggers the even-quantile shortcut. *)
  ignore
    (solve_and_verify ~seed:8 ~kind:perm { Core.Problem.n = 10_000; k = 10; a = 600; b = 1_500 })

let test_two_sided_hard_case () =
  (* a < n/2K and b > 2n/K: the K' low/high split. *)
  ignore
    (solve_and_verify ~seed:9 ~kind:perm { Core.Problem.n = 10_000; k = 10; a = 100; b = 4_000 })

let test_two_sided_extreme_slack () =
  ignore
    (solve_and_verify ~seed:10 ~kind:perm { Core.Problem.n = 10_000; k = 100; a = 1; b = 9_000 })

let test_unconstrained () =
  ignore
    (solve_and_verify ~seed:11 ~kind:perm { Core.Problem.n = 1_000; k = 10; a = 0; b = 1_000 })

let test_k_equals_one () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:12 100) in
  let out = Core.Splitters.solve Tu.icmp v { Core.Problem.n = 100; k = 1; a = 0; b = 100 } in
  Tu.check_int "no splitters" 0 (Em.Vec.length out)

let test_exact_quantile_spec () =
  (* a = b = n/k: the fully balanced case. *)
  ignore (solve_and_verify ~seed:13 ~kind:perm (Core.Problem.even_spec ~n:10_000 ~k:10))

let test_workload_sweep () =
  List.iter
    (fun kind ->
      if Core.Workload.distinct_ranks kind then begin
        ignore (solve_and_verify ~seed:14 ~kind { Core.Problem.n = 8_192; k = 8; a = 100; b = 4_000 });
        ignore (solve_and_verify ~seed:15 ~kind { Core.Problem.n = 8_192; k = 8; a = 0; b = 2_048 });
        ignore (solve_and_verify ~seed:16 ~kind { Core.Problem.n = 8_192; k = 8; a = 64; b = 8_192 })
      end)
    Core.Workload.all_kinds

let test_spec_mismatch () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:17 100) in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Splitters: spec.n does not match the input length")
    (fun () ->
      ignore (Core.Splitters.solve Tu.icmp v { Core.Problem.n = 99; k = 2; a = 0; b = 99 }))

let suite =
  [
    Alcotest.test_case "right-grounded: basic" `Quick test_right_grounded_basic;
    Alcotest.test_case "right-grounded: a = 2" `Quick test_right_grounded_tiny_a;
    Alcotest.test_case "right-grounded: a = n/k" `Quick test_right_grounded_max_a;
    Alcotest.test_case "right-grounded: sublinear I/O" `Quick test_right_grounded_sublinear_io;
    Alcotest.test_case "left-grounded: basic" `Quick test_left_grounded_basic;
    Alcotest.test_case "left-grounded: heavy padding" `Quick test_left_grounded_padding;
    Alcotest.test_case "left-grounded: b = n/2" `Quick test_left_grounded_b_half;
    Alcotest.test_case "two-sided: shortcut case" `Quick test_two_sided_easy_case;
    Alcotest.test_case "two-sided: K' split case" `Quick test_two_sided_hard_case;
    Alcotest.test_case "two-sided: extreme slack" `Quick test_two_sided_extreme_slack;
    Alcotest.test_case "unconstrained" `Quick test_unconstrained;
    Alcotest.test_case "k = 1" `Quick test_k_equals_one;
    Alcotest.test_case "exact quantile spec" `Quick test_exact_quantile_spec;
    Alcotest.test_case "workload sweep" `Quick test_workload_sweep;
    Alcotest.test_case "spec mismatch" `Quick test_spec_mismatch;
  ]
