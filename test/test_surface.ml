(* API-surface tests: direct coverage for public functions that the larger
   suites only exercise indirectly. *)

let test_scan_prefix () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let v = Tu.int_vec ctx (Array.init 100 (fun i -> i)) in
  let p = Emalg.Scan.prefix v 37 in
  Tu.check_int_array "first 37" (Array.init 37 (fun i -> i)) (Em.Vec.Oracle.to_array p);
  let all = Emalg.Scan.prefix v 1_000 in
  Tu.check_int "clamped to length" 100 (Em.Vec.length all);
  let none = Emalg.Scan.prefix v 0 in
  Tu.check_int "empty prefix" 0 (Em.Vec.length none);
  Alcotest.check_raises "negative" (Invalid_argument "Scan.prefix: negative count")
    (fun () -> ignore (Emalg.Scan.prefix v (-1)))

let test_scan_count () =
  let ctx = Tu.ctx () in
  let v = Tu.int_vec ctx (Array.init 50 (fun i -> i)) in
  Tu.check_int "evens" 25 (Emalg.Scan.count (fun x -> x mod 2 = 0) v);
  Tu.check_int "none" 0 (Emalg.Scan.count (fun x -> x > 100) v)

let test_merge_many_runs () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let nruns = 20 in
  let runs =
    List.init nruns (fun r -> Tu.int_vec ctx (Array.init 50 (fun i -> (i * nruns) + r)))
  in
  let merged = Emalg.Merge.merge Tu.icmp runs in
  Tu.check_int_array "perfect interleave" (Array.init (50 * nruns) (fun i -> i))
    (Em.Vec.Oracle.to_array merged)

let test_merge_with_empty_runs () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let runs =
    [ Tu.int_vec ctx [| 1; 5 |]; Tu.int_vec ctx [||]; Tu.int_vec ctx [| 2; 3 |] ]
  in
  Tu.check_int_array "empties skipped" [| 1; 2; 3; 5 |]
    (Em.Vec.Oracle.to_array (Emalg.Merge.merge Tu.icmp runs))

let test_run_formation_shapes () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let n = 1_000 in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:1 n) in
  let runs = Emalg.External_sort.run_formation Tu.icmp v in
  let load = 256 - 32 in
  Tu.check_int "run count" ((n + load - 1) / load) (List.length runs);
  List.iter
    (fun r ->
      Tu.check_bool "each run sorted" true
        (Emalg.Mem_sort.is_sorted Tu.icmp (Em.Vec.Oracle.to_array r)))
    runs;
  let merged = Emalg.External_sort.merge_passes Tu.icmp runs in
  Tu.check_int "merge_passes keeps everything" n (Em.Vec.length merged)

let test_vec_of_blocks_validation () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let v = Tu.int_vec ctx (Array.init 40 (fun i -> i)) in
  let ids = Em.Vec.block_ids v in
  let rebuilt = Em.Vec.of_blocks ctx ids 40 in
  Tu.check_int_array "rebuilt" (Em.Vec.Oracle.to_array v) (Em.Vec.Oracle.to_array rebuilt);
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Vec.of_blocks: block count does not match length")
    (fun () -> ignore (Em.Vec.of_blocks ctx ids 100))

let test_writer_push_array () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let v =
    Em.Writer.with_writer ctx (fun w ->
        Em.Writer.push_array w [| 1; 2 |];
        Em.Writer.push_array w [||];
        Em.Writer.push_array w [| 3 |])
  in
  Tu.check_int_array "concatenated" [| 1; 2; 3 |] (Em.Vec.Oracle.to_array v)

let test_pretty_printers () =
  let p = Em.Params.with_disks (Tu.params ~mem:64 ~block:8 ()) 1 in
  Alcotest.(check string) "params" "{ M = 64; B = 8 }" (Format.asprintf "%a" Em.Params.pp p);
  Alcotest.(check string) "params (multi-disk)" "{ M = 64; B = 8; D = 4 }"
    (Format.asprintf "%a" Em.Params.pp (Em.Params.with_disks p 4));
  let s = Em.Stats.create () in
  s.Em.Stats.reads <- 3;
  s.Em.Stats.writes <- 2;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Tu.check_bool "stats pp mentions ios" true
    (contains (Format.asprintf "%a" Em.Stats.pp s) "ios = 5");
  Alcotest.(check string) "variant" "two-sided"
    (Format.asprintf "%a" Core.Problem.pp_variant Core.Problem.Two_sided);
  Alcotest.(check string) "spec" "{ n = 10; k = 2; a = 1; b = 9 }"
    (Format.asprintf "%a" Core.Problem.pp_spec { Core.Problem.n = 10; k = 2; a = 1; b = 9 })

let test_histogram_pp () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:2 100) in
  let h = Quantile.Histogram.build Tu.icmp v ~buckets:4 in
  let rendered = Format.asprintf "%a" (Quantile.Histogram.pp Format.pp_print_int) h in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Tu.check_bool "mentions bucket count" true (contains rendered "4 buckets")

let test_workload_names () =
  Alcotest.(check string) "pi-hard" "pi-hard" (Core.Workload.kind_name Core.Workload.Pi_hard);
  Alcotest.(check string) "zipf" "zipf-1.5" (Core.Workload.kind_name (Core.Workload.Zipf 1.5));
  Alcotest.(check string) "few" "few-distinct-3"
    (Core.Workload.kind_name (Core.Workload.Few_distinct 3))

let test_bounds_guards () =
  let p = Tu.params ~mem:4096 ~block:64 () in
  (* lg floors at 1 even for tiny arguments; scan/sort sane at n = 0. *)
  Alcotest.(check (float 1e-9)) "scan 0" 0. (Core.Bounds.scan p ~n:0);
  Tu.check_bool "sort 0 finite" true (Float.is_finite (Core.Bounds.sort p ~n:0))

let test_exact_quantiles_guards () =
  Alcotest.check_raises "phi 0"
    (Invalid_argument "Exact_quantiles.phi_quantile: phi must be in (0, 1]")
    (fun () -> ignore (Quantile.Exact_quantiles.phi_quantile Tu.icmp [| 1 |] ~phi:0.));
  Alcotest.check_raises "empty"
    (Invalid_argument "Exact_quantiles.phi_quantile: empty array")
    (fun () -> ignore (Quantile.Exact_quantiles.phi_quantile Tu.icmp [||] ~phi:0.5))

let suite =
  [
    Alcotest.test_case "scan: prefix" `Quick test_scan_prefix;
    Alcotest.test_case "scan: count" `Quick test_scan_count;
    Alcotest.test_case "merge: 20 runs" `Quick test_merge_many_runs;
    Alcotest.test_case "merge: empty runs" `Quick test_merge_with_empty_runs;
    Alcotest.test_case "external_sort: run formation" `Quick test_run_formation_shapes;
    Alcotest.test_case "vec: of_blocks" `Quick test_vec_of_blocks_validation;
    Alcotest.test_case "writer: push_array" `Quick test_writer_push_array;
    Alcotest.test_case "pretty printers" `Quick test_pretty_printers;
    Alcotest.test_case "histogram pp" `Quick test_histogram_pp;
    Alcotest.test_case "workload names" `Quick test_workload_names;
    Alcotest.test_case "bounds guards" `Quick test_bounds_guards;
    Alcotest.test_case "exact quantiles guards" `Quick test_exact_quantiles_guards;
  ]
