(* Geometry stress: every algorithm must work at the minimum supported
   machine (M = 8B, B = 4), at skewed geometries (huge B relative to M), and
   reject anything below the minimum with a clear error. *)

let geometries = [ (32, 4); (64, 8); (512, 64); (8_192, 1_024) ]

let run_everything ~mem ~block ~seed =
  let ctx = Tu.ctx ~mem ~block () in
  let n = 2_000 in
  let a = Tu.random_perm ~seed n in
  let v = Tu.int_vec ctx a in
  let what = Printf.sprintf "M=%d B=%d" mem block in
  (* selection *)
  let median = Emalg.Em_select.select Tu.icmp v ~rank:(n / 2) in
  Tu.check_int (what ^ ": median") ((n / 2) - 1) median;
  (* sort *)
  let sorted = Emalg.External_sort.sort Tu.icmp v in
  Tu.check_bool (what ^ ": sorted") true
    (Emalg.Mem_sort.is_sorted Tu.icmp (Em.Vec.Oracle.to_array sorted));
  Em.Vec.free sorted;
  (* multi-select *)
  let ranks = [| 1; n / 3; n |] in
  let results = Core.Multi_select.select Tu.icmp v ~ranks in
  Tu.check_ok (what ^ ": multi-select")
    (Core.Verify.multi_select Tu.icmp ~input:a ~ranks results);
  (* splitters, all variants *)
  List.iter
    (fun spec ->
      let out = Core.Splitters.solve Tu.icmp v spec in
      Tu.check_ok
        (Format.asprintf "%s: splitters %a" what Core.Problem.pp_spec spec)
        (Core.Verify.splitters Tu.icmp ~input:a spec (Em.Vec.Oracle.to_array out));
      Em.Vec.free out)
    [
      { Core.Problem.n; k = 4; a = 50; b = n };
      { Core.Problem.n; k = 4; a = 0; b = n / 2 };
      { Core.Problem.n; k = 4; a = 100; b = n / 2 };
    ];
  (* partitioning *)
  let spec = { Core.Problem.n; k = 5; a = 100; b = n } in
  let parts = Core.Partitioning.solve Tu.icmp v spec in
  Tu.check_ok (what ^ ": partitioning")
    (Core.Verify.partitioning Tu.icmp ~input:a spec (Array.map Em.Vec.Oracle.to_array parts));
  Array.iter Em.Vec.free parts;
  Tu.check_int (what ^ ": ledger drained") 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use

let test_all_geometries () =
  List.iteri (fun i (mem, block) -> run_everything ~mem ~block ~seed:(100 + i)) geometries

let test_minimum_rejected () =
  (* M = 2B is a legal machine but below what the algorithms support. *)
  let ctx = Tu.ctx ~mem:32 ~block:16 () in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:1 100) in
  Alcotest.check_raises "M < 8B rejected"
    (Invalid_argument "emalg: algorithms require M >= 8B")
    (fun () -> ignore (Emalg.External_sort.sort Tu.icmp v));
  let ctx2 = Tu.ctx ~mem:16 ~block:2 () in
  let v2 = Tu.int_vec ctx2 (Tu.random_perm ~seed:2 100) in
  Alcotest.check_raises "B < 4 rejected"
    (Invalid_argument "emalg: algorithms require a block size B >= 4")
    (fun () -> ignore (Emalg.External_sort.sort Tu.icmp v2))

let test_load_caps_positive () =
  List.iter
    (fun (mem, block) ->
      let ctx = Tu.ctx ~mem ~block () in
      Tu.check_bool "half_load positive" true (Emalg.Layout.half_load ctx > 0);
      Tu.check_bool "big_load >= half_load" true
        (Emalg.Layout.big_load ctx >= Emalg.Layout.half_load ctx);
      Tu.check_bool "big_load < M" true (Emalg.Layout.big_load ctx < mem))
    geometries

let test_tiny_inputs_everywhere () =
  (* n in {1, 2, 3} through every public entry point. *)
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  List.iter
    (fun n ->
      let a = Tu.random_perm ~seed:n n in
      let v = Tu.int_vec ctx a in
      Tu.check_int "select rank 1" (Tu.sorted_copy a).(0)
        (Emalg.Em_select.select Tu.icmp v ~rank:1);
      let out =
        Core.Splitters.solve Tu.icmp v { Core.Problem.n; k = 1; a = 0; b = n }
      in
      Tu.check_int "k=1 splitters" 0 (Em.Vec.length out);
      let parts =
        Core.Partitioning.solve Tu.icmp v { Core.Problem.n; k = n; a = 1; b = 1 }
      in
      Tu.check_int "k=n partitioning" n (Array.length parts);
      Array.iter (fun p -> Tu.check_int "singleton" 1 (Em.Vec.length p)) parts)
    [ 1; 2; 3 ]

let suite =
  [
    Alcotest.test_case "full stack at 4 geometries" `Quick test_all_geometries;
    Alcotest.test_case "below-minimum geometry rejected" `Quick test_minimum_rejected;
    Alcotest.test_case "load caps sane" `Quick test_load_caps_positive;
    Alcotest.test_case "tiny inputs" `Quick test_tiny_inputs_everywhere;
  ]
