(* Tests for the metrics registry: registration semantics, histogram
   bucket boundaries and quantile estimates, and exact exporter output. *)

let feps = Alcotest.float 1e-9

let test_counter_basics () =
  let reg = Em.Metrics.create () in
  let c = Em.Metrics.counter reg ~help:"test" "widgets_total" in
  Tu.check_int "starts at zero" 0 (Em.Metrics.counter_value c);
  Em.Metrics.incr c;
  Em.Metrics.incr ~by:5 c;
  Tu.check_int "accumulates" 6 (Em.Metrics.counter_value c);
  (match Em.Metrics.incr ~by:(-1) c with
  | () -> Alcotest.fail "negative increment must raise"
  | exception Invalid_argument _ -> ());
  Tu.check_int "unchanged after rejected incr" 6 (Em.Metrics.counter_value c)

let test_find_or_register () =
  let reg = Em.Metrics.create () in
  let a = Em.Metrics.counter reg "hits" in
  let b = Em.Metrics.counter reg "hits" in
  Em.Metrics.incr a;
  Tu.check_int "same (name, labels) is the same metric" 1 (Em.Metrics.counter_value b);
  let l1 = Em.Metrics.counter reg ~labels:[ ("x", "1"); ("y", "2") ] "hits" in
  let l2 = Em.Metrics.counter reg ~labels:[ ("y", "2"); ("x", "1") ] "hits" in
  Em.Metrics.incr l1;
  Tu.check_int "label order does not matter" 1 (Em.Metrics.counter_value l2);
  Tu.check_int "labelled stream is separate" 1 (Em.Metrics.counter_value a);
  (match Em.Metrics.gauge reg "hits" with
  | _ -> Alcotest.fail "kind mismatch must raise"
  | exception Invalid_argument _ -> ());
  match Em.Metrics.counter reg "bad name!" with
  | _ -> Alcotest.fail "invalid metric name must raise"
  | exception Invalid_argument _ -> ()

let test_gauge () =
  let reg = Em.Metrics.create () in
  let g = Em.Metrics.gauge reg "level" in
  Alcotest.check feps "starts at zero" 0. (Em.Metrics.gauge_value g);
  Em.Metrics.set g 4.5;
  Em.Metrics.add g 1.5;
  Alcotest.check feps "set + add" 6. (Em.Metrics.gauge_value g)

let test_histogram_buckets () =
  let reg = Em.Metrics.create () in
  let h = Em.Metrics.histogram reg ~base:2. "latency" in
  (* Bucket 0 is (-inf, 1]; bucket i is (2^(i-1), 2^i]: boundary values
     land in the lower bucket, boundary + epsilon in the next one. *)
  List.iter (Em.Metrics.observe h) [ 0.5; 1.0; 2.0; 2.5; 4.0; 4.1; 100. ];
  Tu.check_int "count" 7 (Em.Metrics.hist_count h);
  Alcotest.check feps "sum" 114.1 (Em.Metrics.hist_sum h);
  let buckets = Em.Metrics.hist_buckets h in
  let cum le =
    match List.assoc_opt le buckets with
    | Some c -> c
    | None -> Alcotest.failf "no bucket with upper boundary %g" le
  in
  Tu.check_int "<= 1 holds 0.5 and 1.0" 2 (cum 1.);
  Tu.check_int "<= 2 adds the 2.0 sample" 3 (cum 2.);
  Tu.check_int "<= 4 adds 2.5 and 4.0" 5 (cum 4.);
  Tu.check_int "<= 8 adds 4.1" 6 (cum 8.);
  Tu.check_int "<= 128 adds 100" 7 (cum 128.);
  match Em.Metrics.histogram reg ~base:1. "bad_base" with
  | _ -> Alcotest.fail "base <= 1 must raise"
  | exception Invalid_argument _ -> ()

let test_quantiles () =
  let reg = Em.Metrics.create () in
  let empty = Em.Metrics.histogram reg "empty" in
  Tu.check_bool "empty histogram -> nan" true
    (Float.is_nan (Em.Metrics.quantile empty 0.5));
  let one = Em.Metrics.histogram reg "one" in
  Em.Metrics.observe one 3.;
  Alcotest.check feps "one sample is exact at any q" 3. (Em.Metrics.quantile one 0.);
  Alcotest.check feps "one sample is exact at median" 3. (Em.Metrics.quantile one 0.5);
  Alcotest.check feps "one sample is exact at max" 3. (Em.Metrics.quantile one 1.);
  let h = Em.Metrics.histogram reg "spread" in
  List.iter (Em.Metrics.observe h) [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. ];
  (* Every sample sits exactly on a bucket boundary, so the rank-based
     estimate is exact here. *)
  Alcotest.check feps "q=0.5 -> 4th of 8 samples" 8. (Em.Metrics.quantile h 0.5);
  Alcotest.check feps "q=1 -> max" 128. (Em.Metrics.quantile h 1.);
  Alcotest.check feps "q=0 -> clamped to min" 1. (Em.Metrics.quantile h 0.);
  let skew = Em.Metrics.histogram reg "skew" in
  List.iter (Em.Metrics.observe skew) [ 5.; 5.; 5.; 1000. ];
  (* 5 lives in the (4, 8] bucket: the estimate is its upper boundary,
     within one bucket factor of the true value. *)
  Alcotest.check feps "median within one bucket factor" 8.
    (Em.Metrics.quantile skew 0.5);
  Alcotest.check feps "tail clamped to observed max" 1000.
    (Em.Metrics.quantile skew 1.);
  match Em.Metrics.quantile h 1.5 with
  | _ -> Alcotest.fail "q outside [0, 1] must raise"
  | exception Invalid_argument _ -> ()

(* Quantiles under a non-default bucket base: coarser buckets shift the
   rank estimate to the wider boundary, but the [min, max] clamp still
   pins the extremes to observed samples. *)
let test_quantile_non_default_base () =
  let reg = Em.Metrics.create () in
  let h = Em.Metrics.histogram reg ~base:10. "coarse" in
  List.iter (Em.Metrics.observe h) [ 2.; 3.; 50.; 700. ];
  (* 2 and 3 share the (1, 10] bucket; 50 is in (10, 100]; 700 in
     (100, 1000].  Rank 2 of 4 lands in the first bucket: estimate is its
     upper boundary. *)
  Alcotest.check feps "median at the coarse bucket boundary" 10.
    (Em.Metrics.quantile h 0.5);
  (* q=0 is the first non-empty bucket's boundary — here above both small
     samples, so the min clamp does not bite. *)
  Alcotest.check feps "q=0 reports the first coarse boundary" 10.
    (Em.Metrics.quantile h 0.);
  Alcotest.check feps "q=1 clamps to observed max" 700. (Em.Metrics.quantile h 1.)

(* Values far beyond any precomputed boundary still bucket, export and
   clamp without overflow. *)
let test_very_large_values () =
  let reg = Em.Metrics.create () in
  let h = Em.Metrics.histogram reg ~base:2. "huge" in
  List.iter (Em.Metrics.observe h) [ 1.; 1e300 ];
  Tu.check_int "both samples counted" 2 (Em.Metrics.hist_count h);
  Alcotest.check feps "max clamps to the huge sample" 1e300
    (Em.Metrics.quantile h 1.);
  Alcotest.check feps "min clamps to the small sample" 1. (Em.Metrics.quantile h 0.);
  let m = Em.Metrics.quantile h 0.5 in
  Tu.check_bool "median is finite" true (Float.is_finite m);
  Tu.check_bool "median is bracketed by the samples" true (m >= 1. && m <= 1e300);
  Tu.check_bool "export stays well-formed" true
    (String.length (Em.Metrics.to_prometheus reg) > 0)

(* Property: for any sample set, quantile 1.0 is exactly the observed
   maximum (the clamp, not a bucket boundary). *)
let prop_quantile_one_is_max =
  let gen =
    let open QCheck2.Gen in
    let* samples = list_size (int_range 1 60) (float_range 0.001 1e6) in
    let* base = float_range 1.1 16. in
    return (samples, base)
  in
  Tu.qcheck_case ~count:200 "quantile 1.0 = observed max" gen (fun (samples, base) ->
      let reg = Em.Metrics.create () in
      let h = Em.Metrics.histogram reg ~base "h" in
      List.iter (Em.Metrics.observe h) samples;
      let max_obs = List.fold_left Float.max neg_infinity samples in
      Em.Metrics.quantile h 1.0 = max_obs)

let test_nan_observe_raises () =
  let reg = Em.Metrics.create () in
  let h = Em.Metrics.histogram reg "h" in
  match Em.Metrics.observe h Float.nan with
  | () -> Alcotest.fail "NaN observation must raise"
  | exception Invalid_argument _ -> ()

let test_prometheus_export () =
  let reg = Em.Metrics.create ~namespace:"t" () in
  (* Register in non-sorted order: export must still be canonical. *)
  let g = Em.Metrics.gauge reg ~help:"A level" "level" in
  Em.Metrics.set g 2.5;
  let c = Em.Metrics.counter reg ~labels:[ ("kind", "b") ] "hits_total" in
  Em.Metrics.incr ~by:3 c;
  (* Help is taken from the first-sorted stream of the name (kind="a"). *)
  let c2 = Em.Metrics.counter reg ~help:"Hits" ~labels:[ ("kind", "a") ] "hits_total" in
  Em.Metrics.incr c2;
  let expected =
    String.concat "\n"
      [
        "# HELP t_hits_total Hits";
        "# TYPE t_hits_total counter";
        "t_hits_total{kind=\"a\"} 1";
        "t_hits_total{kind=\"b\"} 3";
        "# HELP t_level A level";
        "# TYPE t_level gauge";
        "t_level 2.5";
        "";
      ]
  in
  Alcotest.(check string) "canonical prom text" expected (Em.Metrics.to_prometheus reg)

let test_prometheus_histogram_export () =
  let reg = Em.Metrics.create ~namespace:"t" () in
  let h = Em.Metrics.histogram reg ~help:"Sizes" "sz" in
  List.iter (Em.Metrics.observe h) [ 1.; 3. ];
  let expected =
    String.concat "\n"
      [
        "# HELP t_sz Sizes";
        "# TYPE t_sz histogram";
        "t_sz_bucket{le=\"1\"} 1";
        "t_sz_bucket{le=\"2\"} 1";
        "t_sz_bucket{le=\"4\"} 2";
        "t_sz_bucket{le=\"+Inf\"} 2";
        "t_sz_sum 4";
        "t_sz_count 2";
        "";
      ]
  in
  Alcotest.(check string) "histogram prom text" expected (Em.Metrics.to_prometheus reg)

let test_json_export_canonical () =
  let make order =
    let reg = Em.Metrics.create ~namespace:"t" () in
    List.iter
      (fun (name, labels, v) ->
        Em.Metrics.set (Em.Metrics.gauge reg ~labels name) v)
      order;
    Em.Metrics.to_json reg
  in
  let a =
    make [ ("z", [], 1.); ("a", [ ("k", "v") ], 2.); ("a", [ ("k", "u") ], 3.) ]
  in
  let b =
    make [ ("a", [ ("k", "u") ], 3.); ("z", [], 1.); ("a", [ ("k", "v") ], 2.) ]
  in
  Alcotest.(check string) "registration order is invisible" a b;
  Tu.check_bool "single line + trailing newline" true
    (String.length a > 0
    && a.[String.length a - 1] = '\n'
    && not (String.contains (String.sub a 0 (String.length a - 1)) '\n'))

let test_publish_stats () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let v = Tu.int_vec ctx (Array.init 160 (fun i -> i)) in
  Em.Phase.with_label ctx "copying" (fun () -> ignore (Emalg.Scan.copy v));
  let reg = Em.Metrics.create () in
  Em.Metrics.publish_stats reg ctx.Em.Ctx.stats;
  let g name = Em.Metrics.gauge_value (Em.Metrics.gauge reg name) in
  Alcotest.check feps "ios_total matches stats"
    (float_of_int (Em.Stats.ios ctx.Em.Ctx.stats))
    (g "ios_total");
  Alcotest.check feps "phase gauge carries the path label"
    (float_of_int (List.assoc "copying" (Em.Phase.report ctx)))
    (Em.Metrics.gauge_value
       (Em.Metrics.gauge reg ~labels:[ ("path", "copying") ] "phase_ios"))

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "find-or-register semantics" `Quick test_find_or_register;
    Alcotest.test_case "gauge set/add" `Quick test_gauge;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_buckets;
    Alcotest.test_case "quantile estimates" `Quick test_quantiles;
    Alcotest.test_case "quantile non-default base" `Quick test_quantile_non_default_base;
    Alcotest.test_case "very large values" `Quick test_very_large_values;
    prop_quantile_one_is_max;
    Alcotest.test_case "NaN observation raises" `Quick test_nan_observe_raises;
    Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
    Alcotest.test_case "prometheus histogram export" `Quick
      test_prometheus_histogram_export;
    Alcotest.test_case "json export is canonical" `Quick test_json_export_canonical;
    Alcotest.test_case "publish_stats" `Quick test_publish_stats;
  ]
