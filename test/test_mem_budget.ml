(* Property test: no algorithm entry point ever exceeds the memory budget.

   [Mem.charge] already raises on overflow, so this gate catches both an
   outright budget violation (the run raises [Memory_exceeded]) and any
   future code path that sidesteps the ledger yet still reports a peak above
   M.  Every entry point is exercised across several workload kinds and two
   machine geometries. *)

open QCheck2

let geometries = [ (256, 16); (2048, 64) ]

let kinds =
  [
    Core.Workload.Random_perm;
    Core.Workload.Sorted;
    Core.Workload.Organ_pipe;
    Core.Workload.Few_distinct 7;
  ]

(* Each entry point runs on a fresh machine over vector [v]. *)
let entry_points n =
  let k = min 8 (max 2 (n / 16)) in
  let spec_right = { Core.Problem.n; k; a = min 2 (n / k); b = n } in
  let spec_left = { Core.Problem.n; k; a = 0; b = max ((n + k - 1) / k) (n / 2) } in
  let ranks = [| 1; max 1 (n / 2); n |] in
  let sizes =
    let half = n / 2 in
    if half = 0 then [| n |] else [| half; n - half |]
  in
  [
    ("splitters right", fun cmp v -> ignore (Core.Splitters.solve cmp v spec_right));
    ("splitters left", fun cmp v -> ignore (Core.Splitters.solve cmp v spec_left));
    ("partitioning right", fun cmp v -> ignore (Core.Partitioning.solve cmp v spec_right));
    ("partitioning left", fun cmp v -> ignore (Core.Partitioning.solve cmp v spec_left));
    ("multi-select", fun cmp v -> ignore (Core.Multi_select.select cmp v ~ranks));
    ("multi-partition", fun cmp v -> ignore (Core.Multi_partition.partition_sizes cmp v ~sizes));
    ("quantiles", fun cmp v -> ignore (Core.Splitters.exact_quantiles cmp v ~k));
    ( "reduction",
      fun cmp v -> ignore (Core.Reduction.precise_by_approximate cmp v ~chunk:(max 1 (n / 3))) );
    ("sort baseline", fun cmp v -> ignore (Core.Baseline.splitters cmp v spec_right));
  ]

let check_one ~mem ~block kind ~seed ~n (name, run) =
  let ctx : int Em.Ctx.t = Em.Ctx.create (Em.Params.create ~mem ~block) in
  let v = Core.Workload.vec ctx kind ~seed ~n in
  let cmp = Em.Ctx.counted ctx Tu.icmp in
  (try run cmp v with
  | Em.Mem.Memory_exceeded { requested; in_use; capacity } ->
      Test.fail_reportf "%s (M=%d B=%d %s n=%d): charged %d with %d/%d in use" name mem block
        (Core.Workload.kind_name kind) n requested in_use capacity);
  let peak = ctx.Em.Ctx.stats.Em.Stats.mem_peak in
  if peak > mem then
    Test.fail_reportf "%s (M=%d B=%d %s n=%d): mem_peak %d > M=%d" name mem block
      (Core.Workload.kind_name kind) n peak mem;
  true

let gen =
  let open Gen in
  let* n = int_range 32 2_500 in
  let* seed = int_range 0 1_000_000 in
  return (n, seed)

let prop_within_budget (n, seed) =
  List.for_all
    (fun (mem, block) ->
      List.for_all
        (fun kind -> List.for_all (check_one ~mem ~block kind ~seed ~n) (entry_points n))
        kinds)
    geometries

let suite =
  [ Tu.qcheck_case ~count:12 "mem_peak <= M on every entry point" gen prop_within_budget ]
