(* Tests for approximate K-partitioning (Theorem 6). *)

let solve_and_verify ?(mem = 4096) ?(block = 64) ~seed ~kind spec =
  let ctx = Tu.ctx ~mem ~block () in
  let a = Core.Workload.generate kind ~seed ~n:spec.Core.Problem.n ~block in
  let v = Tu.int_vec ctx a in
  let parts = Core.Partitioning.solve Tu.icmp v spec in
  let contents = Array.map Em.Vec.Oracle.to_array parts in
  Tu.check_ok
    (Format.asprintf "verify %a" Core.Problem.pp_spec spec)
    (Core.Verify.partitioning Tu.icmp ~input:a spec contents);
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use;
  contents

let perm = Core.Workload.Random_perm

let test_right_grounded_basic () =
  let parts =
    solve_and_verify ~seed:1 ~kind:perm { Core.Problem.n = 10_000; k = 8; a = 500; b = 10_000 }
  in
  (* The first K-1 partitions must have exactly a elements. *)
  for i = 0 to 6 do
    Tu.check_int "size a" 500 (Array.length parts.(i))
  done

let test_right_grounded_a2 () =
  ignore (solve_and_verify ~seed:2 ~kind:perm { Core.Problem.n = 10_000; k = 16; a = 2; b = 10_000 })

let test_left_grounded_basic () =
  let parts =
    solve_and_verify ~seed:3 ~kind:perm { Core.Problem.n = 10_000; k = 16; a = 0; b = 1_000 }
  in
  Tu.check_int "K partitions" 16 (Array.length parts);
  (* ceil(10000/1000) = 10 non-empty partitions, 6 empty. *)
  let empties = Array.fold_left (fun acc p -> if Array.length p = 0 then acc + 1 else acc) 0 parts in
  Tu.check_int "empties" 6 empties

let test_left_grounded_exact_fill () =
  ignore (solve_and_verify ~seed:4 ~kind:perm { Core.Problem.n = 10_000; k = 10; a = 0; b = 1_000 })

let test_two_sided_shortcut () =
  ignore (solve_and_verify ~seed:5 ~kind:perm { Core.Problem.n = 10_000; k = 10; a = 700; b = 1_400 })

let test_two_sided_hard () =
  let parts =
    solve_and_verify ~seed:6 ~kind:perm { Core.Problem.n = 10_000; k = 10; a = 50; b = 4_000 }
  in
  Tu.check_int "K partitions" 10 (Array.length parts)

let test_even_spec () =
  let parts = solve_and_verify ~seed:7 ~kind:perm (Core.Problem.even_spec ~n:9_999 ~k:7) in
  Array.iter
    (fun p ->
      Tu.check_bool "balanced" true
        (Array.length p >= 9_999 / 7 && Array.length p <= (9_999 / 7) + 1))
    parts

let test_k1_and_unconstrained () =
  ignore (solve_and_verify ~seed:8 ~kind:perm { Core.Problem.n = 1_000; k = 1; a = 0; b = 1_000 });
  ignore (solve_and_verify ~seed:9 ~kind:perm { Core.Problem.n = 1_000; k = 5; a = 0; b = 1_000 })

let test_workload_sweep () =
  List.iter
    (fun kind ->
      if Core.Workload.distinct_ranks kind then begin
        ignore (solve_and_verify ~seed:10 ~kind { Core.Problem.n = 8_192; k = 8; a = 128; b = 8_192 });
        ignore (solve_and_verify ~seed:11 ~kind { Core.Problem.n = 8_192; k = 8; a = 0; b = 2_048 });
        ignore (solve_and_verify ~seed:12 ~kind { Core.Problem.n = 8_192; k = 8; a = 64; b = 4_096 })
      end)
    Core.Workload.all_kinds

let test_right_grounded_avoids_full_sort () =
  (* With small a*K, right-grounded partitioning should cost a few scans,
     far below the sort baseline. *)
  let ctx = Tu.ctx ~mem:2048 ~block:32 () in
  let n = 65_536 in
  let v = Tu.int_vec ctx (Core.Workload.generate perm ~seed:13 ~n ~block:32) in
  let spec = { Core.Problem.n; k = 8; a = 32; b = n } in
  let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
  let parts = Core.Partitioning.right_grounded Tu.icmp v spec in
  let ours = Em.Stats.ios_since ctx.Em.Ctx.stats snap in
  Array.iter Em.Vec.free parts;
  let snap2 = Em.Stats.snapshot ctx.Em.Ctx.stats in
  let bparts = Core.Baseline.partitioning Tu.icmp v spec in
  let baseline = Em.Stats.ios_since ctx.Em.Ctx.stats snap2 in
  Array.iter Em.Vec.free bparts;
  Tu.check_bool (Printf.sprintf "ours %d < baseline %d" ours baseline) true (ours < baseline)

let suite =
  [
    Alcotest.test_case "right-grounded: basic" `Quick test_right_grounded_basic;
    Alcotest.test_case "right-grounded: a = 2" `Quick test_right_grounded_a2;
    Alcotest.test_case "left-grounded: basic + empties" `Quick test_left_grounded_basic;
    Alcotest.test_case "left-grounded: exact fill" `Quick test_left_grounded_exact_fill;
    Alcotest.test_case "two-sided: shortcut" `Quick test_two_sided_shortcut;
    Alcotest.test_case "two-sided: K' split" `Quick test_two_sided_hard;
    Alcotest.test_case "even spec" `Quick test_even_spec;
    Alcotest.test_case "k = 1 / unconstrained" `Quick test_k1_and_unconstrained;
    Alcotest.test_case "workload sweep" `Quick test_workload_sweep;
    Alcotest.test_case "beats sort baseline" `Quick test_right_grounded_avoids_full_sort;
  ]
