(* The algorithms are comparison-based and polymorphic: exercise them with
   float keys, string keys, and a record-ish tuple key with a custom order —
   ensuring nothing silently assumes integers. *)

let fcmp = Float.compare
let scmp = String.compare

let float_vec ctx a : float Em.Vec.t =
  let fctx : float Em.Ctx.t = Em.Ctx.linked ctx in
  Em.Vec.of_array fctx a

let string_vec ctx a : string Em.Vec.t =
  let sctx : string Em.Ctx.t = Em.Ctx.linked ctx in
  Em.Vec.of_array sctx a

let test_floats_multi_select () =
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let n = 3_000 in
  let r = Tu.rng 1 in
  let a = Array.init n (fun _ -> float_of_int (Tu.next_int r 1_000_000) /. 97.) in
  let v = float_vec ctx a in
  let ranks = [| 1; n / 2; n |] in
  let results = Core.Multi_select.select fcmp v ~ranks in
  let sorted = Array.copy a in
  Array.sort fcmp sorted;
  Alcotest.(check (array (float 1e-9)))
    "float ranks"
    [| sorted.(0); sorted.((n / 2) - 1); sorted.(n - 1) |]
    results

let test_floats_splitters () =
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let n = 2_000 in
  let r = Tu.rng 2 in
  let a = Array.init n (fun _ -> Float.of_int (Tu.next_int r 100_000) *. 0.125) in
  let v = float_vec ctx a in
  let spec = { Core.Problem.n; k = 8; a = 100; b = 600 } in
  let out = Core.Splitters.solve fcmp v spec in
  match Core.Verify.splitters fcmp ~input:a spec (Em.Vec.Oracle.to_array out) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_strings_partitioning () =
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let n = 1_500 in
  let r = Tu.rng 3 in
  let a =
    Array.init n (fun _ ->
        Printf.sprintf "key-%06d-%c" (Tu.next_int r 100_000)
          (Char.chr (97 + Tu.next_int r 26)))
  in
  let v = string_vec ctx a in
  let spec = { Core.Problem.n; k = 5; a = 100; b = 900 } in
  let parts = Core.Partitioning.solve scmp v spec in
  match
    Core.Verify.partitioning scmp ~input:a spec (Array.map Em.Vec.Oracle.to_array parts)
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_tuple_key_custom_order () =
  (* Order events by (priority DESC, timestamp ASC): a composite comparator
     through the whole stack. *)
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let cmp (p1, t1) (p2, t2) =
    let c = Int.compare p2 p1 in
    if c <> 0 then c else Int.compare t1 t2
  in
  let n = 2_000 in
  let r = Tu.rng 4 in
  let a = Array.init n (fun _ -> (Tu.next_int r 5, Tu.next_int r 1_000_000)) in
  let ectx : (int * int) Em.Ctx.t = Em.Ctx.linked ctx in
  let v = Em.Vec.of_array ectx a in
  let median = Emalg.Em_select.select cmp v ~rank:(n / 2) in
  let sorted = Array.copy a in
  Array.sort cmp sorted;
  Alcotest.(check (pair int int)) "median under custom order" sorted.((n / 2) - 1) median;
  let out = Emalg.External_sort.sort cmp v in
  Alcotest.(check (array (pair int int))) "sorted under custom order" sorted (Em.Vec.Oracle.to_array out)

let test_strings_histogram () =
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let n = 1_000 in
  let r = Tu.rng 5 in
  let a = Array.init n (fun _ -> Printf.sprintf "%08x" (Tu.next_int r max_int)) in
  let v = string_vec ctx a in
  let h = Quantile.Histogram.build scmp v ~buckets:10 in
  Tu.check_int "buckets" 10 (Quantile.Histogram.bucket_count h);
  Array.iter
    (fun x ->
      let b = Quantile.Histogram.bucket_of scmp h x in
      Tu.check_bool "bucket index in range" true (b >= 0 && b < 10))
    a

let suite =
  [
    Alcotest.test_case "floats: multi-select" `Quick test_floats_multi_select;
    Alcotest.test_case "floats: splitters" `Quick test_floats_splitters;
    Alcotest.test_case "strings: partitioning" `Quick test_strings_partitioning;
    Alcotest.test_case "tuples: custom order" `Quick test_tuple_key_custom_order;
    Alcotest.test_case "strings: histogram" `Quick test_strings_histogram;
  ]
