(* Async execution: the domain-pool I/O scheduler behind Em.Backend.

   The load-bearing invariant, checked from every angle this suite can
   reach: async execution moves *wall-clock time*, never *work*.  Every
   observable of the EM cost model — algorithm outputs, counted reads and
   writes, comparisons, rounds, memory peaks, and the full trace-event
   stream (sequence numbers, fault decisions, cache verdicts, round ids) —
   is decided on the submitting domain before a request enters the pool,
   so a run with [~async:true] must be bit-identical to the synchronous
   run, not merely equivalent.  The determinism matrix below asserts
   exactly that for each algorithm x backend x disk count x fault plan.

   The second half hammers the pool itself: FIFO ordering and exception
   transport on the workers, backpressure, drain-on-shutdown, and a
   randomized stress property that drives interleaved reader/writer
   pipelines over a private pool with worker-side latency jitter, then
   checks round-trips, quiescence, and that no fd leaks past shutdown. *)

module Io_pool = Em.Io_pool

(* ---- determinism matrix ------------------------------------------- *)

let backends =
  [
    ("sim", Em.Backend.Sim);
    ("file", Em.Backend.File);
    ("cached", Em.Backend.Cached Em.Backend.Sim);
    ("cached:file", Em.Backend.Cached Em.Backend.File);
  ]

(* Plans are stateful, so each run builds a fresh one (see test_parallel). *)
let fault_plans =
  [
    ("clean", None);
    ( "armed seeded mix",
      Some
        (fun () ->
          Em.Fault.seeded ~seed:42 ~p:0.05
            [ Em.Fault.Transient_read; Em.Fault.Transient_write ]) );
  ]

let algos n =
  let spec = { Core.Problem.n; k = 8; a = 0; b = ((n / 4) + 7) / 8 * 8 } in
  let ranks = [| 1; (n / 2) + 1; n |] in
  [
    ("sort", fun cmp v -> Em.Vec.Oracle.to_array (Emalg.External_sort.sort cmp v));
    ("multiselect", fun cmp v -> Core.Multi_select.select cmp v ~ranks);
    ("splitters", fun cmp v -> Em.Vec.Oracle.to_array (Core.Splitters.solve cmp v spec));
    ( "partitioning",
      fun cmp v ->
        let parts = Core.Partitioning.solve cmp v spec in
        Array.concat
          (Array.to_list (Array.map (fun p -> [| Em.Vec.length p |]) parts)
          @ Array.to_list (Array.map Em.Vec.Oracle.to_array parts)) );
  ]

let run_case ~backend ~async ~disks ~plan ~seed ~n algo =
  let trace = Em.Trace.create () in
  let sink, events = Em.Trace.collector () in
  Em.Trace.add_sink trace sink;
  let ctx : int Em.Ctx.t =
    Em.Ctx.create ~trace ~backend ~async ~disks (Tu.params ())
  in
  (match plan with
  | Some mk ->
      Em.Ctx.inject ctx (mk ());
      Em.Ctx.arm ctx
  | None -> ());
  let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n in
  let cmp = Em.Ctx.counted ctx Tu.icmp in
  let out, d = Em.Ctx.measured ctx (fun () -> algo cmp v) in
  let evs = events () in
  let peak = ctx.Em.Ctx.stats.Em.Stats.mem_peak in
  Em.Ctx.close ctx;
  (out, d, evs, peak)

let check_identical label (o1, d1, e1, p1) (o2, d2, e2, p2) =
  Tu.check_bool (label ^ ": outputs") true (o1 = o2);
  Tu.check_int (label ^ ": reads") d1.Em.Stats.d_reads d2.Em.Stats.d_reads;
  Tu.check_int (label ^ ": writes") d1.Em.Stats.d_writes d2.Em.Stats.d_writes;
  Tu.check_int (label ^ ": comparisons") d1.Em.Stats.d_comparisons
    d2.Em.Stats.d_comparisons;
  Tu.check_int (label ^ ": rounds") d1.Em.Stats.d_rounds d2.Em.Stats.d_rounds;
  Tu.check_int (label ^ ": mem peak") p1 p2;
  Tu.check_int (label ^ ": trace length") (List.length e1) (List.length e2);
  Tu.check_bool (label ^ ": trace events bit-identical") true (e1 = e2)

(* One alcotest case per (algorithm, backend): inside, the full
   D x fault-plan sub-matrix compares a synchronous run against the
   asynchronous one on the same seed and workload. *)
let test_matrix_case algo_name backend_name backend () =
  let n = 600 and seed = 7 in
  let algo = List.assoc algo_name (algos n) in
  List.iter
    (fun disks ->
      List.iter
        (fun (plan_name, plan) ->
          let label =
            Printf.sprintf "%s/%s D=%d %s" algo_name backend_name disks plan_name
          in
          let sync = run_case ~backend ~async:false ~disks ~plan ~seed ~n algo in
          let asyn = run_case ~backend ~async:true ~disks ~plan ~seed ~n algo in
          check_identical label sync asyn)
        fault_plans)
    [ 1; 4 ]

(* ---- online sessions: reply streams are async-invariant ---- *)

module Os = Emalg.Online_select

let online_stream n =
  [
    Os.Select (n / 2);
    Os.Select 1;
    Os.Range (max 1 ((n / 4) - 8), min n ((n / 4) + 8));
    Os.Quantile 0.9;
    Os.Select (n / 2);
  ]

let run_online ~backend ~async ~disks ~seed ~n =
  let ctx : int Em.Ctx.t = Em.Ctx.create ~backend ~async ~disks (Tu.params ()) in
  let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n in
  let cmp = Em.Ctx.counted ctx Tu.icmp in
  let s = Os.open_session cmp ctx v in
  let replies = List.map (Os.query s) (online_stream n) in
  Os.close s;
  let peak = ctx.Em.Ctx.stats.Em.Stats.mem_peak in
  Em.Ctx.close ctx;
  (replies, peak)

let test_online_case backend_name backend () =
  let n = 800 and seed = 13 in
  List.iter
    (fun disks ->
      let r_sync, p_sync = run_online ~backend ~async:false ~disks ~seed ~n in
      let r_async, p_async = run_online ~backend ~async:true ~disks ~seed ~n in
      let label = Printf.sprintf "online/%s D=%d" backend_name disks in
      Tu.check_int (label ^ ": mem peak") p_sync p_async;
      List.iter2
        (fun (a : int Os.reply) (b : int Os.reply) ->
          Tu.check_bool (label ^ ": values") true (a.Os.values = b.Os.values);
          Tu.check_bool (label ^ ": splits") true (a.Os.splits = b.Os.splits);
          Tu.check_int (label ^ ": reads") a.Os.cost.Em.Stats.d_reads
            b.Os.cost.Em.Stats.d_reads;
          Tu.check_int (label ^ ": writes") a.Os.cost.Em.Stats.d_writes
            b.Os.cost.Em.Stats.d_writes;
          Tu.check_int (label ^ ": comparisons") a.Os.cost.Em.Stats.d_comparisons
            b.Os.cost.Em.Stats.d_comparisons;
          Tu.check_int (label ^ ": rounds") a.Os.cost.Em.Stats.d_rounds
            b.Os.cost.Em.Stats.d_rounds)
        r_sync r_async)
    [ 1; 4 ]

(* ---- Io_pool unit behaviour --------------------------------------- *)

(* Same key => same worker => strict submission-order execution. *)
let test_pool_fifo_order () =
  let pool = Io_pool.create ~workers:3 () in
  let m = Mutex.create () in
  let order = ref [] in
  let tickets =
    List.init 32 (fun i ->
        Io_pool.submit pool ~key:5 (fun () ->
            Mutex.lock m;
            order := i :: !order;
            Mutex.unlock m))
  in
  List.iter Io_pool.await tickets;
  Tu.check_bool "FIFO per key" true (List.rev !order = List.init 32 Fun.id);
  Tu.check_int "quiescent after awaits" 0 (Io_pool.in_flight pool);
  Io_pool.shutdown pool

let test_pool_exception_transport () =
  let pool = Io_pool.create ~workers:1 () in
  let task = Io_pool.run pool ~key:0 (fun () -> failwith "boom on the worker") in
  (match Io_pool.wait task with
  | _ -> Alcotest.fail "expected the worker's exception"
  | exception Failure msg -> Tu.check_bool "message carried" true (msg = "boom on the worker"));
  (* The pool survives a failing job. *)
  Tu.check_int "next job still runs" 42 (Io_pool.wait (Io_pool.run pool ~key:0 (fun () -> 42)));
  Io_pool.shutdown pool

(* A full queue blocks the submitter (backpressure) without deadlock or
   reordering: every job still executes, in submission order. *)
let test_pool_backpressure () =
  let pool = Io_pool.create ~workers:1 ~capacity:2 () in
  let m = Mutex.create () in
  let order = ref [] in
  let jobs = 8 in
  let tickets =
    List.init jobs (fun i ->
        Io_pool.submit pool ~key:0 (fun () ->
            if i = 0 then Unix.sleepf 0.02;
            Mutex.lock m;
            order := i :: !order;
            Mutex.unlock m))
  in
  List.iter Io_pool.await tickets;
  Tu.check_bool "all executed in order despite blocking submits" true
    (List.rev !order = List.init jobs Fun.id);
  Io_pool.shutdown pool

let test_pool_shutdown_drains () =
  let pool = Io_pool.create ~workers:2 () in
  let done_count = Atomic.make 0 in
  let tickets =
    List.init 20 (fun i ->
        Io_pool.submit pool ~key:i (fun () ->
            Unix.sleepf 0.001;
            Atomic.incr done_count))
  in
  (* Shut down immediately: queued jobs must run, not be dropped. *)
  Io_pool.shutdown pool;
  Tu.check_int "every queued job executed" 20 (Atomic.get done_count);
  Tu.check_int "nothing left in flight" 0 (Io_pool.in_flight pool);
  Tu.check_bool "closed" true (Io_pool.closed pool);
  List.iter Io_pool.await tickets;
  (* Idempotent; submitting afterwards is a programming error. *)
  Io_pool.shutdown pool;
  (match Io_pool.submit pool ~key:0 (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown must raise"
  | exception Invalid_argument _ -> ())

let test_pool_quiesce_and_global () =
  let pool = Io_pool.create ~workers:2 () in
  let slow = Io_pool.run pool ~key:0 (fun () -> Unix.sleepf 0.01; "done") in
  Io_pool.quiesce pool;
  Tu.check_int "quiesce waited everything out" 0 (Io_pool.in_flight pool);
  Tu.check_bool "result still collectable after quiesce" true
    (Io_pool.wait slow = "done");
  Io_pool.shutdown pool;
  Tu.check_bool "global pool is a live singleton" true
    (Io_pool.global () == Io_pool.global () && not (Io_pool.closed (Io_pool.global ())))

(* ---- stress: interleaved pipelines over a private pool ------------- *)

let stress_iters =
  match Sys.getenv_opt "EM_ASYNC_STRESS_ITERS" with
  | None | Some "" -> 10
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "EM_ASYNC_STRESS_ITERS must be a positive integer")

let count_fds () =
  if Sys.file_exists "/proc/self/fd" then
    Some (Array.length (Sys.readdir "/proc/self/fd"))
  else None

(* Worker-side latency jitter: called concurrently from several domains,
   so the state is one atomic counter feeding a hash.  0-200us per access
   randomizes completion interleavings without slowing the suite down. *)
let jitter_delay seed =
  let c = Atomic.make seed in
  fun () ->
    let x = Atomic.fetch_and_add c 0x9E3779B9 in
    let h = (x * 0x2545F491) lxor (x lsr 13) in
    Unix.sleepf (float_of_int (abs h mod 200) *. 1e-6)

let prop_stress =
  Tu.qcheck_case ~count:stress_iters
    "stress: interleaved reader/writer pipelines round-trip over a private \
     pool with latency jitter; shutdown quiesces, no fd leaks"
    QCheck2.Gen.(
      quad (int_range 0 2) (int_range 1 4) (int_range 2 400) (int_range 0 9999))
    (fun (bexp, disks, n, seed) ->
      let block = 4 lsl bexp in
      let mem = block * (4 + (seed mod 5)) in
      let fds_before = count_fds () in
      let pool = Io_pool.create ~workers:(1 + (seed mod 4)) () in
      let ok =
        let ctx : int Em.Ctx.t =
          Em.Ctx.create ~backend:Em.Backend.File ~io_pool:pool
            ~file_delay:(jitter_delay seed) ~disks
            (Em.Params.create ~mem ~block)
        in
        let data1 = Tu.random_ints ~seed ~bound:1_000_000 n in
        let data2 = Tu.random_ints ~seed:(seed + 1) ~bound:1_000_000 (n / 2) in
        (* Two write-behind pipelines interleaved element by element, then
           two prefetching readers interleaved chunk by chunk: the pool sees
           reads and writes for both vectors' slots at once. *)
        let w1 = Em.Writer.create ~write_behind:(disks - 1) ctx in
        let w2 = Em.Writer.create ~write_behind:(disks - 1) ctx in
        Array.iteri
          (fun i x ->
            Em.Writer.push w1 x;
            if i < Array.length data2 then Em.Writer.push w2 data2.(i))
          data1;
        let v1 = Em.Writer.finish w1 in
        let v2 = Em.Writer.finish w2 in
        let r1 = Em.Reader.open_vec ~prefetch:(disks - 1) v1 in
        let r2 = Em.Reader.open_vec ~prefetch:(disks - 1) v2 in
        let rng = Tu.rng (seed + 2) in
        let acc1 = ref [] and acc2 = ref [] in
        while Em.Reader.has_next r1 || Em.Reader.has_next r2 do
          let k = 1 + Tu.next_int rng (2 * block) in
          if Em.Reader.has_next r1 then acc1 := Em.Reader.take r1 k :: !acc1;
          if Em.Reader.has_next r2 then acc2 := Em.Reader.take r2 k :: !acc2
        done;
        let got1 = Array.concat (List.rev !acc1) in
        let got2 = Array.concat (List.rev !acc2) in
        Em.Reader.close r1;
        Em.Reader.close r2;
        let round_trip = got1 = data1 && got2 = data2 in
        let async_on = Em.Ctx.async ctx in
        Em.Ctx.close ctx;
        round_trip && async_on
      in
      Io_pool.quiesce pool;
      let quiet = Io_pool.in_flight pool = 0 in
      Io_pool.shutdown pool;
      let fds_ok =
        match (fds_before, count_fds ()) with
        | Some before, Some after -> after <= before
        | _ -> true
      in
      ok && quiet && fds_ok)

(* ---- env plumbing -------------------------------------------------- *)

let test_env_parsing () =
  Tu.check_bool "EM_ASYNC name" true (Em.Params.async_env_var = "EM_ASYNC");
  Tu.check_bool "worker env name" true (Io_pool.workers_env_var = "EM_ASYNC_WORKERS");
  Tu.check_bool "latency env name" true (Em.Backend.latency_env_var = "EM_FILE_LATENCY_US");
  (* A pure sim machine never runs async, whatever was requested. *)
  let ctx : int Em.Ctx.t =
    Em.Ctx.create ~backend:Em.Backend.Sim ~async:true (Tu.params ())
  in
  Tu.check_bool "sim family ignores async" false (Em.Ctx.async ctx);
  Em.Ctx.close ctx;
  (* Any File layer in the family turns it on. *)
  let ctx : int Em.Ctx.t =
    Em.Ctx.create ~backend:(Em.Backend.Cached Em.Backend.File) ~async:true (Tu.params ())
  in
  Tu.check_bool "cached:file family honours async" true (Em.Ctx.async ctx);
  Em.Ctx.close ctx

let suite =
  List.concat_map
    (fun (bname, backend) ->
      List.map
        (fun (aname, _) ->
          Alcotest.test_case
            (Printf.sprintf "determinism: %s on %s (D x faults)" aname bname)
            `Quick
            (test_matrix_case aname bname backend))
        (algos 0))
    backends
  @ List.map
      (fun (bname, backend) ->
        Alcotest.test_case
          (Printf.sprintf "determinism: online session on %s" bname)
          `Quick (test_online_case bname backend))
      backends
  @ [
      Alcotest.test_case "pool: per-key FIFO order" `Quick test_pool_fifo_order;
      Alcotest.test_case "pool: exception transport" `Quick test_pool_exception_transport;
      Alcotest.test_case "pool: backpressure" `Quick test_pool_backpressure;
      Alcotest.test_case "pool: shutdown drains the queues" `Quick
        test_pool_shutdown_drains;
      Alcotest.test_case "pool: quiesce + global singleton" `Quick
        test_pool_quiesce_and_global;
      prop_stress;
      Alcotest.test_case "env plumbing and family gating" `Quick test_env_parsing;
    ]
