(* Tests for multi-partition (Aggarwal–Vitter). *)

let run ?(mem = 4096) ?(block = 64) ~seed ~n sizes =
  let ctx = Tu.ctx ~mem ~block () in
  let a = Tu.random_perm ~seed n in
  let v = Tu.int_vec ctx a in
  let parts = Core.Multi_partition.partition_sizes Tu.icmp v ~sizes in
  let contents = Array.map Em.Vec.Oracle.to_array parts in
  Tu.check_ok "verifier" (Core.Verify.multi_partition Tu.icmp ~input:a ~sizes contents);
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use;
  (ctx, parts)

let test_two_way () = ignore (run ~seed:1 ~n:10_000 [| 4_000; 6_000 |])

let test_many_even () =
  ignore (run ~seed:2 ~n:12_000 (Array.make 60 200))

let test_skewed_sizes () =
  ignore (run ~seed:3 ~n:10_001 [| 1; 9_000; 500; 499; 1 |])

let test_in_memory () = ignore (run ~seed:4 ~n:500 [| 100; 150; 250 |])

let test_huge_k () =
  (* K = 1500 partitions on a machine that holds 4096 words: the bound
     stream exceeds the distribution fanout and must be routed recursively. *)
  let n = 15_000 in
  let k = 1_500 in
  ignore (run ~seed:5 ~n (Array.make k (n / k)))

let test_duplicates () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let a = Tu.random_ints ~seed:6 ~bound:5 6_000 in
  let v = Tu.int_vec ctx a in
  let sizes = [| 1_000; 2_000; 3_000 |] in
  let parts = Core.Multi_partition.partition_sizes Tu.icmp v ~sizes in
  let contents = Array.map Em.Vec.Oracle.to_array parts in
  Tu.check_ok "verifier" (Core.Verify.multi_partition Tu.icmp ~input:a ~sizes contents)

let test_workload_sweep () =
  List.iter
    (fun kind ->
      let ctx = Tu.ctx ~mem:4096 ~block:64 () in
      let n = 8_000 in
      let a = Core.Workload.generate kind ~seed:7 ~n ~block:64 in
      let v = Tu.int_vec ctx a in
      let sizes = [| 2_000; 2_000; 2_000; 2_000 |] in
      let parts = Core.Multi_partition.partition_sizes Tu.icmp v ~sizes in
      let contents = Array.map Em.Vec.Oracle.to_array parts in
      Tu.check_ok (Core.Workload.kind_name kind)
        (Core.Verify.multi_partition Tu.icmp ~input:a ~sizes contents))
    Core.Workload.all_kinds

let test_bound_validation () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:8 100) in
  let ictx : int Em.Ctx.t = Em.Ctx.linked ctx in
  let expect_invalid bounds_arr =
    let bounds = Em.Vec.of_array ictx bounds_arr in
    match Core.Multi_partition.partition Tu.icmp v ~bounds with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid [| 0 |];
  expect_invalid [| 100 |];
  expect_invalid [| 50; 50 |];
  expect_invalid [| 70; 30 |];
  (match Core.Multi_partition.partition_sizes Tu.icmp v ~sizes:[| 30; 30 |] with
  | _ -> Alcotest.fail "expected size-sum failure"
  | exception Invalid_argument _ -> ())

let test_boundary_bounds () =
  (* Cuts at positions 1 and n-1, and a fully consecutive run of cuts. *)
  ignore (run ~seed:21 ~n:5_000 (Array.append [| 1 |] [| 4_998; 1 |]));
  let sizes = Array.append [| 4_990 |] (Array.make 10 1) in
  ignore (run ~seed:22 ~n:5_000 sizes)

let test_io_scales_with_log_k () =
  (* I/O cost per scan should grow roughly logarithmically with K. *)
  let measure k =
    let ctx = Tu.ctx ~mem:2048 ~block:32 () in
    let n = 32_768 in
    let v = Tu.int_vec ctx (Tu.random_perm ~seed:9 n) in
    let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
    let parts = Core.Multi_partition.partition_sizes Tu.icmp v ~sizes:(Array.make k (n / k)) in
    let ios = Em.Stats.ios_since ctx.Em.Ctx.stats snap in
    Array.iter Em.Vec.free parts;
    ios
  in
  let io2 = measure 2 and io1024 = measure 1_024 in
  Tu.check_bool "more partitions cost more" true (io1024 > io2);
  (* lg_{M/B}(1024) = 1.67 at M/B = 64: the ratio should stay mild. *)
  Tu.check_bool
    (Printf.sprintf "io1024 %d <= 4 * io2 %d" io1024 io2)
    true
    (io1024 <= 4 * io2)

let suite =
  [
    Alcotest.test_case "two-way" `Quick test_two_way;
    Alcotest.test_case "many even parts" `Quick test_many_even;
    Alcotest.test_case "skewed sizes" `Quick test_skewed_sizes;
    Alcotest.test_case "in-memory leaf" `Quick test_in_memory;
    Alcotest.test_case "K = 1500 (streamed bounds)" `Quick test_huge_k;
    Alcotest.test_case "duplicates" `Quick test_duplicates;
    Alcotest.test_case "workload sweep" `Quick test_workload_sweep;
    Alcotest.test_case "bound validation" `Quick test_bound_validation;
    Alcotest.test_case "boundary bounds" `Quick test_boundary_bounds;
    Alcotest.test_case "I/O grows ~log K" `Quick test_io_scales_with_log_k;
  ]
