(* Storage backends: the same algorithms, byte-identical outputs and counted
   I/Os whether blocks live in the sim array, on a real file, or behind the
   buffer pool — plus the pool/file mechanics themselves (LRU residency,
   ledger accounting, temp-file hygiene, slot overflow). *)

let all_specs =
  [
    Em.Backend.Sim;
    Em.Backend.File;
    Em.Backend.Cached Em.Backend.Sim;
    Em.Backend.Cached Em.Backend.File;
  ]

let ctx_on ?pool_pages spec : int Em.Ctx.t =
  Em.Ctx.create ~backend:spec ?pool_pages (Tu.params ~mem:256 ~block:16 ())

(* ---- backend record mechanics ---- *)

let roundtrip_backend name (b : int Em.Backend.t) =
  let s = b.Em.Backend.alloc () in
  Tu.check_bool (name ^ ": unwritten slot loads None") true (b.Em.Backend.load s = None);
  b.Em.Backend.store s [| 7; 8; 9 |];
  (match b.Em.Backend.load s with
  | Some a -> Tu.check_int_array (name ^ ": roundtrip") [| 7; 8; 9 |] a
  | None -> Alcotest.failf "%s: stored slot loads None" name);
  b.Em.Backend.store s [| 1 |];
  (match b.Em.Backend.load s with
  | Some a -> Tu.check_int_array (name ^ ": overwrite") [| 1 |] a
  | None -> Alcotest.failf "%s: overwritten slot loads None" name);
  b.Em.Backend.free s;
  Tu.check_bool (name ^ ": freed slot loads None") true (b.Em.Backend.load s = None);
  (* Recycling is LIFO: the historical Device free-list discipline that the
     golden I/O counts were recorded under. *)
  let a1 = b.Em.Backend.alloc () and a2 = b.Em.Backend.alloc () in
  b.Em.Backend.free a1;
  b.Em.Backend.free a2;
  Tu.check_int (name ^ ": LIFO recycling") a2 (b.Em.Backend.alloc ());
  b.Em.Backend.flush ();
  b.Em.Backend.close ();
  b.Em.Backend.close () (* idempotent *)

let test_sim_roundtrip () = roundtrip_backend "sim" (Em.Backend.sim ())

let test_file_roundtrip () =
  roundtrip_backend "file" (Em.Backend.file ~slot_bytes:4096 ())

let test_cached_roundtrip () =
  let p = Tu.params () in
  let stats = Em.Stats.create () in
  let pool = Em.Backend.Pool.create p stats in
  roundtrip_backend "cached" (Em.Backend.cached ~pool (Em.Backend.sim ()))

let test_store_owns_copy () =
  List.iter
    (fun spec ->
      let ctx = ctx_on spec in
      let b = Em.Backend.make ctx.Em.Ctx.backend in
      let s = b.Em.Backend.alloc () in
      let payload = [| 1; 2; 3 |] in
      b.Em.Backend.store s payload;
      payload.(0) <- 99;
      (match b.Em.Backend.load s with
      | Some a ->
          Tu.check_int
            (Em.Backend.spec_name spec ^ ": stored copy is insulated from the caller")
            1 a.(0)
      | None -> Alcotest.fail "stored slot loads None");
      Em.Ctx.close ctx;
      b.Em.Backend.close ())
    all_specs

let test_file_slot_overflow () =
  let b : int Em.Backend.t = Em.Backend.file ~slot_bytes:64 () in
  let s = b.Em.Backend.alloc () in
  (try
     b.Em.Backend.store s (Array.init 4096 Fun.id);
     Alcotest.fail "expected Slot_overflow"
   with Em.Em_error.Slot_overflow { bytes; capacity; slot } ->
     Tu.check_int "overflowing slot id" s slot;
     Tu.check_int "slot capacity reported" 64 capacity;
     Tu.check_bool "oversize payload reported" true (bytes > 64));
  b.Em.Backend.close ()

let test_default_slots_scale () =
  (* Satellite fix: the initial slot table is sized from the machine's
     fanout instead of the historical hardcoded 64. *)
  Tu.check_int "small fanout keeps the historical floor" 64
    (Em.Backend.default_slots (Em.Params.create ~mem:64 ~block:16));
  Tu.check_int "large fanout scales the table" 2048
    (Em.Backend.default_slots (Em.Params.create ~mem:4096 ~block:16))

(* ---- spec parsing ---- *)

let test_spec_parsing () =
  let ok s spec =
    match Em.Backend.spec_of_string s with
    | Ok got -> Tu.check_bool (Printf.sprintf "parse %S" s) true (got = spec)
    | Error e -> Alcotest.failf "parse %S failed: %s" s e
  in
  ok "sim" Em.Backend.Sim;
  ok "FILE" Em.Backend.File;
  ok " cached " (Em.Backend.Cached Em.Backend.Sim);
  ok "cached:file" (Em.Backend.Cached Em.Backend.File);
  ok "cached:cached:file" (Em.Backend.Cached (Em.Backend.Cached Em.Backend.File));
  (match Em.Backend.spec_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse \"bogus\" should fail");
  List.iter
    (fun spec ->
      match Em.Backend.spec_of_string (Em.Backend.spec_name spec) with
      | Ok got -> Tu.check_bool ("name roundtrip " ^ Em.Backend.spec_name spec) true (got = spec)
      | Error e -> Alcotest.failf "name roundtrip failed: %s" e)
    all_specs

(* ---- the algorithm matrix: identical outputs, identical counted I/Os ---- *)

type outcome = { label : string; output : int array; d : Em.Stats.delta; peak : int }

let run_algo ?(disks = 1) spec (label, algo) =
  let ctx : int Em.Ctx.t =
    Em.Ctx.create ~backend:spec ~disks (Tu.params ~mem:256 ~block:16 ())
  in
  let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed:11 ~n:1500 in
  let cmp = Em.Ctx.counted ctx Tu.icmp in
  let output, d = Em.Ctx.measured ctx (fun () -> algo cmp v) in
  let peak = ctx.Em.Ctx.stats.Em.Stats.mem_peak in
  Em.Ctx.close ctx;
  { label; output; d; peak }

let algos =
  let spec = { Core.Problem.n = 1500; k = 8; a = 40; b = 400 } in
  let ranks = [| 1; 17; 750; 1499 |] in
  [
    ("sort", fun cmp v -> Em.Vec.Oracle.to_array (Emalg.External_sort.sort cmp v));
    ("multiselect", fun cmp v -> Core.Multi_select.select cmp v ~ranks);
    ("splitters", fun cmp v -> Em.Vec.Oracle.to_array (Core.Splitters.solve cmp v spec));
    ( "partitioning",
      fun cmp v ->
        (* Flatten the partition family: sizes prefix + concatenated data
           makes block-level divergence between backends visible. *)
        let parts = Core.Partitioning.solve cmp v spec in
        Array.concat
          (Array.to_list (Array.map (fun p -> [| Em.Vec.length p |]) parts)
          @ Array.to_list (Array.map Em.Vec.Oracle.to_array parts)) );
  ]

let test_matrix () =
  List.iter
    (fun algo ->
      let reference = run_algo Em.Backend.Sim algo in
      List.iter
        (fun spec ->
          let got = run_algo spec algo in
          let on = Printf.sprintf "%s on %s" got.label (Em.Backend.spec_name spec) in
          Tu.check_int_array (on ^ ": output identical to sim") reference.output got.output;
          Tu.check_int (on ^ ": counted reads identical") reference.d.Em.Stats.d_reads
            got.d.Em.Stats.d_reads;
          Tu.check_int (on ^ ": counted writes identical") reference.d.Em.Stats.d_writes
            got.d.Em.Stats.d_writes;
          Tu.check_int (on ^ ": comparisons identical") reference.d.Em.Stats.d_comparisons
            got.d.Em.Stats.d_comparisons;
          Tu.check_bool (on ^ ": mem_peak within M") true (got.peak <= 256))
        (List.tl all_specs))
    algos

(* Same matrix on a 4-disk machine: striping and the scheduling-window
   pipelines are backend-independent too.  Rounds agree exactly on
   uncached backends (same metered stream, same windows); behind a buffer
   pool the resident pages share the [M]-word capacity check with the
   algorithm ledger, so the opportunistic prefetch/write-behind charges
   land less often and the round count sits somewhere else in the
   [ceil(ios / D), ios] band — still compressed, just not identical. *)
let test_matrix_multi_disk () =
  List.iter
    (fun algo ->
      let reference = run_algo ~disks:4 Em.Backend.Sim algo in
      List.iter
        (fun spec ->
          let got = run_algo ~disks:4 spec algo in
          let on =
            Printf.sprintf "%s on %s at D=4" got.label (Em.Backend.spec_name spec)
          in
          Tu.check_int_array (on ^ ": output identical to sim") reference.output got.output;
          Tu.check_int (on ^ ": counted reads identical") reference.d.Em.Stats.d_reads
            got.d.Em.Stats.d_reads;
          Tu.check_int (on ^ ": counted writes identical") reference.d.Em.Stats.d_writes
            got.d.Em.Stats.d_writes;
          (match spec with
          | Em.Backend.Cached _ ->
              let ios = Em.Stats.delta_ios got.d in
              Tu.check_bool (on ^ ": rounds within [ceil(ios/D), ios]") true
                (got.d.Em.Stats.d_rounds >= (ios + 3) / 4
                && got.d.Em.Stats.d_rounds <= ios)
          | _ ->
              Tu.check_int (on ^ ": rounds identical") reference.d.Em.Stats.d_rounds
                got.d.Em.Stats.d_rounds);
          Tu.check_bool (on ^ ": rounds compressed below I/Os") true
            (got.d.Em.Stats.d_rounds < Em.Stats.delta_ios got.d);
          Tu.check_bool (on ^ ": mem_peak within M") true (got.peak <= 256))
        (List.tl all_specs))
    algos

(* ---- linked families inherit the backend ---- *)

let test_linked_inherits_backend () =
  List.iter
    (fun spec ->
      let parent = ctx_on spec in
      let child : string Em.Ctx.t = Em.Ctx.linked parent in
      Tu.check_bool
        (Em.Backend.spec_name spec ^ ": linked device inherits the backend")
        true
        (Em.Ctx.backend_name child = Em.Ctx.backend_name parent);
      Em.Ctx.close child;
      Em.Ctx.close parent)
    all_specs

let test_linked_shares_pool () =
  let parent = ctx_on (Em.Backend.Cached Em.Backend.Sim) in
  let child : int Em.Ctx.t = Em.Ctx.linked parent in
  let pool =
    match (Em.Ctx.backend_pool parent, Em.Ctx.backend_pool child) with
    | Some p, Some c ->
        Tu.check_bool "parent and child share one pool object" true (p == c);
        p
    | _ -> Alcotest.fail "cached family without a pool"
  in
  (* Blocks written through either member land in the same pool. *)
  let v1 = Tu.int_vec parent (Array.init 64 Fun.id) in
  let before = Em.Backend.Pool.resident pool in
  let v2 = Tu.int_vec child (Array.init 64 (fun i -> -i)) in
  Tu.check_bool "child I/O populates the shared pool" true
    (Em.Backend.Pool.resident pool > before);
  Tu.check_bool "residency bounded by capacity" true
    (Em.Backend.Pool.resident pool <= Em.Backend.Pool.capacity pool);
  Em.Vec.free v1;
  Em.Vec.free v2;
  Em.Ctx.close child;
  Em.Ctx.close parent;
  Tu.check_int "closing the family empties the pool" 0 (Em.Backend.Pool.resident pool);
  Tu.check_int "pool words returned to the ledger" 0
    parent.Em.Ctx.stats.Em.Stats.pool_words

let test_uncached_has_no_pool () =
  List.iter
    (fun spec ->
      let ctx = ctx_on spec in
      Tu.check_bool
        (Em.Backend.spec_name spec ^ ": no pool on uncached backends")
        true
        (Em.Ctx.backend_pool ctx = None);
      Em.Ctx.close ctx)
    [ Em.Backend.Sim; Em.Backend.File ]

(* ---- file hygiene: no backing files outlive (or are even visible to)
        a sweep ---- *)

let test_file_hygiene () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "em-backend-hygiene-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () -> Unix.rmdir dir)
    (fun () ->
      for seed = 0 to 4 do
        let ctx : int Em.Ctx.t =
          Em.Ctx.create ~backend:Em.Backend.File ~backend_dir:dir
            (Tu.params ~mem:256 ~block:16 ())
        in
        let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n:600 in
        let sorted = Emalg.External_sort.sort Tu.icmp v in
        Tu.check_int "sorted on disk" 600 (Em.Vec.length sorted);
        Em.Vec.free sorted;
        (* Unlink-after-open: the backing file is invisible even while the
           device is live, so a crash can't leak it either. *)
        Tu.check_int "no visible backing file mid-run" 0 (Array.length (Sys.readdir dir));
        Em.Ctx.close ctx
      done;
      Tu.check_int "no backing files leaked across the sweep" 0
        (Array.length (Sys.readdir dir)))

(* ---- cache accounting properties ---- *)

let prop_reads_hits_misses =
  Tu.qcheck_case ~count:30 "cached: reads = hits + misses; resident <= capacity"
    QCheck2.Gen.(
      triple (int_range 64 900) (int_range 0 1000) (int_range 2 12))
    (fun (n, seed, pages) ->
      let ctx = ctx_on ~pool_pages:pages (Em.Backend.Cached Em.Backend.Sim) in
      let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n in
      let ranks = [| 1; (n / 2) + 1; n |] in
      ignore (Core.Multi_select.select (Em.Ctx.counted ctx Tu.icmp) v ~ranks);
      let s = ctx.Em.Ctx.stats in
      let pool = Option.get (Em.Ctx.backend_pool ctx) in
      let ok =
        s.Em.Stats.reads = s.Em.Stats.cache_hits + s.Em.Stats.cache_misses
        && Em.Backend.Pool.resident pool <= Em.Backend.Pool.capacity pool
        && Em.Backend.Pool.capacity pool = pages
        && s.Em.Stats.mem_peak <= 256
      in
      Em.Ctx.close ctx;
      ok)

let prop_file_matches_sim =
  Tu.qcheck_case ~count:15 "file backend: sort output and I/Os match sim"
    QCheck2.Gen.(pair (int_range 32 800) (int_range 0 1000))
    (fun (n, seed) ->
      let run spec =
        let ctx = ctx_on spec in
        let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n in
        let out, d =
          Em.Ctx.measured ctx (fun () ->
              Em.Vec.Oracle.to_array (Emalg.External_sort.sort Tu.icmp v))
        in
        Em.Ctx.close ctx;
        (out, Em.Stats.delta_ios d)
      in
      run Em.Backend.Sim = run Em.Backend.File)

let suite =
  [
    Alcotest.test_case "sim roundtrip" `Quick test_sim_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "cached roundtrip" `Quick test_cached_roundtrip;
    Alcotest.test_case "store owns the copy" `Quick test_store_owns_copy;
    Alcotest.test_case "file slot overflow is typed" `Quick test_file_slot_overflow;
    Alcotest.test_case "initial slots scale with fanout" `Quick test_default_slots_scale;
    Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "algorithm matrix across backends" `Slow test_matrix;
    Alcotest.test_case "algorithm matrix across backends at D=4" `Slow
      test_matrix_multi_disk;
    Alcotest.test_case "linked inherits backend" `Quick test_linked_inherits_backend;
    Alcotest.test_case "linked shares the buffer pool" `Quick test_linked_shares_pool;
    Alcotest.test_case "no pool on uncached backends" `Quick test_uncached_has_no_pool;
    Alcotest.test_case "file temp hygiene across a sweep" `Quick test_file_hygiene;
    prop_reads_hits_misses;
    prop_file_matches_sim;
  ]
