(* Tests for the I/O trace subsystem: event emission from the device,
   sequential/random classification, ring-buffer bounds, sinks, and the
   trace-report aggregations. *)

let read_all v =
  Em.Reader.with_reader v (fun r ->
      while Em.Reader.has_next r do
        ignore (Em.Reader.next r)
      done)

let test_device_emits_events () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let v = Tu.int_vec ctx (Array.init 24 (fun i -> i)) in
  read_all v;
  let events = Em.Trace.events ctx.Em.Ctx.trace in
  Tu.check_int "one event per I/O" 3 (List.length events);
  Tu.check_int "total matches stats" (Em.Stats.ios ctx.Em.Ctx.stats)
    (Em.Trace.total ctx.Em.Ctx.trace);
  List.iteri
    (fun i (e : Em.Trace.event) ->
      Tu.check_int "sequence numbering" i e.Em.Trace.seq;
      Tu.check_bool "all reads" true (e.Em.Trace.op = Em.Trace.Read))
    events

let test_locality_classification () =
  let t = Em.Trace.create () in
  Em.Trace.emit t Em.Trace.Read ~block:10 ~phase:[];
  Em.Trace.emit t Em.Trace.Read ~block:11 ~phase:[];
  Em.Trace.emit t Em.Trace.Read ~block:11 ~phase:[];
  Em.Trace.emit t Em.Trace.Write ~block:3 ~phase:[];
  Em.Trace.emit t Em.Trace.Read ~block:4 ~phase:[];
  let expect =
    [ Em.Trace.Random; Em.Trace.Sequential; Em.Trace.Sequential; Em.Trace.Random;
      Em.Trace.Sequential ]
  in
  List.iter2
    (fun (e : Em.Trace.event) want ->
      Tu.check_bool
        (Printf.sprintf "event %d locality" e.Em.Trace.seq)
        true
        (e.Em.Trace.locality = want))
    (Em.Trace.events t) expect

let test_ring_is_bounded () =
  let t = Em.Trace.create ~ring_capacity:4 () in
  for i = 0 to 9 do
    Em.Trace.emit t Em.Trace.Write ~block:(2 * i) ~phase:[]
  done;
  let events = Em.Trace.events t in
  Tu.check_int "ring keeps capacity" 4 (List.length events);
  Tu.check_int "total unaffected" 10 (Em.Trace.total t);
  Tu.check_int "dropped count" 6 (Em.Trace.dropped t);
  Tu.check_int "oldest retained is #6" 6 (List.hd events).Em.Trace.seq

let test_reset () =
  let t = Em.Trace.create ~ring_capacity:4 () in
  for i = 0 to 9 do
    Em.Trace.emit t Em.Trace.Read ~block:i ~phase:[]
  done;
  Em.Trace.reset t;
  Tu.check_int "ring cleared" 0 (List.length (Em.Trace.events t));
  Tu.check_int "total cleared" 0 (Em.Trace.total t);
  Em.Trace.emit t Em.Trace.Read ~block:9 ~phase:[];
  Tu.check_bool "first event after reset is a seek" true
    ((List.hd (Em.Trace.events t)).Em.Trace.locality = Em.Trace.Random)

let test_collector_and_counter () =
  let t = Em.Trace.create ~ring_capacity:2 () in
  let collect, collected = Em.Trace.collector () in
  let count, counted = Em.Trace.counter (fun e -> e.Em.Trace.op = Em.Trace.Write) in
  Em.Trace.add_sink t collect;
  Em.Trace.add_sink t count;
  for i = 0 to 7 do
    Em.Trace.emit t (if i mod 2 = 0 then Em.Trace.Read else Em.Trace.Write) ~block:i ~phase:[]
  done;
  Tu.check_int "collector is unbounded" 8 (List.length (collected ()));
  Tu.check_int "counter sees writes" 4 (counted ())

(* Satellite of the attribution change: [Trace.reset] must clear stateful
   sinks too, not just the ring — collector/counter used to keep stale
   events across a reset. *)
let test_reset_clears_sinks () =
  let t = Em.Trace.create () in
  let collect, collected = Em.Trace.collector () in
  let count, counted = Em.Trace.counter (fun _ -> true) in
  let custom_seen = ref 0 and custom_resets = ref 0 in
  Em.Trace.add_sink t collect;
  Em.Trace.add_sink t count;
  Em.Trace.add_sink t
    (Em.Trace.custom_sink
       ~reset:(fun () -> incr custom_resets)
       (fun _ -> incr custom_seen));
  for i = 0 to 4 do
    Em.Trace.emit t Em.Trace.Read ~block:i ~phase:[]
  done;
  Em.Trace.reset t;
  Tu.check_int "collector emptied" 0 (List.length (collected ()));
  Tu.check_int "counter zeroed" 0 (counted ());
  Tu.check_int "custom on_reset hook fired" 1 !custom_resets;
  Em.Trace.emit t Em.Trace.Read ~block:7 ~phase:[];
  Tu.check_int "collector counts fresh events only" 1 (List.length (collected ()));
  Tu.check_int "counter counts fresh events only" 1 (counted ());
  Tu.check_int "custom sink kept receiving" 6 !custom_seen

let test_phase_paths_recorded () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let v = Tu.int_vec ctx (Array.init 8 (fun i -> i)) in
  Em.Phase.with_label ctx "outer" (fun () ->
      Em.Phase.with_label ctx "inner" (fun () -> read_all v));
  match Em.Trace.events ctx.Em.Ctx.trace with
  | [ e ] ->
      Tu.check_bool "innermost-first phase path" true
        (e.Em.Trace.phase = [ "inner"; "outer" ])
  | events -> Alcotest.failf "expected 1 event, got %d" (List.length events)

let test_jsonl_sink () =
  let path = Filename.temp_file "trace" ".jsonl" in
  let oc = open_out path in
  let t = Em.Trace.create () in
  Em.Trace.add_sink t (Em.Trace.jsonl_sink oc);
  Em.Trace.emit t Em.Trace.Read ~block:5 ~phase:[ "merge"; "sort" ];
  Em.Trace.emit t Em.Trace.Write ~block:6 ~phase:[];
  close_out oc;
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string)
    "first event json"
    "{\"seq\":0,\"op\":\"read\",\"kind\":\"io\",\"block\":5,\"phase\":[\"merge\",\"sort\"],\"locality\":\"random\"}"
    l1;
  Alcotest.(check string)
    "second event json"
    "{\"seq\":1,\"op\":\"write\",\"kind\":\"io\",\"block\":6,\"phase\":[],\"locality\":\"sequential\"}"
    l2

let test_report_tree () =
  let t = Em.Trace.create () in
  Em.Trace.emit t Em.Trace.Read ~block:0 ~phase:[ "sample"; "build" ];
  Em.Trace.emit t Em.Trace.Read ~block:1 ~phase:[ "sample"; "build" ];
  Em.Trace.emit t Em.Trace.Write ~block:7 ~phase:[ "build" ];
  Em.Trace.emit t Em.Trace.Read ~block:3 ~phase:[];
  let root = Em.Trace_report.tree (Em.Trace.events t) in
  let totals = Em.Trace_report.subtotal root in
  Tu.check_int "total ios" 4 (Em.Trace_report.ios totals);
  Tu.check_int "total reads" 3 totals.Em.Trace_report.reads;
  Tu.check_int "unattributed at root" 1 (Em.Trace_report.ios root.Em.Trace_report.self);
  (match root.Em.Trace_report.children with
  | [ build ] ->
      Tu.check_bool "outermost label" true (build.Em.Trace_report.label = "build");
      Tu.check_int "build subtotal" 3
        (Em.Trace_report.ios (Em.Trace_report.subtotal build));
      Tu.check_int "build self" 1 (Em.Trace_report.ios build.Em.Trace_report.self);
      (match build.Em.Trace_report.children with
      | [ sample ] ->
          Tu.check_bool "nested label" true (sample.Em.Trace_report.label = "sample");
          Tu.check_int "sample self" 2 (Em.Trace_report.ios sample.Em.Trace_report.self)
      | cs -> Alcotest.failf "expected 1 child of build, got %d" (List.length cs))
  | cs -> Alcotest.failf "expected 1 child of root, got %d" (List.length cs));
  Tu.check_int "random seeks" 3 (Em.Trace_report.random_seeks (Em.Trace.events t))

let test_report_histograms () =
  let t = Em.Trace.create () in
  (* Block 0 read 3x, block 1 read 1x, block 2 written 2x. *)
  List.iter
    (fun (op, b) -> Em.Trace.emit t op ~block:b ~phase:[])
    [
      (Em.Trace.Read, 0);
      (Em.Trace.Read, 0);
      (Em.Trace.Read, 0);
      (Em.Trace.Read, 1);
      (Em.Trace.Write, 2);
      (Em.Trace.Write, 2);
    ];
  let s = Em.Trace_report.summarize (Em.Trace.events t) in
  Tu.check_int "distinct blocks" 3 s.Em.Trace_report.distinct_blocks;
  Alcotest.(check (list (pair int int)))
    "reread histogram" [ (1, 1); (3, 1) ] s.Em.Trace_report.reread_histogram;
  Alcotest.(check (list (pair int int)))
    "rewrite histogram" [ (2, 1) ] s.Em.Trace_report.rewrite_histogram

let test_linked_ctx_shares_tracer () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let pair_ctx : (int * int) Em.Ctx.t = Em.Ctx.linked ctx in
  let v = Em.Writer.with_writer pair_ctx (fun w -> Em.Writer.push w (1, 2)) in
  ignore v;
  Tu.check_int "event visible on parent tracer" 1 (Em.Trace.total ctx.Em.Ctx.trace)

(* EM_TRACE_RING: the env default behind `--trace-ring`, same grammar as
   the other EM_* knobs (unset/empty -> default, else a positive int). *)
let test_env_ring_capacity () =
  let with_env v f =
    let old = Sys.getenv_opt Em.Trace.ring_env_var in
    Unix.putenv Em.Trace.ring_env_var v;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv Em.Trace.ring_env_var (Option.value old ~default:""))
      f
  in
  Tu.check_int "unset -> default" Em.Trace.default_ring_capacity
    (with_env "" Em.Trace.env_ring_capacity);
  Tu.check_int "set -> parsed" 3 (with_env "3" Em.Trace.env_ring_capacity);
  with_env "3" (fun () ->
      let t = Em.Trace.create () in
      for i = 0 to 9 do
        Em.Trace.emit t Em.Trace.Write ~block:i ~phase:[]
      done;
      Tu.check_int "create honours the env capacity" 3
        (List.length (Em.Trace.events t)));
  with_env "3" (fun () ->
      let t = Em.Trace.create ~ring_capacity:5 () in
      for i = 0 to 9 do
        Em.Trace.emit t Em.Trace.Write ~block:i ~phase:[]
      done;
      Tu.check_int "explicit capacity wins over the env" 5
        (List.length (Em.Trace.events t)));
  List.iter
    (fun bad ->
      match with_env bad Em.Trace.env_ring_capacity with
      | _ -> Alcotest.failf "%S must be rejected" bad
      | exception Invalid_argument _ -> ())
    [ "0"; "-4"; "many"; "3.5" ]

let suite =
  [
    Alcotest.test_case "device emits one event per I/O" `Quick test_device_emits_events;
    Alcotest.test_case "sequential vs random classification" `Quick
      test_locality_classification;
    Alcotest.test_case "ring buffer is bounded" `Quick test_ring_is_bounded;
    Alcotest.test_case "reset clears ring and numbering" `Quick test_reset;
    Alcotest.test_case "collector and counter sinks" `Quick test_collector_and_counter;
    Alcotest.test_case "reset clears stateful sinks" `Quick test_reset_clears_sinks;
    Alcotest.test_case "phase paths recorded on events" `Quick test_phase_paths_recorded;
    Alcotest.test_case "jsonl sink format" `Quick test_jsonl_sink;
    Alcotest.test_case "report: per-phase tree" `Quick test_report_tree;
    Alcotest.test_case "report: reuse histograms" `Quick test_report_histograms;
    Alcotest.test_case "linked ctx shares the tracer" `Quick test_linked_ctx_shares_tracer;
    Alcotest.test_case "EM_TRACE_RING env default" `Quick test_env_ring_capacity;
  ]
