(* Tests for the packed (linked-list) output format of multi-partition and
   approximate partitioning — the paper's literal output convention. *)

(* Slice a packed result back into per-partition arrays for verification. *)
let slices (packed : int Core.Partitioning.packed) =
  let data = Em.Vec.Oracle.to_array packed.Core.Partitioning.data in
  let offset = ref 0 in
  Array.map
    (fun size ->
      let piece = Array.sub data !offset size in
      offset := !offset + size;
      piece)
    packed.Core.Partitioning.sizes

let check_packed ~name spec packed input =
  let pieces = slices packed in
  Tu.check_int (name ^ ": data covers everything") (Array.length input)
    (Em.Vec.length packed.Core.Partitioning.data);
  Tu.check_ok (name ^ ": verifies")
    (Core.Verify.partitioning Tu.icmp ~input spec pieces)

let run ~seed spec =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let input = Tu.random_perm ~seed spec.Core.Problem.n in
  let v = Tu.int_vec ctx input in
  let packed = Core.Partitioning.solve_packed Tu.icmp v spec in
  check_packed ~name:(Core.Problem.variant_name (Core.Problem.classify spec)) spec packed
    input;
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use

let test_packed_right () = run ~seed:1 { Core.Problem.n = 10_000; k = 16; a = 300; b = 10_000 }
let test_packed_left () = run ~seed:2 { Core.Problem.n = 10_000; k = 16; a = 0; b = 1_000 }
let test_packed_two_sided () = run ~seed:3 { Core.Problem.n = 10_000; k = 10; a = 100; b = 4_000 }
let test_packed_shortcut () = run ~seed:4 { Core.Problem.n = 10_000; k = 10; a = 700; b = 1_400 }
let test_packed_unconstrained () = run ~seed:5 { Core.Problem.n = 1_000; k = 5; a = 0; b = 1_000 }

let test_packed_matches_separate () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let spec = { Core.Problem.n = 8_000; k = 8; a = 500; b = 8_000 } in
  let input = Tu.random_perm ~seed:6 8_000 in
  let v = Tu.int_vec ctx input in
  let packed = Core.Partitioning.solve_packed Tu.icmp v spec in
  let separate = Core.Partitioning.solve Tu.icmp v spec in
  Tu.check_int_array "same sizes"
    (Array.map Em.Vec.length separate)
    packed.Core.Partitioning.sizes

let test_packed_avoids_partial_blocks () =
  (* a = 2, K = 2048: the separate output must pay ~K partial blocks, the
     packed output only ~aK/B + data blocks.  This is exactly the regime
     where only the linked-list format meets the Theorem 6 bound. *)
  let n = 65_536 and k = 2_048 and a = 2 in
  let spec = { Core.Problem.n; k; a; b = n } in
  let measure solve =
    let ctx = Tu.ctx ~mem:4096 ~block:64 () in
    let v = Tu.int_vec ctx (Tu.random_perm ~seed:7 n) in
    let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
    solve v;
    ctx.Em.Ctx.stats.Em.Stats.writes - snap.Em.Stats.at_writes
  in
  let packed_writes =
    measure (fun v -> ignore (Core.Partitioning.solve_packed Tu.icmp v spec))
  in
  let separate_writes =
    measure (fun v -> ignore (Core.Partitioning.solve Tu.icmp v spec))
  in
  Tu.check_bool
    (Printf.sprintf "separate pays ~K partial blocks (%d writes)" separate_writes)
    true
    (separate_writes >= k - 1);
  (* Packed pays ~2 N/B (the split + re-streaming the big partition) with no
     per-partition term; separate pays the same plus ~K partial blocks. *)
  Tu.check_bool
    (Printf.sprintf "packed has no per-partition term (%d writes)" packed_writes)
    true
    (packed_writes <= (3 * n / 64) + 300);
  Tu.check_bool
    (Printf.sprintf "packed (%d) saves the ~K partial blocks of separate (%d)"
       packed_writes separate_writes)
    true
    (packed_writes + (k / 3) <= separate_writes)

let test_packed_multi_partition_into () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let n = 5_000 in
  let input = Tu.random_perm ~seed:8 n in
  let v = Tu.int_vec ctx input in
  let ictx : int Em.Ctx.t = Em.Ctx.linked ctx in
  let bounds = Em.Vec.of_array ictx [| 1_000; 2_500; 4_999 |] in
  let data =
    Em.Writer.with_writer ctx (fun w ->
        Core.Multi_partition.partition_packed_into Tu.icmp v ~bounds w)
  in
  let flat = Em.Vec.Oracle.to_array data in
  Tu.check_int "everything present" n (Array.length flat);
  (* Slice at the cut positions and run the oracle. *)
  let sizes = [| 1_000; 1_500; 2_499; 1 |] in
  let offset = ref 0 in
  let pieces =
    Array.map
      (fun size ->
        let piece = Array.sub flat !offset size in
        offset := !offset + size;
        piece)
      sizes
  in
  Tu.check_ok "oracle" (Core.Verify.multi_partition Tu.icmp ~input ~sizes pieces)

let suite =
  [
    Alcotest.test_case "packed: right-grounded" `Quick test_packed_right;
    Alcotest.test_case "packed: left-grounded" `Quick test_packed_left;
    Alcotest.test_case "packed: two-sided" `Quick test_packed_two_sided;
    Alcotest.test_case "packed: shortcut" `Quick test_packed_shortcut;
    Alcotest.test_case "packed: unconstrained" `Quick test_packed_unconstrained;
    Alcotest.test_case "packed: matches separate" `Quick test_packed_matches_separate;
    Alcotest.test_case "packed: avoids partial blocks" `Quick
      test_packed_avoids_partial_blocks;
    Alcotest.test_case "packed: multi-partition into" `Quick
      test_packed_multi_partition_into;
  ]
