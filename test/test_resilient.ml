(* Recovery semantics: retry, checksum verification, quarantine + remap, and
   the metering of it all (faulted attempts and retries are real I/Os). *)

let armed_ctx ?policy () =
  let ctx = Tu.ctx () in
  Em.Ctx.arm ?policy ctx;
  ctx

(* Write a block through the device, then read it back through Resilient. *)
let write_block ctx payload =
  let dev = ctx.Em.Ctx.dev in
  let id = Em.Device.alloc dev in
  Em.Resilient.write dev id payload;
  id

let test_unarmed_fault_escapes () =
  let ctx = Tu.ctx () in
  let dev = ctx.Em.Ctx.dev in
  let id = Em.Device.alloc dev in
  Em.Device.write dev id [| 1; 2; 3 |];
  Em.Ctx.inject ctx (Em.Fault.every_nth ~n:1 Em.Fault.Transient_read);
  (match Em.Resilient.read dev id with
  | _ -> Alcotest.fail "expected raw Io_fault"
  | exception Em.Em_error.Error (Em.Em_error.Io_fault { op = `Read; kind; block }) ->
      Tu.check_bool "kind" true (kind = Em.Fault.Transient_read);
      Tu.check_int "block" id block
  | exception e -> raise e);
  Tu.check_int "faulted attempt still metered" 1 ctx.Em.Ctx.stats.Em.Stats.reads

let test_transient_read_recovers () =
  let ctx = armed_ctx () in
  let dev = ctx.Em.Ctx.dev in
  let id = write_block ctx [| 10; 20; 30 |] in
  (* Fault the first read attempt only. *)
  Em.Ctx.inject ctx (Em.Fault.limit 1 (Em.Fault.every_nth ~n:1 Em.Fault.Transient_read));
  Tu.check_int_array "recovered payload" [| 10; 20; 30 |] (Em.Resilient.read dev id);
  Tu.check_int "two read attempts metered" 2 ctx.Em.Ctx.stats.Em.Stats.reads;
  Tu.check_int "one fault" 1 ctx.Em.Ctx.stats.Em.Stats.faults;
  Tu.check_int "one retry" 1 ctx.Em.Ctx.stats.Em.Stats.retries;
  match Em.Ctx.fault_report ctx with
  | None -> Alcotest.fail "armed device must report"
  | Some r -> Tu.check_int "recovered op counted" 1 r.Em.Device.counters.Em.Device.recovered

let test_retry_exhaustion () =
  let ctx = armed_ctx ~policy:{ Em.Device.default_policy with max_retries = 2 } () in
  let dev = ctx.Em.Ctx.dev in
  let id = write_block ctx [| 1 |] in
  Em.Ctx.inject ctx (Em.Fault.every_nth ~n:1 Em.Fault.Transient_read);
  (match Em.Resilient.read dev id with
  | _ -> Alcotest.fail "expected Read_failed"
  | exception Em.Em_error.Error (Em.Em_error.Read_failed { block; attempts }) ->
      Tu.check_int "failed block" id block;
      Tu.check_int "budget exhausted" 3 attempts);
  Tu.check_int "all attempts metered" 3 ctx.Em.Ctx.stats.Em.Stats.reads

let test_permanent_read_fails_fast () =
  let ctx = armed_ctx () in
  let dev = ctx.Em.Ctx.dev in
  let id = write_block ctx [| 5; 6 |] in
  Em.Ctx.inject ctx (Em.Fault.limit 1 (Em.Fault.every_nth ~n:1 Em.Fault.Permanent_read));
  (match Em.Resilient.read dev id with
  | _ -> Alcotest.fail "expected Read_failed"
  | exception Em.Em_error.Error (Em.Em_error.Read_failed { attempts; _ }) ->
      Tu.check_int "no pointless retries of a dead block" 1 attempts);
  (* The fault is sticky: later reads fail too, even with the plan spent. *)
  match Em.Resilient.read dev id with
  | _ -> Alcotest.fail "expected sticky failure"
  | exception Em.Em_error.Error (Em.Em_error.Read_failed _) -> ()

let test_bit_corruption_on_read_recovers () =
  let ctx = armed_ctx () in
  let dev = ctx.Em.Ctx.dev in
  let id = write_block ctx [| 1; 2; 3; 4 |] in
  Em.Ctx.inject ctx (Em.Fault.limit 1 (Em.Fault.every_nth ~n:1 Em.Fault.Bit_corruption));
  (* The store stays intact, so verify-on-read catches the garbled copy and
     the metered re-read returns clean data. *)
  Tu.check_int_array "verified payload" [| 1; 2; 3; 4 |] (Em.Resilient.read dev id);
  Tu.check_int "retry happened" 1 ctx.Em.Ctx.stats.Em.Stats.retries;
  match Em.Ctx.fault_report ctx with
  | None -> assert false
  | Some r ->
      Tu.check_int "checksum failure recorded" 1
        r.Em.Device.counters.Em.Device.checksum_failures

let test_torn_write_detected_on_read () =
  let ctx = armed_ctx () in
  let dev = ctx.Em.Ctx.dev in
  Em.Ctx.inject ctx (Em.Fault.limit 1 (Em.Fault.every_nth ~n:1 Em.Fault.Torn_write));
  let id = write_block ctx [| 1; 2; 3; 4; 5; 6 |] in
  (* The tear was silent (no verify_writes in the default policy), but the
     stored data is durably short, so every verified read attempt fails. *)
  match Em.Resilient.read dev id with
  | _ -> Alcotest.fail "expected Corrupt_block"
  | exception Em.Em_error.Error (Em.Em_error.Corrupt_block { block; attempts }) ->
      Tu.check_int "corrupt block" id block;
      Tu.check_bool "used the whole budget" true (attempts >= 1)

let test_verify_writes_catches_tear () =
  let policy = { Em.Device.default_policy with verify_writes = true } in
  let ctx = armed_ctx ~policy () in
  let dev = ctx.Em.Ctx.dev in
  Em.Ctx.inject ctx (Em.Fault.limit 1 (Em.Fault.every_nth ~n:1 Em.Fault.Torn_write));
  let id = write_block ctx [| 1; 2; 3; 4; 5; 6 |] in
  (* Read-back verification caught the tear at write time and rewrote. *)
  Tu.check_int_array "output correct on disk" [| 1; 2; 3; 4; 5; 6 |]
    (Em.Device.Oracle.read dev id);
  Tu.check_bool "tear cost retries" true (ctx.Em.Ctx.stats.Em.Stats.retries >= 1)

let test_permanent_write_remaps () =
  let ctx = armed_ctx () in
  let dev = ctx.Em.Ctx.dev in
  Em.Ctx.inject ctx (Em.Fault.limit 1 (Em.Fault.every_nth ~n:1 Em.Fault.Permanent_write));
  let id = write_block ctx [| 7; 8; 9 |] in
  (* The write succeeded on a remapped healthy slot. *)
  Tu.check_int_array "payload readable through remap" [| 7; 8; 9 |] (Em.Resilient.read dev id);
  Tu.check_int_array "oracle follows the remap too" [| 7; 8; 9 |]
    (Em.Device.Oracle.read dev id);
  (match Em.Ctx.fault_report ctx with
  | None -> assert false
  | Some r ->
      Tu.check_int "one quarantined slot" 1 r.Em.Device.counters.Em.Device.quarantined;
      Tu.check_int "one remap" 1 r.Em.Device.counters.Em.Device.remapped);
  Tu.check_int "quarantine listed" 1 (List.length (Em.Device.quarantined_blocks dev));
  (* Freeing the remapped block retires the logical id and recycles only the
     healthy slot; the quarantined one never re-enters circulation. *)
  Em.Device.free dev id;
  Tu.check_int "no live blocks" 0 (Em.Device.live_blocks dev);
  let fresh = Em.Device.alloc dev in
  let quarantined = List.map fst (Em.Device.quarantined_blocks dev) in
  Tu.check_bool "quarantined slot not recycled" false (List.mem fresh quarantined)

let test_trace_records_faults_and_retries () =
  let ctx = armed_ctx () in
  let dev = ctx.Em.Ctx.dev in
  let id = write_block ctx [| 1; 2 |] in
  Em.Ctx.inject ctx (Em.Fault.limit 1 (Em.Fault.every_nth ~n:1 Em.Fault.Transient_read));
  Em.Phase.with_label ctx "probe" (fun () -> ignore (Em.Resilient.read dev id));
  let events = Em.Trace.events ctx.Em.Ctx.trace in
  let faulted =
    List.filter (fun e -> match e.Em.Trace.kind with Em.Trace.Faulted _ -> true | _ -> false)
      events
  in
  let retried = List.filter (fun e -> e.Em.Trace.kind = Em.Trace.Retry) events in
  Tu.check_int "one faulted event in ring" 1 (List.length faulted);
  Tu.check_int "one retry event in ring" 1 (List.length retried);
  (match faulted with
  | [ e ] ->
      Tu.check_bool "fault kind on event" true (e.Em.Trace.kind = Em.Trace.Faulted Em.Fault.Transient_read);
      Tu.check_bool "phase path on faulted event" true (e.Em.Trace.phase = [ "probe" ])
  | _ -> assert false);
  match retried with
  | [ e ] -> Tu.check_bool "phase path on retry event" true (e.Em.Trace.phase = [ "probe" ])
  | _ -> assert false

let test_measured_delta_includes_retries () =
  let ctx = armed_ctx () in
  let dev = ctx.Em.Ctx.dev in
  let id = write_block ctx [| 3; 1; 4 |] in
  Em.Ctx.inject ctx (Em.Fault.limit 2 (Em.Fault.every_nth ~n:1 Em.Fault.Transient_read));
  let payload, d = Em.Ctx.measured ctx (fun () -> Em.Resilient.read dev id) in
  Tu.check_int_array "payload" [| 3; 1; 4 |] payload;
  Tu.check_int "delta counts every attempt" 3 d.Em.Stats.d_reads;
  Tu.check_int "delta faults" 2 d.Em.Stats.d_faults;
  Tu.check_int "delta retries" 2 d.Em.Stats.d_retries

let test_trace_report_overhead () =
  let ctx = armed_ctx () in
  let dev = ctx.Em.Ctx.dev in
  let id = write_block ctx [| 1 |] in
  Em.Ctx.inject ctx (Em.Fault.limit 1 (Em.Fault.every_nth ~n:1 Em.Fault.Transient_read));
  Em.Phase.with_label ctx "probe" (fun () -> ignore (Em.Resilient.read dev id));
  let totals = Em.Trace_report.subtotal (Em.Trace_report.tree (Em.Trace.events ctx.Em.Ctx.trace)) in
  Tu.check_int "report sees fault" 1 totals.Em.Trace_report.faults;
  Tu.check_int "report sees retry" 1 totals.Em.Trace_report.retries;
  Tu.check_int "overhead = faults + retries" 2 (Em.Trace_report.overhead totals)

let test_linked_ctx_shares_plan_and_counters () =
  let ctx = armed_ctx () in
  Em.Ctx.inject ctx (Em.Fault.limit 1 (Em.Fault.every_nth ~n:1 Em.Fault.Transient_write));
  let pair_ctx : (int * int) Em.Ctx.t = Em.Ctx.linked ctx in
  let dev = pair_ctx.Em.Ctx.dev in
  let id = Em.Device.alloc dev in
  (* The linked device consults the same plan, and its recovery feeds the
     same counters. *)
  Em.Resilient.write dev id [| (1, 2) |];
  Tu.check_int "fault seen through linked device" 1 ctx.Em.Ctx.stats.Em.Stats.faults;
  match Em.Ctx.fault_report ctx with
  | None -> assert false
  | Some r -> Tu.check_int "shared recovered counter" 1 r.Em.Device.counters.Em.Device.recovered

let suite =
  [
    Alcotest.test_case "unarmed: fault escapes raw, still metered" `Quick
      test_unarmed_fault_escapes;
    Alcotest.test_case "transient read recovers" `Quick test_transient_read_recovers;
    Alcotest.test_case "retry exhaustion is typed" `Quick test_retry_exhaustion;
    Alcotest.test_case "permanent read fails fast and sticks" `Quick
      test_permanent_read_fails_fast;
    Alcotest.test_case "bit corruption on read recovers" `Quick
      test_bit_corruption_on_read_recovers;
    Alcotest.test_case "torn write detected on read" `Quick test_torn_write_detected_on_read;
    Alcotest.test_case "verify_writes catches tears at write time" `Quick
      test_verify_writes_catches_tear;
    Alcotest.test_case "permanent write quarantines and remaps" `Quick
      test_permanent_write_remaps;
    Alcotest.test_case "trace records faults and retries with phases" `Quick
      test_trace_records_faults_and_retries;
    Alcotest.test_case "measured delta includes retry I/Os" `Quick
      test_measured_delta_includes_retries;
    Alcotest.test_case "trace report shows fault overhead" `Quick test_trace_report_overhead;
    Alcotest.test_case "linked ctx shares plan and counters" `Quick
      test_linked_ctx_shares_plan_and_counters;
  ]
