(* Tests for the span profiler: full-path attribution, inclusive counters,
   and the central guarantee that observing a run never changes its
   simulated cost. *)

let scan_ios = 4 (* 64 ints / block 16 *)

let find_span profiler path =
  match
    List.find_opt (fun s -> s.Em.Profile.path = path) (Em.Profile.spans profiler)
  with
  | Some s -> s
  | None ->
      Alcotest.failf "no span %s" (Em.Profile.path_name path)

let test_span_attribution () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let profiler = Em.Profile.create () in
  Em.Profile.attach profiler ctx.Em.Ctx.stats;
  let v = Tu.int_vec ctx (Array.init 64 (fun i -> i)) in
  Em.Phase.with_label ctx "outer" (fun () ->
      Emalg.Scan.iter (fun _ -> ()) v;
      Em.Phase.with_label ctx "inner" (fun () -> Emalg.Scan.iter (fun _ -> ()) v));
  let outer = find_span profiler [ "outer" ] in
  let inner = find_span profiler [ "outer"; "inner" ] in
  Tu.check_int "outer is inclusive of inner" (2 * scan_ios)
    (Em.Profile.span_ios outer);
  Tu.check_int "inner covers only its own scan" scan_ios (Em.Profile.span_ios inner);
  Tu.check_int "outer entered once" 1 outer.Em.Profile.calls;
  Tu.check_int "all reads, no writes" (2 * scan_ios) outer.Em.Profile.reads;
  Tu.check_bool "wall clock is non-negative" true (outer.Em.Profile.wall_ns >= 0.);
  Tu.check_bool "spans saw the memory ledger" true (outer.Em.Profile.mem_peak > 0)

let test_calls_accumulate () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let profiler = Em.Profile.create () in
  Em.Profile.attach profiler ctx.Em.Ctx.stats;
  let v = Tu.int_vec ctx (Array.init 64 (fun i -> i)) in
  for _ = 1 to 3 do
    Em.Phase.with_label ctx "pass" (fun () -> Emalg.Scan.iter (fun _ -> ()) v)
  done;
  let s = find_span profiler [ "pass" ] in
  Tu.check_int "three calls" 3 s.Em.Profile.calls;
  Tu.check_int "costs accumulate across calls" (3 * scan_ios) (Em.Profile.span_ios s)

let test_recursive_label_extends_path () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let profiler = Em.Profile.create () in
  Em.Profile.attach profiler ctx.Em.Ctx.stats;
  let v = Tu.int_vec ctx (Array.init 64 (fun i -> i)) in
  Em.Phase.with_label ctx "rec" (fun () ->
      Emalg.Scan.iter (fun _ -> ()) v;
      Em.Phase.with_label ctx "rec" (fun () -> Emalg.Scan.iter (fun _ -> ()) v));
  let top = find_span profiler [ "rec" ] in
  let nested = find_span profiler [ "rec"; "rec" ] in
  Tu.check_int "top span is inclusive" (2 * scan_ios) (Em.Profile.span_ios top);
  Tu.check_int "nested same-label span is its own path" scan_ios
    (Em.Profile.span_ios nested)

let test_detach_stops_recording () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let profiler = Em.Profile.create () in
  Em.Profile.attach profiler ctx.Em.Ctx.stats;
  let v = Tu.int_vec ctx (Array.init 64 (fun i -> i)) in
  Em.Phase.with_label ctx "seen" (fun () -> Emalg.Scan.iter (fun _ -> ()) v);
  Em.Profile.detach ctx.Em.Ctx.stats;
  Em.Phase.with_label ctx "unseen" (fun () -> Emalg.Scan.iter (fun _ -> ()) v);
  Tu.check_int "only the attached-phase span exists" 1
    (List.length (Em.Profile.spans profiler));
  Em.Profile.reset profiler;
  Tu.check_int "reset drops spans" 0 (List.length (Em.Profile.spans profiler))

let test_publish_span_gauges () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let profiler = Em.Profile.create () in
  Em.Profile.attach profiler ctx.Em.Ctx.stats;
  let v = Tu.int_vec ctx (Array.init 64 (fun i -> i)) in
  Em.Phase.with_label ctx "work" (fun () -> Emalg.Scan.iter (fun _ -> ()) v);
  let reg = Em.Metrics.create () in
  Em.Profile.publish reg profiler;
  let labels = [ ("span", "work") ] in
  Alcotest.(check (float 1e-9))
    "span_ios gauge" (float_of_int scan_ios)
    (Em.Metrics.gauge_value (Em.Metrics.gauge reg ~labels "span_ios"));
  Alcotest.(check (float 1e-9))
    "span_calls gauge" 1.
    (Em.Metrics.gauge_value (Em.Metrics.gauge reg ~labels "span_calls"))

(* The tentpole's acceptance property: attaching the profiler and exporting
   a full registry must leave every simulated cost byte-identical. *)
let run_once ~observe seed =
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let profiler = Em.Profile.create () in
  if observe then Em.Profile.attach profiler ctx.Em.Ctx.stats;
  let n = 2_048 in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed n) in
  let cmp = Em.Ctx.counted ctx Tu.icmp in
  let (), d =
    Em.Ctx.measured ctx (fun () ->
        ignore (Core.Multi_select.select cmp v ~ranks:[| 1; n / 4; n / 2; n |]))
  in
  if observe then begin
    let reg = Em.Metrics.create () in
    Em.Metrics.publish_stats reg ctx.Em.Ctx.stats;
    Em.Profile.publish reg profiler;
    ignore (Em.Metrics.to_prometheus reg);
    ignore (Em.Metrics.to_json reg)
  end;
  ( Em.Stats.delta_ios d,
    d.Em.Stats.d_reads,
    d.Em.Stats.d_writes,
    d.Em.Stats.d_comparisons,
    ctx.Em.Ctx.stats.Em.Stats.mem_peak )

let test_observation_is_free =
  Tu.qcheck_case ~count:25 "profiling + metrics leave costs identical"
    QCheck2.Gen.(int_bound 10_000)
    (fun seed -> run_once ~observe:false seed = run_once ~observe:true seed)

let suite =
  [
    Alcotest.test_case "span attribution on full paths" `Quick test_span_attribution;
    Alcotest.test_case "calls accumulate" `Quick test_calls_accumulate;
    Alcotest.test_case "recursive label extends the path" `Quick
      test_recursive_label_extends_path;
    Alcotest.test_case "detach / reset" `Quick test_detach_stops_recording;
    Alcotest.test_case "publish span gauges" `Quick test_publish_span_gauges;
    test_observation_is_free;
  ]
