(* Tests for per-phase I/O attribution. *)

let test_labels_attribute_ios () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let v = Tu.int_vec ctx (Array.init 160 (fun i -> i)) in
  Em.Phase.with_label ctx "copying" (fun () -> ignore (Emalg.Scan.copy v));
  Emalg.Scan.iter (fun _ -> ()) v;
  let report = Em.Phase.report ctx in
  Tu.check_int "copy phase = 20 I/Os" 20 (List.assoc "copying" report);
  Tu.check_int "unlabeled scan = 10 I/Os" 10 (List.assoc "(other)" report)

let test_phases_sum_to_total () =
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let n = 4_000 in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:1 n) in
  ignore (Core.Multi_select.select Tu.icmp v ~ranks:[| 1; n / 2; n |]);
  let total = Em.Stats.ios ctx.Em.Ctx.stats in
  let sum = List.fold_left (fun acc (_, ios) -> acc + ios) 0 (Em.Phase.report ctx) in
  Tu.check_int "phases partition the total" total sum

let test_nesting_full_path () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let v = Tu.int_vec ctx (Array.init 64 (fun i -> i)) in
  Em.Phase.with_label ctx "outer" (fun () ->
      Emalg.Scan.iter (fun _ -> ()) v;
      Em.Phase.with_label ctx "inner" (fun () -> Emalg.Scan.iter (fun _ -> ()) v));
  let report = Em.Phase.report ctx in
  Tu.check_int "outer keeps only its own I/Os" 4 (List.assoc "outer" report);
  Tu.check_int "nested I/Os key on the joined path" 4 (List.assoc "outer/inner" report);
  Tu.check_bool "no bare 'inner' key" true (not (List.mem_assoc "inner" report))

(* Regression: the same leaf label under two different parents must stay
   two separate report entries (innermost-label keying conflated them). *)
let test_shared_leaf_not_conflated () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let v = Tu.int_vec ctx (Array.init 64 (fun i -> i)) in
  Em.Phase.with_label ctx "sort" (fun () ->
      Em.Phase.with_label ctx "merge" (fun () -> Emalg.Scan.iter (fun _ -> ()) v));
  Em.Phase.with_label ctx "multiselect" (fun () ->
      Em.Phase.with_label ctx "merge" (fun () ->
          Emalg.Scan.iter (fun _ -> ()) v;
          Emalg.Scan.iter (fun _ -> ()) v));
  let report = Em.Phase.report ctx in
  Tu.check_int "merge under sort" 4 (List.assoc "sort/merge" report);
  Tu.check_int "merge under multiselect" 8 (List.assoc "multiselect/merge" report);
  Tu.check_bool "no conflated 'merge' key" true (not (List.mem_assoc "merge" report))

let test_label_restored_on_raise () =
  let ctx = Tu.ctx () in
  (match Em.Phase.with_label ctx "doomed" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected exception"
  | exception Failure _ -> ());
  Tu.check_bool "stack restored" true (ctx.Em.Ctx.stats.Em.Stats.phase_stack = [])

let suite =
  [
    Alcotest.test_case "labels attribute I/Os" `Quick test_labels_attribute_ios;
    Alcotest.test_case "phases sum to total" `Quick test_phases_sum_to_total;
    Alcotest.test_case "nesting: full-path keys" `Quick test_nesting_full_path;
    Alcotest.test_case "shared leaf label not conflated" `Quick test_shared_leaf_not_conflated;
    Alcotest.test_case "label restored on raise" `Quick test_label_restored_on_raise;
  ]
