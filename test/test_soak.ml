(* The chaos soak harness (Core.Soak): property-tested over random
   geometry/seed/kill schedules — the restored session's answers always
   equal the crash-free oracle's, total I/Os stay within the k-crash
   overhead bound, and the memory ledger holds through every recovery. *)

let soak_prop (n, seed, queries, kills) =
  let cfg =
    {
      (Core.Soak.default ~n ~queries) with
      Core.Soak.seed;
      crash_after = Core.Soak.spread_crashes ~queries ~k:kills;
    }
  in
  let o = Core.Soak.run cfg in
  if not o.Core.Soak.answers_match then
    QCheck2.Test.fail_reportf "answers diverged from the oracle (n=%d seed=%d kills=%d)" n
      seed kills;
  if not o.Core.Soak.within_bound then
    QCheck2.Test.fail_reportf "chaos %d I/Os > allowed %d (n=%d seed=%d crashes=%d)"
      o.Core.Soak.chaos_ios o.Core.Soak.allowed_ios n seed o.Core.Soak.crashes;
  if not o.Core.Soak.mem_ok then
    QCheck2.Test.fail_reportf "memory ledger breached M (n=%d seed=%d)" n seed;
  o.Core.Soak.crashes = List.length cfg.Core.Soak.crash_after

let gen =
  QCheck2.Gen.(
    quad (int_range 4_096 12_000) (int_range 0 1_000) (int_range 16 48) (int_range 1 3))

(* Fixed deep cases pinning the corners the generator visits rarely. *)

let test_faulted_soak () =
  let queries = 32 in
  let cfg =
    {
      (Core.Soak.default ~n:8_192 ~queries) with
      Core.Soak.crash_after = Core.Soak.spread_crashes ~queries ~k:2;
      fault_p = 1.0 /. 256.0;
      fault_seed = 11;
    }
  in
  let o = Core.Soak.run cfg in
  Tu.check_bool "answers match under transient faults + kills" true o.Core.Soak.answers_match;
  Tu.check_bool "bound holds under transient faults" true o.Core.Soak.within_bound;
  Tu.check_bool "memory ledger holds" true o.Core.Soak.mem_ok;
  Tu.check_int "both kills happened" 2 o.Core.Soak.crashes

let test_cached_backend_soak () =
  let queries = 32 in
  let cfg =
    {
      (Core.Soak.default ~n:8_192 ~queries) with
      Core.Soak.backend = Some (Em.Backend.Cached Em.Backend.Sim);
      crash_after = Core.Soak.spread_crashes ~queries ~k:3;
    }
  in
  let o = Core.Soak.run cfg in
  Tu.check_bool "answers match through pool wipes" true o.Core.Soak.answers_match;
  Tu.check_bool "bound holds on the cached backend" true o.Core.Soak.within_bound;
  Tu.check_int "all kills happened" 3 o.Core.Soak.crashes

let test_crash_log_accounting () =
  let queries = 24 in
  let crash_after = [ 5; 6; 20 ] in
  let cfg = { (Core.Soak.default ~n:6_000 ~queries) with Core.Soak.crash_after } in
  let seen = ref [] in
  let o = Core.Soak.run ~on_crash:(fun r -> seen := r.Core.Soak.after_query :: !seen) cfg in
  Tu.check_bool "on_crash observed the schedule in order" true (List.rev !seen = crash_after);
  Tu.check_bool "crash log mirrors the schedule" true
    (List.map (fun r -> r.Core.Soak.after_query) o.Core.Soak.crash_log = crash_after);
  Tu.check_bool "every restore paid a metered resume read" true
    (List.for_all (fun r -> r.Core.Soak.resume_load_ios >= 1) o.Core.Soak.crash_log);
  Tu.check_int "loads counted per crash" 3 o.Core.Soak.loads;
  (* The end-of-query checkpoint policy means kills between queries redo no
     refinement: the chaos run pays exactly its resume loads on top of the
     oracle. *)
  Tu.check_int "chaos = oracle + resume loads, nothing redone"
    (o.Core.Soak.oracle_ios + o.Core.Soak.load_ios)
    o.Core.Soak.chaos_ios

let test_spread_crashes () =
  Tu.check_bool "spread never schedules after the last query" true
    (List.for_all
       (fun k ->
         List.for_all
           (fun q -> q >= 1 && q < 40)
           (Core.Soak.spread_crashes ~queries:40 ~k))
       [ 1; 2; 3; 7 ]);
  Tu.check_int "k crashes scheduled" 3
    (List.length (Core.Soak.spread_crashes ~queries:40 ~k:3));
  Tu.check_int "degenerate stream gets none" 0
    (List.length (Core.Soak.spread_crashes ~queries:1 ~k:2))

let suite =
  [
    Tu.qcheck_case ~count:12 "soak survives random kill schedules" gen soak_prop;
    Alcotest.test_case "soak under transient faults" `Quick test_faulted_soak;
    Alcotest.test_case "soak on the cached backend" `Quick test_cached_backend_soak;
    Alcotest.test_case "crash log accounting" `Quick test_crash_log_accounting;
    Alcotest.test_case "spread_crashes shape" `Quick test_spread_crashes;
  ]
