(* Tests for the EM machine simulator: params, stats, device, mem ledger,
   vec, reader, writer. *)

let test_params_valid () =
  let p = Em.Params.create ~mem:64 ~block:8 in
  Tu.check_int "mem" 64 p.Em.Params.mem;
  Tu.check_int "block" 8 p.Em.Params.block;
  Tu.check_int "fanout" 8 (Em.Params.fanout p)

let test_params_invalid () =
  Alcotest.check_raises "block 0" (Invalid_argument "Params.create: block size must be >= 1")
    (fun () -> ignore (Em.Params.create ~mem:64 ~block:0));
  Alcotest.check_raises "M < 2B"
    (Invalid_argument "Params.create: memory must hold at least two blocks (M >= 2B)")
    (fun () -> ignore (Em.Params.create ~mem:15 ~block:8))

let test_blocks_of_elems () =
  let p = Em.Params.create ~mem:64 ~block:8 in
  Tu.check_int "0 elems" 0 (Em.Params.blocks_of_elems p 0);
  Tu.check_int "1 elem" 1 (Em.Params.blocks_of_elems p 1);
  Tu.check_int "8 elems" 1 (Em.Params.blocks_of_elems p 8);
  Tu.check_int "9 elems" 2 (Em.Params.blocks_of_elems p 9)

let test_device_roundtrip () =
  let ctx = Tu.ctx () in
  let dev = ctx.Em.Ctx.dev in
  let id = Em.Device.alloc dev in
  Em.Device.write dev id [| 1; 2; 3 |];
  Tu.check_int_array "roundtrip" [| 1; 2; 3 |] (Em.Device.read dev id);
  Tu.check_int "one read" 1 ctx.Em.Ctx.stats.Em.Stats.reads;
  Tu.check_int "one write" 1 ctx.Em.Ctx.stats.Em.Stats.writes

let test_device_copy_semantics () =
  let ctx = Tu.ctx () in
  let dev = ctx.Em.Ctx.dev in
  let id = Em.Device.alloc dev in
  let payload = [| 1; 2 |] in
  Em.Device.write dev id payload;
  payload.(0) <- 99;
  Tu.check_int_array "payload copied on write" [| 1; 2 |] (Em.Device.read dev id);
  let out = Em.Device.read dev id in
  out.(0) <- 42;
  Tu.check_int_array "payload copied on read" [| 1; 2 |] (Em.Device.read dev id)

let test_device_free_recycles () =
  let ctx = Tu.ctx () in
  let dev = ctx.Em.Ctx.dev in
  let id = Em.Device.alloc dev in
  Em.Device.write dev id [| 7 |];
  Em.Device.free dev id;
  Tu.check_int "live count" 0 (Em.Device.live_blocks dev);
  (* The freed slot comes back from the next allocation that lands on its
     disk, so within one round-robin sweep of D allocations exactly one
     returns it (at D = 1 that is the very next allocation). *)
  let ids = Array.init (Em.Ctx.disks ctx) (fun _ -> Em.Device.alloc dev) in
  Tu.check_bool "id recycled" true (Array.exists (fun i -> i = id) ids);
  Alcotest.check_raises "freed block unreadable" (Em.Em_error.Never_written { id })
    (fun () -> ignore (Em.Device.read dev id))

let test_device_double_free () =
  (* Regression: freeing an id twice used to push it onto the free list twice
     and decrement [live] twice, so one block could later be handed out to
     two different allocations.  Now the second free raises. *)
  let ctx = Tu.ctx () in
  let dev = ctx.Em.Ctx.dev in
  let a = Em.Device.alloc dev in
  let b = Em.Device.alloc dev in
  Em.Device.free dev a;
  Alcotest.check_raises "double free detected" (Em.Em_error.Double_free { id = a }) (fun () ->
      Em.Device.free dev a);
  Tu.check_int "live unaffected by failed free" 1 (Em.Device.live_blocks dev);
  (* The free list must hold [a] exactly once: two allocations may not alias. *)
  let c = Em.Device.alloc dev in
  let d = Em.Device.alloc dev in
  Tu.check_bool "no aliased allocation" false (c = d);
  Em.Device.free dev b;
  Em.Device.free dev c;
  Em.Device.free dev d;
  Tu.check_int "all freed" 0 (Em.Device.live_blocks dev)

let test_device_bad_block_id () =
  let ctx = Tu.ctx () in
  let dev = ctx.Em.Ctx.dev in
  Alcotest.check_raises "read unknown id" (Em.Em_error.Bad_block_id { op = "read"; id = 99 })
    (fun () -> ignore (Em.Device.read dev 99));
  Alcotest.check_raises "write unknown id" (Em.Em_error.Bad_block_id { op = "write"; id = 99 })
    (fun () -> Em.Device.write dev 99 [| 1 |]);
  Alcotest.check_raises "free unknown id" (Em.Em_error.Bad_block_id { op = "free"; id = -1 })
    (fun () -> Em.Device.free dev (-1))

let test_device_oversize_payload () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let dev = ctx.Em.Ctx.dev in
  let id = Em.Device.alloc dev in
  Alcotest.check_raises "payload too big" (Em.Em_error.Payload_overflow { len = 9; block = 8 })
    (fun () -> Em.Device.write dev id (Array.make 9 0))

let test_device_oracle_unmetered () =
  let ctx = Tu.ctx () in
  let dev = ctx.Em.Ctx.dev in
  let id = Em.Device.alloc dev in
  Em.Device.Oracle.write dev id [| 4; 5; 6 |];
  Tu.check_int_array "oracle roundtrip" [| 4; 5; 6 |] (Em.Device.Oracle.read dev id);
  Tu.check_int "no reads counted" 0 ctx.Em.Ctx.stats.Em.Stats.reads;
  Tu.check_int "no writes counted" 0 ctx.Em.Ctx.stats.Em.Stats.writes;
  Tu.check_int "no trace events" 0 (Em.Trace.total ctx.Em.Ctx.trace)

let test_ctx_measured () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let v = Tu.int_vec ctx (Array.init 16 (fun i -> i)) in
  let total, d =
    Em.Ctx.measured ctx (fun () ->
        Em.Reader.with_reader v (fun r ->
            let acc = ref 0 in
            while Em.Reader.has_next r do
              acc := !acc + Em.Reader.next r
            done;
            !acc))
  in
  Tu.check_int "result passed through" 120 total;
  Tu.check_int "delta reads" 2 d.Em.Stats.d_reads;
  Tu.check_int "delta writes" 0 d.Em.Stats.d_writes;
  Tu.check_int "delta ios" 2 (Em.Stats.delta_ios d);
  (* The bracket reports without disturbing the cumulative counters. *)
  Tu.check_int "cumulative reads intact" 2 ctx.Em.Ctx.stats.Em.Stats.reads

let test_mem_ledger () =
  let p = Tu.params ~mem:64 ~block:8 () in
  let s = Em.Stats.create () in
  Em.Mem.charge p s 40;
  Em.Mem.charge p s 24;
  Tu.check_int "in use" 64 s.Em.Stats.mem_in_use;
  Tu.check_int "peak" 64 s.Em.Stats.mem_peak;
  Em.Mem.release p s 64;
  Tu.check_int "drained" 0 s.Em.Stats.mem_in_use;
  Tu.check_int "peak sticks" 64 s.Em.Stats.mem_peak

let test_mem_ledger_overflow () =
  let p = Tu.params ~mem:64 ~block:8 () in
  let s = Em.Stats.create () in
  Em.Mem.charge p s 60;
  (match Em.Mem.charge p s 5 with
  | () -> Alcotest.fail "expected Memory_exceeded"
  | exception Em.Mem.Memory_exceeded { requested; in_use; capacity } ->
      Tu.check_int "requested" 5 requested;
      Tu.check_int "in_use" 60 in_use;
      Tu.check_int "capacity" 64 capacity);
  Em.Mem.release p s 60

let test_mem_ledger_misuse () =
  let p = Tu.params ~mem:64 ~block:8 () in
  let s = Em.Stats.create () in
  Em.Mem.charge p s 10;
  Alcotest.check_raises "over-release" (Em.Em_error.Over_release { releasing = 11; in_use = 10 })
    (fun () -> Em.Mem.release p s 11);
  Alcotest.check_raises "negative charge" (Em.Em_error.Negative_words { op = "charge"; n = -3 })
    (fun () -> Em.Mem.charge p s (-3));
  Alcotest.check_raises "negative release"
    (Em.Em_error.Negative_words { op = "release"; n = -1 }) (fun () -> Em.Mem.release p s (-1));
  Tu.check_int "ledger untouched by rejected calls" 10 s.Em.Stats.mem_in_use;
  Em.Mem.release p s 10

let test_mem_with_words_releases_on_raise () =
  let p = Tu.params () in
  let s = Em.Stats.create () in
  (match Em.Mem.with_words p s 10 (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected exception"
  | exception Failure _ -> ());
  Tu.check_int "released after raise" 0 s.Em.Stats.mem_in_use

let test_vec_of_array_costs_nothing () =
  let ctx = Tu.ctx () in
  let v = Tu.int_vec ctx (Array.init 100 (fun i -> i)) in
  Tu.check_int "no I/O for setup" 0 (Em.Stats.ios ctx.Em.Ctx.stats);
  Tu.check_int "length" 100 (Em.Vec.length v);
  Tu.check_int "blocks" 7 (Em.Vec.num_blocks v)

let test_vec_roundtrip () =
  let ctx = Tu.ctx () in
  let a = Tu.random_ints ~seed:7 ~bound:1000 123 in
  let v = Tu.int_vec ctx a in
  Tu.check_int_array "roundtrip" a (Em.Vec.Oracle.to_array v)

let test_vec_oracle_get () =
  let ctx = Tu.ctx () in
  let a = Array.init 50 (fun i -> i * 3) in
  let v = Tu.int_vec ctx a in
  Tu.check_int "get 0" 0 (Em.Vec.Oracle.get v 0);
  Tu.check_int "get 17" 51 (Em.Vec.Oracle.get v 17);
  Tu.check_int "get 49" 147 (Em.Vec.Oracle.get v 49);
  Alcotest.check_raises "oob" (Invalid_argument "Vec.Oracle.get: index out of bounds")
    (fun () -> ignore (Em.Vec.Oracle.get v 50))

let test_reader_sequential () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let a = Array.init 20 (fun i -> i * i) in
  let v = Tu.int_vec ctx a in
  Em.Reader.with_reader v (fun r ->
      for i = 0 to 19 do
        Tu.check_int "peek" a.(i) (Em.Reader.peek r);
        Tu.check_int "next" a.(i) (Em.Reader.next r)
      done;
      Tu.check_bool "exhausted" false (Em.Reader.has_next r));
  Tu.check_int "reads = ceil(20/8)" 3 ctx.Em.Ctx.stats.Em.Stats.reads;
  Tu.check_no_leaks ~live:3 ctx

let test_reader_charges_buffer () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let v = Tu.int_vec ctx [| 1; 2; 3 |] in
  let r = Em.Reader.open_vec v in
  Tu.check_int "buffer charged" 8 ctx.Em.Ctx.stats.Em.Stats.mem_in_use;
  Em.Reader.close r;
  Tu.check_int "buffer released" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use

let test_reader_take () =
  let ctx = Tu.ctx () in
  let a = Array.init 37 (fun i -> i) in
  let v = Tu.int_vec ctx a in
  Em.Reader.with_reader v (fun r ->
      Tu.check_int_array "take 10" (Array.init 10 (fun i -> i)) (Em.Reader.take r 10);
      Tu.check_int "remaining" 27 (Em.Reader.remaining r);
      Tu.check_int_array "take rest" (Array.init 27 (fun i -> 10 + i)) (Em.Reader.take r 100);
      Tu.check_int_array "take at end" [||] (Em.Reader.take r 5))

let test_writer_roundtrip () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let v =
    Em.Writer.with_writer ctx (fun w ->
        for i = 0 to 19 do
          Em.Writer.push w (i * 2)
        done)
  in
  Tu.check_int "writes = ceil(20/8)" 3 ctx.Em.Ctx.stats.Em.Stats.writes;
  Tu.check_int_array "contents" (Array.init 20 (fun i -> i * 2)) (Em.Vec.Oracle.to_array v);
  Tu.check_no_leaks ~live:3 ctx

let test_writer_empty () =
  let ctx = Tu.ctx () in
  let v = Em.Writer.with_writer ctx (fun _ -> ()) in
  Tu.check_int "empty vec" 0 (Em.Vec.length v);
  Tu.check_int "no I/O" 0 (Em.Stats.ios ctx.Em.Ctx.stats)

let test_writer_abandon_frees () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let w = Em.Writer.create ctx in
  for i = 0 to 19 do
    Em.Writer.push w i
  done;
  Em.Writer.abandon w;
  Tu.check_int "no live blocks" 0 (Em.Device.live_blocks ctx.Em.Ctx.dev);
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use

let test_vec_concat_free () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let v1 = Tu.int_vec ctx (Array.init 16 (fun i -> i)) in
  let v2 = Tu.int_vec ctx (Array.init 5 (fun i -> 100 + i)) in
  let v = Em.Vec.concat_free [ v1; v2 ] in
  Tu.check_int "length" 21 (Em.Vec.length v);
  Tu.check_int_array "contents"
    (Array.append (Array.init 16 (fun i -> i)) (Array.init 5 (fun i -> 100 + i)))
    (Em.Vec.Oracle.to_array v);
  Alcotest.check_raises "partial non-final block rejected"
    (Invalid_argument "Vec.concat_free: non-final vector has a partial last block")
    (fun () -> ignore (Em.Vec.concat_free [ v2; v1 ]))

let test_stats_snapshot () =
  let ctx = Tu.ctx () in
  let v = Tu.int_vec ctx (Array.init 64 (fun i -> i)) in
  let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
  Em.Reader.with_reader v (fun r -> while Em.Reader.has_next r do ignore (Em.Reader.next r) done);
  Tu.check_int "ios since" 4 (Em.Stats.ios_since ctx.Em.Ctx.stats snap)

let test_counted_comparator () =
  let ctx = Tu.ctx () in
  let cmp = Em.Ctx.counted ctx Tu.icmp in
  ignore (cmp 1 2);
  ignore (cmp 3 3);
  Tu.check_int "two comparisons" 2 ctx.Em.Ctx.stats.Em.Stats.comparisons

let test_linked_ctx_shares_meters () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let pair_ctx : (int * int) Em.Ctx.t = Em.Ctx.linked ctx in
  let v = Em.Writer.with_writer pair_ctx (fun w -> Em.Writer.push w (1, 2)) in
  Tu.check_int "write counted on shared stats" 1 ctx.Em.Ctx.stats.Em.Stats.writes;
  Tu.check_int "pair vec length" 1 (Em.Vec.length v)

let suite =
  [
    Alcotest.test_case "params: valid" `Quick test_params_valid;
    Alcotest.test_case "params: invalid" `Quick test_params_invalid;
    Alcotest.test_case "params: blocks_of_elems" `Quick test_blocks_of_elems;
    Alcotest.test_case "device: roundtrip + counters" `Quick test_device_roundtrip;
    Alcotest.test_case "device: copy semantics" `Quick test_device_copy_semantics;
    Alcotest.test_case "device: free recycles ids" `Quick test_device_free_recycles;
    Alcotest.test_case "device: double free detected" `Quick test_device_double_free;
    Alcotest.test_case "device: bad block ids" `Quick test_device_bad_block_id;
    Alcotest.test_case "device: oversize payload" `Quick test_device_oversize_payload;
    Alcotest.test_case "device: Oracle is unmetered and untraced" `Quick
      test_device_oracle_unmetered;
    Alcotest.test_case "ctx: measured brackets costs" `Quick test_ctx_measured;
    Alcotest.test_case "mem: charge/release/peak" `Quick test_mem_ledger;
    Alcotest.test_case "mem: overflow raises" `Quick test_mem_ledger_overflow;
    Alcotest.test_case "mem: typed misuse errors" `Quick test_mem_ledger_misuse;
    Alcotest.test_case "mem: with_words releases on raise" `Quick
      test_mem_with_words_releases_on_raise;
    Alcotest.test_case "vec: of_array is free" `Quick test_vec_of_array_costs_nothing;
    Alcotest.test_case "vec: roundtrip" `Quick test_vec_roundtrip;
    Alcotest.test_case "vec: Oracle.get" `Quick test_vec_oracle_get;
    Alcotest.test_case "vec: concat_free" `Quick test_vec_concat_free;
    Alcotest.test_case "reader: sequential + I/O count" `Quick test_reader_sequential;
    Alcotest.test_case "reader: charges buffer" `Quick test_reader_charges_buffer;
    Alcotest.test_case "reader: take" `Quick test_reader_take;
    Alcotest.test_case "writer: roundtrip + I/O count" `Quick test_writer_roundtrip;
    Alcotest.test_case "writer: empty" `Quick test_writer_empty;
    Alcotest.test_case "writer: abandon frees blocks" `Quick test_writer_abandon_frees;
    Alcotest.test_case "stats: snapshot deltas" `Quick test_stats_snapshot;
    Alcotest.test_case "ctx: counted comparator" `Quick test_counted_comparator;
    Alcotest.test_case "ctx: linked shares meters" `Quick test_linked_ctx_shares_meters;
  ]
