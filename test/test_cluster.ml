(* Core.Cluster: P machines, one metered interconnect.

   The load-bearing invariant, checked from several directions: sharding
   changes *communication* (comm rounds and words), never *work* — driver
   outputs are identical at P = 1 and P = k for every P, total counted
   work stays within a constant factor, and the communication ledger obeys
   the same telescoping window discipline as I/O rounds. *)

open QCheck2

let mk ?backend ?(shards = 1) () : int Core.Cluster.t =
  Core.Cluster.create ?backend ~shards (Tu.params ())

let concat_parts parts =
  Array.concat (Array.to_list (Array.map Em.Vec.Oracle.to_array parts))

let input_gen =
  let open Gen in
  let* n = int_range 10 2_000 in
  let* seed = int_range 0 1_000_000 in
  let* kind_idx = int_range 0 (List.length Core.Workload.all_kinds - 1) in
  let kind = List.nth Core.Workload.all_kinds kind_idx in
  return (n, seed, kind)

let gen_array (n, seed, kind) = Core.Workload.generate kind ~seed ~n ~block:16

(* ---- the communication ledger itself ---- *)

let test_comm_ledger () =
  let s = Em.Stats.create () in
  (* Outside any superstep each transfer is its own round. *)
  Em.Stats.record_comm s ~src:0 ~dst:1 ~words:10;
  Em.Stats.record_comm s ~src:1 ~dst:0 ~words:5;
  Tu.check_int "bare transfers each cost a round" 2 s.Em.Stats.comm_rounds;
  Tu.check_int "words accumulate" 15 s.Em.Stats.comm_words;
  (* Diagonal and empty transfers are free. *)
  Em.Stats.record_comm s ~src:2 ~dst:2 ~words:100;
  Em.Stats.record_comm s ~src:0 ~dst:1 ~words:0;
  Tu.check_int "diagonal/empty billed nothing" 2 s.Em.Stats.comm_rounds;
  Tu.check_int "diagonal/empty moved nothing" 15 s.Em.Stats.comm_words;
  (* A superstep merges its transfers into one round... *)
  Em.Stats.with_comm_round s (fun () ->
      Em.Stats.record_comm s ~src:0 ~dst:1 ~words:1;
      Em.Stats.record_comm s ~src:1 ~dst:2 ~words:1;
      Em.Stats.record_comm s ~src:2 ~dst:0 ~words:1);
  Tu.check_int "superstep = one round" 3 s.Em.Stats.comm_rounds;
  (* ...nested supersteps telescope into the outermost... *)
  Em.Stats.with_comm_round s (fun () ->
      Em.Stats.with_comm_round s (fun () ->
          Em.Stats.record_comm s ~src:0 ~dst:1 ~words:1);
      Em.Stats.with_comm_round s (fun () ->
          Em.Stats.record_comm s ~src:1 ~dst:0 ~words:1));
  Tu.check_int "nested supersteps telescope" 4 s.Em.Stats.comm_rounds;
  (* ...and an empty superstep charges nothing at all. *)
  Em.Stats.with_comm_round s (fun () -> ());
  Tu.check_int "empty superstep is free" 4 s.Em.Stats.comm_rounds;
  Tu.check_int "words never depend on supersteps" 20 s.Em.Stats.comm_words;
  (* Per-shard send/recv tallies. *)
  Tu.check_bool "sent report covers shard 0" true
    (List.mem_assoc 0 (Em.Stats.sent_report s));
  Tu.check_bool "recv report covers shard 2" true
    (List.mem_assoc 2 (Em.Stats.recv_report s))

let test_comm_snapshot_mid_window () =
  let s = Em.Stats.create () in
  Em.Stats.with_comm_round s (fun () ->
      Em.Stats.record_comm s ~src:0 ~dst:1 ~words:4;
      (* A snapshot taken mid-superstep must already see the pending
         round, exactly like {!Stats.rounds} sees an open I/O window. *)
      let snap = Em.Stats.snapshot s in
      Tu.check_int "pending round visible in snapshot" 1
        snap.Em.Stats.at_comm_rounds;
      Tu.check_int "pending words visible in snapshot" 4
        snap.Em.Stats.at_comm_words);
  let snap = Em.Stats.snapshot s in
  Tu.check_int "closed superstep settles to one round" 1
    snap.Em.Stats.at_comm_rounds

(* ---- placement and collectives ---- *)

let test_place_striping () =
  let t = mk ~shards:4 () in
  let a = Tu.random_perm ~seed:7 103 in
  let parts = Core.Cluster.place t a in
  let lens = Array.map Em.Vec.length parts in
  let mn = Array.fold_left min max_int lens
  and mx = Array.fold_left max 0 lens in
  Tu.check_bool "striping balanced to one element" true (mx - mn <= 1);
  Tu.check_int_array "striping reassembles the input" a (concat_parts parts);
  Tu.check_int "placement is not communication" 0
    (Core.Cluster.comm t).Em.Stats.comm_words;
  Core.Cluster.close t

let test_all_to_all () =
  let p = 3 in
  let t = mk ~shards:p () in
  let chunk i j = Array.init (i + (2 * j) + 1) (fun x -> (100 * i) + (10 * j) + x) in
  let chunks =
    Array.init p (fun i ->
        Array.init p (fun j -> Em.Vec.of_array (Core.Cluster.ctx t i) (chunk i j)))
  in
  let received = Core.Cluster.all_to_all t chunks in
  for i = 0 to p - 1 do
    for j = 0 to p - 1 do
      Tu.check_int_array
        (Printf.sprintf "chunk %d->%d delivered" i j)
        (chunk i j)
        (Em.Vec.Oracle.to_array received.(j).(i))
    done
  done;
  let off_diag = ref 0 in
  for i = 0 to p - 1 do
    for j = 0 to p - 1 do
      if i <> j then off_diag := !off_diag + Array.length (chunk i j)
    done
  done;
  let c = Core.Cluster.comm t in
  Tu.check_int "all_to_all bills off-diagonal words exactly" !off_diag
    c.Em.Stats.comm_words;
  Tu.check_int "all_to_all is one superstep" 1 c.Em.Stats.comm_rounds;
  Core.Cluster.close t

let test_broadcast_scatter_gather () =
  let p = 4 in
  let t = mk ~shards:p () in
  let a = Tu.random_perm ~seed:3 57 in
  let v = Em.Vec.of_array (Core.Cluster.ctx t 1) a in
  let copies = Core.Cluster.broadcast t ~root:1 v in
  Array.iter
    (fun c -> Tu.check_int_array "broadcast copy" a (Em.Vec.Oracle.to_array c))
    copies;
  Tu.check_bool "broadcast slot root is the original" true (copies.(1) == v);
  let c = Core.Cluster.comm t in
  Tu.check_int "broadcast words = (P-1) * n" ((p - 1) * Array.length a)
    c.Em.Stats.comm_words;
  Tu.check_int "broadcast is one superstep" 1 c.Em.Stats.comm_rounds;
  (* Scatter then gather puts the whole vector back on every shard. *)
  let pieces = Core.Cluster.scatter t ~root:1 v in
  let gathered = Core.Cluster.all_gather t pieces in
  Array.iter
    (fun g -> Tu.check_int_array "scatter|gather round-trip" a (Em.Vec.Oracle.to_array g))
    gathered;
  Tu.check_int "three supersteps total" 3 c.Em.Stats.comm_rounds;
  (* Nesting collectives under one superstep telescopes the rounds. *)
  Core.Cluster.superstep t (fun () ->
      ignore (Core.Cluster.broadcast t ~root:0 pieces.(0));
      ignore (Core.Cluster.all_gather t pieces));
  Tu.check_int "collectives telescope under an outer superstep" 4
    c.Em.Stats.comm_rounds;
  Core.Cluster.close t

(* ---- the invariant: shards change communication, never work ---- *)

let run_driver ~shards ~backend algo a =
  let t = mk ~backend ~shards () in
  let parts = Core.Cluster.place t a in
  let out, ag =
    match algo with
    | `Sort ->
        let sorted, ag = Core.Cluster.sort Tu.icmp t parts in
        (concat_parts sorted, ag)
    | `Partition k ->
        let outs, ag = Core.Cluster.partition Tu.icmp t parts ~k in
        (concat_parts outs, ag)
    | `Multiselect ranks ->
        let values, ag = Core.Cluster.multiselect Tu.icmp t parts ~ranks in
        (values, Some ag)
    | `Splitters k ->
        let ag = Core.Cluster.splitters Tu.icmp t parts ~k in
        (ag.Core.Cluster.values, Some ag)
  in
  let reads, writes, cmps = Core.Cluster.totals t in
  let comm = Core.Cluster.comm t in
  let rounds = Em.Stats.effective_comm_rounds comm
  and words = comm.Em.Stats.comm_words in
  Core.Cluster.close t;
  (out, reads + writes + cmps, rounds, words, ag)

let algo_of ~n ~seed =
  let r = Tu.rng seed in
  match Tu.next_int r 4 with
  | 0 -> `Sort
  | 1 -> `Partition (1 + Tu.next_int r (min n 12))
  | 2 ->
      let nr = 1 + Tu.next_int r (min n 8) in
      let set = Hashtbl.create nr in
      while Hashtbl.length set < nr do
        Hashtbl.replace set (1 + Tu.next_int r n) ()
      done;
      let ranks = Array.of_list (Hashtbl.fold (fun k () acc -> k :: acc) set []) in
      Array.sort Tu.icmp ranks;
      `Multiselect ranks
  | _ -> `Splitters (2 + Tu.next_int r (min n 10))

let prop_shards_never_change_work =
  let gen =
    let open Gen in
    let* inp = input_gen in
    let* algo_seed = int_range 0 1_000_000 in
    return (inp, algo_seed)
  in
  Tu.qcheck_case ~count:40 "outputs P-invariant, work bounded" gen
    (fun (inp, algo_seed) ->
      let n, _, _ = inp in
      let a = gen_array inp in
      let algo = algo_of ~n ~seed:algo_seed in
      let reference, work1, rounds1, words1, _ =
        run_driver ~shards:1 ~backend:Em.Backend.Sim algo a
      in
      if rounds1 <> 0 || words1 <> 0 then
        Test.fail_report "a single machine must not communicate";
      List.for_all
        (fun shards ->
          let out, work, rounds, _, ag =
            run_driver ~shards ~backend:Em.Backend.Sim algo a
          in
          if out <> reference then
            Test.fail_report (Printf.sprintf "output differs at P=%d" shards);
          (match ag with
          | None -> ()
          | Some ag ->
              (* Every agreement must stay inside its deterministic HSS
                 budgets: iterations, drawn samples, and comm rounds. *)
              let boundaries = max 1 (Array.length ag.Core.Cluster.targets) in
              let sample_budget =
                Core.Bounds.hss_sample_upper ~shards ~boundaries
                  ~rounds:ag.Core.Cluster.rounds_budget
                  ~per_round:ag.Core.Cluster.per_round
              in
              if ag.Core.Cluster.iterations > ag.Core.Cluster.rounds_budget then
                Test.fail_report "iteration budget exceeded";
              if float_of_int ag.Core.Cluster.samples > sample_budget then
                Test.fail_report
                  (Printf.sprintf "sample budget exceeded at P=%d: %d > %.0f"
                     shards ag.Core.Cluster.samples sample_budget);
              if
                float_of_int rounds
                > Core.Bounds.hss_comm_rounds_upper
                    ~rounds:ag.Core.Cluster.rounds_budget
                  +. 1.
              then
                Test.fail_report
                  (Printf.sprintf "comm rounds beyond 2r+2 at P=%d: %d" shards
                     rounds));
          (* Work may grow by the agreement overhead — histogram queries
             cost every shard up to two block reads and two binary searches
             per drawn sample, and the exact finish sorts what it gathers —
             but must stay within a constant factor of the single-machine
             run plus that budgeted overhead. *)
          let log2n =
            int_of_float (ceil (log (float_of_int (n + 2)) /. log 2.))
          in
          let overhead =
            match ag with
            | None -> 0
            | Some ag ->
                (ag.Core.Cluster.samples + ag.Core.Cluster.gathered + 64)
                * shards
                * ((4 * 16) + (4 * log2n))
          in
          if work > (8 * work1) + overhead + 4096 then
            Test.fail_report
              (Printf.sprintf "work blow-up at P=%d: %d vs %d (overhead %d)"
                 shards work work1 overhead);
          true)
        [ 2; 4; 8 ])

let test_backend_matrix () =
  let a = gen_array (500, 42, Core.Workload.Few_distinct 5) in
  let reference, _, _, _, _ = run_driver ~shards:1 ~backend:Em.Backend.Sim `Sort a in
  List.iter
    (fun backend ->
      let out, _, _, _, _ = run_driver ~shards:4 ~backend `Sort a in
      Tu.check_int_array "sharded sort P-invariant on every backend" reference out)
    [ Em.Backend.Sim; Em.Backend.File; Em.Backend.Cached Em.Backend.Sim ]

(* ---- agreement: budgets and balance ---- *)

let test_agreement_budgets () =
  let p = 4 in
  let t = mk ~shards:p () in
  let n = 4096 in
  let a = Tu.random_perm ~seed:11 n in
  let parts = Core.Cluster.place t a in
  let ag = Core.Cluster.splitters Tu.icmp t parts ~k:8 in
  Tu.check_bool "iterations within budget" true
    (ag.Core.Cluster.iterations <= ag.Core.Cluster.rounds_budget);
  let sample_budget =
    Core.Bounds.hss_sample_upper ~shards:p ~boundaries:7
      ~rounds:ag.Core.Cluster.rounds_budget ~per_round:ag.Core.Cluster.per_round
  in
  Tu.check_bool "samples within the HSS budget" true
    (float_of_int ag.Core.Cluster.samples <= sample_budget);
  let rounds_budget =
    Core.Bounds.hss_comm_rounds_upper ~rounds:ag.Core.Cluster.rounds_budget
  in
  let measured = Em.Stats.effective_comm_rounds (Core.Cluster.comm t) in
  Tu.check_bool "comm rounds within 2r+2" true
    (float_of_int measured <= rounds_budget);
  (* Exact agreement on a permutation pins every boundary rank. *)
  Array.iteri
    (fun j tgt -> Tu.check_int "exact quantile rank" tgt ag.Core.Cluster.ranks.(j))
    ag.Core.Cluster.targets;
  Core.Cluster.close t

let prop_eps_balance =
  let gen =
    let open Gen in
    let* n = int_range 64 4_000 in
    let* seed = int_range 0 1_000_000 in
    let* k = int_range 2 16 in
    let* p_idx = int_range 0 2 in
    return (n, seed, k, [| 2; 4; 8 |].(p_idx))
  in
  Tu.qcheck_case ~count:40 "eps-splitters are (1+eps)-balanced" gen
    (fun (n, seed, k, shards) ->
      let eps = 0.25 in
      let a = Tu.random_perm ~seed n in
      let t = mk ~shards () in
      let parts = Core.Cluster.place t a in
      let ag = Core.Cluster.splitters ~eps Tu.icmp t parts ~k in
      Core.Cluster.close t;
      let tol = int_of_float (eps *. float_of_int n /. float_of_int k /. 2.) in
      Array.iteri
        (fun j tgt ->
          let d = abs (ag.Core.Cluster.ranks.(j) - tgt) in
          if d > tol then
            Test.fail_report
              (Printf.sprintf "boundary %d drifted %d > tol %d" j d tol))
        ag.Core.Cluster.targets;
      true)

let test_multiselect_matches_oracle () =
  let a = gen_array (777, 5, Core.Workload.Few_distinct 3) in
  let sorted = Tu.sorted_copy a in
  let ranks = [| 1; 7; 389; 390; 776; 777 |] in
  let t = mk ~shards:4 () in
  let parts = Core.Cluster.place t a in
  let values, ag = Core.Cluster.multiselect Tu.icmp t parts ~ranks in
  Array.iteri
    (fun j r ->
      Tu.check_int "cluster multiselect matches sorted oracle" sorted.(r - 1) values.(j);
      (* Exactness certificate: the value's rank interval contains the
         target even under heavy duplication. *)
      Tu.check_bool "rank interval certifies the target" true
        (ag.Core.Cluster.ranks_lt.(j) < r && r <= ag.Core.Cluster.ranks.(j)))
    ranks;
  Core.Cluster.close t

(* ---- EM_SHARDS steers the default shard count ---- *)

(* Created without ~shards, the cluster sizes itself from EM_SHARDS (the
   shards-matrix CI legs rely on this): whatever P the environment dictates,
   outputs must match the sorted oracle — the invariance gate in its
   environment-driven form. *)
let test_default_shards_env () =
  let t : int Core.Cluster.t = Core.Cluster.create (Tu.params ()) in
  Tu.check_int "default shard count honours EM_SHARDS"
    (Core.Cluster.default_shards ()) (Core.Cluster.size t);
  let a = Tu.random_perm ~seed:11 777 in
  let parts = Core.Cluster.place t a in
  let out, _ = Core.Cluster.sort Tu.icmp t parts in
  let merged = Array.concat (Array.to_list (Array.map Em.Vec.Oracle.to_array out)) in
  Array.iter Em.Vec.free out;
  Array.iter Em.Vec.free parts;
  Core.Cluster.close t;
  Tu.check_int_array "default-shards sort matches the oracle" (Tu.sorted_copy a) merged

(* ---- trace rollups carry the shard id ---- *)

let test_shard_trace () =
  let run shards =
    let trace = Em.Trace.create () in
    let sink, events = Em.Trace.collector () in
    Em.Trace.add_sink trace sink;
    let t : int Core.Cluster.t =
      Core.Cluster.create ~trace ~shards (Tu.params ())
    in
    let parts = Core.Cluster.place t (Tu.random_perm ~seed:1 300) in
    let sorted, _ = Core.Cluster.sort Tu.icmp t parts in
    Array.iter Em.Vec.free sorted;
    Core.Cluster.close t;
    Em.Trace_report.shard_balance (events ())
  in
  Tu.check_bool "P=1 traces carry no shard ids" true (run 1 = []);
  let balance = run 3 in
  Tu.check_int "P=3 rollup sees every shard" 3 (List.length balance);
  List.iter
    (fun (_, ios) -> Tu.check_bool "every shard did I/O" true (ios > 0))
    balance

let suite =
  [
    Alcotest.test_case "comm ledger rounds and words" `Quick test_comm_ledger;
    Alcotest.test_case "comm snapshot mid-superstep" `Quick test_comm_snapshot_mid_window;
    Alcotest.test_case "place stripes evenly" `Quick test_place_striping;
    Alcotest.test_case "all_to_all transposes and bills" `Quick test_all_to_all;
    Alcotest.test_case "broadcast/scatter/gather" `Quick test_broadcast_scatter_gather;
    prop_shards_never_change_work;
    Alcotest.test_case "P-invariance across backends" `Quick test_backend_matrix;
    Alcotest.test_case "agreement meets HSS budgets" `Quick test_agreement_budgets;
    prop_eps_balance;
    Alcotest.test_case "multiselect matches oracle" `Quick test_multiselect_matches_oracle;
    Alcotest.test_case "EM_SHARDS default shard count" `Quick test_default_shards_env;
    Alcotest.test_case "trace rollups carry shard ids" `Quick test_shard_trace;
  ]
