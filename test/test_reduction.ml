(* Tests for the Section 3 / Lemma 5 reductions. *)

let test_precise_exact_sizes () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let n = 10_000 and chunk = 700 in
  let a = Tu.random_perm ~seed:1 n in
  let v = Tu.int_vec ctx a in
  let parts = Core.Reduction.precise_by_approximate Tu.icmp v ~chunk in
  let sizes = Array.map Em.Vec.length parts in
  Tu.check_int "partition count" ((n + chunk - 1) / chunk) (Array.length parts);
  Array.iteri
    (fun i s ->
      if i < Array.length parts - 1 then Tu.check_int "full chunk" chunk s
      else Tu.check_int "last chunk" (n - (chunk * (Array.length parts - 1))) s)
    sizes;
  let contents = Array.map Em.Vec.Oracle.to_array parts in
  Tu.check_ok "ordering + multiset"
    (Core.Verify.multi_partition Tu.icmp ~input:a ~sizes contents);
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use

let test_precise_divisible () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let n = 8_192 and chunk = 1_024 in
  let a = Tu.random_perm ~seed:2 n in
  let v = Tu.int_vec ctx a in
  let parts = Core.Reduction.precise_by_approximate Tu.icmp v ~chunk in
  Tu.check_int "8 parts" 8 (Array.length parts);
  Array.iter (fun p -> Tu.check_int "size" chunk (Em.Vec.length p)) parts

let test_precise_chunk_exceeds_n () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let a = Tu.random_perm ~seed:3 100 in
  let v = Tu.int_vec ctx a in
  let parts = Core.Reduction.precise_by_approximate Tu.icmp v ~chunk:1_000 in
  Tu.check_int "one part" 1 (Array.length parts);
  Tu.check_int_array "contents" (Tu.sorted_copy a) (Tu.sorted_copy (Em.Vec.Oracle.to_array parts.(0)))

let test_precise_chunk_one () =
  (* chunk = 1 degenerates to sorting. *)
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let n = 600 in
  let a = Tu.random_perm ~seed:4 n in
  let v = Tu.int_vec ctx a in
  let parts = Core.Reduction.precise_by_approximate Tu.icmp v ~chunk:1 in
  Tu.check_int "n parts" n (Array.length parts);
  Array.iteri (fun i p -> Tu.check_int "sorted order" i (Em.Vec.Oracle.get p 0)) parts

let test_precise_linear_io () =
  (* The reduction costs the approximate solve plus O(N/B). *)
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let n = 65_536 and chunk = 8_192 in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:5 n) in
  let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
  let parts = Core.Reduction.precise_by_approximate Tu.icmp v ~chunk in
  let total = Em.Stats.ios_since ctx.Em.Ctx.stats snap in
  Array.iter Em.Vec.free parts;
  let snap2 = Em.Stats.snapshot ctx.Em.Ctx.stats in
  let spec = { Core.Problem.n; k = n / chunk; a = 0; b = chunk } in
  Array.iter Em.Vec.free (Core.Partitioning.left_grounded Tu.icmp v spec);
  let approx_only = Em.Stats.ios_since ctx.Em.Ctx.stats snap2 in
  let nb = n / 64 in
  (* Each buffer cut pays an external split_at (~5 scans of <= 2*chunk) plus
     the append copies: linear with constant ~15. *)
  Tu.check_bool
    (Printf.sprintf "post-pass is O(N/B): total %d <= approx %d + 20 scans (%d)" total
       approx_only (20 * nb))
    true
    (total <= approx_only + (20 * nb))

let test_precise_duplicates () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let n = 5_000 in
  let a = Tu.random_ints ~seed:6 ~bound:9 n in
  let v = Tu.int_vec ctx a in
  let parts = Core.Reduction.precise_by_approximate Tu.icmp v ~chunk:777 in
  let sizes = Array.map Em.Vec.length parts in
  Tu.check_ok "duplicates"
    (Core.Verify.multi_partition Tu.icmp ~input:a ~sizes (Array.map Em.Vec.Oracle.to_array parts))

let test_sort_by_partitioning () =
  let ctx = Tu.ctx ~mem:2048 ~block:32 () in
  let n = 20_000 in
  let a = Tu.random_ints ~seed:7 ~bound:50_000 n in
  let v = Tu.int_vec ctx a in
  let sorted = Core.Reduction.sort_by_partitioning Tu.icmp v in
  Tu.check_int_array "fully sorted" (Tu.sorted_copy a) (Em.Vec.Oracle.to_array sorted);
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use

let test_sort_by_partitioning_cost_is_sortish () =
  (* Lemma 5's point: this route sorts, so it cannot beat the sorting bound;
     sanity-check it stays within a constant of the real external sort. *)
  let ctx = Tu.ctx ~mem:2048 ~block:32 () in
  let n = 32_768 in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:8 n) in
  let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
  Em.Vec.free (Core.Reduction.sort_by_partitioning Tu.icmp v);
  let via_partitioning = Em.Stats.ios_since ctx.Em.Ctx.stats snap in
  let snap2 = Em.Stats.snapshot ctx.Em.Ctx.stats in
  Em.Vec.free (Emalg.External_sort.sort Tu.icmp v);
  let direct = Em.Stats.ios_since ctx.Em.Ctx.stats snap2 in
  Tu.check_bool
    (Printf.sprintf "within 6x of direct sort (%d vs %d)" via_partitioning direct)
    true
    (via_partitioning <= 6 * direct)

let suite =
  [
    Alcotest.test_case "precise: exact sizes" `Quick test_precise_exact_sizes;
    Alcotest.test_case "precise: divisible" `Quick test_precise_divisible;
    Alcotest.test_case "precise: chunk > n" `Quick test_precise_chunk_exceeds_n;
    Alcotest.test_case "precise: chunk = 1" `Quick test_precise_chunk_one;
    Alcotest.test_case "precise: post-pass is linear" `Quick test_precise_linear_io;
    Alcotest.test_case "precise: duplicates" `Quick test_precise_duplicates;
    Alcotest.test_case "sort via partitioning" `Quick test_sort_by_partitioning;
    Alcotest.test_case "sort via partitioning: cost" `Quick
      test_sort_by_partitioning_cost_is_sortish;
  ]
