(* Shared test utilities. *)

let params ?(mem = 256) ?(block = 16) () = Em.Params.create ~mem ~block
let ctx ?mem ?block () : int Em.Ctx.t = Em.Ctx.create (params ?mem ?block ())
let icmp = Int.compare

(* Deterministic randomness, delegated to the library's seeded PRNG. *)
let rng = Core.Workload.Rng.create
let next_int = Core.Workload.Rng.int
let shuffle = Core.Workload.Rng.shuffle

let random_perm ~seed n =
  Core.Workload.generate Core.Workload.Random_perm ~seed ~n ~block:1

let random_ints ~seed ~bound n =
  let r = rng seed in
  Array.init n (fun _ -> next_int r bound)

let sorted_copy a =
  let c = Array.copy a in
  Array.sort icmp c;
  c

let int_vec ctx a = Em.Vec.of_array ctx a

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_int_array = Alcotest.(check (array int))

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let check_err what = function
  | Ok () -> Alcotest.failf "%s: expected a verification failure" what
  | Error _ -> ()

(* Assert that the memory ledger is back to zero and no vector blocks leaked
   except those of the listed live vectors.  (Buffer-pool pages of a cached
   backend live in the separate [pool_words] ledger, so a warm cache is not
   a leak.) *)
let check_no_leaks ?(live = 0) (c : int Em.Ctx.t) =
  check_int "memory ledger drained" 0 c.Em.Ctx.stats.Em.Stats.mem_in_use;
  if live >= 0 then
    check_bool "no leaked blocks beyond live vectors" true
      (Em.Device.live_blocks c.Em.Ctx.dev <= live)

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* Substring assertions over JSON reply/frame lines. *)
let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let contains ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  lsub = 0 || go 0
