(* Tests for the Table-1 bound-ratio telemetry. *)

let test_names_roundtrip () =
  List.iter
    (fun r ->
      let n = Core.Bound_track.name r in
      match Core.Bound_track.of_name n with
      | Some r' -> Tu.check_bool (n ^ " roundtrips") true (r = r')
      | None -> Alcotest.failf "of_name rejected %s" n)
    Core.Bound_track.all;
  Tu.check_bool "unknown name rejected" true
    (Core.Bound_track.of_name "splitters_diagonal" = None);
  Tu.check_int "six Table 1 rows" 6 (List.length Core.Bound_track.all)

let test_default_specs_valid () =
  List.iter
    (fun r ->
      let spec = Core.Bound_track.default_spec r ~n:4_096 in
      Tu.check_ok
        (Core.Bound_track.name r ^ " default spec")
        (Core.Problem.validate spec))
    Core.Bound_track.all

let test_run_and_publish () =
  let p = Em.Params.create ~mem:1024 ~block:16 in
  List.iter
    (fun r ->
      let label = Core.Bound_track.name r in
      let spec = Core.Bound_track.default_spec r ~n:4_096 in
      let s = Core.Bound_track.run ~seed:7 p r spec in
      Tu.check_bool (label ^ ": did some I/O") true (s.Core.Bound_track.measured_ios > 0);
      Tu.check_bool (label ^ ": predicted bound is positive") true
        (s.Core.Bound_track.predicted_ios > 0.);
      Tu.check_bool (label ^ ": ratio is finite") true
        (Float.is_finite s.Core.Bound_track.ratio);
      Tu.check_bool (label ^ ": seeks within total I/Os") true
        (s.Core.Bound_track.seeks >= 0
        && s.Core.Bound_track.seeks <= s.Core.Bound_track.measured_ios);
      let reg = Em.Metrics.create () in
      let ratio = Core.Bound_track.publish reg s in
      Alcotest.(check (float 1e-9))
        (label ^ ": publish returns the sample ratio")
        s.Core.Bound_track.ratio ratio;
      let prom = Em.Metrics.to_prometheus reg in
      let has needle =
        let nl = String.length needle and pl = String.length prom in
        let rec go i = i + nl <= pl && (String.sub prom i nl = needle || go (i + 1)) in
        go 0
      in
      Tu.check_bool (label ^ ": bound_ratio gauge exported") true
        (has "em_bound_ratio{");
      Tu.check_bool (label ^ ": row label exported") true
        (has ("row=\"" ^ label ^ "\"")))
    Core.Bound_track.all

let test_publish_values_matches_formula () =
  let p = Em.Params.create ~mem:1024 ~block:16 in
  let row = Core.Bound_track.Partition_right in
  let spec = Core.Bound_track.default_spec row ~n:4_096 in
  let predicted = Core.Bound_track.predicted row p spec in
  let reg = Em.Metrics.create () in
  let ratio =
    Core.Bound_track.publish_values reg p row spec ~measured_ios:(2 * int_of_float predicted)
  in
  Alcotest.(check (float 1e-6)) "ratio = measured / predicted"
    (float_of_int (2 * int_of_float predicted) /. predicted)
    ratio

let suite =
  [
    Alcotest.test_case "row names roundtrip" `Quick test_names_roundtrip;
    Alcotest.test_case "default specs are valid" `Quick test_default_specs_valid;
    Alcotest.test_case "run + publish per row" `Quick test_run_and_publish;
    Alcotest.test_case "publish_values ratio formula" `Quick
      test_publish_values_matches_formula;
  ]
