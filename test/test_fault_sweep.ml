(* Fault-sweep property tests: >= 100 seeded fault schedules across external
   sort, multi-selection and Theorem 5 splitters.  Every run must either
   complete oracle-verified-correct or fail with a typed [Em_error]; memory
   never exceeds M, including on recovery paths. *)

(* Recoverable mix: every non-crash kind except Permanent_read (which
   destroys data by design, so runs hitting it legitimately fail).  With
   verify_writes on, a run that returns Ok has had every silent corruption
   caught and repaired, so Ok implies the oracle check must pass. *)
let recoverable =
  [
    Em.Fault.Transient_read;
    Em.Fault.Transient_write;
    Em.Fault.Torn_write;
    Em.Fault.Bit_corruption;
    Em.Fault.Permanent_write;
  ]

let hostile = Em.Fault.Permanent_read :: recoverable

let sweep_policy = { Em.Device.default_policy with Em.Device.verify_writes = true }

(* One run: fresh armed machine, seeded plan, protect-wrapped algorithm.
   [run] gets the ctx and the on-disk input and must verify its own output,
   failing the test on a mismatch.  Returns true when the run completed. *)
let one_run ~what ~seed ~p ~kinds data run =
  let ctx = Tu.ctx () in
  Em.Ctx.arm ~policy:sweep_policy ctx;
  let v = Tu.int_vec ctx data in
  Em.Ctx.inject ctx (Em.Fault.seeded ~seed ~p kinds);
  let outcome = Em.Em_error.protect (fun () -> run ctx v) in
  Em.Ctx.clear_injector ctx;
  Tu.check_bool
    (Printf.sprintf "%s seed %d: mem_peak within M" what seed)
    true
    (ctx.Em.Ctx.stats.Em.Stats.mem_peak <= ctx.Em.Ctx.params.Em.Params.mem);
  match outcome with
  | Ok () -> true
  | Error (_ : Em.Em_error.t) -> false
  (* Any other exception escapes [protect] and fails the sweep: only typed
     [Em_error]s are acceptable failures. *)

let sort_run data ctx v =
  let sorted = Emalg.External_sort.sort Tu.icmp v in
  let out = Em.Vec.Oracle.to_array sorted in
  Em.Vec.free sorted;
  ignore ctx;
  Tu.check_int_array "sort output oracle-correct" (Tu.sorted_copy data) out

let select_ranks = Array.init 24 (fun i -> (i * 20) + 9)

let select_run data ctx v =
  ignore ctx;
  let out = Core.Multi_select.select Tu.icmp v ~ranks:select_ranks in
  Tu.check_ok "multi-select oracle-correct"
    (Core.Verify.multi_select Tu.icmp ~input:data ~ranks:select_ranks out)

let splitter_spec n = Core.Problem.even_spec ~n ~k:8

let splitters_run data ctx v =
  ignore ctx;
  let sv = Core.Splitters.solve Tu.icmp v (splitter_spec (Array.length data)) in
  let out = Em.Vec.Oracle.to_array sv in
  Em.Vec.free sv;
  Tu.check_ok "splitters oracle-correct"
    (Core.Verify.splitters Tu.icmp ~input:data (splitter_spec (Array.length data)) out)

let algos data =
  [
    ("external-sort", sort_run data);
    ("multi-selection", select_run data);
    ("splitters", splitters_run data)
  ]

(* 35 seeds x 3 algorithms = 105 recoverable-mix schedules, plus 5 x 3
   hostile schedules below: > 100 distinct seeded schedules total. *)
let test_sweep_recoverable () =
  let data = Tu.random_ints ~seed:77 ~bound:1_000_000 500 in
  let completed = ref 0 and total = ref 0 in
  List.iter
    (fun (what, run) ->
      for seed = 0 to 34 do
        incr total;
        if one_run ~what ~seed ~p:0.01 ~kinds:recoverable data (fun ctx v -> run ctx v)
        then incr completed
      done)
    (algos data);
  (* At p = 1% per I/O with a 3-retry budget, the overwhelming majority of
     runs must recover end-to-end; a collapse here means recovery is broken
     even though each failure was typed. *)
  Tu.check_bool
    (Printf.sprintf "most runs recover (%d/%d)" !completed !total)
    true
    (!completed * 10 >= !total * 9)

let test_sweep_hostile () =
  (* Permanent read faults at a high rate: data loss is expected, but every
     failure must still be a typed [Em_error] (protect re-raises anything
     else) and the memory ledger must stay bounded. *)
  let data = Tu.random_ints ~seed:78 ~bound:1_000_000 500 in
  List.iter
    (fun (what, run) ->
      for seed = 100 to 104 do
        ignore (one_run ~what ~seed ~p:0.05 ~kinds:hostile data (fun ctx v -> run ctx v))
      done)
    (algos data)

let test_transient_overhead_bounded () =
  (* Transient-only faults at p = 1/64 must keep total I/O within 2x the
     fault-free cost of the same computation. *)
  let data = Tu.random_ints ~seed:79 ~bound:1_000_000 600 in
  let fault_free =
    let ctx = Tu.ctx () in
    Em.Ctx.arm ~policy:sweep_policy ctx;
    let v = Tu.int_vec ctx data in
    sort_run data ctx v;
    Em.Stats.ios ctx.Em.Ctx.stats
  in
  List.iter
    (fun seed ->
      let ctx = Tu.ctx () in
      Em.Ctx.arm ~policy:sweep_policy ctx;
      let v = Tu.int_vec ctx data in
      Em.Ctx.inject ctx
        (Em.Fault.seeded ~seed ~p:(1.0 /. 64.0)
           [ Em.Fault.Transient_read; Em.Fault.Transient_write ]);
      (match Em.Em_error.protect (fun () -> sort_run data ctx v) with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "seed %d: transient-only run failed: %s" seed
            (Em.Em_error.to_string e));
      let total = Em.Stats.ios ctx.Em.Ctx.stats in
      if total > 2 * fault_free then
        Alcotest.failf "seed %d: %d ios > 2x fault-free %d" seed total fault_free)
    [ 301; 302; 303; 304; 305; 306; 307; 308; 309; 310 ]

let suite =
  [
    Alcotest.test_case "105 recoverable-mix schedules across 3 algorithms" `Slow
      test_sweep_recoverable;
    Alcotest.test_case "hostile schedules fail typed, memory bounded" `Quick
      test_sweep_hostile;
    Alcotest.test_case "transient-only p=1/64 within 2x fault-free I/O" `Quick
      test_transient_overhead_bounded;
  ]
