(* Unit tests for the deterministic fault-plan DSL. *)

let decide p ~op ~block = Em.Fault.decide p ~op ~block ~phase:[]

(* Collect the 1-based I/O indices at which a plan fires over [n] identical
   I/Os. *)
let firing_indices plan ~op ~n =
  let fired = ref [] in
  for i = 1 to n do
    match decide plan ~op ~block:0 with
    | Some _ -> fired := i :: !fired
    | None -> ()
  done;
  List.rev !fired

let test_never () =
  Tu.check_bool "never fires" true (firing_indices Em.Fault.never ~op:`Read ~n:100 = [])

let test_every_nth () =
  let plan = Em.Fault.every_nth ~n:3 Em.Fault.Transient_read in
  Tu.check_bool "fires at 3,6,9" true
    (firing_indices plan ~op:`Read ~n:10 = [ 3; 6; 9 ]);
  (* The kind must apply to the operation: a read fault never hits writes,
     but the plan still counts those I/Os. *)
  let plan = Em.Fault.every_nth ~n:2 Em.Fault.Transient_read in
  Tu.check_bool "write ops skipped" true (firing_indices plan ~op:`Write ~n:10 = []);
  Tu.check_int "but still counted" 10 (Em.Fault.seen plan)

let test_seeded_reproducible () =
  let schedule seed =
    firing_indices
      (Em.Fault.seeded ~seed ~p:0.25 [ Em.Fault.Transient_read ])
      ~op:`Read ~n:200
  in
  Tu.check_bool "same seed, same schedule" true (schedule 42 = schedule 42);
  Tu.check_bool "some faults at p=0.25" true (List.length (schedule 42) > 10);
  Tu.check_bool "different seeds differ" true (schedule 42 <> schedule 43)

let test_seeded_extremes () =
  let zero = Em.Fault.seeded ~seed:7 ~p:0.0 [ Em.Fault.Transient_read ] in
  Tu.check_bool "p=0 never fires" true (firing_indices zero ~op:`Read ~n:100 = []);
  let one = Em.Fault.seeded ~seed:7 ~p:1.0 [ Em.Fault.Transient_read ] in
  Tu.check_int "p=1 always fires" 100 (List.length (firing_indices one ~op:`Read ~n:100))

let test_on_blocks () =
  let plan = Em.Fault.on_blocks [ 3; 5 ] Em.Fault.Transient_read in
  Tu.check_bool "target block faults" true (decide plan ~op:`Read ~block:3 <> None);
  Tu.check_bool "other block clean" true (decide plan ~op:`Read ~block:4 = None)

let test_combinators () =
  let base () = Em.Fault.seeded ~seed:1 ~p:1.0 [ Em.Fault.Bit_corruption ] in
  let in_merge = Em.Fault.in_phase "merge" (base ()) in
  Tu.check_bool "phase mismatch" true
    (Em.Fault.decide in_merge ~op:`Read ~block:0 ~phase:[ "run-formation" ] = None);
  Tu.check_bool "phase match (nested)" true
    (Em.Fault.decide in_merge ~op:`Read ~block:0 ~phase:[ "leaf"; "merge" ] <> None);
  let reads_only = Em.Fault.on_op `Read (base ()) in
  Tu.check_bool "op mismatch" true (decide reads_only ~op:`Write ~block:0 = None);
  Tu.check_bool "op match" true (decide reads_only ~op:`Read ~block:0 <> None);
  let limited = Em.Fault.limit 2 (base ()) in
  Tu.check_int "limit caps firings" 2
    (List.length (firing_indices limited ~op:`Read ~n:50))

let test_crash_after_ios () =
  let plan = Em.Fault.crash_after_ios 5 in
  Tu.check_bool "crashes exactly once, at io 5" true
    (firing_indices plan ~op:`Write ~n:20 = [ 5 ])

let test_crash_at () =
  let plan = Em.Fault.crash_at [ 4; 9; 9; 2 ] in
  Tu.check_bool "sorted, deduplicated schedule" true
    (firing_indices plan ~op:`Read ~n:20 = [ 2; 4; 9 ])

let test_any () =
  let plan =
    Em.Fault.any
      [
        Em.Fault.every_nth ~n:4 Em.Fault.Transient_read;
        Em.Fault.every_nth ~n:6 Em.Fault.Transient_read;
      ]
  in
  Tu.check_bool "union of schedules" true
    (firing_indices plan ~op:`Read ~n:12 = [ 4; 6; 8; 12 ])

let test_rng_determinism () =
  let draw seed = Array.init 16 (fun _ -> Em.Fault.Rng.int (Em.Fault.Rng.create seed) 1000) in
  let stream seed =
    let r = Em.Fault.Rng.create seed in
    Array.init 16 (fun _ -> Em.Fault.Rng.int r 1000)
  in
  Tu.check_int_array "stream reproducible" (stream 99) (stream 99);
  ignore (draw 99);
  Array.iter
    (fun f -> Tu.check_bool "float01 in range" true (f >= 0.0 && f < 1.0))
    (let r = Em.Fault.Rng.create 3 in
     Array.init 64 (fun _ -> Em.Fault.Rng.float01 r))

let suite =
  [
    Alcotest.test_case "never" `Quick test_never;
    Alcotest.test_case "every_nth schedule" `Quick test_every_nth;
    Alcotest.test_case "seeded reproducible" `Quick test_seeded_reproducible;
    Alcotest.test_case "seeded extremes" `Quick test_seeded_extremes;
    Alcotest.test_case "on_blocks" `Quick test_on_blocks;
    Alcotest.test_case "combinators: phase/op/limit" `Quick test_combinators;
    Alcotest.test_case "crash_after_ios" `Quick test_crash_after_ios;
    Alcotest.test_case "crash_at" `Quick test_crash_at;
    Alcotest.test_case "any" `Quick test_any;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
  ]
