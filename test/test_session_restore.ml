(* Crash-survivable online sessions (Emalg.Online_select snapshot/restore):
   a kill between queries — the session object dropped without [close],
   buffer-pool pages and the memory ledger wiped — followed by [restore]
   from the attached checkpoint store must reproduce the lost session
   exactly: same leaf partition, same summary counters, same answers, and
   the same subsequent query costs as an uninterrupted twin.  Exercised on
   sim, file and cached backends at D in {1, 4}. *)

module Os = Emalg.Online_select

let n = 6_000
let mem = 1_024
let block = 16

let queries_before = [ Os.Select (n / 2); Os.Quantile 0.1; Os.Select 17 ]
let queries_after = [ Os.Select ((n / 2) + 3); Os.Range (40, 50); Os.Select (n / 2) ]

let with_ctx ~backend ~disks f =
  let run dir =
    let ctx : int Em.Ctx.t =
      Em.Ctx.create ~backend ?backend_dir:dir ~disks (Em.Params.create ~mem ~block)
    in
    Fun.protect ~finally:(fun () -> Em.Ctx.close ctx) (fun () -> f ctx)
  in
  if backend = Em.Backend.File then (
    let dir = Filename.temp_file "em_restore" ".d" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    Fun.protect
      ~finally:(fun () ->
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Unix.rmdir dir)
      (fun () -> run (Some dir)))
  else run None

let open_checkpointed ctx =
  let v = Em.Vec.of_array ctx (Tu.random_perm ~seed:5 n) in
  let s = Os.open_session (Em.Ctx.counted ctx Tu.icmp) ctx v in
  Os.enable_checkpoints ~every_splits:2 s;
  (v, s)

let kill_and_restore ctx v s =
  let store = match Os.checkpoint_store s with Some st -> st | None -> assert false in
  (* kill -9: drop the session without closing it — the tree skeleton in
     RAM dies, the device and checkpoint region survive; pool pages and the
     memory ledger are wiped like a process death would. *)
  (match Em.Ctx.backend_pool ctx with
  | Some pool -> Em.Backend.Pool.drop_all pool
  | None -> ());
  Em.Stats.wipe_memory ctx.Em.Ctx.stats;
  Os.restore ~every_splits:2 (Em.Ctx.counted ctx Tu.icmp) ctx v store

let summaries_equal what (a : Os.summary) (b : Os.summary) =
  Tu.check_int (what ^ ": queries") a.Os.queries b.Os.queries;
  Tu.check_int (what ^ ": refine_ios") a.Os.refine_ios b.Os.refine_ios;
  Tu.check_int (what ^ ": answer_ios") a.Os.answer_ios b.Os.answer_ios;
  Tu.check_int (what ^ ": splits") a.Os.splits b.Os.splits;
  Tu.check_int (what ^ ": leaves") a.Os.leaves b.Os.leaves;
  Tu.check_int (what ^ ": sorted_leaves") a.Os.sorted_leaves b.Os.sorted_leaves

let intervals_equal what a b =
  Tu.check_bool (what ^ ": leaf partitions equal") true (a = b)

(* The oracle twin: the same stream uninterrupted, on its own machine. *)
let twin_costs ~backend ~disks () =
  with_ctx ~backend ~disks (fun ctx ->
      let _, s = open_checkpointed ctx in
      List.iter (fun q -> ignore (Os.query s q)) queries_before;
      let replies = List.map (fun q -> Os.query s q) queries_after in
      let costs =
        List.map
          (fun (r : int Os.reply) ->
            (Array.to_list r.Os.values, Em.Stats.delta_ios r.Os.cost, r.Os.splits))
          replies
      in
      (costs, Os.summary s, Os.intervals s))

let test_round_trip ~backend ~disks () =
  let twin, twin_summary, twin_intervals = twin_costs ~backend ~disks () in
  with_ctx ~backend ~disks (fun ctx ->
      let v, s = open_checkpointed ctx in
      List.iter (fun q -> ignore (Os.query s q)) queries_before;
      let pre_summary = Os.summary s in
      let pre_intervals = Os.intervals s in
      let s = kill_and_restore ctx v s in
      (* The restored session IS the lost one: partition and counters. *)
      summaries_equal "restored summary" pre_summary (Os.summary s);
      intervals_equal "restored intervals" pre_intervals (Os.intervals s);
      (* Subsequent queries: same values, same costs, same splits as the
         uninterrupted twin — sorted runs and buckets were re-referenced,
         not rebuilt. *)
      List.iter2
        (fun q (values, ios, splits) ->
          let r = Os.query s q in
          Tu.check_bool "restored answer equals twin" true
            (Array.to_list r.Os.values = values);
          Tu.check_int "restored query cost equals twin" ios
            (Em.Stats.delta_ios r.Os.cost);
          Tu.check_int "restored query splits equal twin" splits r.Os.splits)
        queries_after twin;
      summaries_equal "final summary equals twin" twin_summary (Os.summary s);
      intervals_equal "final intervals equal twin" twin_intervals (Os.intervals s);
      Os.close ~drop_cache:true s;
      (* Pre-kill refinement vectors the dead session referenced are
         orphaned garbage by design — the ledger must still drain. *)
      Tu.check_no_leaks ~live:(-1) ctx)

(* A second kill immediately after the first (no queries in between) must
   also work: restore, then kill, then restore again. *)
let test_double_kill () =
  with_ctx ~backend:Em.Backend.Sim ~disks:1 (fun ctx ->
      let v, s = open_checkpointed ctx in
      List.iter (fun q -> ignore (Os.query s q)) queries_before;
      let pre = Os.summary s in
      let s = kill_and_restore ctx v s in
      let s = kill_and_restore ctx v s in
      summaries_equal "double restore" pre (Os.summary s);
      Tu.check_int "select still exact" ((n / 2) - 1) (Os.select s (n / 2));
      Os.close ~drop_cache:true s;
      Tu.check_no_leaks ~live:(-1) ctx)

(* Restoring a pristine session (baseline checkpoint only, nothing refined)
   must hand back a session that still answers everything from scratch. *)
let test_restore_pristine () =
  with_ctx ~backend:Em.Backend.Sim ~disks:1 (fun ctx ->
      let v, s = open_checkpointed ctx in
      let s = kill_and_restore ctx v s in
      Tu.check_int "pristine restore answers" (n - 1) (Os.select s n);
      Os.close ~drop_cache:true s;
      Tu.check_no_leaks ~live:(-1) ctx)

(* The save/restore cost model: saves charge ceil(words/B) writes under the
   "checkpoint" phase, the restore pays one metered resume read — and the
   snapshot is handle-sized, orders of magnitude below the data. *)
let test_checkpoint_costs () =
  with_ctx ~backend:Em.Backend.Sim ~disks:1 (fun ctx ->
      let v, s = open_checkpointed ctx in
      List.iter (fun q -> ignore (Os.query s q)) queries_before;
      let snap = Os.snapshot s in
      Tu.check_bool "snapshot is handle-sized" true (Os.snapshot_words snap < n / 4);
      let store = match Os.checkpoint_store s with Some st -> st | None -> assert false in
      Tu.check_bool "policy saved at least the baseline" true (Em.Checkpoint.saves store >= 1);
      Tu.check_bool "saves charged metered writes" true (Em.Checkpoint.save_ios store >= 1);
      let loads0 = Em.Checkpoint.loads store in
      let s = kill_and_restore ctx v s in
      Tu.check_int "restore paid one load" (loads0 + 1) (Em.Checkpoint.loads store);
      Tu.check_bool "resume read metered" true (Em.Checkpoint.load_ios store >= 1);
      Os.close ~drop_cache:true s;
      Tu.check_no_leaks ~live:(-1) ctx)

let suite =
  let rt name backend disks =
    Alcotest.test_case
      (Printf.sprintf "round trip %s D=%d" name disks)
      `Quick (test_round_trip ~backend ~disks)
  in
  [
    rt "sim" Em.Backend.Sim 1;
    rt "sim" Em.Backend.Sim 4;
    rt "file" Em.Backend.File 1;
    rt "file" Em.Backend.File 4;
    rt "cached" (Em.Backend.Cached Em.Backend.Sim) 1;
    rt "cached" (Em.Backend.Cached Em.Backend.Sim) 4;
    Alcotest.test_case "double kill" `Quick test_double_kill;
    Alcotest.test_case "restore pristine" `Quick test_restore_pristine;
    Alcotest.test_case "checkpoint costs" `Quick test_checkpoint_costs;
  ]
