(* Property-based tests (qcheck): random instances against the in-memory
   oracles and the paper's invariants. *)

open QCheck2

let mk_ctx () = Tu.ctx ~mem:1024 ~block:16 ()

(* A feasible problem spec for a given n. *)
let spec_gen n =
  let open Gen in
  let* k = int_range 1 (min n 64) in
  let* a = int_range 0 (n / k) in
  let lo_b = max a ((n + k - 1) / k) in
  let* b = int_range lo_b n in
  return { Core.Problem.n; k; a; b }

let input_gen =
  let open Gen in
  let* n = int_range 10 3_000 in
  let* seed = int_range 0 1_000_000 in
  let* kind_idx = int_range 0 (List.length Core.Workload.all_kinds - 1) in
  let kind = List.nth Core.Workload.all_kinds kind_idx in
  return (n, seed, kind)

let distinct_input_gen =
  Gen.map
    (fun (n, seed, kind) ->
      let kind = if Core.Workload.distinct_ranks kind then kind else Core.Workload.Random_perm in
      (n, seed, kind))
    input_gen

let gen_array (n, seed, kind) = Core.Workload.generate kind ~seed ~n ~block:16

let prop_multi_select_matches_oracle =
  let gen =
    let open Gen in
    let* inp = input_gen in
    let (n, _, _) = inp in
    let* nranks = int_range 1 (min n 40) in
    let* rank_seed = int_range 0 1_000_000 in
    return (inp, nranks, rank_seed)
  in
  Tu.qcheck_case ~count:60 "multi_select matches verifier" gen (fun (inp, nranks, rank_seed) ->
      let n, _, _ = inp in
      let a = gen_array inp in
      let r = Tu.rng rank_seed in
      let set = Hashtbl.create nranks in
      while Hashtbl.length set < nranks do
        Hashtbl.replace set (1 + Tu.next_int r n) ()
      done;
      let ranks = Array.of_list (List.sort Tu.icmp (Hashtbl.fold (fun k () acc -> k :: acc) set [])) in
      let ctx = mk_ctx () in
      let v = Tu.int_vec ctx a in
      let results = Core.Multi_select.select Tu.icmp v ~ranks in
      match Core.Verify.multi_select Tu.icmp ~input:a ~ranks results with
      | Ok () -> ctx.Em.Ctx.stats.Em.Stats.mem_in_use = 0
      | Error msg -> Test.fail_report msg)

let prop_multi_partition_verifies =
  let gen =
    let open Gen in
    let* inp = input_gen in
    let (n, _, _) = inp in
    let* k = int_range 1 (min n 50) in
    let* size_seed = int_range 0 1_000_000 in
    return (inp, k, size_seed)
  in
  Tu.qcheck_case ~count:50 "multi_partition verifies" gen (fun (inp, k, size_seed) ->
      let n, _, _ = inp in
      let a = gen_array inp in
      (* Random composition of n into k positive parts. *)
      let r = Tu.rng size_seed in
      let cuts = Hashtbl.create k in
      while Hashtbl.length cuts < k - 1 do
        Hashtbl.replace cuts (1 + Tu.next_int r (n - 1)) ()
      done;
      let cut_list = List.sort Tu.icmp (Hashtbl.fold (fun c () acc -> c :: acc) cuts []) in
      let sizes =
        let rec diff prev = function
          | [] -> [ n - prev ]
          | c :: rest -> (c - prev) :: diff c rest
        in
        Array.of_list (diff 0 cut_list)
      in
      let ctx = mk_ctx () in
      let v = Tu.int_vec ctx a in
      let parts = Core.Multi_partition.partition_sizes Tu.icmp v ~sizes in
      let contents = Array.map Em.Vec.Oracle.to_array parts in
      match Core.Verify.multi_partition Tu.icmp ~input:a ~sizes contents with
      | Ok () -> ctx.Em.Ctx.stats.Em.Stats.mem_in_use = 0
      | Error msg -> Test.fail_report msg)

let prop_splitters_verify =
  let gen =
    let open Gen in
    let* inp = distinct_input_gen in
    let (n, _, _) = inp in
    let* spec = spec_gen n in
    return (inp, spec)
  in
  Tu.qcheck_case ~count:80 "splitters solve verifies" gen (fun (inp, spec) ->
      let a = gen_array inp in
      let ctx = mk_ctx () in
      let v = Tu.int_vec ctx a in
      let out = Core.Splitters.solve Tu.icmp v spec in
      let splitters = Em.Vec.Oracle.to_array out in
      match Core.Verify.splitters Tu.icmp ~input:a spec splitters with
      | Ok () -> ctx.Em.Ctx.stats.Em.Stats.mem_in_use = 0
      | Error msg ->
          Test.fail_report
            (Format.asprintf "%s on %a" msg Core.Problem.pp_spec spec))

let prop_partitioning_verify =
  let gen =
    let open Gen in
    let* inp = distinct_input_gen in
    let (n, _, _) = inp in
    let* spec = spec_gen n in
    return (inp, spec)
  in
  Tu.qcheck_case ~count:80 "partitioning solve verifies" gen (fun (inp, spec) ->
      let a = gen_array inp in
      let ctx = mk_ctx () in
      let v = Tu.int_vec ctx a in
      let parts = Core.Partitioning.solve Tu.icmp v spec in
      let contents = Array.map Em.Vec.Oracle.to_array parts in
      match Core.Verify.partitioning Tu.icmp ~input:a spec contents with
      | Ok () -> ctx.Em.Ctx.stats.Em.Stats.mem_in_use = 0
      | Error msg ->
          Test.fail_report
            (Format.asprintf "%s on %a" msg Core.Problem.pp_spec spec))

let prop_em_select_oracle =
  let gen =
    let open Gen in
    let* inp = input_gen in
    let (n, _, _) = inp in
    let* rank = int_range 1 n in
    return (inp, rank)
  in
  Tu.qcheck_case ~count:60 "em_select equals sorted index" gen (fun (inp, rank) ->
      let a = gen_array inp in
      let ctx = mk_ctx () in
      let v = Tu.int_vec ctx a in
      let x = Emalg.Em_select.select Tu.icmp v ~rank in
      let s = Tu.sorted_copy a in
      x = s.(rank - 1))

let prop_external_sort =
  Tu.qcheck_case ~count:60 "external sort = Array.sort" input_gen (fun inp ->
      let a = gen_array inp in
      let ctx = mk_ctx () in
      let v = Tu.int_vec ctx a in
      let out = Emalg.External_sort.sort Tu.icmp v in
      Em.Vec.Oracle.to_array out = Tu.sorted_copy a)

let prop_sample_splitters_gap =
  let gen =
    let open Gen in
    let* inp = distinct_input_gen in
    let* k = int_range 2 16 in
    return (inp, k)
  in
  Tu.qcheck_case ~count:60 "sample splitters respect gap_bound" gen (fun (inp, k) ->
      let n, _, _ = inp in
      if k > n then true
      else begin
        let a = gen_array inp in
        let ctx = mk_ctx () in
        let v = Tu.int_vec ctx a in
        let s = Emalg.Sample_splitters.find Tu.icmp v ~k in
        let bound = Emalg.Sample_splitters.gap_bound ctx.Em.Ctx.params ~n ~k in
        (* Compute the max gap on the sorted input. *)
        let sorted = Tu.sorted_copy a in
        let max_gap = ref 0 in
        let start = ref 0 in
        Array.iter
          (fun sp ->
            let pos = ref !start in
            while !pos < n && sorted.(!pos) <= sp do
              incr pos
            done;
            max_gap := max !max_gap (!pos - !start);
            start := !pos)
          s;
        max_gap := max !max_gap (n - !start);
        !max_gap <= bound
      end)

let prop_mem_splitters_exact_spacing =
  let gen =
    let open Gen in
    let* inp = distinct_input_gen in
    let (n, _, _) = inp in
    let* spacing = int_range 1 (max 1 n) in
    return (inp, spacing)
  in
  Tu.qcheck_case ~count:60 "mem splitters land on exact ranks" gen (fun (inp, spacing) ->
      let n, _, _ = inp in
      let a = gen_array inp in
      let ctx = mk_ctx () in
      let v = Tu.int_vec ctx a in
      let s = Quantile.Mem_splitters.find Tu.icmp v ~spacing in
      let sorted = Tu.sorted_copy a in
      let expected = max 0 (((n + spacing - 1) / spacing) - 1) in
      Array.length s = expected
      && Array.for_all2
           (fun got want -> got = want)
           s
           (Array.init expected (fun i -> sorted.(((i + 1) * spacing) - 1)))
      && ctx.Em.Ctx.stats.Em.Stats.mem_in_use = 0)

let prop_intermixed_oracle =
  let gen =
    let open Gen in
    let* l = int_range 1 8 in
    let* total = int_range l 2_000 in
    let* seed = int_range 0 1_000_000 in
    return (l, total, seed)
  in
  Tu.qcheck_case ~count:50 "intermixed matches per-group oracle" gen (fun (l, total, seed) ->
      let r = Tu.rng seed in
      let pairs =
        Array.init total (fun i ->
            let g = if i < l then i else Tu.next_int r l in
            (Tu.next_int r 1_000, g))
      in
      Tu.shuffle r pairs;
      let counts = Array.make l 0 in
      Array.iter (fun (_, g) -> counts.(g) <- counts.(g) + 1) pairs;
      let targets = Array.map (fun c -> 1 + Tu.next_int r c) counts in
      let ctx = mk_ctx () in
      let pctx : (int * int) Em.Ctx.t = Em.Ctx.linked ctx in
      let d = Em.Vec.of_array pctx pairs in
      let results = Core.Intermixed.select Tu.icmp d ~targets in
      let expected =
        Array.mapi
          (fun g t ->
            let members =
              Array.of_list
                (List.filter_map
                   (fun (x, g') -> if g' = g then Some x else None)
                   (Array.to_list pairs))
            in
            Array.sort Tu.icmp members;
            members.(t - 1))
          targets
      in
      results = expected)

let prop_packed_matches_separate =
  let gen =
    let open Gen in
    let* inp = distinct_input_gen in
    let (n, _, _) = inp in
    let* spec = spec_gen n in
    return (inp, spec)
  in
  Tu.qcheck_case ~count:50 "packed partitioning = separate partitioning" gen
    (fun (inp, spec) ->
      let a = gen_array inp in
      let ctx = mk_ctx () in
      let v = Tu.int_vec ctx a in
      let packed = Core.Partitioning.solve_packed Tu.icmp v spec in
      let separate = Core.Partitioning.solve Tu.icmp v spec in
      let sizes_match =
        packed.Core.Partitioning.sizes = Array.map Em.Vec.length separate
      in
      let data = Em.Vec.Oracle.to_array packed.Core.Partitioning.data in
      let offset = ref 0 in
      let pieces =
        Array.map
          (fun size ->
            let piece = Array.sub data !offset size in
            offset := !offset + size;
            piece)
          packed.Core.Partitioning.sizes
      in
      match Core.Verify.partitioning Tu.icmp ~input:a spec pieces with
      | Ok () -> sizes_match && ctx.Em.Ctx.stats.Em.Stats.mem_in_use = 0
      | Error msg -> Test.fail_report msg)

let prop_reduction_precise =
  let gen =
    let open Gen in
    let* inp = input_gen in
    let (n, _, _) = inp in
    let* chunk = int_range 1 n in
    return (inp, chunk)
  in
  Tu.qcheck_case ~count:40 "reduction yields exact chunks" gen (fun (inp, chunk) ->
      let n, _, _ = inp in
      let a = gen_array inp in
      let ctx = mk_ctx () in
      let v = Tu.int_vec ctx a in
      let parts = Core.Reduction.precise_by_approximate Tu.icmp v ~chunk in
      let sizes = Array.map Em.Vec.length parts in
      let expected = (n + chunk - 1) / chunk in
      Array.length parts = expected
      &&
      match
        Core.Verify.multi_partition Tu.icmp ~input:a ~sizes
          (Array.map Em.Vec.Oracle.to_array parts)
      with
      | Ok () -> true
      | Error msg -> Test.fail_report msg)

let prop_random_geometry =
  let gen =
    let open Gen in
    let* block = int_range 4 128 in
    let* fanout = int_range 8 64 in
    let* inp = input_gen in
    return (block, fanout, inp)
  in
  Tu.qcheck_case ~count:40 "full stack under random geometry" gen
    (fun (block, fanout, inp) ->
      let n, _, _ = inp in
      let ctx = Tu.ctx ~mem:(block * fanout) ~block () in
      let a = gen_array inp in
      let v = Tu.int_vec ctx a in
      let median = Emalg.Em_select.select Tu.icmp v ~rank:((n + 1) / 2) in
      let sorted = Tu.sorted_copy a in
      let spec = Core.Problem.even_spec ~n ~k:(min n 8) in
      let parts = Core.Partitioning.solve Tu.icmp v spec in
      let ok_parts =
        match
          Core.Verify.partitioning Tu.icmp ~input:a spec (Array.map Em.Vec.Oracle.to_array parts)
        with
        | Ok () -> true
        | Error msg -> Test.fail_report msg
      in
      median = sorted.((n + 1) / 2 - 1)
      && ok_parts
      && ctx.Em.Ctx.stats.Em.Stats.mem_in_use = 0)

let suite =
  [
    prop_multi_select_matches_oracle;
    prop_multi_partition_verifies;
    prop_splitters_verify;
    prop_partitioning_verify;
    prop_em_select_oracle;
    prop_external_sort;
    prop_sample_splitters_gap;
    prop_mem_splitters_exact_spacing;
    prop_intermixed_oracle;
    prop_packed_matches_separate;
    prop_reduction_precise;
    prop_random_geometry;
  ]
