(* Online multiselection sessions (Emalg.Online_select): correctness against
   the sorted oracle, equivalence with the batch engine under a full
   adversarial rank stream, the refinement invariant (intervals only split,
   never re-merge), and the teardown guarantees (no leaked blocks, no
   resident buffer-pool pages after [close ~drop_cache:true]). *)

module Os = Emalg.Online_select

let session ctx a = Os.open_session Tu.icmp ctx (Tu.int_vec ctx a)

(* ---- point queries against the sorted oracle ---- *)

let test_select_oracle () =
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let n = 6_000 in
  let a = Tu.random_perm ~seed:11 n in
  let v = Tu.int_vec ctx a in
  let baseline = Em.Device.live_blocks ctx.Em.Ctx.dev in
  let s = Os.open_session Tu.icmp ctx v in
  (* Adversarial-ish stream: extremes, the middle, then neighbours and
     repeats that must ride refinement already paid for. *)
  List.iter
    (fun k -> Tu.check_int (Printf.sprintf "select %d" k) (k - 1) (Os.select s k))
    [ n; 1; n / 2; (n / 2) + 1; 17; n - 17; n / 2; 1 ];
  (* A repeated query finds its interval sorted: refinement is free and the
     lookup costs at most one block read. *)
  let r = Os.query s (Os.Select (n / 2)) in
  Tu.check_int "repeat query refines nothing" 0 (Em.Stats.delta_ios r.Os.refine);
  Tu.check_bool "repeat query costs <= 1 I/O" true (Em.Stats.delta_ios r.Os.cost <= 1);
  Tu.check_int "repeat query splits nothing" 0 r.Os.splits;
  let sum = Os.summary s in
  Tu.check_int "summary counts the queries" 9 sum.Os.queries;
  Tu.check_bool "session refined lazily, not fully" true
    (sum.Os.sorted_leaves < sum.Os.leaves);
  Os.close s;
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use;
  Tu.check_int "session storage freed (input preserved)" baseline
    (Em.Device.live_blocks ctx.Em.Ctx.dev)

let test_quantile_convention () =
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let n = 4_000 in
  let a = Tu.random_perm ~seed:12 n in
  let sorted = Tu.sorted_copy a in
  let s = session ctx a in
  List.iter
    (fun phi ->
      let rank = max 1 (int_of_float (Float.ceil (phi *. float_of_int n))) in
      let r = Os.query s (Os.Quantile phi) in
      Tu.check_int
        (Printf.sprintf "quantile %g = rank %d" phi rank)
        sorted.(rank - 1) r.Os.values.(0))
    [ 1e-9; 0.25; 0.5; 0.999; 1.0 ];
  List.iter
    (fun phi ->
      match Os.query s (Os.Quantile phi) with
      | _ -> Alcotest.failf "quantile %g should be rejected" phi
      | exception Invalid_argument _ -> ())
    [ 0.0; -0.5; 1.5 ];
  Os.close s

let test_range_oracle () =
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let n = 5_000 in
  (* Heavy duplicates: ranks must resolve like the stable batch engine. *)
  let a = Tu.random_ints ~seed:13 ~bound:97 n in
  let sorted = Tu.sorted_copy a in
  let s = session ctx a in
  List.iter
    (fun (x, y) ->
      let r = Os.query s (Os.Range (x, y)) in
      Tu.check_int_array
        (Printf.sprintf "range %d..%d" x y)
        (Array.sub sorted (x - 1) (y - x + 1))
        r.Os.values)
    [ (1, 50); (2_400, 2_500); (n - 10, n); (777, 777) ];
  (match Os.query s (Os.Range (5, 4)) with
  | _ -> Alcotest.fail "empty range should be rejected"
  | exception Invalid_argument _ -> ());
  Os.close s;
  (* A range wider than a half-memory load cannot be assembled in memory. *)
  let small = Tu.ctx () in
  let s2 = session small (Tu.random_perm ~seed:14 400) in
  (match Os.query s2 (Os.Range (1, 1 + Emalg.Layout.half_load small)) with
  | _ -> Alcotest.fail "over-wide range should be rejected"
  | exception Invalid_argument _ -> ());
  Os.close s2

let test_out_of_range_ranks () =
  let ctx = Tu.ctx () in
  let s = session ctx (Tu.random_perm ~seed:15 300) in
  List.iter
    (fun k ->
      match Os.select s k with
      | _ -> Alcotest.failf "rank %d should be rejected" k
      | exception Invalid_argument _ -> ())
    [ 0; -3; 301 ];
  Os.close s;
  (match Os.select s 1 with
  | _ -> Alcotest.fail "closed session should reject queries"
  | exception Invalid_argument _ -> ())

(* ---- the refinement invariant: partitions only ever subdivide ---- *)

let check_partition n ivs =
  let stop =
    List.fold_left
      (fun off (lo, len, _) ->
        Tu.check_int "intervals contiguous" off lo;
        Tu.check_bool "interval non-empty" true (len > 0);
        off + len)
      0 ivs
  in
  Tu.check_int "partition covers the input" n stop

let check_refines prev next =
  List.iter
    (fun (lo, len, sorted) ->
      match
        List.find_opt
          (fun (plo, plen, _) -> plo <= lo && lo + len <= plo + plen)
          prev
      with
      | None -> Alcotest.fail "new interval not nested in the previous partition"
      | Some (plo, plen, psorted) ->
          if psorted then begin
            (* A sorted interval is final: never re-split, never unsorted. *)
            Tu.check_bool "sorted interval survives unchanged" true
              (plo = lo && plen = len && sorted)
          end)
    next

let test_intervals_monotone () =
  let ctx = Tu.ctx () in
  let n = 2_000 in
  let s = session ctx (Tu.random_perm ~seed:16 n) in
  let prev = ref (Os.intervals s) in
  check_partition n !prev;
  Tu.check_bool "starts as one raw leaf" true
    (!prev = [ (0, n, false) ]);
  List.iter
    (fun q ->
      ignore (Os.query s q);
      let next = Os.intervals s in
      check_partition n next;
      check_refines !prev next;
      Tu.check_bool "leaf count monotone" true
        (List.length next >= List.length !prev);
      prev := next)
    [
      Os.Select (n / 2);
      Os.Select (n / 2);
      Os.Range (3, 40);
      Os.Quantile 0.9;
      Os.Select 1;
      Os.Range ((n / 2) - 30, (n / 2) + 30);
      Os.Select n;
    ];
  Os.close s

(* ---- equivalence with the batch engine under a full rank stream ---- *)

(* A session answering all N ranks in adversarial (shuffled) order must
   produce exactly the batch multiselection output, for strictly fewer
   total I/Os than the batch engine run over the same rank set — and its
   cumulative refinement stays within a small constant of one external
   sort (the online algorithm's total-work guarantee; the constant covers
   the position-tagged distribution pass a lazy tree pays and an up-front
   sort does not). *)
let prop_full_stream_matches_batch =
  Tu.qcheck_case ~count:25
    "all-rank shuffled stream == batch multiselect, for fewer total I/Os"
    QCheck2.Gen.(pair (int_range 120 700) (int_range 0 999))
    (fun (n, seed) ->
      let a = Tu.random_perm ~seed n in
      let order = Array.init n (fun i -> i + 1) in
      Tu.shuffle (Tu.rng (seed + 1)) order;
      (* online session, one rank per query *)
      let ctx1 = Tu.ctx () in
      let s = session ctx1 a in
      let out = Array.make n (-1) in
      Array.iter (fun k -> out.(k - 1) <- Os.select s k) order;
      let sum = Os.summary s in
      Os.close s;
      let drained = ctx1.Em.Ctx.stats.Em.Stats.mem_in_use in
      Em.Ctx.close ctx1;
      (* batch multiselect of the same ranks on a fresh machine *)
      let ctx2 = Tu.ctx () in
      let v2 = Tu.int_vec ctx2 a in
      let ranks = Array.init n (fun i -> i + 1) in
      let batch, dbatch =
        Em.Ctx.measured ctx2 (fun () -> Core.Multi_select.select Tu.icmp v2 ~ranks)
      in
      Em.Ctx.close ctx2;
      (* one full external sort on a third fresh machine *)
      let ctx3 = Tu.ctx () in
      let v3 = Tu.int_vec ctx3 a in
      let _, dsort =
        Em.Ctx.measured ctx3 (fun () ->
            Em.Vec.free (Emalg.External_sort.sort (Em.Ctx.counted ctx3 Tu.icmp) v3))
      in
      Em.Ctx.close ctx3;
      out = batch && drained = 0
      && sum.Os.refine_ios + sum.Os.answer_ios <= Em.Stats.delta_ios dbatch
      && sum.Os.refine_ios <= 4 * Em.Stats.delta_ios dsort)

(* ---- drains: the batch wrappers are thin session shells ---- *)

let test_pristine_drain_is_batch () =
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let n = 4_000 in
  let a = Tu.random_perm ~seed:17 n in
  let v = Tu.int_vec ctx a in
  let s = Core.Multi_select.open_session Tu.icmp v in
  let ranks = Tu.int_vec ctx [| 5; 1_000; 2_500; n |] in
  let out = Os.drain s ~ranks in
  Tu.check_int_array "pristine drain = batch answers"
    [| 4; 999; 2_499; n - 1 |]
    (Em.Vec.Oracle.to_array out);
  (* The pristine drain delegated to the batch plan: the tree is untouched
     (still one raw leaf) and the session accounted no queries. *)
  let sum = Os.summary s in
  Tu.check_int "no per-query accounting" 0 sum.Os.queries;
  Tu.check_int "tree untouched" 1 sum.Os.leaves;
  Em.Vec.free out;
  Em.Vec.free ranks;
  Os.close s;
  Tu.check_no_leaks ~live:(Em.Vec.num_blocks v) ctx

let test_warm_drain_matches_batch () =
  let ctx = Tu.ctx ~mem:1024 ~block:16 () in
  let n = 4_000 in
  let a = Tu.random_ints ~seed:18 ~bound:50 n in
  let ranks = [| 3; 700; 1_999; 2_000; 3_999 |] in
  (* warm session: a query first, then a streaming drain *)
  let s = session ctx a in
  ignore (Os.select s (n / 3));
  let rv = Tu.int_vec ctx ranks in
  let out = Em.Vec.Oracle.to_array (Os.drain s ~ranks:rv) in
  Os.close s;
  (* batch reference on a fresh machine *)
  let ctx2 = Tu.ctx ~mem:1024 ~block:16 () in
  let batch = Core.Multi_select.select Tu.icmp (Tu.int_vec ctx2 a) ~ranks in
  Tu.check_int_array "warm streaming drain = batch answers" batch out

(* ---- teardown: no resident pool pages, no leaked blocks ---- *)

let test_zero_pool_pages_after_close () =
  let ctx : int Em.Ctx.t =
    Em.Ctx.create
      ~backend:(Em.Backend.Cached Em.Backend.Sim)
      (Tu.params ~mem:1024 ~block:16 ())
  in
  let pool =
    match Em.Ctx.backend_pool ctx with
    | Some p -> p
    | None -> Alcotest.fail "cached backend must expose its pool"
  in
  let n = 4_000 in
  let a = Tu.random_perm ~seed:19 n in
  (* Idle session: open + close touches nothing, holds nothing. *)
  let s0 = session ctx a in
  Os.close ~drop_cache:true s0;
  Tu.check_int "idle session holds zero pool pages" 0
    (Em.Backend.Pool.resident pool);
  (* Worked session: queries warm the pool; close ~drop_cache evicts. *)
  let s = session ctx a in
  ignore (Os.select s 1);
  ignore (Os.select s (n / 2));
  ignore (Os.query s (Os.Range ((n / 2) - 8, (n / 2) + 8)));
  Tu.check_bool "queries warmed the pool" true
    (Em.Backend.Pool.resident pool > 0);
  Os.close ~drop_cache:true s;
  Tu.check_int "closed session holds zero pool pages" 0
    (Em.Backend.Pool.resident pool);
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use;
  Em.Ctx.close ctx

let suite =
  [
    Alcotest.test_case "select against the sorted oracle" `Quick test_select_oracle;
    Alcotest.test_case "quantile rank convention" `Quick test_quantile_convention;
    Alcotest.test_case "range against the sorted oracle" `Quick test_range_oracle;
    Alcotest.test_case "rank validation" `Quick test_out_of_range_ranks;
    Alcotest.test_case "intervals only split, never re-merge" `Quick
      test_intervals_monotone;
    prop_full_stream_matches_batch;
    Alcotest.test_case "pristine drain delegates to the batch plan" `Quick
      test_pristine_drain_is_batch;
    Alcotest.test_case "warm drain streams through the session" `Quick
      test_warm_drain_matches_batch;
    Alcotest.test_case "zero pool pages after close" `Quick
      test_zero_pool_pages_after_close;
  ]
