let () =
  Alcotest.run "repro"
    [
      ("em", Test_em.suite);
      ("backend", Test_backend.suite);
      ("trace", Test_trace.suite);
      ("emalg", Test_emalg.suite);
      ("phase", Test_phase.suite);
      ("mem_budget", Test_mem_budget.suite);
      ("surface", Test_surface.suite);
      ("quantile", Test_quantile.suite);
      ("problem", Test_problem.suite);
      ("workload", Test_workload.suite);
      ("intermixed", Test_intermixed.suite);
      ("multi_select", Test_multi_select.suite);
      ("multi_partition", Test_multi_partition.suite);
      ("split_step", Test_split_step.suite);
      ("splitters", Test_splitters.suite);
      ("partitioning", Test_partitioning.suite);
      ("packed", Test_packed.suite);
      ("verify", Test_verify.suite);
      ("bounds", Test_bounds.suite);
      ("counting", Test_counting.suite);
      ("order_theory", Test_order_theory.suite);
      ("reduction", Test_reduction.suite);
      ("lower_bounds", Test_lower_bounds.suite);
      ("polymorphic", Test_polymorphic.suite);
      ("geometry", Test_geometry.suite);
      ("leaks", Test_leaks.suite);
      ("props", Test_props.suite);
      ("fault", Test_fault.suite);
      ("resilient", Test_resilient.suite);
      ("restart", Test_restart.suite);
      ("fault_sweep", Test_fault_sweep.suite);
      ("metrics", Test_metrics.suite);
      ("profile", Test_profile.suite);
      ("bound_track", Test_bound_track.suite);
    ]
