(* Tests for the shared distribution-sort level (Split_step). *)

let test_split_preserves_and_orders () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let n = 5_000 in
  let a = Tu.random_perm ~seed:1 n in
  let v = Tu.int_vec ctx a in
  let owned = Emalg.Scan.copy v in
  let buckets = Emalg.Split_step.split Tu.icmp owned ~target_buckets:8 in
  (* Concatenation of buckets is a permutation of the input, in value order
     across buckets. *)
  let pieces = Array.map Em.Vec.Oracle.to_array buckets in
  let all = Array.concat (Array.to_list pieces) in
  Tu.check_int_array "permutation" (Tu.sorted_copy a) (Tu.sorted_copy all);
  let last_max = ref min_int in
  Array.iter
    (fun piece ->
      if Array.length piece > 0 then begin
        let mn = Array.fold_left min max_int piece in
        let mx = Array.fold_left max min_int piece in
        Tu.check_bool "cross-bucket order" true (mn >= !last_max);
        last_max := mx
      end)
    pieces;
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use

let test_split_progress () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let n = 4_096 in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:2 n) in
  let owned = Emalg.Scan.copy v in
  let buckets = Emalg.Split_step.split Tu.icmp owned ~target_buckets:4 in
  Array.iter
    (fun b -> Tu.check_bool "every bucket strictly smaller" true (Em.Vec.length b < n))
    buckets

let test_split_tagging_handles_duplicates () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let n = 4_000 in
  let a = Array.make n 7 in
  (* All-equal keys: only positional tagging can make progress. *)
  let v = Tu.int_vec ctx a in
  let buckets = Emalg.Split_step.split_tagging Tu.icmp v ~target_buckets:8 in
  let total = Array.fold_left (fun acc b -> acc + Em.Vec.length b) 0 buckets in
  Tu.check_int "all elements routed" n total;
  Array.iter
    (fun b -> Tu.check_bool "progress despite equal keys" true (Em.Vec.length b < n))
    buckets;
  (* Positions within each bucket are increasing and globally ordered. *)
  let last = ref (-1) in
  Array.iter
    (fun b ->
      Array.iter
        (fun (_, pos) ->
          Tu.check_bool "positional order" true (pos > !last);
          last := pos)
        (Em.Vec.Oracle.to_array b))
    buckets

let test_split_tagging_preserves_input () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let a = Tu.random_perm ~seed:3 3_000 in
  let v = Tu.int_vec ctx a in
  let buckets = Emalg.Split_step.split_tagging Tu.icmp v ~target_buckets:6 in
  Array.iter Em.Vec.free buckets;
  Tu.check_int_array "input untouched" a (Em.Vec.Oracle.to_array v)

let test_default_target_bounds () =
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  List.iter
    (fun n ->
      let t = Emalg.Split_step.default_target ctx ~n in
      Tu.check_bool "at least 2" true (t >= 2);
      Tu.check_bool "at most max_k" true (t <= Emalg.Sample_splitters.max_k ctx))
    [ 10; 1_000; 100_000; 10_000_000 ]

let suite =
  [
    Alcotest.test_case "split: permutation + order" `Quick test_split_preserves_and_orders;
    Alcotest.test_case "split: progress" `Quick test_split_progress;
    Alcotest.test_case "split_tagging: all-equal keys" `Quick
      test_split_tagging_handles_duplicates;
    Alcotest.test_case "split_tagging: input preserved" `Quick
      test_split_tagging_preserves_input;
    Alcotest.test_case "default_target bounds" `Quick test_default_target_bounds;
  ]
