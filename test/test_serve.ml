(* The serve-session engine (Core.Serve): exception safety of the batch
   window, typed error replies (validation, faults-after-retries, budget),
   reply determinism under a fixed fault plan, malformed-input floods, and
   the state-file round trip behind `em_repro serve --restore`. *)

module Os = Emalg.Online_select

let n = 6_000
let mem = 1_024
let block = 16

let meta =
  {
    Core.Serve.m_n = n;
    m_mem = mem;
    m_block = block;
    m_disks = 1;
    m_workload = "random-perm";
    m_seed = 5;
  }

(* A frozen injected clock keeps every wall-derived reply field (uptime_ms)
   deterministic, so transcript-equality checks — notably the fault-reply
   determinism pair — can byte-compare whole replies without flaking when a
   run straddles a millisecond boundary under load. *)
let make_server ?checkpoint_every ?io_budget ?max_retries ?state_path ?restore () =
  let ctx : int Em.Ctx.t = Em.Ctx.create (Em.Params.create ~mem ~block) in
  let v = Em.Vec.of_array ctx (Tu.random_perm ~seed:5 n) in
  let srv =
    Core.Serve.create ?checkpoint_every ?io_budget ?max_retries ?state_path ?restore
      ~clock:(fun () -> 0.) ~meta ctx v
  in
  (ctx, srv)

let teardown ctx srv =
  Core.Serve.close srv;
  Em.Ctx.close ctx

(* Collect emitted reply lines through a buffer-backed [emit]. *)
let collector () =
  let lines = ref [] in
  ((fun line -> lines := line :: !lines), fun () -> List.rev !lines)

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let contains ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  lsub = 0 || go 0

(* ---- satellite: a query failing inside the batch window ---- *)

(* A budget abort raises out of [Online_select.query] inside the batch's
   [Ctx.io_window]; the window must close, the failing query must still
   produce an error reply, and the rest of the batch — and the server —
   must keep answering. *)
let test_window_error_reply () =
  let ctx, srv = make_server ~io_budget:3 () in
  let emit, emitted = collector () in
  let ok = Core.Serve.run_batch srv emit "select 3000;stats" in
  Tu.check_bool "batch survives the failed query" true ok;
  Tu.check_int "scheduling window closed after the raise" 0
    ctx.Em.Ctx.stats.Em.Stats.window_depth;
  (match emitted () with
  | [ err; stats ] ->
      Tu.check_bool "failed query replied with budget_exceeded" true
        (contains ~sub:"\"error\":\"budget_exceeded\"" err);
      Tu.check_bool "budget reply carries the budget" true (contains ~sub:"\"budget\":3" err);
      Tu.check_bool "rest of the batch still answered" true
        (has_prefix ~prefix:"{\"session\":" stats)
  | lines -> Alcotest.failf "expected 2 replies, got %d" (List.length lines));
  (* Lift the budget: the very same query must now succeed — the server
     loop never died. *)
  Os.set_io_budget (Core.Serve.session srv) None;
  let emit2, emitted2 = collector () in
  Tu.check_bool "server keeps serving" true (Core.Serve.run_batch srv emit2 "select 3000");
  (match emitted2 () with
  | [ r ] -> Tu.check_bool "query answered after the error" true (contains ~sub:"\"values\":[2999]" r)
  | _ -> Alcotest.fail "expected 1 reply");
  teardown ctx srv

(* ---- satellite: quantile/range argument validation ---- *)

let test_parse_validation () =
  let err s =
    match Core.Serve.parse_command s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%S should be rejected at parse time" s
  in
  let ok s =
    match Core.Serve.parse_command s with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "%S should parse, got %s" s msg
  in
  List.iter err
    [
      "quantile nan";
      "quantile -nan";
      "quantile inf";
      "quantile -inf";
      "quantile 0";
      "quantile 0.0";
      "quantile -0.25";
      "quantile 1.5";
      "quantile";
      "quantile x";
      "range 9 3";
      "range 3";
      "range a b";
      "select";
      "select 1.5";
      "";
      "   ";
      "bogus 3";
    ];
  List.iter ok
    [ "quantile 1"; "quantile 0.5"; "quantile 1e-9"; "range 3 9"; "range 4 4"; "select 1" ]

(* Malformed-line flood: every garbage line gets exactly one error reply and
   the session is untouched (no query ever reaches it). *)
let test_malformed_flood () =
  let ctx, srv = make_server () in
  let emit, emitted = collector () in
  let rng = Tu.rng 99 in
  for i = 0 to 199 do
    let junk =
      match i mod 5 with
      | 0 -> Printf.sprintf "garbage %d" (Tu.next_int rng 1000)
      | 1 -> "quantile nan"
      | 2 -> "range 9 3"
      | 3 -> String.make (1 + Tu.next_int rng 40) ';'
      | _ -> "select x\"y\\z"
    in
    ignore (Core.Serve.run_batch srv emit junk)
  done;
  Tu.check_bool "every reply is an error" true
    (List.for_all (has_prefix ~prefix:"{\"error\":") (emitted ()));
  Tu.check_int "window closed" 0 ctx.Em.Ctx.stats.Em.Stats.window_depth;
  Tu.check_int "no query reached the session" 0 (Os.summary (Core.Serve.session srv)).Os.queries;
  let emit2, emitted2 = collector () in
  ignore (Core.Serve.run_batch srv emit2 "select 17");
  (match emitted2 () with
  | [ r ] -> Tu.check_bool "real query still answered" true (contains ~sub:"\"values\":[16]" r)
  | _ -> Alcotest.fail "expected 1 reply");
  teardown ctx srv

(* ---- typed fault replies, deterministic under a fixed plan ---- *)

let faulted_transcript () =
  let ctx, srv = make_server ~max_retries:2 () in
  Em.Ctx.arm ~policy:{ Em.Device.default_policy with Em.Device.max_retries = 2 } ctx;
  Em.Ctx.inject ctx (Em.Fault.seeded ~seed:9 ~p:1.0 [ Em.Fault.Permanent_read ]);
  let emit, emitted = collector () in
  ignore (Core.Serve.run_batch srv emit "select 3000;stats");
  ignore (Core.Serve.run_batch srv emit "quantile 0.5");
  let lines = emitted () in
  Tu.check_int "window closed despite faults" 0 ctx.Em.Ctx.stats.Em.Stats.window_depth;
  teardown ctx srv;
  lines

let test_fault_reply_determinism () =
  let a = faulted_transcript () in
  let b = faulted_transcript () in
  Tu.check_bool "two runs under the same fault plan emit identical replies" true (a = b);
  match a with
  | [ q1; stats; q2 ] ->
      Tu.check_bool "faulted query replied with a typed code" true
        (contains ~sub:"\"error\":\"read_failed\"" q1
        || contains ~sub:"\"error\":\"io_fault\"" q1);
      Tu.check_bool "reply counts the query-level retries" true
        (contains ~sub:"\"retries\":2" q1);
      Tu.check_bool "server survived to answer stats" true
        (has_prefix ~prefix:"{\"session\":" stats);
      Tu.check_bool "second faulted query also typed" true (contains ~sub:"\"error\"" q2)
  | lines -> Alcotest.failf "expected 3 replies, got %d" (List.length lines)

(* ---- budget aborts keep monotone refinement ---- *)

let test_budget_keeps_refinement () =
  let ctx, srv = make_server ~io_budget:4 () in
  let emit, emitted = collector () in
  let rec drive tries =
    if tries > 500 then Alcotest.fail "budgeted query never completed";
    ignore (Core.Serve.run_batch srv emit "select 3000");
    let last = List.hd (List.rev (emitted ())) in
    if contains ~sub:"\"error\":\"budget_exceeded\"" last then drive (tries + 1)
    else last
  in
  let final = drive 0 in
  Tu.check_bool "query eventually completes under a tiny budget" true
    (contains ~sub:"\"values\":[2999]" final);
  let all = emitted () in
  Tu.check_bool "at least one budget abort happened first" true
    (List.exists (contains ~sub:"\"error\":\"budget_exceeded\"") all);
  (* Each abort kept its refinement: total attempts stay far below what
     re-doing the work from scratch every time would need. *)
  Tu.check_bool "monotone refinement bounds the attempts" true (List.length all < 50);
  let sum = Os.summary (Core.Serve.session srv) in
  Tu.check_bool "aborted refinement accounted in the session" true (sum.Os.refine_ios > 0);
  Tu.check_int "aborted queries not counted as answered" 1 sum.Os.queries;
  teardown ctx srv

(* ---- crashed machine halts the loop, state file survives ---- *)

let test_crash_halts_loop () =
  let state = Filename.temp_file "serve_state" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove state with Sys_error _ -> ())
    (fun () ->
      let ctx, srv = make_server ~checkpoint_every:2 ~state_path:state () in
      let emit, emitted = collector () in
      ignore (Core.Serve.run_batch srv emit "select 3000");
      let bytes_before = In_channel.with_open_bin state In_channel.input_all in
      Em.Ctx.arm ctx;
      Em.Ctx.inject ctx (Em.Fault.every_nth ~n:1 Em.Fault.Crash);
      let ok = Core.Serve.run_batch srv emit "select 17" in
      Tu.check_bool "crash stops the serve loop" true (not ok);
      Tu.check_bool "crash flagged on the server" true (Core.Serve.crashed srv);
      let last = List.hd (List.rev (emitted ())) in
      Tu.check_bool "crash replied with its typed code" true
        (contains ~sub:"\"error\":\"crashed\"" last);
      (* A crashed process does not get to write: the shutdown path must
         leave the last good state file untouched. *)
      Core.Serve.shutdown_checkpoint srv;
      let bytes_after = In_channel.with_open_bin state In_channel.input_all in
      Tu.check_bool "state file untouched after the crash" true (bytes_before = bytes_after);
      teardown ctx srv)

(* ---- state-file round trip (the --restore path, in-process) ---- *)

let test_state_file_round_trip () =
  let state = Filename.temp_file "serve_state" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove state with Sys_error _ -> ())
    (fun () ->
      let ctx1, srv1 = make_server ~checkpoint_every:2 ~state_path:state () in
      let emit, _ = collector () in
      List.iter
        (fun line -> ignore (Core.Serve.run_batch srv1 emit line))
        [ "select 3000"; "quantile 0.1"; "select 17;range 40 45" ];
      Core.Serve.shutdown_checkpoint srv1;
      let intervals1 = Os.intervals (Core.Serve.session srv1) in
      let summary1 = Os.summary (Core.Serve.session srv1) in
      (* The dead process's RAM is gone; a fresh server resumes from the
         file alone. *)
      let ctx2, srv2 = make_server ~state_path:state ~restore:true () in
      Tu.check_bool "server restored from the state file" true (Core.Serve.restored srv2);
      Tu.check_bool "leaf partition survives the process boundary" true
        (intervals1 = Os.intervals (Core.Serve.session srv2));
      let summary2 = Os.summary (Core.Serve.session srv2) in
      Tu.check_int "queries counter survives" summary1.Os.queries summary2.Os.queries;
      Tu.check_int "refine_ios counter survives" summary1.Os.refine_ios summary2.Os.refine_ios;
      Tu.check_int "answer_ios counter survives" summary1.Os.answer_ios summary2.Os.answer_ios;
      Tu.check_int "splits counter survives" summary1.Os.splits summary2.Os.splits;
      (* Refinement paid before the death is still paid: the repeated query
         is answered from the restored sorted run at lookup cost. *)
      let e1, got1 = collector () in
      ignore (Core.Serve.run_batch srv1 e1 "select 3000");
      let e2, got2 = collector () in
      ignore (Core.Serve.run_batch srv2 e2 "select 3000");
      Tu.check_bool "restored reply byte-identical to the survivor's" true
        (got1 () = got2 ());
      Tu.check_bool "restored repeat query costs lookup only" true
        (contains ~sub:"\"refine_ios\":0" (List.hd (got2 ())));
      teardown ctx1 srv1;
      teardown ctx2 srv2)

let test_state_file_mismatch () =
  let state = Filename.temp_file "serve_state" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove state with Sys_error _ -> ())
    (fun () ->
      let ctx1, srv1 = make_server ~state_path:state () in
      let emit, _ = collector () in
      ignore (Core.Serve.run_batch srv1 emit "checkpoint");
      teardown ctx1 srv1;
      let ctx2 : int Em.Ctx.t = Em.Ctx.create (Em.Params.create ~mem ~block) in
      let v2 = Em.Vec.of_array ctx2 (Tu.random_perm ~seed:6 n) in
      (match
         Core.Serve.create ~state_path:state ~restore:true
           ~meta:{ meta with Core.Serve.m_seed = 6 }
           ctx2 v2
       with
      | _ -> Alcotest.fail "restore must refuse a state file for another seed"
      | exception Failure msg ->
          Tu.check_bool "mismatch error names the offending field" true
            (contains ~sub:"seed" msg));
      Em.Ctx.close ctx2)

(* ---- request spans: ids, cost objects, by-kind counters ---- *)

(* Every admitted query — success, typed error, budget abort — carries a
   monotonically increasing "id"; parse errors are rejected before admission
   and carry none. *)
let test_query_ids_monotone () =
  let ctx, srv = make_server ~io_budget:3 () in
  let emit, emitted = collector () in
  ignore (Core.Serve.run_batch srv emit "select 3000");
  ignore (Core.Serve.run_batch srv emit "bogus line");
  ignore (Core.Serve.run_batch srv emit "quantile 0.5;range 40 45");
  (match emitted () with
  | [ q1; parse_err; q2; q3 ] ->
      Tu.check_bool "first admitted query is id 1" true (has_prefix ~prefix:"{\"id\":1," q1);
      Tu.check_bool "budget abort still carries its id" true
        (contains ~sub:"\"error\":\"budget_exceeded\"" q1);
      Tu.check_bool "parse errors carry no id" true
        (has_prefix ~prefix:"{\"error\":" parse_err);
      Tu.check_bool "ids skip nothing across outcomes" true
        (has_prefix ~prefix:"{\"id\":2," q2);
      Tu.check_bool "ids increase within a batch" true (has_prefix ~prefix:"{\"id\":3," q3)
  | lines -> Alcotest.failf "expected 4 replies, got %d" (List.length lines));
  Tu.check_int "admitted counter matches the last id" 3 (Core.Serve.queries_admitted srv);
  teardown ctx srv

(* Successful replies expose a compact simulated-cost object. *)
let test_reply_cost_object () =
  let ctx, srv = make_server () in
  let emit, emitted = collector () in
  ignore (Core.Serve.run_batch srv emit "select 3000");
  (match emitted () with
  | [ r ] ->
      List.iter
        (fun sub ->
          Tu.check_bool (Printf.sprintf "reply cost carries %s" sub) true (contains ~sub r))
        [
          "\"cost\":{";
          "\"ios\":";
          "\"reads\":";
          "\"writes\":";
          "\"rounds\":";
          "\"comparisons\":";
          "\"refine_ios\":";
          "\"answer_ios\":";
          "\"splits\":";
        ]
  | _ -> Alcotest.fail "expected 1 reply");
  teardown ctx srv

(* summary_json counts admitted queries by kind, and the counters survive
   the state-file round trip (persisted format v2). *)
let test_by_kind_counters () =
  let state = Filename.temp_file "serve_state" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove state with Sys_error _ -> ())
    (fun () ->
      let ctx1, srv1 = make_server ~checkpoint_every:2 ~state_path:state () in
      let emit, emitted = collector () in
      List.iter
        (fun line -> ignore (Core.Serve.run_batch srv1 emit line))
        [ "select 3000"; "select 17"; "quantile 0.5"; "range 40 45"; "stats" ];
      let stats_line = List.hd (List.rev (emitted ())) in
      Tu.check_bool "summary counts selects" true
        (contains ~sub:"\"by_kind\":{\"select\":2,\"quantile\":1,\"range\":1}" stats_line);
      Tu.check_bool "summary carries a wall object" true (contains ~sub:"\"wall\":{" stats_line);
      Core.Serve.shutdown_checkpoint srv1;
      let ctx2, srv2 = make_server ~state_path:state ~restore:true () in
      Tu.check_bool "restored" true (Core.Serve.restored srv2);
      Tu.check_int "restored next id resumes after the persisted count" 4
        (Core.Serve.queries_admitted srv2);
      let e2, got2 = collector () in
      ignore (Core.Serve.run_batch srv2 e2 "select 17");
      Tu.check_bool "restored ids continue monotonically" true
        (has_prefix ~prefix:"{\"id\":5," (List.hd (got2 ())));
      let e3, got3 = collector () in
      ignore (Core.Serve.run_batch srv2 e3 "stats");
      Tu.check_bool "by-kind counters survive the process boundary" true
        (contains ~sub:"\"by_kind\":{\"select\":3,\"quantile\":1,\"range\":1}"
           (List.hd (got3 ())));
      teardown ctx1 srv1;
      teardown ctx2 srv2)

(* serve_channels: quit stops with [false], should_stop preempts reads. *)
let test_serve_channels_stop () =
  let ctx, srv = make_server () in
  let drive ~should_stop script =
    let rd, wr = Unix.pipe () in
    let ocw = Unix.out_channel_of_descr wr in
    output_string ocw script;
    close_out ocw;
    let ic = Unix.in_channel_of_descr rd in
    let out = open_out Filename.null in
    Fun.protect
      ~finally:(fun () ->
        close_in ic;
        close_out out)
      (fun () -> Core.Serve.serve_channels ~should_stop srv ic out)
  in
  Tu.check_bool "quit ends the client with stop" false
    (drive ~should_stop:(fun () -> false) "select 17\nquit\n");
  Tu.check_bool "EOF keeps the server accepting" true
    (drive ~should_stop:(fun () -> false) "select 18\n");
  Tu.check_bool "should_stop preempts before reading" false
    (drive ~should_stop:(fun () -> true) "select 19\n");
  teardown ctx srv

let suite =
  [
    Alcotest.test_case "window error reply" `Quick test_window_error_reply;
    Alcotest.test_case "parse validation" `Quick test_parse_validation;
    Alcotest.test_case "malformed flood" `Quick test_malformed_flood;
    Alcotest.test_case "fault reply determinism" `Quick test_fault_reply_determinism;
    Alcotest.test_case "budget keeps refinement" `Quick test_budget_keeps_refinement;
    Alcotest.test_case "crash halts loop" `Quick test_crash_halts_loop;
    Alcotest.test_case "query ids monotone" `Quick test_query_ids_monotone;
    Alcotest.test_case "reply cost object" `Quick test_reply_cost_object;
    Alcotest.test_case "by-kind counters" `Quick test_by_kind_counters;
    Alcotest.test_case "state file round trip" `Quick test_state_file_round_trip;
    Alcotest.test_case "state file mismatch" `Quick test_state_file_mismatch;
    Alcotest.test_case "serve_channels stop" `Quick test_serve_channels_stop;
  ]
