(* Golden I/O-cost generator.

   Replays every Theorem-5/6 algorithm plus multi-selection across a small
   deterministic parameter grid and prints one line of exact costs per run.
   The committed [costs.expected] is diffed against this output on every
   `dune runtest`: any change to an algorithm's I/O cost — regression or
   improvement — shows up as a test failure and must be re-blessed with
   `make goldens` (i.e. `dune build @golden --auto-promote`). *)

let seed = 2014
let icmp = Int.compare

type run = { d : Em.Stats.delta; mem_peak : int; seeks : int }

let measure ~mem ~block kind ~n f =
  let trace = Em.Trace.create () in
  let seek_sink, seeks =
    Em.Trace.counter (fun e -> e.Em.Trace.locality = Em.Trace.Random)
  in
  Em.Trace.add_sink trace seek_sink;
  (* Pinned to the sim backend and a single disk: golden costs document the
     counted model and must be immune to EM_BACKEND (mem_peak would include
     pool pages) and EM_DISKS (rounds would compress and prefetch would move
     mem_peak).  At D = 1 rounds provably equals reads + writes. *)
  let ctx : int Em.Ctx.t =
    Em.Ctx.create ~trace ~backend:Em.Backend.Sim ~disks:1
      (Em.Params.create ~mem ~block)
  in
  let v = Core.Workload.vec ctx kind ~seed ~n in
  let (), d = Em.Ctx.measured ctx (fun () -> f ctx v) in
  { d; mem_peak = ctx.Em.Ctx.stats.Em.Stats.mem_peak; seeks = seeks () }

let print_run label r =
  Printf.printf "%s -> reads=%d writes=%d comps=%d mem_peak=%d seeks=%d rounds=%d\n" label
    r.d.Em.Stats.d_reads r.d.Em.Stats.d_writes r.d.Em.Stats.d_comparisons r.mem_peak r.seeks
    r.d.Em.Stats.d_rounds

let machines = [ (256, 16); (1024, 32) ]
let kinds = [ Core.Workload.Pi_hard; Core.Workload.Random_perm ]

let n = 4096

let specs =
  [
    (* right-grounded, left-grounded, two-sided *)
    { Core.Problem.n; k = 16; a = 32; b = n };
    { Core.Problem.n; k = 16; a = 0; b = 512 };
    { Core.Problem.n; k = 8; a = 64; b = 1024 };
  ]

let ranks = [| 1; 100; 2048; 4095 |]

let label algo kind ~mem ~block extra =
  Printf.sprintf "%-12s wl=%-11s M=%-4d B=%-2d n=%d %s" algo
    (Core.Workload.kind_name kind) mem block n extra

let spec_label (s : Core.Problem.spec) =
  Printf.sprintf "k=%-2d a=%-4d b=%-4d" s.Core.Problem.k s.Core.Problem.a s.Core.Problem.b

let () =
  print_string "# Golden exact I/O costs. Re-bless with `make goldens` after intentional changes.\n";
  Printf.printf "# seed=%d\n" seed;
  List.iter
    (fun (mem, block) ->
      List.iter
        (fun kind ->
          List.iter
            (fun spec ->
              let cmp_ctx f ctx = f (Em.Ctx.counted ctx icmp) in
              print_run
                (label "splitters" kind ~mem ~block (spec_label spec))
                (measure ~mem ~block kind ~n (fun ctx v ->
                     cmp_ctx (fun cmp -> ignore (Core.Splitters.solve cmp v spec)) ctx));
              print_run
                (label "partitioning" kind ~mem ~block (spec_label spec))
                (measure ~mem ~block kind ~n (fun ctx v ->
                     cmp_ctx (fun cmp -> ignore (Core.Partitioning.solve cmp v spec)) ctx)))
            specs;
          print_run
            (label "multiselect" kind ~mem ~block
               (Printf.sprintf "ranks=%s"
                  (String.concat ","
                     (Array.to_list (Array.map string_of_int ranks)))))
            (measure ~mem ~block kind ~n (fun ctx v ->
                 let cmp = Em.Ctx.counted ctx icmp in
                 ignore (Core.Multi_select.select cmp v ~ranks))))
        kinds)
    machines
