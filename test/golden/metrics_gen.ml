(* Golden exporter-output generator.

   Builds one deterministic registry — machine counters from a fixed scan,
   a synthetic histogram, a labelled counter, and one Table-1 bound gauge
   triple with a pinned measured I/O count (nothing wall-clock-derived) —
   and prints it in the format named by argv: [prom] or [json].  The
   committed metrics.prom.expected / metrics.json.expected pin the exact
   exposition formats; re-bless with `make goldens` after intentional
   exporter changes. *)

let () =
  let reg = Em.Metrics.create () in
  (* Pinned to the sim backend and a single disk: the goldens document the
     counted-cost model, which neither EM_BACKEND (a cached backend would
     shift mem_peak by its resident pages) nor EM_DISKS (rounds gauges would
     appear) may perturb. *)
  let ctx : int Em.Ctx.t =
    Em.Ctx.create ~backend:Em.Backend.Sim ~disks:1
      (Em.Params.create ~mem:256 ~block:16)
  in
  let v = Em.Vec.of_array ctx (Array.init 160 (fun i -> i)) in
  Em.Phase.with_label ctx "scan" (fun () -> Emalg.Scan.iter (fun _ -> ()) v);
  Em.Phase.with_label ctx "copy" (fun () -> ignore (Emalg.Scan.copy v));
  Em.Metrics.publish_stats reg ctx.Em.Ctx.stats;
  let h = Em.Metrics.histogram reg ~help:"Synthetic run lengths" "run_length" in
  List.iter (Em.Metrics.observe h) [ 1.; 2.; 3.; 5.; 8.; 13.; 21. ];
  let c =
    Em.Metrics.counter reg ~help:"Refinement rounds"
      ~labels:[ ("algo", "multiselect") ]
      "rounds_total"
  in
  Em.Metrics.incr ~by:4 c;
  let p = Em.Params.create ~mem:1024 ~block:16 in
  let row = Core.Bound_track.Splitters_right in
  let spec = Core.Bound_track.default_spec row ~n:4_096 in
  ignore (Core.Bound_track.publish_values reg p row spec ~measured_ios:2_048);
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "prom" with
  | "json" -> print_string (Em.Metrics.to_json reg)
  | _ -> print_string (Em.Metrics.to_prometheus reg)
