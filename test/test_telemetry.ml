(* Telemetry emitter (Em.Telemetry): the bundled JSON reader, the frame
   cadence policy under an injected clock, the frame grammar's
   cost/wall compartment split, and the `em_repro top` summariser. *)

module T = Em.Telemetry
module J = Em.Telemetry.Json

(* ---- the minimal JSON reader ---- *)

let parse_ok s =
  match J.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "%S should parse, got: %s" s msg

let parse_err s =
  match J.parse s with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%S should be rejected" s

let test_json_values () =
  Tu.check_bool "null" true (parse_ok "null" = J.Null);
  Tu.check_bool "true" true (parse_ok "true" = J.Bool true);
  Tu.check_bool "false" true (parse_ok " false " = J.Bool false);
  Tu.check_bool "int" true (parse_ok "42" = J.Num 42.);
  Tu.check_bool "negative float" true (parse_ok "-2.5e2" = J.Num (-250.));
  Tu.check_bool "string" true (parse_ok "\"hi\"" = J.Str "hi");
  Tu.check_bool "escapes" true
    (parse_ok "\"a\\n\\t\\\\\\\"b\\/\"" = J.Str "a\n\t\\\"b/");
  Tu.check_bool "unicode escape decodes to UTF-8" true
    (parse_ok "\"\\u00e9\"" = J.Str "\xc3\xa9");
  Tu.check_bool "empty list" true (parse_ok "[]" = J.List []);
  Tu.check_bool "empty object" true (parse_ok "{}" = J.Obj []);
  Tu.check_bool "nested" true
    (parse_ok "{\"a\":[1,2],\"b\":{\"c\":null}}"
    = J.Obj
        [ ("a", J.List [ J.Num 1.; J.Num 2. ]); ("b", J.Obj [ ("c", J.Null) ]) ])

let test_json_rejects () =
  List.iter parse_err
    [
      "";
      "{";
      "[1,2";
      "{\"a\":}";
      "{\"a\" 1}";
      "\"unterminated";
      "\"bad \\q escape\"";
      "tru";
      "1 2";
      "nan";
      "{\"a\":1,}";
    ]

let test_json_lookups () =
  let v = parse_ok "{\"cost\":{\"ios\":7,\"name\":\"x\"},\"seq\":2}" in
  Tu.check_bool "path hits nested number" true
    (Option.bind (J.path [ "cost"; "ios" ] v) J.num = Some 7.);
  Tu.check_bool "member + str" true
    (Option.bind (J.path [ "cost"; "name" ] v) J.str = Some "x");
  Tu.check_bool "missing member is None" true (J.member "nope" v = None);
  Tu.check_bool "path through a non-object is None" true
    (J.path [ "seq"; "deep" ] v = None);
  Tu.check_bool "num on a string is None" true
    (Option.bind (J.member "cost" v) J.num = None)

(* ---- cadence policy ---- *)

(* An emitter writing into a buffer, driven by a fake clock. *)
let fake_emitter ?every_queries ?every_seconds () =
  let clock = ref 0. in
  let lines = ref [] in
  let t =
    T.create ?every_queries ?every_seconds
      ~now:(fun () -> !clock)
      (T.fn_sink (fun l -> lines := l :: !lines))
  in
  (t, clock, fun () -> List.rev !lines)

let wall () = "{}"

let test_cadence_every_queries () =
  let t, _, lines = fake_emitter ~every_queries:3 () in
  for q = 1 to 10 do
    T.tick t ~queries:q ~cost:"{}" ~wall
  done;
  Tu.check_int "every 3rd query emits" 3 (List.length (lines ()));
  Tu.check_int "frames counter agrees" 3 (T.frames t);
  Tu.check_bool "frames carry the due query counts" true
    (List.for_all2
       (fun line q -> Tu.contains ~sub:(Printf.sprintf "\"queries\":%d" q) line)
       (lines ()) [ 3; 6; 9 ])

let test_cadence_every_seconds () =
  let t, clock, lines = fake_emitter ~every_seconds:10. () in
  T.tick t ~queries:1 ~cost:"{}" ~wall;
  Tu.check_int "too early: nothing" 0 (List.length (lines ()));
  clock := 10.;
  T.tick t ~queries:2 ~cost:"{}" ~wall;
  Tu.check_int "interval elapsed: frame" 1 (List.length (lines ()));
  clock := 15.;
  T.tick t ~queries:3 ~cost:"{}" ~wall;
  Tu.check_int "interval restarts at emission" 1 (List.length (lines ()));
  clock := 20.;
  T.tick t ~queries:4 ~cost:"{}" ~wall;
  Tu.check_int "next interval fires" 2 (List.length (lines ()))

let test_cadence_either () =
  (* Both cadences set: whichever comes first wins. *)
  let t, clock, lines = fake_emitter ~every_queries:100 ~every_seconds:5. () in
  clock := 6.;
  T.tick t ~queries:1 ~cost:"{}" ~wall;
  Tu.check_int "time cadence fires before the query one" 1 (List.length (lines ()));
  T.tick t ~queries:101 ~cost:"{}" ~wall;
  Tu.check_int "query cadence fires on its own" 2 (List.length (lines ()))

let test_cadence_default_and_validation () =
  let t, _, lines = fake_emitter () in
  T.tick t ~queries:1 ~cost:"{}" ~wall;
  T.tick t ~queries:2 ~cost:"{}" ~wall;
  Tu.check_int "no cadence flags -> a frame per query" 2 (List.length (lines ()));
  (match T.create ~every_queries:0 (T.fn_sink ignore) with
  | _ -> Alcotest.fail "every_queries 0 must raise"
  | exception Invalid_argument _ -> ());
  match T.create ~every_seconds:0. (T.fn_sink ignore) with
  | _ -> Alcotest.fail "every_seconds 0 must raise"
  | exception Invalid_argument _ -> ()

(* ---- frame grammar and close semantics ---- *)

let test_frame_shape () =
  let t, clock, lines = fake_emitter ~every_queries:1 () in
  clock := 1.5;
  let wall_calls = ref 0 in
  let wall () =
    incr wall_calls;
    "{\"ts_ms\":1500}"
  in
  T.tick t ~queries:1 ~cost:"{\"ios\":42}" ~wall;
  T.alert t ~queries:1 ~cost:"{\"ios\":42}" ~wall;
  T.final t ~queries:1 ~cost:"{\"ios\":42}" ~wall;
  (match lines () with
  | [ tick_l; alert_l; final_l ] ->
      Alcotest.(check string) "tick frame is canonical"
        "{\"frame\":\"telemetry\",\"seq\":1,\"queries\":1,\"cost\":{\"ios\":42},\"wall\":{\"ts_ms\":1500}}"
        tick_l;
      Tu.check_bool "alert frame tagged" true
        (Tu.contains ~sub:"\"frame\":\"alert\",\"seq\":2" alert_l);
      Tu.check_bool "final frame tagged" true
        (Tu.contains ~sub:"\"frame\":\"final\",\"seq\":3" final_l);
      (* Each emitted frame parses back with the bundled reader. *)
      List.iter (fun l -> ignore (parse_ok l)) [ tick_l; alert_l; final_l ]
  | l -> Alcotest.failf "expected 3 frames, got %d" (List.length l));
  Tu.check_int "wall thunk evaluated once per emitted frame" 3 !wall_calls;
  T.close t;
  T.close t;
  T.tick t ~queries:9 ~cost:"{}" ~wall;
  T.alert t ~queries:9 ~cost:"{}" ~wall;
  Tu.check_int "frames after close are dropped" 3 (List.length (lines ()))

let test_wall_thunk_lazy () =
  let t, _, _ = fake_emitter ~every_queries:5 () in
  let wall () = Alcotest.fail "wall thunk must not run for a frame not due" in
  T.tick t ~queries:1 ~cost:"{}" ~wall;
  T.tick t ~queries:4 ~cost:"{}" ~wall

(* ---- summarize (the `em_repro top` renderer) ---- *)

let frame_line =
  "{\"frame\":\"telemetry\",\"seq\":3,\"queries\":10,\"cost\":{\"ios\":120,\"cache_hits\":30,\"cache_misses\":10,\"leaves\":8,\"sorted_leaves\":5,\"splits\":7,\"drift_ratio\":3.2},\"wall\":{\"ts_ms\":2000,\"qps\":4.00,\"p50_ms\":0.125,\"p99_ms\":0.500}}"

let test_summarize () =
  (match T.summarize frame_line with
  | Error msg -> Alcotest.failf "frame should summarize, got: %s" msg
  | Ok block ->
      List.iter
        (fun sub ->
          Tu.check_bool (Printf.sprintf "block shows %S" sub) true
            (Tu.contains ~sub block))
        [
          "frame       #3 (telemetry)";
          "queries     10";
          "qps         4.00";
          "latency     p50 0.125 ms, p99 0.500 ms";
          "I/Os        120 total, 12.0 per query";
          "cache       75% hit rate (30 hits, 10 misses)";
          "refinement  5/8 leaves sorted, 7 splits";
          "drift       running ratio 3.2000";
        ];
      Tu.check_bool "clean frame has no alert banner" true
        (not (Tu.contains ~sub:"BOUND ALERT" block)));
  (* Interval qps: 5 more queries over 1 s beats the 4.0 session average. *)
  let prev =
    "{\"frame\":\"telemetry\",\"seq\":2,\"queries\":5,\"cost\":{},\"wall\":{\"ts_ms\":1000}}"
  in
  (match T.summarize ~prev frame_line with
  | Ok block -> Tu.check_bool "interval qps from prev frame" true
      (Tu.contains ~sub:"qps         5.00" block)
  | Error msg -> Alcotest.failf "unexpected error: %s" msg);
  (* An alert frame renders the banner. *)
  let alert_line =
    "{\"frame\":\"alert\",\"seq\":4,\"queries\":11,\"cost\":{\"drift_ratio\":7.5},\"wall\":{}}"
  in
  (match T.summarize alert_line with
  | Ok block -> Tu.check_bool "alert banner" true (Tu.contains ~sub:"** BOUND ALERT **" block)
  | Error msg -> Alcotest.failf "unexpected error: %s" msg);
  (match T.summarize "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not summarize");
  match T.summarize "{\"seq\":1}" with
  | Error msg -> Tu.check_bool "non-frame diagnostic" true (Tu.contains ~sub:"frame" msg)
  | Ok _ -> Alcotest.fail "frameless object must not summarize"

(* ---- file sink round trip ---- *)

let test_file_sink_round_trip () =
  let path = Filename.temp_file "telemetry" ".ndjson" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t =
        T.create ~every_queries:1 ~now:(fun () -> 0.) (T.file_sink path)
      in
      T.tick t ~queries:1 ~cost:"{\"ios\":1}" ~wall:(fun () -> "{}");
      T.final t ~queries:1 ~cost:"{\"ios\":1}" ~wall:(fun () -> "{}");
      T.close t;
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      Tu.check_int "one line per frame" 2 (List.length lines);
      List.iter (fun l -> ignore (parse_ok l)) lines)

let suite =
  [
    Alcotest.test_case "json reader: values" `Quick test_json_values;
    Alcotest.test_case "json reader: rejects" `Quick test_json_rejects;
    Alcotest.test_case "json reader: lookups" `Quick test_json_lookups;
    Alcotest.test_case "cadence: every N queries" `Quick test_cadence_every_queries;
    Alcotest.test_case "cadence: every T seconds" `Quick test_cadence_every_seconds;
    Alcotest.test_case "cadence: either fires" `Quick test_cadence_either;
    Alcotest.test_case "cadence: default + validation" `Quick
      test_cadence_default_and_validation;
    Alcotest.test_case "frame grammar + close" `Quick test_frame_shape;
    Alcotest.test_case "wall thunk is lazy" `Quick test_wall_thunk_lazy;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "file sink round trip" `Quick test_file_sink_round_trip;
  ]
