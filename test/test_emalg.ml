(* Tests for the classic EM algorithm substrate: scans, sorting, merging,
   selection, distribution, sample splitters. *)

let sorted = Tu.sorted_copy

let test_scan_fold_iter () =
  let ctx = Tu.ctx () in
  let a = Array.init 100 (fun i -> i) in
  let v = Tu.int_vec ctx a in
  Tu.check_int "fold sum" 4950 (Emalg.Scan.fold ( + ) 0 v);
  let count = ref 0 in
  Emalg.Scan.iter (fun _ -> incr count) v;
  Tu.check_int "iter count" 100 !count;
  Tu.check_no_leaks ~live:(Em.Vec.num_blocks v) ctx

let test_scan_copy_cost () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let v = Tu.int_vec ctx (Array.init 160 (fun i -> i)) in
  let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
  let c = Emalg.Scan.copy v in
  Tu.check_int "copy = 2N/B I/Os" 20 (Em.Stats.ios_since ctx.Em.Ctx.stats snap);
  Tu.check_int_array "copy contents" (Em.Vec.Oracle.to_array v) (Em.Vec.Oracle.to_array c)

let test_scan_filter_map () =
  let ctx = Tu.ctx () in
  let v = Tu.int_vec ctx (Array.init 50 (fun i -> i)) in
  let evens = Emalg.Scan.filter (fun x -> x mod 2 = 0) v in
  Tu.check_int_array "filter" (Array.init 25 (fun i -> 2 * i)) (Em.Vec.Oracle.to_array evens);
  let doubled = Emalg.Scan.map_into ctx (fun x -> x * 2) v in
  Tu.check_int_array "map" (Array.init 50 (fun i -> 2 * i)) (Em.Vec.Oracle.to_array doubled);
  let tagged = Emalg.Scan.mapi_into (Em.Ctx.linked ctx) (fun i x -> (x, i)) v in
  Tu.check_int "mapi length" 50 (Em.Vec.length tagged)

let test_scan_rank_of () =
  let ctx = Tu.ctx () in
  let v = Tu.int_vec ctx [| 5; 1; 9; 3; 7; 3 |] in
  Tu.check_int "rank of 3" 3 (Emalg.Scan.rank_of Tu.icmp v 3);
  Tu.check_int "rank of 0" 0 (Emalg.Scan.rank_of Tu.icmp v 0);
  Tu.check_int "rank of 9" 6 (Emalg.Scan.rank_of Tu.icmp v 9)

let test_scan_chunks () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  let v = Tu.int_vec ctx (Array.init 100 (fun i -> i)) in
  let sizes = ref [] in
  Emalg.Scan.chunks ~size:30 (fun c -> sizes := Array.length c :: !sizes) v;
  Alcotest.(check (list int)) "chunk sizes" [ 30; 30; 30; 10 ] (List.rev !sizes)

let test_mem_sort () =
  let a = Tu.random_ints ~seed:3 ~bound:50 200 in
  let b = Array.copy a in
  Emalg.Mem_sort.sort Tu.icmp b;
  Tu.check_bool "sorted" true (Emalg.Mem_sort.is_sorted Tu.icmp b);
  Tu.check_int_array "same multiset" (sorted a) b

let test_mem_sort_merge_into () =
  let xs = [| 1; 3; 5 |] and ys = [| 2; 3; 4; 9 |] in
  Tu.check_int_array "merge" [| 1; 2; 3; 3; 4; 5; 9 |]
    (Emalg.Mem_sort.merge_into Tu.icmp xs ys);
  Tu.check_int_array "merge empty left" ys (Emalg.Mem_sort.merge_into Tu.icmp [||] ys);
  Tu.check_int_array "merge empty right" xs (Emalg.Mem_sort.merge_into Tu.icmp xs [||])

let test_quantile_splitters_exact () =
  let a = Tu.random_perm ~seed:11 100 in
  let s = Emalg.Mem_sort.quantile_splitters Tu.icmp a ~k:4 in
  Tu.check_int_array "quartiles of 0..99" [| 24; 49; 74 |] s;
  let b = Tu.random_perm ~seed:12 10 in
  Tu.check_int_array "k=1 gives none" [||] (Emalg.Mem_sort.quantile_splitters Tu.icmp b ~k:1);
  let c = Tu.random_perm ~seed:13 10 in
  Tu.check_int_array "k=n gives all but max" [| 0; 1; 2; 3; 4; 5; 6; 7; 8 |]
    (Emalg.Mem_sort.quantile_splitters Tu.icmp c ~k:10)

let test_select_mem_exhaustive () =
  let a = Tu.random_perm ~seed:5 137 in
  for rank = 1 to 137 do
    let scratch = Array.copy a in
    Tu.check_int "rank element" (rank - 1)
      (Emalg.Select_mem.select Tu.icmp scratch ~rank)
  done

let test_select_mem_duplicates () =
  let a = Array.concat [ Array.make 40 7; Array.make 40 3; Array.make 40 11 ] in
  Tu.shuffle (Tu.rng 9) a;
  Tu.check_int "rank 1" 3 (Emalg.Select_mem.select Tu.icmp (Array.copy a) ~rank:1);
  Tu.check_int "rank 40" 3 (Emalg.Select_mem.select Tu.icmp (Array.copy a) ~rank:40);
  Tu.check_int "rank 41" 7 (Emalg.Select_mem.select Tu.icmp (Array.copy a) ~rank:41);
  Tu.check_int "rank 80" 7 (Emalg.Select_mem.select Tu.icmp (Array.copy a) ~rank:80);
  Tu.check_int "rank 120" 11 (Emalg.Select_mem.select Tu.icmp (Array.copy a) ~rank:120)

let test_select_mem_median () =
  Tu.check_int "median odd" 3 (Emalg.Select_mem.median Tu.icmp [| 5; 1; 3; 2; 4 |]);
  Tu.check_int "median even picks lower" 2 (Emalg.Select_mem.median Tu.icmp [| 4; 1; 3; 2 |]);
  Alcotest.check_raises "median empty" (Invalid_argument "Select_mem.median: empty array")
    (fun () -> ignore (Emalg.Select_mem.median Tu.icmp [||]))

let test_heap_sorts () =
  let h = Emalg.Heap.create ~cmp:Tu.icmp ~capacity:4 in
  let input = Tu.random_ints ~seed:21 ~bound:100 50 in
  Array.iter (Emalg.Heap.push h) input;
  Tu.check_int "size" 50 (Emalg.Heap.size h);
  let out = Array.init 50 (fun _ -> Emalg.Heap.pop h) in
  Tu.check_int_array "heap drains sorted" (sorted input) out;
  Tu.check_bool "empty" true (Emalg.Heap.is_empty h)

let test_merge_two_runs () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let r1 = Tu.int_vec ctx (Array.init 40 (fun i -> 2 * i)) in
  let r2 = Tu.int_vec ctx (Array.init 40 (fun i -> (2 * i) + 1)) in
  let merged = Emalg.Merge.merge Tu.icmp [ r1; r2 ] in
  Tu.check_int_array "interleave" (Array.init 80 (fun i -> i)) (Em.Vec.Oracle.to_array merged);
  Tu.check_no_leaks ~live:(Em.Vec.num_blocks r1 + Em.Vec.num_blocks r2 + Em.Vec.num_blocks merged) ctx

let test_merge_fanout_guard () =
  let ctx = Tu.ctx ~mem:64 ~block:16 () in
  (* max_fanout = (64-16)/18 = 2 *)
  Tu.check_int "max fanout" 2 (Emalg.Merge.max_fanout ctx);
  let mk i = Tu.int_vec ctx [| i |] in
  Alcotest.check_raises "too many runs"
    (Invalid_argument "Merge.merge: too many runs for the memory budget")
    (fun () -> ignore (Emalg.Merge.merge Tu.icmp [ mk 1; mk 2; mk 3 ]))

let test_external_sort_correct () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let a = Tu.random_ints ~seed:31 ~bound:10_000 5_000 in
  let v = Tu.int_vec ctx a in
  let s = Emalg.External_sort.sort Tu.icmp v in
  Tu.check_int_array "sorted output" (sorted a) (Em.Vec.Oracle.to_array s);
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use

let test_external_sort_io_bound () =
  (* N/B = 1024 blocks, fanout >= 14: two merge passes over runs of 224.
     Cost must be far below N/B * lg(N/B) and at least 2 * N/B. *)
  let ctx = Tu.ctx ~mem:4096 ~block:64 () in
  let n = 65_536 in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:41 n) in
  let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
  let s = Emalg.External_sort.sort Tu.icmp v in
  let ios = Em.Stats.ios_since ctx.Em.Ctx.stats snap in
  let nb = n / 64 in
  Tu.check_bool "at least one full read+write pass" true (ios >= 2 * nb);
  Tu.check_bool "at most 4 passes for 2-level merge" true (ios <= 8 * nb);
  Tu.check_bool "output sorted" true
    (Emalg.Mem_sort.is_sorted Tu.icmp (Em.Vec.Oracle.to_array s))

let test_external_sort_empty_and_tiny () =
  let ctx = Tu.ctx () in
  let empty = Emalg.External_sort.sort Tu.icmp (Tu.int_vec ctx [||]) in
  Tu.check_int "empty" 0 (Em.Vec.length empty);
  let one = Emalg.External_sort.sort Tu.icmp (Tu.int_vec ctx [| 42 |]) in
  Tu.check_int_array "singleton" [| 42 |] (Em.Vec.Oracle.to_array one)

let test_distribute_by_pivots () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let a = Tu.random_perm ~seed:51 100 in
  let v = Tu.int_vec ctx a in
  let buckets = Emalg.Distribute.by_pivots Tu.icmp ~pivots:[| 24; 49; 74 |] v in
  Tu.check_int "4 buckets" 4 (Array.length buckets);
  Array.iteri
    (fun i b ->
      Tu.check_int (Printf.sprintf "bucket %d size" i) 25 (Em.Vec.length b);
      Array.iter
        (fun e ->
          Tu.check_bool "element in range" true (e >= i * 25 && e < (i + 1) * 25))
        (Em.Vec.Oracle.to_array b))
    buckets

let test_distribute_pivot_boundary_semantics () =
  let ctx = Tu.ctx () in
  let v = Tu.int_vec ctx [| 1; 2; 3; 4; 5 |] in
  (* bucket 0 = (-inf, 3], bucket 1 = (3, +inf) *)
  let buckets = Emalg.Distribute.by_pivots Tu.icmp ~pivots:[| 3 |] v in
  Tu.check_int_array "left closed at pivot" [| 1; 2; 3 |] (Em.Vec.Oracle.to_array buckets.(0));
  Tu.check_int_array "right open" [| 4; 5 |] (Em.Vec.Oracle.to_array buckets.(1))

let test_distribute_unsorted_pivots_rejected () =
  let ctx = Tu.ctx () in
  let v = Tu.int_vec ctx [| 1 |] in
  Alcotest.check_raises "unsorted pivots"
    (Invalid_argument "Distribute.by_pivots: pivots are not sorted")
    (fun () -> ignore (Emalg.Distribute.by_pivots Tu.icmp ~pivots:[| 5; 2 |] v))

let test_distribute_deep () =
  let ctx = Tu.ctx ~mem:64 ~block:8 () in
  (* max_fanout = (64-8)/9 = 6; ask for 20 buckets to force hierarchy. *)
  let n = 400 in
  let a = Tu.random_perm ~seed:61 n in
  let v = Tu.int_vec ctx a in
  let pivots = Array.init 19 (fun i -> ((i + 1) * 20) - 1) in
  let buckets = Emalg.Distribute.by_pivots_deep Tu.icmp ~pivots ~owned:true v in
  Tu.check_int "20 buckets" 20 (Array.length buckets);
  Array.iteri
    (fun i b ->
      let contents = sorted (Em.Vec.Oracle.to_array b) in
      Tu.check_int_array (Printf.sprintf "bucket %d exact" i)
        (Array.init 20 (fun j -> (i * 20) + j))
        contents)
    buckets;
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use

let test_three_way () =
  let ctx = Tu.ctx () in
  let v = Tu.int_vec ctx [| 5; 3; 7; 3; 3; 9; 1 |] in
  let less, eq, greater = Emalg.Distribute.three_way Tu.icmp v ~pivot:3 in
  Tu.check_int_array "less" [| 1 |] (Em.Vec.Oracle.to_array less);
  Tu.check_int "equal count" 3 eq;
  Tu.check_int_array "greater" [| 5; 7; 9 |] (Em.Vec.Oracle.to_array greater)

let test_em_select_matches_oracle () =
  let ctx = Tu.ctx ~mem:128 ~block:8 () in
  let a = Tu.random_ints ~seed:71 ~bound:500 1_000 in
  let v = Tu.int_vec ctx a in
  let s = sorted a in
  List.iter
    (fun rank ->
      Tu.check_int
        (Printf.sprintf "rank %d" rank)
        s.(rank - 1)
        (Emalg.Em_select.select Tu.icmp v ~rank))
    [ 1; 2; 250; 500; 999; 1000 ];
  Tu.check_int "ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use

let test_em_select_linear_io () =
  let ctx = Tu.ctx ~mem:1024 ~block:32 () in
  let n = 32_768 in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:81 n) in
  let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
  ignore (Emalg.Em_select.select Tu.icmp v ~rank:(n / 3));
  let ios = Em.Stats.ios_since ctx.Em.Ctx.stats snap in
  let nb = n / 32 in
  Tu.check_bool
    (Printf.sprintf "linear I/O: %d ios vs %d blocks" ios nb)
    true
    (ios <= 14 * nb);
  Tu.check_int "no leaked intermediates" (Em.Vec.num_blocks v)
    (Em.Device.live_blocks ctx.Em.Ctx.dev)

let test_em_select_rank_guards () =
  let ctx = Tu.ctx () in
  let v = Tu.int_vec ctx [| 1; 2; 3 |] in
  Alcotest.check_raises "rank 0" (Invalid_argument "Em_select.select: rank out of range")
    (fun () -> ignore (Emalg.Em_select.select Tu.icmp v ~rank:0));
  Alcotest.check_raises "rank 4" (Invalid_argument "Em_select.select: rank out of range")
    (fun () -> ignore (Emalg.Em_select.select Tu.icmp v ~rank:4))

let max_gap splitters data =
  (* Largest bucket induced by sorted [splitters] on [data]. *)
  let s = sorted data in
  let n = Array.length s in
  let gaps = ref [] in
  let start = ref 0 in
  Array.iter
    (fun sp ->
      let pos = ref !start in
      while !pos < n && s.(!pos) <= sp do
        incr pos
      done;
      gaps := (!pos - !start) :: !gaps;
      start := !pos)
    splitters;
  gaps := (n - !start) :: !gaps;
  List.fold_left max 0 !gaps

let test_sample_splitters_small_exact () =
  (* base_size = M/2 - 2B = 96 here, so 80 elements stay in memory. *)
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let a = Tu.random_perm ~seed:91 80 in
  let v = Tu.int_vec ctx a in
  let s = Emalg.Sample_splitters.find Tu.icmp v ~k:4 in
  Tu.check_int_array "exact quartiles in base case" [| 19; 39; 59 |] s

let test_sample_splitters_gap_bound () =
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let n = 20_000 in
  let a = Tu.random_perm ~seed:101 n in
  let v = Tu.int_vec ctx a in
  List.iter
    (fun k ->
      let s = Emalg.Sample_splitters.find Tu.icmp v ~k in
      Tu.check_int "k-1 splitters" (k - 1) (Array.length s);
      let bound = Emalg.Sample_splitters.gap_bound ctx.Em.Ctx.params ~n ~k in
      let gap = max_gap s a in
      Tu.check_bool
        (Printf.sprintf "k=%d: max gap %d <= bound %d" k gap bound)
        true (gap <= bound))
    [ 2; 4; 8; 16 ]

let test_sample_splitters_linear_io () =
  let ctx = Tu.ctx ~mem:1024 ~block:32 () in
  let n = 32_768 in
  let v = Tu.int_vec ctx (Tu.random_perm ~seed:111 n) in
  let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
  ignore (Emalg.Sample_splitters.find Tu.icmp v ~k:8);
  let ios = Em.Stats.ios_since ctx.Em.Ctx.stats snap in
  let nb = n / 32 in
  (* One read pass + sample writes/reads, geometrically decreasing: < 2 N/B. *)
  Tu.check_bool (Printf.sprintf "%d ios vs %d blocks" ios nb) true (ios <= 2 * nb)

let test_sample_splitters_sorted_adversary () =
  (* Sorted and reverse-sorted inputs must also satisfy the bound. *)
  let ctx = Tu.ctx ~mem:256 ~block:16 () in
  let n = 10_000 in
  List.iter
    (fun (name, a) ->
      let v = Tu.int_vec ctx a in
      let s = Emalg.Sample_splitters.find Tu.icmp v ~k:8 in
      let bound = Emalg.Sample_splitters.gap_bound ctx.Em.Ctx.params ~n ~k:8 in
      let gap = max_gap s a in
      Tu.check_bool (Printf.sprintf "%s: gap %d <= %d" name gap bound) true (gap <= bound))
    [
      ("sorted", Array.init n (fun i -> i));
      ("reverse", Array.init n (fun i -> n - i));
    ]

let test_find_random_pivots () =
  let ctx = Tu.ctx ~mem:1024 ~block:32 () in
  let n = 20_000 and k = 8 in
  let a = Tu.random_perm ~seed:121 n in
  let v = Tu.int_vec ctx a in
  let rng_state = Tu.rng 99 in
  let rng bound = Tu.next_int rng_state bound in
  let snap = Em.Stats.snapshot ctx.Em.Ctx.stats in
  let s = Emalg.Sample_splitters.find_random ~rng Tu.icmp v ~k in
  let ios = Em.Stats.ios_since ctx.Em.Ctx.stats snap in
  Tu.check_int "k-1 splitters" (k - 1) (Array.length s);
  Tu.check_int "exactly one scan" (n / 32) ios;
  (* All splitters are input members and sorted. *)
  Tu.check_bool "sorted" true (Emalg.Mem_sort.is_sorted Tu.icmp s);
  Array.iter (fun x -> Tu.check_bool "member" true (x >= 0 && x < n)) s;
  (* Probabilistic quality: with oversampling 8 ln k, buckets should stay
     within ~4x of even on a random permutation (deterministic seed). *)
  Tu.check_bool "bucket quality" true (max_gap s a <= 4 * (n / k))

let test_find_random_small_input () =
  (* n below the reservoir size (64 here): exact quantiles, no randomness. *)
  let ctx = Tu.ctx ~mem:1024 ~block:32 () in
  let a = Tu.random_perm ~seed:122 60 in
  let v = Tu.int_vec ctx a in
  let rng_state = Tu.rng 5 in
  let rng bound = Tu.next_int rng_state bound in
  let s = Emalg.Sample_splitters.find_random ~rng Tu.icmp v ~k:4 in
  Tu.check_int_array "exact quartiles when the input fits" [| 14; 29; 44 |] s

let suite =
  [
    Alcotest.test_case "scan: fold/iter" `Quick test_scan_fold_iter;
    Alcotest.test_case "scan: copy cost" `Quick test_scan_copy_cost;
    Alcotest.test_case "scan: filter/map/mapi" `Quick test_scan_filter_map;
    Alcotest.test_case "scan: rank_of" `Quick test_scan_rank_of;
    Alcotest.test_case "scan: chunks" `Quick test_scan_chunks;
    Alcotest.test_case "mem_sort: sorts" `Quick test_mem_sort;
    Alcotest.test_case "mem_sort: merge_into" `Quick test_mem_sort_merge_into;
    Alcotest.test_case "mem_sort: quantile splitters" `Quick test_quantile_splitters_exact;
    Alcotest.test_case "select_mem: exhaustive ranks" `Quick test_select_mem_exhaustive;
    Alcotest.test_case "select_mem: duplicates" `Quick test_select_mem_duplicates;
    Alcotest.test_case "select_mem: median" `Quick test_select_mem_median;
    Alcotest.test_case "heap: drains sorted" `Quick test_heap_sorts;
    Alcotest.test_case "merge: two runs" `Quick test_merge_two_runs;
    Alcotest.test_case "merge: fanout guard" `Quick test_merge_fanout_guard;
    Alcotest.test_case "external_sort: correct" `Quick test_external_sort_correct;
    Alcotest.test_case "external_sort: I/O bound" `Quick test_external_sort_io_bound;
    Alcotest.test_case "external_sort: empty/tiny" `Quick test_external_sort_empty_and_tiny;
    Alcotest.test_case "distribute: by_pivots" `Quick test_distribute_by_pivots;
    Alcotest.test_case "distribute: boundary semantics" `Quick
      test_distribute_pivot_boundary_semantics;
    Alcotest.test_case "distribute: unsorted pivots" `Quick
      test_distribute_unsorted_pivots_rejected;
    Alcotest.test_case "distribute: hierarchical" `Quick test_distribute_deep;
    Alcotest.test_case "distribute: three_way" `Quick test_three_way;
    Alcotest.test_case "em_select: matches oracle" `Quick test_em_select_matches_oracle;
    Alcotest.test_case "em_select: linear I/O" `Quick test_em_select_linear_io;
    Alcotest.test_case "em_select: rank guards" `Quick test_em_select_rank_guards;
    Alcotest.test_case "sample_splitters: base exact" `Quick test_sample_splitters_small_exact;
    Alcotest.test_case "sample_splitters: gap bound" `Quick test_sample_splitters_gap_bound;
    Alcotest.test_case "sample_splitters: linear I/O" `Quick test_sample_splitters_linear_io;
    Alcotest.test_case "sample_splitters: sorted adversary" `Quick
      test_sample_splitters_sorted_adversary;
    Alcotest.test_case "sample_splitters: randomized pivots" `Quick
      test_find_random_pivots;
    Alcotest.test_case "sample_splitters: randomized small input" `Quick
      test_find_random_small_input;
  ]
