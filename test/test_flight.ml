(* The flight recorder (Em.Flight_recorder): bounded journal semantics,
   the post-mortem dump's trace join, and the serve-level acceptance
   criterion — a budget-aborted or faulted query leaves a self-contained
   post-mortem artifact holding that query's trace events. *)

module Fr = Em.Flight_recorder
module J = Em.Telemetry.Json

let mk_record ?(id = 1) ?(kind = "select") ?(query = "select 1") ?(ios = 3)
    ?(rounds = 3) ?(splits = 0) ?(outcome = "ok") ?(seq_lo = 0) ?(seq_hi = 0) () =
  { Fr.id; kind; query; ios; rounds; splits; wall_ns = 42; outcome; seq_lo; seq_hi }

let test_ring_eviction () =
  let r = Fr.create ~capacity:3 () in
  for i = 1 to 5 do
    Fr.record r (mk_record ~id:i ())
  done;
  Tu.check_int "all pushes counted" 5 (Fr.recorded r);
  Tu.check_int "only capacity retained" 3 (Fr.retained r);
  Alcotest.(check (list int)) "oldest evicted first" [ 3; 4; 5 ]
    (List.map (fun rec_ -> rec_.Fr.id) (Fr.records r));
  match Fr.create ~capacity:0 () with
  | _ -> Alcotest.fail "capacity 0 must raise"
  | exception Invalid_argument _ -> ()

let parse_dump s =
  match J.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "dump should be valid JSON, got: %s" msg

let test_dump_shape_and_trace_join () =
  let trace = Em.Trace.create ~ring_capacity:64 () in
  let emit () = Em.Trace.emit trace Em.Trace.Read ~block:7 ~phase:[] in
  let r = Fr.create ~capacity:2 () in
  (* Query 1 runs over trace seqs 0-2, then gets evicted; queries 2 and 3
     over 3-4 and 5-6 are retained, so the dump's trace slice must start
     at seq 3 — the oldest retained record's window. *)
  let span id =
    let lo = Em.Trace.total trace in
    emit ();
    emit ();
    if id = 1 then emit ();
    Fr.record r
      (mk_record ~id ~seq_lo:lo ~seq_hi:(Em.Trace.total trace)
         ~outcome:(if id = 3 then "budget_exceeded" else "ok") ())
  in
  List.iter span [ 1; 2; 3 ];
  let line = Fr.dump ~trace ~now:(fun () -> 123.) ~reason:"budget_exceeded" r in
  Tu.check_bool "dump is one line" true (not (String.contains line '\n'));
  Tu.check_int "dump counted" 1 (Fr.dumps r);
  let v = parse_dump line in
  let get keys = J.path ("postmortem" :: keys) v in
  Tu.check_bool "reason" true
    (Option.bind (get [ "reason" ]) J.str = Some "budget_exceeded");
  Tu.check_bool "recorded count" true (Option.bind (get [ "recorded" ]) J.num = Some 3.);
  Tu.check_bool "retained count" true (Option.bind (get [ "retained" ]) J.num = Some 2.);
  Tu.check_bool "wall confined to its object" true
    (Option.bind (get [ "wall"; "ts_ms" ]) J.num = Some 123_000.);
  Tu.check_bool "no metrics -> null" true (get [ "metrics" ] = Some J.Null);
  (match get [ "queries" ] with
  | Some (J.List qs) ->
      Tu.check_int "only retained records dumped" 2 (List.length qs);
      let ids = List.filter_map (fun q -> Option.bind (J.member "id" q) J.num) qs in
      Alcotest.(check (list (float 0.))) "retained ids" [ 2.; 3. ] ids;
      let outcomes =
        List.filter_map (fun q -> Option.bind (J.member "outcome" q) J.str) qs
      in
      Alcotest.(check (list string)) "outcomes" [ "ok"; "budget_exceeded" ] outcomes
  | _ -> Alcotest.fail "queries must be a list");
  match get [ "trace_events" ] with
  | Some (J.List evs) ->
      let seqs = List.filter_map (fun e -> Option.bind (J.member "seq" e) J.num) evs in
      Tu.check_int "slice covers exactly the retained windows" 4 (List.length seqs);
      Tu.check_bool "slice starts at the oldest retained record" true
        (List.for_all (fun s -> s >= 3.) seqs)
  | _ -> Alcotest.fail "trace_events must be a list"

let test_dump_metrics_snapshot () =
  let reg = Em.Metrics.create () in
  Em.Metrics.set (Em.Metrics.gauge reg "level") 2.5;
  let r = Fr.create () in
  Fr.record r (mk_record ());
  let v = parse_dump (Fr.dump ~metrics:reg ~now:(fun () -> 0.) ~reason:"shutdown" r) in
  match J.path [ "postmortem"; "metrics"; "metrics" ] v with
  | Some (J.List metrics) ->
      Tu.check_bool "registry snapshot embedded" true
        (List.exists
           (fun m ->
             match Option.bind (J.member "name" m) J.str with
             | Some name -> Tu.contains ~sub:"level" name
             | None -> false)
           metrics)
  | _ -> Alcotest.fail "metrics must embed the registry snapshot"

let test_dump_to_file () =
  let path = Filename.temp_file "flight" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let r = Fr.create () in
      Fr.record r (mk_record ());
      Fr.dump_to_file ~now:(fun () -> 0.) ~reason:"kill" r ~path;
      let contents = In_channel.with_open_text path In_channel.input_all in
      Tu.check_bool "newline-terminated" true
        (String.length contents > 0 && contents.[String.length contents - 1] = '\n');
      ignore (parse_dump (String.trim contents)))

(* ---- serve-level acceptance: a budget abort leaves a post-mortem with
   that query's trace events ---- *)

let test_serve_budget_dump () =
  let dir = Filename.temp_file "flight_dir" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let n = 6_000 in
      let meta =
        {
          Core.Serve.m_n = n;
          m_mem = 1_024;
          m_block = 16;
          m_disks = 1;
          m_workload = "random-perm";
          m_seed = 5;
        }
      in
      let ctx : int Em.Ctx.t = Em.Ctx.create (Em.Params.create ~mem:1_024 ~block:16) in
      let v = Em.Vec.of_array ctx (Tu.random_perm ~seed:5 n) in
      let srv = Core.Serve.create ~io_budget:3 ~flight_dir:dir ~meta ctx v in
      ignore (Core.Serve.run_batch srv (fun _ -> ()) "select 3000");
      Tu.check_int "budget abort produced a dump" 1 (Core.Serve.flight_dumps srv);
      let path = Filename.concat dir "postmortem-001.json" in
      Tu.check_bool "artifact exists" true (Sys.file_exists path);
      let v' =
        parse_dump (String.trim (In_channel.with_open_text path In_channel.input_all))
      in
      let get keys = J.path ("postmortem" :: keys) v' in
      Tu.check_bool "reason is the typed code" true
        (Option.bind (get [ "reason" ]) J.str = Some "budget_exceeded");
      (* The aborted query's record, with its trace window... *)
      let q =
        match get [ "queries" ] with
        | Some (J.List [ q ]) -> q
        | _ -> Alcotest.fail "expected exactly the aborted query's record"
      in
      Tu.check_bool "record carries the query id" true
        (Option.bind (J.member "id" q) J.num = Some 1.);
      Tu.check_bool "record carries the raw command" true
        (Option.bind (J.member "query" q) J.str = Some "select 3000");
      Tu.check_bool "record outcome is the typed code" true
        (Option.bind (J.member "outcome" q) J.str = Some "budget_exceeded");
      let lo = Option.bind (J.path [ "trace"; "lo" ] q) J.num in
      let hi = Option.bind (J.path [ "trace"; "hi" ] q) J.num in
      let lo, hi =
        match (lo, hi) with
        | Some lo, Some hi -> (lo, hi)
        | _ -> Alcotest.fail "record must carry its trace window"
      in
      Tu.check_bool "the aborted query emitted trace events" true (hi > lo);
      (* ...and the dump's trace slice actually contains them. *)
      (match get [ "trace_events" ] with
      | Some (J.List evs) ->
          let seqs =
            List.filter_map (fun e -> Option.bind (J.member "seq" e) J.num) evs
          in
          Tu.check_bool "dump holds the query's trace events" true
            (List.exists (fun s -> s >= lo && s < hi) seqs)
      | _ -> Alcotest.fail "trace_events must be a list");
      (* Metrics snapshot rides along, self-contained. *)
      Tu.check_bool "metrics snapshot embedded" true
        (match get [ "metrics" ] with Some (J.Obj _) -> true | _ -> false);
      Core.Serve.close srv;
      Em.Ctx.close ctx)

let suite =
  [
    Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
    Alcotest.test_case "dump shape + trace join" `Quick test_dump_shape_and_trace_join;
    Alcotest.test_case "dump metrics snapshot" `Quick test_dump_metrics_snapshot;
    Alcotest.test_case "dump_to_file" `Quick test_dump_to_file;
    Alcotest.test_case "serve budget abort leaves a post-mortem" `Quick
      test_serve_budget_dump;
  ]
