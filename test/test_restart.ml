(* Crash-restart harness: restartable external sort and multi-selection
   resume from checkpoint boundaries, produce oracle-identical output, and
   stay within the k-crash I/O bound. *)

let mem_ok what (ctx : _ Em.Ctx.t) =
  Tu.check_bool what true (ctx.Em.Ctx.stats.Em.Stats.mem_peak <= ctx.Em.Ctx.params.Em.Params.mem)

(* Run the restartable sort on a fresh armed machine under [plan]; return
   (outcome, sorted-array-or-None, total ios, ctx). *)
let run_sort ?plan data =
  let ctx = Tu.ctx () in
  Em.Ctx.arm ctx;
  (match plan with Some p -> Em.Ctx.inject ctx p | None -> ());
  let v = Tu.int_vec ctx data in
  let out = Emalg.Restart.sort Tu.icmp v in
  let sorted =
    match out.Emalg.Restart.result with
    | Ok sv ->
        let a = Em.Vec.Oracle.to_array sv in
        Em.Vec.free sv;
        Some a
    | Error _ -> None
  in
  Em.Vec.free v;
  (out, sorted, Em.Stats.ios ctx.Em.Ctx.stats, ctx)

let test_sort_crash_free () =
  let data = Tu.random_ints ~seed:11 ~bound:10_000 600 in
  let out, sorted, _, ctx = run_sort data in
  (match sorted with
  | None -> Alcotest.fail "crash-free sort must succeed"
  | Some a -> Tu.check_int_array "sorted output" (Tu.sorted_copy data) a);
  Tu.check_int "no restarts" 0 out.Emalg.Restart.restarts;
  Tu.check_bool "checkpointed at step boundaries" true (out.Emalg.Restart.saves > 1);
  Tu.check_int "no resumes" 0 out.Emalg.Restart.loads;
  mem_ok "mem within M" ctx;
  Tu.check_no_leaks ctx

let test_sort_survives_crashes () =
  let data = Tu.random_ints ~seed:12 ~bound:10_000 600 in
  let _, _, crash_free_ios, _ = run_sort data in
  (* Crash three times mid-computation, spread across the run. *)
  let plan =
    Em.Fault.crash_at
      [ crash_free_ios / 4; crash_free_ios / 2; (3 * crash_free_ios) / 4 ]
  in
  let out, sorted, _, ctx = run_sort ~plan data in
  (match sorted with
  | None -> Alcotest.fail "sort must survive crashes"
  | Some a -> Tu.check_int_array "sorted output after crashes" (Tu.sorted_copy data) a);
  Tu.check_int "three restarts" 3 out.Emalg.Restart.restarts;
  Tu.check_int "one resume per restart" 3 out.Emalg.Restart.loads;
  mem_ok "mem within M even through recovery" ctx;
  (* Crashed steps may orphan disk blocks (acceptable garbage); the memory
     ledger must still drain. *)
  Tu.check_no_leaks ~live:(-1) ctx

let test_sort_crash_cost_bound () =
  let data = Tu.random_ints ~seed:13 ~bound:10_000 600 in
  let _, _, crash_free_ios, _ = run_sort data in
  (* Property: for k crashes, total I/O <= crash-free I/O (which already
     includes checkpoint saves) + k * (one step's I/O) + resume reads.
     Exercise many crash schedules. *)
  List.iter
    (fun seed ->
      let rng = Em.Fault.Rng.create seed in
      let k = 1 + Em.Fault.Rng.int rng 4 in
      let schedule =
        List.init k (fun _ -> 1 + Em.Fault.Rng.int rng crash_free_ios)
      in
      let out, sorted, total_ios, _ = run_sort ~plan:(Em.Fault.crash_at schedule) data in
      (match sorted with
      | None -> Alcotest.fail "sort must survive crash schedule"
      | Some a -> Tu.check_int_array "oracle-identical" (Tu.sorted_copy data) a);
      let restarts = out.Emalg.Restart.restarts in
      Tu.check_bool "at least one crash fired" true (restarts >= 1);
      let bound =
        crash_free_ios
        + (restarts * out.Emalg.Restart.max_step_ios)
        + out.Emalg.Restart.load_ios
      in
      if total_ios > bound then
        Alcotest.failf "seed %d: %d ios exceeds k-crash bound %d (k = %d)" seed
          total_ios bound restarts)
    [ 101; 102; 103; 104; 105; 106; 107; 108 ]

let test_sort_gives_up_past_max_restarts () =
  let data = Tu.random_ints ~seed:14 ~bound:1_000 300 in
  let ctx = Tu.ctx () in
  Em.Ctx.arm ctx;
  (* Crash every 10 I/Os forever: cheaper than any single step, so the
     computation can never make progress. *)
  Em.Ctx.inject ctx (Em.Fault.every_nth ~n:10 Em.Fault.Crash);
  let v = Tu.int_vec ctx data in
  let out = Emalg.Restart.sort ~max_restarts:2 Tu.icmp v in
  (match out.Emalg.Restart.result with
  | Ok _ -> Alcotest.fail "expected to give up"
  | Error (Em.Em_error.Crashed _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Em.Em_error.to_string e));
  Tu.check_int "stopped at the cap" 2 out.Emalg.Restart.restarts

let run_select ?plan data ranks =
  let ctx = Tu.ctx () in
  Em.Ctx.arm ctx;
  (match plan with Some p -> Em.Ctx.inject ctx p | None -> ());
  let v = Tu.int_vec ctx data in
  let out = Core.Restartable.select Tu.icmp v ~ranks in
  (out, Em.Stats.ios ctx.Em.Ctx.stats, ctx, v)

let test_select_crash_free () =
  let data = Tu.random_ints ~seed:21 ~bound:100_000 900 in
  let ranks = Array.init 40 (fun i -> (i * 22) + 5) in
  let out, _, ctx, v = run_select data ranks in
  (match out.Emalg.Restart.result with
  | Error e -> Alcotest.failf "crash-free select failed: %s" (Em.Em_error.to_string e)
  | Ok selected ->
      Tu.check_ok "oracle-verified" (Core.Verify.multi_select Tu.icmp ~input:data ~ranks selected));
  Tu.check_int "no restarts" 0 out.Emalg.Restart.restarts;
  mem_ok "mem within M" ctx;
  Em.Vec.free v;
  Tu.check_no_leaks ctx

let test_select_survives_crashes () =
  let data = Tu.random_ints ~seed:22 ~bound:100_000 900 in
  let ranks = Array.init 40 (fun i -> (i * 22) + 3) in
  let _, crash_free_ios, _, _ = run_select data ranks in
  List.iter
    (fun seed ->
      let rng = Em.Fault.Rng.create seed in
      let k = 1 + Em.Fault.Rng.int rng 3 in
      let schedule =
        List.init k (fun _ -> 1 + Em.Fault.Rng.int rng crash_free_ios)
      in
      let out, total_ios, ctx, v = run_select ~plan:(Em.Fault.crash_at schedule) data ranks in
      (match out.Emalg.Restart.result with
      | Error e ->
          Alcotest.failf "seed %d: select failed: %s" seed (Em.Em_error.to_string e)
      | Ok selected ->
          Tu.check_ok "oracle-verified after crashes"
            (Core.Verify.multi_select Tu.icmp ~input:data ~ranks selected));
      let restarts = out.Emalg.Restart.restarts in
      Tu.check_bool "at least one crash fired" true (restarts >= 1);
      let bound =
        crash_free_ios
        + (restarts * out.Emalg.Restart.max_step_ios)
        + out.Emalg.Restart.load_ios
      in
      if total_ios > bound then
        Alcotest.failf "seed %d: %d ios exceeds k-crash bound %d (k = %d)" seed
          total_ios bound restarts;
      mem_ok "mem within M through recovery" ctx;
      Em.Vec.free v;
      Tu.check_no_leaks ~live:(-1) ctx)
    [ 201; 202; 203; 204; 205 ]

let test_select_matches_multi_select () =
  (* The restartable driver must give byte-identical results to the direct
     algorithm, crash or no crash. *)
  let data = Tu.random_ints ~seed:23 ~bound:50_000 700 in
  let ranks = Array.init 30 (fun i -> (i * 23) + 7) in
  let direct =
    let ctx = Tu.ctx () in
    let v = Tu.int_vec ctx data in
    Core.Multi_select.select Tu.icmp v ~ranks
  in
  let out, _, _, _ =
    run_select ~plan:(Em.Fault.crash_at [ 150; 600 ]) data ranks
  in
  match out.Emalg.Restart.result with
  | Error e -> Alcotest.failf "select failed: %s" (Em.Em_error.to_string e)
  | Ok selected -> Tu.check_int_array "identical to Multi_select" direct selected

let test_checkpoint_ios_metered () =
  let data = Tu.random_ints ~seed:24 ~bound:1_000 400 in
  let out, _, _, ctx = run_sort ~plan:(Em.Fault.crash_after_ios 60) data in
  (* Checkpoint saves and resume reads run under their own phase labels and
     are charged to the global meters. *)
  let report = Em.Phase.report ctx in
  Tu.check_bool "checkpoint phase metered" true (List.mem_assoc "checkpoint" report);
  Tu.check_bool "resume phase metered" true (List.mem_assoc "resume" report);
  Tu.check_bool "save ios counted" true (out.Emalg.Restart.save_ios > 0);
  Tu.check_bool "load ios counted" true (out.Emalg.Restart.load_ios > 0)

let suite =
  [
    Alcotest.test_case "restartable sort, crash-free" `Quick test_sort_crash_free;
    Alcotest.test_case "restartable sort survives crashes" `Quick test_sort_survives_crashes;
    Alcotest.test_case "sort k-crash I/O bound" `Quick test_sort_crash_cost_bound;
    Alcotest.test_case "sort gives up past max_restarts" `Quick
      test_sort_gives_up_past_max_restarts;
    Alcotest.test_case "restartable select, crash-free" `Quick test_select_crash_free;
    Alcotest.test_case "restartable select survives crashes" `Quick
      test_select_survives_crashes;
    Alcotest.test_case "select matches Multi_select exactly" `Quick
      test_select_matches_multi_select;
    Alcotest.test_case "checkpoint/resume I/Os are metered" `Quick
      test_checkpoint_ios_metered;
  ]
