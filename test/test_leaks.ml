(* Resource-audit suite: after each major algorithm runs and its outputs are
   freed, the device must hold exactly the input's blocks again and the
   memory ledger must read zero.  Leaked intermediates on any code path
   (including deep recursions) fail here. *)

let audit name f =
  Alcotest.test_case name `Quick (fun () ->
      let ctx = Tu.ctx ~mem:1024 ~block:16 () in
      let n = 6_000 in
      let v = Tu.int_vec ctx (Tu.random_perm ~seed:17 n) in
      let baseline_blocks = Em.Device.live_blocks ctx.Em.Ctx.dev in
      f ctx v n;
      Tu.check_int "memory ledger drained" 0 ctx.Em.Ctx.stats.Em.Stats.mem_in_use;
      Tu.check_int "all intermediate blocks freed" baseline_blocks
        (Em.Device.live_blocks ctx.Em.Ctx.dev))

let suite =
  [
    audit "external sort" (fun _ctx v _n ->
        Em.Vec.free (Emalg.External_sort.sort Tu.icmp v));
    audit "em_select" (fun _ctx v n ->
        ignore (Emalg.Em_select.select Tu.icmp v ~rank:(n / 3)));
    audit "em_select split_at" (fun _ctx v n ->
        let low, high, _ = Emalg.Em_select.split_at Tu.icmp v ~rank:(n / 4) in
        Em.Vec.free low;
        Em.Vec.free high);
    audit "sample splitters" (fun _ctx v _n ->
        ignore (Emalg.Sample_splitters.find Tu.icmp v ~k:8));
    audit "sample splitters (tagging)" (fun _ctx v _n ->
        ignore (Emalg.Sample_splitters.find_tagging Tu.icmp v ~k:8));
    audit "split_step tagging" (fun _ctx v _n ->
        Array.iter Em.Vec.free (Emalg.Split_step.split_tagging Tu.icmp v ~target_buckets:8));
    audit "mem_splitters" (fun _ctx v _n ->
        ignore (Quantile.Mem_splitters.find Tu.icmp v ~spacing:500));
    audit "histogram" (fun _ctx v _n ->
        ignore (Quantile.Histogram.build Tu.icmp v ~buckets:12));
    audit "multi_select (base case)" (fun _ctx v n ->
        ignore (Core.Multi_select.select Tu.icmp v ~ranks:[| 1; n / 2; n |]));
    audit "multi_select (general case)" (fun ctx v n ->
        let m = Core.Multi_select.batch_size ctx in
        let k = (3 * m) + 1 in
        let ranks = Array.init k (fun i -> 1 + (i * (n - 1) / k)) in
        let ranks = Array.of_list (List.sort_uniq Tu.icmp (Array.to_list ranks)) in
        ignore (Core.Multi_select.select Tu.icmp v ~ranks));
    audit "multi_partition" (fun _ctx v n ->
        Array.iter Em.Vec.free
          (Core.Multi_partition.partition_sizes Tu.icmp v ~sizes:[| n / 2; n / 4; n / 4 |]));
    audit "splitters right" (fun _ctx v n ->
        Em.Vec.free
          (Core.Splitters.right_grounded Tu.icmp v { Core.Problem.n; k = 8; a = 16; b = n }));
    audit "splitters left (with padding)" (fun _ctx v n ->
        Em.Vec.free
          (Core.Splitters.left_grounded Tu.icmp v { Core.Problem.n; k = 32; a = 0; b = n / 2 }));
    audit "splitters two-sided" (fun _ctx v n ->
        Em.Vec.free
          (Core.Splitters.two_sided Tu.icmp v
             { Core.Problem.n; k = 8; a = n / 64; b = n / 2 }));
    audit "partitioning right" (fun _ctx v n ->
        Array.iter Em.Vec.free
          (Core.Partitioning.right_grounded Tu.icmp v { Core.Problem.n; k = 8; a = 16; b = n }));
    audit "partitioning left" (fun _ctx v n ->
        Array.iter Em.Vec.free
          (Core.Partitioning.left_grounded Tu.icmp v { Core.Problem.n; k = 16; a = 0; b = n / 4 }));
    audit "partitioning two-sided" (fun _ctx v n ->
        Array.iter Em.Vec.free
          (Core.Partitioning.two_sided Tu.icmp v
             { Core.Problem.n; k = 8; a = n / 64; b = n / 2 }));
    audit "quantiles" (fun _ctx v _n ->
        Em.Vec.free (Core.Splitters.exact_quantiles Tu.icmp v ~k:10));
    audit "reduction precise" (fun _ctx v n ->
        Array.iter Em.Vec.free
          (Core.Reduction.precise_by_approximate Tu.icmp v ~chunk:(n / 7)));
    audit "reduction sort" (fun _ctx v _n ->
        Em.Vec.free (Core.Reduction.sort_by_partitioning Tu.icmp v));
    audit "baseline splitters" (fun _ctx v n ->
        Em.Vec.free
          (Core.Baseline.splitters Tu.icmp v { Core.Problem.n; k = 8; a = 0; b = n }));
    audit "intermixed" (fun ctx v n ->
        let pctx : (int * int) Em.Ctx.t = Em.Ctx.linked ctx in
        let d =
          Emalg.Scan.map_into pctx (fun e -> (e, e mod 3)) v
        in
        ignore n;
        let counts = Array.make 3 0 in
        Emalg.Scan.iter (fun (_, g) -> counts.(g) <- counts.(g) + 1) d;
        ignore (Core.Intermixed.select Tu.icmp d ~targets:(Array.map (fun c -> c / 2 + 1) counts));
        Em.Vec.free d);
  ]
