(* The online drift watchdog (Core.Drift): envelope arithmetic, alert
   semantics, and the serve-level contract — a clean session stays silent,
   injected cost inflation trips the watchdog (and its telemetry alert
   frame) reproducibly. *)

let feps = Alcotest.float 1e-9
let params = Em.Params.create ~mem:1_024 ~block:16

let test_envelope () =
  let d = Core.Drift.create ~per_query:2. params ~n:6_000 in
  Alcotest.check feps "base is sort(n)"
    (Core.Bounds.sort params ~n:6_000)
    (Core.Drift.predicted d ~queries:0);
  Alcotest.check feps "per-query allowance accumulates"
    (Core.Bounds.sort params ~n:6_000 +. 20.)
    (Core.Drift.predicted d ~queries:10);
  Alcotest.check feps "default ceiling exposed" Core.Drift.default_ceiling
    (Core.Drift.ceiling d)

let test_validation () =
  (match Core.Drift.create ~ceiling:0. params ~n:100 with
  | _ -> Alcotest.fail "ceiling 0 must raise"
  | exception Invalid_argument _ -> ());
  match Core.Drift.create ~per_query:(-1.) params ~n:100 with
  | _ -> Alcotest.fail "negative per_query must raise"
  | exception Invalid_argument _ -> ()

let test_observe_accounting () =
  let d = Core.Drift.create ~ceiling:2. ~per_query:10. params ~n:6_000 in
  let base = Core.Drift.predicted d ~queries:0 in
  Alcotest.check feps "ratio is 0 before any observation" 0. (Core.Drift.ratio d);
  (* Under the envelope: silent. *)
  (match Core.Drift.observe d ~queries:1 ~total_ios:(int_of_float base) with
  | Core.Drift.Silent -> ()
  | Core.Drift.Alert _ -> Alcotest.fail "within the envelope must stay silent");
  Tu.check_bool "not tripped yet" false (Core.Drift.tripped d);
  (* Far over it: alert, with the running ratio. *)
  let inflated = int_of_float (3. *. (base +. 10.)) + 1 in
  (match Core.Drift.observe d ~queries:1 ~total_ios:inflated with
  | Core.Drift.Alert { ratio; ceiling } ->
      Tu.check_bool "alert ratio exceeds the ceiling" true (ratio > ceiling);
      Alcotest.check feps "alert carries the configured ceiling" 2. ceiling
  | Core.Drift.Silent -> Alcotest.fail "3x the envelope must alert");
  (* Alerts repeat on every offending observation (callers de-duplicate),
     and [worst]/[tripped] are sticky. *)
  (match Core.Drift.observe d ~queries:2 ~total_ios:inflated with
  | Core.Drift.Alert _ -> ()
  | Core.Drift.Silent -> Alcotest.fail "still over: must alert again");
  Tu.check_int "each offending observation counted" 2 (Core.Drift.alerts d);
  Tu.check_bool "tripped is sticky" true (Core.Drift.tripped d);
  (match Core.Drift.observe d ~queries:1_000_000 ~total_ios:1 with
  | Core.Drift.Silent -> ()
  | Core.Drift.Alert _ -> Alcotest.fail "back under the envelope: silent");
  Tu.check_bool "worst keeps the peak after recovery" true
    (Core.Drift.worst d > 2.)

(* ---- serve-level: clean runs silent, inflation trips ---- *)

let n = 6_000

let meta =
  {
    Core.Serve.m_n = n;
    m_mem = 1_024;
    m_block = 16;
    m_disks = 1;
    m_workload = "random-perm";
    m_seed = 5;
  }

let run_session ?drift_ceiling ?telemetry queries =
  let ctx : int Em.Ctx.t = Em.Ctx.create params in
  let v = Em.Vec.of_array ctx (Tu.random_perm ~seed:5 n) in
  let srv = Core.Serve.create ?drift_ceiling ?telemetry ~meta ctx v in
  List.iter (fun line -> ignore (Core.Serve.run_batch srv (fun _ -> ()) line)) queries;
  let d = Core.Serve.drift srv in
  let out = (Core.Drift.tripped d, Core.Drift.alerts d, Core.Drift.worst d) in
  Core.Serve.close srv;
  Em.Ctx.close ctx;
  out

let workload =
  [ "select 3000"; "quantile 0.25"; "range 40 45"; "select 17"; "quantile 0.9" ]

let test_clean_run_silent () =
  let tripped, alerts, worst = run_session workload in
  Tu.check_bool "clean run never trips the default ceiling" false tripped;
  Tu.check_int "no alerts" 0 alerts;
  Tu.check_bool "clean worst ratio well under the ceiling" true
    (Float.is_finite worst && worst < Core.Drift.default_ceiling)

let test_inflation_trips () =
  (* Shrinking the ceiling below the session's real running ratio stands in
     for cost inflation: the measured/predicted ratio the watchdog folds is
     the same — only the blessed envelope moves. *)
  let _, _, clean_worst = run_session workload in
  let tight = clean_worst /. 2. in
  let alerts_seen = ref [] in
  let telemetry =
    Em.Telemetry.create ~every_queries:1_000_000
      ~now:(fun () -> 0.)
      (Em.Telemetry.fn_sink (fun l -> alerts_seen := l :: !alerts_seen))
  in
  let tripped, alerts, worst = run_session ~drift_ceiling:tight ~telemetry workload in
  Tu.check_bool "inflated run trips" true tripped;
  Tu.check_bool "at least one alert" true (alerts >= 1);
  Tu.check_bool "worst ratio beyond the tightened ceiling" true (worst > tight);
  (* The serve layer de-duplicates: exactly one alert frame, on the first
     offending query. *)
  let alert_frames =
    List.filter (Tu.contains ~sub:"\"frame\":\"alert\"") !alerts_seen
  in
  Tu.check_int "exactly one alert frame emitted" 1 (List.length alert_frames);
  Tu.check_bool "alert frame carries the drift ratio" true
    (Tu.contains ~sub:"\"drift_ratio\":" (List.hd alert_frames))

let test_determinism () =
  let a = run_session workload in
  let b = run_session workload in
  Tu.check_bool "drift verdicts are byte-deterministic across runs" true (a = b)

let suite =
  [
    Alcotest.test_case "envelope arithmetic" `Quick test_envelope;
    Alcotest.test_case "parameter validation" `Quick test_validation;
    Alcotest.test_case "observe accounting" `Quick test_observe_accounting;
    Alcotest.test_case "clean serve run stays silent" `Quick test_clean_run_silent;
    Alcotest.test_case "inflation trips the watchdog" `Quick test_inflation_trips;
    Alcotest.test_case "verdicts deterministic" `Quick test_determinism;
  ]
