(* Parallel-disk model: striping, round accounting, and the prefetch /
   write-behind pipelines.

   The load-bearing invariant, checked from several directions: adding
   disks changes *scheduling* (the round count), never *work* — outputs,
   read/write/comparison totals and [mem_peak <= M] are identical at D = 1
   and D = k for every algorithm, and rounds always sit in the
   [ceil(ios / D), ios] band (collapsing to ios exactly at D = 1).

   Per-physical-slot counts are D-invariant only while allocation is fresh:
   the allocator keeps one LIFO free list per disk, so once an algorithm
   frees scratch vectors, slot *recycling* order legitimately depends on D.
   The pipeline props below therefore check per-block counts on fresh
   vectors, and the algorithm prop checks totals. *)

let per_block op evs =
  let h = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.Em.Trace.op = op then
        Hashtbl.replace h e.Em.Trace.block
          (1 + Option.value ~default:0 (Hashtbl.find_opt h e.Em.Trace.block)))
    evs;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])

let traced_ctx ?plan ~disks () =
  let trace = Em.Trace.create () in
  let sink, events = Em.Trace.collector () in
  Em.Trace.add_sink trace sink;
  let ctx : int Em.Ctx.t = Em.Ctx.create ~trace ~disks (Tu.params ()) in
  (match plan with
  | Some p ->
      Em.Ctx.inject ctx p;
      Em.Ctx.arm ctx
  | None -> ());
  (ctx, events)

(* ---- (a) algorithm outputs and per-block I/Os are D-invariant ---- *)

let algos n =
  let spec = { Core.Problem.n; k = 8; a = 0; b = ((n / 4) + 7) / 8 * 8 } in
  let ranks = [| 1; (n / 2) + 1; n |] in
  [
    ("sort", fun cmp v -> Em.Vec.Oracle.to_array (Emalg.External_sort.sort cmp v));
    ("multiselect", fun cmp v -> Core.Multi_select.select cmp v ~ranks);
    ("splitters", fun cmp v -> Em.Vec.Oracle.to_array (Core.Splitters.solve cmp v spec));
    ( "partitioning",
      fun cmp v ->
        let parts = Core.Partitioning.solve cmp v spec in
        Array.concat
          (Array.to_list (Array.map (fun p -> [| Em.Vec.length p |]) parts)
          @ Array.to_list (Array.map Em.Vec.Oracle.to_array parts)) );
  ]

let run_algo ~disks ~seed ~n (_, algo) =
  let ctx, events = traced_ctx ~disks () in
  let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n in
  let cmp = Em.Ctx.counted ctx Tu.icmp in
  let out, d = Em.Ctx.measured ctx (fun () -> algo cmp v) in
  let evs = events () in
  let peak = ctx.Em.Ctx.stats.Em.Stats.mem_peak in
  Em.Ctx.close ctx;
  (out, d, evs, peak)

let prop_d_invariant =
  Tu.qcheck_case ~count:20
    "every algorithm: output, reads, writes, comparisons identical at D=1 and D=k"
    QCheck2.Gen.(triple (int_range 2 8) (int_range 200 1200) (int_range 0 999))
    (fun (disks, n, seed) ->
      List.for_all
        (fun algo ->
          let o1, d1, e1, _ = run_algo ~disks:1 ~seed ~n algo in
          let ok, dk, ek, peak = run_algo ~disks ~seed ~n algo in
          o1 = ok
          && d1.Em.Stats.d_reads = dk.Em.Stats.d_reads
          && d1.Em.Stats.d_writes = dk.Em.Stats.d_writes
          && d1.Em.Stats.d_comparisons = dk.Em.Stats.d_comparisons
          && List.length e1 = List.length ek
          && peak <= 256)
        (algos n))

(* ---- (b) round accounting stays in the [ceil(ios/D), ios] band ---- *)

let prop_round_bounds =
  Tu.qcheck_case ~count:25
    "rounds in [ceil(ios/D), ios]; rounds = ios exactly at D = 1"
    QCheck2.Gen.(triple (int_range 1 8) (int_range 200 1200) (int_range 0 999))
    (fun (disks, n, seed) ->
      List.for_all
        (fun algo ->
          let _, d, _, _ = run_algo ~disks ~seed ~n algo in
          let ios = Em.Stats.delta_ios d and rounds = d.Em.Stats.d_rounds in
          rounds <= ios
          && rounds >= (ios + disks - 1) / disks
          && (disks > 1 || rounds = ios))
        (algos n))

(* ---- per-disk balance: striping spreads a vector evenly ---- *)

let prop_striping_balance =
  Tu.qcheck_case ~count:50 "striping: per-disk block counts of a vec differ by <= 1"
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 2000) (int_range 0 999))
    (fun (disks, n, seed) ->
      let ctx : int Em.Ctx.t = Em.Ctx.create ~disks (Tu.params ()) in
      let v = Tu.int_vec ctx (Tu.random_ints ~seed ~bound:1_000_000 n) in
      let counts = Array.make disks 0 in
      Array.iter
        (fun id ->
          let disk = Em.Device.disk_of_block ctx.Em.Ctx.dev id in
          counts.(disk) <- counts.(disk) + 1)
        (Em.Vec.block_ids v);
      let mx = Array.fold_left max 0 counts
      and mn = Array.fold_left min max_int counts in
      Em.Ctx.close ctx;
      mx - mn <= 1)

(* ---- (c) pipelined readers deliver the unbuffered element sequence ---- *)

(* Drain [r] with a seed-determined mix of peek/next/take; the same seed
   replays the same op sequence on another reader over the same data. *)
let drain_reader ~seed r =
  let rng = Tu.rng seed in
  let out = ref [] in
  while Em.Reader.has_next r do
    match Tu.next_int rng 4 with
    | 0 -> out := Em.Reader.take r (1 + Tu.next_int rng 40) :: !out
    | 1 ->
        ignore (Em.Reader.peek r : int);
        out := [| Em.Reader.next r |] :: !out
    | _ -> out := [| Em.Reader.next r |] :: !out
  done;
  Array.concat (List.rev !out)

(* Plans are stateful (every_nth counts decisions), so each run builds a
   fresh one — sharing a plan between the two runs being compared would
   resume its counter mid-stream and fault different reads. *)
let fault_plans =
  [
    ("no faults", None);
    ( "transient reads",
      Some
        (fun () ->
          Em.Fault.on_op `Read (Em.Fault.every_nth ~n:5 Em.Fault.Transient_read))
    );
    ( "seeded mix",
      Some
        (fun () ->
          Em.Fault.seeded ~seed:42 ~p:0.05
            [ Em.Fault.Transient_read; Em.Fault.Transient_write ]) );
  ]

let prop_reader_pipeline =
  Tu.qcheck_case ~count:30
    "prefetch reader: same elements, same per-block reads (incl. under faults)"
    QCheck2.Gen.(
      quad (int_range 1 8) (int_range 1 600) (int_range 0 999) (int_range 0 999))
    (fun (prefetch, n, seed, script) ->
      let data = Tu.random_ints ~seed ~bound:1_000_000 n in
      List.for_all
        (fun (_, make_plan) ->
          let run pf =
            let plan = Option.map (fun mk -> mk ()) make_plan in
            let ctx, events = traced_ctx ?plan ~disks:(1 + (prefetch mod 4)) () in
            let v = Tu.int_vec ctx data in
            let r = Em.Reader.open_vec ~prefetch:pf v in
            let out = drain_reader ~seed:script r in
            Em.Reader.close r;
            let evs = events () in
            let drained = ctx.Em.Ctx.stats.Em.Stats.mem_in_use in
            Em.Ctx.close ctx;
            (out, per_block Em.Trace.Read evs, drained)
          in
          let out0, blocks0, drained0 = run 0 in
          let outk, blocksk, drainedk = run prefetch in
          out0 = outk && out0 = data && blocks0 = blocksk && drained0 = 0
          && drainedk = 0)
        fault_plans)

(* ---- (c) write-behind writers produce the unbuffered writes ---- *)

let prop_writer_pipeline =
  Tu.qcheck_case ~count:30
    "write-behind writer: same vector, same per-block writes"
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 600) (int_range 0 999))
    (fun (wb, n, seed) ->
      let data = Tu.random_ints ~seed ~bound:1_000_000 n in
      let run wb =
        let ctx, events = traced_ctx ~disks:(1 + (wb mod 4)) () in
        let v = Em.Writer.with_writer ~write_behind:wb ctx (fun w ->
            Array.iter (Em.Writer.push w) data)
        in
        let out = Em.Vec.Oracle.to_array v in
        let evs = events () in
        let writes = ctx.Em.Ctx.stats.Em.Stats.writes in
        Em.Ctx.close ctx;
        (out, per_block Em.Trace.Write evs, writes)
      in
      run 0 = run wb)

(* ---- Reader.take at block boundaries: every block read exactly once ---- *)

let test_take_boundary_reads () =
  let trace = Em.Trace.create () in
  let sink, events = Em.Trace.collector () in
  Em.Trace.add_sink trace sink;
  let ctx : int Em.Ctx.t = Em.Ctx.create ~trace (Tu.params ~mem:256 ~block:16 ()) in
  let n = 100 in
  let v = Tu.int_vec ctx (Array.init n Fun.id) in
  let r = Em.Reader.open_vec v in
  (* Takes that start mid-block, end mid-block, cover whole blocks, and
     leave a partial tail — the shapes that historically double-charged.
     (Let-bound: array-literal element order of evaluation is unspecified.) *)
  let t1 = Em.Reader.take r 7 in
  let t2 = [| Em.Reader.next r |] in
  let t3 = Em.Reader.take r 24 in
  (* exactly to a block boundary *)
  let t4 = Em.Reader.take r 16 in
  let t5 = Em.Reader.take r 52 in
  let got = Array.concat [ t1; t2; t3; t4; t5 ] in
  Tu.check_int "everything delivered" n (Array.length got);
  Tu.check_int_array "in order" (Array.init n Fun.id) got;
  Em.Reader.close r;
  let reads = per_block Em.Trace.Read (events ()) in
  Tu.check_int "every block touched" (Array.length (Em.Vec.block_ids v))
    (List.length reads);
  List.iter
    (fun (block, count) ->
      if count <> 1 then
        Alcotest.failf "block %d read %d times (expected exactly once)" block count)
    reads;
  Tu.check_no_leaks ~live:(Em.Vec.num_blocks v) ctx

(* ---- write-behind queues drain under memory pressure (reclaimers) ---- *)

let test_writer_reclaims_under_pressure () =
  let ctx = Tu.ctx () in
  (* 256-word budget, B = 16. *)
  let w = Em.Writer.create ~write_behind:4 ctx in
  for i = 0 to 47 do
    Em.Writer.push w i
  done;
  (* Base buffer + 3 queued blocks = 64 words held by the writer. *)
  Tu.check_int "queue held" 64 ctx.Em.Ctx.stats.Em.Stats.mem_in_use;
  (* A 224-word charge only fits if the queue drains (64 + 224 > 256). *)
  Em.Ctx.with_words ctx 224 (fun () ->
      Tu.check_int "queue drained to make room" (16 + 224)
        ctx.Em.Ctx.stats.Em.Stats.mem_in_use);
  let v = Em.Writer.finish w in
  Tu.check_int "all elements written" 48 (Em.Vec.length v);
  Tu.check_int_array "contents intact" (Array.init 48 Fun.id)
    (Em.Vec.Oracle.to_array v);
  Tu.check_int "per-block writes preserved (3 blocks, once each)" 3
    ctx.Em.Ctx.stats.Em.Stats.writes;
  Tu.check_no_leaks ~live:(Em.Vec.num_blocks v) ctx

(* ---- merge stability is D-invariant (forecasting must not reorder) ---- *)

let test_merge_stability_across_disks () =
  (* Duplicate keys across runs: ties must resolve by run index at any D. *)
  let runs = [ [| 1; 3; 3; 9 |]; [| 1; 2; 3; 9; 9 |]; [| 3; 3; 9 |] ] in
  let merged disks =
    let ctx : (int * int) Em.Ctx.t = Em.Ctx.create ~disks (Tu.params ()) in
    let vecs = List.mapi (fun i a -> Em.Vec.of_array ctx (Array.map (fun x -> (x, i)) a)) runs in
    let out =
      Emalg.Merge.merge (fun (x, _) (y, _) -> Tu.icmp x y) vecs
    in
    let a = Em.Vec.Oracle.to_array out in
    Em.Vec.free out;
    List.iter Em.Vec.free vecs;
    Em.Ctx.close ctx;
    a
  in
  let reference = merged 1 in
  List.iter
    (fun d ->
      Tu.check_bool (Printf.sprintf "stable merge identical at D=%d" d) true
        (merged d = reference))
    [ 2; 4; 8 ]

(* ---- online sessions: query streams are D-invariant ---- *)

module Os = Emalg.Online_select

let online_stream n =
  [
    Os.Select (n / 2);
    Os.Select 1;
    Os.Range (max 1 ((n / 4) - 8), min n ((n / 4) + 8));
    Os.Quantile 0.9;
    Os.Select (n / 2);
  ]

let run_online ~disks ~seed ~n =
  let ctx : int Em.Ctx.t = Em.Ctx.create ~disks (Tu.params ()) in
  let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n in
  let cmp = Em.Ctx.counted ctx Tu.icmp in
  let s = Os.open_session cmp ctx v in
  let replies = List.map (Os.query s) (online_stream n) in
  Os.close s;
  let peak = ctx.Em.Ctx.stats.Em.Stats.mem_peak in
  Em.Ctx.close ctx;
  (replies, peak)

let prop_online_d_invariant =
  Tu.qcheck_case ~count:25
    "online sessions: per-query values/reads/writes/comparisons identical at \
     any D; rounds in band"
    QCheck2.Gen.(triple (int_range 2 8) (int_range 200 1200) (int_range 0 999))
    (fun (disks, n, seed) ->
      let r1, _ = run_online ~disks:1 ~seed ~n in
      let rk, peak = run_online ~disks ~seed ~n in
      peak <= 256
      && List.for_all2
           (fun (a : int Os.reply) (b : int Os.reply) ->
             let ios = Em.Stats.delta_ios b.Os.cost in
             a.Os.values = b.Os.values
             && a.Os.cost.Em.Stats.d_reads = b.Os.cost.Em.Stats.d_reads
             && a.Os.cost.Em.Stats.d_writes = b.Os.cost.Em.Stats.d_writes
             && a.Os.cost.Em.Stats.d_comparisons
                = b.Os.cost.Em.Stats.d_comparisons
             && a.Os.splits = b.Os.splits
             (* D = 1 schedules serially; D = k stays in the band. *)
             && a.Os.cost.Em.Stats.d_rounds = Em.Stats.delta_ios a.Os.cost
             && b.Os.cost.Em.Stats.d_rounds <= ios
             && b.Os.cost.Em.Stats.d_rounds >= (ios + disks - 1) / disks)
           r1 rk)

(* A query stream issued inside an already-open scheduling window must still
   report per-query round costs (Stats.effective_rounds brackets the pending
   window), and those brackets telescope exactly to the window's total. *)
let test_online_window_nesting () =
  let disks = 4 in
  let ctx : int Em.Ctx.t = Em.Ctx.create ~disks (Tu.params ()) in
  let n = 1_000 in
  let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed:21 ~n in
  let s = Os.open_session (Em.Ctx.counted ctx Tu.icmp) ctx v in
  let stats = ctx.Em.Ctx.stats in
  let snap = Em.Stats.snapshot stats in
  let replies =
    Em.Ctx.io_window ctx (fun () -> List.map (Os.query s) (online_stream n))
  in
  let total = Em.Stats.delta stats snap in
  List.iter
    (fun (r : int Os.reply) ->
      let ios = Em.Stats.delta_ios r.Os.cost in
      Tu.check_bool "per-query rounds bracketed inside the window" true
        (r.Os.cost.Em.Stats.d_rounds >= 0 && r.Os.cost.Em.Stats.d_rounds <= ios))
    replies;
  (* The first query refines a 1000-element tree: its I/Os overlap across
     the disks, so its in-window round bracket must compress. *)
  (match replies with
  | r :: _ ->
      Tu.check_bool "refining query compresses rounds" true
        (r.Os.cost.Em.Stats.d_rounds < Em.Stats.delta_ios r.Os.cost)
  | [] -> Alcotest.fail "no replies");
  Tu.check_int "per-query round brackets telescope to the window total"
    total.Em.Stats.d_rounds
    (List.fold_left (fun acc (r : int Os.reply) -> acc + r.Os.cost.Em.Stats.d_rounds) 0 replies);
  Tu.check_bool "the shared window compresses the stream" true
    (total.Em.Stats.d_rounds < Em.Stats.delta_ios total);
  Os.close s;
  Em.Ctx.close ctx

let suite =
  [
    prop_d_invariant;
    prop_round_bounds;
    prop_online_d_invariant;
    Alcotest.test_case "online queries inside an open window" `Quick
      test_online_window_nesting;
    prop_striping_balance;
    prop_reader_pipeline;
    prop_writer_pipeline;
    Alcotest.test_case "take reads each boundary block once" `Quick
      test_take_boundary_reads;
    Alcotest.test_case "write-behind drains under memory pressure" `Quick
      test_writer_reclaims_under_pressure;
    Alcotest.test_case "merge stability across D" `Quick
      test_merge_stability_across_disks;
  ]
