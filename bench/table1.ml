(* Table 1 of the paper, row by row: measured I/Os of each algorithm against
   the matching bound formula, across a parameter sweep, with the sort-based
   baseline alongside.  Every sweep point is published into the shared
   metrics registry through [Core.Bound_track] and collected into the
   BENCH_table1.json artifact; [all] returns the per-row worst ratio so the
   driver can gate on blessed ceilings. *)

let icmp = Exp.icmp

let n_default = 1 lsl 18
let seed = 2014

let run_splitters spec ~machine ~kind =
  Exp.measure ~machine ~kind ~seed ~n:spec.Core.Problem.n (fun _ctx v ->
      let out = Core.Splitters.solve icmp v spec in
      let input = Em.Vec.Oracle.to_array v in
      Exp.expect_ok "splitters"
        (Core.Verify.splitters icmp ~input spec (Em.Vec.Oracle.to_array out)))

let run_partitioning spec ~machine ~kind =
  Exp.measure ~machine ~kind ~seed ~n:spec.Core.Problem.n (fun _ctx v ->
      let parts = Core.Partitioning.solve icmp v spec in
      let input = Em.Vec.Oracle.to_array v in
      Exp.expect_ok "partitioning"
        (Core.Verify.partitioning icmp ~input spec (Array.map Em.Vec.Oracle.to_array parts)))

let run_baseline_splitters spec ~machine ~kind =
  Exp.measure ~machine ~kind ~seed ~n:spec.Core.Problem.n (fun _ctx v ->
      ignore (Core.Baseline.splitters icmp v spec))

let run_baseline_partitioning spec ~machine ~kind =
  Exp.measure ~machine ~kind ~seed ~n:spec.Core.Problem.n (fun _ctx v ->
      ignore (Core.Baseline.partitioning icmp v spec))

(* Drop sweep points whose spec is invalid at the current (possibly
   [--small]-scaled) input size instead of crashing the whole sweep. *)
let valid_specs specs =
  List.filter (fun (_, spec) -> Result.is_ok (Core.Problem.validate spec)) specs

(* Generic sweep runner: one printed row and one artifact row per spec.
   Returns the artifact rows and the worst measured/bound ratio. *)
let sweep ~row ~what ~solve ~baseline ~machine ~kind specs =
  let p = Exp.params machine in
  let row_name = Core.Bound_track.name row in
  let ratios = ref [] in
  let artifacts = ref [] in
  let rows =
    List.map
      (fun (label, spec) ->
        let ours = (solve spec ~machine ~kind : Exp.measurement) in
        let base = (baseline spec ~machine ~kind : Exp.measurement) in
        let b = Core.Bound_track.predicted row p spec in
        let ratio =
          Core.Bound_track.publish_values Exp.registry p row spec
            ~measured_ios:ours.Exp.ios
        in
        ratios := ratio :: !ratios;
        artifacts :=
          Exp.artifact_row ~row:row_name ~label ~machine ~n:spec.Core.Problem.n
            ~extra_geometry:
              [
                ("k", spec.Core.Problem.k);
                ("a", spec.Core.Problem.a);
                ("b", spec.Core.Problem.b);
              ]
            ~predicted:b ours
          :: !artifacts;
        [
          label;
          string_of_int ours.Exp.ios;
          string_of_int ours.Exp.random_ios;
          Exp.fmt_f b;
          Exp.fmt_ratio ratio;
          string_of_int base.Exp.ios;
        ])
      specs
  in
  Exp.table
    ~header:[ what; "measured I/O"; "rand seeks"; "bound"; "ratio"; "sort baseline" ]
    rows;
  Exp.verdict ~what ~spread:(Exp.ratio_spread !ratios) ~limit:6.;
  let worst = List.fold_left Float.max neg_infinity !ratios in
  (List.rev !artifacts, (row_name, worst))

let row_splitters_right ~machine ~kind =
  let n = Exp.scaled n_default and k = 16 in
  Exp.section
    (Printf.sprintf
       "Table 1 / row 1 — right-grounded K-splitters: Θ((1 + aK/B) lg_{M/B}(K/B))   [N=%d, K=%d, %s, %s]"
       n k (Exp.machine_name machine) (Core.Workload.kind_name kind));
  let specs =
    valid_specs
      (List.map
         (fun a -> (Printf.sprintf "a=%d" a, { Core.Problem.n; k; a; b = n }))
         (List.sort_uniq Int.compare [ 2; 16; 128; 1_024; 8_192; n / k ]))
  in
  sweep ~row:Core.Bound_track.Splitters_right ~what:"a" ~solve:run_splitters
    ~baseline:run_baseline_splitters ~machine ~kind specs

let row_splitters_left ~machine ~kind =
  let n = Exp.scaled n_default and k = 64 in
  Exp.section
    (Printf.sprintf
       "Table 1 / row 2 — left-grounded K-splitters: Θ((N/B) lg_{M/B}(N/(bB)))   [N=%d, K=%d, %s, %s]"
       n k (Exp.machine_name machine) (Core.Workload.kind_name kind));
  let specs =
    valid_specs
      (List.map
         (fun b -> (Printf.sprintf "b=%d" b, { Core.Problem.n; k; a = 0; b }))
         [ n / k; n / 16; n / 8; n / 4; n / 2 ])
  in
  sweep ~row:Core.Bound_track.Splitters_left ~what:"b" ~solve:run_splitters
    ~baseline:run_baseline_splitters ~machine ~kind specs

let row_splitters_two_sided ~machine ~kind =
  let n = Exp.scaled n_default and k = 64 in
  Exp.section
    (Printf.sprintf
       "Table 1 / row 3 — two-sided K-splitters: O((aK/B) lg_{M/B}(K/B) + (N/B) lg_{M/B}(N/(bB)))   [N=%d, K=%d, %s, %s]"
       n k (Exp.machine_name machine) (Core.Workload.kind_name kind));
  let specs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            let spec = { Core.Problem.n; k; a; b } in
            match Core.Problem.validate spec with
            | Ok () -> Some (Printf.sprintf "a=%d b=%d" a b, spec)
            | Error _ -> None)
          [ n / 32; n / 8; n / 2 ])
      [ 2; 256; 4_096 ]
  in
  sweep ~row:Core.Bound_track.Splitters_two_sided ~what:"(a, b)" ~solve:run_splitters
    ~baseline:run_baseline_splitters ~machine ~kind specs

let row_partition_right ~machine ~kind =
  let n = Exp.scaled n_default and k = 16 in
  Exp.section
    (Printf.sprintf
       "Table 1 / row 4 — right-grounded K-partitioning: O(N/B + (aK/B) lg_{M/B} min(K, aK/B))   [N=%d, K=%d, %s, %s]"
       n k (Exp.machine_name machine) (Core.Workload.kind_name kind));
  let specs =
    valid_specs
      (List.map
         (fun a -> (Printf.sprintf "a=%d" a, { Core.Problem.n; k; a; b = n }))
         (List.sort_uniq Int.compare [ 2; 16; 128; 1_024; 8_192; n / k ]))
  in
  sweep ~row:Core.Bound_track.Partition_right ~what:"a" ~solve:run_partitioning
    ~baseline:run_baseline_partitioning ~machine ~kind specs

let row_partition_left ~machine ~kind =
  let n = Exp.scaled n_default and k = 64 in
  Exp.section
    (Printf.sprintf
       "Table 1 / row 5 — left-grounded K-partitioning: Θ((N/B) lg_{M/B} min(N/b, N/B))   [N=%d, K=%d, %s, %s]"
       n k (Exp.machine_name machine) (Core.Workload.kind_name kind));
  let specs =
    valid_specs
      (List.map
         (fun b -> (Printf.sprintf "b=%d" b, { Core.Problem.n; k; a = 0; b }))
         [ n / k; n / 16; n / 8; n / 4; n / 2 ])
  in
  sweep ~row:Core.Bound_track.Partition_left ~what:"b" ~solve:run_partitioning
    ~baseline:run_baseline_partitioning ~machine ~kind specs

let row_partition_two_sided ~machine ~kind =
  let n = Exp.scaled n_default and k = 64 in
  Exp.section
    (Printf.sprintf
       "Table 1 / row 6 — two-sided K-partitioning: O((aK/B) lg_{M/B} min(K, aK/B) + (N/B) lg_{M/B} min(N/b, N/B))   [N=%d, K=%d, %s, %s]"
       n k (Exp.machine_name machine) (Core.Workload.kind_name kind));
  let specs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            let spec = { Core.Problem.n; k; a; b } in
            match Core.Problem.validate spec with
            | Ok () -> Some (Printf.sprintf "a=%d b=%d" a b, spec)
            | Error _ -> None)
          [ n / 32; n / 8; n / 2 ])
      [ 2; 256; 4_096 ]
  in
  sweep ~row:Core.Bound_track.Partition_two_sided ~what:"(a, b)" ~solve:run_partitioning
    ~baseline:run_baseline_partitioning ~machine ~kind specs

(* D-disk sweep: external sort and left-grounded partitioning at
   D in {1, 2, 4, 8} on the same machine.  Block transfers are
   D-invariant by construction (striping never changes which blocks
   move), so the interesting measurement is the round count: it should
   compress toward ios/D (the Vitter-Shriver N/(DB) forms).  Three gate
   rows pin this: the D=8 sort/partition compressions against the D=1
   run, and the worst measured-rounds / round-bound ratio. *)
let disks_sweep ~machine ~kind =
  let n = Exp.scaled n_default and k = 64 in
  Exp.section
    (Printf.sprintf
       "Table 1 / D-disk sweep — rounds vs D: N/(DB) lg_{M/B}(N/B)   [N=%d, %s, %s]"
       n (Exp.machine_name machine) (Core.Workload.kind_name kind));
  let spec = { Core.Problem.n; k; a = 0; b = n / 8 } in
  let sort_bound p = Core.Bounds.sort p ~n in
  let runs =
    List.map
      (fun d ->
        let p = Em.Params.with_disks (Exp.params machine) d in
        let sort =
          Exp.measure ~machine ~kind ~seed ~n ~disks:d (fun _ctx v ->
              Em.Vec.free (Emalg.External_sort.sort icmp v))
        in
        let part =
          Exp.measure ~machine ~kind ~seed ~n ~disks:d (fun _ctx v ->
              Array.iter Em.Vec.free (Core.Partitioning.solve icmp v spec))
        in
        (d, p, sort, part))
      [ 1; 2; 4; 8 ]
  in
  let sort_r1, part_r1 =
    match runs with
    | (1, _, sort, part) :: _ -> (float_of_int sort.Exp.rounds, float_of_int part.Exp.rounds)
    | _ -> assert false
  in
  let artifacts = ref [] and bound_ratios = ref [] in
  let rows =
    List.map
      (fun (d, p, sort, part) ->
        let rb = Core.Bounds.rounds_of p (sort_bound p) in
        let bound_ratio = float_of_int sort.Exp.rounds /. rb in
        bound_ratios := bound_ratio :: !bound_ratios;
        artifacts :=
          Exp.artifact_row ~row:"disks_sweep_partition"
            ~label:(Printf.sprintf "D=%d" d) ~machine ~n
            ~extra_geometry:
              [ ("disks", d); ("k", k); ("a", 0); ("b", n / 8) ]
            ~predicted:(Core.Bound_track.predicted Core.Bound_track.Partition_left p spec)
            part
          :: Exp.artifact_row ~row:"disks_sweep_sort" ~label:(Printf.sprintf "D=%d" d)
               ~machine ~n
               ~extra_geometry:[ ("disks", d) ]
               ~predicted:(sort_bound p) sort
          :: !artifacts;
        [
          string_of_int d;
          string_of_int sort.Exp.ios;
          string_of_int sort.Exp.rounds;
          Exp.fmt_ratio (float_of_int sort.Exp.rounds /. sort_r1);
          Exp.fmt_f rb;
          Exp.fmt_ratio bound_ratio;
          string_of_int part.Exp.rounds;
          Exp.fmt_ratio (float_of_int part.Exp.rounds /. part_r1);
        ])
      runs
  in
  Exp.table
    ~header:
      [
        "D";
        "sort I/O";
        "sort rounds";
        "vs D=1";
        "round bound";
        "rounds/bound";
        "partition rounds";
        "vs D=1";
      ]
    rows;
  let rounds_at sel d' =
    match List.find_opt (fun (d, _, _, _) -> d = d') runs with
    | Some (_, _, sort, part) -> float_of_int (sel sort part).Exp.rounds
    | None -> nan
  in
  let sort_d8 = rounds_at (fun s _ -> s) 8 /. sort_r1 in
  let part_d8 = rounds_at (fun _ p -> p) 8 /. part_r1 in
  let worst_bound = List.fold_left Float.max neg_infinity !bound_ratios in
  Printf.printf
    "  => I/Os are D-invariant; D=8 compresses sort rounds to %.2fx and partition\n"
    sort_d8;
  Printf.printf "     rounds to %.2fx of the single-disk run.\n" part_d8;
  ( List.rev !artifacts,
    [
      ("sort_rounds_d8", sort_d8);
      ("partition_rounds_d8", part_d8);
      ("sort_round_bound", worst_bound);
    ] )

(* Runs all six rows plus the D-disk sweep; returns (row_name, worst ratio)
   pairs for the ceiling gate in main.ml. *)
let all ?(machine = Exp.default_machine) ?(kind = Core.Workload.Pi_hard) () =
  (* Explicit lets: list elements would otherwise evaluate right-to-left,
     printing the rows in reverse. *)
  let r1 = row_splitters_right ~machine ~kind in
  let r2 = row_splitters_left ~machine ~kind in
  let r3 = row_splitters_two_sided ~machine ~kind in
  let r4 = row_partition_right ~machine ~kind in
  let r5 = row_partition_left ~machine ~kind in
  let r6 = row_partition_two_sided ~machine ~kind in
  let results = [ r1; r2; r3; r4; r5; r6 ] in
  let sweep_artifacts, sweep_ratios = disks_sweep ~machine ~kind in
  Exp.write_artifact ~bench:"table1"
    (List.concat_map fst results @ sweep_artifacts);
  List.map snd results @ sweep_ratios
