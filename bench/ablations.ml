(* Ablations over the design choices DESIGN.md calls out: the sub-sampling
   rate of the pivot recursion, and the machine geometry M/B.  Measured
   points feed the BENCH_ablations.json artifact. *)

let icmp = Exp.icmp
let seed = 77

(* Sampling rate r trades sample size (cost) against pivot quality (gap). *)
let sample_rate () =
  let n = Exp.scaled (1 lsl 18) and k = 16 in
  let machine = Exp.default_machine in
  Exp.section
    (Printf.sprintf
       "Ablation RATE — Sample_splitters sub-sampling rate   [N=%d, k=%d, %s]" n k
       (Exp.machine_name machine));
  let artifacts = ref [] in
  let rows =
    List.map
      (fun rate ->
        let max_gap = ref 0 in
        let m =
          Exp.measure ~machine ~seed ~n (fun ctx v ->
              let s = Emalg.Sample_splitters.find ~rate icmp v ~k in
              (* Measure the worst bucket with a zero-cost oracle pass. *)
              let sorted = Em.Vec.Oracle.to_array v in
              Array.sort icmp sorted;
              let start = ref 0 in
              Array.iter
                (fun sp ->
                  let pos = ref !start in
                  while !pos < n && sorted.(!pos) <= sp do
                    incr pos
                  done;
                  max_gap := max !max_gap (!pos - !start);
                  start := !pos)
                s;
              max_gap := max !max_gap (n - !start);
              ignore ctx)
        in
        let bound =
          Emalg.Sample_splitters.gap_bound ~rate (Exp.params machine) ~n ~k
        in
        artifacts :=
          Exp.artifact_row ~row:"sample_rate" ~label:(Printf.sprintf "rate=%d" rate)
            ~machine ~n
            ~extra_geometry:[ ("k", k); ("rate", rate) ]
            m
          :: !artifacts;
        [
          string_of_int rate;
          string_of_int m.Exp.ios;
          string_of_int !max_gap;
          string_of_int bound;
          Exp.fmt_ratio (float_of_int !max_gap /. float_of_int (n / k));
        ])
      [ 2; 3; 4; 8; 16 ]
  in
  Exp.table
    ~header:[ "rate"; "measured I/O"; "max bucket"; "gap bound"; "bucket / (n/k)" ]
    rows;
  Printf.printf
    "  => higher rates scan less sample but loosen the buckets; rate 4 (the paper's\n";
  Printf.printf "     median-of-5 flavour) is the default.\n";
  List.rev !artifacts

(* Extension: randomized reservoir pivots vs the paper's deterministic
   sampling recursion. *)
let randomized () =
  let n = Exp.scaled (1 lsl 18) and k = 16 in
  let machine = Exp.default_machine in
  Exp.section
    (Printf.sprintf
       "Ablation RAND — deterministic vs randomized pivots   [N=%d, k=%d, %s]" n k
       (Exp.machine_name machine));
  let max_gap v s =
    let sorted = Em.Vec.Oracle.to_array v in
    Array.sort icmp sorted;
    let worst = ref 0 and start = ref 0 in
    Array.iter
      (fun sp ->
        let pos = ref !start in
        while !pos < n && sorted.(!pos) <= sp do
          incr pos
        done;
        worst := max !worst (!pos - !start);
        start := !pos)
      s;
    max !worst (n - !start)
  in
  let det_gap = ref 0 and rand_gap = ref 0 in
  let det =
    Exp.measure ~machine ~seed ~n (fun _ctx v ->
        det_gap := max_gap v (Emalg.Sample_splitters.find icmp v ~k))
  in
  let rng_state = Core.Workload.Rng.create 4242 in
  let rng bound = Core.Workload.Rng.int rng_state bound in
  let rand =
    Exp.measure ~machine ~seed ~n (fun _ctx v ->
        rand_gap := max_gap v (Emalg.Sample_splitters.find_random ~rng icmp v ~k))
  in
  Exp.table
    ~header:[ "pivot strategy"; "I/O"; "max bucket"; "bucket / (n/k)"; "guarantee" ]
    [
      [
        "deterministic (paper)";
        string_of_int det.Exp.ios;
        string_of_int !det_gap;
        Exp.fmt_ratio (float_of_int !det_gap /. float_of_int (n / k));
        "worst-case gap_bound";
      ];
      [
        "randomized reservoir";
        string_of_int rand.Exp.ios;
        string_of_int !rand_gap;
        Exp.fmt_ratio (float_of_int !rand_gap /. float_of_int (n / k));
        "w.h.p. only";
      ];
    ];
  Printf.printf
    "  => the randomized extension pays exactly one scan; the paper's recursion pays\n";
  Printf.printf
    "     ~1.3 scans but certifies its buckets deterministically (comparison model).\n";
  [
    Exp.artifact_row ~row:"pivots_deterministic" ~label:"deterministic" ~machine ~n
      ~extra_geometry:[ ("k", k) ]
      det;
    Exp.artifact_row ~row:"pivots_randomized" ~label:"randomized" ~machine ~n
      ~extra_geometry:[ ("k", k) ]
      rand;
  ]

(* The lg_{M/B} factors in every bound: sweep the fanout M/B. *)
let geometry () =
  let n = Exp.scaled (1 lsl 18) in
  Exp.section (Printf.sprintf "Ablation GEOM — machine fanout M/B   [N=%d, B=64]" n);
  let artifacts = ref [] in
  let rows =
    List.map
      (fun mem ->
        let machine = { Exp.mem; block = 64 } in
        let k = 8 in
        let ranks = Array.init k (fun i -> (i + 1) * (n / k)) in
        let ms =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              ignore (Core.Multi_select.select icmp v ~ranks))
        in
        let spec = { Core.Problem.n; k = 64; a = 0; b = n / 16 } in
        let lp =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              Array.iter Em.Vec.free (Core.Partitioning.left_grounded icmp v spec))
        in
        let sort =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              Em.Vec.free (Emalg.External_sort.sort icmp v))
        in
        let lbl = Printf.sprintf "M/B=%d" (mem / 64) in
        artifacts :=
          Exp.artifact_row ~row:"geometry_sort" ~label:lbl ~machine ~n sort
          :: Exp.artifact_row ~row:"geometry_left_partitioning" ~label:lbl ~machine ~n
               ~extra_geometry:[ ("k", 64); ("a", 0); ("b", n / 16) ]
               lp
          :: Exp.artifact_row ~row:"geometry_multi_select" ~label:lbl ~machine ~n
               ~extra_geometry:[ ("k", k) ]
               ms
          :: !artifacts;
        [
          Printf.sprintf "%d" (mem / 64);
          string_of_int ms.Exp.ios;
          string_of_int lp.Exp.ios;
          string_of_int sort.Exp.ios;
        ])
      [ 512; 1_024; 4_096; 16_384 ]
  in
  Exp.table
    ~header:[ "M/B"; "multi-select I/O"; "left partitioning I/O"; "sort I/O" ]
    rows;
  Printf.printf "  => larger fanout flattens every lg_{M/B} factor, as Table 1 predicts.\n";
  List.rev !artifacts

(* Workload robustness: the same algorithm across all generators, including
   the lower-bound adversary layout. *)
let workloads () =
  let n = Exp.scaled (1 lsl 17) in
  let machine = Exp.default_machine in
  Exp.section
    (Printf.sprintf "Ablation WORKLOAD — input layouts   [N=%d, %s]" n
       (Exp.machine_name machine));
  let spec = { Core.Problem.n; k = 32; a = n / 64; b = n / 8 } in
  let artifacts = ref [] in
  let rows =
    List.map
      (fun kind ->
        let m =
          Exp.measure ~machine ~kind ~seed ~n (fun ctx v ->
              let counted = Em.Ctx.counted ctx icmp in
              let out = Core.Splitters.solve counted v spec in
              let input = Em.Vec.Oracle.to_array v in
              Exp.expect_ok "splitters"
                (Core.Verify.splitters icmp ~input spec (Em.Vec.Oracle.to_array out)))
        in
        artifacts :=
          Exp.artifact_row ~row:"workloads" ~label:(Core.Workload.kind_name kind)
            ~machine ~n
            ~extra_geometry:
              [
                ("k", spec.Core.Problem.k);
                ("a", spec.Core.Problem.a);
                ("b", spec.Core.Problem.b);
              ]
            m
          :: !artifacts;
        [ Core.Workload.kind_name kind; string_of_int m.Exp.ios; string_of_int m.Exp.comparisons ])
      Core.Workload.all_kinds
  in
  Exp.table ~header:[ "workload"; "two-sided splitters I/O"; "comparisons" ] rows;
  Printf.printf "  => costs are layout-insensitive, as comparison-based bounds demand.\n";
  List.rev !artifacts

(* Where do the I/Os go?  Per-phase attribution for three representative
   algorithms (the Em.Phase labels inside the library; keys are full
   phase paths now that attribution is path-keyed). *)
let phases () =
  let n = Exp.scaled (1 lsl 18) in
  let machine = Exp.default_machine in
  Exp.section
    (Printf.sprintf "Ablation PHASES — per-phase I/O breakdown   [N=%d, %s]" n
       (Exp.machine_name machine));
  let show label f =
    let ctx : int Em.Ctx.t = Em.Ctx.create (Exp.params machine) in
    let v = Core.Workload.vec ctx Core.Workload.Pi_hard ~seed ~n in
    f ctx v;
    let total = Em.Stats.ios ctx.Em.Ctx.stats in
    Printf.printf "  %s (total %d I/Os):\n" label total;
    List.iter
      (fun (phase, ios) ->
        Printf.printf "    %-28s %7d  (%4.1f%%)\n" phase ios
          (100. *. float_of_int ios /. float_of_int total))
      (Em.Phase.report ctx)
  in
  show "multi-select (K=8)" (fun _ctx v ->
      let ranks = Array.init 8 (fun i -> (i + 1) * (n / 8)) in
      ignore (Core.Multi_select.select icmp v ~ranks));
  show "multi-partition (K=64)" (fun _ctx v ->
      Array.iter Em.Vec.free
        (Core.Multi_partition.partition_sizes icmp v ~sizes:(Array.make 64 (n / 64))));
  show "two-sided splitters" (fun _ctx v ->
      Em.Vec.free
        (Core.Splitters.two_sided icmp v
           { Core.Problem.n; k = 64; a = max 1 (n / 512); b = n / 8 }));
  show "external sort" (fun _ctx v -> Em.Vec.free (Emalg.External_sort.sort icmp v));
  Printf.printf
    "  => '(other)' is tagging and stream glue; the named phases are the library's passes.\n"

let all () =
  (* Explicit lets keep the sections printing in order (list elements
     evaluate right-to-left). *)
  let a1 = sample_rate () in
  let a2 = randomized () in
  let a3 = geometry () in
  let a4 = workloads () in
  phases ();
  Exp.write_artifact ~bench:"ablations" (List.concat [ a1; a2; a3; a4 ])
