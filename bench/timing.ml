(* Wall-clock micro-benchmarks (Bechamel): one Test per core algorithm.
   The primary metric of the reproduction is the simulated I/O count (see
   Table1 / Figures); this section reports host CPU time per run as a
   sanity check that the simulator itself is fast.

   Tests are built inside [all] so the input size respects [Exp.scaled]
   (run modes are parsed after module initialisation). *)

open Bechamel
open Toolkit

let icmp = Exp.icmp
let machine = Exp.default_machine
let seed = 5

let make_tests ~n =
  let fresh_input () =
    let ctx : int Em.Ctx.t = Em.Ctx.create (Exp.params machine) in
    Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n
  in
  let spec = { Core.Problem.n; k = 16; a = n / 64; b = n / 4 } in
  [
    Test.make ~name:"external-sort"
      (Staged.stage (fun () ->
           let v = fresh_input () in
           Em.Vec.free (Emalg.External_sort.sort icmp v)));
    Test.make ~name:"em-select (median)"
      (Staged.stage (fun () ->
           let v = fresh_input () in
           ignore (Emalg.Em_select.select icmp v ~rank:(n / 2))));
    Test.make ~name:"memory-splitters"
      (Staged.stage (fun () ->
           let v = fresh_input () in
           ignore (Quantile.Mem_splitters.memory_splitters icmp v)));
    (let ranks = Array.init 8 (fun i -> (i + 1) * (n / 8)) in
     Test.make ~name:"multi-select (K=8)"
       (Staged.stage (fun () ->
            let v = fresh_input () in
            ignore (Core.Multi_select.select icmp v ~ranks))));
    (let sizes = Array.make 16 (n / 16) in
     Test.make ~name:"multi-partition (K=16)"
       (Staged.stage (fun () ->
            let v = fresh_input () in
            Array.iter Em.Vec.free (Core.Multi_partition.partition_sizes icmp v ~sizes))));
    Test.make ~name:"two-sided splitters"
      (Staged.stage (fun () ->
           let v = fresh_input () in
           Em.Vec.free (Core.Splitters.solve icmp v spec)));
    Test.make ~name:"two-sided partitioning"
      (Staged.stage (fun () ->
           let v = fresh_input () in
           Array.iter Em.Vec.free (Core.Partitioning.solve icmp v spec)));
  ]

let all () =
  let n = Exp.scaled (1 lsl 14) in
  Exp.section
    (Printf.sprintf
       "Timing — host wall-clock per run (Bechamel, simulated N=%d, %s)" n
       (Exp.machine_name machine));
  let tests = Test.make_grouped ~name:"repro" (make_tests ~n) in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates =
    Hashtbl.fold
      (fun name ols acc ->
        let time_ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | Some [] | None -> nan
        in
        (name, time_ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Exp.table ~header:[ "benchmark"; "monotonic clock" ]
    (List.map (fun (name, t) -> [ name; Printf.sprintf "%.3f ms/run" (t /. 1e6) ]) estimates);
  (* Timing rows carry only the wall-clock estimate: no simulated I/O is
     measured here, so the cost fields are null in the shared schema. *)
  Exp.write_artifact ~bench:"timing"
    (List.map
       (fun (name, t) ->
         Exp.Obj
           [
             ("row", Exp.Str "timing");
             ("label", Exp.Str name);
             ( "geometry",
               Exp.Obj
                 [
                   ("n", Exp.Int n);
                   ("mem", Exp.Int machine.Exp.mem);
                   ("block", Exp.Int machine.Exp.block);
                 ] );
             ("measured", Exp.Null);
             ("predicted", Exp.Null);
             ("ratio", Exp.Null);
             ("seeks", Exp.Null);
             ("wall_ns", Exp.Int (int_of_float t));
           ])
       estimates)
