(* Wall-clock micro-benchmarks (Bechamel): one Test per core algorithm,
   run once per storage backend (sim / file / file-async / cached).  The
   primary metric of the reproduction is the simulated I/O count (see
   Table1 / Figures); this section reports host CPU time per run as a
   sanity check that the simulator itself is fast, and as the only place
   where the backends actually differ — counted I/Os are identical on all
   of them, but a file-backed run pays real seeks and marshalling, and the
   async assembly may only move wall time.

   The section also measures the one number async execution is allowed to
   change: [async_file_speedup], the ratio of async to sync wall time for
   an external sort on a D=4 file backend with a modeled per-I/O device
   latency (the same latency armed on both sides).  The ratio is gated in
   test/golden/ratios.expected — if overlapping I/O across the worker
   domains ever stops paying, the bench fails.

   Tests are built inside [all] so the input size respects [Exp.scaled]
   (run modes are parsed after module initialisation). *)

open Bechamel
open Toolkit

let icmp = Exp.icmp
let machine = Exp.default_machine
let seed = 5

let backend_specs =
  [
    ("sim", Em.Backend.Sim, false);
    ("file", Em.Backend.File, false);
    ("file-async", Em.Backend.File, true);
    ("cached", Em.Backend.Cached Em.Backend.Sim, false);
  ]

let make_tests ~n ~backend ~async =
  (* Every run drives a fresh machine and closes it before returning:
     file-backed runs hold an open fd each, and Bechamel does far more runs
     between GC cycles than the fd ulimit allows.  (Async machines share
     the global worker pool; closing the ctx awaits its in-flight I/O.) *)
  let with_ctx f =
    let ctx : int Em.Ctx.t = Em.Ctx.create ~backend ~async (Exp.params machine) in
    Fun.protect
      ~finally:(fun () -> Em.Ctx.close ctx)
      (fun () -> f (Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n))
  in
  let spec = { Core.Problem.n; k = 16; a = n / 64; b = n / 4 } in
  [
    Test.make ~name:"external-sort"
      (Staged.stage (fun () ->
           with_ctx (fun v -> Em.Vec.free (Emalg.External_sort.sort icmp v))));
    Test.make ~name:"em-select (median)"
      (Staged.stage (fun () ->
           with_ctx (fun v -> ignore (Emalg.Em_select.select icmp v ~rank:(n / 2)))));
    Test.make ~name:"memory-splitters"
      (Staged.stage (fun () ->
           with_ctx (fun v -> ignore (Quantile.Mem_splitters.memory_splitters icmp v))));
    (let ranks = Array.init 8 (fun i -> (i + 1) * (n / 8)) in
     Test.make ~name:"multi-select (K=8)"
       (Staged.stage (fun () ->
            with_ctx (fun v -> ignore (Core.Multi_select.select icmp v ~ranks)))));
    (let sizes = Array.make 16 (n / 16) in
     Test.make ~name:"multi-partition (K=16)"
       (Staged.stage (fun () ->
            with_ctx (fun v ->
                Array.iter Em.Vec.free (Core.Multi_partition.partition_sizes icmp v ~sizes)))));
    Test.make ~name:"two-sided splitters"
      (Staged.stage (fun () ->
           with_ctx (fun v -> Em.Vec.free (Core.Splitters.solve icmp v spec))));
    Test.make ~name:"two-sided partitioning"
      (Staged.stage (fun () ->
           with_ctx (fun v -> Array.iter Em.Vec.free (Core.Partitioning.solve icmp v spec))));
  ]

(* One full Bechamel pass over the suite on [backend]; returns
   [(test name, ns/run)] sorted by name. *)
let estimate_backend ~n (backend, async) =
  let tests = Test.make_grouped ~name:"repro" (make_tests ~n ~backend ~async) in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let time_ns =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | Some [] | None -> nan
      in
      (name, time_ns) :: acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- the async speedup gate ----

   Sync and async runs are armed with the *same* modeled device latency
   (every raw slot access sleeps [gate_latency_us]); the sync assembly pays
   it inline on the caller's domain while the async one overlaps it across
   D=4 worker domains (staged prefetch reads, write-behind stores).  The
   clock stops only after [Ctx.flush] — write-behind must retire, async
   gets no credit for unfinished work.  Wall time is the best of
   [gate_runs] so a CI scheduling hiccup cannot flip the gate. *)

let gate_latency_us = 150.
let gate_disks = 4
let gate_runs = 3

let sort_wall ~n ~async =
  let delay () = Unix.sleepf (gate_latency_us *. 1e-6) in
  let best = ref infinity in
  for _ = 1 to gate_runs do
    let ctx : int Em.Ctx.t =
      Em.Ctx.create ~backend:Em.Backend.File ~disks:gate_disks ~async
        ~file_delay:delay (Exp.params machine)
    in
    Fun.protect
      ~finally:(fun () -> Em.Ctx.close ctx)
      (fun () ->
        let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n in
        let t0 = Unix.gettimeofday () in
        let sorted = Emalg.External_sort.sort icmp v in
        Em.Ctx.flush ctx;
        let t = Unix.gettimeofday () -. t0 in
        Em.Vec.free sorted;
        if t < !best then best := t)
  done;
  !best

let async_speedup ~n =
  let sync = sort_wall ~n ~async:false in
  let asyn = sort_wall ~n ~async:true in
  (sync, asyn, asyn /. sync)

let all () =
  let n = Exp.scaled (1 lsl 14) in
  Exp.section
    (Printf.sprintf
       "Timing — host wall-clock per run by backend (Bechamel, simulated N=%d, %s)" n
       (Exp.machine_name machine));
  let per_backend =
    List.map
      (fun (bname, spec, async) -> (bname, estimate_backend ~n (spec, async)))
      backend_specs
  in
  let sim = List.assoc "sim" per_backend in
  let time_of bname name =
    match List.assoc_opt name (List.assoc bname per_backend) with
    | Some t -> t
    | None -> nan
  in
  Exp.table
    ~header:("benchmark" :: List.map (fun (b, _, _) -> b ^ " (ms/run)") backend_specs)
    (List.map
       (fun (name, _) ->
         name
         :: List.map
              (fun (b, _, _) -> Printf.sprintf "%.3f" (time_of b name /. 1e6))
              backend_specs)
       sim);
  let wall_sync, wall_async, ratio = async_speedup ~n in
  Exp.section
    (Printf.sprintf
       "Async speedup gate — external-sort on file, D=%d, %.0fus/I-O modeled latency"
       gate_disks gate_latency_us);
  Exp.table
    ~header:[ "metric"; "sync (ms)"; "async (ms)"; "async/sync" ]
    [
      [
        "external-sort wall";
        Printf.sprintf "%.1f" (wall_sync *. 1e3);
        Printf.sprintf "%.1f" (wall_async *. 1e3);
        Printf.sprintf "%.3f" ratio;
      ];
    ];
  (* Timing rows carry wall-clock estimates only — no simulated I/O is
     measured here, so none of the table1 cost fields appear.  [wall_ns]
     stays the sim figure (the historical column); the per-backend columns
     ride alongside.  The gate row records the speedup measurement that
     ratios.expected bounds. *)
  let geometry =
    Exp.Obj
      [
        ("n", Exp.Int n);
        ("mem", Exp.Int machine.Exp.mem);
        ("block", Exp.Int machine.Exp.block);
      ]
  in
  Exp.write_artifact ~bench:"timing"
    (List.map
       (fun (name, t_sim) ->
         Exp.Obj
           [
             ("row", Exp.Str "timing");
             ("label", Exp.Str name);
             ("geometry", geometry);
             ("wall_ns", Exp.Int (int_of_float t_sim));
             ("wall_ns_sim", Exp.Int (int_of_float t_sim));
             ("wall_ns_file", Exp.Int (int_of_float (time_of "file" name)));
             ("wall_ns_file_async", Exp.Int (int_of_float (time_of "file-async" name)));
             ("wall_ns_cached", Exp.Int (int_of_float (time_of "cached" name)));
           ])
       sim
    @ [
        Exp.Obj
          [
            ("row", Exp.Str "timing");
            ("label", Exp.Str "async-file-speedup (external-sort)");
            ( "geometry",
              Exp.Obj
                [
                  ("n", Exp.Int n);
                  ("mem", Exp.Int machine.Exp.mem);
                  ("block", Exp.Int machine.Exp.block);
                  ("disks", Exp.Int gate_disks);
                  ("latency_us", Exp.Float gate_latency_us);
                ] );
            ("wall_ns_file", Exp.Int (int_of_float (wall_sync *. 1e9)));
            ("wall_ns_file_async", Exp.Int (int_of_float (wall_async *. 1e9)));
            ("ratio", Exp.Float ratio);
          ];
      ]);
  [ ("async_file_speedup", ratio) ]
