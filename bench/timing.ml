(* Wall-clock micro-benchmarks (Bechamel): one Test per core algorithm,
   run once per storage backend (sim / file / cached).  The primary metric
   of the reproduction is the simulated I/O count (see Table1 / Figures);
   this section reports host CPU time per run as a sanity check that the
   simulator itself is fast, and as the only place where the backends
   actually differ — counted I/Os are identical on all of them, but a
   file-backed run pays real seeks and marshalling.

   Tests are built inside [all] so the input size respects [Exp.scaled]
   (run modes are parsed after module initialisation). *)

open Bechamel
open Toolkit

let icmp = Exp.icmp
let machine = Exp.default_machine
let seed = 5

let backend_specs =
  [
    ("sim", Em.Backend.Sim);
    ("file", Em.Backend.File);
    ("cached", Em.Backend.Cached Em.Backend.Sim);
  ]

let make_tests ~n ~backend =
  (* Every run drives a fresh machine and closes it before returning:
     file-backed runs hold an open fd each, and Bechamel does far more runs
     between GC cycles than the fd ulimit allows. *)
  let with_ctx f =
    let ctx : int Em.Ctx.t = Em.Ctx.create ~backend (Exp.params machine) in
    Fun.protect
      ~finally:(fun () -> Em.Ctx.close ctx)
      (fun () -> f (Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n))
  in
  let spec = { Core.Problem.n; k = 16; a = n / 64; b = n / 4 } in
  [
    Test.make ~name:"external-sort"
      (Staged.stage (fun () ->
           with_ctx (fun v -> Em.Vec.free (Emalg.External_sort.sort icmp v))));
    Test.make ~name:"em-select (median)"
      (Staged.stage (fun () ->
           with_ctx (fun v -> ignore (Emalg.Em_select.select icmp v ~rank:(n / 2)))));
    Test.make ~name:"memory-splitters"
      (Staged.stage (fun () ->
           with_ctx (fun v -> ignore (Quantile.Mem_splitters.memory_splitters icmp v))));
    (let ranks = Array.init 8 (fun i -> (i + 1) * (n / 8)) in
     Test.make ~name:"multi-select (K=8)"
       (Staged.stage (fun () ->
            with_ctx (fun v -> ignore (Core.Multi_select.select icmp v ~ranks)))));
    (let sizes = Array.make 16 (n / 16) in
     Test.make ~name:"multi-partition (K=16)"
       (Staged.stage (fun () ->
            with_ctx (fun v ->
                Array.iter Em.Vec.free (Core.Multi_partition.partition_sizes icmp v ~sizes)))));
    Test.make ~name:"two-sided splitters"
      (Staged.stage (fun () ->
           with_ctx (fun v -> Em.Vec.free (Core.Splitters.solve icmp v spec))));
    Test.make ~name:"two-sided partitioning"
      (Staged.stage (fun () ->
           with_ctx (fun v -> Array.iter Em.Vec.free (Core.Partitioning.solve icmp v spec))));
  ]

(* One full Bechamel pass over the suite on [backend]; returns
   [(test name, ns/run)] sorted by name. *)
let estimate_backend ~n backend =
  let tests = Test.make_grouped ~name:"repro" (make_tests ~n ~backend) in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      let time_ns =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) -> t
        | Some [] | None -> nan
      in
      (name, time_ns) :: acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let all () =
  let n = Exp.scaled (1 lsl 14) in
  Exp.section
    (Printf.sprintf
       "Timing — host wall-clock per run by backend (Bechamel, simulated N=%d, %s)" n
       (Exp.machine_name machine));
  let per_backend =
    List.map (fun (bname, spec) -> (bname, estimate_backend ~n spec)) backend_specs
  in
  let sim = List.assoc "sim" per_backend in
  let time_of bname name =
    match List.assoc_opt name (List.assoc bname per_backend) with
    | Some t -> t
    | None -> nan
  in
  Exp.table
    ~header:("benchmark" :: List.map (fun (b, _) -> b ^ " (ms/run)") backend_specs)
    (List.map
       (fun (name, _) ->
         name
         :: List.map
              (fun (b, _) -> Printf.sprintf "%.3f" (time_of b name /. 1e6))
              backend_specs)
       sim);
  (* Timing rows carry only wall-clock estimates: no simulated I/O is
     measured here, so the cost fields are null in the shared schema.
     [wall_ns] stays the sim figure (the historical column); the
     per-backend columns ride alongside. *)
  Exp.write_artifact ~bench:"timing"
    (List.map
       (fun (name, t_sim) ->
         Exp.Obj
           [
             ("row", Exp.Str "timing");
             ("label", Exp.Str name);
             ( "geometry",
               Exp.Obj
                 [
                   ("n", Exp.Int n);
                   ("mem", Exp.Int machine.Exp.mem);
                   ("block", Exp.Int machine.Exp.block);
                 ] );
             ("measured", Exp.Null);
             ("predicted", Exp.Null);
             ("ratio", Exp.Null);
             ("seeks", Exp.Null);
             ("wall_ns", Exp.Int (int_of_float t_sim));
             ("wall_ns_sim", Exp.Int (int_of_float t_sim));
             ("wall_ns_file", Exp.Int (int_of_float (time_of "file" name)));
             ("wall_ns_cached", Exp.Int (int_of_float (time_of "cached" name)));
           ])
       sim)
