(* Derived figures: the behaviours the paper's theory implies but never plots
   (it has no empirical section).  Each figure prints a series and a
   one-line interpretation, and contributes its measured points to the
   BENCH_figures.json artifact. *)

let icmp = Exp.icmp
let seed = 23

(* Points without a matching Table 1 formula publish predicted = null. *)
let point ~fig ~label ~machine ~n ?extra_geometry ?predicted m =
  Exp.artifact_row ~row:fig ~label ~machine ~n ?extra_geometry ?predicted m

(* F-SUB — the headline observation after Theorem 1: right-grounded
   splitters cost o(N/B) when aK is small: the algorithm does not even read
   most of the input. *)
let sublinear () =
  let n = Exp.scaled (1 lsl 20) and k = 16 in
  let machine = Exp.default_machine in
  let p = Exp.params machine in
  Exp.section
    (Printf.sprintf
       "Figure SUB — sublinear right-grounded splitters   [N=%d, K=%d, %s]" n k
       (Exp.machine_name machine));
  let one_scan = n / machine.Exp.block in
  let artifacts = ref [] in
  let rows =
    List.filter_map
      (fun a ->
        let spec = { Core.Problem.n; k; a; b = n } in
        if Result.is_error (Core.Problem.validate spec) then None
        else begin
          let m =
            Exp.measure ~machine ~seed ~n (fun _ctx v ->
                let out = Core.Splitters.right_grounded icmp v spec in
                let input = Em.Vec.Oracle.to_array v in
                Exp.expect_ok "splitters"
                  (Core.Verify.splitters icmp ~input spec (Em.Vec.Oracle.to_array out)))
          in
          artifacts :=
            point ~fig:"sublinear" ~label:(Printf.sprintf "a=%d" a) ~machine ~n
              ~extra_geometry:[ ("k", k); ("a", a); ("b", n) ]
              ~predicted:(Core.Bounds.splitters_right_upper p spec)
              m
            :: !artifacts;
          Some
            [
              Printf.sprintf "a=%d" a;
              string_of_int m.Exp.ios;
              Printf.sprintf "%.4f" (float_of_int m.Exp.ios /. float_of_int one_scan);
            ]
        end)
      [ 2; 8; 64; 512; 4_096; 16_384; n / k ]
  in
  Exp.table ~header:[ "a"; "measured I/O"; "fraction of one scan" ] rows;
  Printf.printf
    "  => one full scan of the input is %d I/Os; small a stays far below it.\n"
    one_scan;
  List.rev !artifacts

(* F-SEP — Section 1.3: multi-selection (Theorem 4) is never more expensive
   than multi-partition at the same K, and the bounds separate at small K
   (lg(K/B) vs lg(K)). *)
let separation () =
  let n = Exp.scaled (1 lsl 18) in
  let machine = Exp.default_machine in
  let p = Exp.params machine in
  Exp.section
    (Printf.sprintf
       "Figure SEP — multi-selection vs multi-partition   [N=%d, %s]" n
       (Exp.machine_name machine));
  let artifacts = ref [] in
  let rows =
    List.filter_map
      (fun k ->
        if k > n then None
        else begin
          let ranks = Array.init k (fun i -> (i + 1) * (n / k)) in
          let ms =
            Exp.measure ~machine ~seed ~n (fun _ctx v ->
                let results = Core.Multi_select.select icmp v ~ranks in
                let input = Em.Vec.Oracle.to_array v in
                Exp.expect_ok "multi-select"
                  (Core.Verify.multi_select icmp ~input ~ranks results))
          in
          let mp =
            Exp.measure ~machine ~seed ~n (fun _ctx v ->
                let sizes = Array.make k (n / k) in
                let parts = Core.Multi_partition.partition_sizes icmp v ~sizes in
                Array.iter Em.Vec.free parts)
          in
          artifacts :=
            point ~fig:"separation_multi_partition" ~label:(Printf.sprintf "K=%d" k)
              ~machine ~n ~extra_geometry:[ ("k", k) ]
              ~predicted:(Core.Bounds.multi_partition p ~n ~k)
              mp
            :: point ~fig:"separation_multi_select" ~label:(Printf.sprintf "K=%d" k)
                 ~machine ~n ~extra_geometry:[ ("k", k) ]
                 ~predicted:(Core.Bounds.multi_select p ~n ~k)
                 ms
            :: !artifacts;
          Some
            [
              string_of_int k;
              string_of_int ms.Exp.ios;
              Exp.fmt_f (Core.Bounds.multi_select p ~n ~k);
              string_of_int mp.Exp.ios;
              Exp.fmt_f (Core.Bounds.multi_partition p ~n ~k);
            ]
        end)
      [ 4; 16; 64; 256; 1_024; 4_096 ]
  in
  Exp.table
    ~header:
      [ "K"; "multi-select I/O"; "MS bound"; "multi-partition I/O"; "MP bound" ]
    rows;
  Printf.printf
    "  => the bound columns separate at small K (lg K/B vs lg K) and meet at large K.\n";
  Printf.printf
    "     Measured costs carry the base case's constants (see EXPERIMENTS.md):\n";
  Printf.printf
    "     the separation is asymptotic, not a constant-factor win at this scale.\n";
  List.rev !artifacts

(* F-APPROX — the introduction's motivation: accepting slack [a, b] around
   the perfectly balanced N/K makes both problems cheaper. *)
let slack () =
  let n = Exp.scaled (1 lsl 18) and k = 64 in
  let machine = Exp.default_machine in
  Exp.section
    (Printf.sprintf
       "Figure APPROX — price of balance: slack sweep   [N=%d, K=%d, %s]" n k
       (Exp.machine_name machine));
  let even = n / k in
  let artifacts = ref [] in
  let rows =
    List.map
      (fun s ->
        let a = max 1 (even / s) and b = min n (even * s) in
        let spec = { Core.Problem.n; k; a; b } in
        let spl =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              let out = Core.Splitters.solve icmp v spec in
              let input = Em.Vec.Oracle.to_array v in
              Exp.expect_ok "splitters"
                (Core.Verify.splitters icmp ~input spec (Em.Vec.Oracle.to_array out)))
        in
        let par =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              let parts = Core.Partitioning.solve icmp v spec in
              let input = Em.Vec.Oracle.to_array v in
              Exp.expect_ok "partitioning"
                (Core.Verify.partitioning icmp ~input spec (Array.map Em.Vec.Oracle.to_array parts)))
        in
        let geom = [ ("k", k); ("a", a); ("b", b) ] in
        artifacts :=
          point ~fig:"slack_partitioning" ~label:(Printf.sprintf "%dx" s) ~machine ~n
            ~extra_geometry:geom par
          :: point ~fig:"slack_splitters" ~label:(Printf.sprintf "%dx" s) ~machine ~n
               ~extra_geometry:geom spl
          :: !artifacts;
        [
          Printf.sprintf "%dx" s;
          Printf.sprintf "[%d, %d]" a b;
          string_of_int spl.Exp.ios;
          string_of_int par.Exp.ios;
        ])
      [ 1; 2; 4; 16; 64 ]
  in
  Exp.table ~header:[ "slack"; "[a, b]"; "splitters I/O"; "partitioning I/O" ] rows;
  Printf.printf
    "  => large slack collapses the cost (the paper's motivation); moderate slack\n";
  Printf.printf
    "     keeps the even-quantile shortcut, so the curve is a step, not a slope.\n";
  List.rev !artifacts

(* F-SCALE — cost per scan across input sizes: the optimal algorithms stay
   (near-)flat while the sort baseline grows with lg_{M/B}(N/B). *)
let scaling () =
  let machine = Exp.default_machine in
  Exp.section
    (Printf.sprintf "Figure SCALE — scans used vs input size   [%s]"
       (Exp.machine_name machine));
  let per_scan n ios = float_of_int ios /. (float_of_int n /. float_of_int machine.Exp.block) in
  let sizes =
    List.sort_uniq Int.compare
      (List.map Exp.scaled [ 1 lsl 14; 1 lsl 16; 1 lsl 18; 1 lsl 20 ])
  in
  let artifacts = ref [] in
  let rows =
    List.map
      (fun n ->
        let k = 8 in
        let ranks = Array.init k (fun i -> (i + 1) * (n / k)) in
        let ms =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              ignore (Core.Multi_select.select icmp v ~ranks))
        in
        let left_spec = { Core.Problem.n; k = 16; a = 0; b = n / 4 } in
        let ls =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              Em.Vec.free (Core.Splitters.left_grounded icmp v left_spec))
        in
        let sort =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              Em.Vec.free (Emalg.External_sort.sort icmp v))
        in
        let lbl = Printf.sprintf "N=%d" n in
        artifacts :=
          point ~fig:"scaling_sort" ~label:lbl ~machine ~n sort
          :: point ~fig:"scaling_left_splitters" ~label:lbl ~machine ~n
               ~extra_geometry:[ ("k", 16); ("a", 0); ("b", n / 4) ]
               ls
          :: point ~fig:"scaling_multi_select" ~label:lbl ~machine ~n
               ~extra_geometry:[ ("k", k) ]
               ms
          :: !artifacts;
        [
          string_of_int n;
          Exp.fmt_ratio (per_scan n ms.Exp.ios);
          Exp.fmt_ratio (per_scan n ls.Exp.ios);
          Exp.fmt_ratio (per_scan n sort.Exp.ios);
        ])
      sizes
  in
  Exp.table
    ~header:
      [ "N"; "multi-select (K=8) scans"; "left splitters (b=N/4) scans"; "sort scans" ]
    rows;
  Printf.printf
    "  => columns are I/Os divided by N/B.  The sort column steps up with each extra\n";
  Printf.printf
    "     merge pass (lg_{M/B}(N/B)); the multi-select column grows more slowly — its\n";
  Printf.printf
    "     residual growth is the Θ(M)-splitter substitute's distribution depth\n";
  Printf.printf
    "     (linear only for N = O(M^2); DESIGN.md section 2).\n";
  List.rev !artifacts

(* F-INTER — Lemma 6: intermixed selection is linear in |D|, independent of
   the number of groups L. *)
let intermixed () =
  let machine = Exp.default_machine in
  let total = Exp.scaled (1 lsl 17) in
  Exp.section
    (Printf.sprintf "Figure INTER — intermixed selection: L independence   [|D|=%d, %s]"
       total (Exp.machine_name machine));
  let ctx_probe : int Em.Ctx.t = Em.Ctx.create (Exp.params machine) in
  let lmax = Core.Intermixed.max_groups ctx_probe in
  let rng = Core.Workload.Rng.create 99 in
  let artifacts = ref [] in
  let rows =
    List.filter_map
      (fun l ->
        if l > lmax then None
        else begin
          let pairs =
            Array.init total (fun i ->
                let g = if i < l then i else Core.Workload.Rng.int rng l in
                (Core.Workload.Rng.int rng 1_000_000, g))
          in
          let counts = Array.make l 0 in
          Array.iter (fun (_, g) -> counts.(g) <- counts.(g) + 1) pairs;
          let targets = Array.map (fun c -> (c + 1) / 2) counts in
          let trace = Em.Trace.create () in
          let seek_sink, seeks =
            Em.Trace.counter (fun e -> e.Em.Trace.locality = Em.Trace.Random)
          in
          Em.Trace.add_sink trace seek_sink;
          let ctx : int Em.Ctx.t = Em.Ctx.create ~trace (Exp.params machine) in
          let pctx : (int * int) Em.Ctx.t = Em.Ctx.linked ctx in
          let d = Em.Vec.of_array pctx pairs in
          let t0 = Unix.gettimeofday () in
          let (), cost =
            Em.Ctx.measured ctx (fun () -> ignore (Core.Intermixed.select icmp d ~targets))
          in
          let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
          let ios = Em.Stats.delta_ios cost in
          let m =
            {
              Exp.ios;
              reads = cost.Em.Stats.d_reads;
              writes = cost.Em.Stats.d_writes;
              rounds = cost.Em.Stats.d_rounds;
              comparisons = cost.Em.Stats.d_comparisons;
              peak_mem = ctx.Em.Ctx.stats.Em.Stats.mem_peak;
              random_ios = seeks ();
              wall_ns;
            }
          in
          artifacts :=
            point ~fig:"intermixed" ~label:(Printf.sprintf "L=%d" l) ~machine ~n:total
              ~extra_geometry:[ ("groups", l) ]
              m
            :: !artifacts;
          Some
            [
              string_of_int l;
              string_of_int ios;
              Exp.fmt_ratio
                (float_of_int ios
                /. (float_of_int total /. float_of_int machine.Exp.block));
            ]
        end)
      [ 1; 2; 4; 8; 16; lmax ]
  in
  Exp.table ~header:[ "L (groups)"; "measured I/O"; "scans of D" ] rows;
  Printf.printf "  => cost is O(|D|/B) regardless of how many selection threads run.\n";
  List.rev !artifacts

(* F-MP-GAP — Section 1.2: before Theorem 4, the best multi-selection upper
   bound went through multi-partition; the new algorithm closes the gap. *)
let old_vs_new () =
  let n = Exp.scaled (1 lsl 18) in
  let machine = Exp.default_machine in
  let p = Exp.params machine in
  Exp.section
    (Printf.sprintf
       "Figure GAP — multi-selection: Theorem 4 vs the old multi-partition route   [N=%d, %s]"
       n (Exp.machine_name machine));
  let artifacts = ref [] in
  let rows =
    List.map
      (fun k ->
        let ranks = Array.init k (fun i -> (i + 1) * (n / k)) in
        let new_way =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              ignore (Core.Multi_select.select icmp v ~ranks))
        in
        let old_way =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              (* Old route: multi-partition at the ranks, then report each
                 partition's maximum (one extra scan). *)
              let interior = Array.sub ranks 0 (Array.length ranks - 1) in
              let ictx : int Em.Ctx.t = Em.Ctx.linked (Em.Vec.ctx v) in
              let bounds = Emalg.Scan.vec_of_array_io ictx interior in
              let parts = Core.Multi_partition.partition icmp v ~bounds in
              Array.iter
                (fun part ->
                  let best = ref None in
                  Emalg.Scan.iter
                    (fun e ->
                      match !best with
                      | Some b when icmp e b <= 0 -> ()
                      | _ -> best := Some e)
                    part;
                  Em.Vec.free part)
                parts;
              Em.Vec.free bounds)
        in
        artifacts :=
          point ~fig:"gap_via_multi_partition" ~label:(Printf.sprintf "K=%d" k)
            ~machine ~n ~extra_geometry:[ ("k", k) ]
            old_way
          :: point ~fig:"gap_theorem4" ~label:(Printf.sprintf "K=%d" k) ~machine ~n
               ~extra_geometry:[ ("k", k) ]
               ~predicted:(Core.Bounds.multi_select p ~n ~k)
               new_way
          :: !artifacts;
        [
          string_of_int k;
          string_of_int new_way.Exp.ios;
          string_of_int old_way.Exp.ios;
          Exp.fmt_ratio (float_of_int old_way.Exp.ios /. float_of_int new_way.Exp.ios);
        ])
      [ 4; 16; 64; 256 ]
  in
  Exp.table
    ~header:[ "K"; "Theorem 4 I/O"; "via multi-partition I/O"; "old / new" ]
    rows;
  Printf.printf
    "  => at simulator scale the old route can be cheaper in constants; Theorem 4's\n";
  Printf.printf
    "     advantage is the lg(K/B)-vs-lg(K) factor in the bounds, which dominates\n";
  Printf.printf
    "     only once multi-partition needs deeper recursion (K >> M/B).\n";
  List.rev !artifacts

(* F-FLOOR — the lower-bound proofs, executed: the unconditional counting
   floors of Sections 2/3 sit below the measured cost of our algorithms,
   which sit below a constant times the Table 1 upper-bound formulas. *)
let floors () =
  let n = Exp.scaled (1 lsl 18) in
  let machine = Exp.default_machine in
  let p = Exp.params machine in
  Exp.section
    (Printf.sprintf
       "Figure FLOOR — counting floors vs measured vs bound formulas   [N=%d, %s]" n
       (Exp.machine_name machine));
  let artifacts = ref [] in
  let rows =
    List.filter_map
      (fun (label, spec, solve) ->
        if Result.is_error (Core.Problem.validate spec) then None
        else begin
          let m =
            Exp.measure ~machine ~seed ~n (fun _ctx v -> (solve v spec : unit))
          in
          let floor, lb, ub =
            match Core.Problem.classify spec with
            | Core.Problem.Right_grounded ->
                ( Core.Counting.splitters_right_floor p spec,
                  Core.Bounds.splitters_right_lower p spec,
                  Core.Bounds.splitters_right_upper p spec )
            | Core.Problem.Left_grounded | Core.Problem.Two_sided
            | Core.Problem.Unconstrained ->
                ( Core.Counting.splitters_left_floor p spec,
                  Core.Bounds.splitters_left_lower p spec,
                  Core.Bounds.splitters_left_upper p spec )
          in
          artifacts :=
            point ~fig:"floors" ~label ~machine ~n
              ~extra_geometry:
                [
                  ("k", spec.Core.Problem.k);
                  ("a", spec.Core.Problem.a);
                  ("b", spec.Core.Problem.b);
                ]
              ~predicted:ub m
            :: !artifacts;
          Some
            [
              label;
              Exp.fmt_f floor;
              Exp.fmt_f lb;
              string_of_int m.Exp.ios;
              Exp.fmt_f ub;
            ]
        end)
      [
        ( "right a=64 K=256",
          { Core.Problem.n; k = 256; a = 64; b = n },
          fun v spec -> Em.Vec.free (Core.Splitters.right_grounded icmp v spec) );
        ( "right a=512 K=64",
          { Core.Problem.n; k = 64; a = 512; b = n },
          fun v spec -> Em.Vec.free (Core.Splitters.right_grounded icmp v spec) );
        ( "left b=N/16 K=64",
          { Core.Problem.n; k = 64; a = 0; b = n / 16 },
          fun v spec -> Em.Vec.free (Core.Splitters.left_grounded icmp v spec) );
        ( "left b=N/4 K=16",
          { Core.Problem.n; k = 16; a = 0; b = n / 4 },
          fun v spec -> Em.Vec.free (Core.Splitters.left_grounded icmp v spec) );
      ]
  in
  Exp.table
    ~header:[ "instance"; "counting floor"; "Table 1 LB"; "measured"; "Table 1 UB" ]
    rows;
  let k = 1_024 in
  let mp =
    Exp.measure ~machine ~seed ~n (fun _ctx v ->
        Array.iter Em.Vec.free
          (Core.Multi_partition.partition_sizes icmp v ~sizes:(Array.make k (n / k))))
  in
  Printf.printf
    "  precise %d-partitioning: counting floor %.1f <= measured %d <= 20 * formula %.1f\n"
    k
    (Core.Counting.precise_partition_floor p ~n ~k)
    mp.Exp.ios
    (Core.Bounds.multi_partition p ~n ~k);
  Printf.printf
    "  => every measured cost sits above the unconditional floor and below a\n";
  Printf.printf "     constant times the bound formula: the sandwich of Table 1, executed.\n";
  List.rev
    (point ~fig:"floors_precise_partition" ~label:(Printf.sprintf "K=%d" k) ~machine ~n
       ~extra_geometry:[ ("k", k) ]
       ~predicted:(Core.Bounds.multi_partition p ~n ~k)
       mp
    :: !artifacts)

(* F-RED — the Section 3 reduction measured in the harness: precise
   partitioning = approximate partitioning + O(N/B), the identity behind
   Theorem 3's lower-bound transfer. *)
let reduction () =
  let n = Exp.scaled (1 lsl 18) in
  let machine = Exp.default_machine in
  Exp.section
    (Printf.sprintf
       "Figure RED — Section 3 reduction: precise = approximate + O(N/B)   [N=%d, %s]" n
       (Exp.machine_name machine));
  let artifacts = ref [] in
  let rows =
    List.map
      (fun chunk ->
        let reduction =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              Array.iter Em.Vec.free
                (Core.Reduction.precise_by_approximate icmp v ~chunk))
        in
        let approx =
          Exp.measure ~machine ~seed ~n (fun _ctx v ->
              let k = (n + chunk - 1) / chunk in
              Array.iter Em.Vec.free
                (Core.Partitioning.left_grounded icmp v
                   { Core.Problem.n; k; a = 0; b = chunk }))
        in
        let post = reduction.Exp.ios - approx.Exp.ios in
        artifacts :=
          point ~fig:"reduction_approximate" ~label:(Printf.sprintf "chunk=%d" chunk)
            ~machine ~n ~extra_geometry:[ ("chunk", chunk) ]
            approx
          :: point ~fig:"reduction_precise" ~label:(Printf.sprintf "chunk=%d" chunk)
               ~machine ~n ~extra_geometry:[ ("chunk", chunk) ]
               reduction
          :: !artifacts;
        [
          string_of_int chunk;
          string_of_int approx.Exp.ios;
          string_of_int reduction.Exp.ios;
          string_of_int post;
          Exp.fmt_ratio (float_of_int post /. (float_of_int n /. float_of_int machine.Exp.block));
        ])
      [ n / 4; n / 16; n / 64 ]
  in
  Exp.table
    ~header:
      [ "chunk"; "approximate I/O"; "reduction total"; "post-pass"; "post-pass scans" ]
    rows;
  Printf.printf
    "  => the post-pass stays a bounded number of scans regardless of chunk size,\n";
  Printf.printf
    "     so any approximate-partitioning speedup would transfer to the precise\n";
  Printf.printf "     problem — which is how Theorem 3 rules such a speedup out.\n";
  List.rev !artifacts

(* F-DISKS — the Vitter-Shriver view of the same algorithms: block
   transfers are D-invariant (striping never changes which blocks move),
   so adding disks only compresses the schedule.  Rounds should track
   ios/D while the ios column stays constant down the sweep. *)
let disks_sweep () =
  let n = Exp.scaled (1 lsl 18) and k = 64 in
  let machine = Exp.default_machine in
  Exp.section
    (Printf.sprintf
       "Figure DISKS — parallel-disk rounds: D-invariant I/Os, rounds -> I/Os / D   [N=%d, %s]"
       n (Exp.machine_name machine));
  let spec = { Core.Problem.n; k; a = 0; b = n / 8 } in
  let artifacts = ref [] in
  let rows =
    List.map
      (fun d ->
        let sort =
          Exp.measure ~machine ~seed ~n ~disks:d (fun _ctx v ->
              Em.Vec.free (Emalg.External_sort.sort icmp v))
        in
        let spl =
          Exp.measure ~machine ~seed ~n ~disks:d (fun _ctx v ->
              Em.Vec.free (Core.Splitters.left_grounded icmp v spec))
        in
        let geom = [ ("disks", d) ] in
        artifacts :=
          point ~fig:"disks_splitters" ~label:(Printf.sprintf "D=%d" d) ~machine ~n
            ~extra_geometry:(geom @ [ ("k", k); ("a", 0); ("b", n / 8) ])
            spl
          :: point ~fig:"disks_sort" ~label:(Printf.sprintf "D=%d" d) ~machine ~n
               ~extra_geometry:geom sort
          :: !artifacts;
        [
          string_of_int d;
          string_of_int sort.Exp.ios;
          string_of_int sort.Exp.rounds;
          Exp.fmt_ratio
            (float_of_int sort.Exp.rounds *. float_of_int d /. float_of_int sort.Exp.ios);
          string_of_int spl.Exp.ios;
          string_of_int spl.Exp.rounds;
        ])
      [ 1; 2; 4; 8 ]
  in
  Exp.table
    ~header:
      [ "D"; "sort I/O"; "sort rounds"; "rounds x D / I/O"; "splitters I/O"; "splitters rounds" ]
    rows;
  Printf.printf
    "  => the I/O columns are constant in D (striping is transfer-preserving);\n";
  Printf.printf
    "     rounds shrink toward I/Os / D, and \"rounds x D / I/O\" near 1.00 means the\n";
  Printf.printf "     prefetch/write-behind pipelines keep all D disks busy.\n";
  List.rev !artifacts

let all () =
  (* Explicit lets keep the figures printing in order (list elements
     evaluate right-to-left). *)
  let f1 = sublinear () in
  let f2 = separation () in
  let f3 = slack () in
  let f4 = scaling () in
  let f5 = intermixed () in
  let f6 = old_vs_new () in
  let f7 = floors () in
  let f8 = reduction () in
  let f9 = disks_sweep () in
  Exp.write_artifact ~bench:"figures"
    (List.concat [ f1; f2; f3; f4; f5; f6; f7; f8; f9 ])
