(* Chaos soak: online multiselection sessions under scheduled kills and
   fault plans, gated against the crash-free oracle.

   Each config drives the same seeded select/quantile stream twice through
   [Core.Soak] — once uninterrupted, once with k kill/restore cycles (and
   optionally a seeded transient-fault plan) — and checks the
   crash-survivability contract: restored answers equal the oracle's and
   total I/Os stay within the k-crash overhead bound

     oracle + resume loads + k * (one checkpoint save + one re-sorted
                                  memory load).

   One gated ratio comes out (test/golden/ratios.expected):

   - soak_overhead: the worst chaos/allowed I/O ratio across configs — must
     stay <= 1; an answer mismatch or a memory-ledger breach forces it to
     infinity, so correctness failures trip the same gate. *)

let n_default = 1 lsl 16
let queries = 96

let configs n =
  let base = Core.Soak.default ~n ~queries in
  let crashes k = Core.Soak.spread_crashes ~queries ~k in
  let cached =
    match Em.Backend.spec_of_string "cached" with Ok s -> Some s | Error _ -> None
  in
  [
    ("soak_k1_sim", { base with Core.Soak.crash_after = crashes 1 });
    ("soak_k3_sim", { base with Core.Soak.crash_after = crashes 3 });
    ( "soak_k3_cached",
      { base with Core.Soak.crash_after = crashes 3; backend = cached } );
    ( "soak_k2_faulted",
      {
        base with
        Core.Soak.crash_after = crashes 2;
        fault_p = 1.0 /. 512.0;
        fault_seed = 7;
      } );
  ]

let all () =
  let n = Exp.scaled n_default in
  Exp.section
    (Printf.sprintf
       "Chaos soak — kills/restores vs the crash-free oracle   [N=%d, Q=%d, %s]" n
       queries
       (Exp.machine_name Exp.default_machine));
  let rows = ref [] in
  let results =
    List.map
      (fun (name, cfg) ->
        let o = Core.Soak.run cfg in
        let ratio =
          if o.Core.Soak.answers_match && o.Core.Soak.mem_ok then
            float_of_int o.Core.Soak.chaos_ios /. float_of_int o.Core.Soak.allowed_ios
          else infinity
        in
        rows :=
          Exp.Obj
            [
              ("row", Exp.Str name);
              ( "geometry",
                Exp.Obj
                  [
                    ("n", Exp.Int cfg.Core.Soak.n);
                    ("mem", Exp.Int cfg.Core.Soak.mem);
                    ("block", Exp.Int cfg.Core.Soak.block);
                    ("queries", Exp.Int cfg.Core.Soak.queries);
                    ("crashes", Exp.Int o.Core.Soak.crashes);
                    ("fault_p", Exp.Float cfg.Core.Soak.fault_p);
                  ] );
              ( "measured",
                Exp.Obj
                  [
                    ("oracle_ios", Exp.Int o.Core.Soak.oracle_ios);
                    ("chaos_ios", Exp.Int o.Core.Soak.chaos_ios);
                    ("allowed_ios", Exp.Int o.Core.Soak.allowed_ios);
                    ("saves", Exp.Int o.Core.Soak.saves);
                    ("save_ios", Exp.Int o.Core.Soak.save_ios);
                    ("loads", Exp.Int o.Core.Soak.loads);
                    ("load_ios", Exp.Int o.Core.Soak.load_ios);
                    ("resort_allowance", Exp.Int o.Core.Soak.resort_allowance);
                    ("retries", Exp.Int o.Core.Soak.retries);
                    ("answers_match", Exp.Bool o.Core.Soak.answers_match);
                    ("mem_ok", Exp.Bool o.Core.Soak.mem_ok);
                  ] );
              ("ratio", Exp.Float ratio);
            ]
          :: !rows;
        (name, o, ratio))
      (configs n)
  in
  Exp.table
    ~header:
      [ "config"; "crashes"; "oracle I/O"; "chaos I/O"; "allowed"; "ratio"; "retries"; "answers" ]
    (List.map
       (fun (name, o, ratio) ->
         [
           name;
           string_of_int o.Core.Soak.crashes;
           string_of_int o.Core.Soak.oracle_ios;
           string_of_int o.Core.Soak.chaos_ios;
           string_of_int o.Core.Soak.allowed_ios;
           Exp.fmt_ratio ratio;
           string_of_int o.Core.Soak.retries;
           (if o.Core.Soak.answers_match then "match" else "MISMATCH");
         ])
       results);
  let worst = List.fold_left (fun acc (_, _, r) -> Float.max acc r) neg_infinity results in
  Printf.printf
    "  => worst chaos/allowed ratio %.3f (crash overhead within the k-crash bound if <= 1)\n"
    worst;
  Exp.write_artifact ~bench:"soak" (List.rev !rows);
  [ ("soak_overhead", worst) ]
