(* Shared experiment harness: machine presets, measurement, table printing.

   Every experiment runs on a fresh simulated machine, counts exact I/Os,
   verifies the output against the in-memory oracle, and prints measured
   cost next to the paper's bound formula.  "ratio" columns are
   measured / bound: if the implementation matches the bound, the ratio
   stays within a small constant band across the sweep. *)

type machine = { mem : int; block : int }

let default_machine = { mem = 4096; block = 64 }
let machine_name m = Printf.sprintf "M=%d B=%d (M/B=%d)" m.mem m.block (m.mem / m.block)

let params m = Em.Params.create ~mem:m.mem ~block:m.block

(* Run modes, set by bench/main.ml's flags.  [--small] shrinks every input
   size 16x (the CI sweep); [--json] makes each section write its
   machine-readable BENCH_<section>.json artifact at the repo root. *)
let small_mode = ref false
let json_mode = ref false

let scaled n = if !small_mode then max 4096 (n lsr 4) else n

(* Every section publishes its measurements into this shared registry
   (Table 1 rows via Core.Bound_track gauges); `em_repro metrics` exposes
   the same machinery for single runs. *)
let registry = Em.Metrics.create ~namespace:"bench" ()

type measurement = {
  ios : int;
  reads : int;
  writes : int;
  rounds : int;  (* parallel I/O rounds (= ios on a single-disk machine) *)
  comparisons : int;
  peak_mem : int;
  random_ios : int;  (* I/Os the tracer classified as seeks *)
  wall_ns : int;  (* host wall-clock around the measured computation *)
}

(* Run [f] on a fresh machine loaded with a workload; measure only [f].
   A constant-space counting sink rides on the tracer so the seek profile is
   exact even for runs far longer than the default ring buffer.  [disks]
   puts D parallel disks under the machine (default 1, or EM_DISKS). *)
let measure ?(machine = default_machine) ?(kind = Core.Workload.Pi_hard) ?disks
    ~seed ~n f =
  let trace = Em.Trace.create () in
  let seeks, read_seeks =
    Em.Trace.counter (fun e -> e.Em.Trace.locality = Em.Trace.Random)
  in
  Em.Trace.add_sink trace seeks;
  let ctx : int Em.Ctx.t = Em.Ctx.create ~trace ?disks (params machine) in
  let v = Core.Workload.vec ctx kind ~seed ~n in
  let t0 = Unix.gettimeofday () in
  let (), d = Em.Ctx.measured ctx (fun () -> f ctx v) in
  let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  {
    ios = Em.Stats.delta_ios d;
    reads = d.Em.Stats.d_reads;
    writes = d.Em.Stats.d_writes;
    rounds = d.Em.Stats.d_rounds;
    comparisons = d.Em.Stats.d_comparisons;
    peak_mem = ctx.Em.Ctx.stats.Em.Stats.mem_peak;
    random_ios = read_seeks ();
    wall_ns;
  }

let icmp = Int.compare

(* ---- table printing ---- *)

let hrule width = String.make width '-'

let section title =
  Printf.printf "\n%s\n%s\n" title (hrule (String.length title))

let subsection text = Printf.printf "\n  %s\n" text

let table ~header rows =
  let ncols = List.length header in
  let cells = header :: rows in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 cells
  in
  let widths = List.init ncols width in
  let print_row row =
    let padded =
      List.map2 (fun cell w -> Printf.sprintf "%*s" w cell) row widths
    in
    Printf.printf "  %s\n" (String.concat "  " padded)
  in
  print_row header;
  Printf.printf "  %s\n" (String.concat "  " (List.map hrule widths));
  List.iter print_row rows

let fmt_f x = Printf.sprintf "%.1f" x
let fmt_ratio x = Printf.sprintf "%.2f" x

(* Flatness summary: the spread (max/min) of the measured/bound ratios. *)
let ratio_spread ratios =
  match List.filter (fun r -> Float.is_finite r && r > 0.) ratios with
  | [] -> nan
  | r :: rest ->
      let mn = List.fold_left Float.min r rest in
      let mx = List.fold_left Float.max r rest in
      mx /. mn

let verdict ~what ~spread ~limit =
  Printf.printf "  => ratio spread across the sweep: %.2fx (%s if <= %.1fx): %s\n"
    spread what limit
    (if spread <= limit then "CONSISTENT WITH THE BOUND" else "DEVIATES")

(* Verify helpers (oracle checks; zero simulated I/O). *)
let expect_ok what = function
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "verification failed (%s): %s" what msg)

(* ---- machine-readable artifacts ---- *)

(* Minimal JSON value builder: enough for the BENCH_*.json schema, with
   deterministic field order (rows keep insertion order). *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let rec json_to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (json_float x)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buf buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (json_escape k);
          Buffer.add_string buf "\":";
          json_to_buf buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 4096 in
  json_to_buf buf j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* One artifact row in the stable BENCH_*.json schema.  [row] is the
   machine key (e.g. a Table 1 row name), [label] the human-readable
   sweep-point description. *)
let artifact_row ~row ~label ~machine ~n ?(extra_geometry = []) ?(predicted = nan)
    (m : measurement) =
  Obj
    [
      ("row", Str row);
      ("label", Str label);
      ( "geometry",
        Obj
          ([ ("n", Int n); ("mem", Int machine.mem); ("block", Int machine.block) ]
          @ List.map (fun (k, v) -> (k, Int v)) extra_geometry) );
      ( "measured",
        Obj
          ([
             ("ios", Int m.ios);
             ("reads", Int m.reads);
             ("writes", Int m.writes);
           ]
          (* Rounds only when they diverge from I/Os (multi-disk runs):
             single-disk artifacts keep their exact historical shape. *)
          @ (if m.rounds < m.ios then [ ("rounds", Int m.rounds) ] else [])
          @ [
              ("comparisons", Int m.comparisons);
              ("mem_peak", Int m.peak_mem);
            ]) );
      ("predicted", Float predicted);
      ( "ratio",
        Float (if Float.is_nan predicted then nan else float_of_int m.ios /. predicted) );
      ("seeks", Int m.random_ios);
      ("wall_ns", Int m.wall_ns);
    ]

(* Write BENCH_<bench>.json at the repo root (the bench binary runs from
   the project root via `make bench*`; dune exec keeps cwd).  Only in
   [--json] mode. *)
let write_artifact ~bench rows =
  if !json_mode then begin
    let doc =
      Obj
        [
          ("bench", Str bench);
          ("schema", Int 1);
          ("small", Bool !small_mode);
          ("rows", List rows);
        ]
    in
    let path = Printf.sprintf "BENCH_%s.json" bench in
    let oc = open_out path in
    output_string oc (json_to_string doc);
    close_out oc;
    Printf.printf "  [json] wrote %s (%d rows)\n%!" path (List.length rows)
  end
