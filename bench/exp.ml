(* Shared experiment harness: machine presets, measurement, table printing.

   Every experiment runs on a fresh simulated machine, counts exact I/Os,
   verifies the output against the in-memory oracle, and prints measured
   cost next to the paper's bound formula.  "ratio" columns are
   measured / bound: if the implementation matches the bound, the ratio
   stays within a small constant band across the sweep. *)

type machine = { mem : int; block : int }

let default_machine = { mem = 4096; block = 64 }
let machine_name m = Printf.sprintf "M=%d B=%d (M/B=%d)" m.mem m.block (m.mem / m.block)

let params m = Em.Params.create ~mem:m.mem ~block:m.block

type measurement = {
  ios : int;
  reads : int;
  writes : int;
  comparisons : int;
  peak_mem : int;
  random_ios : int;  (* I/Os the tracer classified as seeks *)
}

(* Run [f] on a fresh machine loaded with a workload; measure only [f].
   A constant-space counting sink rides on the tracer so the seek profile is
   exact even for runs far longer than the default ring buffer. *)
let measure ?(machine = default_machine) ?(kind = Core.Workload.Pi_hard) ~seed ~n f =
  let trace = Em.Trace.create () in
  let seeks, read_seeks =
    Em.Trace.counter (fun e -> e.Em.Trace.locality = Em.Trace.Random)
  in
  Em.Trace.add_sink trace seeks;
  let ctx : int Em.Ctx.t = Em.Ctx.create ~trace (params machine) in
  let v = Core.Workload.vec ctx kind ~seed ~n in
  let (), d = Em.Ctx.measured ctx (fun () -> f ctx v) in
  {
    ios = Em.Stats.delta_ios d;
    reads = d.Em.Stats.d_reads;
    writes = d.Em.Stats.d_writes;
    comparisons = d.Em.Stats.d_comparisons;
    peak_mem = ctx.Em.Ctx.stats.Em.Stats.mem_peak;
    random_ios = read_seeks ();
  }

let icmp = Int.compare

(* ---- table printing ---- *)

let hrule width = String.make width '-'

let section title =
  Printf.printf "\n%s\n%s\n" title (hrule (String.length title))

let subsection text = Printf.printf "\n  %s\n" text

let table ~header rows =
  let ncols = List.length header in
  let cells = header :: rows in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 cells
  in
  let widths = List.init ncols width in
  let print_row row =
    let padded =
      List.map2 (fun cell w -> Printf.sprintf "%*s" w cell) row widths
    in
    Printf.printf "  %s\n" (String.concat "  " padded)
  in
  print_row header;
  Printf.printf "  %s\n" (String.concat "  " (List.map hrule widths));
  List.iter print_row rows

let fmt_f x = Printf.sprintf "%.1f" x
let fmt_ratio x = Printf.sprintf "%.2f" x

(* Flatness summary: the spread (max/min) of the measured/bound ratios. *)
let ratio_spread ratios =
  match List.filter (fun r -> Float.is_finite r && r > 0.) ratios with
  | [] -> nan
  | r :: rest ->
      let mn = List.fold_left Float.min r rest in
      let mx = List.fold_left Float.max r rest in
      mx /. mn

let verdict ~what ~spread ~limit =
  Printf.printf "  => ratio spread across the sweep: %.2fx (%s if <= %.1fx): %s\n"
    spread what limit
    (if spread <= limit then "CONSISTENT WITH THE BOUND" else "DEVIATES")

(* Verify helpers (oracle checks; zero simulated I/O). *)
let expect_ok what = function
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "verification failed (%s): %s" what msg)
