(* Online multiselection sessions: amortized I/Os per query under a random
   select stream, against re-running the batch engine from scratch for the
   same rank sets.

   One persistent [Emalg.Online_select] session answers Q random ranks; the
   cumulative session cost is sampled at power-of-two checkpoints.  Two
   gated ratios come out (test/golden/ratios.expected):

   - online_amortized: the worst adjacent ratio of the amortized
     I/Os-per-query curve — must stay < 1, i.e. the curve is strictly
     decreasing at every doubling (refinement is paid once and reused);
   - online_vs_batch: total session I/Os over the summed cost of re-running
     batch multiselect from scratch at every checkpoint (what a client
     without a persistent session would pay) — must stay well below 1;
   - online_drift: the worst running ratio the [Core.Drift] watchdog sees
     when fed the same stream — calibrates the serve-mode drift ceiling
     against the offline amortized envelope [sort(n) + 2q]. *)

let icmp = Exp.icmp
let n_default = 1 lsl 18
let seed = 2014
let total_queries = 256

let checkpoints =
  let rec go q acc = if q > total_queries then List.rev acc else go (2 * q) (q :: acc) in
  go 1 []

let all () =
  let machine = Exp.default_machine in
  let n = Exp.scaled n_default in
  Exp.section
    (Printf.sprintf
       "Online multiselection — amortized I/Os per query vs batch re-runs   [N=%d, Q=%d, %s]"
       n total_queries (Exp.machine_name machine));
  (* The query stream: Q uniform random ranks, fixed seed.  On a random
     permutation of 0..N-1 the rank-k element is k-1, so every reply is
     oracle-checked for free. *)
  let rng = Core.Workload.Rng.create (seed + 1) in
  let ranks = Array.init total_queries (fun _ -> 1 + Core.Workload.Rng.int rng n) in
  (* One persistent session answering the whole stream. *)
  let ctx : int Em.Ctx.t = Em.Ctx.create (Exp.params machine) in
  let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed ~n in
  let s = Emalg.Online_select.open_session (Em.Ctx.counted ctx icmp) ctx v in
  let cum = ref 0 in
  let marks = ref [] in
  (* The serve-mode watchdog fed the same stream: its worst running ratio
     calibrates the blessed drift ceiling. *)
  let drift = Core.Drift.create (Exp.params machine) ~n in
  Array.iteri
    (fun i k ->
      let r = Emalg.Online_select.query s (Emalg.Online_select.Select k) in
      if r.Emalg.Online_select.values.(0) <> k - 1 then
        failwith (Printf.sprintf "online bench: rank %d answered wrongly" k);
      cum := !cum + Em.Stats.delta_ios r.Emalg.Online_select.cost;
      ignore (Core.Drift.observe drift ~queries:(i + 1) ~total_ios:!cum);
      if List.mem (i + 1) checkpoints then
        marks := (i + 1, !cum, Emalg.Online_select.summary s) :: !marks)
    ranks;
  let session_peak = ctx.Em.Ctx.stats.Em.Stats.mem_peak in
  Emalg.Online_select.close s;
  Em.Ctx.close ctx;
  let marks = List.rev !marks in
  (* Batch re-runs: at each checkpoint, what the batch engine pays to answer
     the same rank set from scratch on a fresh machine.  (Duplicate ranks in
     the stream are deduplicated — the batch contract wants a strictly
     increasing rank vector — so the batch runs answer <= q ranks; that bias
     is in the batch side's favour.) *)
  let batch_ios q =
    let rq =
      Array.of_list
        (List.sort_uniq icmp (Array.to_list (Array.sub ranks 0 q)))
    in
    let m =
      Exp.measure ~machine ~kind:Core.Workload.Random_perm ~seed ~n (fun _ctx v ->
          let out = Core.Multi_select.select icmp v ~ranks:rq in
          Array.iteri
            (fun i x ->
              if x <> rq.(i) - 1 then failwith "online bench: batch answered wrongly")
            out)
    in
    m.Exp.ios
  in
  let amortized (q, cum, _) = float_of_int cum /. float_of_int q in
  let rows = ref [] in
  let printed =
    List.map
      (fun ((q, cum, sum) as mark) ->
        let batch = batch_ios q in
        rows :=
          Exp.Obj
            [
              ("row", Exp.Str "online_session");
              ("label", Exp.Str (Printf.sprintf "q=%d" q));
              ( "geometry",
                Exp.Obj
                  [
                    ("n", Exp.Int n);
                    ("mem", Exp.Int machine.Exp.mem);
                    ("block", Exp.Int machine.Exp.block);
                    ("queries", Exp.Int q);
                  ] );
              ( "measured",
                Exp.Obj
                  [
                    ("cum_ios", Exp.Int cum);
                    ("amortized", Exp.Float (amortized mark));
                    ("refine_ios", Exp.Int sum.Emalg.Online_select.refine_ios);
                    ("answer_ios", Exp.Int sum.Emalg.Online_select.answer_ios);
                    ("splits", Exp.Int sum.Emalg.Online_select.splits);
                    ("sorted_leaves", Exp.Int sum.Emalg.Online_select.sorted_leaves);
                    ("leaves", Exp.Int sum.Emalg.Online_select.leaves);
                    ("mem_peak", Exp.Int session_peak);
                  ] );
              ("batch_rerun_ios", Exp.Int batch);
              ("ratio", Exp.Float (float_of_int cum /. float_of_int batch));
            ]
          :: !rows;
        (mark, batch))
      marks
  in
  Exp.table
    ~header:
      [ "queries"; "cum I/O"; "amortized"; "sorted/leaves"; "batch re-run I/O"; "online/batch" ]
    (List.map
       (fun (((q, cum, sum) as mark), batch) ->
         [
           string_of_int q;
           string_of_int cum;
           Printf.sprintf "%.1f" (amortized mark);
           Printf.sprintf "%d/%d" sum.Emalg.Online_select.sorted_leaves
             sum.Emalg.Online_select.leaves;
           string_of_int batch;
           Exp.fmt_ratio (float_of_int cum /. float_of_int batch);
         ])
       printed);
  (* Gates.  Amortized curve: worst adjacent ratio (must be < 1 — strictly
     decreasing at every checkpoint doubling).  Session vs batch: total
     session cost over the summed batch re-runs. *)
  let rec worst_adjacent acc = function
    | a :: (b :: _ as rest) -> worst_adjacent (Float.max acc (amortized b /. amortized a)) rest
    | _ -> acc
  in
  let amort_worst = worst_adjacent neg_infinity marks in
  let session_total = match List.rev marks with (_, cum, _) :: _ -> cum | [] -> 0 in
  let batch_total = List.fold_left (fun acc (_, b) -> acc + b) 0 printed in
  let vs_batch = float_of_int session_total /. float_of_int batch_total in
  Printf.printf
    "  => amortized curve worst adjacent ratio %.3f (strictly decreasing if < 1)\n"
    amort_worst;
  Printf.printf "  => session total %d I/Os vs %d batch re-run I/Os (%.3fx)\n"
    session_total batch_total vs_batch;
  let drift_worst = Core.Drift.worst drift in
  Printf.printf
    "  => drift watchdog worst running ratio %.3f over envelope sort(n) + 2q (sort(n) = %.0f)\n"
    drift_worst
    (Core.Drift.predicted drift ~queries:0);
  rows :=
    Exp.Obj
      [
        ("row", Exp.Str "online_drift");
        ("label", Exp.Str "serve-mode drift watchdog over the same stream");
        ( "measured",
          Exp.Obj
            [
              ("worst_ratio", Exp.Float drift_worst);
              ("predicted_base", Exp.Float (Core.Drift.predicted drift ~queries:0));
              ("per_query", Exp.Float 2.0);
            ] );
      ]
    :: !rows;
  Exp.write_artifact ~bench:"online" (List.rev !rows);
  [
    ("online_amortized", amort_worst);
    ("online_vs_batch", vs_batch);
    ("online_drift", drift_worst);
  ]
