(* Sharded partition P-sweep: the "shards change communication, never work"
   invariant as gated ratios.

   One k-way [Core.Cluster.partition] of the same adversarial input at
   P = 1, 2, 4, 8 shards.  Four ratios come out
   (test/golden/ratios.expected):

   - cluster_rounds: worst agreement comm-rounds / (2r+2) budget over the
     sweep — <= 1 by construction of the deterministic histogram sort with
     sampling, so the ceiling is 1.0 exactly;
   - cluster_samples: worst drawn-candidates / (r*T*P*m) budget — likewise
     <= 1 by construction, ceiling 1.0;
   - cluster_work: worst counted-work blow-up over the P = 1 run
     (max of the I/O and comparison ratios across P) — sharding pays
     per-shard fence indexes and agreement probes, a constant-band
     overhead, never a growth law;
   - cluster_balance: worst max-part-size / (N/K) — exact quantile cuts
     (eps = 0) keep every part within duplicates of perfect balance.

   Every run's concatenated output is byte-compared against the sorted
   oracle, so a sharding bug fails the bench before any ratio is read. *)

let icmp = Exp.icmp
let n_default = 1 lsl 16
let seed = 2014
let k = 16
let shard_counts = [ 1; 2; 4; 8 ]

let all () =
  let machine = Exp.default_machine in
  let n = Exp.scaled n_default in
  Exp.section
    (Printf.sprintf "Sharded partition — P-sweep of the cluster drivers   [N=%d, K=%d, %s]" n k
       (Exp.machine_name machine));
  let a = Core.Workload.generate Core.Workload.Pi_hard ~seed ~n ~block:machine.Exp.block in
  let expect = Array.copy a in
  Array.sort icmp expect;
  let run p =
    let t : int Core.Cluster.t = Core.Cluster.create ~shards:p (Exp.params machine) in
    let parts = Core.Cluster.place t a in
    let out, ag = Core.Cluster.partition icmp t parts ~k in
    let merged = Array.concat (Array.to_list (Array.map Em.Vec.Oracle.to_array out)) in
    let sizes = Array.map Em.Vec.length out in
    Array.iter Em.Vec.free out;
    Array.iter Em.Vec.free parts;
    let reads, writes, comparisons = Core.Cluster.totals t in
    let s = Core.Cluster.comm t in
    let comm_rounds = s.Em.Stats.comm_rounds and comm_words = s.Em.Stats.comm_words in
    Core.Cluster.close t;
    if merged <> expect then
      failwith (Printf.sprintf "cluster bench: P=%d merged output diverges from the oracle" p);
    (p, sizes, reads, writes, comparisons, comm_rounds, comm_words, ag)
  in
  let runs = List.map run shard_counts in
  let ios (_, _, r, w, _, _, _, _) = r + w in
  let base_ios, base_cmp =
    match runs with
    | (_, _, r, w, c, _, _, _) :: _ -> (r + w, c)
    | [] -> (1, 1)
  in
  (* The exchange is exactly one superstep; the agreement's own rounds are
     the ledger total minus it (P = 1 posts no transfers at all). *)
  let ratios_of (p, _, _, _, _, comm_rounds, _, ag) =
    match ag with
    | None -> (0., 0.)
    | Some ag ->
        let agree_rounds = max 0 (comm_rounds - if p > 1 then 1 else 0) in
        Core.Bound_track.publish_cluster Exp.registry ~shards:p ~algo:"partition"
          ~boundaries:(k - 1) ~rounds_budget:ag.Core.Cluster.rounds_budget
          ~per_round:ag.Core.Cluster.per_round ~iterations:ag.Core.Cluster.iterations
          ~samples:ag.Core.Cluster.samples ~comm_rounds:agree_rounds
  in
  let per_run = List.map (fun r -> (r, ratios_of r)) runs in
  Exp.table
    ~header:
      [ "P"; "I/O"; "comparisons"; "comm rounds"; "comm words"; "iters"; "samples"; "rounds/budget"; "samples/budget"; "work/P=1" ]
    (List.map
       (fun (((p, _, _, _, c, rounds, words, ag) as r), (rr, sr)) ->
         let iters, samples =
           match ag with
           | Some ag -> (ag.Core.Cluster.iterations, ag.Core.Cluster.samples)
           | None -> (0, 0)
         in
         [
           string_of_int p;
           string_of_int (ios r);
           string_of_int c;
           string_of_int rounds;
           string_of_int words;
           string_of_int iters;
           string_of_int samples;
           Exp.fmt_ratio rr;
           Exp.fmt_ratio sr;
           Exp.fmt_ratio
             (Float.max
                (float_of_int (ios r) /. float_of_int base_ios)
                (float_of_int c /. float_of_int base_cmp));
         ])
       per_run);
  let worst f = List.fold_left (fun acc x -> Float.max acc (f x)) neg_infinity per_run in
  let rounds_worst = worst (fun (_, (rr, _)) -> rr) in
  let samples_worst = worst (fun (_, (_, sr)) -> sr) in
  let work_worst =
    worst (fun (r, _) ->
        let (_, _, _, _, c, _, _, _) = r in
        Float.max
          (float_of_int (ios r) /. float_of_int base_ios)
          (float_of_int c /. float_of_int base_cmp))
  in
  let balance_worst =
    worst (fun ((_, sizes, _, _, _, _, _, _), _) ->
        float_of_int (Array.fold_left max 0 sizes) /. (float_of_int n /. float_of_int k))
  in
  Printf.printf "  => outputs identical to the sorted oracle at every P\n";
  Printf.printf "  => worst rounds/budget %.3f, samples/budget %.3f (both <= 1 by construction)\n"
    rounds_worst samples_worst;
  Printf.printf "  => worst work blow-up over P=1: %.3fx; worst part balance %.3fx of N/K\n"
    work_worst balance_worst;
  let rows =
    List.map
      (fun (((p, _, reads, writes, c, rounds, words, ag) as r), (rr, sr)) ->
        Exp.Obj
          [
            ("row", Exp.Str "cluster_partition");
            ("label", Exp.Str (Printf.sprintf "P=%d" p));
            ( "geometry",
              Exp.Obj
                [
                  ("n", Exp.Int n);
                  ("k", Exp.Int k);
                  ("shards", Exp.Int p);
                  ("mem", Exp.Int machine.Exp.mem);
                  ("block", Exp.Int machine.Exp.block);
                ] );
            ( "measured",
              Exp.Obj
                ([
                   ("ios", Exp.Int (ios r));
                   ("reads", Exp.Int reads);
                   ("writes", Exp.Int writes);
                   ("comparisons", Exp.Int c);
                   ("comm_rounds", Exp.Int rounds);
                   ("comm_words", Exp.Int words);
                 ]
                @
                match ag with
                | None -> []
                | Some ag ->
                    [
                      ("agree_iterations", Exp.Int ag.Core.Cluster.iterations);
                      ("agree_samples", Exp.Int ag.Core.Cluster.samples);
                      ("agree_gathered", Exp.Int ag.Core.Cluster.gathered);
                    ]) );
            ("round_ratio", Exp.Float rr);
            ("sample_ratio", Exp.Float sr);
            ( "work_ratio",
              Exp.Float
                (Float.max
                   (float_of_int (ios r) /. float_of_int base_ios)
                   (float_of_int c /. float_of_int base_cmp)) );
          ])
      per_run
  in
  Exp.write_artifact ~bench:"cluster" rows;
  [
    ("cluster_rounds", rounds_worst);
    ("cluster_samples", samples_worst);
    ("cluster_work", work_worst);
    ("cluster_balance", balance_worst);
  ]
