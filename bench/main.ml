(* Benchmark harness entry point: regenerates every row of the paper's
   Table 1, the derived figures, the design ablations, and a wall-clock
   suite.  `dune exec bench/main.exe` runs everything; pass section names
   (table1 / figures / ablations / timing) to run a subset.

   Flags:
     --small              16x-smaller inputs (the bounded CI sweep)
     --json               write BENCH_<section>.json artifacts at the repo root
     --check-ratios FILE  after table1, fail (exit 1) if any row's worst
                          measured/predicted ratio exceeds its blessed
                          ceiling in FILE (lines: "<row_name> <ceiling>") *)

let sections =
  [
    ("table1", fun () -> Table1.all ());
    ("online", fun () -> Online.all ());
    ("cluster", fun () -> Cluster.all ());
    ("soak", fun () -> Soak.all ());
    ("figures", fun () -> Figures.all (); []);
    ("ablations", fun () -> Ablations.all (); []);
    ("timing", fun () -> Timing.all ());
  ]

(* ratios.expected: one "<row_name> <ceiling>" pair per line; '#' comments. *)
let read_ceilings file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc
        else
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ row; ceiling ] -> go ((row, float_of_string ceiling) :: acc)
          | _ -> failwith (Printf.sprintf "%s: malformed line %S" file line))
  in
  go []

let check_ratios file ratios =
  let ceilings = read_ceilings file in
  Printf.printf "\nRatio gate (%s)\n" file;
  let failures =
    List.filter
      (fun (row, worst) ->
        let ceiling = List.assoc_opt row ceilings in
        let ok =
          match ceiling with
          | None -> false
          | Some c -> Float.is_finite worst && worst <= c
        in
        Printf.printf "  %-24s worst ratio %8.3f  ceiling %s  %s\n" row worst
          (match ceiling with Some c -> Printf.sprintf "%8.3f" c | None -> "(missing)")
          (if ok then "ok" else "FAIL");
        not ok)
      ratios
  in
  (match
     List.filter (fun (row, _) -> not (List.mem_assoc row ratios)) ceilings
   with
  | [] -> ()
  | missing ->
      List.iter
        (fun (row, _) -> Printf.printf "  %-24s not measured in this run\n" row)
        missing);
  if failures <> [] then begin
    Printf.eprintf "ratio gate FAILED for: %s\n"
      (String.concat ", " (List.map fst failures));
    exit 1
  end;
  Printf.printf "  => all ratios within blessed ceilings.\n"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let ceilings_file = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--small" :: rest ->
        Exp.small_mode := true;
        parse acc rest
    | "--json" :: rest ->
        Exp.json_mode := true;
        parse acc rest
    | "--check-ratios" :: file :: rest ->
        ceilings_file := Some file;
        parse acc rest
    | "--check-ratios" :: [] ->
        Printf.eprintf "--check-ratios needs a file argument\n";
        exit 1
    | name :: rest -> parse (name :: acc) rest
  in
  let requested =
    match parse [] args with [] -> List.map fst sections | names -> names
  in
  Printf.printf
    "Reproduction harness: \"Finding Approximate Partitions and Splitters in External Memory\" (SPAA 2014)\n";
  Printf.printf
    "Metric: exact simulated I/O counts; every output is oracle-verified before being reported.\n";
  if !Exp.small_mode then
    Printf.printf "Mode: --small (inputs scaled down 16x for the bounded sweep)\n";
  let ratios =
    List.concat_map
      (fun name ->
        match List.assoc_opt name sections with
        | Some run -> run ()
        | None ->
            Printf.eprintf "unknown section %S (available: %s)\n" name
              (String.concat ", " (List.map fst sections));
            exit 1)
      requested
  in
  match !ceilings_file with
  | None -> ()
  | Some file ->
      if ratios = [] then begin
        Printf.eprintf "--check-ratios requires the table1 section to run\n";
        exit 1
      end;
      check_ratios file ratios
