(* Quickstart: the 60-second tour of the library.

   Run with:  dune exec examples/quickstart.exe

   We simulate an external-memory machine, put a dataset on its disk, and
   solve one instance of each problem from the paper, printing the exact
   I/O price of every step. *)

let icmp = Int.compare

let step ctx label f =
  let result, cost = Em.Ctx.measured ctx f in
  Printf.printf "  %-46s %6d I/Os\n" label (Em.Stats.delta_ios cost);
  result

let () =
  (* A machine with M = 4096 words of memory and B = 64-word blocks. *)
  let params = Em.Params.create ~mem:4096 ~block:64 in
  let ctx : int Em.Ctx.t = Em.Ctx.create params in

  (* 2^18 elements in the paper's adversarial Π_hard block layout; putting
     the input on disk is free (it is where the problem starts). *)
  let n = 1 lsl 18 in
  let v = Core.Workload.vec ctx Core.Workload.Pi_hard ~seed:1 ~n in
  Printf.printf "machine M=4096 B=64; input N=%d (%d blocks); one scan = %d I/Os\n\n"
    n (Em.Vec.num_blocks v) (n / 64);

  (* 1. Multi-selection (Theorem 4): the 1st, 2nd and 3rd quartiles. *)
  let ranks = [| n / 4; n / 2; (3 * n) / 4 |] in
  let quartiles =
    step ctx "multi-select quartiles" (fun () -> Core.Multi_select.select icmp v ~ranks)
  in
  Printf.printf "    quartiles: %d, %d, %d\n" quartiles.(0) quartiles.(1) quartiles.(2);

  (* 2. Approximate K-splitters, two-sided: 16 buckets, each within a
     factor 4 of the even size. *)
  let even = n / 16 in
  let spec = { Core.Problem.n; k = 16; a = even / 4; b = even * 4 } in
  let splitters =
    step ctx "two-sided 16-splitters" (fun () -> Core.Splitters.solve icmp v spec)
  in
  Printf.printf "    %d splitters returned\n" (Em.Vec.length splitters);

  (* 3. Approximate K-partitioning, right-grounded: carve off 15 chunks of
     exactly 1000 small elements, leave the rest as one big partition —
     without sorting. *)
  let rg = { Core.Problem.n; k = 16; a = 1_000; b = n } in
  let parts =
    step ctx "right-grounded 16-partitioning" (fun () -> Core.Partitioning.solve icmp v rg)
  in
  Printf.printf "    partition sizes: %s\n"
    (String.concat ", "
       (Array.to_list (Array.map (fun p -> string_of_int (Em.Vec.length p)) parts)));

  (* 4. The baseline everything is measured against. *)
  let sorted = step ctx "full external sort (baseline)" (fun () -> Emalg.External_sort.sort icmp v) in
  ignore sorted;

  (* Everything above was checked by construction; verify one of them
     explicitly against the in-memory oracle. *)
  let input = Em.Vec.Oracle.to_array v in
  (match Core.Verify.splitters icmp ~input spec (Em.Vec.Oracle.to_array splitters) with
  | Ok () -> Printf.printf "\nsplitters verified against the oracle: OK\n"
  | Error msg -> Printf.printf "\nsplitters verification FAILED: %s\n" msg);
  Printf.printf "peak memory in use: %d / %d words\n"
    ctx.Em.Ctx.stats.Em.Stats.mem_peak 4096
