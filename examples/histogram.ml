(* Equi-depth histograms — the statistical-profile application from the
   paper's introduction: the bucket boundaries of a (1/K)-quantile histogram
   are exactly the output of the approximate K-splitters problem, and a
   nearly equi-depth histogram can be built in (near-)linear I/O instead of
   a full sort.

   Run with:  dune exec examples/histogram.exe

   Scenario: a service's request-latency log (microseconds, long-tailed).
   We build a 16-bucket equi-depth histogram over it and use the histogram
   to estimate range selectivities, comparing against exact answers. *)

let icmp = Int.compare

(* A long-tailed synthetic latency population: mostly fast requests, a few
   slow outliers — the shape that makes equi-WIDTH histograms useless and
   equi-DEPTH ones shine. *)
let latency_log ~seed n =
  let rng = Core.Workload.Rng.create seed in
  Array.init n (fun _ ->
      let r = Core.Workload.Rng.int rng 1000 in
      if r < 700 then 100 + Core.Workload.Rng.int rng 900 (* fast: 0.1-1 ms *)
      else if r < 950 then 1_000 + Core.Workload.Rng.int rng 9_000 (* medium *)
      else if r < 995 then 10_000 + Core.Workload.Rng.int rng 90_000 (* slow *)
      else 100_000 + Core.Workload.Rng.int rng 900_000 (* outliers *))

let exact_fraction data ~lo ~hi =
  let count = Array.fold_left (fun acc x -> if x > lo && x <= hi then acc + 1 else acc) 0 data in
  float_of_int count /. float_of_int (Array.length data)

let () =
  let params = Em.Params.create ~mem:4096 ~block:64 in
  let ctx : int Em.Ctx.t = Em.Ctx.create params in
  let n = 200_000 in
  let data = latency_log ~seed:7 n in
  let v = Em.Vec.of_array ctx data in

  let h, cost = Em.Ctx.measured ctx (fun () -> Quantile.Histogram.build icmp v ~buckets:16) in
  let build_ios = Em.Stats.delta_ios cost in
  let sort_bound = Core.Bounds.sort params ~n in

  Printf.printf "equi-depth histogram over %d latencies: %d buckets of depth %d\n" n
    (Quantile.Histogram.bucket_count h) h.Quantile.Histogram.depth;
  Printf.printf "built in %d I/Os (full sort bound: %.0f I/Os * constants)\n\n" build_ios
    sort_bound;

  Printf.printf "bucket boundaries (latency in us):\n  ";
  Array.iter (fun b -> Printf.printf "%d " b) h.Quantile.Histogram.boundaries;
  Printf.printf "\n\n";

  Printf.printf "range selectivity estimates vs exact:\n";
  List.iter
    (fun (lo, hi) ->
      let est = Quantile.Histogram.selectivity icmp h ~lo ~hi in
      let exact = exact_fraction data ~lo ~hi in
      Printf.printf "  latency in (%6d, %7d]:  estimated %5.1f%%   exact %5.1f%%\n" lo hi
        (100. *. est) (100. *. exact))
    [ (0, 1_000); (1_000, 10_000); (10_000, 100_000); (100_000, 1_000_000) ];

  (* The histogram also answers "which bucket is this latency in?" without
     touching the disk at all. *)
  Printf.printf "\np50-ish latency (boundary of bucket 8): %d us\n"
    h.Quantile.Histogram.boundaries.(7)
