(* The Section 3 reduction, run end-to-end: produce fixed-size, ordered
   chunks of an unsorted dataset — e.g. leaf pages for bulk-loading a
   B-tree — by solving left-grounded APPROXIMATE partitioning (every
   partition at most [chunk]) and then streaming the partitions through a
   buffer that cuts off exactly [chunk] elements at a time.

   Run with:  dune exec examples/exact_chunks.exe

   This reduction is the heart of the paper's Theorem 3: precise
   partitioning costs at most F(N, K, b) + O(N/B), so approximate
   partitioning inherits the multi-partition lower bound.  It is a proof
   device, not the practical tool — we run it to *see* the lower-bound
   transfer work, and compare it against the direct multi-partition and the
   sort baseline it is sandwiched between. *)

let icmp = Int.compare

let () =
  let params = Em.Params.create ~mem:4096 ~block:64 in
  let ctx : int Em.Ctx.t = Em.Ctx.create params in
  let n = 150_000 and chunk = 4_096 in
  let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed:9 ~n in

  Printf.printf "bulk-loading %d keys into leaf pages of exactly %d keys each\n\n" n chunk;

  let pages, reduction_cost =
    Em.Ctx.measured ctx (fun () -> Core.Reduction.precise_by_approximate icmp v ~chunk)
  in
  let reduction_ios = Em.Stats.delta_ios reduction_cost in

  let sorted, sort_cost = Em.Ctx.measured ctx (fun () -> Emalg.External_sort.sort icmp v) in
  let sort_ios = Em.Stats.delta_ios sort_cost in
  Em.Vec.free sorted;

  let k = (n + chunk - 1) / chunk in
  let sizes = Array.init k (fun i -> if i < k - 1 then chunk else n - (chunk * (k - 1))) in
  let direct, direct_cost =
    Em.Ctx.measured ctx (fun () -> Core.Multi_partition.partition_sizes icmp v ~sizes)
  in
  let direct_ios = Em.Stats.delta_ios direct_cost in
  Array.iter Em.Vec.free direct;

  Printf.printf "pages produced: %d (sizes: %d full + last of %d)\n" (Array.length pages)
    (Array.length pages - 1)
    (Em.Vec.length pages.(Array.length pages - 1));
  Printf.printf "Section 3 reduction:      %d I/Os  (proof device: approx + O(N/B) post-pass)\n"
    reduction_ios;
  Printf.printf "direct multi-partition:   %d I/Os  (the practical tool)\n" direct_ios;
  Printf.printf "full external sort:       %d I/Os\n\n" sort_ios;

  (* Every page holds a contiguous key range; show the fence keys (page
     maxima), which are what the B-tree's internal nodes would store. *)
  Printf.printf "first five fence keys: ";
  Array.iteri
    (fun i page ->
      if i < 5 then begin
        let fence = Emalg.Scan.fold (fun acc e -> max acc e) min_int page in
        Printf.printf "%d " fence
      end)
    pages;
  Printf.printf "...\n";

  (* Verify: exact sizes, ordering across pages, content preservation. *)
  let sizes = Array.map Em.Vec.length pages in
  match
    Core.Verify.multi_partition icmp ~input:(Em.Vec.Oracle.to_array v) ~sizes
      (Array.map Em.Vec.Oracle.to_array pages)
  with
  | Ok () -> Printf.printf "verified: exact sizes, ordered pages, nothing lost.\n"
  | Error msg -> Printf.printf "VERIFICATION FAILED: %s\n" msg
