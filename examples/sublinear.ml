(* The paper's most striking consequence (Theorem 1 + Theorem 5): when only
   a LOWER bound a is required on the partition sizes (right-grounded), the
   splitters can be found in o(N/B) I/Os — without reading most of the
   input.  No sorting-flavoured problem usually allows that.

   Run with:  dune exec examples/sublinear.exe

   Scenario: a 16-way index needs fence keys such that every shard is
   guaranteed at least [a] keys; upper balance is handled elsewhere.  We
   sweep [a] and watch the I/O cost stay decoupled from N. *)

let icmp = Int.compare

let () =
  let params = Em.Params.create ~mem:4096 ~block:64 in
  let k = 16 in
  Printf.printf "right-grounded %d-splitters: cost vs input size and guarantee a\n\n" k;
  Printf.printf "%10s  %8s  %14s  %14s  %10s\n" "N" "a" "measured I/O" "one scan N/B" "fraction";
  List.iter
    (fun n ->
      List.iter
        (fun a ->
          let ctx : int Em.Ctx.t = Em.Ctx.create params in
          let v = Core.Workload.vec ctx Core.Workload.Pi_hard ~seed:11 ~n in
          let spec = { Core.Problem.n; k; a; b = n } in
          let out, cost =
            Em.Ctx.measured ctx (fun () -> Core.Splitters.right_grounded icmp v spec)
          in
          let ios = Em.Stats.delta_ios cost in
          (match
             Core.Verify.splitters icmp ~input:(Em.Vec.Oracle.to_array v) spec
               (Em.Vec.Oracle.to_array out)
           with
          | Ok () -> ()
          | Error msg -> failwith msg);
          let scan = n / 64 in
          Printf.printf "%10d  %8d  %14d  %14d  %9.4f%%\n" n a ios scan
            (100. *. float_of_int ios /. float_of_int scan))
        [ 2; 64; 1024 ])
    [ 1 lsl 16; 1 lsl 18; 1 lsl 20 ];
  Printf.printf
    "\nthe cost depends on a*K, not on N: the algorithm reads a*K elements and\n\
     multi-selects inside them — the rest of the input is never touched.\n\
     (Theorem 1 proves this is optimal: O((1 + aK/B) lg_{M/B}(K/B)).)\n"
