(* Range-partitioned load balancing — the paper's first motivating
   application: distribute a dataset onto K machines so that machine i gets
   a contiguous key range and a load between a and b, cheaper than a
   perfectly even split.

   Run with:  dune exec examples/load_balance.exe

   We compare three strategies for K = 12 workers:
     1. perfectly balanced   (a = b = N/K        — costs a multi-partition)
     2. approximately balanced (load within ±50%  — the paper's two-sided)
     3. sort-then-cut baseline
   and print the load vector and the exact I/O price of each. *)

let icmp = Int.compare

let run label solve =
  let params = Em.Params.create ~mem:4096 ~block:64 in
  let ctx : int Em.Ctx.t = Em.Ctx.create params in
  let n = 240_000 in
  let v = Core.Workload.vec ctx Core.Workload.Random_perm ~seed:3 ~n in
  let (parts : int Em.Vec.t array), cost = Em.Ctx.measured ctx (fun () -> solve ctx v n) in
  let ios = Em.Stats.delta_ios cost in
  let loads = Array.map Em.Vec.length parts in
  Printf.printf "%-28s %7d I/Os   loads: %s\n" label ios
    (String.concat " " (Array.to_list (Array.map string_of_int loads)));
  (* Workers must cover disjoint, ordered key ranges: verify. *)
  let spec = { Core.Problem.n; k = Array.length parts; a = 0; b = n } in
  match
    Core.Verify.partitioning icmp ~input:(Em.Vec.Oracle.to_array v) spec
      (Array.map Em.Vec.Oracle.to_array parts)
  with
  | Ok () -> ()
  | Error msg -> Printf.printf "  ORDERING VIOLATION: %s\n" msg

let () =
  let k = 12 in
  Printf.printf "distributing 240000 records onto %d workers (M=4096, B=64)\n\n" k;
  run "exact balance (a=b=N/K)" (fun _ctx v n ->
      Core.Partitioning.solve icmp v (Core.Problem.even_spec ~n ~k));
  run "within +/-50% of even" (fun _ctx v n ->
      let even = n / k in
      Core.Partitioning.solve icmp v
        { Core.Problem.n; k; a = even / 2; b = (3 * even / 2) + 1 });
  run "loose: [1000, N]" (fun _ctx v n ->
      Core.Partitioning.solve icmp v { Core.Problem.n; k; a = 1_000; b = n });
  run "sort-then-cut baseline" (fun _ctx v n ->
      Core.Baseline.partitioning icmp v (Core.Problem.even_spec ~n ~k));
  Printf.printf
    "\nlooser balance guarantees -> fewer I/Os, with every worker still owning\n\
     a contiguous key range (all outputs verified).\n"
