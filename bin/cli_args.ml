(* Shared flag plumbing for the em_repro subcommands.

   Every subcommand takes the same machine/backend/workload flags; they are
   bundled here as one [common] record built by one [common_t] term, so the
   per-subcommand definitions only declare what is specific to them.  The
   helpers below (context construction, cost reporting, spec validation)
   are the shared halves of every [run_*] function. *)

open Cmdliner

type common = {
  verbose : bool;
  backend : Em.Backend.spec option;
  mem : int;
  block : int;
  disks : int option;
  async : bool option;
  seed : int;
  workload : Core.Workload.kind;
  trace_ring : int option;
}

let mem_t =
  Arg.(value & opt int 4096 & info [ "mem"; "M" ] ~docv:"WORDS" ~doc:"Memory size M in words.")

let block_t =
  Arg.(value & opt int 64 & info [ "block"; "B" ] ~docv:"WORDS" ~doc:"Block size B in words.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload PRNG seed.")

let disks_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "disks"; "D" ] ~docv:"D"
        ~doc:
          "Number of parallel disks (round-based I/O accounting; block placement is striped \
           round-robin).  Counted reads/writes are identical at any D; only the round count \
           and prefetch/write-behind batching change.  When omitted, honours the EM_DISKS \
           environment variable (default 1).")

let shards_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards"; "P" ] ~docv:"P"
        ~doc:
          "Number of cluster shards: independent EM machines joined by a metered BSP \
           interconnect.  Outputs and counted work are identical at any P; only the \
           communication ledger (rounds and words) changes.  When omitted, honours the \
           EM_SHARDS environment variable (default 1).")

let workload_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "random" ] | [ "random-perm" ] -> Ok Core.Workload.Random_perm
    | [ "sorted" ] -> Ok Core.Workload.Sorted
    | [ "reverse" ] | [ "reverse-sorted" ] -> Ok Core.Workload.Reverse_sorted
    | [ "pi-hard" ] -> Ok Core.Workload.Pi_hard
    | [ "organ-pipe" ] -> Ok Core.Workload.Organ_pipe
    | [ "few-distinct"; d ] -> (
        match int_of_string_opt d with
        | Some d when d > 0 -> Ok (Core.Workload.Few_distinct d)
        | _ -> Error (`Msg "few-distinct:<count> needs a positive count"))
    | [ "runs"; r ] -> (
        match int_of_string_opt r with
        | Some r when r > 0 -> Ok (Core.Workload.Runs r)
        | _ -> Error (`Msg "runs:<count> needs a positive count"))
    | [ "zipf"; sk ] -> (
        match float_of_string_opt sk with
        | Some sk when sk > 1. -> Ok (Core.Workload.Zipf sk)
        | _ -> Error (`Msg "zipf:<skew> needs a skew > 1"))
    | _ ->
        Error
          (`Msg
            "expected one of: random, sorted, reverse, pi-hard, organ-pipe, \
             few-distinct:<d>, runs:<r>, zipf:<skew>")
  in
  let print ppf k = Format.pp_print_string ppf (Core.Workload.kind_name k) in
  Arg.conv (parse, print)

let workload_t =
  Arg.(
    value
    & opt workload_conv Core.Workload.Random_perm
    & info [ "workload"; "w" ] ~docv:"KIND" ~doc:"Input layout (see --help).")

let backend_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Em.Backend.spec_of_string s) in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Em.Backend.spec_name s))

let backend_t =
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Storage backend: $(b,sim) (in-memory simulation, the default), $(b,file) (real \
           disk blocks, fsynced on flush), $(b,cached) or $(b,cached:file) (buffer-pool LRU \
           over sim/file).  Counted I/Os are identical on all of them.  When omitted, \
           honours the EM_BACKEND environment variable.")

let async_t =
  Arg.(
    value
    & opt ~vopt:(Some true) (some bool) None
    & info [ "async" ] ~docv:"BOOL"
        ~doc:
          "Execute file-backend I/O asynchronously on a pool of worker domains (one per \
           disk in flight; reads are prefetched, writes retire behind the computation).  \
           Counted reads/writes/rounds/comparisons and all outputs are identical with or \
           without it — async moves wall-clock time, never work.  No effect on the pure \
           $(b,sim) backend.  When omitted, honours the EM_ASYNC environment variable \
           (default off).")

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print debug logs of the recursions.")

let trace_ring_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace-ring" ] ~docv:"EVENTS"
        ~doc:
          "Capacity of the in-memory I/O trace ring (bounds flight-recorder depth).  When \
           omitted, honours the EM_TRACE_RING environment variable (default 8192).")

let common_t =
  let make verbose backend mem block disks async seed workload trace_ring =
    { verbose; backend; mem; block; disks; async; seed; workload; trace_ring }
  in
  Term.(
    const make $ verbose_t $ backend_t $ mem_t $ block_t $ disks_t $ async_t $ seed_t
    $ workload_t $ trace_ring_t)

(* ---- shared fault/recovery flags (faults, serve, soak) ---- *)

let fault_kind_conv =
  let all =
    [
      Em.Fault.Transient_read;
      Em.Fault.Permanent_read;
      Em.Fault.Transient_write;
      Em.Fault.Permanent_write;
      Em.Fault.Torn_write;
      Em.Fault.Bit_corruption;
      Em.Fault.Crash;
    ]
  in
  let parse s =
    match List.find_opt (fun k -> Em.Fault.kind_name k = s) all with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown fault kind %S (expected one of: %s)" s
               (String.concat ", " (List.map Em.Fault.kind_name all))))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Em.Fault.kind_name k))

let fault_seed_t =
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Fault-schedule PRNG seed.")

(* [faults] defaults to an adversarial 1/64; long-running subcommands
   (serve, soak) default to a clean device — faults there are opt-in. *)
let fault_p_t ?(default = 1.0 /. 64.0) () =
  Arg.(
    value
    & opt float default
    & info [ "fault-p" ] ~docv:"P" ~doc:"Per-I/O fault probability (0 disables injection).")

let fault_kinds_t =
  Arg.(
    value
    & opt (list fault_kind_conv) [ Em.Fault.Transient_read; Em.Fault.Transient_write ]
    & info [ "fault-kinds" ] ~docv:"K1,K2,..."
        ~doc:
          "Fault kinds in the seeded mix: transient-read, permanent-read, transient-write, \
           permanent-write, torn-write, bit-corruption, crash.  Pair the silent write kinds \
           (torn-write, bit-corruption) with $(b,--verify-writes), or expect typed \
           corrupt-block failures.")

let max_retries_t =
  Arg.(value & opt int 3 & info [ "max-retries" ] ~docv:"N" ~doc:"Retry budget per I/O.")

(* Arm the device's recovery policy and inject a seeded plan iff [fault_p]
   is positive — the shared preamble of every fault-capable subcommand. *)
let arm_faults ?(verify_writes = false) ctx ~max_retries ~fault_p ~fault_seed ~fault_kinds =
  if fault_p > 0. then begin
    Em.Ctx.arm
      ~policy:{ Em.Device.default_policy with Em.Device.max_retries; verify_writes }
      ctx;
    Em.Ctx.inject ctx (Em.Fault.seeded ~seed:fault_seed ~p:fault_p fault_kinds)
  end

(* ---- shared run-function halves ---- *)

let setup_logs c =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if c.verbose then Some Logs.Debug else Some Logs.Warning)

let make_trace c = Em.Trace.create ?ring_capacity:c.trace_ring ()

let make_ctx ?trace c : int Em.Ctx.t =
  let trace = match trace with Some t -> t | None -> make_trace c in
  Em.Ctx.create ~trace ?backend:c.backend ?async:c.async ?disks:c.disks
    (Em.Params.create ~mem:c.mem ~block:c.block)

let workload_vec c ctx ~n = Core.Workload.vec ctx c.workload ~seed:c.seed ~n

let describe_machine ?(disks = 1) ~mem ~block () =
  Printf.printf "machine:      M=%d, B=%d (fanout M/B = %d)%s\n" mem block (mem / block)
    (if disks > 1 then Printf.sprintf ", D=%d disks" disks else "")

let describe_backend ctx =
  Printf.printf "backend:      %s%s\n" (Em.Ctx.backend_name ctx)
    (if Em.Ctx.async ctx then " (async)" else "")

let describe c ctx =
  describe_machine ~disks:(Em.Ctx.disks ctx) ~mem:c.mem ~block:c.block ();
  describe_backend ctx

(* Cost of the measured computation only, as reported by [Ctx.measured]
   (workload placement is free and outside the bracket either way). *)
let report_cost ctx (d : Em.Stats.delta) =
  Printf.printf "I/O:          %d (reads %d, writes %d)\n" (Em.Stats.delta_ios d)
    d.Em.Stats.d_reads d.Em.Stats.d_writes;
  if d.Em.Stats.d_rounds < Em.Stats.delta_ios d then
    Printf.printf "rounds:       %d (parallel disks, %.2fx compression)\n" d.Em.Stats.d_rounds
      (float_of_int (Em.Stats.delta_ios d) /. float_of_int (max 1 d.Em.Stats.d_rounds));
  (if d.Em.Stats.d_cache_hits > 0 || d.Em.Stats.d_cache_misses > 0 then
     let s = ctx.Em.Ctx.stats in
     Printf.printf "cache:        %d hits, %d misses (%d evictions)\n" d.Em.Stats.d_cache_hits
       d.Em.Stats.d_cache_misses s.Em.Stats.cache_evictions);
  Printf.printf "comparisons:  %d\n" d.Em.Stats.d_comparisons;
  Printf.printf "peak memory:  %d / %d words\n" ctx.Em.Ctx.stats.Em.Stats.mem_peak
    ctx.Em.Ctx.params.Em.Params.mem

let print_verified = function
  | Ok () -> Printf.printf "verification: OK\n"
  | Error msg ->
      Printf.printf "verification: FAILED (%s)\n" msg;
      exit 2

let spec_of ~n ~k ~a ~b =
  let b = Option.value b ~default:n in
  let spec = { Core.Problem.n; k; a; b } in
  (match Core.Problem.validate spec with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "invalid spec: %s\n" msg;
      exit 1);
  spec
