(* em_repro top: render a telemetry frame stream as an in-terminal live view.

   Reads frames (one JSON object per line, as written by `em_repro serve
   --telemetry`) from a file or stdin and prints the dashboard block
   {!Em.Telemetry.summarize} renders: qps, p50/p99 latency, I/Os per query,
   cache hit rate, refinement progress, drift ratio.  With [--follow] it
   keeps the file open and re-renders as the server appends (tail -f
   semantics, clearing the screen between frames); otherwise it renders
   each frame in sequence — or only the last with [--last]. *)

open Cmdliner

let file_t =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"Telemetry stream to render (defaults to stdin).")

let follow_t =
  Arg.(
    value & flag
    & info [ "f"; "follow" ]
        ~doc:
          "Keep the stream open and re-render as frames arrive (live view; \
           interrupt to stop).  Requires FILE.")

let last_t =
  Arg.(
    value & flag
    & info [ "last" ] ~doc:"Render only the final frame of the stream.")

let interval_t =
  Arg.(
    value
    & opt float 0.5
    & info [ "interval" ] ~docv:"S" ~doc:"Poll interval in follow mode (seconds).")

let clear_screen () = print_string "\027[2J\027[H"

let render ?prev line =
  match Em.Telemetry.summarize ?prev line with
  | Ok block ->
      print_string block;
      flush Stdlib.stdout
  | Error msg -> Printf.eprintf "top: skipping line (%s)\n%!" msg

let run_stream ic ~last =
  let prev = ref None in
  let final = ref None in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         if last then (
           final := Some (line, !prev);
           prev := Some line)
         else begin
           render ?prev:!prev line;
           print_newline ();
           prev := Some line
         end
       end
     done
   with End_of_file -> ());
  match (!final, last) with
  | Some (line, prev), true -> render ?prev line
  | None, true -> Printf.eprintf "top: no frames in stream\n%!"
  | _ -> ()

let run_follow path ~interval =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let prev = ref None in
      let stop = ref false in
      let on_signal = Sys.Signal_handle (fun _ -> stop := true) in
      Sys.set_signal Sys.sigint on_signal;
      Sys.set_signal Sys.sigterm on_signal;
      while not !stop do
        match input_line ic with
        | line ->
            if String.trim line <> "" then begin
              clear_screen ();
              render ?prev:!prev line;
              prev := Some line
            end
        | exception End_of_file -> Unix.sleepf interval
        | exception Sys_error _ -> stop := true
      done)

let run file follow last interval =
  match (file, follow) with
  | None, true ->
      Printf.eprintf "top: --follow needs a FILE argument\n%!";
      exit 1
  | Some path, true -> run_follow path ~interval
  | Some path, false ->
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> run_stream ic ~last)
  | None, false -> run_stream Stdlib.stdin ~last

let cmd =
  let doc =
    "Render a serve telemetry stream (from $(b,em_repro serve --telemetry)) \
     as an in-terminal live view: qps, p50/p99 latency, I/Os per query, \
     cache hit rate, refinement progress and the drift watchdog's running \
     ratio."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const run $ file_t $ follow_t $ last_t $ interval_t)
