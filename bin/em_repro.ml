(* Command-line driver: run any algorithm of the library on a synthetic
   workload, on a simulated EM machine of chosen geometry, and report exact
   I/O statistics plus oracle verification.

     em_repro splitters -n 262144 -k 16 -a 128 -b 262144
     em_repro partition -n 100000 -k 10 -a 0 -b 20000 --workload sorted
     em_repro multiselect -n 65536 --ranks 1,1000,32768
     em_repro bounds -n 1048576 -k 64 -a 256 -b 65536
     em_repro serve -n 65536 < queries.txt

   The machine/backend/workload flags shared by every subcommand live in
   {!Cli_args} (one [common_t] term); only subcommand-specific flags are
   declared here. *)

open Cmdliner
open Cli_args

let icmp = Int.compare

(* ---- subcommand-specific options ---- *)

let n_t = Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Input size.")
let k_t = Arg.(required & opt (some int) None & info [ "k" ] ~docv:"K" ~doc:"Partition count.")
let a_t = Arg.(value & opt int 0 & info [ "a" ] ~docv:"A" ~doc:"Lower partition-size bound.")

let b_opt_t =
  Arg.(value & opt (some int) None & info [ "b" ] ~docv:"B" ~doc:"Upper partition-size bound (default: n).")

let baseline_t =
  Arg.(value & flag & info [ "baseline" ] ~doc:"Run the sort-based baseline instead.")

let k_opt_t =
  Arg.(value & opt int 16 & info [ "k" ] ~docv:"K" ~doc:"Partition / quantile count.")

let ranks_opt_t =
  Arg.(
    value
    & opt (some (list int)) None
    & info [ "ranks" ] ~docv:"R1,R2,..."
        ~doc:"Ranks for multiselect (default: the K quantile ranks).")

(* ---- splitters ---- *)

let run_splitters c n k a b baseline =
  setup_logs c;
  let spec = spec_of ~n ~k ~a ~b in
  let ctx = make_ctx c in
  let v = workload_vec c ctx ~n in
  describe c ctx;
  Printf.printf "problem:      %s K-splitters, %s\n"
    (Core.Problem.variant_name (Core.Problem.classify spec))
    (Format.asprintf "%a" Core.Problem.pp_spec spec);
  let cmp = Em.Ctx.counted ctx icmp in
  let out, cost =
    Em.Ctx.measured ctx (fun () ->
        if baseline then Core.Baseline.splitters cmp v spec
        else Core.Splitters.solve cmp v spec)
  in
  report_cost ctx cost;
  Printf.printf "bound:        lower %.1f, upper %.1f I/Os (Table 1, no constants)\n"
    (Core.Bounds.splitters_lower ctx.Em.Ctx.params spec)
    (Core.Bounds.splitters_upper ctx.Em.Ctx.params spec);
  print_verified
    (Core.Verify.splitters icmp ~input:(Em.Vec.Oracle.to_array v) spec (Em.Vec.Oracle.to_array out))

let splitters_cmd =
  let doc = "Solve the approximate K-splitters problem." in
  Cmd.v
    (Cmd.info "splitters" ~doc)
    Term.(const run_splitters $ common_t $ n_t $ k_t $ a_t $ b_opt_t $ baseline_t)

(* ---- partitioning ---- *)

let run_partition c n k a b baseline =
  setup_logs c;
  let spec = spec_of ~n ~k ~a ~b in
  let ctx = make_ctx c in
  let v = workload_vec c ctx ~n in
  describe c ctx;
  Printf.printf "problem:      %s K-partitioning, %s\n"
    (Core.Problem.variant_name (Core.Problem.classify spec))
    (Format.asprintf "%a" Core.Problem.pp_spec spec);
  let cmp = Em.Ctx.counted ctx icmp in
  let parts, cost =
    Em.Ctx.measured ctx (fun () ->
        if baseline then Core.Baseline.partitioning cmp v spec
        else Core.Partitioning.solve cmp v spec)
  in
  report_cost ctx cost;
  Printf.printf "bound:        lower %.1f, upper %.1f I/Os (Table 1, no constants)\n"
    (Core.Bounds.partitioning_lower ctx.Em.Ctx.params spec)
    (Core.Bounds.partitioning_upper ctx.Em.Ctx.params spec);
  Printf.printf "partitions:   %s\n"
    (String.concat ", "
       (Array.to_list (Array.map (fun p -> string_of_int (Em.Vec.length p)) parts)));
  print_verified
    (Core.Verify.partitioning icmp ~input:(Em.Vec.Oracle.to_array v) spec
       (Array.map Em.Vec.Oracle.to_array parts))

let partition_cmd =
  let doc = "Solve the approximate K-partitioning problem." in
  Cmd.v
    (Cmd.info "partition" ~doc)
    Term.(const run_partition $ common_t $ n_t $ k_t $ a_t $ b_opt_t $ baseline_t)

(* ---- multi-selection ---- *)

let ranks_t =
  Arg.(
    required
    & opt (some (list int)) None
    & info [ "ranks" ] ~docv:"R1,R2,..." ~doc:"Strictly increasing 1-based ranks.")

let run_multiselect c n ranks baseline =
  setup_logs c;
  let ranks = Array.of_list ranks in
  let ctx = make_ctx c in
  let v = workload_vec c ctx ~n in
  describe c ctx;
  Printf.printf "problem:      multi-selection of %d ranks from %d elements\n"
    (Array.length ranks) n;
  let cmp = Em.Ctx.counted ctx icmp in
  let results, cost =
    Em.Ctx.measured ctx (fun () ->
        if baseline then Core.Baseline.multi_select cmp v ~ranks
        else Core.Multi_select.select cmp v ~ranks)
  in
  report_cost ctx cost;
  Printf.printf "bound:        %.1f I/Os (Theorem 4, no constants)\n"
    (Core.Bounds.multi_select ctx.Em.Ctx.params ~n ~k:(Array.length ranks));
  Array.iteri (fun i r -> Printf.printf "rank %-8d -> %d\n" ranks.(i) r) results;
  print_verified (Core.Verify.multi_select icmp ~input:(Em.Vec.Oracle.to_array v) ~ranks results)

let multiselect_cmd =
  let doc = "Report the elements of the given ranks (Theorem 4)." in
  Cmd.v
    (Cmd.info "multiselect" ~doc)
    Term.(const run_multiselect $ common_t $ n_t $ ranks_t $ baseline_t)

(* ---- multi-partition ---- *)

let sizes_t =
  Arg.(
    required
    & opt (some (list int)) None
    & info [ "sizes" ] ~docv:"S1,S2,..." ~doc:"Positive partition sizes summing to n.")

let run_multipartition c n sizes baseline =
  setup_logs c;
  let sizes = Array.of_list sizes in
  let ctx = make_ctx c in
  let v = workload_vec c ctx ~n in
  describe c ctx;
  Printf.printf "problem:      multi-partition into %d prescribed sizes\n" (Array.length sizes);
  let cmp = Em.Ctx.counted ctx icmp in
  let parts, cost =
    Em.Ctx.measured ctx (fun () ->
        if baseline then Core.Baseline.multi_partition cmp v ~sizes
        else Core.Multi_partition.partition_sizes cmp v ~sizes)
  in
  report_cost ctx cost;
  Printf.printf "bound:        %.1f I/Os (Aggarwal-Vitter, no constants)\n"
    (Core.Bounds.multi_partition ctx.Em.Ctx.params ~n ~k:(Array.length sizes));
  print_verified
    (Core.Verify.multi_partition icmp ~input:(Em.Vec.Oracle.to_array v) ~sizes
       (Array.map Em.Vec.Oracle.to_array parts))

let multipartition_cmd =
  let doc = "Physically partition into prescribed sizes." in
  Cmd.v
    (Cmd.info "multipartition" ~doc)
    Term.(const run_multipartition $ common_t $ n_t $ sizes_t $ baseline_t)

(* ---- quantiles ---- *)

let run_quantiles c n k =
  setup_logs c;
  let ctx = make_ctx c in
  let v = workload_vec c ctx ~n in
  describe c ctx;
  Printf.printf "problem:      exact (1/%d)-quantiles of %d elements\n" k n;
  let cmp = Em.Ctx.counted ctx icmp in
  let out, cost = Em.Ctx.measured ctx (fun () -> Core.Splitters.exact_quantiles cmp v ~k) in
  report_cost ctx cost;
  let values = Em.Vec.Oracle.to_array out in
  Array.iteri (fun i q -> Printf.printf "q%-3d -> %d\n" (i + 1) q) values;
  let ranks = Core.Splitters.quantile_ranks ~n ~k in
  print_verified (Core.Verify.multi_select icmp ~input:(Em.Vec.Oracle.to_array v) ~ranks values)

let quantiles_cmd =
  let doc = "Report the exact (1/K)-quantile elements (equi-depth boundaries)." in
  Cmd.v (Cmd.info "quantiles" ~doc) Term.(const run_quantiles $ common_t $ n_t $ k_t)

(* ---- cluster (sharded drivers) ---- *)

type cluster_algo = Csort | Cpartition | Cmultiselect | Csplitters

let cluster_algo_t =
  let algos =
    [
      ("sort", Csort); ("partition", Cpartition); ("multiselect", Cmultiselect);
      ("splitters", Csplitters);
    ]
  in
  Arg.(
    required
    & pos 0 (some (enum algos)) None
    & info [] ~docv:"ALGO" ~doc:"Sharded driver: sort, partition, multiselect or splitters.")

let eps_t =
  Arg.(
    value
    & opt float 0.
    & info [ "eps" ] ~docv:"EPS"
        ~doc:
          "Balance slack of the splitter agreement: cut ranks may land within eps*N/(2K) of \
           the exact quantile targets (0 = exact).")

(* The exchange is exactly one superstep, so the agreement's own round count
   is the ledger total minus it (clamped: a perfectly pre-placed input posts
   no transfers and its superstep is free). *)
let cluster_report t ~algo_name ~boundaries (ag : int Core.Cluster.agreement option) =
  let reads, writes, comparisons = Core.Cluster.totals t in
  Printf.printf "work:         %d I/Os (reads %d, writes %d), %d comparisons\n" (reads + writes)
    reads writes comparisons;
  let s = Core.Cluster.comm t in
  Printf.printf "comm:         %d rounds, %d words\n" s.Em.Stats.comm_rounds s.Em.Stats.comm_words;
  let recv = Em.Stats.recv_report s in
  List.iter
    (fun (i, sent) ->
      let got = Option.value (List.assoc_opt i recv) ~default:0 in
      Printf.printf "shard %-7d sent %d, recv %d words\n" i sent got)
    (Em.Stats.sent_report s);
  match ag with
  | None -> Printf.printf "agreement:    none (single shard)\n"
  | Some ag ->
      let exchange_rounds =
        match algo_name with "sort" | "partition" -> 1 | _ -> 0
      in
      let agree_rounds = max 0 (s.Em.Stats.comm_rounds - exchange_rounds) in
      let round_ratio, sample_ratio =
        Core.Bound_track.publish_cluster (Em.Metrics.create ()) ~shards:(Core.Cluster.size t)
          ~algo:algo_name ~boundaries ~rounds_budget:ag.Core.Cluster.rounds_budget
          ~per_round:ag.Core.Cluster.per_round ~iterations:ag.Core.Cluster.iterations
          ~samples:ag.Core.Cluster.samples ~comm_rounds:agree_rounds
      in
      Printf.printf "agreement:    %d boundaries in %d iterations (budget %d, m=%d per round)\n"
        (Array.length ag.Core.Cluster.values)
        ag.Core.Cluster.iterations ag.Core.Cluster.rounds_budget ag.Core.Cluster.per_round;
      Printf.printf "agree rounds: %d vs 2r+2 budget (ratio %.2f)\n" agree_rounds round_ratio;
      Printf.printf "samples:      %d vs rTPm budget (ratio %.2f)\n" ag.Core.Cluster.samples
        sample_ratio;
      Printf.printf "gather:       %d words finished exactly\n" ag.Core.Cluster.gathered

let run_cluster c algo n k ranks eps shards fault_seed fault_p fault_kinds max_retries =
  setup_logs c;
  let trace = make_trace c in
  let t : int Core.Cluster.t =
    Core.Cluster.create ~trace ?backend:c.backend ?disks:c.disks ?shards
      (Em.Params.create ~mem:c.mem ~block:c.block)
  in
  let p = Core.Cluster.size t in
  for i = 0 to p - 1 do
    arm_faults (Core.Cluster.ctx t i) ~max_retries ~fault_p ~fault_seed:(fault_seed + i)
      ~fault_kinds
  done;
  describe c (Core.Cluster.ctx t 0);
  Printf.printf "cluster:      P=%d shards\n" p;
  let a = Core.Workload.generate c.workload ~seed:c.seed ~n ~block:c.block in
  let parts = Core.Cluster.place t a in
  let expect () =
    let e = Array.copy a in
    Array.sort icmp e;
    e
  in
  (match algo with
  | Csort ->
      Printf.printf "problem:      sharded sort of %d elements (eps=%.2f)\n" n eps;
      let out, ag = Core.Cluster.sort ~eps icmp t parts in
      Array.iteri
        (fun i v -> Printf.printf "shard %-7d holds %d sorted elements\n" i (Em.Vec.length v))
        out;
      let merged = Array.concat (Array.to_list (Array.map Em.Vec.Oracle.to_array out)) in
      Array.iter Em.Vec.free out;
      cluster_report t ~algo_name:"sort" ~boundaries:(p - 1) ag;
      print_verified
        (if merged = expect () then Ok () else Error "merged shards <> sorted input")
  | Cpartition ->
      Printf.printf "problem:      sharded partition of %d elements into %d parts (eps=%.2f)\n" n
        k eps;
      let out, ag = Core.Cluster.partition ~eps icmp t parts ~k in
      Array.iteri
        (fun g v ->
          Printf.printf "part %-8d %d elements on shard %d\n" g (Em.Vec.length v)
            (Core.Cluster.owner ~p ~k g))
        out;
      let merged = Array.concat (Array.to_list (Array.map Em.Vec.Oracle.to_array out)) in
      Array.iter Em.Vec.free out;
      cluster_report t ~algo_name:"partition" ~boundaries:(k - 1) ag;
      print_verified
        (if merged = expect () then Ok () else Error "concatenated parts <> sorted input")
  | Cmultiselect ->
      let ranks =
        match ranks with
        | Some rs -> Array.of_list rs
        | None -> Array.of_list (List.sort_uniq compare [ max 1 (n / 4); max 1 (n / 2); max 1 (3 * n / 4) ])
      in
      Printf.printf "problem:      sharded multi-selection of %d ranks from %d elements\n"
        (Array.length ranks) n;
      let values, ag = Core.Cluster.multiselect icmp t parts ~ranks in
      Array.iteri (fun j _ -> Printf.printf "rank %-8d -> %d\n" ranks.(j) values.(j)) ranks;
      cluster_report t ~algo_name:"multiselect" ~boundaries:(Array.length ranks) (Some ag);
      print_verified (Core.Verify.multi_select icmp ~input:a ~ranks values)
  | Csplitters ->
      Printf.printf "problem:      sharded (1+eps)-splitters of %d elements, K=%d (eps=%.2f)\n" n
        k eps;
      let ag = Core.Cluster.splitters ~eps icmp t parts ~k in
      Array.iteri
        (fun j v ->
          Printf.printf "splitter %-4d -> %d (rank %d, target %d)\n" (j + 1) v
            ag.Core.Cluster.ranks.(j) ag.Core.Cluster.targets.(j))
        ag.Core.Cluster.values;
      cluster_report t ~algo_name:"splitters" ~boundaries:(k - 1) (Some ag);
      let e = expect () in
      let rank_le x =
        (* first index with e.(i) > x, i.e. |{ y <= x }| *)
        let lo = ref 0 and hi = ref (Array.length e) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if e.(mid) <= x then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      let err = ref None in
      Array.iteri
        (fun j v ->
          let r = rank_le v in
          if r <> ag.Core.Cluster.ranks.(j) then
            err := Some (Printf.sprintf "splitter %d: claimed rank %d, oracle %d" (j + 1)
                           ag.Core.Cluster.ranks.(j) r)
          else if abs (r - ag.Core.Cluster.targets.(j)) > ag.Core.Cluster.tol then
            err := Some (Printf.sprintf "splitter %d: rank %d off target %d by more than tol %d"
                           (j + 1) r ag.Core.Cluster.targets.(j) ag.Core.Cluster.tol))
        ag.Core.Cluster.values;
      print_verified (match !err with None -> Ok () | Some m -> Error m));
  Array.iter Em.Vec.free parts;
  Core.Cluster.close t

let cluster_cmd =
  let doc =
    "Run a sharded driver on a P-shard cluster (EM machines joined by a metered BSP \
     interconnect).  Outputs are identical at every P; only the communication ledger varies."
  in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(
      const run_cluster $ common_t $ cluster_algo_t $ n_t $ k_opt_t $ ranks_opt_t $ eps_t
      $ shards_t $ fault_seed_t
      $ fault_p_t ~default:0. ()
      $ fault_kinds_t $ max_retries_t)

(* ---- reduce (Section 3) ---- *)

let chunk_t =
  Arg.(
    required
    & opt (some int) None
    & info [ "chunk" ] ~docv:"SIZE" ~doc:"Exact partition size for the precise reduction.")

let run_reduce c n chunk =
  setup_logs c;
  let ctx = make_ctx c in
  let v = workload_vec c ctx ~n in
  describe c ctx;
  Printf.printf "problem:      precise partitioning into chunks of %d (Section 3 reduction)\n"
    chunk;
  let cmp = Em.Ctx.counted ctx icmp in
  let parts, cost =
    Em.Ctx.measured ctx (fun () -> Core.Reduction.precise_by_approximate cmp v ~chunk)
  in
  report_cost ctx cost;
  Printf.printf "partitions:   %s\n"
    (String.concat ", "
       (Array.to_list (Array.map (fun p -> string_of_int (Em.Vec.length p)) parts)));
  let sizes = Array.map Em.Vec.length parts in
  print_verified
    (Core.Verify.multi_partition icmp ~input:(Em.Vec.Oracle.to_array v) ~sizes
       (Array.map Em.Vec.Oracle.to_array parts))

let reduce_cmd =
  let doc = "Precise partitioning via the Section 3 reduction." in
  Cmd.v (Cmd.info "reduce" ~doc) Term.(const run_reduce $ common_t $ n_t $ chunk_t)

(* ---- trace ---- *)

let traceable_conv =
  Arg.enum
    [
      ("splitters", `Splitters);
      ("partition", `Partition);
      ("multiselect", `Multiselect);
      ("quantiles", `Quantiles);
    ]

let trace_algo_t =
  Arg.(
    required
    & pos 0 (some traceable_conv) None
    & info [] ~docv:"ALGO" ~doc:"Algorithm to trace: splitters, partition, multiselect or quantiles.")

let jsonl_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE" ~doc:"Also stream every I/O event to FILE as JSON lines.")

let run_trace c algo n k a b ranks jsonl =
  setup_logs c;
  let trace = make_trace c in
  let collect, collected = Em.Trace.collector () in
  Em.Trace.add_sink trace collect;
  let jsonl_oc = Option.map open_out jsonl in
  Option.iter (fun oc -> Em.Trace.add_sink trace (Em.Trace.jsonl_sink oc)) jsonl_oc;
  let ctx = make_ctx ~trace c in
  let v = workload_vec c ctx ~n in
  describe c ctx;
  let cmp = Em.Ctx.counted ctx icmp in
  let name, ((), cost) =
    match algo with
    | `Splitters ->
        let spec = spec_of ~n ~k ~a ~b in
        Printf.printf "problem:      %s K-splitters, %s\n"
          (Core.Problem.variant_name (Core.Problem.classify spec))
          (Format.asprintf "%a" Core.Problem.pp_spec spec);
        ("splitters", Em.Ctx.measured ctx (fun () -> ignore (Core.Splitters.solve cmp v spec)))
    | `Partition ->
        let spec = spec_of ~n ~k ~a ~b in
        Printf.printf "problem:      %s K-partitioning, %s\n"
          (Core.Problem.variant_name (Core.Problem.classify spec))
          (Format.asprintf "%a" Core.Problem.pp_spec spec);
        ( "partition",
          Em.Ctx.measured ctx (fun () -> ignore (Core.Partitioning.solve cmp v spec)) )
    | `Multiselect ->
        let ranks =
          match ranks with
          | Some rs -> Array.of_list rs
          | None -> Core.Splitters.quantile_ranks ~n ~k
        in
        Printf.printf "problem:      multi-selection of %d ranks from %d elements\n"
          (Array.length ranks) n;
        ( "multiselect",
          Em.Ctx.measured ctx (fun () -> ignore (Core.Multi_select.select cmp v ~ranks)) )
    | `Quantiles ->
        Printf.printf "problem:      exact (1/%d)-quantiles of %d elements\n" k n;
        ( "quantiles",
          Em.Ctx.measured ctx (fun () ->
              ignore (Core.Splitters.exact_quantiles cmp v ~k)) )
  in
  report_cost ctx cost;
  let events = collected () in
  Printf.printf "\nper-phase I/O tree (%s):\n" name;
  Format.printf "%a" Em.Trace_report.pp_tree events;
  Format.printf "@.%a" Em.Trace_report.pp_summary events;
  Option.iter
    (fun oc ->
      close_out oc;
      Printf.printf "events:       %d written to %s\n" (List.length events)
        (Option.get jsonl))
    jsonl_oc

let trace_cmd =
  let doc =
    "Run an algorithm under the I/O tracer and print its per-phase I/O tree, \
     sequential/random split and block-reuse profile."
  in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(
      const run_trace $ common_t $ trace_algo_t $ n_t $ k_opt_t $ a_t $ b_opt_t $ ranks_opt_t
      $ jsonl_t)

(* ---- faults ---- *)

let fault_algo_t =
  Arg.(
    required
    & pos 0 (some (enum [ ("sort", `Sort); ("multiselect", `Multiselect); ("splitters", `Splitters) ])) None
    & info [] ~docv:"ALGO" ~doc:"Algorithm to run under faults: sort, multiselect or splitters.")

let crash_every_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "crash-every" ] ~docv:"IOS"
        ~doc:"Additionally crash every IOS I/Os (use with --restartable).")

let verify_writes_t =
  Arg.(
    value & flag
    & info [ "verify-writes" ]
        ~doc:"Read back and checksum every write (catches silent write corruption at write time).")

let restartable_t =
  Arg.(
    value & flag
    & info [ "restartable" ]
        ~doc:"Use the checkpointed restartable drivers (sort and multiselect) so crashes are survived.")

let print_fault_report ctx =
  match Em.Ctx.fault_report ctx with
  | None -> ()
  | Some r ->
      let c = r.Em.Device.counters in
      Printf.printf "recovery:     %d recovered, %d checksum failures, %d quarantined, %d remapped\n"
        c.Em.Device.recovered c.Em.Device.checksum_failures c.Em.Device.quarantined
        c.Em.Device.remapped;
      Printf.printf "fault I/Os:   %d faulted attempts, %d retries\n"
        ctx.Em.Ctx.stats.Em.Stats.faults ctx.Em.Ctx.stats.Em.Stats.retries

let print_restarts (o : _ Emalg.Restart.outcome) =
  Printf.printf "restarts:     %d survived (checkpoint: %d saves / %d I/Os, %d resumes / %d I/Os)\n"
    o.Emalg.Restart.restarts o.Emalg.Restart.saves o.Emalg.Restart.save_ios
    o.Emalg.Restart.loads o.Emalg.Restart.load_ios

let run_faults c algo n k ranks fault_seed p kinds crash_every max_retries verify_writes
    restartable =
  setup_logs c;
  let trace = make_trace c in
  let collect, collected = Em.Trace.collector () in
  Em.Trace.add_sink trace collect;
  let ctx = make_ctx ~trace c in
  Em.Ctx.arm ~policy:{ Em.Device.default_policy with Em.Device.max_retries; verify_writes } ctx;
  let v = workload_vec c ctx ~n in
  let input = Em.Vec.Oracle.to_array v in
  describe c ctx;
  let plan = Em.Fault.seeded ~seed:fault_seed ~p kinds in
  let plan =
    match crash_every with
    | Some cr -> Em.Fault.any [ Em.Fault.every_nth ~n:cr Em.Fault.Crash; plan ]
    | None -> plan
  in
  Printf.printf "faults:       seeded p=%g seed=%d kinds=%s%s\n" p fault_seed
    (String.concat "," (List.map Em.Fault.kind_name kinds))
    (match crash_every with Some cr -> Printf.sprintf " + crash every %d I/Os" cr | None -> "");
  Em.Ctx.inject ctx plan;
  let cmp = Em.Ctx.counted ctx icmp in
  let restartable_result o =
    print_restarts o;
    match o.Emalg.Restart.result with Ok r -> r | Error e -> Em.Em_error.raise_error e
  in
  let verified, cost =
    Em.Ctx.measured ctx (fun () ->
        Em.Em_error.protect (fun () ->
            match algo with
            | `Sort ->
                let sv =
                  if restartable then restartable_result (Emalg.Restart.sort cmp v)
                  else Emalg.External_sort.sort cmp v
                in
                let out = Em.Vec.Oracle.to_array sv in
                let expect = Array.copy input in
                Array.sort icmp expect;
                if out = expect then Ok () else Error "output is not the sorted input"
            | `Multiselect ->
                let ranks =
                  match ranks with
                  | Some rs -> Array.of_list rs
                  | None -> Core.Splitters.quantile_ranks ~n ~k
                in
                let out =
                  if restartable then restartable_result (Core.Restartable.select cmp v ~ranks)
                  else Core.Multi_select.select cmp v ~ranks
                in
                Core.Verify.multi_select icmp ~input ~ranks out
            | `Splitters ->
                let spec = spec_of ~n ~k ~a:0 ~b:None in
                let out = Core.Splitters.solve cmp v spec in
                Core.Verify.splitters icmp ~input spec (Em.Vec.Oracle.to_array out)))
  in
  report_cost ctx cost;
  print_fault_report ctx;
  Printf.printf "\nper-phase I/O tree (fault overhead in brackets):\n";
  Format.printf "%a@." Em.Trace_report.pp_tree (collected ());
  match verified with
  | Ok verification -> print_verified verification
  | Error e ->
      Printf.printf "outcome:      typed failure: %s\n" (Em.Em_error.to_string e);
      exit 3

let faults_cmd =
  let doc =
    "Run an algorithm on a fault-injected device with retry/checksum recovery \
     and report the fault overhead (Ok runs are oracle-verified; failures are \
     typed and exit with code 3)."
  in
  Cmd.v
    (Cmd.info "faults" ~doc)
    Term.(
      const run_faults $ common_t $ fault_algo_t $ n_t $ k_opt_t $ ranks_opt_t $ fault_seed_t
      $ fault_p_t () $ fault_kinds_t $ crash_every_t $ max_retries_t $ verify_writes_t
      $ restartable_t)

(* ---- soak ---- *)

let queries_t =
  Arg.(
    value & opt int 48
    & info [ "queries" ] ~docv:"Q" ~doc:"Length of the seeded adversarial query stream.")

let kills_t =
  Arg.(
    value & opt int 2
    & info [ "kills" ] ~docv:"K"
        ~doc:
          "Kill/restore cycles, spread evenly through the stream.  Each kill \
           drops the session without closing it (process RAM dies, the device \
           and checkpoint region survive) and restores from the last \
           checkpoint.")

let checkpoint_every_t =
  Arg.(
    value & opt int 1
    & info [ "checkpoint-every" ] ~docv:"SPLITS"
        ~doc:"Automatic checkpoint policy for both the oracle and chaos runs.")

let soak_flight_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dir" ] ~docv:"DIR"
        ~doc:
          "Dump a flight-recorder post-mortem (recent query records joined with their trace \
           events) into DIR at every chaos kill.  Notices go to stderr so the stdout \
           transcript stays golden-comparable.")

let run_soak c n queries kills checkpoint_every fault_seed fault_p fault_kinds max_retries
    flight_dir =
  setup_logs c;
  let crash_after = Core.Soak.spread_crashes ~queries ~k:kills in
  let cfg =
    {
      Core.Soak.n;
      mem = c.mem;
      block = c.block;
      disks = Option.value c.disks ~default:1;
      backend = c.backend;
      seed = c.seed;
      queries;
      crash_after;
      every_splits = checkpoint_every;
      fault_p;
      fault_seed;
      fault_kinds;
      max_retries;
      flight_dir;
    }
  in
  describe_machine ~disks:cfg.Core.Soak.disks ~mem:c.mem ~block:c.block ();
  Printf.printf "backend:      %s\n"
    (match c.backend with Some s -> Em.Backend.spec_name s | None -> "sim");
  Printf.printf "soak:         n=%d queries=%d kills=%d checkpoint-every=%d fault-p=%g seed=%d\n"
    n queries (List.length crash_after) checkpoint_every fault_p c.seed;
  let o =
    Core.Soak.run
      ~on_crash:(fun r ->
        Printf.printf "crash:        after query %d: restored %d leaves in %d resume I/Os\n"
          r.Core.Soak.after_query r.Core.Soak.leaves_restored r.Core.Soak.resume_load_ios)
      cfg
  in
  List.iter
    (fun path -> Printf.eprintf "flight:       post-mortem written to %s\n%!" path)
    o.Core.Soak.flight_dumps;
  Printf.printf "oracle:       %d I/Os (uninterrupted twin)\n" o.Core.Soak.oracle_ios;
  Printf.printf "chaos:        %d I/Os (%d saves / %d I/Os, %d loads / %d I/Os, %d retries)\n"
    o.Core.Soak.chaos_ios o.Core.Soak.saves o.Core.Soak.save_ios o.Core.Soak.loads
    o.Core.Soak.load_ios o.Core.Soak.retries;
  Printf.printf
    "bound:        allowed %d = oracle + resume loads + %d x (save + re-sort %d)\n"
    o.Core.Soak.allowed_ios o.Core.Soak.crashes o.Core.Soak.resort_allowance;
  Printf.printf "answers:      %s\n"
    (if o.Core.Soak.answers_match then "restored session matches the oracle"
     else "MISMATCH against the oracle");
  Printf.printf "memory:       %s\n"
    (if o.Core.Soak.mem_ok then "peak within M through every recovery" else "LEDGER BREACH");
  if not o.Core.Soak.answers_match then begin
    Printf.printf "verdict:      FAILED (answers diverged)\n";
    exit 2
  end;
  if not (o.Core.Soak.within_bound && o.Core.Soak.mem_ok) then begin
    Printf.printf "verdict:      FAILED (crash overhead out of bound)\n";
    exit 3
  end;
  Printf.printf "verdict:      survived %d kills within the k-crash bound (%.3fx of allowed)\n"
    o.Core.Soak.crashes
    (float_of_int o.Core.Soak.chaos_ios /. float_of_int o.Core.Soak.allowed_ios)

let soak_cmd =
  let doc =
    "Chaos-soak an online multiselection session: a seeded adversarial query \
     stream under scheduled kill/restore cycles (and an optional seeded \
     fault plan), verified against the crash-free oracle twin — answers must \
     match and total I/Os must stay within the k-crash overhead bound (exit \
     2 on divergence, 3 on an overhead breach)."
  in
  Cmd.v
    (Cmd.info "soak" ~doc)
    Term.(
      const run_soak $ common_t $ n_t $ queries_t $ kills_t $ checkpoint_every_t
      $ fault_seed_t
      $ fault_p_t ~default:0. ()
      $ fault_kinds_t $ max_retries_t $ soak_flight_dir_t)

(* ---- metrics & profile ---- *)

let observed_algo_t =
  Arg.(
    required
    & pos 0
        (some
           (enum
              [
                ("splitters", `Splitters);
                ("partition", `Partition);
                ("multiselect", `Multiselect);
                ("quantiles", `Quantiles);
                ("sort", `Sort);
              ]))
        None
    & info [] ~docv:"ALGO"
        ~doc:"Algorithm to observe: splitters, partition, multiselect, quantiles or sort.")

(* Run [algo] with a span profiler and a seek-counting trace sink attached.
   Returns the machine, the profiler, the measured cost delta, the seek
   count and — when the algorithm has a Table 1 row — its (row, spec). *)
let run_observed c ~algo ~n ~k ~a ~b ~ranks () =
  let trace = make_trace c in
  let seek_sink, seeks =
    Em.Trace.counter (fun e -> e.Em.Trace.locality = Em.Trace.Random)
  in
  Em.Trace.add_sink trace seek_sink;
  let ctx = make_ctx ~trace c in
  let profiler = Em.Profile.create () in
  Em.Profile.attach profiler ctx.Em.Ctx.stats;
  let v = workload_vec c ctx ~n in
  let cmp = Em.Ctx.counted ctx icmp in
  let table1_row, (name, ((), cost)) =
    match algo with
    | `Splitters ->
        let spec = spec_of ~n ~k ~a ~b in
        let row =
          match Core.Problem.classify spec with
          | Core.Problem.Right_grounded -> Core.Bound_track.Splitters_right
          | Core.Problem.Left_grounded -> Core.Bound_track.Splitters_left
          | Core.Problem.Two_sided | Core.Problem.Unconstrained ->
              Core.Bound_track.Splitters_two_sided
        in
        ( Some (row, spec),
          ( "splitters",
            Em.Ctx.measured ctx (fun () -> Em.Vec.free (Core.Splitters.solve cmp v spec)) ) )
    | `Partition ->
        let spec = spec_of ~n ~k ~a ~b in
        let row =
          match Core.Problem.classify spec with
          | Core.Problem.Right_grounded -> Core.Bound_track.Partition_right
          | Core.Problem.Left_grounded -> Core.Bound_track.Partition_left
          | Core.Problem.Two_sided | Core.Problem.Unconstrained ->
              Core.Bound_track.Partition_two_sided
        in
        ( Some (row, spec),
          ( "partition",
            Em.Ctx.measured ctx (fun () ->
                Array.iter Em.Vec.free (Core.Partitioning.solve cmp v spec)) ) )
    | `Multiselect ->
        let ranks =
          match ranks with
          | Some rs -> Array.of_list rs
          | None -> Core.Splitters.quantile_ranks ~n ~k
        in
        ( None,
          ( "multiselect",
            Em.Ctx.measured ctx (fun () -> ignore (Core.Multi_select.select cmp v ~ranks)) ) )
    | `Quantiles ->
        ( None,
          ( "quantiles",
            Em.Ctx.measured ctx (fun () ->
                Em.Vec.free (Core.Splitters.exact_quantiles cmp v ~k)) ) )
    | `Sort ->
        ( None,
          ( "sort",
            Em.Ctx.measured ctx (fun () -> Em.Vec.free (Emalg.External_sort.sort cmp v)) ) )
  in
  (ctx, profiler, cost, seeks (), table1_row, name)

let format_t =
  Arg.(
    value
    & opt (enum [ ("prom", `Prom); ("json", `Json) ]) `Prom
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Registry dump format: prom (Prometheus text exposition) or json (canonical).")

let run_metrics c algo n k a b ranks format =
  setup_logs c;
  let ctx, profiler, cost, seeks, table1_row, _name =
    run_observed c ~algo ~n ~k ~a ~b ~ranks ()
  in
  let reg = Em.Metrics.create () in
  Em.Metrics.publish_stats reg ctx.Em.Ctx.stats;
  Em.Metrics.set
    (Em.Metrics.gauge reg ~help:"I/Os the tracer classified as random" "seeks_total")
    (float_of_int seeks);
  Em.Profile.publish reg profiler;
  (match table1_row with
  | Some (row, spec) ->
      ignore
        (Core.Bound_track.publish_values reg ctx.Em.Ctx.params row spec
           ~measured_rounds:cost.Em.Stats.d_rounds
           ~measured_ios:(Em.Stats.delta_ios cost))
  | None -> ());
  print_string
    (match format with
    | `Prom -> Em.Metrics.to_prometheus reg
    | `Json -> Em.Metrics.to_json reg)

let metrics_cmd =
  let doc =
    "Run an algorithm and dump the full metrics registry (machine counters, \
     per-span profile, and — where the problem maps to a Table 1 row — \
     measured vs predicted bound gauges)."
  in
  Cmd.v
    (Cmd.info "metrics" ~doc)
    Term.(
      const run_metrics $ common_t $ observed_algo_t $ n_t $ k_opt_t $ a_t $ b_opt_t
      $ ranks_opt_t $ format_t)

let run_profile c algo n k a b ranks =
  setup_logs c;
  let ctx, profiler, cost, seeks, table1_row, name =
    run_observed c ~algo ~n ~k ~a ~b ~ranks ()
  in
  describe c ctx;
  report_cost ctx cost;
  Printf.printf "random seeks: %d\n" seeks;
  (match table1_row with
  | Some (row, spec) ->
      let pred = Core.Bound_track.predicted row ctx.Em.Ctx.params spec in
      let measured = Em.Stats.delta_ios cost in
      Printf.printf "Table 1 row:  %s — measured %d / predicted %.1f = ratio %.2f\n"
        (Core.Bound_track.name row) measured pred (float_of_int measured /. pred)
  | None -> ());
  Printf.printf "\nspan tree (%s), children sorted by inclusive I/O:\n" name;
  Format.printf "%a" Em.Profile.pp profiler;
  Printf.printf "\nheaviest spans:\n";
  List.iteri
    (fun i s ->
      if i < 10 then
        Printf.printf "  %8d I/O  %9d cmp  x%-4d %s\n" (Em.Profile.span_ios s)
          s.Em.Profile.comparisons s.Em.Profile.calls
          (Em.Profile.path_name s.Em.Profile.path))
    (Em.Profile.spans profiler)

let profile_cmd =
  let doc =
    "Run an algorithm under the span profiler and print its phase-path span \
     tree (I/Os, comparisons, wall-clock and memory peaks per span), plus \
     the flat list of heaviest spans."
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(
      const run_profile $ common_t $ observed_algo_t $ n_t $ k_opt_t $ a_t $ b_opt_t
      $ ranks_opt_t)

(* ---- bounds ---- *)

(* [bounds] is pure bound arithmetic — no device is ever created — but it
   accepts the common flag set like every other subcommand so sweep scripts
   can pass a uniform flag set. *)
let run_bounds c n k a b =
  let spec = spec_of ~n ~k ~a ~b in
  let p = Em.Params.create ~mem:c.mem ~block:c.block in
  let p = match c.disks with Some d -> Em.Params.with_disks p d | None -> p in
  describe_machine ~disks:p.Em.Params.disks ~mem:c.mem ~block:c.block ();
  Printf.printf "spec:         %s (%s)\n"
    (Format.asprintf "%a" Core.Problem.pp_spec spec)
    (Core.Problem.variant_name (Core.Problem.classify spec));
  Printf.printf "Table 1 predictions (I/Os, constants omitted):\n";
  Printf.printf "  splitters:     lower %.1f   upper %.1f\n"
    (Core.Bounds.splitters_lower p spec)
    (Core.Bounds.splitters_upper p spec);
  Printf.printf "  partitioning:  lower %.1f   upper %.1f\n"
    (Core.Bounds.partitioning_lower p spec)
    (Core.Bounds.partitioning_upper p spec);
  Printf.printf "  one scan:      %.1f\n" (Core.Bounds.scan p ~n);
  Printf.printf "  full sort:     %.1f\n" (Core.Bounds.sort p ~n);
  Printf.printf "  multi-select (K ranks):    %.1f\n" (Core.Bounds.multi_select p ~n ~k);
  Printf.printf "  multi-partition (K parts): %.1f\n" (Core.Bounds.multi_partition p ~n ~k);
  if p.Em.Params.disks > 1 then begin
    Printf.printf "D-disk round forms (I/Os / D):\n";
    Printf.printf "  one scan:      %.1f rounds\n" (Core.Bounds.scan_rounds p ~n);
    Printf.printf "  full sort:     %.1f rounds\n" (Core.Bounds.sort_rounds p ~n)
  end

let bounds_cmd =
  let doc = "Evaluate the paper's Table 1 bound formulas for a spec." in
  Cmd.v (Cmd.info "bounds" ~doc) Term.(const run_bounds $ common_t $ n_t $ k_t $ a_t $ b_opt_t)

(* ---- info ---- *)

let run_info c =
  let ctx = make_ctx c in
  describe c ctx;
  Printf.printf "merge fanout:            %d runs\n" (Emalg.Merge.max_fanout ctx);
  Printf.printf "distribution fanout:     %d buckets\n" (Emalg.Distribute.max_fanout ctx);
  Printf.printf "half-load (base cases):  %d words\n" (Emalg.Layout.half_load ctx);
  Printf.printf "sample-splitter max k:   %d\n" (Emalg.Sample_splitters.max_k ctx);
  Printf.printf "intermixed max groups:   %d\n" (Core.Intermixed.max_groups ctx);
  Printf.printf "multi-select batch m:    %d\n" (Core.Multi_select.batch_size ctx)

let info_cmd =
  let doc = "Print the derived parameters of a machine geometry." in
  Cmd.v (Cmd.info "info" ~doc) Term.(const run_info $ common_t)

let () =
  let doc =
    "I/O-optimal approximate partitions and splitters in external memory \
     (reproduction of Hu, Tao, Yang, Zhou; SPAA 2014)"
  in
  let main = Cmd.group (Cmd.info "em_repro" ~doc)
      [
        splitters_cmd;
        partition_cmd;
        multiselect_cmd;
        multipartition_cmd;
        quantiles_cmd;
        cluster_cmd;
        reduce_cmd;
        trace_cmd;
        metrics_cmd;
        profile_cmd;
        faults_cmd;
        soak_cmd;
        bounds_cmd;
        info_cmd;
        Serve.cmd;
        Top.cmd;
      ]
  in
  exit (Cmd.eval main)
