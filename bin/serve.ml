(* em_repro serve: a long-running online multiselection session.

   The protocol engine (parsing, validation, typed fault replies, retries,
   budgets, checkpoint/state-file round trips) lives in {!Core.Serve}; this
   file is the process shell around it: flag parsing, signal-driven graceful
   shutdown, and the stdin/socket transports.

   Crash survivability: with [--state PATH] every checkpoint (automatic via
   [--checkpoint-every K], explicit via the [checkpoint] command, and the
   final one on shutdown) is mirrored to a state file, and a later
   [em_repro serve --state PATH --restore] resumes the session — same leaf
   partition, same counters, same subsequent query costs.  SIGINT/SIGTERM
   drain the batch in flight, checkpoint, emit the final summary and unlink
   the socket.

   All emitted numbers are simulated costs (no wall-clock), so replies are
   byte-deterministic for a fixed geometry/workload/seed — `make
   serve-smoke` diffs them against a golden transcript. *)

open Cmdliner

let n_t =
  Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Input size.")

let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Serve on a Unix domain socket at PATH instead of stdin/stdout \
           (one client at a time; the session persists across connections).")

let state_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "state" ] ~docv:"PATH"
        ~doc:
          "Mirror every session checkpoint to a state file at PATH (written \
           atomically), so a later $(b,--restore) survives this process's \
           death.  By itself enables explicit checkpointing (the \
           $(b,checkpoint) command and shutdown).")

let restore_t =
  Arg.(
    value & flag
    & info [ "restore" ]
        ~doc:
          "Resume the session from $(b,--state)'s file if it exists (fresh \
           start otherwise).  The file must match this machine geometry, \
           workload and seed.")

let checkpoint_every_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every" ] ~docv:"K"
        ~doc:
          "Checkpoint automatically: mid-refinement once K splits accumulate \
           and at the end of every query that refined the tree.")

let io_budget_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "io-budget" ] ~docv:"IOS"
        ~doc:
          "Abort any single query that spends more than IOS metered I/Os \
           with a typed $(b,budget_exceeded) reply.  Refinement already paid \
           for is kept (monotone), so later queries still benefit.")

(* ---- transports ---- *)

let serve_socket ~should_stop srv path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close sock;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 1;
      Printf.eprintf "serving on %s\n%!" path;
      let rec accept_loop () =
        if should_stop () then ()
        else
          match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              (* A signal interrupted the blocking accept: either the
                 shutdown flag is now set (checked on re-entry) or it was
                 something harmless — retry either way. *)
              accept_loop ()
          | client, _ ->
              let ic = Unix.in_channel_of_descr client in
              let oc = Unix.out_channel_of_descr client in
              let continue =
                Fun.protect
                  ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
                  (fun () ->
                    (* A client vanishing mid-line (reset on read, EPIPE on
                       reply) ends that client, not the server. *)
                    try Core.Serve.serve_channels ~should_stop srv ic oc
                    with Sys_error _ | Unix.Unix_error _ -> true)
              in
              if continue then accept_loop ()
      in
      accept_loop ())

let run c n socket state restore checkpoint_every io_budget fault_p fault_seed fault_kinds
    max_retries =
  Cli_args.setup_logs c;
  let ctx = Cli_args.make_ctx c in
  Cli_args.arm_faults ctx ~max_retries ~fault_p ~fault_seed ~fault_kinds;
  let v = Cli_args.workload_vec c ctx ~n in
  let meta =
    {
      Core.Serve.m_n = n;
      m_mem = c.Cli_args.mem;
      m_block = c.Cli_args.block;
      m_disks = Em.Ctx.disks ctx;
      m_workload = Core.Workload.kind_name c.Cli_args.workload;
      m_seed = c.Cli_args.seed;
    }
  in
  let srv =
    try
      Core.Serve.create ?checkpoint_every ?io_budget ~max_retries ?state_path:state ~restore
        ~meta ctx v
    with Failure msg ->
      Printf.eprintf "%s\n%!" msg;
      exit 1
  in
  (* Graceful shutdown: the handlers only set a flag; the serve loop drains
     the batch in flight, then checks it between lines (interrupted blocking
     reads surface as EINTR/Sys_error and re-check). *)
  let stop_reason = ref None in
  let on_signal name = Sys.Signal_handle (fun _ -> stop_reason := Some name) in
  Sys.set_signal Sys.sigint (on_signal "sigint");
  Sys.set_signal Sys.sigterm (on_signal "sigterm");
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let should_stop () = !stop_reason <> None in
  let greeting = Core.Serve.greeting_json srv in
  (match socket with
  | None ->
      print_endline greeting;
      flush Stdlib.stdout;
      ignore (Core.Serve.serve_channels ~should_stop srv Stdlib.stdin Stdlib.stdout);
      Core.Serve.shutdown_checkpoint srv;
      print_endline (Core.Serve.final_json ?shutdown:!stop_reason srv)
  | Some path ->
      Printf.eprintf "%s\n%!" greeting;
      serve_socket ~should_stop srv path;
      Core.Serve.shutdown_checkpoint srv;
      Printf.eprintf "%s\n%!" (Core.Serve.final_json ?shutdown:!stop_reason srv));
  Core.Serve.close srv;
  Em.Ctx.close ctx

let cmd =
  let doc =
    "Serve an online multiselection session: newline-delimited query batches \
     in (stdin or a Unix socket), JSON replies out, with per-query I/O \
     deltas, per-session metrics and profile spans.  Checkpoints the session \
     state through the simulated checkpoint region (and a $(b,--state) file) \
     so a killed server resumes with $(b,--restore); typed device faults \
     under an armed $(b,--fault-p) plan become structured error replies \
     after bounded retries."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ Cli_args.common_t $ n_t $ socket_t $ state_t $ restore_t
      $ checkpoint_every_t $ io_budget_t
      $ Cli_args.fault_p_t ~default:0. ()
      $ Cli_args.fault_seed_t $ Cli_args.fault_kinds_t $ Cli_args.max_retries_t)
