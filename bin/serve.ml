(* em_repro serve: a long-running online multiselection session.

   The protocol engine (parsing, validation, typed fault replies, retries,
   budgets, checkpoint/state-file round trips, telemetry frames, flight
   recorder, drift watchdog) lives in {!Core.Serve}; this file is the
   process shell around it: flag parsing, signal-driven graceful shutdown,
   and the stdin/socket transports.

   Crash survivability: with [--state PATH] every checkpoint (automatic via
   [--checkpoint-every K], explicit via the [checkpoint] command, and the
   final one on shutdown) is mirrored to a state file, and a later
   [em_repro serve --state PATH --restore] resumes the session — same leaf
   partition, same counters, same subsequent query costs.  SIGINT/SIGTERM
   drain the batch in flight, checkpoint, emit the final summary and unlink
   the socket.

   Observability: [--telemetry FILE] (or [--telemetry-socket PATH]) streams
   one-line JSON frames on a [--telemetry-every]/[--telemetry-seconds]
   cadence — tail them with `em_repro top`; [--flight-dir DIR] leaves a
   post-mortem artifact on every typed error reply and at shutdown;
   [--strict-bounds] exits 4 when the online drift watchdog tripped.

   Every emitted number is a simulated cost except inside "wall":{...}
   objects, so replies (with those normalised) are byte-deterministic for a
   fixed geometry/workload/seed — `make serve-smoke` and `make
   telemetry-smoke` diff them against golden transcripts. *)

open Cmdliner

let n_t =
  Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Input size.")

let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Serve on a Unix domain socket at PATH instead of stdin/stdout \
           (one client at a time; the session persists across connections).")

let state_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "state" ] ~docv:"PATH"
        ~doc:
          "Mirror every session checkpoint to a state file at PATH (written \
           atomically), so a later $(b,--restore) survives this process's \
           death.  By itself enables explicit checkpointing (the \
           $(b,checkpoint) command and shutdown).")

let restore_t =
  Arg.(
    value & flag
    & info [ "restore" ]
        ~doc:
          "Resume the session from $(b,--state)'s file if it exists (fresh \
           start otherwise).  The file must match this machine geometry, \
           workload and seed.")

let checkpoint_every_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every" ] ~docv:"K"
        ~doc:
          "Checkpoint automatically: mid-refinement once K splits accumulate \
           and at the end of every query that refined the tree.")

let io_budget_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "io-budget" ] ~docv:"IOS"
        ~doc:
          "Abort any single query that spends more than IOS metered I/Os \
           with a typed $(b,budget_exceeded) reply.  Refinement already paid \
           for is kept (monotone), so later queries still benefit.")

(* ---- telemetry / flight / drift flags ---- *)

let telemetry_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Append one-line JSON telemetry frames to FILE (truncated at \
           start).  Simulated-cost fields are byte-deterministic; \
           wall-clock fields are confined to each frame's \
           $(b,\"wall\":{...}) object.  Render live with $(b,em_repro top).")

let telemetry_socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-socket" ] ~docv:"PATH"
        ~doc:
          "Stream telemetry frames to a Unix domain socket at PATH (a \
           listener must already be accepting there).  Mutually exclusive \
           with $(b,--telemetry).")

let telemetry_every_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "telemetry-every" ] ~docv:"N"
        ~doc:
          "Emit a telemetry frame every N admitted queries (default 1 when \
           neither cadence flag is given).")

let telemetry_seconds_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "telemetry-seconds" ] ~docv:"S"
        ~doc:"Also emit a telemetry frame whenever S seconds have passed.")

let flight_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-dir" ] ~docv:"DIR"
        ~doc:
          "Dump a flight-recorder post-mortem ($(b,postmortem-NNN.json): \
           last K query records joined with their trace events and a \
           metrics snapshot) into DIR on every typed error reply, budget \
           abort, crash, and at shutdown.")

let flight_capacity_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "flight-capacity" ] ~docv:"K"
        ~doc:"Query records the flight recorder retains (default 64).")

let strict_bounds_t =
  Arg.(
    value & flag
    & info [ "strict-bounds" ]
        ~doc:
          "Exit 4 at shutdown if the online drift watchdog tripped — i.e. \
           the session's running measured/predicted amortized-cost ratio \
           ever exceeded the ceiling.")

let drift_ceiling_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "drift-ceiling" ] ~docv:"R"
        ~doc:
          "Running-ratio ceiling for the drift watchdog (default 6.0, \
           calibrated against the offline online_amortized gate).")

(* ---- transports ---- *)

let serve_socket ~should_stop srv path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close sock;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 1;
      Printf.eprintf "serving on %s\n%!" path;
      let rec accept_loop () =
        if should_stop () then ()
        else
          match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              (* A signal interrupted the blocking accept: either the
                 shutdown flag is now set (checked on re-entry) or it was
                 something harmless — retry either way. *)
              accept_loop ()
          | client, _ ->
              let ic = Unix.in_channel_of_descr client in
              let oc = Unix.out_channel_of_descr client in
              let continue =
                Fun.protect
                  ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
                  (fun () ->
                    (* A client vanishing mid-line (reset on read, EPIPE on
                       reply) ends that client, not the server. *)
                    try Core.Serve.serve_channels ~should_stop srv ic oc
                    with Sys_error _ | Unix.Unix_error _ -> true)
              in
              if continue then accept_loop ()
      in
      accept_loop ())

let run c n socket state restore checkpoint_every io_budget fault_p fault_seed fault_kinds
    max_retries telemetry_file telemetry_socket telemetry_every telemetry_seconds flight_dir
    flight_capacity strict_bounds drift_ceiling =
  Cli_args.setup_logs c;
  let ctx = Cli_args.make_ctx c in
  Cli_args.arm_faults ctx ~max_retries ~fault_p ~fault_seed ~fault_kinds;
  let v = Cli_args.workload_vec c ctx ~n in
  let meta =
    {
      Core.Serve.m_n = n;
      m_mem = c.Cli_args.mem;
      m_block = c.Cli_args.block;
      m_disks = Em.Ctx.disks ctx;
      m_workload = Core.Workload.kind_name c.Cli_args.workload;
      m_seed = c.Cli_args.seed;
    }
  in
  let telemetry =
    match (telemetry_file, telemetry_socket) with
    | Some _, Some _ ->
        Printf.eprintf "serve: --telemetry and --telemetry-socket are mutually exclusive\n%!";
        exit 1
    | None, None -> None
    | file, sock -> (
        let sink =
          match (file, sock) with
          | Some path, _ -> Em.Telemetry.file_sink path
          | _, Some path -> (
              try Em.Telemetry.socket_sink path
              with Failure msg ->
                Printf.eprintf "serve: %s\n%!" msg;
                exit 1)
          | None, None -> assert false
        in
        try
          Some
            (Em.Telemetry.create ?every_queries:telemetry_every
               ?every_seconds:telemetry_seconds sink)
        with Invalid_argument msg ->
          Printf.eprintf "serve: %s\n%!" msg;
          exit 1)
  in
  let srv =
    try
      Core.Serve.create ?checkpoint_every ?io_budget ~max_retries ?state_path:state ~restore
        ?telemetry ?flight_capacity ?flight_dir ?drift_ceiling ~meta ctx v
    with Failure msg ->
      Printf.eprintf "%s\n%!" msg;
      exit 1
  in
  (* Graceful shutdown: the handlers only set a flag; the serve loop drains
     the batch in flight, then checks it between lines (interrupted blocking
     reads surface as EINTR/Sys_error and re-check). *)
  let stop_reason = ref None in
  let on_signal name = Sys.Signal_handle (fun _ -> stop_reason := Some name) in
  Sys.set_signal Sys.sigint (on_signal "sigint");
  Sys.set_signal Sys.sigterm (on_signal "sigterm");
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let should_stop () = !stop_reason <> None in
  let greeting = Core.Serve.greeting_json srv in
  (match socket with
  | None ->
      print_endline greeting;
      flush Stdlib.stdout;
      ignore (Core.Serve.serve_channels ~should_stop srv Stdlib.stdin Stdlib.stdout);
      Core.Serve.shutdown_checkpoint srv;
      print_endline (Core.Serve.finalize ?shutdown:!stop_reason srv)
  | Some path ->
      Printf.eprintf "%s\n%!" greeting;
      serve_socket ~should_stop srv path;
      Core.Serve.shutdown_checkpoint srv;
      Printf.eprintf "%s\n%!" (Core.Serve.finalize ?shutdown:!stop_reason srv));
  let tripped = Core.Drift.tripped (Core.Serve.drift srv) in
  Core.Serve.close srv;
  Em.Ctx.close ctx;
  if strict_bounds && tripped then begin
    Printf.eprintf "serve: drift watchdog tripped (--strict-bounds)\n%!";
    exit 4
  end

let cmd =
  let doc =
    "Serve an online multiselection session: newline-delimited query batches \
     in (stdin or a Unix socket), JSON replies out, with per-query request \
     spans (id + cost object), per-session metrics and profile spans.  \
     Checkpoints the session state through the simulated checkpoint region \
     (and a $(b,--state) file) so a killed server resumes with \
     $(b,--restore); typed device faults under an armed $(b,--fault-p) plan \
     become structured error replies after bounded retries.  Live telemetry \
     streams via $(b,--telemetry)/$(b,--telemetry-socket), post-mortems via \
     $(b,--flight-dir), and the online drift watchdog gates \
     $(b,--strict-bounds)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ Cli_args.common_t $ n_t $ socket_t $ state_t $ restore_t
      $ checkpoint_every_t $ io_budget_t
      $ Cli_args.fault_p_t ~default:0. ()
      $ Cli_args.fault_seed_t $ Cli_args.fault_kinds_t $ Cli_args.max_retries_t
      $ telemetry_t $ telemetry_socket_t $ telemetry_every_t $ telemetry_seconds_t
      $ flight_dir_t $ flight_capacity_t $ strict_bounds_t $ drift_ceiling_t)
