(* em_repro serve: a long-running online multiselection session.

   Reads newline-delimited query batches from stdin (or a Unix socket),
   answers them through one persistent [Emalg.Online_select] session, and
   emits one JSON reply line per query (NDJSON).  Protocol:

     line    := batch
     batch   := query (";" query)*
     query   := "select" INT          rank (1-based)
              | "quantile" FLOAT      0 < phi <= 1
              | "range" INT INT       inclusive 1-based rank interval
              | "stats"               session + machine counters
              | "metrics"             canonical Em.Metrics registry (JSON)
              | "intervals"           current leaf partition
              | "profile"             Em.Profile span tree (I/O counts)
              | "quit"                close the session and exit

   A multi-query batch runs inside one [Ctx.io_window], so on a D-disk
   machine its I/Os are billed in parallel rounds — per-query deltas stay
   correct thanks to [Stats.effective_rounds].  All emitted numbers are
   simulated costs (no wall-clock), so replies are byte-deterministic for a
   fixed geometry/workload/seed: `make serve-smoke` diffs them against a
   golden transcript. *)

open Cmdliner

let icmp = Int.compare

let n_t =
  Arg.(required & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Input size.")

let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Serve on a Unix domain socket at PATH instead of stdin/stdout \
           (one client at a time; the session persists across connections).")

(* ---- tiny JSON emitters (NDJSON; no dependency, no wall-clock) ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_ints a =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"

(* ---- session wrapper ---- *)

type server = {
  ctx : int Em.Ctx.t;
  session : int Emalg.Online_select.t;
  profiler : Em.Profile.t;
  registry : Em.Metrics.t;
}

let reply_json label (r : int Emalg.Online_select.reply) =
  let d = r.Emalg.Online_select.cost in
  Printf.sprintf
    "{\"query\":\"%s\",\"values\":%s,\"ios\":%d,\"reads\":%d,\"writes\":%d,\"rounds\":%d,\"comparisons\":%d,\"refine_ios\":%d,\"answer_ios\":%d,\"splits\":%d}"
    (json_escape label)
    (json_ints r.Emalg.Online_select.values)
    (Em.Stats.delta_ios d) d.Em.Stats.d_reads d.Em.Stats.d_writes d.Em.Stats.d_rounds
    d.Em.Stats.d_comparisons
    (Em.Stats.delta_ios r.Emalg.Online_select.refine)
    r.Emalg.Online_select.answer_ios r.Emalg.Online_select.splits

let summary_json srv =
  let s = Emalg.Online_select.summary srv.session in
  let st = srv.ctx.Em.Ctx.stats in
  Printf.sprintf
    "{\"session\":{\"queries\":%d,\"refine_ios\":%d,\"answer_ios\":%d,\"total_ios\":%d,\"splits\":%d,\"leaves\":%d,\"sorted_leaves\":%d},\"machine\":{\"reads\":%d,\"writes\":%d,\"rounds\":%d,\"comparisons\":%d,\"mem_peak\":%d}}"
    s.Emalg.Online_select.queries s.Emalg.Online_select.refine_ios
    s.Emalg.Online_select.answer_ios
    (s.Emalg.Online_select.refine_ios + s.Emalg.Online_select.answer_ios)
    s.Emalg.Online_select.splits s.Emalg.Online_select.leaves
    s.Emalg.Online_select.sorted_leaves st.Em.Stats.reads st.Em.Stats.writes
    (Em.Stats.effective_rounds st) st.Em.Stats.comparisons st.Em.Stats.mem_peak

(* Per-session Metrics accounting: the machine's native counters plus the
   session's own gauges, dumped in the registry's canonical JSON. *)
let metrics_json srv =
  let reg = srv.registry in
  Em.Metrics.publish_stats reg srv.ctx.Em.Ctx.stats;
  let s = Emalg.Online_select.summary srv.session in
  let g name help v =
    Em.Metrics.set (Em.Metrics.gauge reg ~help name) (float_of_int v)
  in
  g "session_queries" "queries answered by this session" s.Emalg.Online_select.queries;
  g "session_refine_ios" "cumulative refinement I/Os" s.Emalg.Online_select.refine_ios;
  g "session_answer_ios" "cumulative lookup I/Os" s.Emalg.Online_select.answer_ios;
  g "session_splits" "cumulative interval splits" s.Emalg.Online_select.splits;
  g "session_leaves" "current leaf intervals" s.Emalg.Online_select.leaves;
  g "session_sorted_leaves" "leaves holding sorted runs" s.Emalg.Online_select.sorted_leaves;
  String.trim (Em.Metrics.to_json reg)

let intervals_json srv =
  let items =
    List.map
      (fun (lo, len, sorted) ->
        Printf.sprintf "{\"lo\":%d,\"len\":%d,\"sorted\":%b}" lo len sorted)
      (Emalg.Online_select.intervals srv.session)
  in
  Printf.sprintf "{\"intervals\":[%s]}" (String.concat "," items)

(* Span tree of the attached profiler, I/O counts only (wall-clock excluded
   so transcripts stay deterministic). *)
let profile_json srv =
  let spans =
    List.map
      (fun s ->
        Printf.sprintf "{\"path\":\"%s\",\"ios\":%d,\"calls\":%d,\"comparisons\":%d}"
          (json_escape (Em.Profile.path_name s.Em.Profile.path))
          (Em.Profile.span_ios s) s.Em.Profile.calls s.Em.Profile.comparisons)
      (Em.Profile.spans srv.profiler)
  in
  Printf.sprintf "{\"spans\":[%s]}" (String.concat "," spans)

(* ---- protocol ---- *)

type command = Query of Emalg.Online_select.query | Stats | Metrics | Intervals | Profile | Quit

let parse_command str =
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim str))
  in
  match words with
  | [ "select"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (Query (Emalg.Online_select.Select k))
      | None -> Error "select needs an integer rank")
  | [ "quantile"; phi ] -> (
      match float_of_string_opt phi with
      | Some phi -> Ok (Query (Emalg.Online_select.Quantile phi))
      | None -> Error "quantile needs a float")
  | [ "range"; a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> Ok (Query (Emalg.Online_select.Range (a, b)))
      | _ -> Error "range needs two integer ranks")
  | [ "stats" ] -> Ok Stats
  | [ "metrics" ] -> Ok Metrics
  | [ "intervals" ] -> Ok Intervals
  | [ "profile" ] -> Ok Profile
  | [ "quit" ] | [ "exit" ] -> Ok Quit
  | [] -> Error "empty query"
  | w :: _ -> Error (Printf.sprintf "unknown query %S" w)

let run_command srv emit str =
  match parse_command str with
  | Error msg ->
      emit (Printf.sprintf "{\"error\":\"%s\"}" (json_escape msg));
      true
  | Ok Quit -> false
  | Ok Stats ->
      emit (summary_json srv);
      true
  | Ok Metrics ->
      emit (metrics_json srv);
      true
  | Ok Intervals ->
      emit (intervals_json srv);
      true
  | Ok Profile ->
      emit (profile_json srv);
      true
  | Ok (Query q) ->
      (match Emalg.Online_select.query srv.session q with
      | r -> emit (reply_json (String.trim str) r)
      | exception Invalid_argument msg ->
          emit (Printf.sprintf "{\"error\":\"%s\"}" (json_escape msg)));
      true

(* One input line = one batch.  Multi-query batches share a scheduling
   window, so a D-disk machine overlaps their I/Os into parallel rounds. *)
let run_batch srv emit line =
  let queries = String.split_on_char ';' line in
  let go () = List.for_all (fun q -> run_command srv emit q) queries in
  match queries with
  | [] | [ _ ] -> go ()
  | _ -> Em.Ctx.io_window srv.ctx go

let serve_channels srv ic oc =
  let emit line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> true
    | "" -> loop ()
    | line -> if run_batch srv emit line then loop () else false
  in
  loop ()

let final_json srv =
  let s = Emalg.Online_select.summary srv.session in
  Printf.sprintf "{\"closed\":true,\"queries\":%d,\"total_ios\":%d,\"pool_pages\":%d}"
    s.Emalg.Online_select.queries
    (s.Emalg.Online_select.refine_ios + s.Emalg.Online_select.answer_ios)
    (match Em.Ctx.backend_pool srv.ctx with
    | Some pool -> Em.Backend.Pool.resident pool
    | None -> 0)

let serve_socket srv path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close sock;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 1;
      Printf.eprintf "serving on %s\n%!" path;
      let rec accept_loop () =
        let client, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr client in
        let oc = Unix.out_channel_of_descr client in
        let continue =
          Fun.protect
            ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
            (fun () -> serve_channels srv ic oc)
        in
        if continue then accept_loop ()
      in
      accept_loop ())

let run c n socket =
  Cli_args.setup_logs c;
  let ctx = Cli_args.make_ctx c in
  let v = Cli_args.workload_vec c ctx ~n in
  let profiler = Em.Profile.create () in
  Em.Profile.attach profiler ctx.Em.Ctx.stats;
  let cmp = Em.Ctx.counted ctx icmp in
  let session = Emalg.Online_select.open_session cmp ctx v in
  let srv = { ctx; session; profiler; registry = Em.Metrics.create () } in
  let greeting =
    Printf.sprintf
      "{\"serving\":{\"n\":%d,\"mem\":%d,\"block\":%d,\"disks\":%d,\"backend\":\"%s\",\"workload\":\"%s\",\"seed\":%d}}"
      n c.Cli_args.mem c.Cli_args.block (Em.Ctx.disks ctx) (Em.Ctx.backend_name ctx)
      (Core.Workload.kind_name c.Cli_args.workload)
      c.Cli_args.seed
  in
  (match socket with
  | None ->
      print_endline greeting;
      flush Stdlib.stdout;
      ignore (serve_channels srv Stdlib.stdin Stdlib.stdout);
      print_endline (final_json srv)
  | Some path ->
      Printf.eprintf "%s\n%!" greeting;
      serve_socket srv path);
  Emalg.Online_select.close ~drop_cache:true session;
  Em.Ctx.close ctx

let cmd =
  let doc =
    "Serve an online multiselection session: newline-delimited query batches \
     in (stdin or a Unix socket), JSON replies out, with per-query I/O \
     deltas, per-session metrics and profile spans."
  in
  Cmd.v (Cmd.info "serve" ~doc) Term.(const run $ Cli_args.common_t $ n_t $ socket_t)
