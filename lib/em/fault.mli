(** Deterministic, reproducible fault plans for the simulated device.

    A {!plan} is consulted by {!Device} once per {e metered} I/O attempt (the
    injector hook); it decides whether that attempt suffers a typed fault and
    of which {!kind}.  Plans are stateful — they carry a private seeded PRNG
    and an I/O counter — so a given plan replays the exact same fault
    schedule for the same sequence of I/Os, independent of wall clock or the
    global [Random] state.  Unmetered {!Device.Oracle} accesses never consult
    the plan: faults are a property of the simulated disk traffic, not of
    test set-up or verification.

    Fault taxonomy:

    - {e transient} read/write errors fail the one attempt they are injected
      into; a retry of the same block may succeed;
    - {e permanent} read/write errors mark the physical block sticky-bad in
      the device: every later attempt on it fails too (recovery requires
      quarantine + remap, see {!Resilient});
    - {e torn writes} silently store only a prefix of the payload (the I/O
      "succeeds"); detected later by checksum verification on read;
    - {e bit corruption} silently corrupts data — on a write the stored
      payload, on a read just the returned copy (the store stays intact, so
      a verified re-read recovers);
    - {e crash} aborts the whole computation as {!Em_error.Crashed};
      restartable drivers ({!Emalg.Restart}) resume from their last
      checkpoint. *)

type op = [ `Read | `Write ]

type kind =
  | Transient_read
  | Permanent_read
  | Transient_write
  | Permanent_write
  | Torn_write
  | Bit_corruption
  | Crash

val kind_name : kind -> string

val applies : kind -> op -> bool
(** Whether a fault kind can afflict the given operation (e.g.
    [Transient_read] only applies to reads; [Bit_corruption] and [Crash]
    apply to both). *)

val is_permanent : kind -> bool
val is_silent : kind -> bool
(** Silent faults corrupt data without failing the I/O. *)

(** The seeded splitmix64 PRNG used by probabilistic plans (exposed for
    tests that need to predict a schedule). *)
module Rng : sig
  type t

  val create : int -> t
  val float01 : t -> float
  val int : t -> int -> int
end

type plan

val decide : plan -> op:op -> block:int -> phase:string list -> kind option
(** Called by {!Device} for every metered attempt.  Advances the plan's I/O
    counter even when no fault fires. *)

val seen : plan -> int
(** Metered I/O attempts presented to this plan so far. *)

val never : plan

val every_nth : ?offset:int -> n:int -> kind -> plan
(** Fault the [n]-th, [2n]-th, ... I/O (1-based, shifted by [offset]) when
    the kind applies to that operation. *)

val seeded : seed:int -> p:float -> kind list -> plan
(** Fault each I/O independently with probability [p]; when firing, pick
    uniformly among the kinds applicable to the operation.  One uniform draw
    per I/O, so the fault positions depend only on [seed] and [p]. *)

val on_blocks : int list -> kind -> plan
(** Fault every applicable access to the listed (physical) block ids. *)

val in_phase : string -> plan -> plan
(** Restrict a plan to I/Os whose phase path contains the label. *)

val on_op : op -> plan -> plan

val limit : int -> plan -> plan
(** Let the inner plan fire at most [k] times. *)

val crash_after_ios : int -> plan
(** Crash on the [n]-th I/O presented to this plan, exactly once. *)

val crash_at : int list -> plan
(** Crash at each listed 1-based I/O index (at most once per index; indices
    already passed when the plan is installed fire on the next I/O). *)

val any : plan list -> plan
(** First sub-plan that fires wins.  Sub-plans keep their own counters and
    PRNG state; each sees every I/O up to the one that fires. *)
