(** Fault-recovering block access.

    [Resilient.read]/[Resilient.write] are what {!Reader} and {!Writer} call
    instead of the raw {!Device} operations.  On an {e unarmed} device they
    are exact pass-throughs — zero behavioural or cost difference, which is
    what keeps the fault-free golden costs byte-identical.  On an {e armed}
    device ({!Device.arm}) they run the device's {!Device.recovery_policy}:

    - {b retry}: a failed attempt is retried up to [max_retries] more times;
      every attempt — first or retry — costs one metered I/O;
    - {b verify-on-read}: with [verify_reads], each payload returned by the
      device is checked against the block's recorded checksum; mismatches
      (torn writes, bit corruption) trigger a metered re-read;
    - {b verify-on-write}: with [verify_writes], each write is read back
      (one metered recovery read) and checked, catching silent write
      corruption at write time instead of at the next read;
    - {b quarantine + remap}: with [remap_bad], a permanent write fault
      retires the physical slot and redirects the logical block to a fresh
      one, then rewrites.

    When the attempt budget runs out the operation raises a typed
    {!Em_error.Error}: [Read_failed] / [Write_failed] for persistent I/O
    errors, [Corrupt_block] for data that keeps failing verification.
    Permanent read faults fail fast — the data is gone and no retry can
    bring it back.  [Crashed] is never caught here: only a restart driver
    ({!Emalg.Restart}) can survive a crash. *)

val read : 'a Device.t -> int -> 'a array
val write : 'a Device.t -> int -> 'a array -> unit
