(** Fault-recovering block access.

    [Resilient.read]/[Resilient.write] are what {!Reader} and {!Writer} call
    instead of the raw {!Device} operations.  On an {e unarmed} device they
    are exact pass-throughs — zero behavioural or cost difference, which is
    what keeps the fault-free golden costs byte-identical.  On an {e armed}
    device ({!Device.arm}) they run the device's {!Device.recovery_policy}:

    - {b retry}: a failed attempt is retried up to [max_retries] more times;
      every attempt — first or retry — costs one metered I/O;
    - {b verify-on-read}: with [verify_reads], each payload returned by the
      device is checked against the block's recorded checksum; mismatches
      (torn writes, bit corruption) trigger a metered re-read;
    - {b verify-on-write}: with [verify_writes], each write is read back
      (one metered recovery read) and checked, catching silent write
      corruption at write time instead of at the next read;
    - {b quarantine + remap}: with [remap_bad], a permanent write fault
      retires the physical slot and redirects the logical block to a fresh
      one, then rewrites.

    When the attempt budget runs out the operation raises a typed
    {!Em_error.Error}: [Read_failed] / [Write_failed] for persistent I/O
    errors, [Corrupt_block] for data that keeps failing verification.
    Permanent read faults fail fast — the data is gone and no retry can
    bring it back.  [Crashed] is never caught here: only a restart driver
    ({!Emalg.Restart}) can survive a crash. *)

val read : 'a Device.t -> int -> 'a array
val write : 'a Device.t -> int -> 'a array -> unit

val with_retries :
  ?max_retries:int ->
  ?on_retry:(attempt:int -> Em_error.t -> unit) ->
  'a Device.t ->
  (unit -> 'b) ->
  'b
(** [with_retries d f] runs [f], re-running it up to [max_retries] (default
    3) more times when a typed {!Em_error.Error} escapes — the
    operation-level analogue of the per-I/O loops above, for composite
    operations whose partial progress is harmless to repeat (e.g. one online
    query: refinement is monotone, so a re-run only redoes the unfinished
    tail).  Each re-run is metered in [Stats.retries] and marked with a
    {!Trace.Retry} event against the failing block; the re-execution's own
    I/Os are charged as usual, so no backoff fiction is needed.
    [Crashed] and [Budget_exceeded] are never retried.  [on_retry] observes
    each recovery attempt (for logging / reply metadata).  When the budget
    runs out the last error is re-raised. *)
