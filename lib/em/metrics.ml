(* Typed metrics registry: counters, gauges and log-scaled histograms with
   label sets, plus Prometheus / canonical-JSON exporters.  Pure host-side
   observability: registering or updating a metric performs no simulated I/O
   and never changes what an algorithm does. *)

type labels = (string * string) list

let canonical_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then invalid_arg (Printf.sprintf "Metrics: duplicate label %S" a);
        check rest
    | _ -> ()
  in
  check sorted;
  sorted

(* ---- log-scaled histograms ---- *)

type hist = {
  base : float;  (* bucket i (i >= 1) covers (base^(i-1), base^i]; bucket 0 covers (-inf, 1] *)
  mutable buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let make_hist base =
  if not (base > 1.) then invalid_arg "Metrics.histogram: base must be > 1";
  { base; buckets = [||]; count = 0; sum = 0.; min_v = infinity; max_v = neg_infinity }

let bucket_index h v =
  if v <= 1. then 0
  else begin
    (* Smallest i with base^i >= v; recompute against the boundary to dodge
       log rounding on exact powers. *)
    let i = int_of_float (ceil (log v /. log h.base)) in
    let i = max 1 i in
    if Float.pow h.base (float_of_int (i - 1)) >= v then i - 1
    else if Float.pow h.base (float_of_int i) >= v then i
    else i + 1
  end

let bucket_le h i = if i = 0 then 1. else Float.pow h.base (float_of_int i)

let observe h v =
  if Float.is_nan v then invalid_arg "Metrics.observe: NaN";
  let i = bucket_index h v in
  if i >= Array.length h.buckets then begin
    let grown = Array.make (i + 1) 0 in
    Array.blit h.buckets 0 grown 0 (Array.length h.buckets);
    h.buckets <- grown
  end;
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let quantile h q =
  if not (0. <= q && q <= 1.) then invalid_arg "Metrics.quantile: q outside [0, 1]";
  if h.count = 0 then nan
  else begin
    (* Rank-based: the smallest bucket whose cumulative count reaches
       ceil(q * count), reported as the bucket's upper boundary clamped to
       the observed range (so a single sample reports itself exactly). *)
    let target = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let rec find i acc =
      if i >= Array.length h.buckets then Array.length h.buckets - 1
      else
        let acc = acc + h.buckets.(i) in
        if acc >= target then i else find (i + 1) acc
    in
    let i = find 0 0 in
    Float.min h.max_v (Float.max h.min_v (bucket_le h i))
  end

let hist_buckets h =
  (* Cumulative counts per boundary, Prometheus-style, trailing +Inf
     implicit (equal to count). *)
  let acc = ref 0 in
  Array.to_list (Array.mapi
    (fun i c ->
      acc := !acc + c;
      (bucket_le h i, !acc))
    h.buckets)

(* ---- registry ---- *)

type value = Counter of int ref | Gauge of float ref | Histogram of hist

type metric = { name : string; labels : labels; help : string; value : value }

type t = { namespace : string; mutable metrics : metric list (* newest first *) }

let create ?(namespace = "em") () = { namespace; metrics = [] }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let same_kind a b =
  match (a, b) with
  | Counter _, Counter _ | Gauge _, Gauge _ | Histogram _, Histogram _ -> true
  | _ -> false

let check_name name =
  if name = "" then invalid_arg "Metrics: empty metric name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name))
    name

(* Find-or-register: one instance per (name, labels); re-registering with a
   different kind is a programming error. *)
let register t ~name ~labels ~help fresh =
  check_name name;
  let labels = canonical_labels labels in
  match
    List.find_opt (fun m -> m.name = name && m.labels = labels) t.metrics
  with
  | Some m ->
      let v = fresh () in
      if not (same_kind m.value v) then
        invalid_arg
          (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name m.value)
             (kind_name v));
      m.value
  | None ->
      let m = { name; labels; help; value = fresh () } in
      t.metrics <- m :: t.metrics;
      m.value

type counter = int ref
type gauge = float ref
type histogram = hist

let counter t ?(help = "") ?(labels = []) name =
  match register t ~name ~labels ~help (fun () -> Counter (ref 0)) with
  | Counter r -> r
  | _ -> assert false

let gauge t ?(help = "") ?(labels = []) name =
  match register t ~name ~labels ~help (fun () -> Gauge (ref 0.)) with
  | Gauge r -> r
  | _ -> assert false

let histogram t ?(help = "") ?(base = 2.) ?(labels = []) name =
  match register t ~name ~labels ~help (fun () -> Histogram (make_hist base)) with
  | Histogram h -> h
  | _ -> assert false

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters only go up";
  c := !c + by

let counter_value c = !c
let set g v = g := v
let add g v = g := !g +. v
let gauge_value g = !g
let hist_count h = h.count
let hist_sum h = h.sum

(* Export order: by name, then by canonical labels — independent of
   registration order, so exports are diffable. *)
let sorted_metrics t =
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> compare a.labels b.labels
      | c -> c)
    t.metrics

(* %.12g keeps integers integral ("42") and is stable across runs. *)
let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

(* ---- Prometheus text exposition ---- *)

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels))

let to_prometheus t =
  let b = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun m ->
      let full = t.namespace ^ "_" ^ m.name in
      if not (Hashtbl.mem seen_header full) then begin
        Hashtbl.add seen_header full ();
        if m.help <> "" then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" full (prom_escape m.help));
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" full (kind_name m.value))
      end;
      match m.value with
      | Counter r ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" full (prom_labels m.labels) !r)
      | Gauge r ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" full (prom_labels m.labels) (fmt_float !r))
      | Histogram h ->
          List.iter
            (fun (le, cum) ->
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" full
                   (prom_labels (m.labels @ [ ("le", fmt_float le) ]))
                   cum))
            (hist_buckets h);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" full
               (prom_labels (m.labels @ [ ("le", "+Inf") ]))
               h.count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" full (prom_labels m.labels) (fmt_float h.sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" full (prom_labels m.labels) h.count))
    (sorted_metrics t);
  Buffer.contents b

(* ---- canonical JSON ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)

let json_float x =
  if Float.is_nan x then "null"
  else if x = infinity then json_str "+Inf"
  else if x = neg_infinity then json_str "-Inf"
  else fmt_float x

let json_labels labels =
  Printf.sprintf "{%s}"
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_str k) (json_str v)) labels))

let to_json t =
  let metric m =
    let common =
      Printf.sprintf "\"name\":%s,\"type\":%s,\"labels\":%s"
        (json_str (t.namespace ^ "_" ^ m.name))
        (json_str (kind_name m.value))
        (json_labels m.labels)
    in
    match m.value with
    | Counter r -> Printf.sprintf "{%s,\"value\":%d}" common !r
    | Gauge r -> Printf.sprintf "{%s,\"value\":%s}" common (json_float !r)
    | Histogram h ->
        Printf.sprintf "{%s,\"count\":%d,\"sum\":%s,\"buckets\":[%s]}" common h.count
          (json_float h.sum)
          (String.concat ","
             (List.map
                (fun (le, cum) ->
                  Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float le) cum)
                (hist_buckets h)))
  in
  Printf.sprintf "{\"namespace\":%s,\"metrics\":[%s]}\n" (json_str t.namespace)
    (String.concat "," (List.map metric (sorted_metrics t)))

(* ---- bridging from the simulator's native counters ---- *)

let publish_stats t (s : Stats.t) =
  set (gauge t ~help:"Block reads" "reads_total") (float_of_int s.Stats.reads);
  set (gauge t ~help:"Block writes" "writes_total") (float_of_int s.Stats.writes);
  set (gauge t ~help:"Total I/Os" "ios_total") (float_of_int (Stats.ios s));
  set (gauge t ~help:"Comparisons" "comparisons_total") (float_of_int s.Stats.comparisons);
  set (gauge t ~help:"Faulted attempts" "faults_total") (float_of_int s.Stats.faults);
  set (gauge t ~help:"Recovery re-attempts" "retries_total") (float_of_int s.Stats.retries);
  set
    (gauge t ~help:"Peak memory words in use" "mem_peak_words")
    (float_of_int s.Stats.mem_peak);
  (* Round gauges appear only when parallel disks actually compressed the
     schedule (rounds < ios), so single-disk runs — and the pinned exporter
     goldens — keep their shape. *)
  if s.Stats.rounds < Stats.ios s then begin
    set
      (gauge t ~help:"Parallel I/O rounds (one block per disk per round)"
         "rounds_total")
      (float_of_int s.Stats.rounds);
    List.iter
      (fun (disk, ios) ->
        set
          (gauge t ~help:"I/Os landing per disk"
             ~labels:[ ("disk", string_of_int disk) ]
             "disk_ios")
          (float_of_int ios))
      (Stats.disk_report s)
  end;
  (* Buffer-pool gauges appear only once a cached backend has been active,
     so uncached runs (and the pinned exporter goldens) keep their shape. *)
  if s.Stats.cache_hits > 0 || s.Stats.cache_misses > 0 || s.Stats.cache_evictions > 0
  then begin
    set
      (gauge t ~help:"Buffer-pool hits on metered reads" "cache_hits_total")
      (float_of_int s.Stats.cache_hits);
    set
      (gauge t ~help:"Buffer-pool misses on metered reads" "cache_misses_total")
      (float_of_int s.Stats.cache_misses);
    set
      (gauge t ~help:"Buffer-pool page evictions" "cache_evictions_total")
      (float_of_int s.Stats.cache_evictions)
  end;
  (* Communication gauges appear only once the machine has actually moved
     words between shards, so single-machine runs — and the pinned exporter
     goldens — keep their shape. *)
  if s.Stats.comm_rounds > 0 || s.Stats.comm_words > 0 then begin
    set
      (gauge t ~help:"Communication rounds (one per BSP superstep)" "comm_rounds_total")
      (float_of_int s.Stats.comm_rounds);
    set
      (gauge t ~help:"Words moved between shards" "comm_words_total")
      (float_of_int s.Stats.comm_words);
    List.iter
      (fun (shard, words) ->
        set
          (gauge t ~help:"Words sent per source shard"
             ~labels:[ ("shard", string_of_int shard) ]
             "shard_sent_words")
          (float_of_int words))
      (Stats.sent_report s);
    List.iter
      (fun (shard, words) ->
        set
          (gauge t ~help:"Words received per destination shard"
             ~labels:[ ("shard", string_of_int shard) ]
             "shard_recv_words")
          (float_of_int words))
      (Stats.recv_report s)
  end;
  List.iter
    (fun (path, ios) ->
      set
        (gauge t ~help:"I/Os attributed per phase path" ~labels:[ ("path", path) ]
           "phase_ios")
        (float_of_int ios))
    (Stats.phase_report s)
