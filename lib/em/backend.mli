(** Physical block storage behind {!Device}.

    {!Device} is a metering / fault-injection / recovery shell; the actual
    byte shuffling happens in a backend — a record of closures over
    {e physical} slot numbers.  Three implementations ship:

    - {!sim}: the historical in-memory option array.  Zero-cost, default,
      and the reference for golden I/O counts.
    - {!file}: fixed-size marshalled slots on a real Unix file (one seek +
      read/write per block, [fsync] on flush), for honest wall-clock numbers.
    - {!cached}: a buffer-pool LRU wrapper over any backend.  Resident pages
      are charged against the {!Mem} ledger (so [mem_peak <= M] still
      holds), and hits/misses/evictions are metered through {!Stats},
      {!Trace} and {!Metrics}.

    Backends are records of closures rather than a functor because a linked
    device family ({!Ctx.linked}) mixes element types yet must share one
    buffer pool: the pool holds untyped eviction callbacks while each typed
    backend keeps its own page table.

    Whatever the backend, the {e counted} I/O model is unchanged: {!Device}
    charges one I/O per metered block access (a cache hit still costs one
    counted I/O), so golden cost files are identical across backends. *)

type 'a t = {
  name : string;
  alloc : unit -> int;  (** grab a fresh (or recycled) physical slot *)
  load : int -> 'a array option;  (** [None] = never written / freed *)
  store : int -> 'a array -> unit;
      (** owns copying: the caller's array is not retained *)
  free : int -> unit;  (** recycle the slot; subsequent [load] is [None] *)
  probe : int -> Trace.cache option;
      (** residency check {e before} a metered read; [None] = uncached *)
  prefetch : int -> unit;
      (** advisory, unmetered: start fetching the slot's bytes early.  A
          no-op everywhere except the {e asynchronous} file assembly, where
          it stages a read on the slot's worker domain; a later
          {!field-load} of the same slot consumes the staged bytes instead
          of blocking on a fresh seek.  Never changes what a load returns —
          only when the wall-clock wait happens. *)
  pin : int -> unit;  (** protect a resident page from eviction (no-op if uncached) *)
  unpin : int -> unit;
  flush : unit -> unit;  (** write back dirty pages / [fsync] to stable storage *)
  close : unit -> unit;  (** release OS resources; idempotent *)
}

val default_slots : Params.t -> int
(** Initial slot-table size for fresh devices: scaled to the machine's
    [M/B] fanout (never below the historical 64) so large sweeps don't pay
    repeated store regrowth. *)

val sim : ?slots:int -> ?disks:int -> unit -> 'a t
(** In-memory store seeded with [slots] (default 64) and doubling on
    demand — behaviourally identical to the store {!Device} used to embed.
    With [disks = D] (default 1) slot placement is striped: slot [s] lives
    on disk [s mod D], allocation round-robins across disks, and each disk
    recycles its own slots LIFO; at D = 1 the allocator is the historical
    single free list. *)

val file :
  ?dir:string ->
  ?delay:(unit -> unit) ->
  ?io:Io_pool.t ->
  ?disks:int ->
  slot_bytes:int ->
  unit ->
  'a t
(** Marshalled blocks in fixed [slot_bytes]-sized slots of temp files — one
    backing file per disk ([disks], default 1), with slot [s] stored on disk
    [s mod D] at offset [(s / D) * slot_bytes].

    The files are created under [dir] (default: [$EM_BACKEND_DIR], falling
    back to the system temp dir) and unlinked immediately after opening, so
    no block file can outlive its fd — not across a bench sweep, not even on
    a crash.  The fds are released by {!field-close} (idempotent) or, as a
    backstop, by a GC finaliser.

    A payload whose marshalled form exceeds the slot raises
    {!Em_error.Slot_overflow} — synchronously, under either assembly, since
    marshalling always happens on the caller's domain; size [slot_bytes]
    from the block size via {!default_slot_bytes}.

    [delay] models per-access device latency: it is invoked once before
    every raw slot read or write, on whichever domain performs it (bench
    speedup gates and stress-test jitter hang off this hook).

    [io] selects the {e asynchronous} assembly: raw slot I/O executes on
    the pool's worker domains — stores become write-behind (awaited by
    {!field-flush} and {!field-close}), {!field-prefetch} stages reads —
    while every observable decision ([written] set, allocator order,
    overflow checks) stays on the caller's domain in the synchronous
    order.  Requests are keyed by (backend, disk), so one worker owns each
    fd (no seek races) and same-slot requests retire in submission order. *)

val latency_env_var : string  (** ["EM_FILE_LATENCY_US"] *)

val default_file_delay : unit -> (unit -> unit) option
(** Delay hook implied by the environment: [Some sleep] of
    [$EM_FILE_LATENCY_US] microseconds when set and positive, else [None].
    @raise Invalid_argument when set but unparseable or negative. *)

val default_slot_bytes : Params.t -> int
(** [32*B + 512] bytes: a generous budget for [B] marshalled scalars. *)

(** A buffer pool shared by every cached backend of a linked device family.

    Frames are keyed by [(owner, slot)] where [owner] identifies the client
    backend, replaced LRU, and charged [B] words each against the {!Mem}
    ledger while resident.  Admission is {e opportunistic}: when every frame
    is pinned or the ledger cannot absorb another page even after reclaim,
    the would-be admission is simply bypassed (pass-through I/O) — caching
    must never make an algorithm exceed [M].  Conversely, the pool installs
    a {!Stats.set_reclaim} hook so that an algorithm's own memory pressure
    evicts cache pages before [Memory_exceeded] is raised. *)
module Pool : sig
  type t

  val create : ?pages:int -> Params.t -> Stats.t -> t
  (** Pool holding at most [pages] frames (default {!default_pages}).
      Installs the memory-pressure reclaim hook on [stats], chaining any
      hook already present. *)

  val default_pages : Params.t -> int
  (** [max 2 (fanout/2)]: half the machine's memory, leaving the other half
      to the algorithm. *)

  val capacity : t -> int
  val resident : t -> int  (** currently resident frames; [<= capacity] *)

  val client : t -> int
  (** Fresh owner id for one cached backend. *)

  val admit : t -> owner:int -> slot:int -> evict:(unit -> unit) -> bool
  (** Try to make [(owner, slot)] resident, evicting LRU unpinned frames as
      needed.  [false] = bypass (pool pinned solid, or ledger full). *)

  val touch : t -> owner:int -> slot:int -> unit
  val pin : t -> owner:int -> slot:int -> unit
  val unpin : t -> owner:int -> slot:int -> unit

  val drop_all : t -> unit
  (** Evict every unpinned frame (write-back included), returning their
      words to the {!Mem} ledger.  End-of-run teardown. *)

  val forget : t -> owner:int -> slot:int -> unit
  (** Drop a frame without eviction semantics (no write-back, not counted as
      an eviction): the block was freed or the backend closed. *)
end

val cached : pool:Pool.t -> 'a t -> 'a t
(** Write-back, write-allocate LRU pages over [inner].  {!field-probe}
    reports {!Trace.Hit}/{!Trace.Miss}; {!field-flush} writes back dirty
    pages (keeping them resident) before flushing [inner]; {!field-free}
    and {!field-close} return pages to the pool without write-back. *)

(** {1 Specs and instances}

    A {!spec} is the user-facing backend choice (CLI flag, [EM_BACKEND]
    environment variable); an {!instance} binds it to one machine's
    parameters, stats and (for cached specs) buffer pool, and mints one
    typed backend per device so a linked family shares the pool while each
    device keeps its own slot space. *)

type spec = Sim | File | Cached of spec  (** [Cached Sim] is plain [cached] *)

val spec_name : spec -> string
(** ["sim"], ["file"], ["cached"], ["cached:file"], ... *)

val spec_of_string : string -> (spec, string) result
val env_var : string  (** ["EM_BACKEND"] *)

val default_spec : unit -> spec
(** [$EM_BACKEND] parsed with {!spec_of_string} ([Sim] when unset); an
    unparseable value raises [Invalid_argument] rather than being silently
    ignored. *)

type instance

val instance :
  ?dir:string ->
  ?slot_bytes:int ->
  ?pool_pages:int ->
  ?async:bool ->
  ?io_pool:Io_pool.t ->
  ?file_delay:(unit -> unit) ->
  spec ->
  Params.t ->
  Stats.t ->
  instance
(** [async] (default: {!Params.default_async}, i.e. [$EM_ASYNC]) executes
    file I/O on the shared {!Io_pool.global} pool; [io_pool] overrides the
    pool itself (tests).  Both are ignored for spec families containing no
    [File] layer — a pure sim machine never touches the domain pool.
    [file_delay] (default: {!default_file_delay}, i.e. [$EM_FILE_LATENCY_US])
    is threaded to every {!file} backend of the family. *)

val name : instance -> string
val pool : instance -> Pool.t option

val async_enabled : instance -> bool
(** Whether this family's file backends run the asynchronous assembly. *)

val make : instance -> 'a t
(** A fresh typed backend for one device of the family, striped across the
    machine's [Params.disks]. *)
