(** Structured I/O event tracing.

    Every metered {!Device} operation emits one {!event} carrying the
    operation kind, the block id, the phase path that was active (see
    {!Phase}), and a sequential-vs-random classification derived from the
    previously accessed block id.  Events flow into pluggable {!sink}s: by
    default a bounded in-memory ring buffer (cheap enough to leave on), and
    optionally a JSONL file sink for offline analysis or ad-hoc callbacks.

    Tracing is observability machinery: it costs no simulated I/O and never
    changes what an algorithm does. *)

type op = Read | Write

type locality =
  | Sequential  (** same block as the previous I/O, or the next block id *)
  | Random  (** anything else: the disk head had to seek *)

type kind =
  | Io  (** an ordinary first-attempt I/O *)
  | Retry  (** a recovery re-attempt charged by {!Resilient} *)
  | Faulted of Fault.kind  (** an attempt on which a fault was injected *)

type cache =
  | Hit  (** served from a resident buffer-pool page *)
  | Miss  (** had to go to the underlying backend *)

type event = {
  seq : int;  (** 0-based sequence number of the I/O on this tracer *)
  op : op;
  kind : kind;
  block : int;
  phase : string list;  (** phase path, innermost label first *)
  locality : locality;
  backend : string;  (** storage backend that served the I/O; ["sim"] default *)
  cache : cache option;  (** buffer-pool outcome, for cached reads only *)
  disk : int option;
      (** disk the block is striped onto; [None] on a single-disk machine *)
  round : int option;
      (** parallel round id; I/Os batched in one scheduling window share it *)
  shard : int option;
      (** cluster shard that issued the I/O; [None] on a single machine *)
}

type sink
type t

val create : ?ring_capacity:int -> unit -> t
(** A tracer with a single bounded ring-buffer sink.  When [ring_capacity]
    is omitted the capacity honours the [EM_TRACE_RING] environment variable
    ({!env_ring_capacity}), defaulting to {!default_ring_capacity} — so
    flight-recorder depth is tunable per deployment without a code change.
    The ring retains the most recent events and counts how many it
    evicted. *)

val default_ring_capacity : int

val ring_env_var : string
(** ["EM_TRACE_RING"]. *)

val env_ring_capacity : unit -> int
(** The ring capacity {!create} uses when none is passed: [$EM_TRACE_RING]
    if set and non-empty, {!default_ring_capacity} otherwise.
    @raise Invalid_argument if the variable is set to anything but a
    positive integer. *)

val ring_sink : capacity:int -> sink
val jsonl_sink : out_channel -> sink
(** One JSON object per line; the caller owns (and closes) the channel. *)

val custom_sink : ?reset:(unit -> unit) -> (event -> unit) -> sink
(** Ad-hoc callback sink.  [reset] (default: do nothing) is invoked by
    {!reset} so stateful callbacks can drop accumulated state along with the
    rest of the tracer. *)

val collector : unit -> sink * (unit -> event list)
(** An unbounded sink that retains every event, plus a function returning
    them oldest-first.  Use for reports on runs whose length exceeds any
    reasonable ring.  {!reset} clears the retained events. *)

val counter : (event -> bool) -> sink * (unit -> int)
(** A constant-space sink counting the events that satisfy the predicate.
    {!reset} zeroes the count. *)

val add_sink : t -> sink -> unit

val emit :
  ?kind:kind -> ?backend:string -> ?cache:cache -> ?disk:int -> ?round:int ->
  ?shard:int -> t -> op -> block:int -> phase:string list -> unit
(** Record one I/O (called by {!Device}; [kind] defaults to {!Io}, [backend]
    to ["sim"], [cache]/[disk]/[round]/[shard] to [None]).  The first event
    on a tracer is classified {!Random} (the head must seek to the first
    block). *)

val events : t -> event list
(** Retained events of the first ring sink, oldest first. *)

val dropped : t -> int
(** Events evicted from the first ring sink since creation/reset. *)

val total : t -> int
(** Total events emitted (independent of ring capacity). *)

val reset : t -> unit
(** Clear sequence numbering, locality state, and the contents of {e every}
    sink that owns state: ring sinks are emptied (length, head and dropped
    count), and custom sinks — including {!collector} and {!counter} — have
    their [reset] hook invoked, so no sink silently carries events across
    runs.  JSONL sinks are the one exception: the tracer does not own the
    channel, so already-written lines stay in the file and subsequent events
    are appended (their [seq] restarts at 0). *)

val op_name : op -> string
val locality_name : locality -> string
val kind_name : kind -> string
val cache_name : cache -> string

val event_to_json : event -> string
(** One JSON object.  The [backend], [cache], [disk]/[round] and [shard]
    fields are omitted when they carry no information (backend ["sim"],
    cache [None], disk [None] — i.e. a single-disk machine — shard [None]
    — i.e. not part of a cluster), so traces from the default simulated
    backend keep their historical shape. *)
