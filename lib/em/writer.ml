type 'a t = {
  ctx : 'a Ctx.t;
  write_behind : int;  (* filled blocks that may wait before a batched drain *)
  mutable buffer : 'a option array;  (* staged elements of the current block *)
  mutable fill : int;
  mutable blocks : int list;  (* allocated block ids, newest first *)
  queue : (int * 'a array) Queue.t;  (* allocated, filled, not yet written *)
  mutable written : int;  (* elements already handed off a full buffer *)
  mutable closed : bool;
  mutable reclaimer : (int -> int) option ref option;
}

(* Write out every queued block, oldest first, as one scheduling window so a
   D-disk machine overlaps them into few parallel rounds; each block's
   deferred [B]-word charge is released as it reaches the device. *)
let drain w =
  if not (Queue.is_empty w.queue) then begin
    let b = Ctx.block_size w.ctx in
    let write_all () =
      while not (Queue.is_empty w.queue) do
        let id, payload = Queue.pop w.queue in
        Resilient.write w.ctx.Ctx.dev id payload;
        Mem.release w.ctx.Ctx.params w.ctx.Ctx.stats b
      done
    in
    if Queue.length w.queue > 1 then Stats.with_window w.ctx.Ctx.stats write_all
    else write_all ()
  end

let create ?(write_behind = 0) ctx =
  if write_behind < 0 then invalid_arg "Writer.create: negative write_behind";
  let b = Ctx.block_size ctx in
  Mem.charge ctx.Ctx.params ctx.Ctx.stats b;
  let w =
    {
      ctx;
      write_behind;
      buffer = Array.make b None;
      fill = 0;
      blocks = [];
      queue = Queue.create ();
      written = 0;
      closed = false;
      reclaimer = None;
    }
  in
  (* A queue of deferred writes is memory someone else may need: register a
     pressure callback that flushes it — the writes happen either way, the
     queue just loses its batching — so a long-lived write-behind writer
     (e.g. a partitioner's output stream) cannot starve mandatory charges
     made while it is open. *)
  if write_behind > 0 then
    w.reclaimer <-
      Some
        (Stats.add_reclaimer ctx.Ctx.stats (fun _deficit ->
             let queued = Queue.length w.queue in
             drain w;
             queued * b));
  w

let check_open w = if w.closed then invalid_arg "Writer: already closed"

(* Hand off one filled payload.  The block id is allocated here, eagerly, so
   allocation order — and with it slot placement and golden block ids — is
   identical whether or not the write itself is deferred.  Queueing is
   opportunistic: each pending payload is charged [B] words, and when the
   ledger has no room the queue drains and the payload goes straight to the
   device, so [mem_peak <= M] survives any write-behind depth. *)
let hand_off w payload =
  let id = Device.alloc w.ctx.Ctx.dev in
  w.blocks <- id :: w.blocks;
  if w.write_behind = 0 then Resilient.write w.ctx.Ctx.dev id payload
  else
    match Mem.charge w.ctx.Ctx.params w.ctx.Ctx.stats (Ctx.block_size w.ctx) with
    | () ->
        Queue.push (id, payload) w.queue;
        if Queue.length w.queue > w.write_behind then drain w
    | exception Mem.Memory_exceeded _ ->
        drain w;
        Resilient.write w.ctx.Ctx.dev id payload

let flush w =
  if w.fill > 0 then begin
    let payload =
      Array.init w.fill (fun i ->
          match w.buffer.(i) with
          | Some e -> e
          | None -> assert false)
    in
    hand_off w payload;
    w.written <- w.written + w.fill;
    w.fill <- 0
  end

let push w e =
  check_open w;
  w.buffer.(w.fill) <- Some e;
  w.fill <- w.fill + 1;
  if w.fill = Array.length w.buffer then flush w

let push_array w a = Array.iter (push w) a
let length w = w.written + w.fill

let release_buffer w =
  let b = Ctx.block_size w.ctx in
  (match w.reclaimer with
  | Some h ->
      Stats.remove_reclaimer w.ctx.Ctx.stats h;
      w.reclaimer <- None
  | None -> ());
  Mem.release w.ctx.Ctx.params w.ctx.Ctx.stats b;
  w.closed <- true;
  w.buffer <- [||]

let finish w =
  check_open w;
  flush w;
  drain w;
  let len = w.written in
  let blocks = Array.of_list (List.rev w.blocks) in
  release_buffer w;
  Vec.of_blocks w.ctx blocks len

let abandon w =
  check_open w;
  let b = Ctx.block_size w.ctx in
  (* Queued payloads die with the writer: release their deferred charges and
     free their (never-written) blocks along with the written ones. *)
  Mem.release w.ctx.Ctx.params w.ctx.Ctx.stats (Queue.length w.queue * b);
  Queue.clear w.queue;
  List.iter (Device.free w.ctx.Ctx.dev) w.blocks;
  w.blocks <- [];
  release_buffer w

let with_writer ?write_behind ctx f =
  let w = create ?write_behind ctx in
  match f w with
  | () -> finish w
  | exception e ->
      abandon w;
      raise e
