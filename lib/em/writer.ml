type 'a t = {
  ctx : 'a Ctx.t;
  mutable buffer : 'a option array;  (* staged elements of the current block *)
  mutable fill : int;
  mutable blocks : int list;  (* written block ids, newest first *)
  mutable written : int;  (* elements already flushed to disk *)
  mutable closed : bool;
}

let create ctx =
  let b = Ctx.block_size ctx in
  Mem.charge ctx.Ctx.params ctx.Ctx.stats b;
  { ctx; buffer = Array.make b None; fill = 0; blocks = []; written = 0; closed = false }

let check_open w = if w.closed then invalid_arg "Writer: already closed"

let flush w =
  if w.fill > 0 then begin
    let payload =
      Array.init w.fill (fun i ->
          match w.buffer.(i) with
          | Some e -> e
          | None -> assert false)
    in
    let id = Device.alloc w.ctx.Ctx.dev in
    Resilient.write w.ctx.Ctx.dev id payload;
    w.blocks <- id :: w.blocks;
    w.written <- w.written + w.fill;
    w.fill <- 0
  end

let push w e =
  check_open w;
  w.buffer.(w.fill) <- Some e;
  w.fill <- w.fill + 1;
  if w.fill = Array.length w.buffer then flush w

let push_array w a = Array.iter (push w) a
let length w = w.written + w.fill

let release_buffer w =
  let b = Ctx.block_size w.ctx in
  Mem.release w.ctx.Ctx.params w.ctx.Ctx.stats b;
  w.closed <- true;
  w.buffer <- [||]

let finish w =
  check_open w;
  flush w;
  let len = w.written in
  let blocks = Array.of_list (List.rev w.blocks) in
  release_buffer w;
  Vec.of_blocks w.ctx blocks len

let abandon w =
  check_open w;
  List.iter (Device.free w.ctx.Ctx.dev) w.blocks;
  w.blocks <- [];
  release_buffer w

let with_writer ctx f =
  let w = create ctx in
  match f w with
  | () -> finish w
  | exception e ->
      abandon w;
      raise e
