type op = Read | Write
type locality = Sequential | Random
type kind = Io | Retry | Faulted of Fault.kind
type cache = Hit | Miss

type event = {
  seq : int;
  op : op;
  kind : kind;
  block : int;
  phase : string list;
  locality : locality;
  backend : string;
  cache : cache option;
  disk : int option;
  round : int option;
  shard : int option;
}

type ring = {
  capacity : int;
  mutable buf : event array;  (* physically empty until the first event *)
  mutable len : int;
  mutable head : int;  (* index of the oldest retained event *)
  mutable dropped : int;
}

type sink =
  | Ring of ring
  | Jsonl of out_channel
  | Custom of { push : event -> unit; on_reset : unit -> unit }

type t = {
  mutable sinks : sink list;
  mutable last_block : int;
  mutable next_seq : int;
}

let default_ring_capacity = 8192
let ring_env_var = "EM_TRACE_RING"

(* Same contract as [Params.default_disks]/EM_DISKS: unset or empty means
   the baked-in default, anything else must be a positive integer. *)
let env_ring_capacity () =
  match Sys.getenv_opt ring_env_var with
  | None | Some "" -> default_ring_capacity
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some c when c >= 1 -> c
      | _ ->
          invalid_arg
            (Printf.sprintf "Trace: %s must be a positive integer (got %S)" ring_env_var s))

let make_ring capacity =
  if capacity < 1 then invalid_arg "Trace.ring_sink: capacity must be >= 1";
  { capacity; buf = [||]; len = 0; head = 0; dropped = 0 }

let ring_sink ~capacity = Ring (make_ring capacity)
let jsonl_sink oc = Jsonl oc
let custom_sink ?(reset = fun () -> ()) f = Custom { push = f; on_reset = reset }

let create ?ring_capacity () =
  let capacity =
    match ring_capacity with Some c -> c | None -> env_ring_capacity ()
  in
  { sinks = [ ring_sink ~capacity ]; last_block = min_int; next_seq = 0 }

let add_sink t sink = t.sinks <- t.sinks @ [ sink ]

let collector () =
  let acc = ref [] in
  ( Custom { push = (fun e -> acc := e :: !acc); on_reset = (fun () -> acc := []) },
    fun () -> List.rev !acc )

let counter pred =
  let n = ref 0 in
  ( Custom { push = (fun e -> if pred e then incr n); on_reset = (fun () -> n := 0) },
    fun () -> !n )

let op_name = function Read -> "read" | Write -> "write"
let locality_name = function Sequential -> "sequential" | Random -> "random"
let cache_name = function Hit -> "hit" | Miss -> "miss"

let kind_name = function
  | Io -> "io"
  | Retry -> "retry"
  | Faulted k -> "fault:" ^ Fault.kind_name k

(* Phase labels are plain ASCII identifiers, for which OCaml's %S escaping
   coincides with JSON string escaping.  Backend annotations are only
   emitted when they carry information ([sim] with no cache outcome is the
   counted-model default), so sim-backed traces keep the historical shape. *)
let event_to_json e =
  Printf.sprintf "{\"seq\":%d,\"op\":%S,\"kind\":%S,\"block\":%d,\"phase\":[%s],\"locality\":%S%s%s}"
    e.seq (op_name e.op) (kind_name e.kind) e.block
    (String.concat "," (List.map (Printf.sprintf "%S") e.phase))
    (locality_name e.locality)
    (if e.backend = "sim" then "" else Printf.sprintf ",\"backend\":%S" e.backend)
    ((match e.cache with
     | None -> ""
     | Some c -> Printf.sprintf ",\"cache\":%S" (cache_name c))
    ^ (match e.disk with
      | None -> ""
      | Some d ->
          Printf.sprintf ",\"disk\":%d%s" d
            (match e.round with
            | None -> ""
            | Some r -> Printf.sprintf ",\"round\":%d" r))
    ^ (match e.shard with
      | None -> ""
      | Some s -> Printf.sprintf ",\"shard\":%d" s))

let ring_push r e =
  if Array.length r.buf = 0 then r.buf <- Array.make r.capacity e;
  if r.len < r.capacity then begin
    r.buf.((r.head + r.len) mod r.capacity) <- e;
    r.len <- r.len + 1
  end
  else begin
    r.buf.(r.head) <- e;
    r.head <- (r.head + 1) mod r.capacity;
    r.dropped <- r.dropped + 1
  end

let ring_events r = List.init r.len (fun i -> r.buf.((r.head + i) mod r.capacity))

let classify t block =
  if t.next_seq = 0 then Random
  else if block = t.last_block || block = t.last_block + 1 then Sequential
  else Random

let emit ?(kind = Io) ?(backend = "sim") ?cache ?disk ?round ?shard t op ~block ~phase =
  let e =
    { seq = t.next_seq; op; kind; block; phase; locality = classify t block;
      backend; cache; disk; round; shard }
  in
  t.next_seq <- t.next_seq + 1;
  t.last_block <- block;
  List.iter
    (function
      | Ring r -> ring_push r e
      | Jsonl oc ->
          output_string oc (event_to_json e);
          output_char oc '\n'
      | Custom c -> c.push e)
    t.sinks

let first_ring t =
  List.find_map (function Ring r -> Some r | _ -> None) t.sinks

let events t = match first_ring t with None -> [] | Some r -> ring_events r
let dropped t = match first_ring t with None -> 0 | Some r -> r.dropped
let total t = t.next_seq

let reset t =
  t.last_block <- min_int;
  t.next_seq <- 0;
  List.iter
    (function
      | Ring r ->
          r.len <- 0;
          r.head <- 0;
          r.dropped <- 0
      | Custom c -> c.on_reset ()
      | Jsonl _ -> ())
    t.sinks
