(** Offline analysis of {!Trace} event streams.

    Computes the per-phase I/O tree (phases nest, so costs form a tree whose
    leaves are innermost labels), the read/write and sequential/random mix,
    random-seek counts, and block-reuse histograms.  Works on any event list
    — typically one captured through {!Trace.collector}. *)

type counts = {
  reads : int;
  writes : int;
  sequential : int;
  random : int;
  faults : int;  (** attempts on which a fault was injected *)
  retries : int;  (** recovery re-attempts *)
  cache_hits : int;  (** reads served from a buffer-pool page *)
  cache_misses : int;  (** reads that went to the underlying backend *)
}

val zero : counts
val merge : counts -> counts -> counts
val ios : counts -> int

val overhead : counts -> int
(** [faults + retries]: the extra I/Os a phase paid because of faults.  Zero
    on a fault-free run. *)

val cached_reads : counts -> int
(** [cache_hits + cache_misses]: reads that carried a cache annotation.
    Zero on uncached backends; equals [reads] under {!Backend.cached}. *)

type node = {
  label : string;
  mutable self : counts;  (** I/Os attributed exactly to this phase path *)
  mutable children : node list;
}

val tree : Trace.event list -> node
(** Root node is labelled ["total"]; children appear in order of first I/O. *)

val subtotal : node -> counts
(** Self counts plus all descendants. *)

type summary = {
  totals : counts;
  distinct_blocks : int;
  reread_histogram : (int * int) list;
      (** (times a block was read, number of such blocks), ascending *)
  rewrite_histogram : (int * int) list;
}

val summarize : Trace.event list -> summary

val random_seeks : Trace.event list -> int
(** Number of events classified {!Trace.Random}. *)

val disk_balance : Trace.event list -> (int * int) list
(** Per-disk I/O counts [(disk, ios)], ascending by disk, from events
    carrying a disk id.  Empty for single-disk traces (the id is emitted
    only when [D > 1]). *)

val shard_balance : Trace.event list -> (int * int) list
(** Per-shard I/O counts [(shard, ios)], ascending by shard, from events
    carrying a shard id.  Empty for single-machine traces (the id is
    emitted only by devices created with a shard identity, i.e. by
    {!Core.Cluster} members). *)

val scheduling_windows : Trace.event list -> int
(** Number of distinct round ids among events carrying one: I/Os sharing an
    id were issued in the same scheduling window and overlap on a
    parallel-disk machine.  Zero for single-disk traces. *)

val pp_counts : Format.formatter -> counts -> unit
val pp_tree : Format.formatter -> Trace.event list -> unit
val pp_summary : Format.formatter -> Trace.event list -> unit
