(* Streaming serve-layer telemetry: periodic one-line JSON frames.

   A [t] wraps a sink (file, Unix socket, or callback) and an emission
   policy — every N queries and/or every T seconds.  The frame layout keeps
   the repo's determinism contract: every simulated-cost field lives in the
   frame's "cost" object and is byte-deterministic for a fixed
   geometry/workload/seed, while every wall-clock-derived field (timestamps,
   qps, latency quantiles) is confined to the "wall" object, so smoke tests
   normalise exactly one sub-object and diff the rest byte-for-byte.

   Frame grammar (one frame per line):

     {"frame":"telemetry","seq":S,"queries":Q,"cost":{...},"wall":{...}}
     {"frame":"alert",    "seq":S,"queries":Q,"cost":{...},"wall":{...}}
     {"frame":"final",    "seq":S,"queries":Q,"cost":{...},"wall":{...}}

   The cost/wall payloads are provided by the caller (Core.Serve) as
   pre-rendered JSON objects; the wall side is a thunk so frames that are
   not due never touch the clock.

   The [Json] submodule is a minimal recursive-descent JSON reader — just
   enough for `em_repro top` to consume its own frames (the repo
   deliberately has no JSON dependency). *)

(* ---- minimal JSON reader ---- *)

module Json = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of v list
    | Obj of (string * v) list

  exception Bad of string

  let utf8_add b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      String.iter (fun c -> expect c) word;
      value
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | None -> fail "unterminated escape"
            | Some c ->
                advance ();
                (match c with
                | '"' -> Buffer.add_char b '"'
                | '\\' -> Buffer.add_char b '\\'
                | '/' -> Buffer.add_char b '/'
                | 'n' -> Buffer.add_char b '\n'
                | 't' -> Buffer.add_char b '\t'
                | 'r' -> Buffer.add_char b '\r'
                | 'b' -> Buffer.add_char b '\b'
                | 'f' -> Buffer.add_char b '\012'
                | 'u' ->
                    if !pos + 4 > n then fail "truncated \\u escape";
                    let hex = String.sub s !pos 4 in
                    pos := !pos + 4;
                    let code =
                      match int_of_string_opt ("0x" ^ hex) with
                      | Some c -> c
                      | None -> fail "invalid \\u escape"
                    in
                    utf8_add b code
                | _ -> fail "unknown escape");
                go ())
        | Some c ->
            advance ();
            Buffer.add_char b c;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "invalid number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let value = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((key, value) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((key, value) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else
            let rec items acc =
              let value = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (value :: acc)
              | Some ']' ->
                  advance ();
                  List (List.rev (value :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            items []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match parse_value () with
    | v ->
        skip_ws ();
        if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
        else Ok v
    | exception Bad msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let num = function Num f -> Some f | _ -> None
  let str = function Str s -> Some s | _ -> None

  let path keys v =
    List.fold_left
      (fun acc key -> match acc with Some v -> member key v | None -> None)
      (Some v) keys
end

(* ---- sinks ---- *)

type sink = Chan of { oc : out_channel; owned : bool } | Fn of (string -> unit)

let channel_sink oc = Chan { oc; owned = false }
let file_sink path = Chan { oc = open_out path; owned = true }

let socket_sink path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     failwith
       (Printf.sprintf "telemetry socket %s: %s" path (Unix.error_message e)));
  Chan { oc = Unix.out_channel_of_descr fd; owned = true }

let fn_sink f = Fn f

(* ---- the emitter ---- *)

type t = {
  sink : sink;
  every_queries : int option;
  every_seconds : float option;
  now : unit -> float;
  mutable seq : int;
  mutable last_queries : int;
  mutable last_time : float;
  mutable closed : bool;
}

let create ?every_queries ?every_seconds ?(now = Unix.gettimeofday) sink =
  (match every_queries with
  | Some k when k < 1 -> invalid_arg "Telemetry.create: every_queries must be >= 1"
  | _ -> ());
  (match every_seconds with
  | Some s when not (s > 0.) -> invalid_arg "Telemetry.create: every_seconds must be > 0"
  | _ -> ());
  (* With no cadence at all, default to a frame per query: an emitter the
     caller bothered to attach should never be silent. *)
  let every_queries =
    match (every_queries, every_seconds) with None, None -> Some 1 | eq, _ -> eq
  in
  {
    sink;
    every_queries;
    every_seconds;
    now;
    seq = 0;
    last_queries = 0;
    last_time = now ();
    closed = false;
  }

let frames t = t.seq

let write t line =
  match t.sink with
  | Chan { oc; _ } ->
      output_string oc line;
      output_char oc '\n';
      flush oc
  | Fn f -> f line

let emit_frame t ~kind ~queries ~cost ~wall =
  if not t.closed then begin
    t.seq <- t.seq + 1;
    write t
      (Printf.sprintf "{\"frame\":%S,\"seq\":%d,\"queries\":%d,\"cost\":%s,\"wall\":%s}"
         kind t.seq queries cost (wall ()))
  end

let due t ~queries =
  (match t.every_queries with
  | Some k -> queries - t.last_queries >= k
  | None -> false)
  ||
  match t.every_seconds with
  | Some s -> t.now () -. t.last_time >= s
  | None -> false

let tick t ~queries ~cost ~wall =
  if (not t.closed) && due t ~queries then begin
    emit_frame t ~kind:"telemetry" ~queries ~cost ~wall;
    t.last_queries <- queries;
    t.last_time <- t.now ()
  end

let alert t ~queries ~cost ~wall = emit_frame t ~kind:"alert" ~queries ~cost ~wall
let final t ~queries ~cost ~wall = emit_frame t ~kind:"final" ~queries ~cost ~wall

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.sink with
    | Chan { oc; owned = true } -> close_out_noerr oc
    | Chan { oc; owned = false } -> ( try flush oc with Sys_error _ -> ())
    | Fn _ -> ()
  end

(* ---- frame summarisation (the library half of `em_repro top`) ---- *)

let get_num v keys = Option.bind (Json.path keys v) Json.num
let fnum v keys = Option.value ~default:0. (get_num v keys)

let summarize ?prev line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok v -> (
      match Option.bind (Json.member "frame" v) Json.str with
      | None -> Error "not a telemetry frame (no \"frame\" field)"
      | Some kind ->
          let queries = fnum v [ "queries" ] in
          let ios = fnum v [ "cost"; "ios" ] in
          let hits = fnum v [ "cost"; "cache_hits" ] in
          let misses = fnum v [ "cost"; "cache_misses" ] in
          let leaves = fnum v [ "cost"; "leaves" ] in
          let sorted = fnum v [ "cost"; "sorted_leaves" ] in
          let splits = fnum v [ "cost"; "splits" ] in
          let drift = get_num v [ "cost"; "drift_ratio" ] in
          (* Interval qps from the previous frame's wall timestamp when
             available (a live rate); the session-lifetime average
             otherwise. *)
          let qps =
            let session_qps = fnum v [ "wall"; "qps" ] in
            match Option.bind prev (fun p -> Result.to_option (Json.parse p)) with
            | Some p ->
                let dq = queries -. fnum p [ "queries" ] in
                let dt = (fnum v [ "wall"; "ts_ms" ] -. fnum p [ "wall"; "ts_ms" ]) /. 1000. in
                if dt > 0. && dq >= 0. then dq /. dt else session_qps
            | None -> session_qps
          in
          let cache_line =
            if hits +. misses > 0. then
              Printf.sprintf "%.0f%% hit rate (%.0f hits, %.0f misses)"
                (100. *. hits /. (hits +. misses))
                hits misses
            else "no cached backend active"
          in
          let b = Buffer.create 256 in
          let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
          add "frame       #%.0f (%s)" (fnum v [ "seq" ]) kind;
          add "queries     %.0f" queries;
          add "qps         %.2f" qps;
          add "latency     p50 %.3f ms, p99 %.3f ms"
            (fnum v [ "wall"; "p50_ms" ])
            (fnum v [ "wall"; "p99_ms" ]);
          add "I/Os        %.0f total, %.1f per query" ios
            (if queries > 0. then ios /. queries else 0.);
          add "cache       %s" cache_line;
          add "refinement  %.0f/%.0f leaves sorted, %.0f splits" sorted leaves splits;
          (match drift with
          | Some r -> add "drift       running ratio %.4f%s" r
                        (if kind = "alert" then "  ** BOUND ALERT **" else "")
          | None -> ());
          Ok (Buffer.contents b))
