(** Typed error surface of the EM machine.

    Two families live here:

    - {b Simulated failures} ({!t}, carried by {!Error}): what the machine
      does to a computation — injected I/O faults, retry exhaustion,
      checksum mismatches, crashes.  Algorithms run under fault injection
      return these through {!protect} instead of escaping with a bare
      exception, so callers can match on the failure mode.
    - {b Programming errors} (the dedicated exceptions below): misuse of the
      device or the memory ledger — addressing a block that does not exist,
      double-freeing, overflowing a block, corrupting the ledger.  These
      replace the former stringly-typed [Invalid_argument] failures so that
      fault-handling code can distinguish "the simulated disk failed" from
      "the algorithm is wrong". *)

type t =
  | Io_fault of { op : Fault.op; kind : Fault.kind; block : int }
      (** A raw injected fault that nothing recovered (unarmed device). *)
  | Read_failed of { block : int; attempts : int }
      (** Retries exhausted, or the block is permanently unreadable. *)
  | Write_failed of { block : int; attempts : int }
  | Corrupt_block of { block : int; attempts : int }
      (** Checksum verification kept failing: stored data is corrupt. *)
  | Crashed of { after_ios : int }
      (** The machine halted mid-run; only restartable drivers survive. *)
  | Budget_exceeded of { budget : int; spent : int }
      (** A caller-imposed I/O budget ran out mid-operation (see
          {!Emalg.Online_select.set_io_budget}): the work already paid for is
          kept, but the operation was aborted.  Never retried by
          {!Resilient.with_retries} — re-running would spend the same budget
          again. *)

exception Error of t

(** Programming-error exceptions (device / ledger misuse). *)

exception Bad_block_id of { op : string; id : int }
exception Never_written of { id : int }
exception Payload_overflow of { len : int; block : int }
exception Double_free of { id : int }
exception Negative_words of { op : string; n : int }
exception Over_release of { releasing : int; in_use : int }

exception Slot_overflow of { bytes : int; capacity : int; slot : int }
(** A marshalled payload did not fit a file backend's fixed slot; raise the
    backend's [slot_bytes] (see {!Backend.file}). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val raise_error : t -> 'a

val protect : (unit -> 'a) -> ('a, t) result
(** [protect f] runs [f], catching {!Error} — the one blessed way to run an
    algorithm under fault injection.  Programming errors still raise. *)
