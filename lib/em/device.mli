(** A simulated block device.

    The device stores blocks of at most [B] elements each, addressed by
    integer block ids.  Every [read] and every [write] costs exactly one I/O,
    which is recorded in the device's {!Stats.t} and emitted as a typed
    {!Trace.event}.  Freed blocks are recycled through a free list so that
    long experiments do not grow without bound.

    Zero-cost access lives exclusively in the {!Oracle} submodule: measured
    algorithm code cannot touch the store without paying an I/O unless it
    names [Oracle] explicitly at the call site. *)

type 'a t

val create : ?trace:Trace.t -> Params.t -> Stats.t -> 'a t
(** [create ?trace params stats] makes a device whose metered operations are
    counted in [stats] and emitted to [trace] (a fresh default tracer if
    omitted).  Devices created through {!Ctx.linked} share one tracer. *)

val params : 'a t -> Params.t
val stats : 'a t -> Stats.t
val trace : 'a t -> Trace.t

val alloc : 'a t -> int
(** Reserve a fresh (or recycled) block id.  Costs no I/O by itself. *)

val free : 'a t -> int -> unit
(** Return a block to the free list.  Costs no I/O. *)

val write : 'a t -> int -> 'a array -> unit
(** [write dev id payload] stores [payload] (length <= B) in block [id] and
    costs one I/O.  The payload is copied, so later mutation of the argument
    does not affect the device.
    @raise Invalid_argument if the payload exceeds the block size. *)

val read : 'a t -> int -> 'a array
(** [read dev id] costs one I/O and returns a copy of the block contents.
    @raise Invalid_argument if the block was never written. *)

val live_blocks : 'a t -> int
(** Number of blocks currently allocated and not freed. *)

(** Unmetered block access for the parts of an experiment that are outside
    the measured computation: placing the input on disk, and reading results
    back for oracle verification.  Calls here cost no simulated I/O, are not
    traced, and must never appear inside an algorithm under measurement —
    which is why reaching them requires naming [Oracle]. *)
module Oracle : sig
  val read : 'a t -> int -> 'a array
  (** Zero-cost block read for test set-up and verification only. *)

  val write : 'a t -> int -> 'a array -> unit
  (** Zero-cost block write for test set-up only (placing the input on disk
      is not part of an algorithm's cost). *)
end
