(** A metered block device with fault injection over a pluggable backend.

    The device stores blocks of at most [B] elements each, addressed by
    integer block ids.  Every metered {!read} and {!write} costs exactly one
    I/O, which is recorded in the device's {!Stats.t} and emitted as a typed
    {!Trace.event}.  Freed blocks are recycled so that long experiments do
    not grow without bound.

    {b Backends.}  Physical storage is delegated to an {!Backend.t}
    (in-memory simulation by default; real file-backed slots or a
    buffer-pool cache via {!Ctx.create}).  Metering happens here, {e above}
    the backend, so the counted I/O numbers are identical whatever backend
    serves the bytes — a buffer-pool hit still costs one counted I/O, it is
    merely also recorded as a hit ({!Stats} cache counters, {!Trace.cache}
    annotation).

    {b Faults.}  An optional {!Fault.plan} ({!inject}) is consulted once per
    metered attempt and can make that attempt fail ({!Em_error.Error}),
    silently corrupt data (torn writes, bit flips), mark the physical block
    sticky-bad (permanent faults), or crash the whole machine.  Faulted
    attempts still cost their I/O — the disk did spin — and are traced with
    kind {!Trace.Faulted}.

    {b Recovery state.}  When the device is {!arm}ed it carries per-block
    checksums (recorded on every store write, including {!Oracle} set-up
    writes), a quarantine set of retired physical slots, and a logical-to-
    physical remap table.  The retry/verify/remap {e logic} that uses this
    state lives in {!Resilient}; this module only provides single metered
    attempts plus the bookkeeping.

    Zero-cost access lives exclusively in the {!Oracle} submodule: measured
    algorithm code cannot touch the store without paying an I/O unless it
    names [Oracle] explicitly at the call site.  Oracle accesses never fault
    (they model the experimenter, not the machine) but do follow the remap
    table, so verification sees the same data the algorithms see.

    Misuse — a bad block id, reading a never-written block, overflowing a
    block, double-freeing — raises the typed programming-error exceptions of
    {!Em_error}, never a stringly [Invalid_argument]. *)

(** How {!Resilient} should fight back. *)
type recovery_policy = {
  max_retries : int;  (** re-attempts after the first try of an operation *)
  verify_reads : bool;  (** checksum-verify every payload a read returns *)
  verify_writes : bool;
      (** read back and verify each write (the read-back is metered as a
          retry I/O); catches silent write corruption at write time *)
  remap_bad : bool;  (** quarantine + remap permanently bad blocks *)
}

val default_policy : recovery_policy
(** [{ max_retries = 3; verify_reads = true; verify_writes = false;
      remap_bad = true }] *)

type recovery_counters = {
  mutable recovered : int;  (** operations that succeeded after a fault *)
  mutable remapped : int;
  mutable quarantined : int;
  mutable checksum_failures : int;
}

type recovery = {
  policy : recovery_policy;
  counters : recovery_counters;
  checksums : (int, int) Hashtbl.t;  (** physical id -> intended checksum *)
  quarantine : (int, Fault.kind) Hashtbl.t;  (** retired physical slots *)
  remap : (int, int) Hashtbl.t;  (** logical id -> physical slot *)
}

type 'a t

val create :
  ?trace:Trace.t -> ?backend:'a Backend.t -> ?shard:int -> Params.t -> Stats.t -> 'a t
(** [create ?trace ?backend params stats] makes a device whose metered
    operations are counted in [stats] and emitted to [trace] (a fresh
    default tracer if omitted), storing bytes in [backend] (a fresh
    {!Backend.sim} sized by {!Backend.default_slots} if omitted).  Devices
    created through {!Ctx.linked} share one tracer.  The device starts with
    no injector and unarmed.

    [shard] is the device's cluster shard identity (see {!Core.Cluster});
    when set, every trace event the device emits carries it.  Omitted on
    single machines, so single-machine traces keep their historical shape. *)

val params : 'a t -> Params.t
val stats : 'a t -> Stats.t
val trace : 'a t -> Trace.t

val shard : 'a t -> int option
(** The device's cluster shard identity, when it is part of one. *)

val backend_name : 'a t -> string
(** e.g. ["sim"], ["file"], ["cached"]; stamped on every trace event. *)

val flush : 'a t -> unit
(** Push pending state to stable storage: write back dirty buffer-pool
    pages, [fsync] file backends.  Costs no counted I/O (durability is
    outside the Aggarwal–Vitter cost model). *)

val close : 'a t -> unit
(** Release backend OS resources (fds, buffer-pool pages).  Idempotent.
    Using the device afterwards is a programming error. *)

val pin : 'a t -> int -> unit
(** Pin block [id]'s buffer-pool page so eviction skips it.  No-op on
    uncached backends or when the block is not resident. *)

val unpin : 'a t -> int -> unit

val prefetch : 'a t -> int array -> unit
(** Advisory, {e unmetered}: hint that the blocks [ids] will be read soon so
    an asynchronous backend can stage their bytes on its worker domains
    (no-op on synchronous backends).  Charges nothing, emits nothing, and
    makes no fault decision — all of that happens at the {!read} that later
    consumes the bytes, so counted costs are independent of prefetching. *)

(** {2 Fault injection and recovery configuration} *)

val inject : 'a t -> Fault.plan -> unit
(** Install (or replace) the fault plan consulted on every metered attempt. *)

val clear_injector : 'a t -> unit
val injector : 'a t -> Fault.plan option

val arm : ?policy:recovery_policy -> ?share:recovery -> 'a t -> unit
(** Attach recovery state.  With [share] the new state adopts the donor
    recovery's policy and counters (so a fault report covers a whole linked
    family) but gets fresh checksum/remap tables — block-id spaces of linked
    devices are disjoint.  [share] overrides [policy]. *)

val disarm : 'a t -> unit
val recovery : 'a t -> recovery option
val armed : 'a t -> bool

val checksum : 'a array -> int
(** The order-sensitive payload checksum recorded by store writes. *)

val expected_checksum : 'a t -> int -> int option
(** Recorded checksum for (the physical slot behind) logical block [id]. *)

val verify_payload : 'a t -> int -> 'a array -> bool
(** Whether [payload] matches the recorded checksum of block [id].  [true]
    when the device is unarmed or no checksum was recorded. *)

val quarantine_and_remap : 'a t -> int -> Fault.kind -> int
(** [quarantine_and_remap d id kind] retires the physical slot behind
    logical block [id] (it never re-enters the free list), remaps [id] onto
    a fresh healthy slot, and returns that slot.  The caller must rewrite
    the payload.  Requires an armed device. *)

val quarantined_blocks : 'a t -> (int * Fault.kind) list

(** {2 Allocation} *)

val alloc : 'a t -> int
(** Reserve a fresh (or recycled) block id.  Costs no I/O by itself. *)

val free : 'a t -> int -> unit
(** Return a block to the free list.  Costs no I/O.
    @raise Em_error.Bad_block_id on an id never allocated.
    @raise Em_error.Double_free if the block is already free. *)

(** {2 Metered attempts} *)

val write : ?attempt:int -> 'a t -> int -> 'a array -> unit
(** [write dev id payload] stores [payload] (length <= B) in block [id] and
    costs one I/O.  The payload is copied, so later mutation of the argument
    does not affect the device.  [attempt] > 1 marks (and meters) the I/O as
    a recovery retry.
    @raise Em_error.Payload_overflow if the payload exceeds the block size.
    @raise Em_error.Error on an injected fault (transient/permanent write
    errors, crash); torn writes and bit corruption return normally. *)

val read : ?attempt:int -> 'a t -> int -> 'a array
(** [read dev id] costs one I/O and returns a copy of the block contents.
    @raise Em_error.Never_written if the block holds no data.
    @raise Em_error.Error on an injected fault; read-side bit corruption
    instead returns a garbled copy (the stored data stays intact). *)

val live_blocks : 'a t -> int
(** Number of blocks currently allocated and not freed. *)

val disk_of_block : 'a t -> int -> int
(** Disk that (the physical slot behind) logical block [id] is striped onto:
    [phys id mod D].  Always [0] on a single-disk machine. *)

(** Unmetered block access for the parts of an experiment that are outside
    the measured computation: placing the input on disk, and reading results
    back for oracle verification.  Calls here cost no simulated I/O, are not
    traced, never fault, and must never appear inside an algorithm under
    measurement — which is why reaching them requires naming [Oracle]. *)
module Oracle : sig
  val read : 'a t -> int -> 'a array
  (** Zero-cost block read for test set-up and verification only. *)

  val write : 'a t -> int -> 'a array -> unit
  (** Zero-cost block write for test set-up only (placing the input on disk
      is not part of an algorithm's cost). *)
end
