(** Span-scoped profiling over the {!Phase} label tree.

    A profiler attaches to a machine's {!Stats} through the
    {!Stats.span_hooks} observer interface; from then on every
    {!Phase.with_label} (and checkpoint/resume charge) is recorded as a
    {e span} keyed on its full phase path.  Each span accumulates, across
    all its invocations: block reads/writes, comparisons, fault and retry
    overhead, the peak memory level observed while it was open, and host
    wall-clock time.  Attaching a profiler is free in the simulated cost
    model — golden I/O costs are byte-identical with or without one
    (property-tested). *)

type span = {
  path : string list;  (** full phase path, outermost label first *)
  mutable calls : int;  (** times the span was entered *)
  mutable reads : int;
  mutable writes : int;
  mutable rounds : int;  (** parallel I/O rounds ([= reads + writes] at D = 1) *)
  mutable comparisons : int;
  mutable faults : int;
  mutable retries : int;
  mutable cache_hits : int;  (** buffer-pool hits (cached backends only) *)
  mutable cache_misses : int;
  mutable wall_ns : float;  (** host wall-clock nanoseconds, inclusive *)
  mutable mem_peak : int;  (** max words in use while the span was open *)
}
(** Counters are {e inclusive}: a span's numbers cover its nested sub-spans.
    A phase label re-entered while already open (direct recursion) bumps
    [calls] only — the outermost open frame already accounts for its cost. *)

type t

val create : unit -> t

val attach : t -> Stats.t -> unit
(** Install the profiler's hooks on the machine (replacing any previously
    attached hooks).  Attach before entering phases: spans already open are
    not back-filled. *)

val detach : Stats.t -> unit
(** Remove whatever hooks are attached to the machine. *)

val reset : t -> unit
(** Drop all recorded spans (detaching is not required). *)

val spans : t -> span list
(** All spans, most I/O first (ties by path). *)

val span_ios : span -> int

val path_name : string list -> string
(** Join a span path with ["/"] (matches {!Stats.current_path}). *)

val pp : Format.formatter -> t -> unit
(** Span-tree report: one line per span, indented by nesting, children
    sorted by inclusive I/O cost. *)

val publish : Metrics.t -> t -> unit
(** Publish every span into a registry as [span_*{span=path}] gauges
    (ios, reads, writes, comparisons, faults, retries, mem_peak_words,
    wall_ns, calls). *)
