type t = {
  mutable reads : int;
  mutable writes : int;
  mutable comparisons : int;
  mutable faults : int;
  mutable retries : int;
  mutable allocated_blocks : int;
  mutable freed_blocks : int;
  mutable mem_in_use : int;
  mutable mem_peak : int;
  mutable phase_stack : string list;
  phase_ios : (string, int) Hashtbl.t;
}

let create () =
  {
    reads = 0;
    writes = 0;
    comparisons = 0;
    faults = 0;
    retries = 0;
    allocated_blocks = 0;
    freed_blocks = 0;
    mem_in_use = 0;
    mem_peak = 0;
    phase_stack = [];
    phase_ios = Hashtbl.create 16;
  }

let reset s =
  s.reads <- 0;
  s.writes <- 0;
  s.comparisons <- 0;
  s.faults <- 0;
  s.retries <- 0;
  s.allocated_blocks <- 0;
  s.freed_blocks <- 0;
  s.mem_in_use <- 0;
  s.mem_peak <- 0;
  s.phase_stack <- [];
  Hashtbl.reset s.phase_ios

(* A crash wipes RAM: whatever the interrupted computation had charged to the
   ledger is gone.  The high-water mark survives — it already happened. *)
let wipe_memory s =
  s.mem_in_use <- 0;
  s.phase_stack <- []

let current_phase s =
  match s.phase_stack with [] -> "(other)" | label :: _ -> label

let record_phase_io s =
  let label = current_phase s in
  let previous = Option.value (Hashtbl.find_opt s.phase_ios label) ~default:0 in
  Hashtbl.replace s.phase_ios label (previous + 1)

let phase_report s =
  Hashtbl.fold (fun label ios acc -> (label, ios) :: acc) s.phase_ios []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let ios s = s.reads + s.writes

type snapshot = {
  at_reads : int;
  at_writes : int;
  at_comparisons : int;
  at_faults : int;
  at_retries : int;
}

let snapshot s =
  {
    at_reads = s.reads;
    at_writes = s.writes;
    at_comparisons = s.comparisons;
    at_faults = s.faults;
    at_retries = s.retries;
  }

let ios_since s snap = s.reads + s.writes - snap.at_reads - snap.at_writes
let comparisons_since s snap = s.comparisons - snap.at_comparisons

type delta = {
  d_reads : int;
  d_writes : int;
  d_comparisons : int;
  d_faults : int;
  d_retries : int;
}

let delta s snap =
  {
    d_reads = s.reads - snap.at_reads;
    d_writes = s.writes - snap.at_writes;
    d_comparisons = s.comparisons - snap.at_comparisons;
    d_faults = s.faults - snap.at_faults;
    d_retries = s.retries - snap.at_retries;
  }

let delta_ios d = d.d_reads + d.d_writes

let pp_delta ppf d =
  Format.fprintf ppf "{ reads = %d; writes = %d; ios = %d; comparisons = %d }" d.d_reads
    d.d_writes (delta_ios d) d.d_comparisons;
  if d.d_faults > 0 || d.d_retries > 0 then
    Format.fprintf ppf " [faults = %d; retries = %d]" d.d_faults d.d_retries

let pp ppf s =
  Format.fprintf ppf
    "{ reads = %d; writes = %d; ios = %d; comparisons = %d; mem_peak = %d }"
    s.reads s.writes (ios s) s.comparisons s.mem_peak;
  if s.faults > 0 || s.retries > 0 then
    Format.fprintf ppf " [faults = %d; retries = %d]" s.faults s.retries
