type span_hooks = {
  on_push : string list -> unit;
  on_pop : string list -> unit;
  on_mem : int -> unit;
}

type t = {
  mutable reads : int;
  mutable writes : int;
  mutable comparisons : int;
  mutable faults : int;
  mutable retries : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable allocated_blocks : int;
  mutable freed_blocks : int;
  mutable rounds : int;
  disk_ios : (int, int) Hashtbl.t;
  mutable window_depth : int;
  window_counts : (int, int) Hashtbl.t;
  mutable comm_rounds : int;
  mutable comm_words : int;
  shard_sent : (int, int) Hashtbl.t;
  shard_recv : (int, int) Hashtbl.t;
  mutable comm_depth : int;
  mutable comm_pending : int;
  mutable mem_in_use : int;
  mutable pool_words : int;
  mutable mem_peak : int;
  mutable phase_stack : string list;
  phase_ios : (string, int) Hashtbl.t;
  mutable hooks : span_hooks option;
  mutable reclaim : (int -> unit) option;
  mutable reclaimers : (int -> int) option ref list;
}

let create () =
  {
    reads = 0;
    writes = 0;
    comparisons = 0;
    faults = 0;
    retries = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    allocated_blocks = 0;
    freed_blocks = 0;
    rounds = 0;
    disk_ios = Hashtbl.create 8;
    window_depth = 0;
    window_counts = Hashtbl.create 8;
    comm_rounds = 0;
    comm_words = 0;
    shard_sent = Hashtbl.create 8;
    shard_recv = Hashtbl.create 8;
    comm_depth = 0;
    comm_pending = 0;
    mem_in_use = 0;
    pool_words = 0;
    mem_peak = 0;
    phase_stack = [];
    phase_ios = Hashtbl.create 16;
    hooks = None;
    reclaim = None;
    reclaimers = [];
  }

let reset s =
  s.reads <- 0;
  s.writes <- 0;
  s.comparisons <- 0;
  s.faults <- 0;
  s.retries <- 0;
  s.cache_hits <- 0;
  s.cache_misses <- 0;
  s.cache_evictions <- 0;
  s.allocated_blocks <- 0;
  s.freed_blocks <- 0;
  s.rounds <- 0;
  Hashtbl.reset s.disk_ios;
  s.window_depth <- 0;
  Hashtbl.reset s.window_counts;
  s.comm_rounds <- 0;
  s.comm_words <- 0;
  Hashtbl.reset s.shard_sent;
  Hashtbl.reset s.shard_recv;
  s.comm_depth <- 0;
  s.comm_pending <- 0;
  s.mem_in_use <- 0;
  s.pool_words <- 0;
  s.mem_peak <- 0;
  s.phase_stack <- [];
  Hashtbl.reset s.phase_ios

let set_hooks s hooks = s.hooks <- hooks
let hooks s = s.hooks
let set_reclaim s f = s.reclaim <- f

(* Voluntary-release registry, consulted by [Mem] before declaring overflow:
   holders of opportunistic charges (write-behind queues) register a callback
   that gives words back under pressure.  Handles deregister by nulling the
   ref — cheap, order-independent — and dead handles are pruned on add. *)
let live_reclaimer h = match !h with Some _ -> true | None -> false

let add_reclaimer s f =
  let h = ref (Some f) in
  s.reclaimers <- h :: List.filter live_reclaimer s.reclaimers;
  h

let remove_reclaimer _s h = h := None

let run_reclaimers s deficit =
  let rec go freed = function
    | [] -> freed
    | h :: rest -> (
        match !h with
        | None -> go freed rest
        | Some f ->
            let freed = freed + f (deficit - freed) in
            if freed >= deficit then freed else go freed rest)
  in
  go 0 s.reclaimers

let push_phase s label =
  s.phase_stack <- label :: s.phase_stack;
  match s.hooks with None -> () | Some h -> h.on_push s.phase_stack

let pop_phase s =
  match s.phase_stack with
  | [] -> ()
  | (_ :: rest) as before ->
      (match s.hooks with None -> () | Some h -> h.on_pop before);
      s.phase_stack <- rest

let notify_mem s =
  match s.hooks with None -> () | Some h -> h.on_mem s.mem_in_use

(* A crash wipes RAM: whatever the interrupted computation had charged to the
   ledger is gone.  The high-water mark survives — it already happened.  Open
   phases are unwound one by one so an attached profiler sees balanced
   enter/exit pairs. *)
let wipe_memory s =
  s.mem_in_use <- 0;
  while s.phase_stack <> [] do
    pop_phase s
  done

let current_phase s =
  match s.phase_stack with [] -> "(other)" | label :: _ -> label

(* The attribution key is the full phase path, outermost label first, so two
   distinct paths sharing a leaf name stay distinct. *)
let join_path stack = String.concat "/" (List.rev stack)
let current_path s = match s.phase_stack with [] -> "(other)" | st -> join_path st

let record_phase_io s =
  let path = current_path s in
  let previous = Option.value (Hashtbl.find_opt s.phase_ios path) ~default:0 in
  Hashtbl.replace s.phase_ios path (previous + 1)

let phase_report s =
  Hashtbl.fold (fun path ios acc -> (path, ios) :: acc) s.phase_ios []
  |> List.sort (fun (pa, a) (pb, b) ->
         match Int.compare b a with 0 -> String.compare pa pb | c -> c)

let ios s = s.reads + s.writes

(* Round accounting.  Outside a scheduling window every metered I/O is its
   own round.  Inside a window, I/Os pile up per disk and the window costs
   the maximum over the per-disk counts — the disks operate in parallel but
   each moves one block per round.  With a single disk the maximum equals
   the sum, so [rounds = ios] exactly at D = 1 regardless of windowing. *)
let tbl_incr tbl key =
  Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let record_io s ~disk =
  tbl_incr s.disk_ios disk;
  if s.window_depth > 0 then tbl_incr s.window_counts disk
  else s.rounds <- s.rounds + 1

let begin_window s = s.window_depth <- s.window_depth + 1

let end_window s =
  if s.window_depth > 0 then begin
    s.window_depth <- s.window_depth - 1;
    if s.window_depth = 0 then begin
      let cost = Hashtbl.fold (fun _ c acc -> max c acc) s.window_counts 0 in
      s.rounds <- s.rounds + cost;
      Hashtbl.reset s.window_counts
    end
  end

let with_window s f =
  begin_window s;
  Fun.protect ~finally:(fun () -> end_window s) f

let disk_report s =
  Hashtbl.fold (fun disk n acc -> (disk, n) :: acc) s.disk_ios []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Rounds the currently-open outermost window would charge if it closed now.
   Snapshots taken inside a window must see them: otherwise a measurement that
   opens before the window and closes inside it (or vice versa) attributes the
   whole window's cost to whichever bracket happens to straddle the close,
   and a query that triggers refinement inside an already-open scheduling
   window at D > 1 reports d_rounds = 0. *)
let pending_window_rounds s =
  if s.window_depth = 0 then 0
  else Hashtbl.fold (fun _ c acc -> max c acc) s.window_counts 0

let effective_rounds s = s.rounds + pending_window_rounds s

(* Communication ledger.  The discipline mirrors the I/O scheduling windows:
   outside a superstep every transfer is its own communication round; inside
   one, transfers pile up and the outermost close charges exactly one round
   (BSP semantics: all messages posted in a superstep are delivered together).
   Volume ([comm_words], per-shard send/recv) is window-independent, like
   [reads]/[writes] — supersteps change rounds, never words. *)
let tbl_add tbl key n =
  Hashtbl.replace tbl key (n + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let record_comm s ~src ~dst ~words =
  if src <> dst && words > 0 then begin
    s.comm_words <- s.comm_words + words;
    tbl_add s.shard_sent src words;
    tbl_add s.shard_recv dst words;
    if s.comm_depth > 0 then s.comm_pending <- s.comm_pending + 1
    else s.comm_rounds <- s.comm_rounds + 1
  end

let begin_comm_round s = s.comm_depth <- s.comm_depth + 1

let end_comm_round s =
  if s.comm_depth > 0 then begin
    s.comm_depth <- s.comm_depth - 1;
    if s.comm_depth = 0 then begin
      if s.comm_pending > 0 then s.comm_rounds <- s.comm_rounds + 1;
      s.comm_pending <- 0
    end
  end

let with_comm_round s f =
  begin_comm_round s;
  Fun.protect ~finally:(fun () -> end_comm_round s) f

(* Rounds the currently-open outermost superstep would charge if it closed
   now, so mid-superstep snapshots telescope just like mid-window ones. *)
let pending_comm_rounds s = if s.comm_depth > 0 && s.comm_pending > 0 then 1 else 0
let effective_comm_rounds s = s.comm_rounds + pending_comm_rounds s

let shard_report tbl =
  Hashtbl.fold (fun shard n acc -> (shard, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let sent_report s = shard_report s.shard_sent
let recv_report s = shard_report s.shard_recv

type snapshot = {
  at_reads : int;
  at_writes : int;
  at_comparisons : int;
  at_faults : int;
  at_retries : int;
  at_cache_hits : int;
  at_cache_misses : int;
  at_rounds : int;
  at_comm_rounds : int;
  at_comm_words : int;
}

let snapshot s =
  {
    at_reads = s.reads;
    at_writes = s.writes;
    at_comparisons = s.comparisons;
    at_faults = s.faults;
    at_retries = s.retries;
    at_cache_hits = s.cache_hits;
    at_cache_misses = s.cache_misses;
    at_rounds = effective_rounds s;
    at_comm_rounds = effective_comm_rounds s;
    at_comm_words = s.comm_words;
  }

let ios_since s snap = s.reads + s.writes - snap.at_reads - snap.at_writes
let comparisons_since s snap = s.comparisons - snap.at_comparisons

type delta = {
  d_reads : int;
  d_writes : int;
  d_comparisons : int;
  d_faults : int;
  d_retries : int;
  d_cache_hits : int;
  d_cache_misses : int;
  d_rounds : int;
  d_comm_rounds : int;
  d_comm_words : int;
}

let delta s snap =
  {
    d_reads = s.reads - snap.at_reads;
    d_writes = s.writes - snap.at_writes;
    d_comparisons = s.comparisons - snap.at_comparisons;
    d_faults = s.faults - snap.at_faults;
    d_retries = s.retries - snap.at_retries;
    d_cache_hits = s.cache_hits - snap.at_cache_hits;
    d_cache_misses = s.cache_misses - snap.at_cache_misses;
    d_rounds = effective_rounds s - snap.at_rounds;
    d_comm_rounds = effective_comm_rounds s - snap.at_comm_rounds;
    d_comm_words = s.comm_words - snap.at_comm_words;
  }

let delta_ios d = d.d_reads + d.d_writes

let pp_delta ppf d =
  Format.fprintf ppf "{ reads = %d; writes = %d; ios = %d; comparisons = %d }" d.d_reads
    d.d_writes (delta_ios d) d.d_comparisons;
  if d.d_faults > 0 || d.d_retries > 0 then
    Format.fprintf ppf " [faults = %d; retries = %d]" d.d_faults d.d_retries;
  if d.d_cache_hits > 0 || d.d_cache_misses > 0 then
    Format.fprintf ppf " [cache hits = %d; misses = %d]" d.d_cache_hits d.d_cache_misses;
  if d.d_rounds <> delta_ios d then
    Format.fprintf ppf " [rounds = %d]" d.d_rounds;
  if d.d_comm_rounds > 0 || d.d_comm_words > 0 then
    Format.fprintf ppf " [comm rounds = %d; words = %d]" d.d_comm_rounds d.d_comm_words

let pp ppf s =
  Format.fprintf ppf
    "{ reads = %d; writes = %d; ios = %d; comparisons = %d; mem_peak = %d }"
    s.reads s.writes (ios s) s.comparisons s.mem_peak;
  if s.faults > 0 || s.retries > 0 then
    Format.fprintf ppf " [faults = %d; retries = %d]" s.faults s.retries;
  if s.cache_hits > 0 || s.cache_misses > 0 then
    Format.fprintf ppf " [cache hits = %d; misses = %d]" s.cache_hits s.cache_misses;
  if s.rounds <> ios s then Format.fprintf ppf " [rounds = %d]" s.rounds;
  if s.comm_rounds > 0 || s.comm_words > 0 then
    Format.fprintf ppf " [comm rounds = %d; words = %d]" s.comm_rounds s.comm_words
