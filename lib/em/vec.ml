type 'a t = { ctx : 'a Ctx.t; blocks : int array; len : int }

let ctx v = v.ctx
let length v = v.len
let num_blocks v = Array.length v.blocks
let block_ids v = Array.copy v.blocks
let empty ctx = { ctx; blocks = [||]; len = 0 }

let of_blocks ctx blocks len =
  let needed = Params.blocks_of_elems ctx.Ctx.params len in
  if Array.length blocks <> needed then
    invalid_arg "Vec.of_blocks: block count does not match length";
  { ctx; blocks = Array.copy blocks; len }

let of_array ctx a =
  let b = Ctx.block_size ctx in
  let len = Array.length a in
  let nblocks = Params.blocks_of_elems ctx.Ctx.params len in
  let blocks = Array.init nblocks (fun _ -> Device.alloc ctx.Ctx.dev) in
  for i = 0 to nblocks - 1 do
    let lo = i * b in
    let hi = min len (lo + b) in
    Device.Oracle.write ctx.Ctx.dev blocks.(i) (Array.sub a lo (hi - lo))
  done;
  { ctx; blocks; len }

let free v = Array.iter (Device.free v.ctx.Ctx.dev) v.blocks

let block_io v i =
  if i < 0 || i >= Array.length v.blocks then
    invalid_arg "Vec.block_io: block index out of bounds";
  Resilient.read v.ctx.Ctx.dev v.blocks.(i)

let get_io v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get_io: index out of bounds";
  let b = Ctx.block_size v.ctx in
  let payload = block_io v (i / b) in
  payload.(i mod b)

let concat_free vs =
  match vs with
  | [] -> invalid_arg "Vec.concat_free: empty list"
  | first :: _ ->
      let ctx = first.ctx in
      let b = Ctx.block_size ctx in
      let rec check = function
        | [] | [ _ ] -> ()
        | v :: rest ->
            if v.len mod b <> 0 then
              invalid_arg "Vec.concat_free: non-final vector has a partial last block";
            check rest
      in
      check vs;
      let blocks = Array.concat (List.map (fun v -> v.blocks) vs) in
      let len = List.fold_left (fun acc v -> acc + v.len) 0 vs in
      { ctx; blocks; len }

module Oracle = struct
  let to_array v =
    let b = Ctx.block_size v.ctx in
    match v.len with
    | 0 -> [||]
    | len ->
        let first = Device.Oracle.read v.ctx.Ctx.dev v.blocks.(0) in
        let out = Array.make len first.(0) in
        Array.iteri
          (fun i id ->
            let payload = Device.Oracle.read v.ctx.Ctx.dev id in
            Array.blit payload 0 out (i * b) (Array.length payload))
          v.blocks;
        out

  let get v i =
    if i < 0 || i >= v.len then invalid_arg "Vec.Oracle.get: index out of bounds";
    let b = Ctx.block_size v.ctx in
    let payload = Device.Oracle.read v.ctx.Ctx.dev v.blocks.(i / b) in
    payload.(i mod b)
end
