(** Memory-budget ledger.

    Every in-memory buffer an algorithm holds must be charged here.  The
    ledger raises {!Memory_exceeded} as soon as the total exceeds the machine
    parameter [M], which turns memory-budget violations into immediate test
    failures rather than silent modelling errors. *)

exception Memory_exceeded of { requested : int; in_use : int; capacity : int }

val charge : Params.t -> Stats.t -> int -> unit
(** [charge p s n] records [n] more words in use.
    @raise Memory_exceeded if the budget [p.mem] would be exceeded. *)

val release : Params.t -> Stats.t -> int -> unit
(** [release p s n] returns [n] words.
    @raise Em_error.Over_release if more words are released than are in use.
    @raise Em_error.Negative_words on a negative count (as does {!charge}). *)

val with_words : Params.t -> Stats.t -> int -> (unit -> 'a) -> 'a
(** [with_words p s n f] charges [n] words around the call to [f], releasing
    them even if [f] raises. *)
