(** Memory-budget ledger.

    Every in-memory buffer an algorithm holds must be charged here.  The
    ledger raises {!Memory_exceeded} as soon as the total exceeds the machine
    parameter [M], which turns memory-budget violations into immediate test
    failures rather than silent modelling errors.

    Resident buffer-pool pages (see {!Backend.Pool}) occupy the same [M]
    words but are ledgered separately in {!Stats.t.pool_words}: the capacity
    check and [mem_peak] cover [mem_in_use + pool_words], while the
    drained-ledger invariant ([mem_in_use = 0] after an algorithm returns)
    stays meaningful with a warm cache. *)

exception Memory_exceeded of { requested : int; in_use : int; capacity : int }

val charge : Params.t -> Stats.t -> int -> unit
(** [charge p s n] records [n] more words in use.  Under pressure, the
    {!Stats.set_reclaim} hook is given one chance to evict cache pages
    before the verdict.
    @raise Memory_exceeded if the budget [p.mem] would be exceeded. *)

val release : Params.t -> Stats.t -> int -> unit
(** [release p s n] returns [n] words.
    @raise Em_error.Over_release if more words are released than are in use.
    @raise Em_error.Negative_words on a negative count (as does {!charge}). *)

val with_words : Params.t -> Stats.t -> int -> (unit -> 'a) -> 'a
(** [with_words p s n f] charges [n] words around the call to [f], releasing
    them even if [f] raises. *)

val charge_pool : Params.t -> Stats.t -> int -> unit
(** Like {!charge} but against {!Stats.t.pool_words}.  Only {!Backend.Pool}
    calls this. *)

val release_pool : Params.t -> Stats.t -> int -> unit
