(* The simulated block device: storage, metering, fault injection, and the
   per-device recovery state used by [Resilient].  The retry/verify/remap
   *logic* lives in [Resilient]; this module only provides single metered
   attempts plus the bookkeeping those policies need. *)

type recovery_policy = {
  max_retries : int;
  verify_reads : bool;
  verify_writes : bool;
  remap_bad : bool;
}

let default_policy =
  { max_retries = 3; verify_reads = true; verify_writes = false; remap_bad = true }

type recovery_counters = {
  mutable recovered : int;
  mutable remapped : int;
  mutable quarantined : int;
  mutable checksum_failures : int;
}

type recovery = {
  policy : recovery_policy;
  counters : recovery_counters;
  checksums : (int, int) Hashtbl.t;
  quarantine : (int, Fault.kind) Hashtbl.t;
  remap : (int, int) Hashtbl.t;
}

let make_counters () =
  { recovered = 0; remapped = 0; quarantined = 0; checksum_failures = 0 }

let make_recovery ?(policy = default_policy) ?counters () =
  let counters = match counters with Some c -> c | None -> make_counters () in
  {
    policy;
    counters;
    checksums = Hashtbl.create 64;
    quarantine = Hashtbl.create 8;
    remap = Hashtbl.create 8;
  }

type 'a t = {
  params : Params.t;
  stats : Stats.t;
  trace : Trace.t;
  backend : 'a Backend.t;  (* physical slot storage; see [Backend] *)
  shard : int option;  (* cluster shard identity; [None] on single machines *)
  mutable next_id : int;  (* watermark: every issued id is < next_id *)
  mutable live : int;
  freed : (int, unit) Hashtbl.t;  (* ids currently on the free list *)
  perm_faults : (int, Fault.kind) Hashtbl.t;  (* sticky-bad physical blocks *)
  mutable injector : Fault.plan option;
  mutable recovery : recovery option;
}

let create ?trace ?backend ?shard params stats =
  let trace = match trace with Some t -> t | None -> Trace.create () in
  let backend =
    match backend with
    | Some b -> b
    | None -> Backend.sim ~slots:(Backend.default_slots params) ()
  in
  {
    params;
    stats;
    trace;
    backend;
    shard;
    next_id = 0;
    live = 0;
    freed = Hashtbl.create 64;
    perm_faults = Hashtbl.create 8;
    injector = None;
    recovery = None;
  }

let params d = d.params
let stats d = d.stats
let trace d = d.trace
let shard d = d.shard
let backend_name d = d.backend.Backend.name
let flush d = d.backend.Backend.flush ()
let close d = d.backend.Backend.close ()

(* Fault injection / recovery configuration. *)

let inject d plan = d.injector <- Some plan
let clear_injector d = d.injector <- None
let injector d = d.injector

let arm ?policy ?share d =
  match share with
  | Some r ->
      (* Linked devices have disjoint block-id spaces, so they need their own
         checksum/remap tables, but policy and counters are shared so that a
         fault report covers the whole linked family. *)
      d.recovery <- Some (make_recovery ~policy:r.policy ~counters:r.counters ())
  | None -> d.recovery <- Some (make_recovery ?policy ())

let disarm d = d.recovery <- None
let recovery d = d.recovery
let armed d = d.recovery <> None

(* Remap translation: logical block id -> physical slot.  Identity until
   [quarantine_and_remap] installs an entry. *)
let phys d id =
  match d.recovery with
  | None -> id
  | Some r -> ( match Hashtbl.find_opt r.remap id with None -> id | Some p -> p)

(* Pin/unpin a block's buffer-pool page (no-ops on uncached backends). *)
let pin d id = d.backend.Backend.pin (phys d id)
let unpin d id = d.backend.Backend.unpin (phys d id)

(* Advisory and unmetered: stage the blocks' bytes on the async pool (a
   no-op on every synchronous backend).  No charge, no trace, no fault
   decision — those all happen at the [read] that later consumes the bytes,
   so counted costs cannot depend on prefetch placement. *)
let prefetch d ids =
  Array.iter (fun id -> d.backend.Backend.prefetch (phys d id)) ids

(* Order-sensitive polymorphic checksum, seeded with the length so torn
   writes (prefix truncation) always change it. *)
let checksum payload =
  Array.fold_left
    (fun acc e -> ((acc * 1000003) + Hashtbl.hash e) land max_int)
    (Array.length payload) payload

let record_checksum d p payload =
  match d.recovery with
  | None -> ()
  | Some r -> Hashtbl.replace r.checksums p (checksum payload)

let expected_checksum d id =
  match d.recovery with
  | None -> None
  | Some r -> Hashtbl.find_opt r.checksums (phys d id)

let verify_payload d id payload =
  match expected_checksum d id with
  | None -> true  (* nothing recorded: nothing to verify against *)
  | Some expected -> checksum payload = expected

(* Allocation.

   Slot recycling lives in the backend's allocator (same LIFO discipline the
   in-device free list used); the device keeps only the [next_id] watermark
   for id validation and the [freed] table for double-free detection. *)

(* Grab a storage slot without touching the liveness accounting (shared by
   [alloc] and remapping, which replaces a slot rather than adding a block).
   Quarantined slots are never handed back to the backend, so anything the
   allocator returns is healthy. *)
let fresh_slot d =
  let p = d.backend.Backend.alloc () in
  if p >= d.next_id then d.next_id <- p + 1;
  Hashtbl.remove d.freed p;
  p

let alloc d =
  d.live <- d.live + 1;
  d.stats.Stats.allocated_blocks <- d.stats.Stats.allocated_blocks + 1;
  fresh_slot d

let free d id =
  if id < 0 || id >= d.next_id then raise (Em_error.Bad_block_id { op = "free"; id });
  if Hashtbl.mem d.freed id then raise (Em_error.Double_free { id });
  let p = phys d id in
  (match d.recovery with
  | None -> ()
  | Some r ->
      Hashtbl.remove r.checksums p;
      Hashtbl.remove r.remap id);
  (* Recycle the physical slot; remember the logical id as freed.  When the
     block was remapped the logical id is retired for good (only the healthy
     physical slot goes back into circulation). *)
  d.backend.Backend.free p;
  Hashtbl.replace d.freed p ();
  if p <> id then Hashtbl.replace d.freed id ();
  d.live <- d.live - 1;
  d.stats.Stats.freed_blocks <- d.stats.Stats.freed_blocks + 1

let live_blocks d = d.live

(* Quarantine the (permanently bad) physical slot behind [id] and remap the
   logical id onto a fresh healthy slot.  Returns the new physical slot.  The
   caller ([Resilient.write]) is responsible for rewriting the payload. *)
let quarantine_and_remap d id kind =
  match d.recovery with
  | None -> invalid_arg "Device.quarantine_and_remap: device is not armed"
  | Some r ->
      let p = phys d id in
      Hashtbl.replace r.quarantine p kind;
      r.counters.quarantined <- r.counters.quarantined + 1;
      Hashtbl.remove r.checksums p;
      let q = fresh_slot d in
      Hashtbl.replace r.remap id q;
      r.counters.remapped <- r.counters.remapped + 1;
      q

let quarantined_blocks d =
  match d.recovery with
  | None -> []
  | Some r -> Hashtbl.fold (fun p kind acc -> (p, kind) :: acc) r.quarantine []

(* Raw (unmetered, fault-free) store access. *)

let check_payload d payload =
  let len = Array.length payload in
  if len > d.params.Params.block then
    raise (Em_error.Payload_overflow { len; block = d.params.Params.block })

let check_id op d id =
  if id < 0 || id >= d.next_id then raise (Em_error.Bad_block_id { op; id })

let unmetered_write d id payload =
  check_id "write" d id;
  check_payload d payload;
  let p = phys d id in
  d.backend.Backend.store p payload;
  record_checksum d p payload

let unmetered_read d id =
  check_id "read" d id;
  match d.backend.Backend.load (phys d id) with
  | None -> raise (Em_error.Never_written { id })
  | Some payload -> Array.copy payload

(* Metered attempts.

   Every attempt — including faulted ones and retries — charges one I/O to
   the stats and the current phase, and emits one trace event whose [kind]
   says what happened.  [attempt] > 1 marks a recovery re-attempt. *)

let trace_kind fault attempt =
  match fault with
  | Some k -> Trace.Faulted k
  | None -> if attempt > 1 then Trace.Retry else Trace.Io

let disk_of_slot d p = p mod d.params.Params.disks
let disk_of_block d id = disk_of_slot d (phys d id)

let charge ?cache d (op : Trace.op) ~block ~fault ~attempt =
  (match op with
  | Trace.Read -> d.stats.Stats.reads <- d.stats.Stats.reads + 1
  | Trace.Write -> d.stats.Stats.writes <- d.stats.Stats.writes + 1);
  if attempt > 1 then d.stats.Stats.retries <- d.stats.Stats.retries + 1;
  if fault <> None then d.stats.Stats.faults <- d.stats.Stats.faults + 1;
  (* Hit/miss accounting covers exactly the metered reads, so the invariant
     [reads = cache_hits + cache_misses] holds on cached backends (Oracle
     accesses are invisible here, as everywhere). *)
  (match cache with
  | Some Trace.Hit -> d.stats.Stats.cache_hits <- d.stats.Stats.cache_hits + 1
  | Some Trace.Miss -> d.stats.Stats.cache_misses <- d.stats.Stats.cache_misses + 1
  | None -> ());
  let disk = disk_of_slot d block in
  (* The round id is read before [record_io]: an unbatched I/O becomes round
     [rounds], and every I/O inside one scheduling window shares the round
     counter as it stood when the window opened. *)
  let round = d.stats.Stats.rounds in
  Stats.record_io d.stats ~disk;
  Stats.record_phase_io d.stats;
  let multi = d.params.Params.disks > 1 in
  Trace.emit ~kind:(trace_kind fault attempt) ~backend:d.backend.Backend.name ?cache
    ?disk:(if multi then Some disk else None)
    ?round:(if multi then Some round else None)
    ?shard:d.shard d.trace op ~block ~phase:d.stats.Stats.phase_stack

(* A sticky fault fires before the injector is even consulted; permanent
   faults injected by the plan become sticky on their physical slot. *)
let decide_fault d (op : Fault.op) p =
  match Hashtbl.find_opt d.perm_faults p with
  | Some kind when Fault.applies kind op -> Some kind
  | _ -> (
      match d.injector with
      | None -> None
      | Some plan -> (
          match Fault.decide plan ~op ~block:p ~phase:d.stats.Stats.phase_stack with
          | Some kind when Fault.applies kind op ->
              if Fault.is_permanent kind then Hashtbl.replace d.perm_faults p kind;
              Some kind
          | Some _ | None -> None))

let crash d = Em_error.raise_error (Em_error.Crashed { after_ios = Stats.ios d.stats })

(* Generic data corruption: swap the ends of the payload, or lose it entirely
   when it is too short to scramble. *)
let corrupt_payload payload =
  let n = Array.length payload in
  if n >= 2 then begin
    let c = Array.copy payload in
    let t = c.(0) in
    c.(0) <- c.(n - 1);
    c.(n - 1) <- t;
    c
  end
  else [||]

let write ?(attempt = 1) d id payload =
  check_id "write" d id;
  check_payload d payload;
  let p = phys d id in
  let fault = decide_fault d `Write p in
  charge d Trace.Write ~block:p ~fault ~attempt;
  match fault with
  | None ->
      d.backend.Backend.store p payload;
      record_checksum d p payload
  | Some Fault.Crash -> crash d
  | Some (Fault.Transient_write as kind) | Some (Fault.Permanent_write as kind) ->
      Em_error.raise_error (Em_error.Io_fault { op = `Write; kind; block = id })
  | Some Fault.Torn_write ->
      (* The I/O "succeeds" but only a prefix reaches the platter.  The
         checksum records what *should* be there, so verification catches
         the tear on the next read. *)
      d.backend.Backend.store p (Array.sub payload 0 (Array.length payload / 2));
      record_checksum d p payload
  | Some Fault.Bit_corruption ->
      d.backend.Backend.store p (corrupt_payload payload);
      record_checksum d p payload
  | Some (Fault.Transient_read | Fault.Permanent_read) ->
      (* Filtered by [applies]; unreachable. *)
      assert false

let read ?(attempt = 1) d id =
  check_id "read" d id;
  let p = phys d id in
  (* Residency must be probed before [load]: loading through a cached
     backend admits the page, which would turn every miss into a hit. *)
  let cache = d.backend.Backend.probe p in
  let stored =
    match d.backend.Backend.load p with
    | None -> raise (Em_error.Never_written { id })
    | Some payload -> payload
  in
  let fault = decide_fault d `Read p in
  charge ?cache d Trace.Read ~block:p ~fault ~attempt;
  match fault with
  | None -> Array.copy stored
  | Some Fault.Crash -> crash d
  | Some (Fault.Transient_read as kind) | Some (Fault.Permanent_read as kind) ->
      Em_error.raise_error (Em_error.Io_fault { op = `Read; kind; block = id })
  | Some Fault.Bit_corruption ->
      (* Read-side corruption garbles the returned copy only: the platter is
         intact, so a (metered) re-read recovers. *)
      corrupt_payload stored
  | Some (Fault.Transient_write | Fault.Permanent_write | Fault.Torn_write) -> assert false

module Oracle = struct
  let read = unmetered_read
  let write = unmetered_write
end
