type 'a t = {
  params : Params.t;
  stats : Stats.t;
  trace : Trace.t;
  mutable store : 'a array option array;
  mutable next_id : int;
  mutable free_list : int list;
  mutable live : int;
}

let create ?trace params stats =
  let trace = match trace with Some t -> t | None -> Trace.create () in
  { params; stats; trace; store = Array.make 64 None; next_id = 0; free_list = []; live = 0 }

let params d = d.params
let stats d = d.stats
let trace d = d.trace

let ensure_capacity d id =
  let n = Array.length d.store in
  if id >= n then begin
    let grown = Array.make (max (2 * n) (id + 1)) None in
    Array.blit d.store 0 grown 0 n;
    d.store <- grown
  end

let alloc d =
  d.live <- d.live + 1;
  d.stats.Stats.allocated_blocks <- d.stats.Stats.allocated_blocks + 1;
  match d.free_list with
  | id :: rest ->
      d.free_list <- rest;
      id
  | [] ->
      let id = d.next_id in
      d.next_id <- id + 1;
      ensure_capacity d id;
      id

let free d id =
  if id < 0 || id >= d.next_id then invalid_arg "Device.free: bad block id";
  d.store.(id) <- None;
  d.free_list <- id :: d.free_list;
  d.live <- d.live - 1;
  d.stats.Stats.freed_blocks <- d.stats.Stats.freed_blocks + 1

let check_payload d payload =
  if Array.length payload > d.params.Params.block then
    invalid_arg "Device.write: payload exceeds block size"

let unmetered_write d id payload =
  check_payload d payload;
  if id < 0 || id >= d.next_id then invalid_arg "Device.write: bad block id";
  d.store.(id) <- Some (Array.copy payload)

let unmetered_read d id =
  if id < 0 || id >= d.next_id then invalid_arg "Device.read: bad block id";
  match d.store.(id) with
  | None -> invalid_arg "Device.read: block was never written (or was freed)"
  | Some payload -> Array.copy payload

let write d id payload =
  unmetered_write d id payload;
  d.stats.Stats.writes <- d.stats.Stats.writes + 1;
  Stats.record_phase_io d.stats;
  Trace.emit d.trace Trace.Write ~block:id ~phase:d.stats.Stats.phase_stack

let read d id =
  let payload = unmetered_read d id in
  d.stats.Stats.reads <- d.stats.Stats.reads + 1;
  Stats.record_phase_io d.stats;
  Trace.emit d.trace Trace.Read ~block:id ~phase:d.stats.Stats.phase_stack;
  payload

let live_blocks d = d.live

module Oracle = struct
  let read = unmetered_read
  let write = unmetered_write
end
