type 'a t = {
  vec : 'a Vec.t;
  mutable pos : int;  (* absolute index of the next element to deliver *)
  mutable buffer : 'a array;  (* contents of the block containing [pos] *)
  mutable buffer_base : int;  (* absolute index of buffer.(0); -1 if none *)
  mutable closed : bool;
}

let buffer_words r = Ctx.block_size (Vec.ctx r.vec)

let open_vec vec =
  let ctx = Vec.ctx vec in
  Mem.charge ctx.Ctx.params ctx.Ctx.stats (Ctx.block_size ctx);
  { vec; pos = 0; buffer = [||]; buffer_base = -1; closed = false }

let check_open r = if r.closed then invalid_arg "Reader: already closed"
let has_next r = (not r.closed) && r.pos < Vec.length r.vec
let remaining r = max 0 (Vec.length r.vec - r.pos)

let load_block r =
  let ctx = Vec.ctx r.vec in
  let b = Ctx.block_size ctx in
  let block_index = r.pos / b in
  let ids = Vec.block_ids r.vec in
  r.buffer <- Resilient.read ctx.Ctx.dev ids.(block_index);
  r.buffer_base <- block_index * b

let ensure_loaded r =
  check_open r;
  if r.pos >= Vec.length r.vec then invalid_arg "Reader: end of input";
  if r.buffer_base < 0 || r.pos - r.buffer_base >= Array.length r.buffer then
    load_block r

let peek r =
  ensure_loaded r;
  r.buffer.(r.pos - r.buffer_base)

let next r =
  let e = peek r in
  r.pos <- r.pos + 1;
  e

let take r n =
  if n < 0 then invalid_arg "Reader.take: negative count";
  let count = min n (remaining r) in
  if count = 0 then [||]
  else begin
    let out = Array.make count (peek r) in
    for i = 0 to count - 1 do
      out.(i) <- next r
    done;
    out
  end

let close r =
  if not r.closed then begin
    let ctx = Vec.ctx r.vec in
    Mem.release ctx.Ctx.params ctx.Ctx.stats (buffer_words r);
    r.closed <- true;
    r.buffer <- [||]
  end

let with_reader vec f =
  let r = open_vec vec in
  match f r with
  | result ->
      close r;
      result
  | exception e ->
      close r;
      raise e
