type 'a t = {
  vec : 'a Vec.t;
  prefetch : int;  (* max extra blocks read ahead of the cursor *)
  mutable pos : int;  (* absolute index of the next element to deliver *)
  bufs : (int * 'a array) Queue.t;  (* (block_index, payload), consecutive *)
  mutable extra : int;  (* block buffers charged beyond the base B words *)
  mutable closed : bool;
}

let buffer_words r = Ctx.block_size (Vec.ctx r.vec)

let open_vec ?(prefetch = 0) vec =
  if prefetch < 0 then invalid_arg "Reader.open_vec: negative prefetch";
  let ctx = Vec.ctx vec in
  Mem.charge ctx.Ctx.params ctx.Ctx.stats (Ctx.block_size ctx);
  { vec; prefetch; pos = 0; bufs = Queue.create (); extra = 0; closed = false }

let check_open r = if r.closed then invalid_arg "Reader: already closed"
let has_next r = (not r.closed) && r.pos < Vec.length r.vec
let remaining r = max 0 (Vec.length r.vec - r.pos)

(* Drop (and un-charge) buffers the cursor has fully consumed.  The front
   buffer runs on the base B-word charge; only read-ahead buffers beyond it
   hold an [extra] charge, so releasing eagerly here restores the ledger to
   the base charge before the caller charges memory for whatever it does
   with the elements (exactly as an unbuffered reader would leave it). *)
let trim r =
  let b = buffer_words r in
  let consumed = ref true in
  while !consumed && not (Queue.is_empty r.bufs) do
    let bi, _ = Queue.peek r.bufs in
    if r.pos / b > bi then begin
      ignore (Queue.pop r.bufs);
      if r.extra > 0 then begin
        let ctx = Vec.ctx r.vec in
        Mem.release ctx.Ctx.params ctx.Ctx.stats b;
        r.extra <- r.extra - 1
      end
    end
    else consumed := false
  done

(* Load the cursor's block plus up to [prefetch] blocks ahead, as one
   scheduling window so a D-disk machine overlaps them into few rounds.
   Read-ahead is opportunistic: each extra buffer is charged to the ledger
   up front and the batch shrinks (down to the single mandatory block) when
   the budget has no room, so [mem_peak <= M] holds whatever the caller has
   charged.  Blocks are read in ascending order — exactly the blocks an
   unbuffered reader would read, in the same order, one I/O each. *)
let refill r =
  let ctx = Vec.ctx r.vec in
  let b = Ctx.block_size ctx in
  let bi = r.pos / b in
  let ids = Vec.block_ids r.vec in
  let want = min (1 + r.prefetch) (Array.length ids - bi) in
  let extra = ref 0 in
  (try
     while !extra < want - 1 do
       Mem.charge ctx.Ctx.params ctx.Ctx.stats b;
       incr extra
     done
   with Mem.Memory_exceeded _ -> ());
  r.extra <- r.extra + !extra;
  let batch = 1 + !extra in
  (* Unmetered hint: on an async backend the batch's raw reads start on the
     worker domains now and the metered reads below consume the staged
     bytes; on a sync backend this is a no-op.  Counted I/Os, their order,
     and the window shape are identical either way. *)
  Device.prefetch ctx.Ctx.dev (Array.sub ids bi batch);
  let read_all () =
    for i = 0 to batch - 1 do
      Queue.push (bi + i, Resilient.read ctx.Ctx.dev ids.(bi + i)) r.bufs
    done
  in
  if batch > 1 then Stats.with_window ctx.Ctx.stats read_all else read_all ()

let ensure_loaded r =
  check_open r;
  if r.pos >= Vec.length r.vec then invalid_arg "Reader: end of input";
  trim r;
  if Queue.is_empty r.bufs then refill r

(* ---- forecasting support (merge-style consumers) ----

   A K-way merge at D > 1 wants to batch the refills of several runs into
   one scheduling window, but it cannot know which runs will fault next
   without looking at the data: the run whose {e last buffered} element is
   smallest is the one the merge will drain first (its whole buffer
   precedes every other run's last element).  These accessors expose just
   enough state for that classical forecasting rule without giving callers
   the buffers themselves. *)

let queue_back r = Queue.fold (fun _ buf -> Some buf) None r.bufs

(* Unconsumed read-ahead depth, in blocks.  A comparison-free proxy for the
   forecasting need-order: under roughly uniform consumption the run with the
   shallowest buffer queue is the one that will fault soonest.  Schedulers
   that order by this instead of by [last_buffered] keys do no element
   comparisons, keeping comparison counts independent of D. *)
let buffered_blocks r =
  if r.closed then 0
  else begin
    trim r;
    Queue.length r.bufs
  end

let last_buffered r =
  if r.closed then None
  else
    Option.map
      (fun (_, payload) -> payload.(Array.length payload - 1))
      (queue_back r)

(* First block that is neither consumed nor buffered, if any. *)
let next_unread_block r =
  if r.closed then None
  else begin
    let next =
      match queue_back r with
      | Some (bi, _) -> bi + 1
      | None -> r.pos / buffer_words r
    in
    if next >= Array.length (Vec.block_ids r.vec) then None else Some next
  end

let next_disk r =
  Option.map
    (fun bi ->
      let ctx = Vec.ctx r.vec in
      Device.disk_of_block ctx.Ctx.dev (Vec.block_ids r.vec).(bi))
    (next_unread_block r)

let pending_io r =
  has_next r
  && begin
       trim r;
       Queue.is_empty r.bufs
     end

let prefetch_next r =
  check_open r;
  trim r;
  match next_unread_block r with
  | None -> false
  | Some bi ->
      let ctx = Vec.ctx r.vec in
      let charged =
        (* An empty queue means the block becomes the cursor's current
           buffer and rides on the base charge; anything further is
           read-ahead and must find room in the ledger (opportunistic —
           a refusal is not an error, the merge just reads it later). *)
        Queue.is_empty r.bufs
        ||
        match Mem.charge ctx.Ctx.params ctx.Ctx.stats (buffer_words r) with
        | () ->
            r.extra <- r.extra + 1;
            true
        | exception Mem.Memory_exceeded _ -> false
      in
      charged
      && begin
           Queue.push (bi, Resilient.read ctx.Ctx.dev (Vec.block_ids r.vec).(bi)) r.bufs;
           true
         end

let peek r =
  ensure_loaded r;
  let bi, payload = Queue.peek r.bufs in
  payload.(r.pos - (bi * buffer_words r))

let next r =
  let e = peek r in
  r.pos <- r.pos + 1;
  if r.pos mod buffer_words r = 0 then trim r;
  e

(* Bulk delivery.  Already-buffered blocks are blitted out (each block is
   still read exactly once, even when the take spans block boundaries — the
   per-element peek/next path used to re-derive the boundary on every step);
   blocks wholly covered by the take are then read {e directly} into the
   result, batched D blocks to a scheduling window, without passing through
   the buffer queue at all.  Only a trailing partially-covered block is
   buffered (on the base charge), so a take never retains read-ahead charges
   past its own extent — crucial for callers like [Scan.chunks] that charge
   the returned load against the ledger next. *)
let take r n =
  if n < 0 then invalid_arg "Reader.take: negative count";
  check_open r;
  let count = min n (remaining r) in
  if count = 0 then [||]
  else begin
    let ctx = Vec.ctx r.vec in
    let b = buffer_words r in
    let out = ref [||] in
    let filled = ref 0 in
    let blit_payload payload off k =
      if Array.length !out = 0 then out := Array.make count payload.(off);
      Array.blit payload off !out !filled k;
      r.pos <- r.pos + k;
      filled := !filled + k
    in
    trim r;
    (* Consume whatever is already buffered (contiguous from the cursor). *)
    while !filled < count && not (Queue.is_empty r.bufs) do
      let bi, payload = Queue.peek r.bufs in
      let off = r.pos - (bi * b) in
      let k = min (Array.length payload - off) (count - !filled) in
      blit_payload payload off k;
      trim r
    done;
    if !filled < count then begin
      (* Queue empty means the cursor sits on a block boundary. *)
      let ids = Vec.block_ids r.vec in
      let nblocks = Array.length ids in
      let veclen = Vec.length r.vec in
      let d = ctx.Ctx.params.Params.disks in
      let covered bi =
        bi < nblocks && (bi * b) + min b (veclen - (bi * b)) <= r.pos + (count - !filled)
      in
      (* Hint every block this take will read — the covered extent plus the
         trailing partial block — so an async backend overlaps them all.
         [r.pos + (count - !filled)] is invariant across the loop below
         (blits advance both terms in lockstep), so the extent is exact. *)
      let first_bi = r.pos / b in
      let last_bi = min (nblocks - 1) ((r.pos + (count - !filled) - 1) / b) in
      if last_bi >= first_bi then
        Device.prefetch ctx.Ctx.dev (Array.sub ids first_bi (last_bi - first_bi + 1));
      while !filled < count && covered (r.pos / b) do
        let first = r.pos / b in
        let group = ref 1 in
        while !group < d && covered (first + !group) do
          incr group
        done;
        let g = !group in
        let read_group () =
          for k = 0 to g - 1 do
            let payload = Resilient.read ctx.Ctx.dev ids.(first + k) in
            blit_payload payload 0 (Array.length payload)
          done
        in
        if g > 1 then Stats.with_window ctx.Ctx.stats read_group else read_group ()
      done;
      (* Trailing partially-covered block: buffer exactly that one block (it
         stays the reader's current block for subsequent reads). *)
      if !filled < count then begin
        let bi = r.pos / b in
        let payload = Resilient.read ctx.Ctx.dev ids.(bi) in
        Queue.push (bi, payload) r.bufs;
        blit_payload payload (r.pos - (bi * b)) (count - !filled)
      end
    end;
    !out
  end

let close r =
  if not r.closed then begin
    let ctx = Vec.ctx r.vec in
    Mem.release ctx.Ctx.params ctx.Ctx.stats ((1 + r.extra) * buffer_words r);
    r.extra <- 0;
    Queue.clear r.bufs;
    r.closed <- true
  end

let with_reader ?prefetch vec f =
  let r = open_vec ?prefetch vec in
  match f r with
  | result ->
      close r;
      result
  | exception e ->
      close r;
      raise e
