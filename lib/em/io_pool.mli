(** A domain-pool asynchronous I/O scheduler.

    Worker domains each own one bounded FIFO request queue (mutex + condvar
    hand-off).  Requests are routed by an integer [key]: the same key always
    lands on the same worker.  The async file backend keys every request by
    (backend, disk), which yields the two invariants real async I/O needs:

    - {b fd affinity} — all I/O on one file descriptor executes on exactly
      one domain, so shared seek offsets are never raced;
    - {b per-slot ordering} — two requests touching the same slot are
      serialised in submission order by that worker's FIFO, so a read
      submitted after a write observes it.

    Everything the EM cost model observes (counted I/Os, rounds, fault
    decisions, checksums, trace events) is decided on the {e submitting}
    domain before a job is enqueued; jobs are pure byte shuffling.  Async
    execution therefore moves wall-clock time and nothing else — the
    property {!Test_async} locks in.

    Pools are explicit for tests; production machines share {!global} (one
    pool of {!default_workers} domains per process — domains are scarce, the
    runtime caps them at ~128). *)

type t

val default_workers : unit -> int
(** [$EM_ASYNC_WORKERS] when set (a positive integer), else 4.
    @raise Invalid_argument when the variable is set but unparseable. *)

val workers_env_var : string
(** ["EM_ASYNC_WORKERS"] *)

val default_capacity : int
(** Per-worker queue bound (64): {!submit} blocks — backpressure, not
    unbounded buffering — while the target worker's queue is full. *)

val create : ?workers:int -> ?capacity:int -> unit -> t
(** Spawn [workers] worker domains (default {!default_workers} [()]), each
    with a [capacity]-bounded queue. *)

val workers : t -> int
val in_flight : t -> int
(** Requests submitted and not yet completed.  Decremented {e before} the
    request's ticket resolves, so once an {!await} returns, the awaited
    request is no longer counted. *)

val closed : t -> bool

(** {1 Untyped submission} *)

type ticket
(** One request's completion cell; resolves exactly once. *)

val submit : t -> key:int -> (unit -> unit) -> ticket
(** Enqueue a job on worker [key mod workers].  Blocks while that worker's
    queue is full.  The job must not touch caller-domain state.
    @raise Invalid_argument if the pool is shut down. *)

val await : ticket -> unit
(** Block until the job completed; re-raises the job's exception (once per
    awaiter) on the calling domain. *)

(** {1 Typed submission} *)

type 'a task

val run : t -> key:int -> (unit -> 'a) -> 'a task
val wait : 'a task -> 'a
(** [wait (run t ~key f)] is [f ()] evaluated on worker [key mod workers];
    the ticket mutex provides the happens-before edge for the result. *)

(** {1 Lifecycle} *)

val quiesce : t -> unit
(** Block until no request is in flight. *)

val shutdown : t -> unit
(** Stop accepting work, let every worker drain its queue (queued requests
    are executed, never dropped), and join the domains.  Idempotent. *)

(** {1 The shared default pool} *)

val global : unit -> t
(** The process-wide pool, spawned on first use and joined [at_exit].
    Asynchronous machines created by {!Ctx.create} share it. *)

val fresh_key_base : unit -> int
(** A fresh routing-key base for one async backend: disk [d] of a backend
    with base [b] submits under key [b + d], pinning each (backend, disk)
    pair to one worker. *)
