(** Per-phase I/O attribution.

    Algorithms label their passes ([with_label ctx "distribute" f]); every
    block read/write performed while a label is active is attributed to the
    full path of active labels, outermost first and joined with ["/"]
    (so ["sort/merge"] and ["multiselect/merge"] stay distinct).  The report
    makes the cost structure of a composed algorithm visible (the benchmarks
    print it), at zero simulated cost. *)

val with_label : 'a Ctx.t -> string -> (unit -> 'b) -> 'b
(** Push a label around a computation (restored on exceptions too).  Entering
    and leaving the label also fires any {!Stats.span_hooks} attached to the
    machine, which is how {!Profile} sees span boundaries. *)

val report : 'a Ctx.t -> (string * int) list
(** Per-phase-path I/O counts since the last {!Stats.reset}, largest first;
    unlabeled I/O appears as ["(other)"]. *)
