type t = { mem : int; block : int; disks : int }

let disks_env_var = "EM_DISKS"

let default_disks () =
  match Sys.getenv_opt disks_env_var with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ ->
          invalid_arg
            (Printf.sprintf "Params: %s must be a positive integer (got %S)"
               disks_env_var s))

let async_env_var = "EM_ASYNC"

let default_async () =
  match Sys.getenv_opt async_env_var with
  | None | Some "" | Some "0" -> false
  | Some "1" -> true
  | Some s ->
      invalid_arg
        (Printf.sprintf "Params: %s must be 0 or 1 (got %S)" async_env_var s)

let make ~mem ~block ~disks =
  if block < 1 then invalid_arg "Params.create: block size must be >= 1";
  if mem < 2 * block then
    invalid_arg "Params.create: memory must hold at least two blocks (M >= 2B)";
  if disks < 1 then invalid_arg "Params.create: disks must be >= 1";
  { mem; block; disks }

let create ~mem ~block = make ~mem ~block ~disks:(default_disks ())
let with_disks p disks = make ~mem:p.mem ~block:p.block ~disks
let fanout p = p.mem / p.block

let blocks_of_elems p n =
  if n < 0 then invalid_arg "Params.blocks_of_elems: negative element count";
  (n + p.block - 1) / p.block

let pp ppf p =
  if p.disks = 1 then Format.fprintf ppf "{ M = %d; B = %d }" p.mem p.block
  else Format.fprintf ppf "{ M = %d; B = %d; D = %d }" p.mem p.block p.disks
