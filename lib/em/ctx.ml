type 'a t = { params : Params.t; stats : Stats.t; trace : Trace.t; dev : 'a Device.t }

let create ?trace params =
  let stats = Stats.create () in
  let trace = match trace with Some t -> t | None -> Trace.create () in
  { params; stats; trace; dev = Device.create ~trace params stats }

let linked ctx =
  let dev = Device.create ~trace:ctx.trace ctx.params ctx.stats in
  (* Auxiliary streams face the same disk: one fault plan sees the family's
     interleaved I/O stream, and recovery counters aggregate across it. *)
  (match Device.injector ctx.dev with None -> () | Some plan -> Device.inject dev plan);
  (match Device.recovery ctx.dev with None -> () | Some r -> Device.arm ~share:r dev);
  { params = ctx.params; stats = ctx.stats; trace = ctx.trace; dev }

let inject ctx plan = Device.inject ctx.dev plan
let clear_injector ctx = Device.clear_injector ctx.dev
let arm ?policy ctx = Device.arm ?policy ctx.dev
let fault_report ctx = Device.recovery ctx.dev

let counted ctx cmp x y =
  ctx.stats.Stats.comparisons <- ctx.stats.Stats.comparisons + 1;
  cmp x y

let measured ctx f =
  let snap = Stats.snapshot ctx.stats in
  let result = f () in
  (result, Stats.delta ctx.stats snap)

let mem_capacity ctx = ctx.params.Params.mem
let block_size ctx = ctx.params.Params.block
let fanout ctx = Params.fanout ctx.params
let with_words ctx n f = Mem.with_words ctx.params ctx.stats n f
