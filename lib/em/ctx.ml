type 'a t = { params : Params.t; stats : Stats.t; trace : Trace.t; dev : 'a Device.t }

let create ?trace params =
  let stats = Stats.create () in
  let trace = match trace with Some t -> t | None -> Trace.create () in
  { params; stats; trace; dev = Device.create ~trace params stats }

let linked ctx =
  {
    params = ctx.params;
    stats = ctx.stats;
    trace = ctx.trace;
    dev = Device.create ~trace:ctx.trace ctx.params ctx.stats;
  }

let counted ctx cmp x y =
  ctx.stats.Stats.comparisons <- ctx.stats.Stats.comparisons + 1;
  cmp x y

let measured ctx f =
  let snap = Stats.snapshot ctx.stats in
  let result = f () in
  (result, Stats.delta ctx.stats snap)

let mem_capacity ctx = ctx.params.Params.mem
let block_size ctx = ctx.params.Params.block
let fanout ctx = Params.fanout ctx.params
let with_words ctx n f = Mem.with_words ctx.params ctx.stats n f
