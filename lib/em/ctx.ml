type 'a t = {
  params : Params.t;
  stats : Stats.t;
  trace : Trace.t;
  backend : Backend.instance;
  dev : 'a Device.t;
  shard : int option;
}

let create ?trace ?backend ?backend_dir ?pool_pages ?async ?io_pool ?file_delay
    ?disks ?shard params =
  let params = match disks with None -> params | Some d -> Params.with_disks params d in
  let stats = Stats.create () in
  let trace = match trace with Some t -> t | None -> Trace.create () in
  let spec = match backend with Some s -> s | None -> Backend.default_spec () in
  let backend =
    Backend.instance ?dir:backend_dir ?pool_pages ?async ?io_pool ?file_delay
      spec params stats
  in
  { params; stats; trace; backend;
    dev = Device.create ~trace ~backend:(Backend.make backend) ?shard params stats;
    shard }

let linked ctx =
  (* The linked device inherits the family's backend instance: same spec,
     same backing directory, and — crucially — the same buffer pool when
     cached, while keeping its own (disjoint) slot space. *)
  let dev =
    Device.create ~trace:ctx.trace ~backend:(Backend.make ctx.backend) ?shard:ctx.shard
      ctx.params ctx.stats
  in
  (* Auxiliary streams face the same disk: one fault plan sees the family's
     interleaved I/O stream, and recovery counters aggregate across it. *)
  (match Device.injector ctx.dev with None -> () | Some plan -> Device.inject dev plan);
  (match Device.recovery ctx.dev with None -> () | Some r -> Device.arm ~share:r dev);
  { params = ctx.params; stats = ctx.stats; trace = ctx.trace; backend = ctx.backend; dev;
    shard = ctx.shard }

let backend_name ctx = Backend.name ctx.backend
let backend_pool ctx = Backend.pool ctx.backend
let async ctx = Backend.async_enabled ctx.backend
let flush ctx = Device.flush ctx.dev
let close ctx = Device.close ctx.dev

let inject ctx plan = Device.inject ctx.dev plan
let clear_injector ctx = Device.clear_injector ctx.dev
let arm ?policy ctx = Device.arm ?policy ctx.dev
let fault_report ctx = Device.recovery ctx.dev

let counted ctx cmp x y =
  ctx.stats.Stats.comparisons <- ctx.stats.Stats.comparisons + 1;
  cmp x y

let measured ctx f =
  let snap = Stats.snapshot ctx.stats in
  let result = f () in
  (result, Stats.delta ctx.stats snap)

let shard ctx = ctx.shard
let mem_capacity ctx = ctx.params.Params.mem
let block_size ctx = ctx.params.Params.block
let fanout ctx = Params.fanout ctx.params
let disks ctx = ctx.params.Params.disks
let with_words ctx n f = Mem.with_words ctx.params ctx.stats n f
let io_window ctx f = Stats.with_window ctx.stats f
