(* A reliable single-slot checkpoint store.

   Restartable drivers persist their progress here between steps.  The slot
   models a fixed, reliable region of the disk (checkpoint area): saving and
   loading are metered as real block I/Os — ceil(words/B) of them — charged
   to the shared stats under dedicated phase labels, but the region is
   outside the faulted device, so the injector never touches it and its
   contents survive crashes.  Trace events for the region use negative block
   ids, keeping it visibly disjoint from the data device's id space. *)

type 's t = {
  stats : Stats.t;
  trace : Trace.t;
  block : int;
  mutable slot : 's option;
  mutable slot_words : int;
  mutable saves : int;
  mutable loads : int;
  mutable save_ios : int;
  mutable load_ios : int;
}

let create ctx =
  {
    stats = ctx.Ctx.stats;
    trace = ctx.Ctx.trace;
    block = Ctx.block_size ctx;
    slot = None;
    slot_words = 0;
    saves = 0;
    loads = 0;
    save_ios = 0;
    load_ios = 0;
  }

let blocks_of_words t words = max 1 ((max 0 words + t.block - 1) / t.block)

let charge t (op : Trace.op) ~label n =
  let s = t.stats in
  Stats.push_phase s label;
  for i = 0 to n - 1 do
    (match op with
    | Trace.Read -> s.Stats.reads <- s.Stats.reads + 1
    | Trace.Write -> s.Stats.writes <- s.Stats.writes + 1);
    Stats.record_phase_io s;
    (* The checkpoint region lives at negative "addresses". *)
    Trace.emit t.trace op ~block:(-1 - i) ~phase:s.Stats.phase_stack
  done;
  Stats.pop_phase s

let save t ~words state =
  let n = blocks_of_words t words in
  charge t Trace.Write ~label:"checkpoint" n;
  t.slot <- Some state;
  t.slot_words <- words;
  t.saves <- t.saves + 1;
  t.save_ios <- t.save_ios + n

let install t ~words state =
  t.slot <- Some state;
  t.slot_words <- words

let load t =
  match t.slot with
  | None -> None
  | Some state ->
      let n = blocks_of_words t t.slot_words in
      charge t Trace.Read ~label:"resume" n;
      t.loads <- t.loads + 1;
      t.load_ios <- t.load_ios + n;
      Some state

let peek t = t.slot
let saves t = t.saves
let loads t = t.loads
let save_ios t = t.save_ios
let load_ios t = t.load_ios
