(* Deterministic fault plans; see the interface. *)

type op = [ `Read | `Write ]

type kind =
  | Transient_read
  | Permanent_read
  | Transient_write
  | Permanent_write
  | Torn_write
  | Bit_corruption
  | Crash

let kind_name = function
  | Transient_read -> "transient-read"
  | Permanent_read -> "permanent-read"
  | Transient_write -> "transient-write"
  | Permanent_write -> "permanent-write"
  | Torn_write -> "torn-write"
  | Bit_corruption -> "bit-corruption"
  | Crash -> "crash"

let applies kind (op : op) =
  match (kind, op) with
  | (Transient_read | Permanent_read), `Read -> true
  | (Transient_write | Permanent_write | Torn_write), `Write -> true
  | (Bit_corruption | Crash), _ -> true
  | _ -> false

let is_permanent = function
  | Permanent_read | Permanent_write -> true
  | Transient_read | Transient_write | Torn_write | Bit_corruption | Crash -> false

let is_silent = function
  | Torn_write | Bit_corruption -> true
  | Transient_read | Permanent_read | Transient_write | Permanent_write | Crash -> false

(* A private splitmix64, so plans never touch the global [Random] state and
   replay identically for a given seed (mirrors Core.Workload.Rng, which this
   library cannot depend on). *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next r =
    r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
    let z = r.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* Uniform in [0, 1), using the top 53 bits. *)
  let float01 r = Int64.to_float (Int64.shift_right_logical (next r) 11) /. 9007199254740992.0

  let int r bound =
    if bound <= 0 then invalid_arg "Fault.Rng.int: bound must be positive";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 1) (Int64.of_int bound))
end

type plan = {
  mutable seen : int;  (* metered I/O attempts presented to this plan *)
  choose : io:int -> op:op -> block:int -> phase:string list -> kind option;
}

let decide p ~op ~block ~phase =
  let io = p.seen in
  p.seen <- io + 1;
  p.choose ~io ~op ~block ~phase

let seen p = p.seen
let make choose = { seen = 0; choose }
let never = make (fun ~io:_ ~op:_ ~block:_ ~phase:_ -> None)

let every_nth ?(offset = 0) ~n kind =
  if n < 1 then invalid_arg "Fault.every_nth: n must be >= 1";
  make (fun ~io ~op ~block:_ ~phase:_ ->
      let i = io - offset in
      if i >= 0 && (i + 1) mod n = 0 && applies kind op then Some kind else None)

let seeded ~seed ~p kinds =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.seeded: p must be in [0, 1]";
  if kinds = [] then invalid_arg "Fault.seeded: empty kind list";
  let rng = Rng.create seed in
  make (fun ~io:_ ~op ~block:_ ~phase:_ ->
      (* Exactly one uniform draw per I/O, so the fault positions for a given
         seed do not depend on the kind mix. *)
      let fire = Rng.float01 rng < p in
      if not fire then None
      else
        match List.filter (fun k -> applies k op) kinds with
        | [] -> None
        | applicable -> Some (List.nth applicable (Rng.int rng (List.length applicable))))

let on_blocks blocks kind =
  make (fun ~io:_ ~op ~block ~phase:_ ->
      if List.mem block blocks && applies kind op then Some kind else None)

let in_phase label inner =
  make (fun ~io:_ ~op ~block ~phase ->
      if List.mem label phase then decide inner ~op ~block ~phase else None)

let on_op target inner =
  make (fun ~io:_ ~op ~block ~phase ->
      if op = target then decide inner ~op ~block ~phase else None)

let limit k inner =
  if k < 0 then invalid_arg "Fault.limit: negative count";
  let fired = ref 0 in
  make (fun ~io:_ ~op ~block ~phase ->
      if !fired >= k then None
      else
        match decide inner ~op ~block ~phase with
        | Some kind ->
            incr fired;
            Some kind
        | None -> None)

let crash_after_ios n =
  if n < 1 then invalid_arg "Fault.crash_after_ios: n must be >= 1";
  let fired = ref false in
  make (fun ~io ~op:_ ~block:_ ~phase:_ ->
      if (not !fired) && io + 1 >= n then begin
        fired := true;
        Some Crash
      end
      else None)

let crash_at indices =
  List.iter (fun i -> if i < 1 then invalid_arg "Fault.crash_at: indices must be >= 1") indices;
  let remaining = ref (List.sort_uniq Int.compare indices) in
  make (fun ~io ~op:_ ~block:_ ~phase:_ ->
      match !remaining with
      | next :: rest when io + 1 >= next ->
          remaining := rest;
          Some Crash
      | _ -> None)

let any plans =
  make (fun ~io:_ ~op ~block ~phase ->
      (* Consult every sub-plan on every I/O — each keeps its own schedule
         position — then fire the first hit. *)
      List.fold_left
        (fun hit p ->
          match decide p ~op ~block ~phase with
          | Some _ as fired when hit = None -> fired
          | _ -> hit)
        None plans)
