(** Typed metrics registry with Prometheus and canonical-JSON exporters.

    A {!t} holds named metrics of three kinds — monotone {!counter}s,
    {!gauge}s, and log-scaled {!histogram}s — each optionally distinguished
    by a {!labels} set.  Registering the same [(name, labels)] pair twice
    returns the same instance (registering it with a different kind raises
    [Invalid_argument]).  Like {!Trace}, this is observability machinery:
    updating a metric costs no simulated I/O and never changes what an
    algorithm does.

    Exports are canonical: metrics are emitted sorted by name then labels,
    with labels themselves sorted by key, so two registries holding the same
    data export byte-identical text regardless of registration order. *)

type t
(** A registry.  All metric names are prefixed with the registry namespace
    on export ([em] by default). *)

type labels = (string * string) list
(** Label sets distinguish streams of the same metric
    (e.g. [("row", "splitters_right")]).  Keys must be unique. *)

type counter
type gauge
type histogram

val create : ?namespace:string -> unit -> t

val counter : t -> ?help:string -> ?labels:labels -> string -> counter
(** Find-or-register a monotone integer counter.  Metric names are
    [[A-Za-z0-9_]+]; anything else raises [Invalid_argument]. *)

val incr : ?by:int -> counter -> unit
(** Increment ([by] defaults to 1; negative raises [Invalid_argument]). *)

val counter_value : counter -> int

val gauge : t -> ?help:string -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> ?help:string -> ?base:float -> ?labels:labels -> string -> histogram
(** Find-or-register a log-scaled histogram: bucket [0] covers values
    [<= 1], bucket [i >= 1] covers [(base^(i-1), base^i]] ([base] defaults
    to 2 and must be > 1).  Buckets grow on demand, so any value range is
    covered with logarithmically many buckets. *)

val observe : histogram -> float -> unit
(** Record one sample (NaN raises [Invalid_argument]). *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1], otherwise
    [Invalid_argument]) as the upper boundary of the smallest bucket whose
    cumulative count reaches [ceil (q * count)], clamped to the observed
    [min, max] range — so a one-sample histogram reports that sample exactly
    and the estimate of any sample set is off by at most one bucket factor.
    Returns [nan] on an empty histogram. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_buckets : histogram -> (float * int) list
(** [(upper boundary, cumulative count)] per allocated bucket, ascending;
    the implicit [+Inf] bucket equals {!hist_count}. *)

val to_prometheus : t -> string
(** Prometheus text exposition format (one [# TYPE] header per metric name,
    [_bucket]/[_sum]/[_count] series for histograms, with a [+Inf] bucket). *)

val to_json : t -> string
(** Canonical JSON document:
    [{"namespace": ..., "metrics": [{"name", "type", "labels", ...}]}] with
    one object per metric; counters and gauges carry ["value"], histograms
    carry ["count"], ["sum"] and cumulative ["buckets"]. *)

val publish_stats : t -> Stats.t -> unit
(** Publish the machine's native counters ({!Stats.t}) into the registry:
    [reads_total], [writes_total], [ios_total], [comparisons_total],
    [faults_total], [retries_total], [mem_peak_words], and one
    [phase_ios{path=...}] gauge per phase path.  When a cached backend has
    been active (any nonzero cache counter), additionally
    [cache_hits_total], [cache_misses_total] and [cache_evictions_total].
    When the communication ledger is live (a {!Core.Cluster} has been
    metering transfers), additionally [comm_rounds_total],
    [comm_words_total] and per-shard [shard_sent_words{shard=...}] /
    [shard_recv_words{shard=...}] gauges — all simulated costs, like every
    other gauge here. *)
