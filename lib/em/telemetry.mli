(** Streaming serve-layer telemetry.

    A telemetry emitter appends canonical one-line JSON frames to a sink —
    a file, a connected Unix-domain socket, an existing channel, or a
    callback — on a cadence of every N queries and/or every T seconds.
    Dashboards tail the stream instead of polling the server.

    Frames have a fixed two-compartment layout:

    {v
    {"frame":"telemetry","seq":S,"queries":Q,"cost":{...},"wall":{...}}
    v}

    where ["frame"] is ["telemetry"], ["alert"] (drift watchdog) or
    ["final"] (shutdown).  The ["cost"] object carries only simulated,
    byte-deterministic quantities; anything derived from the wall clock
    (timestamps, qps, latency quantiles) is confined to ["wall"], so smoke
    tests normalise exactly one sub-object per line and byte-diff the
    rest.  Communication-ledger counters ([comm_rounds], [comm_words] —
    BSP supersteps and inter-shard words, see {!Stats.record_comm}) are
    simulated costs and therefore belong to the ["cost"] compartment;
    emitters include them gated — absent when zero — so single-machine
    frame streams stay byte-identical.  Both payloads are supplied by the
    caller as pre-rendered JSON object strings; the wall payload is a
    thunk, evaluated only for frames that are actually emitted. *)

type t
type sink

val channel_sink : out_channel -> sink
(** Writes frames to an existing channel (flushed per frame); the caller
    keeps ownership and closes it. *)

val file_sink : string -> sink
(** Truncates/creates the file; {!close} closes it. *)

val socket_sink : string -> sink
(** Connects to a Unix-domain stream socket at the given path; {!close}
    closes the connection.
    @raise Failure if the connection cannot be established. *)

val fn_sink : (string -> unit) -> sink
(** Calls the function with each frame line (no trailing newline). *)

val create :
  ?every_queries:int -> ?every_seconds:float -> ?now:(unit -> float) ->
  sink -> t
(** An emitter whose {!tick} fires when at least [every_queries] queries
    or [every_seconds] seconds (measured by [now], default
    [Unix.gettimeofday]) have passed since the last emitted tick frame —
    whichever comes first when both are set.  When neither cadence is
    given, defaults to a frame per query.
    @raise Invalid_argument on a non-positive cadence. *)

val tick :
  t -> queries:int -> cost:string -> wall:(unit -> string) -> unit
(** Emit a ["telemetry"] frame if one is due; otherwise do nothing. *)

val alert :
  t -> queries:int -> cost:string -> wall:(unit -> string) -> unit
(** Emit an ["alert"] frame unconditionally (cadence-exempt). *)

val final :
  t -> queries:int -> cost:string -> wall:(unit -> string) -> unit
(** Emit a ["final"] frame unconditionally. *)

val frames : t -> int
(** Frames emitted so far (= the [seq] of the most recent frame). *)

val close : t -> unit
(** Flush and release the sink.  Idempotent; frames after [close] are
    dropped. *)

val summarize : ?prev:string -> string -> (string, string) result
(** Render one frame line as the multi-line dashboard block `em_repro top`
    prints: qps, p50/p99 latency, I/Os per query, cache hit rate,
    refinement progress, drift ratio.  [prev] is the previous frame line,
    used to compute an interval qps instead of the session average.
    Returns [Error] with a parse diagnostic for non-frame input. *)

(** Minimal JSON reader — just enough for [summarize] and `em_repro top`
    to consume the frames this module writes (the project deliberately
    carries no JSON-parsing dependency). *)
module Json : sig
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of v list
    | Obj of (string * v) list

  val parse : string -> (v, string) result
  (** Parse a complete JSON document; [Error] carries an offset-annotated
      diagnostic.  Numbers are floats; strings decode the standard
      escapes including [\uXXXX] (as UTF-8). *)

  val member : string -> v -> v option
  (** Field lookup on an object; [None] on missing field or non-object. *)

  val path : string list -> v -> v option
  (** Nested {!member} lookup. *)

  val num : v -> float option
  val str : v -> string option
end
