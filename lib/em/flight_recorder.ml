(* Bounded journal of recent query records, joined on demand with the
   Trace ring into a self-contained post-mortem JSON.

   Each record remembers the [Trace.total] window ([seq_lo], [seq_hi])
   that was live while its query executed, so a dump can slice the trace
   ring down to exactly the events belonging to the retained queries.
   Everything wall-clock-derived stays under "wall" keys, matching the
   serve/telemetry determinism convention. *)

type record = {
  id : int;
  kind : string;
  query : string;
  ios : int;
  rounds : int;
  splits : int;
  wall_ns : int;
  outcome : string;
  seq_lo : int;  (* Trace.total before the query ran *)
  seq_hi : int;  (* Trace.total after it finished *)
}

type t = {
  capacity : int;
  mutable buf : record array;
  mutable len : int;
  mutable head : int;
  mutable total : int;  (* records ever pushed, independent of capacity *)
  mutable dumps : int;
}

let default_capacity = 64

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight_recorder.create: capacity must be >= 1";
  { capacity; buf = [||]; len = 0; head = 0; total = 0; dumps = 0 }

let record t r =
  if Array.length t.buf = 0 then t.buf <- Array.make t.capacity r;
  if t.len < t.capacity then begin
    t.buf.((t.head + t.len) mod t.capacity) <- r;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.head) <- r;
    t.head <- (t.head + 1) mod t.capacity
  end;
  t.total <- t.total + 1

let records t = List.init t.len (fun i -> t.buf.((t.head + i) mod t.capacity))
let recorded t = t.total
let retained t = t.len
let dumps t = t.dumps

let record_to_json r =
  Printf.sprintf
    "{\"id\":%d,\"kind\":%S,\"query\":%S,\"outcome\":%S,\"cost\":{\"ios\":%d,\"rounds\":%d,\"splits\":%d},\"trace\":{\"lo\":%d,\"hi\":%d},\"wall\":{\"ns\":%d}}"
    r.id r.kind r.query r.outcome r.ios r.rounds r.splits r.seq_lo r.seq_hi
    r.wall_ns

let dump ?trace ?metrics ?(now = Unix.gettimeofday) ~reason t =
  t.dumps <- t.dumps + 1;
  let rs = records t in
  let queries = String.concat "," (List.map record_to_json rs) in
  (* Slice the trace ring to the events that belong to retained queries:
     everything at or after the oldest retained record's start. *)
  let trace_json =
    match trace with
    | None -> "\"trace_events\":[],\"trace_dropped\":0"
    | Some tr ->
        let lo =
          List.fold_left (fun acc r -> min acc r.seq_lo) max_int rs
        in
        let evs =
          Trace.events tr
          |> List.filter (fun (e : Trace.event) -> rs = [] || e.seq >= lo)
          |> List.map Trace.event_to_json
        in
        Printf.sprintf "\"trace_events\":[%s],\"trace_dropped\":%d"
          (String.concat "," evs) (Trace.dropped tr)
  in
  let metrics_json =
    match metrics with
    | None -> "null"
    | Some reg ->
        (* Metrics.to_json ends with a newline; a post-mortem is one line. *)
        String.trim (Metrics.to_json reg)
  in
  Printf.sprintf
    "{\"postmortem\":{\"reason\":%S,\"recorded\":%d,\"retained\":%d,\"queries\":[%s],%s,\"metrics\":%s,\"wall\":{\"ts_ms\":%.0f}}}"
    reason t.total t.len queries trace_json metrics_json
    (now () *. 1000.)

let dump_to_file ?trace ?metrics ?now ~reason t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (dump ?trace ?metrics ?now ~reason t);
      output_char oc '\n')
