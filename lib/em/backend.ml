(* Physical block storage behind [Device].

   [Device] keeps everything the EM model cares about — metering, fault
   injection, checksums, remapping — and delegates the actual byte shuffling
   to a backend: a record of closures over *physical* slot numbers.  Three
   implementations ship: [sim] (the historical in-memory option array),
   [file] (fixed-size marshalled slots on a real Unix file), and [cached]
   (a buffer-pool LRU wrapper over any other backend whose resident pages
   are charged against the [Mem] ledger).

   Closures rather than a functor because a linked device family mixes
   element types but must share one buffer pool; the pool stores untyped
   eviction callbacks and each typed backend keeps its own page table. *)

type 'a t = {
  name : string;
  alloc : unit -> int;  (* grab a fresh (or recycled) physical slot *)
  load : int -> 'a array option;  (* [None] = never written / freed *)
  store : int -> 'a array -> unit;  (* owns copying: caller's array is not retained *)
  free : int -> unit;  (* recycle the slot; subsequent [load] is [None] *)
  probe : int -> Trace.cache option;  (* pre-read residency check; [None] = uncached *)
  prefetch : int -> unit;  (* advisory: start fetching a slot's bytes early *)
  pin : int -> unit;  (* protect a resident page from eviction (no-op if uncached) *)
  unpin : int -> unit;
  flush : unit -> unit;  (* write back dirty pages / fsync to stable storage *)
  close : unit -> unit;  (* release OS resources; idempotent *)
}

(* Initial slot-table sizing: enough for a few streams of M/B blocks each, so
   large sweeps don't pay repeated regrowth (the historical store doubled from
   a hardcoded 64-slot seed regardless of geometry). *)
let default_slots p = max 64 (8 * Params.fanout p)

(* Dense physical-slot allocator with LIFO recycling — the same discipline the
   historical in-device free list used, so allocation traces (and therefore
   golden I/O counts, which mention block ids) are byte-identical.

   With D > 1 disks the slot space is striped: slot [s] lives on disk
   [s mod D], the k-th fresh slot of disk [d] is [k * D + d], and each disk
   keeps its own LIFO free list.  Allocation round-robins across the disks,
   so any run of consecutively allocated slots (e.g. one [Vec]) is balanced
   to within one block per disk.  At D = 1 all of this degenerates to the
   historical single free list: same slots, same order. *)
type allocator = {
  disks : int;
  next_slot : int array;  (* per-disk fresh watermark *)
  recycled : int list array;  (* per-disk LIFO free lists *)
  mutable next_disk : int;  (* round-robin cursor *)
}

let allocator ?(disks = 1) () =
  if disks < 1 then invalid_arg "Backend.allocator: disks must be >= 1";
  {
    disks;
    next_slot = Array.make disks 0;
    recycled = Array.make disks [];
    next_disk = 0;
  }

let alloc_slot a =
  let d = a.next_disk in
  a.next_disk <- (d + 1) mod a.disks;
  match a.recycled.(d) with
  | s :: rest ->
      a.recycled.(d) <- rest;
      s
  | [] ->
      let k = a.next_slot.(d) in
      a.next_slot.(d) <- k + 1;
      (k * a.disks) + d

let free_slot a s = a.recycled.(s mod a.disks) <- s :: a.recycled.(s mod a.disks)

(* ------------------------------------------------------------------ *)
(* Sim: the in-memory store, extracted verbatim from Device.          *)
(* ------------------------------------------------------------------ *)

let sim ?(slots = 64) ?disks () =
  let store = ref (Array.make (max 1 slots) None) in
  let a = allocator ?disks () in
  let ensure_capacity s =
    let n = Array.length !store in
    if s >= n then begin
      let grown = Array.make (max (2 * n) (s + 1)) None in
      Array.blit !store 0 grown 0 n;
      store := grown
    end
  in
  {
    name = "sim";
    alloc =
      (fun () ->
        let s = alloc_slot a in
        ensure_capacity s;
        s);
    load = (fun s -> !store.(s));
    store =
      (fun s payload ->
        ensure_capacity s;
        !store.(s) <- Some (Array.copy payload));
    free =
      (fun s ->
        ensure_capacity s;
        !store.(s) <- None;
        free_slot a s);
    probe = (fun _ -> None);
    prefetch = (fun _ -> ());
    pin = (fun _ -> ());
    unpin = (fun _ -> ());
    flush = (fun () -> ());
    close = (fun () -> ());
  }

(* ------------------------------------------------------------------ *)
(* File: fixed-size marshalled slots on a real Unix file.             *)
(* ------------------------------------------------------------------ *)

let really_write fd buf =
  let len = Bytes.length buf in
  let n = ref 0 in
  while !n < len do
    n := !n + Unix.write fd buf !n (len - !n)
  done

let really_read fd len =
  let buf = Bytes.create len in
  let n = ref 0 in
  while !n < len do
    let k = Unix.read fd buf !n (len - !n) in
    if k = 0 then failwith "Backend.file: unexpected end of block file";
    n := !n + k
  done;
  buf

let slot_header = 8  (* little-endian marshalled-payload byte count *)
let env_dir_var = "EM_BACKEND_DIR"

let backing_dir dir =
  match dir with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt env_dir_var with
      | Some d when d <> "" -> d
      | _ -> Filename.get_temp_dir_name ())

let latency_env_var = "EM_FILE_LATENCY_US"

let default_file_delay () =
  match Sys.getenv_opt latency_env_var with
  | None | Some "" -> None
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some us when us = 0. -> None
      | Some us when us > 0. -> Some (fun () -> Unix.sleepf (us *. 1e-6))
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Backend: %s must be a non-negative number of microseconds (got %S)"
               latency_env_var s))

let file (type elt) ?dir ?delay ?io ?(disks = 1) ~slot_bytes () : elt t =
  if slot_bytes < slot_header + 8 then
    invalid_arg "Backend.file: slot_bytes is too small to hold any payload";
  if disks < 1 then invalid_arg "Backend.file: disks must be >= 1";
  let temp_dir = backing_dir dir in
  (* One backing file per disk: slot [s] lives on disk [s mod D] at offset
     [(s / D) * slot_bytes], so each "spindle" is its own dense file. *)
  let fds =
    Array.init disks (fun _ ->
        let path = Filename.temp_file ~temp_dir "em-blocks-" ".dat" in
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
        (* Unlink immediately: the kernel keeps the inode alive while the fd
           is open and reclaims the space on close, so block files can never
           leak — not across a bench sweep, not even on a crash. *)
        (try Sys.remove path with Sys_error _ -> ());
        fd)
  in
  let closed = ref false in
  let close_fds () =
    Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds
  in
  let check_open () = if !closed then invalid_arg "Backend.file: backend is closed" in
  let a = allocator ~disks () in
  let written : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* [delay] models per-access device latency (bench gates, stress jitter).
     It runs on whichever domain executes the raw I/O — the caller under the
     synchronous assembly, a pool worker under the asynchronous one — which
     is exactly what lets the async path overlap it. *)
  let pause () = match delay with Some f -> f () | None -> () in
  let seek s =
    let fd = fds.(s mod disks) in
    ignore (Unix.lseek fd (s / disks * slot_bytes) Unix.SEEK_SET);
    fd
  in
  (* Marshalling (and the [Slot_overflow] check) always happens on the
     caller's domain so oversized payloads raise synchronously under either
     assembly; only the raw pread/pwrite-equivalents below are offloadable. *)
  let encode s (payload : elt array) =
    let data = Marshal.to_bytes payload [] in
    let len = Bytes.length data in
    if len + slot_header > slot_bytes then
      raise (Em_error.Slot_overflow { bytes = len + slot_header; capacity = slot_bytes; slot = s });
    let buf = Bytes.create (len + slot_header) in
    Bytes.set_int64_le buf 0 (Int64.of_int len);
    Bytes.blit data 0 buf slot_header len;
    buf
  in
  let write_raw s buf =
    pause ();
    really_write (seek s) buf
  in
  let read_raw s : elt array =
    pause ();
    let fd = seek s in
    let len = Int64.to_int (Bytes.get_int64_le (really_read fd slot_header) 0) in
    Marshal.from_bytes (really_read fd len) 0
  in
  match io with
  | None ->
      (* Synchronous assembly: the exact historical code path. *)
      let close () =
        if not !closed then begin
          closed := true;
          close_fds ()
        end
      in
      (* Backstop for backends dropped without an explicit close (tests,
         bench iterations): release the fds once the backend is unreachable.
         The finaliser hangs off [written] — captured by the closures below,
         so it stays alive as long as *any* copy of the record does (the
         record itself may be functionally updated, e.g. renamed by
         [make]). *)
      Gc.finalise (fun (_ : (int, unit) Hashtbl.t) -> close ()) written;
      {
        name = "file";
        alloc = (fun () -> alloc_slot a);
        load =
          (fun s ->
            check_open ();
            if Hashtbl.mem written s then Some (read_raw s) else None);
        store =
          (fun s payload ->
            check_open ();
            let buf = encode s payload in
            write_raw s buf;
            Hashtbl.replace written s ());
        free =
          (fun s ->
            Hashtbl.remove written s;
            free_slot a s);
        probe = (fun _ -> None);
        prefetch = (fun _ -> ());
        pin = (fun _ -> ());
        unpin = (fun _ -> ());
        flush =
          (fun () ->
            check_open ();
            Array.iter Unix.fsync fds);
        close;
      }
  | Some pool ->
      (* Asynchronous assembly over the same raw primitives.  All bookkeeping
         the model observes — the [written] set, the allocator, overflow
         checks — stays on the caller's domain in the same order as the
         synchronous path; only raw slot reads/writes cross into the pool.
         Routing key [key_base + (s mod disks)] pins each disk's fd to one
         worker, so shared seek offsets are never raced and two requests on
         one slot retire in submission order (that worker's FIFO). *)
      let key_base = Io_pool.fresh_key_base () in
      let key s = key_base + (s mod disks) in
      (* Reads staged by [prefetch], consumed (or discarded) exactly once. *)
      let staged : (int, elt array Io_pool.task) Hashtbl.t = Hashtbl.create 64 in
      (* Latest write-behind ticket per slot: an older ticket replaced here
         targets the same worker FIFO, so awaiting only the newest one at
         flush time still covers it. *)
      let pending_stores : (int, Io_pool.ticket) Hashtbl.t = Hashtbl.create 64 in
      let discard_staged s =
        match Hashtbl.find_opt staged s with
        | None -> ()
        | Some task ->
            Hashtbl.remove staged s;
            (try ignore (Io_pool.wait task) with _ -> ())
      in
      let close_async ~await_pending () =
        if not !closed then begin
          if await_pending then begin
            Hashtbl.iter (fun _ tk -> try Io_pool.await tk with _ -> ()) pending_stores;
            Hashtbl.iter (fun _ task -> try ignore (Io_pool.wait task) with _ -> ()) staged
          end;
          closed := true;
          Hashtbl.reset pending_stores;
          Hashtbl.reset staged;
          close_fds ()
        end
      in
      (* The GC backstop must not [await]: finalisers can run on a worker
         domain mid-allocation, where waiting on that worker's own queue
         would deadlock.  Jobs re-check [closed] so a backstopped close (the
         backend is unreachable — nobody will read the data) degrades to
         dropped byte shuffling, never I/O on a recycled fd number. *)
      Gc.finalise
        (fun (_ : (int, unit) Hashtbl.t) -> close_async ~await_pending:false ())
        written;
      {
        name = "file";
        alloc = (fun () -> alloc_slot a);
        load =
          (fun s ->
            check_open ();
            if not (Hashtbl.mem written s) then None
            else
              match Hashtbl.find_opt staged s with
              | Some task ->
                  Hashtbl.remove staged s;
                  Some (Io_pool.wait task)
              | None ->
                  (* Demand reads also route through the owning worker: fd
                     offsets are only ever touched on one domain. *)
                  Some
                    (Io_pool.wait
                       (Io_pool.run pool ~key:(key s) (fun () ->
                            if !closed then failwith "Backend.file: backend is closed"
                            else read_raw s))));
        store =
          (fun s payload ->
            check_open ();
            let buf = encode s payload in
            Hashtbl.replace written s ();
            (* A read staged before this write holds the slot's *old* bytes;
               retire it now so no later load can observe them. *)
            discard_staged s;
            let tk =
              Io_pool.submit pool ~key:(key s) (fun () ->
                  if not !closed then write_raw s buf)
            in
            Hashtbl.replace pending_stores s tk);
        free =
          (fun s ->
            Hashtbl.remove written s;
            discard_staged s;
            free_slot a s);
        probe = (fun _ -> None);
        prefetch =
          (fun s ->
            if (not !closed) && Hashtbl.mem written s && not (Hashtbl.mem staged s)
            then
              Hashtbl.replace staged s
                (Io_pool.run pool ~key:(key s) (fun () ->
                     if !closed then failwith "Backend.file: backend is closed"
                     else read_raw s)));
        pin = (fun _ -> ());
        unpin = (fun _ -> ());
        flush =
          (fun () ->
            check_open ();
            let tickets = Hashtbl.fold (fun _ tk acc -> tk :: acc) pending_stores [] in
            Hashtbl.reset pending_stores;
            List.iter Io_pool.await tickets;
            Array.iter Unix.fsync fds);
        close = (fun () -> close_async ~await_pending:true ());
      }

(* ------------------------------------------------------------------ *)
(* Pool: a buffer pool shared by a linked device family.              *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type frame = {
    owner : int;
    slot : int;
    words : int;  (* charged to the Mem ledger while resident *)
    mutable pins : int;
    mutable stamp : int;  (* LRU clock value of the last touch *)
    evict : unit -> unit;  (* write back (if dirty) and drop the owner's page *)
  }

  type t = {
    params : Params.t;
    stats : Stats.t;
    capacity : int;  (* max resident frames *)
    frames : (int * int, frame) Hashtbl.t;  (* keyed by (owner, slot) *)
    mutable clock : int;
    mutable clients : int;
  }

  let default_pages p = max 2 (Params.fanout p / 2)

  let reclaim_words t deficit =
    let freed = ref 0 in
    let stuck = ref false in
    while !freed < deficit && not !stuck do
      let victim =
        Hashtbl.fold
          (fun _ f best ->
            if f.pins > 0 then best
            else
              match best with
              | Some b when b.stamp <= f.stamp -> best
              | _ -> Some f)
          t.frames None
      in
      match victim with
      | None -> stuck := true
      | Some f ->
          (* Remove the frame before running its eviction callback so a
             reentrant admission (nested cached backends) cannot pick the
             same victim twice. *)
          Hashtbl.remove t.frames (f.owner, f.slot);
          f.evict ();
          Mem.release_pool t.params t.stats (min f.words t.stats.Stats.pool_words);
          t.stats.Stats.cache_evictions <- t.stats.Stats.cache_evictions + 1;
          freed := !freed + f.words
    done;
    !freed

  let create ?pages params stats =
    let capacity = match pages with Some n -> max 1 n | None -> default_pages params in
    let t =
      {
        params;
        stats;
        capacity;
        frames = Hashtbl.create (4 * capacity);
        clock = 0;
        clients = 0;
      }
    in
    (* Under memory pressure the algorithm's ledger charge wins over cache
       residency: [Mem.charge] calls this hook with the word deficit before
       giving up, and the pool yields pages.  Chain any hook that was already
       installed, handing it whatever deficit remains. *)
    let previous = stats.Stats.reclaim in
    Stats.set_reclaim stats
      (Some
         (fun deficit ->
           let freed = reclaim_words t deficit in
           if freed < deficit then
             match previous with Some f -> f (deficit - freed) | None -> ()));
    t

  let client t =
    t.clients <- t.clients + 1;
    t.clients

  let capacity t = t.capacity
  let resident t = Hashtbl.length t.frames

  let find t ~owner ~slot = Hashtbl.find_opt t.frames (owner, slot)

  let touch t ~owner ~slot =
    match find t ~owner ~slot with
    | None -> ()
    | Some f ->
        t.clock <- t.clock + 1;
        f.stamp <- t.clock

  let pin t ~owner ~slot =
    match find t ~owner ~slot with None -> () | Some f -> f.pins <- f.pins + 1

  let unpin t ~owner ~slot =
    match find t ~owner ~slot with
    | None -> ()
    | Some f -> if f.pins > 0 then f.pins <- f.pins - 1

  (* Admission is opportunistic: when every frame is pinned, or when even
     after reclaim the ledger cannot absorb one more page, the caller simply
     bypasses the cache (pass-through I/O) instead of failing — the
     [mem_peak <= M] property must hold whatever the backend. *)
  let admit t ~owner ~slot ~evict =
    let made_room = ref true in
    while Hashtbl.length t.frames >= t.capacity && !made_room do
      made_room := reclaim_words t t.params.Params.block > 0
    done;
    if Hashtbl.length t.frames >= t.capacity then false
    else
      let words = t.params.Params.block in
      match Mem.charge_pool t.params t.stats words with
      | () ->
          t.clock <- t.clock + 1;
          Hashtbl.replace t.frames (owner, slot)
            { owner; slot; words; pins = 0; stamp = t.clock; evict };
          true
      | exception Mem.Memory_exceeded _ -> false

  (* Evict every unpinned frame (write-back included), returning their words
     to the ledger.  End-of-run teardown and leak accounting. *)
  let drop_all t = ignore (reclaim_words t max_int)

  (* Drop a frame without eviction semantics: no write-back callback, no
     eviction count.  Used when the block itself is freed or the backend is
     closed. *)
  let forget t ~owner ~slot =
    match find t ~owner ~slot with
    | None -> ()
    | Some f ->
        Hashtbl.remove t.frames (owner, slot);
        Mem.release_pool t.params t.stats (min f.words t.stats.Stats.pool_words)
end

(* ------------------------------------------------------------------ *)
(* Cached: write-back / write-allocate LRU pages over any backend.    *)
(* ------------------------------------------------------------------ *)

type 'a page = { mutable payload : 'a array; mutable dirty : bool }

let cached ~pool inner =
  let owner = Pool.client pool in
  let pages : (int, 'a page) Hashtbl.t = Hashtbl.create 64 in
  let evict slot =
    match Hashtbl.find_opt pages slot with
    | None -> ()
    | Some pg ->
        Hashtbl.remove pages slot;
        if pg.dirty then inner.store slot pg.payload
  in
  let admit slot payload ~dirty =
    if Pool.admit pool ~owner ~slot ~evict:(fun () -> evict slot) then
      Hashtbl.replace pages slot { payload = Array.copy payload; dirty }
    else if dirty then inner.store slot payload
  in
  {
    name = "cached:" ^ inner.name;
    alloc = inner.alloc;
    load =
      (fun slot ->
        match Hashtbl.find_opt pages slot with
        | Some pg ->
            Pool.touch pool ~owner ~slot;
            Some pg.payload
        | None -> (
            match inner.load slot with
            | None -> None
            | Some payload ->
                admit slot payload ~dirty:false;
                Some payload));
    store =
      (fun slot payload ->
        match Hashtbl.find_opt pages slot with
        | Some pg ->
            pg.payload <- Array.copy payload;
            pg.dirty <- true;
            Pool.touch pool ~owner ~slot
        | None -> admit slot payload ~dirty:true);
    free =
      (fun slot ->
        Hashtbl.remove pages slot;
        Pool.forget pool ~owner ~slot;
        inner.free slot);
    probe = (fun slot -> Some (if Hashtbl.mem pages slot then Trace.Hit else Trace.Miss));
    prefetch =
      (fun slot -> if not (Hashtbl.mem pages slot) then inner.prefetch slot);
    pin =
      (fun slot -> if Hashtbl.mem pages slot then Pool.pin pool ~owner ~slot);
    unpin = (fun slot -> Pool.unpin pool ~owner ~slot);
    flush =
      (fun () ->
        Hashtbl.iter
          (fun slot pg ->
            if pg.dirty then begin
              inner.store slot pg.payload;
              pg.dirty <- false
            end)
          pages;
        inner.flush ());
    close =
      (fun () ->
        Hashtbl.iter (fun slot _ -> Pool.forget pool ~owner ~slot) pages;
        Hashtbl.reset pages;
        inner.close ());
  }

(* ------------------------------------------------------------------ *)
(* Specs and instances: family-level backend configuration.           *)
(* ------------------------------------------------------------------ *)

type spec = Sim | File | Cached of spec

let rec spec_name = function
  | Sim -> "sim"
  | File -> "file"
  | Cached Sim -> "cached"
  | Cached inner -> "cached:" ^ spec_name inner

let spec_of_string s =
  let rec go t =
    match t with
    | "sim" -> Ok Sim
    | "file" -> Ok File
    | "cached" -> Ok (Cached Sim)
    | _ ->
        let prefix = "cached:" in
        let plen = String.length prefix in
        if String.length t > plen && String.sub t 0 plen = prefix then
          Result.map (fun i -> Cached i) (go (String.sub t plen (String.length t - plen)))
        else
          Error
            (Printf.sprintf "unknown backend %S (expected sim, file, cached or cached:BACKEND)" s)
  in
  go (String.lowercase_ascii (String.trim s))

let env_var = "EM_BACKEND"

let default_spec () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Sim
  | Some s -> (
      match spec_of_string s with
      | Ok spec -> spec
      | Error msg -> invalid_arg (env_var ^ ": " ^ msg))

let uses_pool = function Cached _ -> true | Sim | File -> false

let rec spec_uses_file = function
  | File -> true
  | Sim -> false
  | Cached inner -> spec_uses_file inner

(* Generous per-slot budget for the file backend: B boxed words marshal to a
   few dozen bytes each for the scalar payloads the algorithms move around. *)
let default_slot_bytes p = (32 * p.Params.block) + 512

type instance = {
  spec : spec;
  params : Params.t;
  stats : Stats.t;
  dir : string option;
  slot_bytes : int;
  pool : Pool.t option;
  io : Io_pool.t option;  (* Some = async file I/O via this pool *)
  file_delay : (unit -> unit) option;  (* modeled per-access device latency *)
}

let instance ?dir ?slot_bytes ?pool_pages ?async ?io_pool ?file_delay spec params
    stats =
  let slot_bytes =
    match slot_bytes with Some n -> n | None -> default_slot_bytes params
  in
  let pool =
    if uses_pool spec then Some (Pool.create ?pages:pool_pages params stats) else None
  in
  let file_delay =
    match file_delay with Some _ as d -> d | None -> default_file_delay ()
  in
  (* Async execution only concerns real file I/O: a pure sim family has
     nothing to offload, so it never touches (or spawns) the domain pool. *)
  let io =
    if not (spec_uses_file spec) then None
    else
      match io_pool with
      | Some _ as p -> p
      | None ->
          let enabled =
            match async with Some b -> b | None -> Params.default_async ()
          in
          if enabled then Some (Io_pool.global ()) else None
  in
  { spec; params; stats; dir; slot_bytes; pool; io; file_delay }

let name i = spec_name i.spec
let pool i = i.pool
let async_enabled i = match i.io with Some _ -> true | None -> false

(* One typed backend per device.  Within a linked family every call shares
   the instance — and therefore the buffer pool — while each device gets its
   own slot space (its own file, its own page table). *)
let make i =
  let disks = i.params.Params.disks in
  let rec build = function
    | Sim -> sim ~slots:(default_slots i.params) ~disks ()
    | File ->
        file ?dir:i.dir ?delay:i.file_delay ?io:i.io ~disks
          ~slot_bytes:i.slot_bytes ()
    | Cached inner ->
        let pool =
          match i.pool with
          | Some p -> p
          | None -> invalid_arg "Backend.make: cached spec without a pool"
        in
        cached ~pool (build inner)
  in
  { (build i.spec) with name = spec_name i.spec }
