(** A reliable single-slot checkpoint store for restartable drivers.

    Models a fixed checkpoint region of the disk, {e outside} the faulted
    device: the fault injector never touches it, and — unlike RAM — its
    contents survive a {!Em_error.Crashed} crash.  Durability is not free:
    {!save} charges [ceil(words/B)] metered writes under a ["checkpoint"]
    phase label, {!load} the same number of reads under ["resume"], where
    [words] is the caller-declared serialized size of the state.  Trace
    events for the region carry negative block ids, so it stays visibly
    disjoint from the data device's id space.

    Drivers keep {e handles} (block ids of already-written runs, counters,
    offsets) in their checkpoint state — never bulk data, whose cost is
    already paid on the data device. *)

type 's t

val create : 'a Ctx.t -> 's t
(** An empty store charging its I/O to the machine's meters. *)

val save : 's t -> words:int -> 's -> unit
(** Overwrite the slot; costs [ceil(words/B)] writes (at least one). *)

val install : 's t -> words:int -> 's -> unit
(** Seed the slot without charging any I/O.  Models state that is {e already
    present} in the checkpoint region when the process starts — e.g. a serve
    session resuming from a state file written by a previous incarnation.
    The subsequent {!load} still pays its [ceil(words/B)] resume reads; only
    the historical save cost (paid by the process that died) is elided. *)

val load : 's t -> 's option
(** The last saved state, charging [ceil(words/B)] reads (at least one);
    [None] — and no charge — if nothing was ever saved. *)

val peek : 's t -> 's option
(** The slot without any I/O charge: for assertions and tests only. *)

val saves : 's t -> int
val loads : 's t -> int

val save_ios : 's t -> int
(** Total writes charged by {!save} so far. *)

val load_ios : 's t -> int
