type counts = {
  reads : int;
  writes : int;
  sequential : int;
  random : int;
  faults : int;
  retries : int;
  cache_hits : int;
  cache_misses : int;
}

let zero =
  {
    reads = 0;
    writes = 0;
    sequential = 0;
    random = 0;
    faults = 0;
    retries = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

let add c (e : Trace.event) =
  {
    reads = (c.reads + match e.op with Trace.Read -> 1 | Trace.Write -> 0);
    writes = (c.writes + match e.op with Trace.Write -> 1 | Trace.Read -> 0);
    sequential =
      (c.sequential + match e.locality with Trace.Sequential -> 1 | Trace.Random -> 0);
    random = (c.random + match e.locality with Trace.Random -> 1 | Trace.Sequential -> 0);
    faults = (c.faults + match e.kind with Trace.Faulted _ -> 1 | Trace.Io | Trace.Retry -> 0);
    retries = (c.retries + match e.kind with Trace.Retry -> 1 | Trace.Io | Trace.Faulted _ -> 0);
    cache_hits = (c.cache_hits + match e.cache with Some Trace.Hit -> 1 | _ -> 0);
    cache_misses = (c.cache_misses + match e.cache with Some Trace.Miss -> 1 | _ -> 0);
  }

let merge a b =
  {
    reads = a.reads + b.reads;
    writes = a.writes + b.writes;
    sequential = a.sequential + b.sequential;
    random = a.random + b.random;
    faults = a.faults + b.faults;
    retries = a.retries + b.retries;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
  }

let ios c = c.reads + c.writes

type node = {
  label : string;
  mutable self : counts;  (* I/Os whose innermost phase is exactly this node *)
  mutable children : node list;  (* in order of first appearance *)
}

let make_node label = { label; self = zero; children = [] }

let child_named node label =
  match List.find_opt (fun c -> c.label = label) node.children with
  | Some c -> c
  | None ->
      let c = make_node label in
      node.children <- node.children @ [ c ];
      c

let tree events =
  let root = make_node "total" in
  List.iter
    (fun (e : Trace.event) ->
      (* [e.phase] lists the innermost label first; walk outermost-in. *)
      let node = List.fold_left child_named root (List.rev e.phase) in
      node.self <- add node.self e)
    events;
  root

let rec subtotal node = List.fold_left (fun acc c -> merge acc (subtotal c)) node.self node.children

type summary = {
  totals : counts;
  distinct_blocks : int;
  reread_histogram : (int * int) list;  (** (times a block was read, #blocks) *)
  rewrite_histogram : (int * int) list;  (** (times a block was written, #blocks) *)
}

let access_histogram events which =
  let per_block = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      if e.op = which then
        Hashtbl.replace per_block e.block
          (1 + Option.value (Hashtbl.find_opt per_block e.block) ~default:0))
    events;
  let hist = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _block times ->
      Hashtbl.replace hist times (1 + Option.value (Hashtbl.find_opt hist times) ~default:0))
    per_block;
  Hashtbl.fold (fun times blocks acc -> (times, blocks) :: acc) hist []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let summarize events =
  let totals = List.fold_left add zero events in
  let blocks = Hashtbl.create 64 in
  List.iter (fun (e : Trace.event) -> Hashtbl.replace blocks e.block ()) events;
  {
    totals;
    distinct_blocks = Hashtbl.length blocks;
    reread_histogram = access_histogram events Trace.Read;
    rewrite_histogram = access_histogram events Trace.Write;
  }

(* Per-disk I/O counts, from events carrying a disk id (emitted only on
   multi-disk machines — single-disk traces yield an empty report). *)
let disk_balance events =
  let per_disk = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      match e.disk with
      | Some d ->
          Hashtbl.replace per_disk d
            (1 + Option.value (Hashtbl.find_opt per_disk d) ~default:0)
      | None -> ())
    events;
  Hashtbl.fold (fun d n acc -> (d, n) :: acc) per_disk []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Per-shard I/O counts, from events carrying a shard id (emitted only by
   devices that are part of a cluster — single-machine traces yield an
   empty report).  Same shape as [disk_balance] one level up: disks stripe
   blocks inside one machine, shards stripe data across machines. *)
let shard_balance events =
  let per_shard = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      match e.shard with
      | Some s ->
          Hashtbl.replace per_shard s
            (1 + Option.value (Hashtbl.find_opt per_shard s) ~default:0)
      | None -> ())
    events;
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) per_shard []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Distinct round ids: I/Os sharing one id were issued in the same
   scheduling window and overlap on a parallel-disk machine. *)
let scheduling_windows events =
  let rounds = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      match e.round with Some r -> Hashtbl.replace rounds r () | None -> ())
    events;
  Hashtbl.length rounds

let random_seeks events =
  List.fold_left
    (fun acc (e : Trace.event) ->
      match e.locality with Trace.Random -> acc + 1 | Trace.Sequential -> acc)
    0 events

let overhead c = c.faults + c.retries

let cached_reads c = c.cache_hits + c.cache_misses

let pp_counts ppf c =
  Format.fprintf ppf "%d I/O (r %d / w %d; seq %d / rand %d)" (ios c) c.reads c.writes
    c.sequential c.random;
  (* Fault overhead only when present, so fault-free reports stay stable;
     likewise the cache mix appears only for cached-backend traces. *)
  if overhead c > 0 then Format.fprintf ppf " [faulted %d / retried %d]" c.faults c.retries;
  if cached_reads c > 0 then
    Format.fprintf ppf " [hit %d / miss %d]" c.cache_hits c.cache_misses

let rec pp_node ppf ~depth node =
  let total = subtotal node in
  Format.fprintf ppf "%s%-*s %a@." (String.make (2 * depth) ' ')
    (max 1 (24 - (2 * depth)))
    node.label pp_counts total;
  (* Show unattributed I/O explicitly when a phase also has sub-phases. *)
  if node.children <> [] && ios node.self > 0 then
    Format.fprintf ppf "%s%-*s %a@."
      (String.make (2 * (depth + 1)) ' ')
      (max 1 (24 - (2 * (depth + 1))))
      "(self)" pp_counts node.self;
  List.iter (pp_node ppf ~depth:(depth + 1))
    (List.sort (fun a b -> Int.compare (ios (subtotal b)) (ios (subtotal a))) node.children)

let pp_tree ppf events = pp_node ppf ~depth:0 (tree events)

let pp_histogram ppf hist =
  if hist = [] then Format.fprintf ppf "  (none)@."
  else
    List.iter
      (fun (times, blocks) -> Format.fprintf ppf "  %4dx : %d blocks@." times blocks)
      hist

(* Printed only for multi-disk traces, so single-disk reports — and their
   goldens — keep their exact shape. *)
let pp_disk_balance ppf events =
  match disk_balance events with
  | [] -> ()
  | per_disk ->
      let counts = List.map snd per_disk in
      let mx = List.fold_left max 0 counts
      and mn = List.fold_left min max_int counts in
      Format.fprintf ppf "disk balance:     %s (max/min = %d/%d)@."
        (String.concat ", "
           (List.map (fun (d, n) -> Printf.sprintf "d%d:%d" d n) per_disk))
        mx mn;
      Format.fprintf ppf "sched windows:    %d@." (scheduling_windows events)

(* Printed only for clustered traces, so single-machine reports — and their
   goldens — keep their exact shape. *)
let pp_shard_balance ppf events =
  match shard_balance events with
  | [] -> ()
  | per_shard ->
      let counts = List.map snd per_shard in
      let mx = List.fold_left max 0 counts
      and mn = List.fold_left min max_int counts in
      Format.fprintf ppf "shard balance:    %s (max/min = %d/%d)@."
        (String.concat ", "
           (List.map (fun (s, n) -> Printf.sprintf "s%d:%d" s n) per_shard))
        mx mn

let pp_summary ppf events =
  let s = summarize events in
  Format.fprintf ppf "totals:           %a@." pp_counts s.totals;
  pp_disk_balance ppf events;
  pp_shard_balance ppf events;
  Format.fprintf ppf "random seeks:     %d@." s.totals.random;
  Format.fprintf ppf "distinct blocks:  %d@." s.distinct_blocks;
  Format.fprintf ppf "block re-reads (times read -> blocks):@.";
  pp_histogram ppf s.reread_histogram;
  Format.fprintf ppf "block re-writes (times written -> blocks):@.";
  pp_histogram ppf s.rewrite_histogram
