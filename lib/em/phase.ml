let with_label ctx label f =
  let s = ctx.Ctx.stats in
  Stats.push_phase s label;
  match f () with
  | result ->
      Stats.pop_phase s;
      result
  | exception e ->
      Stats.pop_phase s;
      raise e

let report ctx = Stats.phase_report ctx.Ctx.stats
