(** Parameters of the external-memory (EM) machine.

    The machine of Aggarwal and Vitter has a memory of [mem] words and a disk
    formatted into blocks of [block] words.  One element occupies one word, so
    a block holds [block] elements and the memory holds [mem] elements.  The
    model requires [mem >= 2 * block].

    The D-disk generalization ([disks], default 1) lets one parallel I/O
    {e round} move up to one block per disk; [reads]/[writes] stay per-block
    while {!Stats} rounds compress by up to D. *)

type t = private {
  mem : int;  (** M: memory capacity in words *)
  block : int;  (** B: block size in words *)
  disks : int;  (** D: independent parallel disks (default 1) *)
}

val disks_env_var : string
(** Name of the environment variable ("EM_DISKS") consulted when [?disks] is
    omitted from {!create}. *)

val default_disks : unit -> int
(** Disk count implied by the environment: [$EM_DISKS] when set and a positive
    integer, else [1].
    @raise Invalid_argument when [$EM_DISKS] is set but not a positive int. *)

val async_env_var : string
(** Name of the environment variable ("EM_ASYNC") consulted when [?async] is
    omitted from [Ctx.create]: [1] executes file-backend I/O asynchronously
    on the {!Io_pool} worker domains, [0] (the default) keeps the exact
    synchronous code path.  Either way every counted cost is identical —
    async moves wall-clock time, never work. *)

val default_async : unit -> bool
(** Async execution implied by the environment: [$EM_ASYNC = "1"], else
    [false].
    @raise Invalid_argument when [$EM_ASYNC] is set but neither 0 nor 1. *)

val create : mem:int -> block:int -> t
(** [create ~mem ~block] validates [block >= 1] and [mem >= 2 * block]; the
    disk count comes from {!default_disks} [()] (i.e. [$EM_DISKS], else 1) —
    override it with {!with_disks} or [Ctx.create ?disks].
    @raise Invalid_argument otherwise. *)

val with_disks : t -> int -> t
(** [with_disks p d] is [p] with the disk count replaced by [d] (validated). *)

val fanout : t -> int
(** [fanout p] is [M / B], the number of blocks that fit in memory. *)

val blocks_of_elems : t -> int -> int
(** [blocks_of_elems p n] is [ceil (n / B)]: blocks needed for [n] elements. *)

val pp : Format.formatter -> t -> unit
