(** Cost counters of a simulated EM machine.

    The primary metric of the EM model is the number of block reads and
    writes.  We additionally count comparisons (the algorithms are
    comparison-based) and track the peak number of memory words in use, so
    that violating the memory budget is observable. *)

type span_hooks = {
  on_push : string list -> unit;
      (** Called after a phase label is pushed, with the new stack
          (innermost label first). *)
  on_pop : string list -> unit;
      (** Called before a phase label is popped, with the stack as it was
          while the phase ran. *)
  on_mem : int -> unit;
      (** Called after the memory ledger grows, with the new [mem_in_use]. *)
}
(** Observer hooks for span-scoped profiling (see {!Profile}).  Hooks are
    observability machinery: they cost no simulated I/O and must not change
    what an algorithm does. *)

type t = {
  mutable reads : int;
  mutable writes : int;
  mutable comparisons : int;
  mutable faults : int;  (** metered attempts on which a fault was injected *)
  mutable retries : int;  (** recovery re-attempts charged by {!Resilient} *)
  mutable cache_hits : int;
      (** metered reads served from a resident buffer-pool page *)
  mutable cache_misses : int;
      (** metered reads that had to go to the underlying backend *)
  mutable cache_evictions : int;
      (** buffer-pool pages evicted (capacity or memory pressure) *)
  mutable allocated_blocks : int;
  mutable freed_blocks : int;
  mutable rounds : int;
      (** parallel I/O rounds: a scheduling window of I/Os spread over D
          disks costs the {e maximum} per-disk count, so rounds compress by
          up to D while [reads]/[writes] stay per block.  At D = 1,
          [rounds = ios] always. *)
  disk_ios : (int, int) Hashtbl.t;  (** metered I/Os per disk id *)
  mutable window_depth : int;  (** open {!begin_window} nesting depth *)
  window_counts : (int, int) Hashtbl.t;
      (** per-disk I/O counts of the currently open outermost window *)
  mutable comm_rounds : int;
      (** communication rounds: outside a superstep every metered transfer
          is its own round; a {!with_comm_round} superstep costs one round
          no matter how many messages it posts.  Zero on a single-shard
          machine — communication is a cluster-level cost. *)
  mutable comm_words : int;  (** total words moved between shards *)
  shard_sent : (int, int) Hashtbl.t;  (** words sent, per source shard *)
  shard_recv : (int, int) Hashtbl.t;  (** words received, per destination shard *)
  mutable comm_depth : int;  (** open {!begin_comm_round} nesting depth *)
  mutable comm_pending : int;
      (** transfers posted in the currently open outermost superstep *)
  mutable mem_in_use : int;  (** words currently charged by algorithms *)
  mutable pool_words : int;
      (** words held by buffer-pool pages (see {!Backend.Pool}); counted
          against the [M] capacity and in [mem_peak], but kept out of
          [mem_in_use] so "ledger drained" means what it says *)
  mutable mem_peak : int;  (** high-water mark of [mem_in_use + pool_words] *)
  mutable phase_stack : string list;  (** innermost phase label first *)
  phase_ios : (string, int) Hashtbl.t;
      (** I/Os attributed per full phase path (see {!current_path}) *)
  mutable hooks : span_hooks option;  (** attached profiler, if any *)
  mutable reclaim : (int -> unit) option;
      (** memory-pressure hook: called by {!Mem.charge} with the word
          deficit before raising [Memory_exceeded], so caches can evict
          resident pages and release ledger words (see {!Backend.Pool}) *)
  mutable reclaimers : (int -> int) option ref list;
      (** voluntary-release registry: holders of opportunistic charges
          (write-behind queues) give words back under memory pressure *)
}

val create : unit -> t
val reset : t -> unit
(** Zero every counter.  Configuration ([hooks], [reclaim]) survives. *)

val set_hooks : t -> span_hooks option -> unit
(** Attach (or detach, with [None]) span observer hooks. *)

val hooks : t -> span_hooks option

val set_reclaim : t -> (int -> unit) option -> unit
(** Install (or clear) the memory-pressure reclaim hook. *)

val add_reclaimer : t -> (int -> int) -> (int -> int) option ref
(** Register a voluntary-release callback: under memory pressure it is
    called with the outstanding word deficit and returns how many words it
    released.  Returns the deregistration handle for {!remove_reclaimer}. *)

val remove_reclaimer : t -> (int -> int) option ref -> unit
(** Deregister a callback obtained from {!add_reclaimer}.  Idempotent. *)

val run_reclaimers : t -> int -> int
(** Ask registered reclaimers to release up to [deficit] words; returns the
    total released.  Called by {!Mem.charge} before the [reclaim] hook. *)

val push_phase : t -> string -> unit
(** Push a phase label and fire [on_push].  Use {!Phase.with_label} unless
    you need unbalanced control over the stack. *)

val pop_phase : t -> unit
(** Fire [on_pop] and pop the innermost label (no-op on an empty stack). *)

val notify_mem : t -> unit
(** Fire [on_mem] with the current ledger level (called by {!Mem}). *)

val wipe_memory : t -> unit
(** Simulate RAM loss on a crash: zero [mem_in_use] and unwind the phase
    stack (firing [on_pop] per frame so profilers stay balanced), leaving
    I/O counters and [mem_peak] intact.  Called by restart drivers before
    resuming from a checkpoint. *)

val ios : t -> int
(** [ios s] is [s.reads + s.writes], the total I/O cost. *)

val record_io : t -> disk:int -> unit
(** Attribute one metered I/O to [disk] (called by {!Device}).  Outside a
    window the I/O is its own round; inside, it joins the open window's
    per-disk tally.  Invariants per window: [ceil (sum / D) <= cost <= sum],
    with [cost = sum] when all I/Os hit one disk (in particular at D = 1). *)

val begin_window : t -> unit
(** Open a parallel scheduling window.  Nested windows merge into the
    outermost one. *)

val end_window : t -> unit
(** Close one window level.  Closing the outermost level charges
    [max] over the window's per-disk I/O counts to [rounds]. *)

val with_window : t -> (unit -> 'a) -> 'a
(** [with_window s f] brackets [f] with {!begin_window}/{!end_window}
    (exception-safe). *)

val disk_report : t -> (int * int) list
(** Metered I/Os per disk id, sorted by disk.  Empty before any I/O. *)

val record_comm : t -> src:int -> dst:int -> words:int -> unit
(** Attribute a [words]-word transfer from shard [src] to shard [dst]
    (called by {!Core.Cluster}'s collectives).  Self-sends ([src = dst]) and
    empty messages move nothing over the interconnect and are free.  Outside
    a superstep the transfer is its own communication round; inside one it
    joins the open superstep, which costs a single round at its outermost
    close.  Volume counters are window-independent: supersteps change
    rounds, never words. *)

val begin_comm_round : t -> unit
(** Open a BSP superstep.  Nested supersteps merge into the outermost one,
    exactly like {!begin_window} merges scheduling windows. *)

val end_comm_round : t -> unit
(** Close one superstep level.  Closing the outermost level charges one
    communication round iff any transfer was posted inside it. *)

val with_comm_round : t -> (unit -> 'a) -> 'a
(** [with_comm_round s f] brackets [f] with
    {!begin_comm_round}/{!end_comm_round} (exception-safe). *)

val pending_comm_rounds : t -> int
(** The round the currently-open outermost superstep would charge if it
    closed now ([1] iff it has posted a transfer, [0] otherwise), so
    mid-superstep cost bracketing telescopes: see {!effective_comm_rounds}. *)

val effective_comm_rounds : t -> int
(** [comm_rounds + pending_comm_rounds].  {!snapshot} and {!delta} use this,
    mirroring {!effective_rounds} for the I/O ledger. *)

val sent_report : t -> (int * int) list
(** Words sent per source shard, sorted by shard.  Empty before any comm. *)

val recv_report : t -> (int * int) list
(** Words received per destination shard, sorted by shard. *)

val pending_window_rounds : t -> int
(** Rounds the currently-open outermost scheduling window would charge if it
    closed now ([max] over its per-disk counts); [0] when no window is open.
    Makes mid-window cost bracketing well-defined: see {!effective_rounds}. *)

val effective_rounds : t -> int
(** [rounds + pending_window_rounds].  {!snapshot} and {!delta} use this, so
    a measurement opened or closed {e inside} a scheduling window still sees
    the window's accumulated cost — e.g. an online query that triggers
    refinement inside an already-open window at [D > 1] reports a non-zero
    [d_rounds] instead of deferring the whole window to whichever bracket
    straddles the close. *)

type snapshot = {
  at_reads : int;
  at_writes : int;
  at_comparisons : int;
  at_faults : int;
  at_retries : int;
  at_cache_hits : int;
  at_cache_misses : int;
  at_rounds : int;
  at_comm_rounds : int;
  at_comm_words : int;
}

val snapshot : t -> snapshot

val ios_since : t -> snapshot -> int
(** I/Os performed since the snapshot was taken. *)

val comparisons_since : t -> snapshot -> int

type delta = {
  d_reads : int;
  d_writes : int;
  d_comparisons : int;
  d_faults : int;
  d_retries : int;
  d_cache_hits : int;
  d_cache_misses : int;
  d_rounds : int;
  d_comm_rounds : int;
  d_comm_words : int;
}
(** Cost of a bracketed computation, as reported by {!Ctx.measured}.
    [d_reads]/[d_writes] already include retry I/Os; [d_faults]/[d_retries]
    break out how many of the attempts faulted or were re-attempts;
    [d_cache_hits]/[d_cache_misses] how many of the reads were served by a
    {!Backend.Cached} buffer pool. *)

val delta : t -> snapshot -> delta
val delta_ios : delta -> int
val pp_delta : Format.formatter -> delta -> unit

val current_phase : t -> string
(** Innermost active phase label, or ["(other)"]. *)

val current_path : t -> string
(** Full active phase path joined with ["/"], outermost label first, or
    ["(other)"] when no phase is active.  This is the attribution key of
    [phase_ios]: two paths sharing a leaf label (e.g. ["sort/merge"] vs
    ["multiselect/merge"]) are kept distinct. *)

val record_phase_io : t -> unit
(** Attribute one I/O to the current phase path (called by {!Device}). *)

val phase_report : t -> (string * int) list
(** Per-phase-path I/O counts, largest first (ties by path).  See {!Phase}. *)

val pp : Format.formatter -> t -> unit
