(** Buffered sequential writer producing a {!Vec}.

    A writer holds one block buffer ([B] words charged for its lifetime) and
    pays one write I/O per block it fills, plus one for a final partial block.
    [finish] returns the vector and releases the buffer.

    With [?write_behind = k] up to [k] filled blocks queue up before being
    written, and each drain issues its queue (up to [k + 1] blocks) as one
    {!Stats} scheduling window so a D-disk machine overlaps the writes into
    few parallel rounds.  Block ids are still allocated eagerly at fill time
    (placement and golden block ids are independent of the queue depth), each
    queued payload is charged [B] words while pending, and queueing degrades
    to synchronous writes under memory pressure — so results, per-block write
    counts and [mem_peak <= M] are all identical to the unbuffered writer. *)

type 'a t

val create : ?write_behind:int -> 'a Ctx.t -> 'a t
(** [write_behind] (default 0) = max filled blocks queued before a batched
    drain.  Pass [Ctx.disks ctx - 1] to give every disk of a batch work. *)

val push : 'a t -> 'a -> unit
val push_array : 'a t -> 'a array -> unit
val length : 'a t -> int
(** Elements pushed so far. *)

val finish : 'a t -> 'a Vec.t
(** Flush the last partial block, drain any queued writes, release the buffer
    and return the vector.  The writer must not be used afterwards. *)

val abandon : 'a t -> unit
(** Release the buffer (and any queued payload charges) and free all blocks
    allocated so far, written or queued. *)

val with_writer : ?write_behind:int -> 'a Ctx.t -> ('a t -> unit) -> 'a Vec.t
