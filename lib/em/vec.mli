(** An external vector: a sequence of elements laid out across disk blocks.

    Every block is full except possibly the last.  A vector is immutable once
    built; sequential access goes through {!Reader} and construction through
    {!Writer} (both of which pay I/Os).  [of_array] places the input on disk
    for free (the EM model assumes the input already resides in [ceil (N/B)]
    blocks); every other zero-cost access lives in the {!Oracle} submodule so
    that measured algorithm code cannot reach unmetered I/O without naming
    [Oracle] at the call site. *)

type 'a t

val ctx : 'a t -> 'a Ctx.t
val length : 'a t -> int
val num_blocks : 'a t -> int
val block_ids : 'a t -> int array

val empty : 'a Ctx.t -> 'a t

val of_array : 'a Ctx.t -> 'a array -> 'a t
(** Place the array on disk {e without} charging I/Os: the EM model assumes
    the input already resides in [ceil (N/B)] input blocks. *)

val free : 'a t -> unit
(** Return all blocks of the vector to the device free list. *)

val block_io : 'a t -> int -> 'a array
(** [block_io v i] reads the [i]-th block of [v] at the metered price of one
    block I/O (through {!Resilient}, so cache and fault policies apply).  The
    returned array holds [block_size] elements except for the final partial
    block.  This is the blessed metered random access: online query engines
    pay one I/O to touch a sorted run, instead of scanning from the front. *)

val get_io : 'a t -> int -> 'a
(** [get_io v i] is element [i] of [v] for the price of one metered block
    read (the surrounding block is fetched and discarded).  The transient
    block-sized buffer is {e not} charged to the memory ledger — callers
    holding it beyond the lookup must charge it themselves via
    {!Ctx.with_words}. *)

val of_blocks : 'a Ctx.t -> int array -> int -> 'a t
(** [of_blocks ctx ids len] wraps already-written blocks; used by {!Writer}
    and by algorithms that hand off block ownership without copying. *)

val concat_free : 'a t list -> 'a t
(** Concatenate vectors by block-id juxtaposition {e without} I/O.  Only legal
    when every vector but the last has a full final block; raises
    [Invalid_argument] otherwise.  Models handing over a linked list of full
    blocks, as the partitioning output format permits. *)

(** Unmetered readback for verification and test assertions.  Never use
    inside an algorithm under measurement (except to obtain a sentinel value
    for buffer initialisation, which reads no information the algorithm acts
    on). *)
module Oracle : sig
  val to_array : 'a t -> 'a array
  (** Zero-cost readback of the whole vector. *)

  val get : 'a t -> int -> 'a
  (** Zero-cost random access to one element. *)
end
