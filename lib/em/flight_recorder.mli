(** Bounded flight recorder: a journal of the last K query records that
    can be joined with the {!Trace} ring and a {!Metrics} registry into a
    self-contained post-mortem JSON document.

    A serving session records one entry per completed query (successful
    or not).  When something goes wrong — a typed {!Em_error} reply, a
    budget abort, a chaos kill, or shutdown — {!dump} produces a single
    JSON object holding the retained query records, the trace events that
    were emitted while those queries ran, and a registry snapshot.  The
    document follows the serve determinism convention: simulated costs
    live in plain fields, wall-clock values only under ["wall"] keys. *)

type t

type record = {
  id : int;  (** the serve-layer query id *)
  kind : string;  (** ["select"], ["quantile"], ["range"], ... *)
  query : string;  (** the raw command line as received *)
  ios : int;
  rounds : int;  (** effective parallel rounds charged to the query *)
  splits : int;  (** refinement splits performed during the query *)
  wall_ns : int;  (** wall-clock span; excluded from deterministic output *)
  outcome : string;  (** ["ok"] or a typed error code *)
  seq_lo : int;  (** [Trace.total] when the query started *)
  seq_hi : int;  (** [Trace.total] when it finished *)
}

val default_capacity : int
(** 64 — roomy enough to cover any plausible fault window, small enough
    to keep post-mortems readable. *)

val create : ?capacity:int -> unit -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val record : t -> record -> unit
(** Append a record, evicting the oldest when full. *)

val records : t -> record list
(** Retained records, oldest first. *)

val recorded : t -> int
(** Records ever pushed (independent of capacity). *)

val retained : t -> int
val dumps : t -> int
(** Post-mortems produced so far. *)

val dump :
  ?trace:Trace.t -> ?metrics:Metrics.t -> ?now:(unit -> float) ->
  reason:string -> t -> string
(** One-line post-mortem JSON:
    [{"postmortem":{"reason":...,"recorded":N,"retained":K,
    "queries":[...],"trace_events":[...],"trace_dropped":D,
    "metrics":...,"wall":{"ts_ms":...}}}].  Trace events are sliced to
    those emitted at or after the oldest retained record began; [now]
    (default [Unix.gettimeofday]) stamps the ["wall"] object. *)

val dump_to_file :
  ?trace:Trace.t -> ?metrics:Metrics.t -> ?now:(unit -> float) ->
  reason:string -> t -> path:string -> unit
(** {!dump} plus a trailing newline, written to [path] (truncated). *)
