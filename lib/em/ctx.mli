(** A simulated EM machine: parameters, cost counters, an I/O tracer and a
    block device.

    Every algorithm in this repository runs against a ['a Ctx.t].  Elements
    are of an arbitrary type ['a] (one element = one word); algorithms are
    comparison-based and receive an explicit comparator. *)

type 'a t = {
  params : Params.t;
  stats : Stats.t;
  trace : Trace.t;
  backend : Backend.instance;
  dev : 'a Device.t;
  shard : int option;  (** cluster shard identity; [None] on single machines *)
}

val create :
  ?trace:Trace.t -> ?backend:Backend.spec -> ?backend_dir:string -> ?pool_pages:int ->
  ?async:bool -> ?io_pool:Io_pool.t -> ?file_delay:(unit -> unit) ->
  ?disks:int -> ?shard:int -> Params.t -> 'a t
(** Fresh machine with zeroed counters.  Pass [~trace] to route I/O events
    into a tracer you configured (extra sinks, larger ring); otherwise a
    default ring-buffered tracer is attached.

    [backend] selects where blocks physically live (default: the
    [$EM_BACKEND] environment variable, falling back to {!Backend.Sim});
    [backend_dir] places file-backed storage, and [pool_pages] sizes the
    buffer pool of cached backends.  The choice is invisible to counted
    I/Os — see {!Backend}.

    [async] (default: [$EM_ASYNC], see {!Params.default_async}) runs the
    family's file I/O asynchronously on the {!Io_pool.global} worker
    domains; [io_pool] substitutes a private pool (tests), and [file_delay]
    injects a modeled per-access device latency into file backends (default:
    [$EM_FILE_LATENCY_US]).  All three move wall-clock time only: every
    counted read/write/round/comparison, trace event, fault decision and
    golden is identical with async on or off — see {!Backend} and
    {!Io_pool}.

    [disks] overrides the parameter record's disk count (itself defaulted
    from [$EM_DISKS]); it changes round accounting and slot striping, never
    per-block [reads]/[writes] or algorithm results.

    [shard] names the machine's position in a {!Core.Cluster}: each shard is
    a fully independent machine (own backend instance, own M-word ledger,
    own D disks) whose trace events carry the shard id.  Omit it on single
    machines — shard annotations are only emitted when present, so
    single-machine traces and goldens are unchanged. *)

val linked : 'a t -> 'b t
(** A context over a fresh device for elements of another type, sharing the
    parameters, I/O counters, tracer, memory ledger — and shard identity —
    of the original machine.  Used for auxiliary streams (rank lists, tagged pairs): all
    their I/Os and buffers are charged to the same meters.  The linked
    device inherits the parent's backend instance — file-backed families
    write under the same directory and cached families share one buffer
    pool — while keeping its own disjoint block-id space.  Fault injection
    carries over — the linked device consults the {e same} {!Fault.plan}
    (one schedule over the family's interleaved I/O stream) and, when the
    original is armed, shares its recovery policy and counters. *)

val backend_name : 'a t -> string
(** e.g. ["sim"], ["file"], ["cached"], ["cached:file"]. *)

val backend_pool : 'a t -> Backend.Pool.t option
(** The family's shared buffer pool, when the backend is cached. *)

val async : 'a t -> bool
(** Whether this machine's file I/O executes on {!Io_pool} worker domains. *)

val flush : 'a t -> unit
(** Push pending state to stable storage; see {!Device.flush}. *)

val close : 'a t -> unit
(** Release this context's backend resources; see {!Device.close}.  Each
    member of a linked family owns its device and is closed separately. *)

val inject : 'a t -> Fault.plan -> unit
(** Install a fault plan on the machine's device; see {!Device.inject}. *)

val clear_injector : 'a t -> unit

val arm : ?policy:Device.recovery_policy -> 'a t -> unit
(** Attach recovery state so {!Resilient} retries/verifies/remaps; see
    {!Device.arm}. *)

val fault_report : 'a t -> Device.recovery option
(** The device's recovery state (shared counters for linked families). *)

val counted : 'a t -> ('a -> 'a -> int) -> 'a -> 'a -> int
(** [counted ctx cmp] behaves as [cmp] but increments the comparison
    counter on every call. *)

val measured : 'a t -> (unit -> 'b) -> 'b * Stats.delta
(** [measured ctx f] runs [f] and reports exactly the I/Os and comparisons
    it performed, leaving the cumulative counters untouched.  This is the
    one blessed way to bracket a computation for cost reporting; drivers and
    benchmarks should use it instead of hand-rolled snapshot plumbing. *)

val mem_capacity : 'a t -> int
val block_size : 'a t -> int
val fanout : 'a t -> int

val disks : 'a t -> int
(** D: the machine's parallel disk count (see {!Params}). *)

val shard : 'a t -> int option
(** The machine's cluster shard identity, when it is part of one. *)

val with_words : 'a t -> int -> (unit -> 'b) -> 'b
(** Charge the memory ledger around a computation; see {!Mem.with_words}. *)

val io_window : 'a t -> (unit -> 'b) -> 'b
(** Bracket [f] in one parallel scheduling window: the metered I/Os it
    issues are billed [max] per-disk I/Os rounds instead of one round each
    (see {!Stats.with_window}).  Nested windows merge into the outermost. *)
