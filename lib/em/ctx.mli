(** A simulated EM machine: parameters, cost counters, an I/O tracer and a
    block device.

    Every algorithm in this repository runs against a ['a Ctx.t].  Elements
    are of an arbitrary type ['a] (one element = one word); algorithms are
    comparison-based and receive an explicit comparator. *)

type 'a t = { params : Params.t; stats : Stats.t; trace : Trace.t; dev : 'a Device.t }

val create : ?trace:Trace.t -> Params.t -> 'a t
(** Fresh machine with zeroed counters.  Pass [~trace] to route I/O events
    into a tracer you configured (extra sinks, larger ring); otherwise a
    default ring-buffered tracer is attached. *)

val linked : 'a t -> 'b t
(** A context over a fresh device for elements of another type, sharing the
    parameters, I/O counters, tracer and memory ledger of the original
    machine.  Used for auxiliary streams (rank lists, tagged pairs): all
    their I/Os and buffers are charged to the same meters.  Fault injection
    carries over — the linked device consults the {e same} {!Fault.plan}
    (one schedule over the family's interleaved I/O stream) and, when the
    original is armed, shares its recovery policy and counters. *)

val inject : 'a t -> Fault.plan -> unit
(** Install a fault plan on the machine's device; see {!Device.inject}. *)

val clear_injector : 'a t -> unit

val arm : ?policy:Device.recovery_policy -> 'a t -> unit
(** Attach recovery state so {!Resilient} retries/verifies/remaps; see
    {!Device.arm}. *)

val fault_report : 'a t -> Device.recovery option
(** The device's recovery state (shared counters for linked families). *)

val counted : 'a t -> ('a -> 'a -> int) -> 'a -> 'a -> int
(** [counted ctx cmp] behaves as [cmp] but increments the comparison
    counter on every call. *)

val measured : 'a t -> (unit -> 'b) -> 'b * Stats.delta
(** [measured ctx f] runs [f] and reports exactly the I/Os and comparisons
    it performed, leaving the cumulative counters untouched.  This is the
    one blessed way to bracket a computation for cost reporting; drivers and
    benchmarks should use it instead of hand-rolled snapshot plumbing. *)

val mem_capacity : 'a t -> int
val block_size : 'a t -> int
val fanout : 'a t -> int

val with_words : 'a t -> int -> (unit -> 'b) -> 'b
(** Charge the memory ledger around a computation; see {!Mem.with_words}. *)
