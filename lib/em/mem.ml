exception Memory_exceeded of { requested : int; in_use : int; capacity : int }

(* The [M]-word capacity covers everything resident in simulated RAM:
   algorithm buffers ([mem_in_use]) and buffer-pool pages ([pool_words]).
   The two are ledgered separately so that "the algorithm released all its
   words" remains checkable while a cache is warm. *)
let resident s = s.Stats.mem_in_use + s.Stats.pool_words

let bump_peak s =
  if resident s > s.Stats.mem_peak then s.Stats.mem_peak <- resident s;
  Stats.notify_mem s

let charge_resident ~op ~pool p s n =
  if n < 0 then raise (Em_error.Negative_words { op; n });
  let capacity = p.Params.mem in
  (* Under memory pressure, ask holders of opportunistic charges (write-
     behind queues) to give words back, then give the machine's caches one
     chance to evict resident pages, before declaring overflow.  Both only
     ever release, so one pass each suffices. *)
  (if resident s + n > capacity then
     ignore (Stats.run_reclaimers s (resident s + n - capacity)));
  (if resident s + n > capacity then
     match s.Stats.reclaim with
     | Some reclaim -> reclaim (resident s + n - capacity)
     | None -> ());
  if resident s + n > capacity then
    raise (Memory_exceeded { requested = n; in_use = resident s; capacity });
  if pool then s.Stats.pool_words <- s.Stats.pool_words + n
  else s.Stats.mem_in_use <- s.Stats.mem_in_use + n;
  bump_peak s


let charge p s n = charge_resident ~op:"charge" ~pool:false p s n

let release _p s n =
  if n < 0 then raise (Em_error.Negative_words { op = "release"; n });
  if n > s.Stats.mem_in_use then
    raise (Em_error.Over_release { releasing = n; in_use = s.Stats.mem_in_use });
  s.Stats.mem_in_use <- s.Stats.mem_in_use - n

(* Buffer-pool residency accounting, used only by [Backend.Pool]. *)

let charge_pool p s n = charge_resident ~op:"charge_pool" ~pool:true p s n

let release_pool _p s n =
  if n < 0 then raise (Em_error.Negative_words { op = "release_pool"; n });
  if n > s.Stats.pool_words then
    raise (Em_error.Over_release { releasing = n; in_use = s.Stats.pool_words });
  s.Stats.pool_words <- s.Stats.pool_words - n

let with_words p s n f =
  charge p s n;
  match f () with
  | result ->
      release p s n;
      result
  | exception e ->
      release p s n;
      raise e
