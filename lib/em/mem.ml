exception Memory_exceeded of { requested : int; in_use : int; capacity : int }

let charge p s n =
  if n < 0 then raise (Em_error.Negative_words { op = "charge"; n });
  let in_use = s.Stats.mem_in_use in
  let capacity = p.Params.mem in
  if in_use + n > capacity then
    raise (Memory_exceeded { requested = n; in_use; capacity });
  s.Stats.mem_in_use <- in_use + n;
  if s.Stats.mem_in_use > s.Stats.mem_peak then
    s.Stats.mem_peak <- s.Stats.mem_in_use;
  Stats.notify_mem s

let release _p s n =
  if n < 0 then raise (Em_error.Negative_words { op = "release"; n });
  if n > s.Stats.mem_in_use then
    raise (Em_error.Over_release { releasing = n; in_use = s.Stats.mem_in_use });
  s.Stats.mem_in_use <- s.Stats.mem_in_use - n

let with_words p s n f =
  charge p s n;
  match f () with
  | result ->
      release p s n;
      result
  | exception e ->
      release p s n;
      raise e
