(** Buffered sequential reader over a {!Vec}.

    A reader holds one block buffer, charged as [B] words against the memory
    budget for its whole lifetime; each block of the vector is read exactly
    once (one I/O per block).  Always [close] a reader (or use {!with_reader})
    to release its buffer.

    With [?prefetch = k] the reader additionally reads up to [k] blocks ahead
    of the cursor, issuing each batch as one {!Stats} scheduling window so a
    D-disk machine overlaps the reads into few parallel rounds.  Every
    read-ahead buffer is charged [B] words while held and released as soon as
    the cursor passes it; when the budget has no room the batch shrinks (down
    to one block), so [mem_peak <= M] is preserved and the blocks read — and
    the elements delivered — are identical to the unbuffered reader's. *)

type 'a t

val open_vec : ?prefetch:int -> 'a Vec.t -> 'a t
(** [prefetch] (default 0) = max blocks read ahead of the cursor.  Pass
    [Ctx.disks ctx - 1] to give every disk of a batch work to do. *)

val has_next : 'a t -> bool
val peek : 'a t -> 'a
(** @raise Invalid_argument at end of input. *)

val next : 'a t -> 'a
(** Return the next element and advance.
    @raise Invalid_argument at end of input. *)

val take : 'a t -> int -> 'a array
(** [take r n] returns the next [min n remaining] elements, blitting directly
    from the buffered blocks (each block is still read exactly once, even
    when the take spans block boundaries).  The caller is responsible for
    charging memory for the result. *)

val remaining : 'a t -> int

(** {2 Forecasting support}

    A K-way merge on a D-disk machine batches refills across its runs: the
    run whose {e last buffered} element is smallest is the one the merge
    drains first, so its next block can be read in the same scheduling
    window as another run's mandatory refill (the classical forecasting
    rule).  These accessors expose exactly the state that rule needs. *)

val last_buffered : 'a t -> 'a option
(** Last element currently buffered ahead of the cursor ([None] when the
    next access would fault to the device). *)

val buffered_blocks : 'a t -> int
(** Unconsumed buffered blocks ahead of the cursor.  A comparison-free
    proxy for the forecasting need-order: under roughly uniform consumption
    the run with the shallowest queue faults soonest.  Ordering by this
    keeps a scheduler's element-comparison count independent of D. *)

val next_disk : 'a t -> int option
(** Disk holding the first unread, unbuffered block ([None] when every
    block is consumed or buffered).  Lets a scheduler pick one block per
    disk for a window. *)

val pending_io : 'a t -> bool
(** The next {!peek}/{!next} would read from the device. *)

val prefetch_next : 'a t -> bool
(** Read the first unread block into the buffer queue now (one I/O), so a
    later access finds it free of charge.  Returns [false] — reading
    nothing — when the vector is exhausted or the memory budget has no room
    for another buffer; an empty queue refills onto the base charge and
    always succeeds.  Call inside {!Ctx.io_window} to overlap several
    readers' refills into one parallel round. *)

val close : 'a t -> unit

val with_reader : ?prefetch:int -> 'a Vec.t -> ('a t -> 'b) -> 'b
(** Open, run, and close (also on exception). *)
