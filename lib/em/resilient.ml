(* Retry/verify/remap logic over [Device]'s raw metered attempts.  On an
   unarmed device both operations are plain pass-throughs: raw faults escape
   as [Em_error.Error (Io_fault _)].  On an armed device every failure mode
   either recovers within the policy's attempt budget or surfaces as a typed
   [Em_error.t] — nothing escapes half-handled.  Crashes are never caught
   here: only a restart driver can survive them. *)

(* Operation-level retry: re-run a whole composite operation (e.g. one serve
   query) when a typed failure escapes the per-I/O recovery above.  Each
   retry is metered in [Stats.retries] and marked with a [Trace.Retry] event
   (no extra I/O charge — the re-execution pays its own metered I/Os; any
   backoff a real system would sleep through has no simulated cost).
   Crashes are never retried (the process is gone) and neither are budget
   aborts (re-running would burn the same budget again). *)

let retryable = function
  | Em_error.Crashed _ | Em_error.Budget_exceeded _ -> false
  | Em_error.Io_fault _ | Em_error.Read_failed _ | Em_error.Write_failed _
  | Em_error.Corrupt_block _ ->
      true

let error_block = function
  | Em_error.Io_fault { block; _ }
  | Em_error.Read_failed { block; _ }
  | Em_error.Write_failed { block; _ }
  | Em_error.Corrupt_block { block; _ } ->
      block
  | Em_error.Crashed _ | Em_error.Budget_exceeded _ -> -1

let with_retries ?(max_retries = 3) ?on_retry d f =
  let rec go attempt =
    match f () with
    | v -> v
    | exception Em_error.Error e when retryable e && attempt <= max_retries ->
        let s = Device.stats d in
        s.Stats.retries <- s.Stats.retries + 1;
        Trace.emit ~kind:Trace.Retry (Device.trace d) Trace.Read ~block:(error_block e)
          ~phase:s.Stats.phase_stack;
        (match on_retry with Some h -> h ~attempt e | None -> ());
        go (attempt + 1)
  in
  go 1

let read d id =
  match Device.recovery d with
  | None -> Device.read d id
  | Some r ->
      let { Device.policy; counters; _ } = r in
      let max_attempts = 1 + max 0 policy.Device.max_retries in
      let rec go attempt =
        match Device.read ~attempt d id with
        | payload ->
            if (not policy.Device.verify_reads) || Device.verify_payload d id payload
            then begin
              if attempt > 1 then counters.Device.recovered <- counters.Device.recovered + 1;
              payload
            end
            else begin
              counters.Device.checksum_failures <- counters.Device.checksum_failures + 1;
              if attempt >= max_attempts then
                Em_error.raise_error (Em_error.Corrupt_block { block = id; attempts = attempt })
              else go (attempt + 1)
            end
        | exception Em_error.Error (Em_error.Io_fault { kind; _ }) ->
            (* A sticky read fault means the data is gone: retries hit the
               same bad platter, so fail fast instead of burning the attempt
               budget on a foregone conclusion. *)
            if Fault.is_permanent kind || attempt >= max_attempts then
              Em_error.raise_error (Em_error.Read_failed { block = id; attempts = attempt })
            else go (attempt + 1)
      in
      go 1

let write d id payload =
  match Device.recovery d with
  | None -> Device.write d id payload
  | Some r ->
      let { Device.policy; counters; _ } = r in
      let max_attempts = 1 + max 0 policy.Device.max_retries in
      let verified_back attempt =
        (* Read-back verification, metered as a read — flagged as a retry
           only when it belongs to a recovery attempt.  The recorded checksum
           is of the *intended* payload, so a torn or corrupted store fails
           here even though the write itself "succeeded". *)
        match Device.read ~attempt d id with
        | stored -> Device.verify_payload d id stored
        | exception Em_error.Error (Em_error.Io_fault _) -> false
      in
      let rec go attempt =
        match Device.write ~attempt d id payload with
        | () ->
            if (not policy.Device.verify_writes) || verified_back attempt then begin
              if attempt > 1 then counters.Device.recovered <- counters.Device.recovered + 1
            end
            else begin
              counters.Device.checksum_failures <- counters.Device.checksum_failures + 1;
              if attempt >= max_attempts then
                Em_error.raise_error (Em_error.Corrupt_block { block = id; attempts = attempt })
              else go (attempt + 1)
            end
        | exception Em_error.Error (Em_error.Io_fault { kind; _ }) ->
            if attempt >= max_attempts then
              Em_error.raise_error (Em_error.Write_failed { block = id; attempts = attempt })
            else if Fault.is_permanent kind then
              if policy.Device.remap_bad then begin
                (* The slot is sticky-bad; retrying it is pointless.  Retire
                   it, point the logical id at a healthy slot, and write
                   there on the next attempt. *)
                ignore (Device.quarantine_and_remap d id kind);
                go (attempt + 1)
              end
              else
                Em_error.raise_error (Em_error.Write_failed { block = id; attempts = attempt })
            else go (attempt + 1)
      in
      go 1
