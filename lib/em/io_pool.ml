(* A domain-pool asynchronous I/O scheduler.

   Workers are plain OCaml 5 domains, each owning one bounded FIFO request
   queue guarded by a mutex + two condvars (not-empty for the worker,
   not-full for submitters).  Jobs are routed by an integer [key]: the same
   key always lands on the same worker, which is the load-bearing invariant
   — the file backend keys every request by (backend, disk), so all I/O on
   one fd executes on exactly one domain (no shared lseek offsets, no torn
   reads) and two requests touching the same slot are serialised in
   submission order by that worker's FIFO.

   Everything the EM cost model observes — counted I/Os, rounds, fault
   decisions, checksums, trace events — is decided on the submitting domain
   before a job is enqueued; a job is pure byte shuffling.  That is why
   async execution cannot move a single ledger number (see DESIGN.md).

   A ticket resolves exactly once.  Exceptions raised by a job are captured
   and re-raised on the domain that [await]s the ticket; the in-flight gauge
   is decremented *before* the ticket resolves, so once [await] returns the
   pool's accounting already reflects the completion. *)

type state = Pending | Resolved of exn option

type ticket = { tm : Mutex.t; tc : Condition.t; mutable state : state }

type worker = {
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  jobs : ((unit -> unit) * ticket) Queue.t;
  mutable stopping : bool;
}

type t = {
  workers : worker array;
  mutable domains : unit Domain.t array;
  capacity : int;  (* max queued jobs per worker; submit blocks beyond it *)
  in_flight : int Atomic.t;  (* submitted and not yet completed *)
  idle_m : Mutex.t;  (* completion edge for [quiesce] *)
  idle_c : Condition.t;
  mutable closed : bool;
}

let default_capacity = 64

let workers_env_var = "EM_ASYNC_WORKERS"

let default_workers () =
  match Sys.getenv_opt workers_env_var with
  | None | Some "" -> 4
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some w when w >= 1 -> w
      | _ ->
          invalid_arg
            (Printf.sprintf "Io_pool: %s must be a positive integer (got %S)"
               workers_env_var s))

let resolve t tk exn =
  (* Order matters: the gauge must already be decremented when a waiting
     [await] wakes up, so "await returned, in_flight still > 0" can never be
     observed for the awaited request. *)
  Atomic.decr t.in_flight;
  Mutex.lock t.idle_m;
  Condition.broadcast t.idle_c;
  Mutex.unlock t.idle_m;
  Mutex.lock tk.tm;
  tk.state <- Resolved exn;
  Condition.broadcast tk.tc;
  Mutex.unlock tk.tm

let worker_loop t w =
  let running = ref true in
  while !running do
    Mutex.lock w.m;
    while Queue.is_empty w.jobs && not w.stopping do
      Condition.wait w.not_empty w.m
    done;
    if Queue.is_empty w.jobs then begin
      (* stopping && drained: queued work is never dropped on shutdown *)
      running := false;
      Mutex.unlock w.m
    end
    else begin
      let job, tk = Queue.pop w.jobs in
      Condition.signal w.not_full;
      Mutex.unlock w.m;
      let exn = match job () with () -> None | exception e -> Some e in
      resolve t tk exn
    end
  done

let create ?(workers = default_workers ()) ?(capacity = default_capacity) () =
  if workers < 1 then invalid_arg "Io_pool.create: workers must be >= 1";
  if capacity < 1 then invalid_arg "Io_pool.create: capacity must be >= 1";
  let mk_worker _ =
    {
      m = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      jobs = Queue.create ();
      stopping = false;
    }
  in
  let pool_workers = Array.init workers mk_worker in
  let t =
    {
      workers = pool_workers;
      domains = [||];
      capacity;
      in_flight = Atomic.make 0;
      idle_m = Mutex.create ();
      idle_c = Condition.create ();
      closed = false;
    }
  in
  t.domains <- Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w)) pool_workers;
  t

let workers t = Array.length t.workers
let in_flight t = Atomic.get t.in_flight
let closed t = t.closed

let submit t ~key job =
  if t.closed then invalid_arg "Io_pool.submit: pool is shut down";
  let w = t.workers.(abs key mod Array.length t.workers) in
  let tk = { tm = Mutex.create (); tc = Condition.create (); state = Pending } in
  Atomic.incr t.in_flight;
  Mutex.lock w.m;
  while Queue.length w.jobs >= t.capacity && not w.stopping do
    Condition.wait w.not_full w.m
  done;
  if w.stopping then begin
    Mutex.unlock w.m;
    Atomic.decr t.in_flight;
    invalid_arg "Io_pool.submit: pool is shut down"
  end;
  Queue.push (job, tk) w.jobs;
  Condition.signal w.not_empty;
  Mutex.unlock w.m;
  tk

let await tk =
  Mutex.lock tk.tm;
  while (match tk.state with Pending -> true | Resolved _ -> false) do
    Condition.wait tk.tc tk.tm
  done;
  let state = tk.state in
  Mutex.unlock tk.tm;
  match state with
  | Resolved None -> ()
  | Resolved (Some e) -> raise e
  | Pending -> assert false

(* Typed convenience over the untyped job/ticket pair: the closure's result
   lands in a cell that [wait] reads back after the ticket resolves (the
   ticket mutex is the happens-before edge). *)
type 'a task = { ticket : ticket; cell : 'a option ref }

let run t ~key f =
  let cell = ref None in
  { ticket = submit t ~key (fun () -> cell := Some (f ())); cell }

let wait task =
  await task.ticket;
  match !(task.cell) with Some v -> v | None -> assert false

let quiesce t =
  Mutex.lock t.idle_m;
  while Atomic.get t.in_flight > 0 do
    Condition.wait t.idle_c t.idle_m
  done;
  Mutex.unlock t.idle_m

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun w ->
        Mutex.lock w.m;
        w.stopping <- true;
        Condition.broadcast w.not_empty;
        Condition.broadcast w.not_full;
        Mutex.unlock w.m)
      t.workers;
    (* Workers drain their queues before exiting, so joining also awaits
       every request that was in flight at shutdown time. *)
    Array.iter Domain.join t.domains
  end

(* ------------------------------------------------------------------ *)
(* The shared default pool.                                           *)
(* ------------------------------------------------------------------ *)

(* Domains are a scarce resource (the runtime caps them at ~128), and test
   suites create thousands of contexts, so asynchronous machines share one
   lazily-spawned pool instead of spawning domains per context.  Per-fd
   domain affinity still holds: each async backend keys its requests by a
   unique (backend, disk) pair.  The pool is joined at exit so the process
   never terminates with live worker domains. *)
let global_pool = ref None

let global () =
  match !global_pool with
  | Some t when not t.closed -> t
  | _ ->
      let t = create () in
      if !global_pool = None then at_exit (fun () -> match !global_pool with
        | Some t -> shutdown t
        | None -> ());
      global_pool := Some t;
      t

(* Fresh routing-key bases, one per async backend: disk [d] of backend [b]
   always maps to key [base_b + d], i.e. to one fixed worker. *)
let key_counter = Atomic.make 0
let fresh_key_base () = Atomic.fetch_and_add key_counter 1031
