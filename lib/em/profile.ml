(* Span-scoped profiler.  Attaches to a machine's [Stats] through the
   [span_hooks] observer interface: every [Phase.with_label] (and
   checkpoint/resume charge) becomes a span keyed on its full phase path,
   accumulating the I/Os, comparisons, fault/retry overhead, peak memory and
   host wall-clock time spent while the span was open.  Pure observation: no
   simulated I/O, no behavior change. *)

type span = {
  path : string list;  (* outermost label first *)
  mutable calls : int;
  mutable reads : int;
  mutable writes : int;
  mutable rounds : int;
  mutable comparisons : int;
  mutable faults : int;
  mutable retries : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable wall_ns : float;
  mutable mem_peak : int;
}

type frame = {
  span : span;
  snap : Stats.snapshot;
  start : float;  (* host seconds *)
  mutable peak : int;
  counted : bool;
      (* Re-entrant spans (a phase label nested inside itself) only bump
         [calls]: the outermost open frame already covers their cost, so
         counting them again would double-charge the span. *)
}

type t = {
  spans : (string list, span) Hashtbl.t;
  mutable open_frames : frame list;  (* innermost first *)
  mutable source : Stats.t option;
}

let create () = { spans = Hashtbl.create 32; open_frames = []; source = None }

let now () = Unix.gettimeofday ()

let span_ios s = s.reads + s.writes

let find_span t path =
  match Hashtbl.find_opt t.spans path with
  | Some s -> s
  | None ->
      let s =
        {
          path;
          calls = 0;
          reads = 0;
          writes = 0;
          rounds = 0;
          comparisons = 0;
          faults = 0;
          retries = 0;
          cache_hits = 0;
          cache_misses = 0;
          wall_ns = 0.;
          mem_peak = 0;
        }
      in
      Hashtbl.add t.spans path s;
      s

let on_push t stats stack =
  let path = List.rev stack in
  let span = find_span t path in
  let counted =
    not (List.exists (fun f -> f.span == span) t.open_frames)
  in
  t.open_frames <-
    {
      span;
      snap = Stats.snapshot stats;
      start = now ();
      peak = stats.Stats.mem_in_use;
      counted;
    }
    :: t.open_frames

let on_pop t stats _stack =
  match t.open_frames with
  | [] -> ()  (* unbalanced pop after a crash wiped the stack: ignore *)
  | frame :: rest ->
      t.open_frames <- rest;
      let s = frame.span in
      s.calls <- s.calls + 1;
      if frame.counted then begin
        let d = Stats.delta stats frame.snap in
        s.reads <- s.reads + d.Stats.d_reads;
        s.writes <- s.writes + d.Stats.d_writes;
        s.rounds <- s.rounds + d.Stats.d_rounds;
        s.comparisons <- s.comparisons + d.Stats.d_comparisons;
        s.faults <- s.faults + d.Stats.d_faults;
        s.retries <- s.retries + d.Stats.d_retries;
        s.cache_hits <- s.cache_hits + d.Stats.d_cache_hits;
        s.cache_misses <- s.cache_misses + d.Stats.d_cache_misses;
        s.wall_ns <- s.wall_ns +. ((now () -. frame.start) *. 1e9);
        if frame.peak > s.mem_peak then s.mem_peak <- frame.peak
      end;
      (* The parent's peak must cover everything the child saw. *)
      (match rest with
      | parent :: _ -> if frame.peak > parent.peak then parent.peak <- frame.peak
      | [] -> ())

let on_mem t m =
  match t.open_frames with
  | [] -> ()
  | frame :: _ -> if m > frame.peak then frame.peak <- m

let attach t stats =
  t.source <- Some stats;
  Stats.set_hooks stats
    (Some
       {
         Stats.on_push = (fun stack -> on_push t stats stack);
         on_pop = (fun stack -> on_pop t stats stack);
         on_mem = (fun m -> on_mem t m);
       })

let detach stats = Stats.set_hooks stats None

let reset t =
  Hashtbl.reset t.spans;
  t.open_frames <- []

let spans t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.spans []
  |> List.sort (fun a b ->
         match Int.compare (span_ios b) (span_ios a) with
         | 0 -> compare a.path b.path
         | c -> c)

let path_name path = String.concat "/" path

(* ---- tree report ---- *)

type node = { label : string; mutable span : span option; mutable children : node list }

let make_node label = { label; span = None; children = [] }

let child_named node label =
  match List.find_opt (fun c -> c.label = label) node.children with
  | Some c -> c
  | None ->
      let c = make_node label in
      node.children <- node.children @ [ c ];
      c

let tree t =
  let root = make_node "(run)" in
  List.iter
    (fun s ->
      let node = List.fold_left child_named root s.path in
      node.span <- Some s)
    (List.sort (fun a b -> compare a.path b.path) (spans t));
  root

let zero_like path =
  {
    path;
    calls = 0;
    reads = 0;
    writes = 0;
    rounds = 0;
    comparisons = 0;
    faults = 0;
    retries = 0;
    cache_hits = 0;
    cache_misses = 0;
    wall_ns = 0.;
    mem_peak = 0;
  }

let node_span node = match node.span with Some s -> s | None -> zero_like []

let rec pp_node ppf ~depth node =
  let s = node_span node in
  if depth > 0 then begin
    Format.fprintf ppf "%s%-*s %8d I/O (r %d / w %d)  %9d cmp  %8.2f ms  x%d"
      (String.make (2 * (depth - 1)) ' ')
      (max 1 (28 - (2 * (depth - 1))))
      node.label (span_ios s) s.reads s.writes s.comparisons (s.wall_ns /. 1e6) s.calls;
    (* Round compression only when parallel disks actually shortened the
       schedule, so single-disk profiles keep their exact shape. *)
    if s.rounds < span_ios s then Format.fprintf ppf "  [rounds %d]" s.rounds;
    if s.faults > 0 || s.retries > 0 then
      Format.fprintf ppf "  [faulted %d / retried %d]" s.faults s.retries;
    if s.cache_hits > 0 || s.cache_misses > 0 then
      Format.fprintf ppf "  [hit %d / miss %d]" s.cache_hits s.cache_misses;
    Format.fprintf ppf "@."
  end;
  List.iter
    (pp_node ppf ~depth:(depth + 1))
    (List.sort
       (fun a b -> Int.compare (span_ios (node_span b)) (span_ios (node_span a)))
       node.children)

let pp ppf t = pp_node ppf ~depth:0 (tree t)

(* ---- metrics bridge ---- *)

let publish reg t =
  List.iter
    (fun s ->
      let labels = [ ("span", path_name s.path) ] in
      let g name help v = Metrics.set (Metrics.gauge reg ~help ~labels name) v in
      g "span_ios" "I/Os inside the span (inclusive)" (float_of_int (span_ios s));
      g "span_reads" "Reads inside the span" (float_of_int s.reads);
      g "span_writes" "Writes inside the span" (float_of_int s.writes);
      if s.rounds < span_ios s then
        g "span_rounds" "Parallel I/O rounds inside the span" (float_of_int s.rounds);
      g "span_comparisons" "Comparisons inside the span" (float_of_int s.comparisons);
      g "span_faults" "Faulted attempts inside the span" (float_of_int s.faults);
      g "span_retries" "Recovery re-attempts inside the span" (float_of_int s.retries);
      if s.cache_hits > 0 || s.cache_misses > 0 then begin
        g "span_cache_hits" "Buffer-pool hits inside the span" (float_of_int s.cache_hits);
        g "span_cache_misses" "Buffer-pool misses inside the span"
          (float_of_int s.cache_misses)
      end;
      g "span_mem_peak_words" "Peak memory words while the span was open"
        (float_of_int s.mem_peak);
      g "span_wall_ns" "Host wall-clock nanoseconds inside the span" s.wall_ns;
      g "span_calls" "Times the span was entered" (float_of_int s.calls))
    (spans t)
