type t =
  | Io_fault of { op : Fault.op; kind : Fault.kind; block : int }
  | Read_failed of { block : int; attempts : int }
  | Write_failed of { block : int; attempts : int }
  | Corrupt_block of { block : int; attempts : int }
  | Crashed of { after_ios : int }
  | Budget_exceeded of { budget : int; spent : int }

exception Error of t

exception Bad_block_id of { op : string; id : int }
exception Never_written of { id : int }
exception Payload_overflow of { len : int; block : int }
exception Double_free of { id : int }
exception Negative_words of { op : string; n : int }
exception Over_release of { releasing : int; in_use : int }

exception Slot_overflow of { bytes : int; capacity : int; slot : int }
(* A marshalled payload exceeded a file backend's fixed slot size; see
   [Backend.file]. *)

let op_name = function `Read -> "read" | `Write -> "write"

let to_string = function
  | Io_fault { op; kind; block } ->
      Printf.sprintf "injected %s fault on %s of block %d" (Fault.kind_name kind) (op_name op)
        block
  | Read_failed { block; attempts } ->
      Printf.sprintf "read of block %d failed after %d attempt(s)" block attempts
  | Write_failed { block; attempts } ->
      Printf.sprintf "write of block %d failed after %d attempt(s)" block attempts
  | Corrupt_block { block; attempts } ->
      Printf.sprintf "block %d failed checksum verification (%d attempt(s))" block attempts
  | Crashed { after_ios } -> Printf.sprintf "machine crashed after %d I/Os" after_ios
  | Budget_exceeded { budget; spent } ->
      Printf.sprintf "I/O budget of %d exceeded (%d spent)" budget spent

let pp ppf e = Format.pp_print_string ppf (to_string e)
let raise_error e = raise (Error e)
let protect f = match f () with v -> Ok v | exception Error e -> Result.Error e

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Em_error.Error(%s)" (to_string e))
    | Bad_block_id { op; id } -> Some (Printf.sprintf "Em_error.Bad_block_id(%s, %d)" op id)
    | Never_written { id } -> Some (Printf.sprintf "Em_error.Never_written(%d)" id)
    | Payload_overflow { len; block } ->
        Some (Printf.sprintf "Em_error.Payload_overflow(len %d > B %d)" len block)
    | Double_free { id } -> Some (Printf.sprintf "Em_error.Double_free(%d)" id)
    | Negative_words { op; n } -> Some (Printf.sprintf "Em_error.Negative_words(%s, %d)" op n)
    | Over_release { releasing; in_use } ->
        Some (Printf.sprintf "Em_error.Over_release(%d > %d in use)" releasing in_use)
    | Slot_overflow { bytes; capacity; slot } ->
        Some
          (Printf.sprintf "Em_error.Slot_overflow(%d bytes > %d-byte slot %d)" bytes capacity
             slot)
    | _ -> None)
