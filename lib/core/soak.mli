(** Chaos soak harness: online sessions under scheduled kills and faults.

    Runs the same seeded select/quantile stream twice over the same seeded
    workload — once uninterrupted (the oracle), once with kills scheduled
    between queries ([crash_after], 1-based query indices), both under the
    identical every-k-splits checkpoint policy — and verifies the
    crash-survivability contract end to end:

    - the interrupted session's answers equal the oracle's;
    - its total I/Os stay within the k-crash bound
      [oracle + resume loads + k * (one checkpoint save + one re-sorted
      memory load)] (the property the bench gates via [BENCH_soak.json]);
    - [mem_peak <= M] holds through every recovery.

    A kill drops the session object without closing it — process RAM dies,
    the device and checkpoint region survive — then restores from the
    attached store, exactly the failure [em_repro serve --restore] recovers
    from across real processes.  With [fault_p > 0] the device additionally
    runs under a seeded transient-fault plan with an armed retry policy, and
    the comparison still holds deterministically (both runs consult the
    identical per-I/O fault sequence). *)

type config = {
  n : int;
  mem : int;
  block : int;
  disks : int;
  backend : Em.Backend.spec option;
  seed : int;  (** workload permutation and query-stream seed *)
  queries : int;
  crash_after : int list;  (** kill after these replies (1-based, between queries) *)
  every_splits : int;  (** automatic checkpoint policy for both runs *)
  fault_p : float;  (** per-I/O fault probability; 0 = clean *)
  fault_seed : int;
  fault_kinds : Em.Fault.kind list;  (** the seeded mix; default transient read+write *)
  max_retries : int;  (** per-I/O and per-query retry budget *)
  flight_dir : string option;
      (** when set, every kill in the chaos run dumps a flight-recorder
          post-mortem ([postmortem-kill-after-qNNN.json]) there *)
}

val default : n:int -> queries:int -> config
(** The pinned small machine (M = 4096, B = 64, D = 1, sim backend,
    seed 42), clean device, checkpoint every split, no crashes. *)

type crash_record = {
  after_query : int;
  resume_load_ios : int;  (** metered ["resume"] reads this restore paid *)
  leaves_restored : int;
}

type outcome = {
  flight_dumps : string list;  (** post-mortem artifacts, in kill order *)
  answers_match : bool;  (** interrupted answers = oracle answers *)
  crashes : int;
  oracle_ios : int;  (** uninterrupted total, saves included *)
  chaos_ios : int;  (** interrupted total: saves + resumes included *)
  saves : int;
  loads : int;
  save_ios : int;
  load_ios : int;
  resort_allowance : int;  (** blocks allowed per crash for redone work *)
  allowed_ios : int;  (** the k-crash bound the gate compares against *)
  within_bound : bool;  (** [chaos_ios <= allowed_ios] *)
  retries : int;  (** metered retries of the interrupted run *)
  mem_ok : bool;  (** [mem_peak <= M] in both runs *)
  crash_log : crash_record list;  (** in schedule order *)
}

val run : ?on_crash:(crash_record -> unit) -> config -> outcome
(** Run oracle then chaos twin and compare; [on_crash] observes each
    kill/restore as it happens (transcript hooks). *)

val spread_crashes : queries:int -> k:int -> int list
(** [k] kill points spread evenly through the stream, never after the last
    query. *)
