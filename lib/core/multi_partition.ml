(* Distribution-sort multi-partition; see the interface.  The recursion
   works on (key, position) pairs for distinctness and strips the tags as it
   emits elements into the per-partition writers. *)

let log_src = Logs.Src.create "core.multi_partition" ~doc:"Multi-partition recursion"

module Log = (val Logs.src_log log_src : Logs.LOG)

let seq_cmp = Emalg.Order.tagged

(* Output partitions are produced strictly in order, so a single writer is
   open at any moment.  Two output modes: [Separate] materialises one vector
   per partition (convenient; costs up to one partial block per partition);
   [Packed] streams everything into one caller-provided writer, partitions
   sharing blocks — the paper's linked-list format, needed to meet the bound
   when partitions are smaller than a block. *)
type 'a mode =
  | Separate of { mutable finished : 'a Em.Vec.t list (* newest first *) }
  | Packed  (* cuts are implied by the bounds the caller passed *)

type 'a out_state = {
  out_ctx : 'a Em.Ctx.t;
  mutable writer : 'a Em.Writer.t;
  mode : 'a mode;
}

(* Output writers queue up to D - 1 filled blocks so leaf emission drains in
   parallel windows on a multi-disk machine (a no-op queue at D = 1). *)
let out_writer ctx = Em.Writer.create ~write_behind:(Em.Ctx.disks ctx - 1) ctx

let out_create ctx = { out_ctx = ctx; writer = out_writer ctx; mode = Separate { finished = [] } }
let out_create_packed ctx writer = { out_ctx = ctx; writer; mode = Packed }
let out_push st key = Em.Writer.push st.writer key

let out_cut st =
  match st.mode with
  | Separate m ->
      m.finished <- Em.Writer.finish st.writer :: m.finished;
      st.writer <- out_writer st.out_ctx
  | Packed -> ()

let out_finish st =
  match st.mode with
  | Separate m ->
      m.finished <- Em.Writer.finish st.writer :: m.finished;
      Array.of_list (List.rev m.finished)
  | Packed -> invalid_arg "Multi_partition: out_finish on a packed stream"


(* Emit a sorted leaf: walk it, cutting at each local bound (local bounds
   are 1-based ranks within the leaf; a bound equal to the leaf size cuts
   right after its last element).  [proj] extracts the raw key to emit. *)
let emit_sorted_leaf ~proj st items local_bounds =
  let next = ref 0 in
  let nbounds = Array.length local_bounds in
  Array.iteri
    (fun i p ->
      out_push st (proj p);
      while !next < nbounds && local_bounds.(!next) = i + 1 do
        out_cut st;
        incr next
      done)
    items;
  if !next <> nbounds then
    invalid_arg "Multi_partition: internal error (bound beyond leaf)"

(* Split a sorted stream of local bounds into per-bucket streams, re-based
   against the bucket's cumulative start.  Bounds equal to a cumulative
   boundary land in the earlier bucket (local bound = bucket size). *)
let route_bounds ictx bounds_vec cumulative =
  let nbuckets = Array.length cumulative in
  let per_bucket = Array.make nbuckets None in
  let current = ref 0 in
  let writer = ref (Em.Writer.create ictx) in
  let close_current () =
    per_bucket.(!current) <- Some (Em.Writer.finish !writer) in
  Emalg.Scan.iter
    (fun r ->
      let start j = if j = 0 then 0 else cumulative.(j - 1) in
      while r > cumulative.(!current) do
        close_current ();
        incr current;
        writer := Em.Writer.create ictx
      done;
      Em.Writer.push !writer (r - start !current))
    bounds_vec;
  close_current ();
  for j = !current + 1 to nbuckets - 1 do
    writer := Em.Writer.create ictx;
    per_bucket.(j) <- Some (Em.Writer.finish !writer)
  done;
  Array.map (function Some v -> v | None -> assert false) per_bucket

(* Route the bounds of freshly split buckets and recurse in order.  Buckets
   hold (key, position) pairs; [recurse] consumes each (bucket, bounds). *)
let split_and_recurse ctx buckets bounds_vec ~free_bounds recurse =
  let nbuckets = Array.length buckets in
  let ictx = Em.Vec.ctx bounds_vec in
  let bucket_bounds =
    Em.Ctx.with_words ctx nbuckets (fun () ->
        let cumulative = Array.make nbuckets 0 in
        let acc = ref 0 in
        Array.iteri
          (fun j b ->
            acc := !acc + Em.Vec.length b;
            cumulative.(j) <- !acc)
          buckets;
        route_bounds ictx bounds_vec cumulative)
  in
  if free_bounds then Em.Vec.free bounds_vec;
  Array.iteri (fun j b -> recurse b bucket_bounds.(j)) buckets

(* Recursion over tagged (key, position) buckets; consumes its inputs. *)
let rec go cmp ctx st tv bounds_vec =
  let kcmp = seq_cmp cmp in
  let n = Em.Vec.length tv in
  let nbounds = Em.Vec.length bounds_vec in
  let base = Emalg.Layout.big_load ctx in
  if nbounds = 0 then begin
    (* Entirely inside one output partition: stream it through. *)
    Em.Phase.with_label ctx "leaf-emit" (fun () ->
        Emalg.Scan.iter (fun (key, _) -> out_push st key) tv);
    Em.Vec.free tv;
    Em.Vec.free bounds_vec
  end
  else if n + nbounds <= base then begin
    Em.Phase.with_label ctx "leaf-emit" (fun () ->
        Em.Ctx.with_words ctx nbounds (fun () ->
            let local_bounds = Emalg.Scan.array_of_vec_io bounds_vec in
            Emalg.Scan.with_loaded tv (fun pairs ->
                Emalg.Mem_sort.sort kcmp pairs;
                emit_sorted_leaf ~proj:fst st pairs local_bounds)));
    Em.Vec.free tv;
    Em.Vec.free bounds_vec
  end
  else begin
    Log.debug (fun m -> m "level: n=%d interior-bounds=%d" n nbounds);
    let target = Emalg.Split_step.default_target ctx ~n in
    let buckets = Emalg.Split_step.split kcmp tv ~target_buckets:target in
    split_and_recurse ctx buckets bounds_vec ~free_bounds:true (go cmp ctx st)
  end

let check_bounds v bounds =
  let n = Em.Vec.length v in
  let prev = ref 0 in
  Emalg.Scan.iter
    (fun r ->
      if r <= !prev || r >= n then
        invalid_arg
          "Multi_partition.partition: bounds must be strictly increasing in (0, n)";
      prev := r)
    bounds

(* Shared driver: route everything into [st]. *)
let run cmp st v ~bounds =
  let ctx = Em.Vec.ctx v in
  let n = Em.Vec.length v in
  let nbounds = Em.Vec.length bounds in
  let base = Emalg.Layout.big_load ctx in
  (* The first level works on the raw input (tagging inline where needed);
     deeper levels work on (key, position) pairs. *)
  if nbounds = 0 then
    Em.Phase.with_label ctx "leaf-emit" (fun () -> Emalg.Scan.iter (out_push st) v)
  else if n + nbounds <= base then
    Em.Phase.with_label ctx "leaf-emit" (fun () ->
        Em.Ctx.with_words ctx nbounds (fun () ->
            let local_bounds = Emalg.Scan.array_of_vec_io bounds in
            Emalg.Scan.with_loaded v (fun a ->
                (* Stable sort = positional tie-breaking, no tags needed. *)
                Emalg.Mem_sort.sort cmp a;
                emit_sorted_leaf ~proj:(fun x -> x) st a local_bounds)))
  else begin
    let target = Emalg.Split_step.default_target ctx ~n in
    let buckets = Emalg.Split_step.split_tagging cmp v ~target_buckets:target in
    split_and_recurse ctx buckets bounds ~free_bounds:false (go cmp ctx st)
  end

let partition cmp v ~bounds =
  let ctx = Em.Vec.ctx v in
  Emalg.Layout.require_min_geometry ctx;
  check_bounds v bounds;
  let st = out_create ctx in
  match
    run cmp st v ~bounds;
    out_finish st
  with
  | parts ->
      if Array.length parts <> Em.Vec.length bounds + 1 then
        invalid_arg "Multi_partition.partition: internal error (partition count)";
      parts
  | exception e ->
      (* A failed I/O mid-partition must not leak the open writer's buffer
         words or the already-finished partitions' blocks. *)
      (match st.mode with
      | Separate m -> List.iter Em.Vec.free m.finished
      | Packed -> ());
      (try Em.Writer.abandon st.writer with Invalid_argument _ -> ());
      raise e

let partition_packed_into cmp v ~bounds writer =
  let ctx = Em.Vec.ctx v in
  Emalg.Layout.require_min_geometry ctx;
  check_bounds v bounds;
  let st = out_create_packed ctx writer in
  run cmp st v ~bounds

let bounds_of_sizes ictx sizes =
  Em.Writer.with_writer ictx (fun w ->
      let acc = ref 0 in
      let k = Array.length sizes in
      Array.iteri
        (fun i s ->
          if s < 1 then invalid_arg "Multi_partition: sizes must be >= 1";
          acc := !acc + s;
          if i < k - 1 then Em.Writer.push w !acc)
        sizes)

let partition_sizes cmp v ~sizes =
  let total = Array.fold_left ( + ) 0 sizes in
  if total <> Em.Vec.length v then
    invalid_arg "Multi_partition.partition_sizes: sizes must sum to the input length";
  let ictx = Em.Ctx.linked (Em.Vec.ctx v) in
  let bounds = bounds_of_sizes ictx sizes in
  let parts = partition cmp v ~bounds in
  Em.Vec.free bounds;
  parts
