(* Bound-ratio telemetry: Table 1 of the paper as an observable.

   Each row pairs an algorithm with its upper-bound formula from [Bounds];
   [run] measures the algorithm at a concrete (N, M, B, K, a, b) geometry and
   [publish] exports measured_ios / predicted_ios / ratio as gauges, so "the
   measured cost tracks the bound with a bounded constant" stops being a
   Printf anecdote and becomes a diffable, alertable quantity. *)

type row =
  | Splitters_right
  | Splitters_left
  | Splitters_two_sided
  | Partition_right
  | Partition_left
  | Partition_two_sided

let all =
  [
    Splitters_right;
    Splitters_left;
    Splitters_two_sided;
    Partition_right;
    Partition_left;
    Partition_two_sided;
  ]

let name = function
  | Splitters_right -> "splitters_right"
  | Splitters_left -> "splitters_left"
  | Splitters_two_sided -> "splitters_two_sided"
  | Partition_right -> "partition_right"
  | Partition_left -> "partition_left"
  | Partition_two_sided -> "partition_two_sided"

let of_name s = List.find_opt (fun r -> name r = s) all

let predicted row p spec =
  match row with
  | Splitters_right -> Bounds.splitters_right_upper p spec
  | Splitters_left -> Bounds.splitters_left_upper p spec
  | Splitters_two_sided -> Bounds.splitters_two_sided_upper p spec
  | Partition_right -> Bounds.partition_right_upper p spec
  | Partition_left -> Bounds.partition_left_upper p spec
  | Partition_two_sided -> Bounds.partition_two_sided_upper p spec

(* Representative spec shapes per regime: right-grounded keeps b = n,
   left-grounded keeps a = 0, two-sided constrains both.  Scale-free in n so
   the same row is meaningful at any geometry. *)
let default_spec row ~n =
  let k = 16 in
  let a = max 1 (n / 256) and b = max 1 (n / 8) in
  let spec =
    match row with
    | Splitters_right | Partition_right -> { Problem.n; k; a; b = n }
    | Splitters_left | Partition_left -> { Problem.n; k; a = 0; b }
    | Splitters_two_sided | Partition_two_sided -> { Problem.n; k; a; b }
  in
  Problem.validate_exn spec;
  spec

let solve row cmp v spec =
  match row with
  | Splitters_right | Splitters_left | Splitters_two_sided ->
      Em.Vec.free (Splitters.solve cmp v spec)
  | Partition_right | Partition_left | Partition_two_sided ->
      Array.iter Em.Vec.free (Partitioning.solve cmp v spec)

type sample = {
  s_row : row;
  s_spec : Problem.spec;
  s_params : Em.Params.t;
  measured_ios : int;
  measured_rounds : int;
  seeks : int;
  comparisons : int;
  mem_peak : int;
  wall_ns : float;
  predicted_ios : float;
  ratio : float;
}

let run ?(kind = Workload.Pi_hard) ?(seed = 2014) p row spec =
  Problem.validate_exn spec;
  let trace = Em.Trace.create () in
  let seek_sink, seeks =
    Em.Trace.counter (fun e -> e.Em.Trace.locality = Em.Trace.Random)
  in
  Em.Trace.add_sink trace seek_sink;
  let ctx : int Em.Ctx.t = Em.Ctx.create ~trace p in
  let v = Workload.vec ctx kind ~seed ~n:spec.Problem.n in
  let cmp = Em.Ctx.counted ctx Int.compare in
  let t0 = Unix.gettimeofday () in
  let (), d = Em.Ctx.measured ctx (fun () -> solve row cmp v spec) in
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let predicted_ios = predicted row p spec in
  let measured_ios = Em.Stats.delta_ios d in
  {
    s_row = row;
    s_spec = spec;
    s_params = p;
    measured_ios;
    measured_rounds = d.Em.Stats.d_rounds;
    seeks = seeks ();
    comparisons = d.Em.Stats.d_comparisons;
    mem_peak = ctx.Em.Ctx.stats.Em.Stats.mem_peak;
    wall_ns;
    predicted_ios;
    ratio = float_of_int measured_ios /. predicted_ios;
  }

let geometry_labels p (spec : Problem.spec) =
  [
    ("n", string_of_int spec.Problem.n);
    ("k", string_of_int spec.Problem.k);
    ("a", string_of_int spec.Problem.a);
    ("b", string_of_int spec.Problem.b);
    ("mem", string_of_int p.Em.Params.mem);
    ("block", string_of_int p.Em.Params.block);
  ]

let publish_values ?measured_rounds reg p row spec ~measured_ios =
  let pred = predicted row p spec in
  let ratio = float_of_int measured_ios /. pred in
  let labels = ("row", name row) :: geometry_labels p spec in
  let g n h v = Em.Metrics.set (Em.Metrics.gauge reg ~help:h ~labels n) v in
  g "bound_measured_ios" "Measured I/Os of the Table 1 row" (float_of_int measured_ios);
  g "bound_predicted_ios" "Table 1 upper-bound formula at this geometry" pred;
  g "bound_ratio" "measured / predicted (flat iff the bound holds)" ratio;
  (* Round gauges only on multi-disk machines, where rounds diverge from
     I/Os; the single-disk exporter goldens keep their shape. *)
  (match measured_rounds with
  | Some rounds when p.Em.Params.disks > 1 ->
      let pred_rounds = Bounds.rounds_of p pred in
      g "bound_measured_rounds" "Measured parallel I/O rounds of the row"
        (float_of_int rounds);
      g "bound_predicted_rounds" "Upper bound / D: the D-disk round bound" pred_rounds;
      g "bound_round_ratio" "measured rounds / predicted rounds"
        (float_of_int rounds /. pred_rounds)
  | _ -> ());
  ratio

let publish reg s =
  publish_values ~measured_rounds:s.measured_rounds reg s.s_params s.s_row s.s_spec
    ~measured_ios:s.measured_ios

(* Cluster agreement against the deterministic histogram-sort-with-sampling
   budgets of [Bounds]: both ratios must stay <= 1 by construction, and the
   bench gates them like the Table 1 rows. *)
let publish_cluster reg ~shards ~algo ~boundaries ~rounds_budget ~per_round
    ~iterations ~samples ~comm_rounds =
  let boundaries = max 1 boundaries in
  let labels = [ ("algo", algo); ("shards", string_of_int shards) ] in
  let g n h v = Em.Metrics.set (Em.Metrics.gauge reg ~help:h ~labels n) v in
  let rounds_upper = Bounds.hss_comm_rounds_upper ~rounds:rounds_budget in
  let samples_upper =
    Float.max 1.
      (Bounds.hss_sample_upper ~shards ~boundaries ~rounds:rounds_budget ~per_round)
  in
  let round_ratio = float_of_int comm_rounds /. rounds_upper in
  let sample_ratio = float_of_int samples /. samples_upper in
  g "cluster_agree_iterations" "Refinement iterations the agreement used"
    (float_of_int iterations);
  g "cluster_comm_rounds" "Measured communication rounds (supersteps)"
    (float_of_int comm_rounds);
  g "cluster_comm_rounds_budget" "2r+2: the HSS round budget" rounds_upper;
  g "cluster_round_ratio" "measured comm rounds / budget (<= 1 by construction)"
    round_ratio;
  g "cluster_samples" "Candidates actually drawn by the agreement"
    (float_of_int samples);
  g "cluster_samples_budget" "r*T*P*m: the HSS sample-volume budget" samples_upper;
  g "cluster_sample_ratio" "drawn samples / budget (<= 1 by construction)"
    sample_ratio;
  (round_ratio, sample_ratio)
