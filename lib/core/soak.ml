(* Chaos soak harness for online multiselection sessions.

   Drives one session through a seeded adversarial query stream — under an
   optional seeded transient-fault plan — with scheduled kills between
   queries: the session object is dropped without being closed (the tree
   skeleton in RAM dies, the device and checkpoint region survive, pool
   pages and the memory ledger are wiped like [Restart.drive]'s recovery),
   then rebuilt with [Online_select.restore].  A crash-free oracle twin runs
   the identical stream under the identical checkpoint policy, so its saves
   mirror the chaos run's and the comparison isolates the crash overhead:
   the chaos run may additionally pay only its resume loads plus, per crash,
   at most one re-checkpoint and one re-sorted memory load (the session
   checkpoints at the end of every refining query, so a kill between queries
   loses no refinement; the allowance is headroom for the policy's
   mid-refinement granularity).

   The stream is select/quantile-only: a range query can finalise several
   leaves between two automatic saves, which would widen the per-crash
   re-sort allowance beyond "one memory load" (ranges are exercised by the
   serve tests instead). *)

type config = {
  n : int;
  mem : int;
  block : int;
  disks : int;
  backend : Em.Backend.spec option;
  seed : int;
  queries : int;
  crash_after : int list;
  every_splits : int;
  fault_p : float;
  fault_seed : int;
  fault_kinds : Em.Fault.kind list;
  max_retries : int;
  flight_dir : string option;
}

let default ~n ~queries =
  {
    n;
    mem = 4096;
    block = 64;
    disks = 1;
    backend = None;
    seed = 42;
    queries;
    crash_after = [];
    every_splits = 1;
    fault_p = 0.;
    fault_seed = 1;
    fault_kinds = [ Em.Fault.Transient_read; Em.Fault.Transient_write ];
    max_retries = 3;
    flight_dir = None;
  }

type crash_record = { after_query : int; resume_load_ios : int; leaves_restored : int }

type outcome = {
  flight_dumps : string list;
  answers_match : bool;
  crashes : int;
  oracle_ios : int;
  chaos_ios : int;
  saves : int;
  loads : int;
  save_ios : int;
  load_ios : int;
  resort_allowance : int;
  allowed_ios : int;
  within_bound : bool;
  retries : int;
  mem_ok : bool;
  crash_log : crash_record list;
}

(* The adversarial stream: seeded, independent of the workload permutation
   (distinct generator stream), mixing point selects with quantiles. *)
let gen_queries cfg =
  let rng = Workload.Rng.create ((cfg.seed * 7919) + 17) in
  Array.init cfg.queries (fun _ ->
      let pick = Workload.Rng.int rng 4 in
      if pick = 0 then
        Emalg.Online_select.Quantile
          (float_of_int (1 + Workload.Rng.int rng 1000) /. 1000.)
      else Emalg.Online_select.Select (1 + Workload.Rng.int rng cfg.n))

let query_label = function
  | Emalg.Online_select.Select k -> Printf.sprintf "select %d" k
  | Emalg.Online_select.Quantile phi -> Printf.sprintf "quantile %g" phi
  | Emalg.Online_select.Range (a, b) -> Printf.sprintf "range %d %d" a b

let query_kind = function
  | Emalg.Online_select.Select _ -> "select"
  | Emalg.Online_select.Quantile _ -> "quantile"
  | Emalg.Online_select.Range _ -> "range"

let rec ensure_dir path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    ensure_dir (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let run_session ?(on_crash = fun _ -> ()) ?flight_dir cfg ~crash_after =
  let ctx =
    Em.Ctx.create ?backend:cfg.backend ~disks:cfg.disks
      (Em.Params.create ~mem:cfg.mem ~block:cfg.block)
  in
  if cfg.fault_p > 0. then begin
    Em.Ctx.arm
      ~policy:{ Em.Device.default_policy with Em.Device.max_retries = cfg.max_retries }
      ctx;
    Em.Ctx.inject ctx
      (Em.Fault.seeded ~seed:cfg.fault_seed ~p:cfg.fault_p cfg.fault_kinds)
  end;
  let v = Workload.vec ctx Workload.Random_perm ~seed:cfg.seed ~n:cfg.n in
  let cmp = Em.Ctx.counted ctx Int.compare in
  let session = ref (Emalg.Online_select.open_session cmp ctx v) in
  Emalg.Online_select.enable_checkpoints ~every_splits:cfg.every_splits !session;
  let stats = ctx.Em.Ctx.stats in
  let queries = gen_queries cfg in
  let answers = Array.make cfg.queries [||] in
  let crash_log = ref [] in
  let recorder = Em.Flight_recorder.create () in
  let dumps = ref [] in
  Array.iteri
    (fun i q ->
      let seq_lo = Em.Trace.total ctx.Em.Ctx.trace in
      let t0 = Unix.gettimeofday () in
      let r =
        Em.Resilient.with_retries ~max_retries:cfg.max_retries ctx.Em.Ctx.dev (fun () ->
            Emalg.Online_select.query !session q)
      in
      answers.(i) <- r.Emalg.Online_select.values;
      Em.Flight_recorder.record recorder
        {
          Em.Flight_recorder.id = i + 1;
          kind = query_kind q;
          query = query_label q;
          ios = Em.Stats.delta_ios r.Emalg.Online_select.cost;
          rounds = r.Emalg.Online_select.cost.Em.Stats.d_rounds;
          splits = r.Emalg.Online_select.splits;
          wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
          outcome = "ok";
          seq_lo;
          seq_hi = Em.Trace.total ctx.Em.Ctx.trace;
        };
      if List.mem (i + 1) crash_after then begin
        (* Every chaos kill leaves a post-mortem artifact: the journal as it
           stood at the moment of death, before the restore overwrites
           anything. *)
        (match flight_dir with
        | None -> ()
        | Some dir ->
            ensure_dir dir;
            let path =
              Filename.concat dir (Printf.sprintf "postmortem-kill-after-q%03d.json" (i + 1))
            in
            Em.Flight_recorder.dump_to_file ~trace:ctx.Em.Ctx.trace
              ~reason:(Printf.sprintf "kill_after_q%d" (i + 1))
              recorder ~path;
            dumps := path :: !dumps);
        let store =
          match Emalg.Online_select.checkpoint_store !session with
          | Some s -> s
          | None -> assert false
        in
        let loads0 = Em.Checkpoint.load_ios store in
        (* kill -9 between queries: drop the session without closing it —
           process RAM (tree skeleton, buffer-pool pages, memory ledger)
           dies, the device and the checkpoint region survive. *)
        (match Em.Ctx.backend_pool ctx with
        | Some pool -> Em.Backend.Pool.drop_all pool
        | None -> ());
        Em.Stats.wipe_memory stats;
        session :=
          Emalg.Online_select.restore ~every_splits:cfg.every_splits cmp ctx v store;
        let rc =
          {
            after_query = i + 1;
            resume_load_ios = Em.Checkpoint.load_ios store - loads0;
            leaves_restored =
              (Emalg.Online_select.summary !session).Emalg.Online_select.leaves;
          }
        in
        crash_log := rc :: !crash_log;
        on_crash rc
      end)
    queries;
  let store =
    match Emalg.Online_select.checkpoint_store !session with
    | Some s -> s
    | None -> assert false
  in
  let total = Em.Stats.ios stats in
  let mem_ok = stats.Em.Stats.mem_peak <= cfg.mem in
  let retries = stats.Em.Stats.retries in
  (answers, total, store, mem_ok, retries, List.rev !crash_log, List.rev !dumps)

let run ?on_crash cfg =
  let oracle_answers, oracle_ios, _, oracle_mem_ok, _, _, _ =
    run_session cfg ~crash_after:[]
  in
  let answers, chaos_ios, store, chaos_mem_ok, retries, crash_log, flight_dumps =
    run_session ?on_crash ?flight_dir:cfg.flight_dir cfg ~crash_after:cfg.crash_after
  in
  let crashes = List.length crash_log in
  let saves = Em.Checkpoint.saves store in
  let save_ios = Em.Checkpoint.save_ios store in
  let loads = Em.Checkpoint.loads store in
  let load_ios = Em.Checkpoint.load_ios store in
  (* The k-crash bound: chaos <= oracle + its actual resume loads + per
     crash one checkpoint save and one re-sorted memory load (read + write
     back, in blocks) of slack for the policy's save granularity. *)
  let per_save = if saves = 0 then 1 else (save_ios + saves - 1) / saves in
  let resort_allowance =
    let big =
      let ctx =
        Em.Ctx.create ?backend:cfg.backend ~disks:cfg.disks
          (Em.Params.create ~mem:cfg.mem ~block:cfg.block)
      in
      let b = Emalg.Layout.big_load ctx in
      Em.Ctx.close ctx;
      b
    in
    (2 * ((big + cfg.block - 1) / cfg.block)) + 4
  in
  let allowed_ios = oracle_ios + load_ios + (crashes * (per_save + resort_allowance)) in
  let answers_match =
    Array.length answers = Array.length oracle_answers
    && Array.for_all2 (fun a b -> a = b) answers oracle_answers
  in
  {
    flight_dumps;
    answers_match;
    crashes;
    oracle_ios;
    chaos_ios;
    saves;
    loads;
    save_ios;
    load_ios;
    resort_allowance;
    allowed_ios;
    within_bound = chaos_ios <= allowed_ios;
    retries;
    mem_ok = oracle_mem_ok && chaos_mem_ok;
    crash_log;
  }

(* Evenly spread crash points for CLI / bench schedules: k kills after
   queries q, 2q, ... with q = queries / (k + 1) (never after the last
   query — there would be nothing left to observe). *)
let spread_crashes ~queries ~k =
  if k <= 0 || queries < 2 then []
  else
    let step = max 1 (queries / (k + 1)) in
    List.init (min k (queries - 1)) (fun i -> min (queries - 1) ((i + 1) * step))
