(** Online bound-drift watchdog for serving sessions.

    Folds each query's measured cumulative I/O cost into the predicted
    online-multiselection envelope [sort(n) + per_query * q] (with
    [sort] = {!Bounds.sort}) and raises an {!Alert} when the running
    ratio measured/predicted exceeds a blessed ceiling — the live
    counterpart of the offline [online_amortized] bench gate.

    The ratio is a pure function of simulated costs, so for a fixed
    geometry, workload and seed it is byte-deterministic: a clean run
    stays {!Silent} on every query, and an injected cost inflation trips
    the watchdog reproducibly. *)

type t

type verdict = Silent | Alert of { ratio : float; ceiling : float }

val default_ceiling : float
(** 6.0 — roughly twice the worst running ratio the golden serve workload
    exhibits, an order of magnitude below genuine inflation. *)

val create : ?ceiling:float -> ?per_query:float -> Em.Params.t -> n:int -> t
(** A watchdog for a session over [n] elements on the given machine
    geometry.  [per_query] (default 2.0) is the amortized per-query I/O
    allowance added to the [sort n] base.
    @raise Invalid_argument if [ceiling <= 0] or [per_query < 0]. *)

val observe : t -> queries:int -> total_ios:int -> verdict
(** Fold the session's cumulative cost after its [queries]-th query.
    Returns {!Alert} whenever the running ratio exceeds the ceiling
    (every such query, not just the first — callers de-duplicate). *)

val predicted : t -> queries:int -> float
(** The envelope value [sort(n) + per_query * queries]. *)

val ratio : t -> float
(** Ratio at the most recent {!observe} (0 before the first). *)

val worst : t -> float
(** Largest ratio seen so far. *)

val ceiling : t -> float
val alerts : t -> int
(** Number of observations that exceeded the ceiling. *)

val tripped : t -> bool
(** [alerts t > 0] — sticky; drives [serve --strict-bounds]. *)
