(** The approximate K-splitters problem (Section 5.1 / Theorem 5): find
    [K - 1] elements of [S] such that every induced partition
    [S ∩ (s_{i-1}, s_i]] has between [a] and [b] elements.

    The three regimes, each with the paper's optimal algorithm:

    - {b right-grounded} ([b = N]): take [aK] arbitrary elements [S'] (we
      take the first [aK]) and return the [1/K]-quantiles of [S'] via
      multi-selection — [O((1 + aK/B) lg_{M/B} (K/B))] I/Os, {e sublinear}
      when [aK] is small;
    - {b left-grounded} ([a = 0]): select ranks [ib] for [i < K' = ceil(N/b)]
      via multi-selection ([O((N/B) lg_{M/B} (N/(bB)))] I/Os), then pad with
      [K - K'] arbitrary other elements (found by a position-merge scan, so
      padding never costs more than a sort of [K'] integers plus one scan);
    - {b two-sided}: the paper's [K' = (bK - N) / (b - a)] split into the
      [aK'] smallest elements [S_low] and the rest, even quantiles on each
      side (plus a shortcut to plain [1/K]-quantiles when [a >= N/2K] or
      [b <= 2N/K]).

    Splitters are returned as a vector (so [K] may exceed memory), in no
    particular order (the problem statement allows any order). *)

val solve :
  ('a -> 'a -> int) -> 'a Em.Vec.t -> Problem.spec -> 'a Em.Vec.t
(** Dispatch on the spec's {!Problem.variant}.  The input is preserved.
    @raise Invalid_argument if the spec is invalid or does not match the
    input length. *)

val right_grounded : ('a -> 'a -> int) -> 'a Em.Vec.t -> Problem.spec -> 'a Em.Vec.t
val left_grounded : ('a -> 'a -> int) -> 'a Em.Vec.t -> Problem.spec -> 'a Em.Vec.t
val two_sided : ('a -> 'a -> int) -> 'a Em.Vec.t -> Problem.spec -> 'a Em.Vec.t

val exact_quantiles : ('a -> 'a -> int) -> 'a Em.Vec.t -> k:int -> 'a Em.Vec.t
(** [exact_quantiles cmp v ~k] returns the exact (1/k)-quantile elements of
    [v] (ranks [ceil (i*n/k)]) via multi-selection — the equi-depth
    histogram boundaries from the paper's introduction, as a public
    convenience.  Routed through {!Multi_select.select_vec}, i.e. a batch
    drain of an {!Emalg.Online_select} session. *)

val quantiles : ('a -> 'a -> int) -> 'a Em.Vec.t -> k:int -> 'a Em.Vec.t
[@@deprecated "use Splitters.exact_quantiles"]
(** Former name of {!exact_quantiles}; kept as a shim so existing examples
    keep compiling. *)

val quantile_ranks : n:int -> k:int -> int array
(** The even cut ranks [ceil (i * n / k)] for [i = 1 .. k-1] — the
    [1/K]-quantile rank plan used by the shortcuts and baselines. *)
