(* Online bound-drift watchdog: the serve-mode analogue of the offline
   `online_amortized` bench gate.

   The online-multiselection bound says a session answering q queries over
   n elements spends O(sort(n) + q) I/Os amortized, with sort(n) the
   Aggarwal–Vitter sorting bound (Core.Bounds.sort).  The watchdog folds
   every query's measured cumulative cost into that predicted envelope

     predicted(q) = sort(n) + per_query * q

   and alerts when the running ratio measured/predicted exceeds a blessed
   ceiling.  The ratio, like every simulated-cost quantity, is
   deterministic for a fixed geometry/workload — the ceiling is calibrated
   by bench/online.ml and golden-gated in test/golden/ratios.expected. *)

type verdict = Silent | Alert of { ratio : float; ceiling : float }

type t = {
  predicted_base : float;  (* sort(n) *)
  per_query : float;
  ceiling : float;
  mutable last_ratio : float;
  mutable worst_ratio : float;
  mutable alerts : int;
}

(* Comfortably above the ~3.2 running ratio the golden serve workload
   reaches (n = 20000, M = 4096, B = 64) and the bench's blessed
   online_drift ceiling, while still an order of magnitude below what a
   genuine cost inflation produces. *)
let default_ceiling = 6.0

let create ?(ceiling = default_ceiling) ?(per_query = 2.0) params ~n =
  if not (ceiling > 0.) then invalid_arg "Drift.create: ceiling must be > 0";
  if not (per_query >= 0.) then invalid_arg "Drift.create: per_query must be >= 0";
  {
    predicted_base = Bounds.sort params ~n;
    per_query;
    ceiling;
    last_ratio = 0.;
    worst_ratio = 0.;
    alerts = 0;
  }

let predicted t ~queries =
  t.predicted_base +. (t.per_query *. float_of_int queries)

let observe t ~queries ~total_ios =
  let ratio = float_of_int total_ios /. predicted t ~queries in
  t.last_ratio <- ratio;
  if ratio > t.worst_ratio then t.worst_ratio <- ratio;
  if ratio > t.ceiling then begin
    t.alerts <- t.alerts + 1;
    Alert { ratio; ceiling = t.ceiling }
  end
  else Silent

let ratio t = t.last_ratio
let worst t = t.worst_ratio
let ceiling t = t.ceiling
let alerts t = t.alerts
let tripped t = t.alerts > 0
