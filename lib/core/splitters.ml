(* Approximate K-splitters (Theorem 5); see the interface. *)

let quantile_ranks ~n ~k =
  Array.init (k - 1) (fun i -> (((i + 1) * n) + k - 1) / k)

(* Stream-generate the ranks [f 1, f 2, ..., f count] to disk. *)
let gen_ranks ictx ~count f =
  Em.Writer.with_writer ictx (fun w ->
      for i = 1 to count do
        Em.Writer.push w (f i)
      done)

let check v spec =
  Problem.validate_exn spec;
  if spec.Problem.n <> Em.Vec.length v then
    invalid_arg "Splitters: spec.n does not match the input length"

(* Any K-1 elements solve an unconstrained instance; take the first ones. *)
let arbitrary_splitters v ~count = Emalg.Scan.prefix v count

let right_grounded cmp v spec =
  check v spec;
  let { Problem.n = _; k; a; _ } = spec in
  let ctx = Em.Vec.ctx v in
  if k = 1 then Em.Vec.empty ctx
  else if a = 0 then arbitrary_splitters v ~count:(k - 1)
  else begin
    let ictx : int Em.Ctx.t = Em.Ctx.linked ctx in
    let s' = Emalg.Scan.prefix v (a * k) in
    let ranks = gen_ranks ictx ~count:(k - 1) (fun i -> i * a) in
    let out = Multi_select.select_vec cmp s' ~ranks in
    Em.Vec.free s';
    Em.Vec.free ranks;
    out
  end

let left_grounded cmp v spec =
  check v spec;
  let { Problem.n; k; b; _ } = spec in
  let ctx = Em.Vec.ctx v in
  if k = 1 then Em.Vec.empty ctx
  else begin
    let k' = (n + b - 1) / b in
    let ictx : int Em.Ctx.t = Em.Ctx.linked ctx in
    if k' >= k then begin
      (* No padding: plain multi-selection at ranks i*b. *)
      let ranks = gen_ranks ictx ~count:(k - 1) (fun i -> i * b) in
      let out = Multi_select.select_vec cmp v ~ranks in
      Em.Vec.free ranks;
      out
    end
    else begin
      (* Base splitters at ranks i*b (selected with positions so the padding
         scan can exclude them), then the first K-K' other elements. *)
      let pad = k - k' in
      let tcmp = Emalg.Order.tagged cmp in
      let pctx : ('a * int) Em.Ctx.t = Em.Ctx.linked ctx in
      let tv = Emalg.Scan.mapi_into pctx (fun i e -> (e, i)) v in
      let base =
        if k' = 1 then Em.Vec.empty pctx
        else begin
          let ranks = gen_ranks ictx ~count:(k' - 1) (fun i -> i * b) in
          let out = Multi_select.select_vec tcmp tv ~ranks in
          Em.Vec.free ranks;
          out
        end
      in
      let positions = Emalg.Scan.map_into ictx snd base in
      let sorted_positions = Emalg.External_sort.sort Int.compare positions in
      Em.Vec.free positions;
      let out =
        Em.Writer.with_writer ctx (fun w ->
            Emalg.Scan.iter (fun (e, _) -> Em.Writer.push w e) base;
            Em.Reader.with_reader v (fun rv ->
                Em.Reader.with_reader sorted_positions (fun rp ->
                    let pos = ref (-1) in
                    let taken = ref 0 in
                    while !taken < pad do
                      let e = Em.Reader.next rv in
                      incr pos;
                      if Em.Reader.has_next rp && Em.Reader.peek rp = !pos then
                        ignore (Em.Reader.next rp)
                      else begin
                        Em.Writer.push w e;
                        incr taken
                      end
                    done)))
      in
      Em.Vec.free sorted_positions;
      Em.Vec.free base;
      Em.Vec.free tv;
      out
    end
  end

let exact_quantiles cmp v ~k =
  if k < 1 then invalid_arg "Splitters.exact_quantiles: k must be >= 1";
  if k > Em.Vec.length v then
    invalid_arg "Splitters.exact_quantiles: k exceeds the input length";
  let ctx = Em.Vec.ctx v in
  let n = Em.Vec.length v in
  let ictx : int Em.Ctx.t = Em.Ctx.linked ctx in
  let ranks = gen_ranks ictx ~count:(k - 1) (fun i -> ((i * n) + k - 1) / k) in
  let out = Multi_select.select_vec cmp v ~ranks in
  Em.Vec.free ranks;
  out

let quantiles = exact_quantiles

let two_sided cmp v spec =
  check v spec;
  let { Problem.n; k; a; b } = spec in
  let ctx = Em.Vec.ctx v in
  if k = 1 then Em.Vec.empty ctx
  else if 2 * a * k >= n || b * k <= 2 * n then exact_quantiles cmp v ~k
  else begin
    let k' = ((b * k) - n) / (b - a) in
    if k' < 1 || k' > k - 1 then
      invalid_arg "Splitters.two_sided: internal error (K' out of range)";
    let low, high, x = Emalg.Em_select.split_at cmp v ~rank:(a * k') in
    let h = n - (a * k') in
    let g = k - k' in
    if h / g < a || ((h + g - 1) / g) > b then
      invalid_arg "Splitters.two_sided: internal error (S_high cannot be cut evenly)";
    let low_out = if k' = 1 then Em.Vec.empty ctx else exact_quantiles cmp low ~k:k' in
    let high_out = if g = 1 then Em.Vec.empty ctx else exact_quantiles cmp high ~k:g in
    let out =
      Em.Writer.with_writer ctx (fun w ->
          Emalg.Scan.append w low_out;
          Em.Writer.push w x;
          Emalg.Scan.append w high_out)
    in
    List.iter Em.Vec.free [ low; high; low_out; high_out ];
    out
  end

let solve cmp v spec =
  check v spec;
  match Problem.classify spec with
  | Problem.Unconstrained ->
      if spec.Problem.k = 1 then Em.Vec.empty (Em.Vec.ctx v)
      else arbitrary_splitters v ~count:(spec.Problem.k - 1)
  | Problem.Right_grounded -> right_grounded cmp v spec
  | Problem.Left_grounded -> left_grounded cmp v spec
  | Problem.Two_sided -> two_sided cmp v spec
