(** The serve-session engine behind [em_repro serve].

    One long-lived {!Emalg.Online_select} session answering newline-delimited
    query batches with JSON reply lines (NDJSON).  Lives in the library so
    the hardened paths — typed fault replies, query-level retries, budget
    aborts, batch exception safety, checkpoint/state-file round trips — are
    unit-testable without a process or a socket; [bin/serve.ml] adds flag
    parsing, signal handling and the accept loop.

    {b Protocol} (one input line = one batch, [';']-separated):
    [select K], [quantile PHI], [range A B], [stats], [metrics],
    [intervals], [profile], [checkpoint], [quit].

    {b Error-reply grammar:}
    - [{"error":"<message>"}] — parse or validation failure (the query never
      reached the session);
    - [{"error":"<code>","detail":"...","retries":N}] — a typed {!Em.Em_error}
      escaped the per-I/O recovery and [N] query-level retries; [<code>] is
      one of [io_fault], [read_failed], [write_failed], [corrupt_block],
      [crashed];
    - [{"error":"budget_exceeded","budget":B,"spent":S}] — the per-query I/O
      budget ran out; refinement already paid for is kept.

    All emitted numbers are simulated costs, so transcripts — including
    error replies under a seeded fault plan — are byte-deterministic for a
    fixed geometry/workload/seed. *)

type t
(** A live server: session + profiler + metrics registry + recovery
    configuration. *)

type meta = {
  m_n : int;
  m_mem : int;
  m_block : int;
  m_disks : int;
  m_workload : string;
  m_seed : int;
}
(** The machine/workload identity a state file is bound to; [--restore]
    refuses a file written for a different one. *)

val create :
  ?checkpoint_every:int ->
  ?io_budget:int ->
  ?max_retries:int ->
  ?state_path:string ->
  ?restore:bool ->
  meta:meta ->
  int Em.Ctx.t ->
  int Em.Vec.t ->
  t
(** [create ~meta ctx v] wraps [v] in a fresh session.  [checkpoint_every]
    enables the automatic every-k-splits checkpoint policy; [state_path]
    mirrors every checkpoint to a Marshal state file (and by itself enables
    explicit-only checkpointing); [restore = true] resumes from the state
    file if it exists (fresh start otherwise); [io_budget] bounds any single
    query's metered I/Os; [max_retries] (default 3) bounds query-level
    retries on typed faults.  With none of the optional arguments the server
    is byte-identical to the historical one.
    @raise Failure if the state file is corrupt or bound to a different
    machine/workload. *)

val session : t -> int Emalg.Online_select.t
val ctx : t -> int Em.Ctx.t
val input : t -> int Em.Vec.t

val restored : t -> bool
(** Whether {!create} resumed from a state file. *)

val crashed : t -> bool
(** Whether a [crashed] machine fault stopped the query loop; {!shutdown}
    then skips the final checkpoint (a crashed process does not get to
    write). *)

(** {2 Protocol} *)

type command =
  | Query of Emalg.Online_select.query
  | Stats
  | Metrics
  | Intervals
  | Profile
  | Checkpoint
  | Quit

val parse_command : string -> (command, string) result
(** Parse one query.  Validation happens here so malformed input never
    reaches the session: [quantile] requires a finite [phi] with
    [0 < phi <= 1] (NaN/infinities rejected), [range a b] requires
    [a <= b]. *)

val run_command : t -> (string -> unit) -> string -> bool
(** [run_command srv emit str] parses and executes one query, calling [emit]
    with exactly one reply line.  Never raises: every failure — parse error,
    [Invalid_argument], typed fault after retries, budget abort, even a
    programming error — becomes an error reply.  Returns [false] when the
    loop should stop ([quit], or a [crashed] machine fault). *)

val run_batch : t -> (string -> unit) -> string -> bool
(** One input line = one batch; multi-query batches share a scheduling
    window ({!Em.Ctx.io_window}).  Exception-safe: a failing query inside
    the window still closes it and the remaining queries of the batch run. *)

val serve_channels : ?should_stop:(unit -> bool) -> t -> in_channel -> out_channel -> bool
(** Serve lines from a channel until EOF (returns [true]: accept another
    client), [quit]/crash (returns [false]), or [should_stop ()] turns true
    (returns [false]; polled between lines and after interrupted reads, the
    signal-handler hook for graceful shutdown). *)

(** {2 JSON views} *)

val greeting_json : t -> string
val summary_json : t -> string
val final_json : ?shutdown:string -> t -> string
val json_escape : string -> string

(** {2 Checkpoint state file} *)

val checkpoint_now : t -> unit
(** Save a session checkpoint and mirror it to the state file (if any) —
    the [checkpoint] command, also used by signal-driven shutdown. *)

val shutdown_checkpoint : t -> unit
(** Graceful-shutdown persistence: take a final checkpoint and mirror the
    state file — unless no store is attached (no-op) or the machine crashed
    (a crashed process does not get to write; the pre-crash checkpoint is
    the truth). *)

val close : t -> unit
(** Close the session and drop its cache pages.  The context stays open
    (the caller owns it). *)
