(** The serve-session engine behind [em_repro serve].

    One long-lived {!Emalg.Online_select} session answering newline-delimited
    query batches with JSON reply lines (NDJSON).  Lives in the library so
    the hardened paths — typed fault replies, query-level retries, budget
    aborts, batch exception safety, checkpoint/state-file round trips,
    telemetry frames, flight-recorder dumps, the drift watchdog — are
    unit-testable without a process or a socket; [bin/serve.ml] adds flag
    parsing, signal handling and the accept loop.

    {b Protocol} (one input line = one batch, [';']-separated):
    [select K], [quantile PHI], [range A B], [stats], [metrics],
    [intervals], [profile], [checkpoint], [quit].

    {b Request spans.}  Every admitted query gets a monotonically-assigned
    id, echoed as ["id"] in its reply next to a compact ["cost"] object.
    The same span feeds the per-session {!Em.Metrics} histograms
    ([query_ios], [query_rounds], and a wall-clock latency histogram kept
    in a separate registry), the {!Em.Flight_recorder} journal, the
    {!Drift} watchdog and the optional {!Em.Telemetry} stream.

    {b Error-reply grammar:}
    - [{"error":"<message>"}] — parse failure (no id: the query was never
      admitted);
    - [{"id":N,"error":"<message>"}] — validation failure after admission;
    - [{"id":N,"error":"<code>","detail":"...","retries":R}] — a typed
      {!Em.Em_error} escaped the per-I/O recovery and [R] query-level
      retries; [<code>] is one of [io_fault], [read_failed],
      [write_failed], [corrupt_block], [crashed];
    - [{"id":N,"error":"budget_exceeded","budget":B,"spent":S}] — the
      per-query I/O budget ran out; refinement already paid for is kept.

    {b Determinism contract.}  Every emitted number is a simulated cost,
    except inside ["wall":{...}] sub-objects — the only place
    wall-clock-derived values appear.  Transcripts with the wall objects
    normalised are byte-deterministic for a fixed geometry/workload/seed,
    including error replies under a seeded fault plan. *)

type t
(** A live server: session + profiler + metrics registries + flight
    recorder + drift watchdog + recovery configuration. *)

type meta = {
  m_n : int;
  m_mem : int;
  m_block : int;
  m_disks : int;
  m_workload : string;
  m_seed : int;
}
(** The machine/workload identity a state file is bound to; [--restore]
    refuses a file written for a different one. *)

val create :
  ?checkpoint_every:int ->
  ?io_budget:int ->
  ?max_retries:int ->
  ?state_path:string ->
  ?restore:bool ->
  ?telemetry:Em.Telemetry.t ->
  ?flight_capacity:int ->
  ?flight_dir:string ->
  ?drift_ceiling:float ->
  ?clock:(unit -> float) ->
  meta:meta ->
  int Em.Ctx.t ->
  int Em.Vec.t ->
  t
(** [create ~meta ctx v] wraps [v] in a fresh session.  [checkpoint_every]
    enables the automatic every-k-splits checkpoint policy; [state_path]
    mirrors every checkpoint to a Marshal state file (and by itself enables
    explicit-only checkpointing); [restore = true] resumes from the state
    file if it exists (fresh start otherwise), including the admitted
    query-id/by-kind counters; [io_budget] bounds any single query's
    metered I/Os; [max_retries] (default 3) bounds query-level retries on
    typed faults.

    Observability: [telemetry] attaches a frame emitter (ticked after every
    admitted query, fired unconditionally on the first drift alert and by
    {!finalize}); [flight_capacity] sizes the flight-recorder journal
    (default {!Em.Flight_recorder.default_capacity}); [flight_dir] enables
    post-mortem dumps ([postmortem-NNN.json], created on demand) on typed
    error replies, budget aborts, crashes and shutdown; [drift_ceiling]
    overrides {!Drift.default_ceiling}; [clock] (default
    [Unix.gettimeofday]) is the wall clock, injectable for deterministic
    tests.  With none of the optional arguments the server's protocol
    behaviour is unchanged.
    @raise Failure if the state file is corrupt or bound to a different
    machine/workload. *)

val session : t -> int Emalg.Online_select.t
val ctx : t -> int Em.Ctx.t
val input : t -> int Em.Vec.t

val restored : t -> bool
(** Whether {!create} resumed from a state file. *)

val crashed : t -> bool
(** Whether a [crashed] machine fault stopped the query loop; {!shutdown}
    then skips the final checkpoint (a crashed process does not get to
    write). *)

val queries_admitted : t -> int
(** Queries assigned an id so far (successful or not; parse failures are
    not admitted).  Also the id of the most recent admitted query. *)

val drift : t -> Drift.t
(** The session's bound-drift watchdog ([serve --strict-bounds] exits
    nonzero when it {!Drift.tripped}). *)

val flight_recorder : t -> Em.Flight_recorder.t
val flight_dumps : t -> int
(** Post-mortem files written to [flight_dir] so far. *)

val flight_dump : t -> reason:string -> string option
(** Force a post-mortem dump now; returns the artifact path, or [None]
    when no [flight_dir] is configured. *)

(** {2 Protocol} *)

type command =
  | Query of Emalg.Online_select.query
  | Stats
  | Metrics
  | Intervals
  | Profile
  | Checkpoint
  | Quit

val parse_command : string -> (command, string) result
(** Parse one query.  Validation happens here so malformed input never
    reaches the session: [quantile] requires a finite [phi] with
    [0 < phi <= 1] (NaN/infinities rejected), [range a b] requires
    [a <= b]. *)

val run_command : t -> (string -> unit) -> string -> bool
(** [run_command srv emit str] parses and executes one query, calling [emit]
    with exactly one reply line.  Never raises: every failure — parse error,
    [Invalid_argument], typed fault after retries, budget abort, even a
    programming error — becomes an error reply.  Returns [false] when the
    loop should stop ([quit], or a [crashed] machine fault). *)

val run_batch : t -> (string -> unit) -> string -> bool
(** One input line = one batch; multi-query batches share a scheduling
    window ({!Em.Ctx.io_window}).  Exception-safe: a failing query inside
    the window still closes it and the remaining queries of the batch run. *)

val serve_channels : ?should_stop:(unit -> bool) -> t -> in_channel -> out_channel -> bool
(** Serve lines from a channel until EOF (returns [true]: accept another
    client), [quit]/crash (returns [false]), or [should_stop ()] turns true
    (returns [false]; polled between lines and after interrupted reads, the
    signal-handler hook for graceful shutdown). *)

(** {2 JSON views} *)

val greeting_json : t -> string
val summary_json : t -> string

val final_json : ?shutdown:string -> t -> string
(** The closing summary line, including the drift verdict and a
    wall-uptime object.  Pure view — see {!finalize} for the effectful
    end-of-session sequence. *)

val finalize : ?shutdown:string -> t -> string
(** End-of-session telemetry: emit (and close) the final telemetry frame,
    write the shutdown post-mortem (reason ["shutdown"],
    ["shutdown:<reason>"] or ["shutdown:crashed"]), then return
    {!final_json}. *)

val json_escape : string -> string

(** {2 Checkpoint state file} *)

val checkpoint_now : t -> unit
(** Save a session checkpoint and mirror it to the state file (if any) —
    the [checkpoint] command, also used by signal-driven shutdown. *)

val shutdown_checkpoint : t -> unit
(** Graceful-shutdown persistence: take a final checkpoint and mirror the
    state file — unless no store is attached (no-op) or the machine crashed
    (a crashed process does not get to write; the pre-crash checkpoint is
    the truth). *)

val close : t -> unit
(** Close the session and drop its cache pages.  The context stays open
    (the caller owns it). *)
