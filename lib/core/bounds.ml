let fanout p = float_of_int p.Em.Params.mem /. float_of_int p.Em.Params.block

let lg p y =
  if y <= 1. then 1. else Float.max 1. (Float.log y /. Float.log (fanout p))

let fi = float_of_int
let fdiv a b = fi a /. fi b

let scan p ~n = fdiv n p.Em.Params.block
let sort p ~n = scan p ~n *. lg p (fdiv n p.Em.Params.block)

(* D-disk round forms: every Table-1 formula counts block transfers, and a
   D-disk machine retires up to D of them per parallel round, so the
   predicted round count is the I/O prediction over D (Vitter-Shriver style
   [N/(DB) lg_{M/B}] bounds).  At D = 1 these coincide with the I/O forms. *)
let rounds_of p ios = ios /. fi p.Em.Params.disks
let scan_rounds p ~n = rounds_of p (scan p ~n)
let sort_rounds p ~n = rounds_of p (sort p ~n)

let splitters_right_lower p { Problem.k; a; _ } =
  let b = p.Em.Params.block in
  (1. +. fdiv (a * k) b) *. lg p (fdiv k b)

let splitters_right_upper = splitters_right_lower

let splitters_left_lower p { Problem.n; b; _ } =
  let blk = p.Em.Params.block in
  fdiv n blk *. lg p (fdiv n (b * blk))

let splitters_left_upper = splitters_left_lower

let splitters_two_sided_lower p spec =
  Float.max (splitters_right_lower p spec) (splitters_left_lower p spec)

let splitters_two_sided_upper p spec =
  let blk = p.Em.Params.block in
  let { Problem.n; k; a; b } = spec in
  (fdiv (a * k) blk *. lg p (fdiv k blk)) +. (fdiv n blk *. lg p (fdiv n (b * blk)))

let partition_right_lower p { Problem.n; _ } = scan p ~n

let partition_right_upper p { Problem.n; k; a; _ } =
  let blk = p.Em.Params.block in
  scan p ~n +. (fdiv (a * k) blk *. lg p (Float.min (fi k) (fdiv (a * k) blk)))

let partition_left_lower p { Problem.n; b; _ } =
  let blk = p.Em.Params.block in
  scan p ~n *. lg p (Float.min (fdiv n b) (fdiv n blk))

let partition_left_upper = partition_left_lower

let partition_two_sided_lower = partition_left_lower

let partition_two_sided_upper p spec =
  let blk = p.Em.Params.block in
  let { Problem.n; k; a; b } = spec in
  (fdiv (a * k) blk *. lg p (Float.min (fi k) (fdiv (a * k) blk)))
  +. (scan p ~n *. lg p (Float.min (fdiv n b) (fdiv n blk)))

let multi_select p ~n ~k =
  let blk = p.Em.Params.block in
  scan p ~n *. lg p (fdiv k blk)

let multi_partition p ~n ~k = scan p ~n *. lg p (fi k)

(* Histogram sort with sampling (Yang–Harsh–Solomonik): iterative splitter
   agreement across P shards.  Each refinement iteration has every shard
   contribute [m] evenly-spaced (by local rank) candidates per unresolved
   boundary; one allgather of candidates plus one allgather of local
   histograms shrinks each boundary's global-rank uncertainty from [W] to at
   most [W/(m+1) + P + 1].  Summing the slop geometrically, [r] iterations
   take the initial uncertainty [N] down to [N/(m+1)^r + 2(P+1)], after
   which a single gather of the residual interval finishes exactly.  The
   formulas below are that guarantee made evaluable: [hss_per_round] is the
   smallest [m] whose [r]-iteration shrink reaches the resolution target,
   and the round/sample budgets are the corresponding worst cases that
   [Bound_track] gates measured agreements against. *)

let hss_slop ~shards = 2 * (shards + 1)

(* Residual interval size at which gathering the whole interval is cheaper
   than refining further.  Must exceed the accumulated slop so the gather is
   guaranteed to trigger once the multiplicative shrink is exhausted. *)
let hss_gather_cap ~shards = max 64 (6 * (shards + 1))

(* Effective shrink target: resolve down to the tolerance (or the gather
   cap, whichever is coarser), discounting the additive slop the shrink
   cannot remove. *)
let hss_resolve ~shards ~tol =
  max 1 (max tol (hss_gather_cap ~shards) - hss_slop ~shards)

let hss_per_round ~shards ~tol ~rounds ~n =
  let x = fdiv n (hss_resolve ~shards ~tol) in
  if x <= 1. then 1
  else max 1 (int_of_float (ceil (x ** (1. /. fi rounds))) - 1)

(* Round-optimal iteration count: minimise the [r * x^(1/r)] sample-volume
   shape (the Yang–Harsh–Solomonik tradeoff with the problem's shrink ratio
   [x]) over small [r].  Ties go to fewer iterations — rounds are the
   expensive resource. *)
let hss_rounds ~shards ~tol ~n =
  let x = Float.max 2. (fdiv n (hss_resolve ~shards ~tol)) in
  let cost r = fi r *. (x ** (1. /. fi r)) in
  let best = ref 1 in
  for r = 2 to 8 do
    if cost r < cost !best then best := r
  done;
  !best

(* Two allgather supersteps per refinement iteration (candidates, then
   histograms), plus one gather and one broadcast superstep for the exact
   finish of any boundaries the tolerance did not already resolve. *)
let hss_comm_rounds_upper ~rounds = fi ((2 * rounds) + 2)

(* Total candidates drawn: [m] per shard per unresolved boundary per
   iteration. *)
let hss_sample_upper ~shards ~boundaries ~rounds ~per_round =
  fi (rounds * boundaries * shards * per_round)

let dispatch spec ~unconstrained ~right ~left ~two =
  match Problem.classify spec with
  | Problem.Unconstrained -> unconstrained
  | Problem.Right_grounded -> right
  | Problem.Left_grounded -> left
  | Problem.Two_sided -> two

let splitters_lower p spec =
  dispatch spec ~unconstrained:1.
    ~right:(splitters_right_lower p spec)
    ~left:(splitters_left_lower p spec)
    ~two:(splitters_two_sided_lower p spec)

let splitters_upper p spec =
  dispatch spec
    ~unconstrained:(fdiv spec.Problem.k p.Em.Params.block)
    ~right:(splitters_right_upper p spec)
    ~left:(splitters_left_upper p spec)
    ~two:(splitters_two_sided_upper p spec)

let partitioning_lower p spec =
  dispatch spec ~unconstrained:1.
    ~right:(partition_right_lower p spec)
    ~left:(partition_left_lower p spec)
    ~two:(partition_two_sided_lower p spec)

let partitioning_upper p spec =
  dispatch spec
    ~unconstrained:(scan p ~n:spec.Problem.n)
    ~right:(partition_right_upper p spec)
    ~left:(partition_left_upper p spec)
    ~two:(partition_two_sided_upper p spec)
