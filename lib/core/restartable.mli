(** Crash-restartable multi-selection (Theorem 4 under a crash-fault model).

    Layers {!Multi_select} on the generic {!Emalg.Restart.drive} harness:
    the multi-partition at every [m]-th rank is one checkpointed step, each
    batch of [<= m] ranks is another, and batch results are spilled to disk
    so the checkpoint state holds only block handles.  With [k] crashes the
    total I/O stays within the crash-free cost plus checkpoint overhead plus
    [k] times (one step + one resume); the output is identical to
    {!Multi_select.select}. *)

type ('s, 'r) step_kind = ('s, 'r) Emalg.Restart.step = Next of 's | Done of 'r

val select :
  ?max_restarts:int ->
  ('a -> 'a -> int) ->
  'a Em.Vec.t ->
  ranks:int array ->
  'a array Emalg.Restart.outcome
(** Ranks must be strictly increasing in [1 .. length v] (checked up front,
    raising [Invalid_argument]).  The input vector is consumed only on
    success paths of intermediate partitions; the original [v] is preserved.
    See {!Emalg.Restart.drive} for [max_restarts] and the outcome record. *)
