(* Crash-restartable multi-selection over Emalg.Restart.drive; see the
   interface.  The step boundaries are the natural phase boundaries of
   Theorem 4's general case: one step for the multi-partition at every m-th
   rank, then one step per batch of <= m ranks. *)

type ('s, 'r) step_kind = ('s, 'r) Emalg.Restart.step = Next of 's | Done of 'r

type 'a state =
  | Start
  | Selecting of {
      parts : 'a Em.Vec.t list;  (* remaining partitions, leftmost first *)
      batch_idx : int;  (* index of the next rank batch *)
      results : 'a Em.Vec.t list;  (* selected batches on disk, newest first *)
    }

let vec_words v = Em.Vec.num_blocks v + 2

let state_words = function
  | Start -> 2
  | Selecting { parts; results; _ } ->
      3 + List.fold_left (fun acc v -> acc + vec_words v) 0 (parts @ results)

let check_ranks v ranks =
  let n = Em.Vec.length v in
  let prev = ref 0 in
  Array.iter
    (fun r ->
      if r <= !prev || r > n then
        invalid_arg "Restartable.select: ranks must be strictly increasing in [1, length v]";
      prev := r)
    ranks

let step cmp v ranks state =
  let ctx = Em.Vec.ctx v in
  let m = Multi_select.batch_size ctx in
  let kcount = Array.length ranks in
  match state with
  | Start ->
      if kcount = 0 then Done [||]
      else if kcount <= m then Done (Multi_select.select cmp v ~ranks)
      else begin
        let nbatches = (kcount + m - 1) / m in
        (* Partition boundaries are the last rank of every batch but the
           final one, so batch offsets need no extra storage. *)
        let boundary = Array.init (nbatches - 1) (fun j -> ranks.(((j + 1) * m) - 1)) in
        let ictx : int Em.Ctx.t = Em.Ctx.linked ctx in
        let bounds = Emalg.Scan.vec_of_array_io ictx boundary in
        let parts = Multi_partition.partition cmp v ~bounds in
        Em.Vec.free bounds;
        Next (Selecting { parts = Array.to_list parts; batch_idx = 0; results = [] })
      end
  | Selecting { parts = []; results; _ } ->
      (* Load every batch's results, then free their blocks.  All metered
         reads happen before any free: a crash mid-load leaves the result
         vectors intact for the resumed step. *)
      let loaded = List.rev_map Emalg.Scan.array_of_vec_io results in
      List.iter Em.Vec.free results;
      Done (Array.concat loaded)
  | Selecting { parts = part :: rest; batch_idx; results } ->
      let lo = batch_idx * m in
      let hi = min kcount (lo + m) in
      let offset = if batch_idx = 0 then 0 else ranks.(lo - 1) in
      let batch = Array.init (hi - lo) (fun i -> ranks.(lo + i) - offset) in
      let selected = Multi_select.select cmp part ~ranks:batch in
      (* Spill the batch's results so the checkpoint holds only handles. *)
      let rv = Emalg.Scan.vec_of_array_io ctx selected in
      Em.Vec.free part;
      Next (Selecting { parts = rest; batch_idx = batch_idx + 1; results = rv :: results })

let select ?max_restarts cmp v ~ranks =
  let ctx = Em.Vec.ctx v in
  Emalg.Layout.require_min_geometry ctx;
  check_ranks v ranks;
  Emalg.Restart.drive ctx ?max_restarts ~init:Start ~words:state_words
    ~step:(step cmp v ranks) ()
