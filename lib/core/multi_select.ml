(* Multi-selection (Theorem 4); see the interface for the structure. *)

let batch_size ctx = Intermixed.max_groups ctx

(* Base case: at most [batch_size] ranks, given in memory (strictly
   increasing, already validated, re-based to this vector).  The rank/target
   arrays the caller holds are covered by Intermixed's headroom discount.
   The in-memory threshold leaves room for the general case's stream buffers
   and rank arrays (up to four blocks plus a few rank batches). *)
let base_case cmp v ranks =
  let ctx = Em.Vec.ctx v in
  let n = Em.Vec.length v in
  let kcount = Array.length ranks in
  if kcount = 0 then [||]
  else if n <= Emalg.Layout.big_load ctx then
    Emalg.Scan.with_loaded v (fun a ->
        (* Stable sort = positional tie-breaking. *)
        Emalg.Mem_sort.sort cmp a;
        Array.map (fun r -> a.(r - 1)) ranks)
  else begin
    let tagged_splitters, spacing = Quantile.Mem_splitters.memory_splitters_tagged cmp v in
    let nsplit = Array.length tagged_splitters in
    let tcmp = Emalg.Order.tagged cmp in
    (* Bucket of a (key, position) pair: least splitter index it is <= of. *)
    let bucket_of pair =
      let lo = ref 0 and hi = ref nsplit in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if tcmp pair tagged_splitters.(mid) <= 0 then hi := mid else lo := mid + 1
      done;
      !lo
    in
    (* Ranks living in bucket j occupy the half-open index range
       [first_rank_beyond (j * spacing), first_rank_beyond ((j+1) * spacing)). *)
    let first_rank_beyond threshold =
      let lo = ref 0 and hi = ref kcount in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if ranks.(mid) > threshold then hi := mid else lo := mid + 1
      done;
      !lo
    in
    (* Build D while the splitter array is charged; release it before the
       intermixed selection runs (it only needs D and the targets). *)
    let d =
      Em.Ctx.with_words ctx (2 * nsplit) (fun () ->
          let dctx : ('a * int) Em.Ctx.t = Em.Ctx.linked ctx in
          let pos = ref (-1) in
          Em.Writer.with_writer dctx (fun w ->
              Emalg.Scan.iter
                (fun e ->
                  incr pos;
                  let j = bucket_of (e, !pos) in
                  let lo = first_rank_beyond (j * spacing) in
                  let hi = first_rank_beyond ((j + 1) * spacing) in
                  for i = lo to hi - 1 do
                    Em.Writer.push w (e, i)
                  done)
                v))
    in
    let targets = Array.map (fun r -> r - (((r - 1) / spacing) * spacing)) ranks in
    let selected =
      Em.Ctx.with_words ctx kcount (fun () -> Intermixed.select cmp d ~targets)
    in
    Em.Vec.free d;
    selected
  end

let check_ranks v ranks =
  let n = Em.Vec.length v in
  let prev = ref 0 in
  Emalg.Scan.iter
    (fun r ->
      if r <= !prev || r > n then
        invalid_arg
          "Multi_select: ranks must be strictly increasing in [1, length v]";
      prev := r)
    ranks

(* The historical batch engine (Theorem 4), kept verbatim: the public
   [select_vec] routes through an {!Emalg.Online_select} session whose
   [batch_plan] is this function, so a pristine drain is bit-identical. *)
let batch_select_vec cmp v ~ranks =
  let ctx = Em.Vec.ctx v in
  Emalg.Layout.require_min_geometry ctx;
  check_ranks v ranks;
  let kcount = Em.Vec.length ranks in
  let m = batch_size ctx in
  if kcount <= m then
    Em.Ctx.with_words ctx kcount (fun () ->
        let ranks_arr = Emalg.Scan.array_of_vec_io ranks in
        let results = base_case cmp v ranks_arr in
        Em.Writer.with_writer ctx (fun w -> Em.Writer.push_array w results))
  else begin
    (* General case: multi-partition at every m-th rank, then solve a base
       case inside each partition.  The partition boundary ranks are exactly
       the last rank of each batch, so offsets need no extra storage. *)
    let ictx : int Em.Ctx.t = Em.Ctx.linked ctx in
    let g = (kcount + m - 1) / m in
    let bounds =
      Em.Writer.with_writer ictx (fun w ->
          let idx = ref 0 in
          Emalg.Scan.iter
            (fun r ->
              incr idx;
              if !idx mod m = 0 && !idx < kcount then Em.Writer.push w r)
            ranks)
    in
    let partitions = Multi_partition.partition cmp v ~bounds in
    if Array.length partitions <> g then
      invalid_arg "Multi_select: internal error (batch count)";
    Em.Vec.free bounds;
    let out = Em.Writer.create ctx in
    let offset = ref 0 in
    Em.Reader.with_reader ranks (fun rr ->
        Array.iter
          (fun part ->
            let batch = Em.Reader.take rr m in
            Em.Ctx.with_words ctx (2 * Array.length batch) (fun () ->
                let rebased = Array.map (fun r -> r - !offset) batch in
                let results = base_case cmp part rebased in
                Array.iter (Em.Writer.push out) results;
                offset := batch.(Array.length batch - 1));
            Em.Vec.free part)
          partitions);
    Em.Writer.finish out
  end

(* Batch multiselection as a one-shot session: open, drain every rank,
   close.  The session delegates a pristine drain to [batch_select_vec],
   so the entry point keeps its historical golden costs while sharing the
   Session surface with the online engine. *)
let open_session cmp v =
  Emalg.Online_select.open_session
    ~batch_plan:(fun ~ranks -> batch_select_vec cmp v ~ranks)
    cmp (Em.Vec.ctx v) v

let select_vec cmp v ~ranks =
  let session = open_session cmp v in
  Fun.protect
    ~finally:(fun () -> Emalg.Online_select.close session)
    (fun () -> Emalg.Online_select.drain session ~ranks)

let select cmp v ~ranks =
  let ctx = Em.Vec.ctx v in
  let ictx : int Em.Ctx.t = Em.Ctx.linked ctx in
  let ranks_vec = Emalg.Scan.vec_of_array_io ictx ranks in
  let out = select_vec cmp v ~ranks:ranks_vec in
  let results = Emalg.Scan.array_of_vec_io out in
  Em.Vec.free out;
  Em.Vec.free ranks_vec;
  results
