(* P simulated machines and the metered interconnect between them.

   A cluster is P fully independent {!Em.Ctx} machines — each with its own
   backend instance, M-word memory ledger and D disks — plus one
   communication ledger ([comm]) that bills every inter-shard transfer:
   word volume unconditionally, and one BSP superstep per
   {!Em.Stats.with_comm_round} window in which at least one transfer
   happened.  Diagonal (shard-to-itself) movement is local work and never
   touches the ledger.

   The design invariant extends PR 5's "disks change scheduling, never
   work": shards change communication, never work.  Every driver below
   produces outputs identical to its P = 1 run, and the total counted work
   across shards stays within a constant factor of the single-machine run;
   only [comm_rounds]/[comm_words] vary with P. *)

let shards_env_var = "EM_SHARDS"

let default_shards () =
  match Sys.getenv_opt shards_env_var with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some p when p >= 1 -> p
      | _ ->
          invalid_arg
            (Printf.sprintf "Cluster: %s must be a positive integer, got %S"
               shards_env_var s))

type 'a t = {
  params : Em.Params.t;
  shards : 'a Em.Ctx.t array;
  comm : Em.Stats.t;
  trace : Em.Trace.t;
}

let create ?trace ?backend ?backend_dir ?pool_pages ?disks ?shards params =
  let p = match shards with Some p -> p | None -> default_shards () in
  if p < 1 then invalid_arg "Cluster.create: shards must be >= 1";
  let trace = match trace with Some t -> t | None -> Em.Trace.create () in
  (* Shard ids are attached only when the cluster is actually sharded, so a
     P = 1 cluster is bit-for-bit a plain single machine (same trace JSON,
     same goldens). *)
  let shard i =
    if p = 1 then
      Em.Ctx.create ~trace ?backend ?backend_dir ?pool_pages ?disks params
    else
      Em.Ctx.create ~trace ?backend ?backend_dir ?pool_pages ?disks ~shard:i
        params
  in
  { params; shards = Array.init p shard; comm = Em.Stats.create (); trace }

let size t = Array.length t.shards
let ctx t i = t.shards.(i)
let comm t = t.comm
let trace t = t.trace
let params t = t.params
let close t = Array.iter Em.Ctx.close t.shards

let totals t =
  Array.fold_left
    (fun (r, w, c) cx ->
      let s = cx.Em.Ctx.stats in
      (r + s.Em.Stats.reads, w + s.Em.Stats.writes, c + s.Em.Stats.comparisons))
    (0, 0, 0) t.shards

let superstep t f = Em.Stats.with_comm_round t.comm f

(* Open an I/O scheduling window on every shard around [f]: collective
   operations issue interleaved I/Os on all machines at once, and each
   machine's D disks should overlap them Vitter–Shriver style exactly as
   {!Em.Ctx.io_window} does for a lone machine. *)
let all_windows t f =
  let rec go i =
    if i >= size t then f ()
    else Em.Ctx.io_window t.shards.(i) (fun () -> go (i + 1))
  in
  go 0

(* Same nesting trick for phase labels: agreement work interleaves all
   shards, so the label must be pushed on every ledger. *)
let all_phases t label f =
  let rec go i =
    if i >= size t then f ()
    else Em.Phase.with_label t.shards.(i) label (fun () -> go (i + 1))
  in
  go 0

let bill t ~src ~dst ~words = Em.Stats.record_comm t.comm ~src ~dst ~words

let check_parts t vecs name =
  if Array.length vecs <> size t then invalid_arg (name ^ ": one vector per shard")

(* Balanced contiguous striping: shard [i] holds positions
   [i*n/P, (i+1)*n/P) of the input, so shard lengths differ by at most
   one element. *)
let slice_bounds ~n ~p i = (i * n / p, (i + 1) * n / p)

let place t a =
  let n = Array.length a and p = size t in
  Array.init p (fun i ->
      let lo, hi = slice_bounds ~n ~p i in
      Em.Vec.of_array t.shards.(i) (Array.sub a lo (hi - lo)))

(* {2 Collectives}

   Each collective is one superstep.  Reads are billed to the source
   shard's machine, writes to the destination's, and every off-diagonal
   word crosses the communication ledger exactly once.  Inputs are never
   freed. *)

let scatter t ~root v =
  let p = size t in
  let n = Em.Vec.length v in
  superstep t (fun () ->
      all_windows t (fun () ->
          let outs = Array.init p (fun j -> Em.Writer.create t.shards.(j)) in
          let stop = Array.init p (fun j -> snd (slice_bounds ~n ~p j)) in
          let dst = ref 0 and pos = ref 0 in
          Emalg.Scan.iter
            (fun x ->
              while !pos >= stop.(!dst) do
                incr dst
              done;
              Em.Writer.push outs.(!dst) x;
              incr pos)
            v;
          Array.mapi
            (fun j w ->
              let lo, hi = slice_bounds ~n ~p j in
              bill t ~src:root ~dst:j ~words:(hi - lo);
              Em.Writer.finish w)
            outs))

let broadcast t ~root v =
  let p = size t in
  let words = Em.Vec.length v in
  superstep t (fun () ->
      all_windows t (fun () ->
          let outs =
            Array.init p (fun j ->
                if j = root then None else Some (Em.Writer.create t.shards.(j)))
          in
          (* One metered pass over the source feeds all P - 1 copies. *)
          Emalg.Scan.iter
            (fun x ->
              Array.iter (function None -> () | Some w -> Em.Writer.push w x) outs)
            v;
          Array.mapi
            (fun j w ->
              match w with
              | None -> v
              | Some w ->
                  bill t ~src:root ~dst:j ~words;
                  Em.Writer.finish w)
            outs))

let all_gather t parts =
  let p = size t in
  check_parts t parts "Cluster.all_gather";
  superstep t (fun () ->
      all_windows t (fun () ->
          let outs = Array.init p (fun j -> Em.Writer.create t.shards.(j)) in
          Array.iteri
            (fun i part ->
              let words = Em.Vec.length part in
              for j = 0 to p - 1 do
                if i <> j then bill t ~src:i ~dst:j ~words
              done;
              Emalg.Scan.iter
                (fun x -> Array.iter (fun w -> Em.Writer.push w x) outs)
                part)
            parts;
          Array.map Em.Writer.finish outs))

let all_to_all t chunks =
  let p = size t in
  check_parts t chunks "Cluster.all_to_all";
  Array.iter
    (fun row ->
      if Array.length row <> p then
        invalid_arg "Cluster.all_to_all: one chunk per destination")
    chunks;
  superstep t (fun () ->
      all_windows t (fun () ->
          Array.init p (fun j ->
              Array.init p (fun i ->
                  let v = chunks.(i).(j) in
                  bill t ~src:i ~dst:j ~words:(Em.Vec.length v);
                  let w = Em.Writer.create t.shards.(j) in
                  Emalg.Scan.append w v;
                  Em.Writer.finish w))))

(* {2 Sorted-vector fence index}

   Agreement needs many rank queries ("how many local elements are <= x")
   against each shard's sorted run.  One sequential pass loads the first
   element of every block into memory (the fences); a rank query is then an
   in-memory binary search over fences plus a single metered block read,
   and a one-block cache makes batched ascending queries cost at most one
   pass over the touched blocks.  The fence array and the cached block are
   charged to the shard's memory ledger by [with_indexes]. *)

type 'a index = {
  vec : 'a Em.Vec.t;
  ccmp : 'a -> 'a -> int;  (* counted on the owning shard's ledger *)
  fences : 'a array;
  blk : int;
  mutable cached : int;  (* block id held in [payload], or -1 *)
  mutable payload : 'a array;
}

let build_index cx cmp v =
  let nb = Em.Vec.num_blocks v in
  let fences =
    if nb = 0 then [||]
    else
      Em.Ctx.io_window cx (fun () ->
          let first = Em.Vec.block_io v 0 in
          let f = Array.make nb first.(0) in
          for b = 1 to nb - 1 do
            f.(b) <- (Em.Vec.block_io v b).(0)
          done;
          f)
  in
  {
    vec = v;
    ccmp = Em.Ctx.counted cx cmp;
    fences;
    blk = Em.Ctx.block_size cx;
    cached = -1;
    payload = [||];
  }

let read_block idx b =
  if idx.cached <> b then begin
    idx.payload <- Em.Vec.block_io idx.vec b;
    idx.cached <- b
  end;
  idx.payload

let elem idx pos = (read_block idx (pos / idx.blk)).(pos mod idx.blk)

(* [rank_by idx ok] counts the elements satisfying [ok], which must be
   downward closed in the sort order (fun y -> y <= x, or y < x). *)
let rank_by idx ok =
  let nb = Array.length idx.fences in
  if nb = 0 || not (ok idx.fences.(0)) then 0
  else begin
    let lo = ref 0 and hi = ref (nb - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if ok idx.fences.(mid) then lo := mid else hi := mid - 1
    done;
    let blk = read_block idx !lo in
    let l = ref 0 and h = ref (Array.length blk) in
    while !l < !h do
      let mid = (!l + !h) / 2 in
      if ok blk.(mid) then l := mid + 1 else h := mid
    done;
    (!lo * idx.blk) + !l
  end

let rank_le idx x = rank_by idx (fun y -> idx.ccmp y x <= 0)
let rank_lt idx x = rank_by idx (fun y -> idx.ccmp y x < 0)

(* Build one index per shard, charging [fences + one block] words to each
   shard's memory ledger for the duration of [f]. *)
let with_indexes t cmp sorted f =
  let p = size t in
  let rec go acc i =
    if i >= p then f (Array.of_list (List.rev acc))
    else
      let cx = t.shards.(i) in
      let v = sorted.(i) in
      let words = Em.Vec.num_blocks v + Em.Ctx.block_size cx in
      Em.Ctx.with_words cx words (fun () ->
          go (build_index cx cmp v :: acc) (i + 1))
  in
  go [] 0

(* {2 Splitter agreement}

   Deterministic histogram sort with sampling (after Yang–Harsh–Solomonik;
   budgets in {!Bounds}).  Each target rank [tgt] keeps a bracket with
   exact global fence ranks [lo_rank < tgt <= hi_rank] and per-shard local
   cut positions, so [width = hi_rank - lo_rank] counts exactly the
   elements that can still be the answer.  One refinement iteration is two
   supersteps:

   - {e sample}: every shard contributes [m] evenly-locally-ranked
     candidates inside each unresolved bracket (all of them if it holds
     <= m), allgathered to every peer;
   - {e histogram}: every shard answers [(rank_lt, rank_le)] for each
     candidate, allgathered (two words per candidate) and summed into
     exact global ranks.

   The iteration shrinks [width] by at least the factor [m + 1] up to an
   additive [P + 1]: between consecutive picks of one shard fewer than
   [w_i/(m+1) + 1] of its elements hide, and summing the leftovers across
   shards telescopes to [W/(m+1) + P + 1].  Candidate [c] resolves target
   [tgt] {e exactly} iff [rank_lt c < tgt <= rank_le c] — duplicate-proof,
   because that half-open rank interval is precisely the set of ranks the
   value [c] occupies.  Once [width] falls under the gather cap (or the
   iteration budget is spent) the residual interval is gathered to a
   coordinator shard, selected exactly in memory, and the answer broadcast
   back: comm rounds <= 2r + 2 and samples <= r*T*P*m — the
   {!Bounds.hss_comm_rounds_upper} / {!Bounds.hss_sample_upper} budgets
   that {!Bound_track} gates. *)

type 'a agreement = {
  values : 'a array;
  ranks : int array;  (* global rank_le of each value: the cut position *)
  ranks_lt : int array;
  targets : int array;
  tol : int;
  iterations : int;
  rounds_budget : int;
  per_round : int;
  samples : int;
  gathered : int;
}

type 'a bracket = {
  target : int;
  mutable lo_rank : int;  (* global rank_le of the lower fence, < target *)
  lo_pos : int array;  (* per-shard local rank_le of the lower fence *)
  mutable hi : 'a option;  (* upper fence value; None = +infinity *)
  mutable hi_rank : int;  (* global rank_lt hi (or N when infinite), >= target *)
  hi_pos : int array;  (* per-shard local rank_lt of the upper fence *)
  mutable hi_le : int;  (* global rank_le hi, valid when [hi] is concrete *)
  mutable answer : ('a * int * int) option;  (* value, rank_lt, rank_le *)
}

let agree_on ?(tol = 0) ?rounds cmp t ~idxs ~targets =
  if tol < 0 then invalid_arg "Cluster.agree: tol must be >= 0";
  let p = size t in
  let lengths = Array.map (fun idx -> Em.Vec.length idx.vec) idxs in
  let n = Array.fold_left ( + ) 0 lengths in
  Array.iter
    (fun tgt ->
      if tgt < 1 || tgt > n then
        invalid_arg
          (Printf.sprintf "Cluster.agree: target rank %d outside 1..%d" tgt n))
    targets;
  let nt = Array.length targets in
  let rounds_budget =
    match rounds with
    | Some r -> max 1 r
    | None -> Bounds.hss_rounds ~shards:p ~tol ~n:(max 1 n)
  in
  let m =
    Bounds.hss_per_round ~shards:p ~tol ~rounds:rounds_budget ~n:(max 1 n)
  in
  let cap = Bounds.hss_gather_cap ~shards:p in
  let samples = ref 0 and gathered = ref 0 and iterations = ref 0 in
  (* Coordinator-side bookkeeping comparisons (candidate dedup, query
     sorting) are counted against shard 0 — they are real work and must not
     vanish from the ledger. *)
  let c0 = Em.Ctx.counted t.shards.(0) cmp in
  let brs =
    Array.map
      (fun tgt ->
        {
          target = tgt;
          lo_rank = 0;
          lo_pos = Array.make p 0;
          hi = None;
          hi_rank = n;
          hi_pos = Array.copy lengths;
          hi_le = n;
          answer = None;
        })
      targets
  in
  let width b = b.hi_rank - b.lo_rank in
  let needs_refine b =
    b.answer = None && width b > cap && (width b > tol || b.hi = None)
  in
  let refine_iteration active =
    incr iterations;
    (* Sample superstep: draw candidates and allgather their values. *)
    let cands = Array.make nt [] in
    superstep t (fun () ->
        all_windows t (fun () ->
            for i = 0 to p - 1 do
              let idx = idxs.(i) in
              let picks = ref [] in
              List.iter
                (fun j ->
                  let b = brs.(j) in
                  let lo = b.lo_pos.(i) and hi = b.hi_pos.(i) in
                  let w = hi - lo in
                  if w > 0 then
                    if w <= m then
                      for pos = lo to hi - 1 do
                        picks := (pos, j) :: !picks
                      done
                    else
                      for s = 1 to m do
                        picks := (lo + (w * s / (m + 1)), j) :: !picks
                      done)
                active;
              let arr = Array.of_list !picks in
              Array.sort (fun (a, _) (b, _) -> compare (a : int) b) arr;
              Array.iter
                (fun (pos, j) -> cands.(j) <- elem idx pos :: cands.(j))
                arr;
              let words = Array.length arr in
              samples := !samples + words;
              for d = 0 to p - 1 do
                bill t ~src:i ~dst:d ~words
              done
            done));
    let cand_sets =
      Array.map (fun l -> Array.of_list (List.sort_uniq c0 l)) cands
    in
    (* Histogram superstep: exact (rank_lt, rank_le) per candidate per
       shard, allgathered and summed into global ranks. *)
    let lt_loc =
      Array.map (fun cs -> Array.make_matrix (Array.length cs) p 0) cand_sets
    in
    let le_loc =
      Array.map (fun cs -> Array.make_matrix (Array.length cs) p 0) cand_sets
    in
    let total_cands =
      List.fold_left (fun acc j -> acc + Array.length cand_sets.(j)) 0 active
    in
    (* Order the queries by value once (coordinator bookkeeping, billed
       once) so every shard's one-block cache sees them ascending. *)
    let qs =
      let queries = ref [] in
      List.iter
        (fun j ->
          Array.iteri (fun ci c -> queries := (j, ci, c) :: !queries) cand_sets.(j))
        active;
      let qs = Array.of_list !queries in
      Array.sort (fun (_, _, a) (_, _, b) -> c0 a b) qs;
      qs
    in
    superstep t (fun () ->
        all_windows t (fun () ->
            for i = 0 to p - 1 do
              let idx = idxs.(i) in
              Array.iter
                (fun (j, ci, c) ->
                  lt_loc.(j).(ci).(i) <- rank_lt idx c;
                  le_loc.(j).(ci).(i) <- rank_le idx c)
                qs;
              for d = 0 to p - 1 do
                bill t ~src:i ~dst:d ~words:(2 * total_cands)
              done
            done));
    (* Bracket update from the now-exact global ranks. *)
    List.iter
      (fun j ->
        let b = brs.(j) in
        let cs = cand_sets.(j) in
        let nc = Array.length cs in
        let lt_g =
          Array.init nc (fun ci -> Array.fold_left ( + ) 0 lt_loc.(j).(ci))
        in
        let le_g =
          Array.init nc (fun ci -> Array.fold_left ( + ) 0 le_loc.(j).(ci))
        in
        let best_lo = ref (-1) and best_hi = ref (-1) in
        for ci = 0 to nc - 1 do
          if le_g.(ci) < b.target then best_lo := ci
          else if !best_hi < 0 then best_hi := ci
        done;
        if !best_lo >= 0 && le_g.(!best_lo) > b.lo_rank then begin
          let ci = !best_lo in
          b.lo_rank <- le_g.(ci);
          for i = 0 to p - 1 do
            b.lo_pos.(i) <- le_loc.(j).(ci).(i)
          done
        end;
        if !best_hi >= 0 then begin
          let ci = !best_hi in
          if lt_g.(ci) < b.target then
            (* Exact: value [cs.(ci)] occupies ranks (lt, le] which contain
               the target. *)
            b.answer <- Some (cs.(ci), lt_g.(ci), le_g.(ci))
          else if lt_g.(ci) < b.hi_rank then begin
            b.hi <- Some cs.(ci);
            b.hi_rank <- lt_g.(ci);
            b.hi_le <- le_g.(ci);
            for i = 0 to p - 1 do
              b.hi_pos.(i) <- lt_loc.(j).(ci).(i)
            done
          end
        end;
        (* Tolerant early exit: any candidate whose cut rank lands within
           [tol] of the target is an acceptable splitter. *)
        if b.answer = None && tol > 0 then begin
          let best = ref (-1) and dist = ref max_int in
          for ci = 0 to nc - 1 do
            let d = abs (le_g.(ci) - b.target) in
            if d < !dist then begin
              dist := d;
              best := ci
            end
          done;
          if !best >= 0 && !dist <= tol then
            b.answer <- Some (cs.(!best), lt_g.(!best), le_g.(!best))
        end)
      active
  in
  let rec refine () =
    if !iterations < rounds_budget then begin
      let active = ref [] in
      Array.iteri (fun j b -> if needs_refine b then active := j :: !active) brs;
      match List.rev !active with
      | [] -> ()
      | active ->
          refine_iteration active;
          refine ()
    end
  in
  if nt > 0 && n > 0 then refine ();
  (* Tolerant brackets that converged without an exact hit resolve to their
     upper fence when its cut rank is close enough. *)
  Array.iter
    (fun b ->
      match (b.answer, b.hi) with
      | None, Some hi when tol > 0 && abs (b.hi_le - b.target) <= tol ->
          b.answer <- Some (hi, b.hi_rank, b.hi_le)
      | _ -> ())
    brs;
  (* Exact finish: gather each residual interval to a coordinator shard,
     select in memory, broadcast the answer back.  One gather superstep for
     all residuals, one broadcast superstep for all answers. *)
  let finished = ref [] in
  if Array.exists (fun b -> b.answer = None) brs then begin
    superstep t (fun () ->
        all_windows t (fun () ->
            Array.iteri
              (fun j b ->
                if b.answer = None then begin
                  let root = j mod p in
                  finished := (j, root) :: !finished;
                  let acc = ref [] in
                  for i = 0 to p - 1 do
                    let words = b.hi_pos.(i) - b.lo_pos.(i) in
                    for pos = b.lo_pos.(i) to b.hi_pos.(i) - 1 do
                      acc := elem idxs.(i) pos :: !acc
                    done;
                    bill t ~src:i ~dst:root ~words
                  done;
                  let residual = Array.of_list (List.rev !acc) in
                  let w = Array.length residual in
                  gathered := !gathered + w;
                  let croot = Em.Ctx.counted t.shards.(root) cmp in
                  Em.Ctx.with_words t.shards.(root) w (fun () ->
                      Array.sort croot residual;
                      let v = residual.(b.target - b.lo_rank - 1) in
                      let lt = ref 0 and le = ref 0 in
                      Array.iter
                        (fun y ->
                          let c = croot y v in
                          if c < 0 then incr lt;
                          if c <= 0 then incr le)
                        residual;
                      b.answer <- Some (v, b.lo_rank + !lt, b.lo_rank + !le))
                end)
              brs));
    superstep t (fun () ->
        List.iter
          (fun (_, root) ->
            for d = 0 to p - 1 do
              bill t ~src:root ~dst:d ~words:1
            done)
          !finished)
  end;
  let answer b =
    match b.answer with
    | Some a -> a
    | None -> invalid_arg "Cluster.agree: unresolved bracket (impossible)"
  in
  {
    values = Array.map (fun b -> let v, _, _ = answer b in v) brs;
    ranks = Array.map (fun b -> let _, _, le = answer b in le) brs;
    ranks_lt = Array.map (fun b -> let _, lt, _ = answer b in lt) brs;
    targets;
    tol;
    iterations = !iterations;
    rounds_budget;
    per_round = m;
    samples = !samples;
    gathered = !gathered;
  }

let agree ?tol ?rounds cmp t ~sorted ~targets =
  check_parts t sorted "Cluster.agree";
  all_phases t "agree" (fun () ->
      with_indexes t cmp sorted (fun idxs ->
          agree_on ?tol ?rounds cmp t ~idxs ~targets))

(* Evenly spaced quantile targets: boundary [j] (1-based) sits at global
   rank [j*n/k], the same cuts {!place} uses for striping. *)
let quantile_targets ~n ~k = Array.init (k - 1) (fun j -> max 1 ((j + 1) * n / k))

(* (1+eps)-balance: every part of an eps-approximate k-partition may exceed
   n/k by at most eps*n/k, so each boundary rank may drift by half that
   from each side. *)
let tol_of ~eps ~n ~k =
  if eps < 0. then invalid_arg "Cluster: eps must be >= 0";
  max 0 (int_of_float (eps *. float_of_int n /. float_of_int k /. 2.))

let agree_splitters ?(eps = 0.) ?rounds cmp t ~sorted ~k =
  check_parts t sorted "Cluster.agree_splitters";
  if k < 1 then invalid_arg "Cluster.agree_splitters: k must be >= 1";
  let n = Array.fold_left (fun acc v -> acc + Em.Vec.length v) 0 sorted in
  let targets = if n = 0 then [||] else quantile_targets ~n ~k in
  agree ~tol:(tol_of ~eps ~n ~k) ?rounds cmp t ~sorted ~targets

(* {2 Sharded drivers}

   All four follow the same shape: local sort, splitter agreement, local
   cut at the agreed values, metered all-to-all exchange, local finish.
   Because every shard cuts its run at [rank_le] of the {e same} agreed
   values, the per-shard cuts telescope exactly to the agreed global
   ranks, and the concatenated outputs are the ones a single machine would
   produce — shards change communication, never work. *)

let local_sort cmp t inputs =
  Array.mapi
    (fun i v ->
      Em.Phase.with_label t.shards.(i) "local-sort" (fun () ->
          Emalg.External_sort.sort (Em.Ctx.counted t.shards.(i) cmp) v))
    inputs

(* Local cut positions of the agreed boundary values: [cuts.(0) = 0], then
   one local [rank_le] per boundary, then the shard length. *)
let cut_positions idx values =
  let nv = Array.length values in
  let cuts = Array.make (nv + 2) 0 in
  for j = 0 to nv - 1 do
    cuts.(j + 1) <- rank_le idx values.(j)
  done;
  cuts.(nv + 1) <- Em.Vec.length idx.vec;
  cuts

(* Stream segment [g] of every shard's sorted run to [dest g]: one
   superstep, one ascending metered pass over each source (the one-block
   cache turns consecutive segment reads into sequential block I/O), words
   billed off-diagonal. *)
let exchange t ~idxs ~cuts ~groups ~dest =
  let p = size t in
  superstep t (fun () ->
      all_windows t (fun () ->
          Array.init p (fun i ->
              let idx = idxs.(i) in
              Array.init groups (fun g ->
                  let d = dest g in
                  let lo = cuts.(i).(g) and hi = cuts.(i).(g + 1) in
                  bill t ~src:i ~dst:d ~words:(hi - lo);
                  let w = Em.Writer.create t.shards.(d) in
                  for pos = lo to hi - 1 do
                    Em.Writer.push w (elem idx pos)
                  done;
                  Em.Writer.finish w))))

let finish_merge cmp t ~dest runs =
  Em.Phase.with_label t.shards.(dest) "finish" (fun () ->
      Emalg.External_sort.merge_passes (Em.Ctx.counted t.shards.(dest) cmp) runs)

(* Agreement plus exchange for a [k]-way split of the sorted runs; shared
   by {!sort} (k = P, identity destination) and {!partition}. *)
let split_exchange ?rounds cmp t ~sorted ~k ~tol ~dest =
  with_indexes t cmp sorted (fun idxs ->
      let n = Array.fold_left (fun acc v -> acc + Em.Vec.length v) 0 sorted in
      let ag =
        all_phases t "agree" (fun () ->
            agree_on ~tol ?rounds cmp t ~idxs ~targets:(quantile_targets ~n ~k))
      in
      let cuts =
        all_phases t "cut" (fun () ->
            Array.map (fun idx -> cut_positions idx ag.values) idxs)
      in
      let runs =
        all_phases t "exchange" (fun () ->
            exchange t ~idxs ~cuts ~groups:k ~dest)
      in
      (ag, runs))

let column parts g = Array.to_list (Array.map (fun row -> row.(g)) parts)

let sort ?(eps = 0.5) ?rounds cmp t inputs =
  check_parts t inputs "Cluster.sort";
  let p = size t in
  let sorted = local_sort cmp t inputs in
  let n = Array.fold_left (fun acc v -> acc + Em.Vec.length v) 0 sorted in
  if p = 1 || n = 0 then (sorted, None)
  else begin
    let ag, parts =
      split_exchange ?rounds cmp t ~sorted ~k:p ~tol:(tol_of ~eps ~n ~k:p)
        ~dest:(fun g -> g)
    in
    Array.iter Em.Vec.free sorted;
    let out = Array.init p (fun g -> finish_merge cmp t ~dest:g (column parts g)) in
    (out, Some ag)
  end

let owner ~p ~k g = g * p / k

let partition ?(eps = 0.) ?rounds cmp t inputs ~k =
  check_parts t inputs "Cluster.partition";
  if k < 1 then invalid_arg "Cluster.partition: k must be >= 1";
  let p = size t in
  let sorted = local_sort cmp t inputs in
  let n = Array.fold_left (fun acc v -> acc + Em.Vec.length v) 0 sorted in
  if n = 0 then begin
    Array.iter Em.Vec.free sorted;
    (Array.init k (fun g -> Em.Vec.empty t.shards.(owner ~p ~k g)), None)
  end
  else begin
    let ag, parts =
      split_exchange ?rounds cmp t ~sorted ~k ~tol:(tol_of ~eps ~n ~k)
        ~dest:(owner ~p ~k)
    in
    Array.iter Em.Vec.free sorted;
    let out =
      Array.init k (fun g ->
          finish_merge cmp t ~dest:(owner ~p ~k g) (column parts g))
    in
    (out, Some ag)
  end

let multiselect ?rounds cmp t inputs ~ranks =
  check_parts t inputs "Cluster.multiselect";
  let sorted = local_sort cmp t inputs in
  let ag = agree ~tol:0 ?rounds cmp t ~sorted ~targets:ranks in
  Array.iter Em.Vec.free sorted;
  (ag.values, ag)

let splitters ?eps ?rounds cmp t inputs ~k =
  check_parts t inputs "Cluster.splitters";
  let sorted = local_sort cmp t inputs in
  let ag = agree_splitters ?eps ?rounds cmp t ~sorted ~k in
  Array.iter Em.Vec.free sorted;
  ag
