(* The serve-session engine behind `em_repro serve`.

   Lives in the library (rather than bin/) so the error paths — typed fault
   replies, retry metering, budget aborts, batch-window exception safety,
   checkpoint/restore round trips — are directly unit-testable; bin/serve.ml
   only adds flag parsing, signal handling and the socket accept loop.

   Protocol (NDJSON; one input line = one batch, ';'-separated):

     select K | quantile PHI | range A B   queries
     stats | metrics | intervals | profile introspection
     checkpoint                            save session state now
     quit                                  close and exit

   Every admitted query gets a monotonically-assigned id, echoed in its
   reply together with a compact "cost" object; the same span feeds the
   per-session Metrics histograms, the flight recorder, the drift watchdog
   and the optional telemetry stream.

   Error-reply grammar:
     {"error":"<message>"}                           parse failure (no id:
                                                     the query was never
                                                     admitted)
     {"id":N,"error":"<message>"}                    validation failure
     {"id":N,"error":"<code>","detail":"...","retries":R}
                                                     typed Em_error after
                                                     bounded query retries
                                                     (code: io_fault,
                                                     read_failed, ...)
     {"id":N,"error":"budget_exceeded","budget":B,"spent":S}

   Determinism contract: every emitted number is a simulated cost — except
   the fields of "wall":{...} sub-objects, the only place wall-clock-derived
   values may appear.  Smoke tests normalise exactly those objects and
   byte-diff everything else. *)

let icmp = Int.compare

(* ---- tiny JSON emitters (NDJSON; no dependency) ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_ints a =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"

(* ---- the server ---- *)

type meta = {
  m_n : int;
  m_mem : int;
  m_block : int;
  m_disks : int;
  m_workload : string;
  m_seed : int;
}

type t = {
  ctx : int Em.Ctx.t;
  mutable session : int Emalg.Online_select.t;
  profiler : Em.Profile.t;
  registry : Em.Metrics.t;
  input : int Em.Vec.t;
  meta : meta;
  max_retries : int;
  state_path : string option;
  mutable last_saves : int;  (* state-file mirror: saves already persisted *)
  mutable restored : bool;
  mutable crashed : bool;
  (* live telemetry *)
  telemetry : Em.Telemetry.t option;
  recorder : Em.Flight_recorder.t;
  drift : Drift.t;
  flight_dir : string option;
  mutable flight_dumps : int;
  clock : unit -> float;
  started : float;
  wall_registry : Em.Metrics.t;
      (* wall-clock-derived series live in their own registry so the
         golden-gated `metrics` reply stays byte-deterministic *)
  lat_hist : Em.Metrics.histogram;  (* wall ns, in wall_registry *)
  ios_hist : Em.Metrics.histogram;  (* simulated, in registry *)
  rounds_hist : Em.Metrics.histogram;  (* simulated, in registry *)
  mutable next_id : int;
  mutable n_select : int;
  mutable n_quantile : int;
  mutable n_range : int;
}

let session t = t.session
let ctx t = t.ctx
let input t = t.input
let crashed t = t.crashed
let drift t = t.drift
let flight_recorder t = t.recorder
let flight_dumps t = t.flight_dumps
let queries_admitted t = t.next_id - 1

(* ---- state file (cross-process survival) ----

   The in-process checkpoint slot and the sim backend's store are process
   RAM, so surviving a real process death needs a disk artifact.  The state
   file is the process-level stand-in for "the device survives": leaf
   bounds plus their payloads, serialized via the zero-cost Oracle (the
   payloads' I/O was already paid when the session wrote them; re-placing
   them in a fresh process via [Vec.of_array] is likewise Oracle-level).
   The metered costs of checkpointing remain with [Em.Checkpoint]: saves
   were charged in the dead process, the restore pays its resume read. *)

type payload = P_raw | P_unsorted of (int * int) array | P_sorted of int array

type persisted = {
  p_meta : meta;
  p_queries : int;
  p_refine_ios : int;
  p_answer_ios : int;
  p_splits : int;
  p_by_kind : int * int * int;  (* admitted select/quantile/range queries *)
  p_leaves : (int * int * payload) list;
}

let state_magic = "em_repro-serve-state-v2"

let persisted_of_session meta by_kind session =
  let snap = Emalg.Online_select.snapshot session in
  let leaves =
    List.map
      (fun (lo, len, h) ->
        let payload =
          match h with
          | Emalg.Online_select.H_raw -> P_raw
          | Emalg.Online_select.H_unsorted tv -> P_unsorted (Em.Vec.Oracle.to_array tv)
          | Emalg.Online_select.H_sorted sv -> P_sorted (Em.Vec.Oracle.to_array sv)
        in
        (lo, len, payload))
      snap.Emalg.Online_select.s_leaves
  in
  {
    p_meta = meta;
    p_queries = snap.Emalg.Online_select.s_queries;
    p_refine_ios = snap.Emalg.Online_select.s_refine_ios;
    p_answer_ios = snap.Emalg.Online_select.s_answer_ios;
    p_splits = snap.Emalg.Online_select.s_splits;
    p_by_kind = by_kind;
    p_leaves = leaves;
  }

let write_state path (p : persisted) =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Marshal.to_channel oc (state_magic, p) []);
  Sys.rename tmp path

let read_state path : (persisted, string) result =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match (Marshal.from_channel ic : string * persisted) with
          | magic, p when magic = state_magic -> Ok p
          | _ -> Error (path ^ ": not a serve state file")
          | exception _ -> Error (path ^ ": unreadable or corrupt state file"))

let meta_mismatch a b =
  if a.m_n <> b.m_n then Some "n"
  else if a.m_mem <> b.m_mem then Some "mem"
  else if a.m_block <> b.m_block then Some "block"
  else if a.m_disks <> b.m_disks then Some "disks"
  else if a.m_workload <> b.m_workload then Some "workload"
  else if a.m_seed <> b.m_seed then Some "seed"
  else None

(* Rebuild the snapshot in a fresh process: payloads are re-placed via
   Oracle writes (the data "was already on the surviving device"), the
   store slot is seeded with [Checkpoint.install] (same fiction), and
   [Online_select.restore] pays the metered resume read. *)
let session_of_persisted ?batch_plan ?every_splits ctx v (p : persisted) =
  let cmp = Em.Ctx.counted ctx icmp in
  let pctx : (int * int) Em.Ctx.t = Em.Ctx.linked ctx in
  let leaves =
    List.map
      (fun (lo, len, payload) ->
        let h =
          match payload with
          | P_raw -> Emalg.Online_select.H_raw
          | P_unsorted pairs -> Emalg.Online_select.H_unsorted (Em.Vec.of_array pctx pairs)
          | P_sorted keys -> Emalg.Online_select.H_sorted (Em.Vec.of_array ctx keys)
        in
        (lo, len, h))
      p.p_leaves
  in
  let snap =
    {
      Emalg.Online_select.s_leaves = leaves;
      s_queries = p.p_queries;
      s_refine_ios = p.p_refine_ios;
      s_answer_ios = p.p_answer_ios;
      s_splits = p.p_splits;
    }
  in
  let store = Em.Checkpoint.create ctx in
  Em.Checkpoint.install store ~words:(Emalg.Online_select.snapshot_words snap) snap;
  Emalg.Online_select.restore ?batch_plan ?every_splits cmp ctx v store

let by_kind srv = (srv.n_select, srv.n_quantile, srv.n_range)

let save_state srv =
  match srv.state_path with
  | None -> ()
  | Some path ->
      write_state path (persisted_of_session srv.meta (by_kind srv) srv.session);
      (match Emalg.Online_select.checkpoint_store srv.session with
      | Some store -> srv.last_saves <- Em.Checkpoint.saves store
      | None -> ())

(* Automatic policy saves happen inside the session; mirror them to the
   state file whenever the store's save counter has advanced, so the file
   on disk is as fresh as the in-process checkpoint. *)
let mirror_state srv =
  match (srv.state_path, Emalg.Online_select.checkpoint_store srv.session) with
  | Some _, Some store when Em.Checkpoint.saves store > srv.last_saves -> save_state srv
  | _ -> ()

let create ?checkpoint_every ?io_budget ?(max_retries = 3) ?state_path
    ?(restore = false) ?telemetry ?flight_capacity ?flight_dir ?drift_ceiling
    ?(clock = Unix.gettimeofday) ~meta ctx v =
  let cmp = Em.Ctx.counted ctx icmp in
  let profiler = Em.Profile.create () in
  Em.Profile.attach profiler ctx.Em.Ctx.stats;
  let restored = ref false in
  let restored_by_kind = ref (0, 0, 0) in
  let session =
    match (restore, state_path) with
    | true, Some path when Sys.file_exists path -> (
        match read_state path with
        | Error msg -> failwith (Printf.sprintf "serve --restore: %s" msg)
        | Ok p -> (
            match meta_mismatch p.p_meta meta with
            | Some field ->
                failwith
                  (Printf.sprintf
                     "serve --restore: state file %s was written for a different %s" path
                     field)
            | None ->
                restored := true;
                restored_by_kind := p.p_by_kind;
                session_of_persisted ?every_splits:checkpoint_every ctx v p))
    | _ ->
        let s = Emalg.Online_select.open_session cmp ctx v in
        if checkpoint_every <> None || state_path <> None then
          Emalg.Online_select.enable_checkpoints ?every_splits:checkpoint_every s;
        s
  in
  Emalg.Online_select.set_io_budget session io_budget;
  let registry = Em.Metrics.create () in
  let wall_registry = Em.Metrics.create () in
  let n_select, n_quantile, n_range = !restored_by_kind in
  let srv =
    {
      ctx;
      session;
      profiler;
      registry;
      input = v;
      meta;
      max_retries;
      state_path;
      last_saves = 0;
      restored = !restored;
      crashed = false;
      telemetry;
      recorder = Em.Flight_recorder.create ?capacity:flight_capacity ();
      drift = Drift.create ?ceiling:drift_ceiling ctx.Em.Ctx.params ~n:meta.m_n;
      flight_dir;
      flight_dumps = 0;
      clock;
      started = clock ();
      wall_registry;
      lat_hist =
        Em.Metrics.histogram wall_registry ~help:"per-query wall-clock span (ns)"
          "query_latency_ns";
      ios_hist =
        Em.Metrics.histogram registry ~help:"per-query metered I/Os" "query_ios";
      rounds_hist =
        Em.Metrics.histogram registry ~help:"per-query effective parallel rounds"
          "query_rounds";
      next_id = n_select + n_quantile + n_range + 1;
      n_select;
      n_quantile;
      n_range;
    }
  in
  (* A restored server re-persists immediately: the file now reflects this
     incarnation's baseline (and proves the path is writable up front). *)
  if srv.restored then save_state srv;
  srv

let restored srv = srv.restored

(* ---- JSON views ---- *)

let reply_json ~id label (r : int Emalg.Online_select.reply) =
  let d = r.Emalg.Online_select.cost in
  Printf.sprintf
    "{\"id\":%d,\"query\":\"%s\",\"values\":%s,\"cost\":{\"ios\":%d,\"reads\":%d,\"writes\":%d,\"rounds\":%d,\"comparisons\":%d,\"refine_ios\":%d,\"answer_ios\":%d,\"splits\":%d}}"
    id (json_escape label)
    (json_ints r.Emalg.Online_select.values)
    (Em.Stats.delta_ios d) d.Em.Stats.d_reads d.Em.Stats.d_writes d.Em.Stats.d_rounds
    d.Em.Stats.d_comparisons
    (Em.Stats.delta_ios r.Emalg.Online_select.refine)
    r.Emalg.Online_select.answer_ios r.Emalg.Online_select.splits

let by_kind_json srv =
  Printf.sprintf "{\"select\":%d,\"quantile\":%d,\"range\":%d}" srv.n_select
    srv.n_quantile srv.n_range

let uptime_ms srv = (srv.clock () -. srv.started) *. 1000.

let summary_json srv =
  let s = Emalg.Online_select.summary srv.session in
  let st = srv.ctx.Em.Ctx.stats in
  Printf.sprintf
    "{\"session\":{\"queries\":%d,\"by_kind\":%s,\"refine_ios\":%d,\"answer_ios\":%d,\"total_ios\":%d,\"splits\":%d,\"leaves\":%d,\"sorted_leaves\":%d},\"machine\":{\"reads\":%d,\"writes\":%d,\"rounds\":%d,\"comparisons\":%d,\"mem_peak\":%d},\"wall\":{\"uptime_ms\":%.0f}}"
    s.Emalg.Online_select.queries (by_kind_json srv)
    s.Emalg.Online_select.refine_ios s.Emalg.Online_select.answer_ios
    (s.Emalg.Online_select.refine_ios + s.Emalg.Online_select.answer_ios)
    s.Emalg.Online_select.splits s.Emalg.Online_select.leaves
    s.Emalg.Online_select.sorted_leaves st.Em.Stats.reads st.Em.Stats.writes
    (Em.Stats.effective_rounds st) st.Em.Stats.comparisons st.Em.Stats.mem_peak
    (uptime_ms srv)

(* Per-session Metrics accounting: the machine's native counters plus the
   session's own gauges and the simulated-cost per-query histograms, dumped
   in the registry's canonical JSON.  Wall-clock series (latency) live in a
   separate registry so this reply stays byte-deterministic.  The
   checkpoint gauges appear only once a store is attached, keeping the
   fault-free transcript byte-identical to the historical one. *)
let metrics_json srv =
  let reg = srv.registry in
  Em.Metrics.publish_stats reg srv.ctx.Em.Ctx.stats;
  let s = Emalg.Online_select.summary srv.session in
  let g name help v =
    Em.Metrics.set (Em.Metrics.gauge reg ~help name) (float_of_int v)
  in
  g "session_queries" "queries answered by this session" s.Emalg.Online_select.queries;
  g "session_refine_ios" "cumulative refinement I/Os" s.Emalg.Online_select.refine_ios;
  g "session_answer_ios" "cumulative lookup I/Os" s.Emalg.Online_select.answer_ios;
  g "session_splits" "cumulative interval splits" s.Emalg.Online_select.splits;
  g "session_leaves" "current leaf intervals" s.Emalg.Online_select.leaves;
  g "session_sorted_leaves" "leaves holding sorted runs" s.Emalg.Online_select.sorted_leaves;
  let kind_gauge kind v =
    Em.Metrics.set
      (Em.Metrics.gauge reg ~help:"admitted queries by kind"
         ~labels:[ ("kind", kind) ] "session_queries_by_kind")
      (float_of_int v)
  in
  kind_gauge "select" srv.n_select;
  kind_gauge "quantile" srv.n_quantile;
  kind_gauge "range" srv.n_range;
  Em.Metrics.set
    (Em.Metrics.gauge reg ~help:"running measured/predicted amortized-bound ratio"
       "session_drift_ratio")
    (Drift.ratio srv.drift);
  (match Emalg.Online_select.checkpoint_store srv.session with
  | None -> ()
  | Some store ->
      g "session_checkpoint_saves" "checkpoint saves taken" (Em.Checkpoint.saves store);
      g "session_checkpoint_save_ios" "metered checkpoint writes"
        (Em.Checkpoint.save_ios store);
      g "session_resume_loads" "checkpoint resume loads" (Em.Checkpoint.loads store);
      g "session_resume_load_ios" "metered resume reads" (Em.Checkpoint.load_ios store));
  String.trim (Em.Metrics.to_json reg)

let intervals_json srv =
  let items =
    List.map
      (fun (lo, len, sorted) ->
        Printf.sprintf "{\"lo\":%d,\"len\":%d,\"sorted\":%b}" lo len sorted)
      (Emalg.Online_select.intervals srv.session)
  in
  Printf.sprintf "{\"intervals\":[%s]}" (String.concat "," items)

(* Span tree of the attached profiler, I/O counts only (wall-clock excluded
   so transcripts stay deterministic). *)
let profile_json srv =
  let spans =
    List.map
      (fun s ->
        Printf.sprintf "{\"path\":\"%s\",\"ios\":%d,\"calls\":%d,\"comparisons\":%d}"
          (json_escape (Em.Profile.path_name s.Em.Profile.path))
          (Em.Profile.span_ios s) s.Em.Profile.calls s.Em.Profile.comparisons)
      (Em.Profile.spans srv.profiler)
  in
  Printf.sprintf "{\"spans\":[%s]}" (String.concat "," spans)

let checkpoint_json srv =
  match Emalg.Online_select.checkpoint_store srv.session with
  | None -> "{\"checkpointed\":false}"
  | Some store ->
      let s = Emalg.Online_select.summary srv.session in
      Printf.sprintf
        "{\"checkpointed\":true,\"saves\":%d,\"save_ios\":%d,\"leaves\":%d%s}"
        (Em.Checkpoint.saves store) (Em.Checkpoint.save_ios store)
        s.Emalg.Online_select.leaves
        (match srv.state_path with
        | Some path -> Printf.sprintf ",\"state_file\":\"%s\"" (json_escape path)
        | None -> "")

let checkpoint_now srv =
  Emalg.Online_select.checkpoint srv.session;
  save_state srv

let error_code = function
  | Em.Em_error.Io_fault _ -> "io_fault"
  | Em.Em_error.Read_failed _ -> "read_failed"
  | Em.Em_error.Write_failed _ -> "write_failed"
  | Em.Em_error.Corrupt_block _ -> "corrupt_block"
  | Em.Em_error.Crashed _ -> "crashed"
  | Em.Em_error.Budget_exceeded _ -> "budget_exceeded"

let em_error_json ~id ~retries e =
  match e with
  | Em.Em_error.Budget_exceeded { budget; spent } ->
      Printf.sprintf "{\"id\":%d,\"error\":\"budget_exceeded\",\"budget\":%d,\"spent\":%d}"
        id budget spent
  | e ->
      Printf.sprintf "{\"id\":%d,\"error\":\"%s\",\"detail\":\"%s\",\"retries\":%d}" id
        (error_code e)
        (json_escape (Em.Em_error.to_string e))
        retries

(* ---- telemetry frames ---- *)

(* The "cost" payload of a telemetry frame: cumulative session/machine
   simulated costs — byte-deterministic by construction. *)
let cost_json srv =
  let s = Emalg.Online_select.summary srv.session in
  let st = srv.ctx.Em.Ctx.stats in
  (* Communication counters are simulated costs, so they belong in this
     compartment — but a serve session's machine only accrues them when it
     runs as a cluster shard, so they are emitted gated (like the shard id
     on trace events): absent when zero, keeping the frame goldens of every
     single-machine session byte-identical. *)
  let comm =
    if st.Em.Stats.comm_rounds > 0 || st.Em.Stats.comm_words > 0 then
      Printf.sprintf ",\"comm_rounds\":%d,\"comm_words\":%d"
        (Em.Stats.effective_comm_rounds st) st.Em.Stats.comm_words
    else ""
  in
  Printf.sprintf
    "{\"ios\":%d,\"refine_ios\":%d,\"answer_ios\":%d,\"splits\":%d,\"leaves\":%d,\"sorted_leaves\":%d,\"reads\":%d,\"writes\":%d,\"rounds\":%d,\"comparisons\":%d,\"cache_hits\":%d,\"cache_misses\":%d%s,\"by_kind\":%s,\"drift_ratio\":%.4f}"
    (s.Emalg.Online_select.refine_ios + s.Emalg.Online_select.answer_ios)
    s.Emalg.Online_select.refine_ios s.Emalg.Online_select.answer_ios
    s.Emalg.Online_select.splits s.Emalg.Online_select.leaves
    s.Emalg.Online_select.sorted_leaves st.Em.Stats.reads st.Em.Stats.writes
    (Em.Stats.effective_rounds st) st.Em.Stats.comparisons
    st.Em.Stats.cache_hits st.Em.Stats.cache_misses comm (by_kind_json srv)
    (Drift.ratio srv.drift)

(* The "wall" payload: everything wall-clock-derived, and nothing else. *)
let wall_json srv =
  let up_s = (srv.clock () -. srv.started) in
  let quant p =
    let v = Em.Metrics.quantile srv.lat_hist p in
    if Float.is_nan v then 0. else v /. 1e6
  in
  Printf.sprintf
    "{\"ts_ms\":%.0f,\"uptime_ms\":%.0f,\"qps\":%.2f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}"
    (srv.clock () *. 1000.) (up_s *. 1000.)
    (if up_s > 0. then float_of_int (queries_admitted srv) /. up_s else 0.)
    (quant 0.5) (quant 0.99)

let telemetry_tick srv =
  match srv.telemetry with
  | None -> ()
  | Some tel ->
      Em.Telemetry.tick tel ~queries:(queries_admitted srv) ~cost:(cost_json srv)
        ~wall:(fun () -> wall_json srv)

(* ---- flight recorder ---- *)

let rec ensure_dir path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path) then begin
    ensure_dir (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Post-mortem dump: the retained query records joined with their trace
   events and a fresh registry snapshot.  Returns the artifact path, or
   [None] when no --flight-dir is configured. *)
let flight_dump srv ~reason =
  match srv.flight_dir with
  | None -> None
  | Some dir ->
      ignore (metrics_json srv);  (* refresh the registry snapshot *)
      ensure_dir dir;
      srv.flight_dumps <- srv.flight_dumps + 1;
      let path =
        Filename.concat dir (Printf.sprintf "postmortem-%03d.json" srv.flight_dumps)
      in
      Em.Flight_recorder.dump_to_file ~trace:srv.ctx.Em.Ctx.trace
        ~metrics:srv.registry ~now:srv.clock ~reason srv.recorder ~path;
      Some path

(* ---- protocol ---- *)

type command =
  | Query of Emalg.Online_select.query
  | Stats
  | Metrics
  | Intervals
  | Profile
  | Checkpoint
  | Quit

let parse_command str =
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim str))
  in
  match words with
  | [ "select"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (Query (Emalg.Online_select.Select k))
      | None -> Error "select needs an integer rank")
  | [ "quantile"; phi ] -> (
      (* float_of_string_opt happily parses "nan" and "inf"; reject anything
         outside (0, 1] here so malformed input never reaches the session. *)
      match float_of_string_opt phi with
      | Some phi when Float.is_finite phi && phi > 0. && phi <= 1. ->
          Ok (Query (Emalg.Online_select.Quantile phi))
      | Some _ -> Error "quantile must satisfy 0 < phi <= 1"
      | None -> Error "quantile needs a float")
  | [ "range"; a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when b < a -> Error "range needs a <= b"
      | Some a, Some b -> Ok (Query (Emalg.Online_select.Range (a, b)))
      | _ -> Error "range needs two integer ranks")
  | [ "stats" ] -> Ok Stats
  | [ "metrics" ] -> Ok Metrics
  | [ "intervals" ] -> Ok Intervals
  | [ "profile" ] -> Ok Profile
  | [ "checkpoint" ] -> Ok Checkpoint
  | [ "quit" ] | [ "exit" ] -> Ok Quit
  | [] -> Error "empty query"
  | w :: _ -> Error (Printf.sprintf "unknown query %S" w)

let query_kind = function
  | Emalg.Online_select.Select _ -> "select"
  | Emalg.Online_select.Quantile _ -> "quantile"
  | Emalg.Online_select.Range _ -> "range"

(* One query, with Resilient-style bounded retries at the query level: a
   typed failure that escapes the per-I/O recovery re-runs the query (each
   re-run metered as a retry; monotone refinement means only the unfinished
   tail is redone). *)
let exec_query srv ~retries q =
  Em.Resilient.with_retries ~max_retries:srv.max_retries
    ~on_retry:(fun ~attempt:_ _ -> incr retries)
    srv.ctx.Em.Ctx.dev
    (fun () -> Emalg.Online_select.query srv.session q)

let run_command srv emit str =
  match parse_command str with
  | Error msg ->
      emit (Printf.sprintf "{\"error\":\"%s\"}" (json_escape msg));
      true
  | Ok Quit -> false
  | Ok Stats ->
      emit (summary_json srv);
      true
  | Ok Metrics ->
      emit (metrics_json srv);
      true
  | Ok Intervals ->
      emit (intervals_json srv);
      true
  | Ok Profile ->
      emit (profile_json srv);
      true
  | Ok Checkpoint ->
      checkpoint_now srv;
      emit (checkpoint_json srv);
      true
  | Ok (Query q) -> (
      (* Admit the query: assign its id and open its request span. *)
      let id = srv.next_id in
      srv.next_id <- id + 1;
      (match q with
      | Emalg.Online_select.Select _ -> srv.n_select <- srv.n_select + 1
      | Emalg.Online_select.Quantile _ -> srv.n_quantile <- srv.n_quantile + 1
      | Emalg.Online_select.Range _ -> srv.n_range <- srv.n_range + 1);
      let label = String.trim str in
      let seq_lo = Em.Trace.total srv.ctx.Em.Ctx.trace in
      let before = Em.Stats.snapshot srv.ctx.Em.Ctx.stats in
      let splits0 = (Emalg.Online_select.summary srv.session).Emalg.Online_select.splits in
      let t0 = srv.clock () in
      (* Close the span: flight record + histograms + drift fold + telemetry
         tick.  Runs on every admitted outcome, success or not. *)
      let finish ~ios ~rounds ~splits ~outcome =
        let wall_ns = int_of_float ((srv.clock () -. t0) *. 1e9) in
        let seq_hi = Em.Trace.total srv.ctx.Em.Ctx.trace in
        Em.Flight_recorder.record srv.recorder
          { Em.Flight_recorder.id; kind = query_kind q; query = label; ios;
            rounds; splits; wall_ns; outcome; seq_lo; seq_hi };
        Em.Metrics.observe srv.ios_hist (float_of_int ios);
        Em.Metrics.observe srv.rounds_hist (float_of_int rounds);
        Em.Metrics.observe srv.lat_hist (float_of_int wall_ns);
        let s = Emalg.Online_select.summary srv.session in
        let verdict =
          Drift.observe srv.drift ~queries:(queries_admitted srv)
            ~total_ios:
              (s.Emalg.Online_select.refine_ios + s.Emalg.Online_select.answer_ios)
        in
        (match (verdict, srv.telemetry) with
        | Drift.Alert _, Some tel when Drift.alerts srv.drift = 1 ->
            (* First trip only; the sticky ratio keeps showing in every
               subsequent frame's drift_ratio field. *)
            Em.Telemetry.alert tel ~queries:(queries_admitted srv)
              ~cost:(cost_json srv)
              ~wall:(fun () -> wall_json srv)
        | _ -> ());
        telemetry_tick srv
      in
      let err_span ~outcome =
        let d = Em.Stats.delta srv.ctx.Em.Ctx.stats before in
        let splits =
          (Emalg.Online_select.summary srv.session).Emalg.Online_select.splits - splits0
        in
        finish ~ios:(Em.Stats.delta_ios d) ~rounds:d.Em.Stats.d_rounds ~splits ~outcome
      in
      let retries = ref 0 in
      match exec_query srv ~retries q with
      | r ->
          finish
            ~ios:(Em.Stats.delta_ios r.Emalg.Online_select.cost)
            ~rounds:r.Emalg.Online_select.cost.Em.Stats.d_rounds
            ~splits:r.Emalg.Online_select.splits ~outcome:"ok";
          emit (reply_json ~id label r);
          mirror_state srv;
          true
      | exception Invalid_argument msg ->
          err_span ~outcome:"invalid";
          emit (Printf.sprintf "{\"id\":%d,\"error\":\"%s\"}" id (json_escape msg));
          true
      | exception Em.Em_error.Error (Em.Em_error.Crashed _ as e) ->
          (* A crash halts the machine: reply, then stop serving.  The state
             file (if any) still holds the last checkpoint for --restore;
             deliberately nothing is saved now — a crashed process does not
             get to write.  The flight recorder, being pure observability,
             does get to leave its post-mortem. *)
          err_span ~outcome:(error_code e);
          ignore (flight_dump srv ~reason:(error_code e));
          emit (em_error_json ~id ~retries:!retries e);
          srv.crashed <- true;
          false
      | exception Em.Em_error.Error e ->
          err_span ~outcome:(error_code e);
          ignore (flight_dump srv ~reason:(error_code e));
          emit (em_error_json ~id ~retries:!retries e);
          mirror_state srv;
          true
      | exception e ->
          (* Programming errors must not kill the loop either; reply and
             keep serving. *)
          err_span ~outcome:"internal";
          emit
            (Printf.sprintf "{\"id\":%d,\"error\":\"internal\",\"detail\":\"%s\"}" id
               (json_escape (Printexc.to_string e)));
          true)

(* One input line = one batch.  Multi-query batches share a scheduling
   window, so a D-disk machine overlaps their I/Os into parallel rounds.
   Every per-query failure is caught inside [run_command] and answered with
   an error reply, and [Ctx.io_window] closes its window on any unwind
   (exception-safe bracket), so a poisoned query can neither silence the
   rest of its batch nor leave the window open for the session. *)
let run_batch srv emit line =
  let queries = String.split_on_char ';' line in
  let go () = List.for_all (fun q -> run_command srv emit q) queries in
  match queries with
  | [] | [ _ ] -> go ()
  | _ -> Em.Ctx.io_window srv.ctx go

let serve_channels ?(should_stop = fun () -> false) srv ic oc =
  let emit line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    if should_stop () then false
    else
      match input_line ic with
      | exception End_of_file -> true
      | exception Sys_error _ ->
          (* A signal can interrupt the blocking read; anything else on the
             input side also ends this client without killing the server. *)
          if should_stop () then false else true
      | "" -> loop ()
      | line -> if run_batch srv emit line then loop () else false
  in
  loop ()

let final_json ?shutdown srv =
  let s = Emalg.Online_select.summary srv.session in
  Printf.sprintf
    "{\"closed\":true,\"queries\":%d,\"total_ios\":%d,\"pool_pages\":%d,\"drift\":{\"ratio\":%.4f,\"tripped\":%b}%s,\"wall\":{\"uptime_ms\":%.0f}}"
    s.Emalg.Online_select.queries
    (s.Emalg.Online_select.refine_ios + s.Emalg.Online_select.answer_ios)
    (match Em.Ctx.backend_pool srv.ctx with
    | Some pool -> Em.Backend.Pool.resident pool
    | None -> 0)
    (Drift.ratio srv.drift) (Drift.tripped srv.drift)
    (match shutdown with
    | Some reason -> Printf.sprintf ",\"shutdown\":\"%s\"" (json_escape reason)
    | None -> "")
    (uptime_ms srv)

(* End-of-session telemetry: the final frame, the shutdown post-mortem, and
   the closing summary line.  Kept apart from {!close} so the caller can
   still emit the summary before tearing the session down. *)
let finalize ?shutdown srv =
  (match srv.telemetry with
  | None -> ()
  | Some tel ->
      Em.Telemetry.final tel ~queries:(queries_admitted srv) ~cost:(cost_json srv)
        ~wall:(fun () -> wall_json srv);
      Em.Telemetry.close tel);
  let reason =
    match shutdown with
    | Some r -> "shutdown:" ^ r
    | None -> if srv.crashed then "shutdown:crashed" else "shutdown"
  in
  ignore (flight_dump srv ~reason);
  final_json ?shutdown srv

let greeting_json srv =
  Printf.sprintf
    "{\"serving\":{\"n\":%d,\"mem\":%d,\"block\":%d,\"disks\":%d,\"backend\":\"%s\",\"workload\":\"%s\",\"seed\":%d%s}}"
    srv.meta.m_n srv.meta.m_mem srv.meta.m_block srv.meta.m_disks
    (Em.Ctx.backend_name srv.ctx) srv.meta.m_workload srv.meta.m_seed
    (if srv.restored then
       Printf.sprintf ",\"restored\":true,\"queries\":%d,\"leaves\":%d"
         (Emalg.Online_select.summary srv.session).Emalg.Online_select.queries
         (Emalg.Online_select.summary srv.session).Emalg.Online_select.leaves
     else "")

(* Graceful shutdown, step one: persist (unless the machine crashed — then
   the last pre-crash checkpoint is the truth).  Kept separate from {!close}
   so the final summary can still read the live session in between. *)
let shutdown_checkpoint srv =
  if (not srv.crashed) && Emalg.Online_select.checkpoint_store srv.session <> None then
    checkpoint_now srv

let close srv = Emalg.Online_select.close ~drop_cache:true srv.session
