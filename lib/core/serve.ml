(* The serve-session engine behind `em_repro serve`.

   Lives in the library (rather than bin/) so the error paths — typed fault
   replies, retry metering, budget aborts, batch-window exception safety,
   checkpoint/restore round trips — are directly unit-testable; bin/serve.ml
   only adds flag parsing, signal handling and the socket accept loop.

   Protocol (NDJSON; one input line = one batch, ';'-separated):

     select K | quantile PHI | range A B   queries
     stats | metrics | intervals | profile introspection
     checkpoint                            save session state now
     quit                                  close and exit

   Error-reply grammar:
     {"error":"<message>"}                           parse / validation
     {"error":"<code>","detail":"...","retries":N}   typed Em_error after
                                                     bounded query retries
                                                     (code: io_fault,
                                                     read_failed, ...)
     {"error":"budget_exceeded","budget":B,"spent":S}

   All emitted numbers are simulated costs, so transcripts stay
   byte-deterministic for a fixed geometry/workload/seed — including the
   error replies under a seeded fault plan. *)

let icmp = Int.compare

(* ---- tiny JSON emitters (NDJSON; no dependency, no wall-clock) ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_ints a =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int a)) ^ "]"

(* ---- the server ---- *)

type meta = {
  m_n : int;
  m_mem : int;
  m_block : int;
  m_disks : int;
  m_workload : string;
  m_seed : int;
}

type t = {
  ctx : int Em.Ctx.t;
  mutable session : int Emalg.Online_select.t;
  profiler : Em.Profile.t;
  registry : Em.Metrics.t;
  input : int Em.Vec.t;
  meta : meta;
  max_retries : int;
  state_path : string option;
  mutable last_saves : int;  (* state-file mirror: saves already persisted *)
  mutable restored : bool;
  mutable crashed : bool;
}

let session t = t.session
let ctx t = t.ctx
let input t = t.input
let crashed t = t.crashed

(* ---- state file (cross-process survival) ----

   The in-process checkpoint slot and the sim backend's store are process
   RAM, so surviving a real process death needs a disk artifact.  The state
   file is the process-level stand-in for "the device survives": leaf
   bounds plus their payloads, serialized via the zero-cost Oracle (the
   payloads' I/O was already paid when the session wrote them; re-placing
   them in a fresh process via [Vec.of_array] is likewise Oracle-level).
   The metered costs of checkpointing remain with [Em.Checkpoint]: saves
   were charged in the dead process, the restore pays its resume read. *)

type payload = P_raw | P_unsorted of (int * int) array | P_sorted of int array

type persisted = {
  p_meta : meta;
  p_queries : int;
  p_refine_ios : int;
  p_answer_ios : int;
  p_splits : int;
  p_leaves : (int * int * payload) list;
}

let state_magic = "em_repro-serve-state-v1"

let persisted_of_session meta session =
  let snap = Emalg.Online_select.snapshot session in
  let leaves =
    List.map
      (fun (lo, len, h) ->
        let payload =
          match h with
          | Emalg.Online_select.H_raw -> P_raw
          | Emalg.Online_select.H_unsorted tv -> P_unsorted (Em.Vec.Oracle.to_array tv)
          | Emalg.Online_select.H_sorted sv -> P_sorted (Em.Vec.Oracle.to_array sv)
        in
        (lo, len, payload))
      snap.Emalg.Online_select.s_leaves
  in
  {
    p_meta = meta;
    p_queries = snap.Emalg.Online_select.s_queries;
    p_refine_ios = snap.Emalg.Online_select.s_refine_ios;
    p_answer_ios = snap.Emalg.Online_select.s_answer_ios;
    p_splits = snap.Emalg.Online_select.s_splits;
    p_leaves = leaves;
  }

let write_state path (p : persisted) =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Marshal.to_channel oc (state_magic, p) []);
  Sys.rename tmp path

let read_state path : (persisted, string) result =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match (Marshal.from_channel ic : string * persisted) with
          | magic, p when magic = state_magic -> Ok p
          | _ -> Error (path ^ ": not a serve state file")
          | exception _ -> Error (path ^ ": unreadable or corrupt state file"))

let meta_mismatch a b =
  if a.m_n <> b.m_n then Some "n"
  else if a.m_mem <> b.m_mem then Some "mem"
  else if a.m_block <> b.m_block then Some "block"
  else if a.m_disks <> b.m_disks then Some "disks"
  else if a.m_workload <> b.m_workload then Some "workload"
  else if a.m_seed <> b.m_seed then Some "seed"
  else None

(* Rebuild the snapshot in a fresh process: payloads are re-placed via
   Oracle writes (the data "was already on the surviving device"), the
   store slot is seeded with [Checkpoint.install] (same fiction), and
   [Online_select.restore] pays the metered resume read. *)
let session_of_persisted ?batch_plan ?every_splits ctx v (p : persisted) =
  let cmp = Em.Ctx.counted ctx icmp in
  let pctx : (int * int) Em.Ctx.t = Em.Ctx.linked ctx in
  let leaves =
    List.map
      (fun (lo, len, payload) ->
        let h =
          match payload with
          | P_raw -> Emalg.Online_select.H_raw
          | P_unsorted pairs -> Emalg.Online_select.H_unsorted (Em.Vec.of_array pctx pairs)
          | P_sorted keys -> Emalg.Online_select.H_sorted (Em.Vec.of_array ctx keys)
        in
        (lo, len, h))
      p.p_leaves
  in
  let snap =
    {
      Emalg.Online_select.s_leaves = leaves;
      s_queries = p.p_queries;
      s_refine_ios = p.p_refine_ios;
      s_answer_ios = p.p_answer_ios;
      s_splits = p.p_splits;
    }
  in
  let store = Em.Checkpoint.create ctx in
  Em.Checkpoint.install store ~words:(Emalg.Online_select.snapshot_words snap) snap;
  Emalg.Online_select.restore ?batch_plan ?every_splits cmp ctx v store

let save_state srv =
  match srv.state_path with
  | None -> ()
  | Some path ->
      write_state path (persisted_of_session srv.meta srv.session);
      (match Emalg.Online_select.checkpoint_store srv.session with
      | Some store -> srv.last_saves <- Em.Checkpoint.saves store
      | None -> ())

(* Automatic policy saves happen inside the session; mirror them to the
   state file whenever the store's save counter has advanced, so the file
   on disk is as fresh as the in-process checkpoint. *)
let mirror_state srv =
  match (srv.state_path, Emalg.Online_select.checkpoint_store srv.session) with
  | Some _, Some store when Em.Checkpoint.saves store > srv.last_saves -> save_state srv
  | _ -> ()

let create ?checkpoint_every ?io_budget ?(max_retries = 3) ?state_path
    ?(restore = false) ~meta ctx v =
  let cmp = Em.Ctx.counted ctx icmp in
  let profiler = Em.Profile.create () in
  Em.Profile.attach profiler ctx.Em.Ctx.stats;
  let restored = ref false in
  let session =
    match (restore, state_path) with
    | true, Some path when Sys.file_exists path -> (
        match read_state path with
        | Error msg -> failwith (Printf.sprintf "serve --restore: %s" msg)
        | Ok p -> (
            match meta_mismatch p.p_meta meta with
            | Some field ->
                failwith
                  (Printf.sprintf
                     "serve --restore: state file %s was written for a different %s" path
                     field)
            | None ->
                restored := true;
                session_of_persisted ?every_splits:checkpoint_every ctx v p))
    | _ ->
        let s = Emalg.Online_select.open_session cmp ctx v in
        if checkpoint_every <> None || state_path <> None then
          Emalg.Online_select.enable_checkpoints ?every_splits:checkpoint_every s;
        s
  in
  Emalg.Online_select.set_io_budget session io_budget;
  let srv =
    {
      ctx;
      session;
      profiler;
      registry = Em.Metrics.create ();
      input = v;
      meta;
      max_retries;
      state_path;
      last_saves = 0;
      restored = !restored;
      crashed = false;
    }
  in
  (* A restored server re-persists immediately: the file now reflects this
     incarnation's baseline (and proves the path is writable up front). *)
  if srv.restored then save_state srv;
  srv

let restored srv = srv.restored

(* ---- JSON views ---- *)

let reply_json label (r : int Emalg.Online_select.reply) =
  let d = r.Emalg.Online_select.cost in
  Printf.sprintf
    "{\"query\":\"%s\",\"values\":%s,\"ios\":%d,\"reads\":%d,\"writes\":%d,\"rounds\":%d,\"comparisons\":%d,\"refine_ios\":%d,\"answer_ios\":%d,\"splits\":%d}"
    (json_escape label)
    (json_ints r.Emalg.Online_select.values)
    (Em.Stats.delta_ios d) d.Em.Stats.d_reads d.Em.Stats.d_writes d.Em.Stats.d_rounds
    d.Em.Stats.d_comparisons
    (Em.Stats.delta_ios r.Emalg.Online_select.refine)
    r.Emalg.Online_select.answer_ios r.Emalg.Online_select.splits

let summary_json srv =
  let s = Emalg.Online_select.summary srv.session in
  let st = srv.ctx.Em.Ctx.stats in
  Printf.sprintf
    "{\"session\":{\"queries\":%d,\"refine_ios\":%d,\"answer_ios\":%d,\"total_ios\":%d,\"splits\":%d,\"leaves\":%d,\"sorted_leaves\":%d},\"machine\":{\"reads\":%d,\"writes\":%d,\"rounds\":%d,\"comparisons\":%d,\"mem_peak\":%d}}"
    s.Emalg.Online_select.queries s.Emalg.Online_select.refine_ios
    s.Emalg.Online_select.answer_ios
    (s.Emalg.Online_select.refine_ios + s.Emalg.Online_select.answer_ios)
    s.Emalg.Online_select.splits s.Emalg.Online_select.leaves
    s.Emalg.Online_select.sorted_leaves st.Em.Stats.reads st.Em.Stats.writes
    (Em.Stats.effective_rounds st) st.Em.Stats.comparisons st.Em.Stats.mem_peak

(* Per-session Metrics accounting: the machine's native counters plus the
   session's own gauges, dumped in the registry's canonical JSON.  The
   checkpoint gauges appear only once a store is attached, keeping the
   fault-free transcript byte-identical to the historical one. *)
let metrics_json srv =
  let reg = srv.registry in
  Em.Metrics.publish_stats reg srv.ctx.Em.Ctx.stats;
  let s = Emalg.Online_select.summary srv.session in
  let g name help v =
    Em.Metrics.set (Em.Metrics.gauge reg ~help name) (float_of_int v)
  in
  g "session_queries" "queries answered by this session" s.Emalg.Online_select.queries;
  g "session_refine_ios" "cumulative refinement I/Os" s.Emalg.Online_select.refine_ios;
  g "session_answer_ios" "cumulative lookup I/Os" s.Emalg.Online_select.answer_ios;
  g "session_splits" "cumulative interval splits" s.Emalg.Online_select.splits;
  g "session_leaves" "current leaf intervals" s.Emalg.Online_select.leaves;
  g "session_sorted_leaves" "leaves holding sorted runs" s.Emalg.Online_select.sorted_leaves;
  (match Emalg.Online_select.checkpoint_store srv.session with
  | None -> ()
  | Some store ->
      g "session_checkpoint_saves" "checkpoint saves taken" (Em.Checkpoint.saves store);
      g "session_checkpoint_save_ios" "metered checkpoint writes"
        (Em.Checkpoint.save_ios store);
      g "session_resume_loads" "checkpoint resume loads" (Em.Checkpoint.loads store);
      g "session_resume_load_ios" "metered resume reads" (Em.Checkpoint.load_ios store));
  String.trim (Em.Metrics.to_json reg)

let intervals_json srv =
  let items =
    List.map
      (fun (lo, len, sorted) ->
        Printf.sprintf "{\"lo\":%d,\"len\":%d,\"sorted\":%b}" lo len sorted)
      (Emalg.Online_select.intervals srv.session)
  in
  Printf.sprintf "{\"intervals\":[%s]}" (String.concat "," items)

(* Span tree of the attached profiler, I/O counts only (wall-clock excluded
   so transcripts stay deterministic). *)
let profile_json srv =
  let spans =
    List.map
      (fun s ->
        Printf.sprintf "{\"path\":\"%s\",\"ios\":%d,\"calls\":%d,\"comparisons\":%d}"
          (json_escape (Em.Profile.path_name s.Em.Profile.path))
          (Em.Profile.span_ios s) s.Em.Profile.calls s.Em.Profile.comparisons)
      (Em.Profile.spans srv.profiler)
  in
  Printf.sprintf "{\"spans\":[%s]}" (String.concat "," spans)

let checkpoint_json srv =
  match Emalg.Online_select.checkpoint_store srv.session with
  | None -> "{\"checkpointed\":false}"
  | Some store ->
      let s = Emalg.Online_select.summary srv.session in
      Printf.sprintf
        "{\"checkpointed\":true,\"saves\":%d,\"save_ios\":%d,\"leaves\":%d%s}"
        (Em.Checkpoint.saves store) (Em.Checkpoint.save_ios store)
        s.Emalg.Online_select.leaves
        (match srv.state_path with
        | Some path -> Printf.sprintf ",\"state_file\":\"%s\"" (json_escape path)
        | None -> "")

let checkpoint_now srv =
  Emalg.Online_select.checkpoint srv.session;
  save_state srv

let error_code = function
  | Em.Em_error.Io_fault _ -> "io_fault"
  | Em.Em_error.Read_failed _ -> "read_failed"
  | Em.Em_error.Write_failed _ -> "write_failed"
  | Em.Em_error.Corrupt_block _ -> "corrupt_block"
  | Em.Em_error.Crashed _ -> "crashed"
  | Em.Em_error.Budget_exceeded _ -> "budget_exceeded"

let em_error_json ~retries e =
  match e with
  | Em.Em_error.Budget_exceeded { budget; spent } ->
      Printf.sprintf "{\"error\":\"budget_exceeded\",\"budget\":%d,\"spent\":%d}" budget spent
  | e ->
      Printf.sprintf "{\"error\":\"%s\",\"detail\":\"%s\",\"retries\":%d}" (error_code e)
        (json_escape (Em.Em_error.to_string e))
        retries

(* ---- protocol ---- *)

type command =
  | Query of Emalg.Online_select.query
  | Stats
  | Metrics
  | Intervals
  | Profile
  | Checkpoint
  | Quit

let parse_command str =
  let words =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim str))
  in
  match words with
  | [ "select"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (Query (Emalg.Online_select.Select k))
      | None -> Error "select needs an integer rank")
  | [ "quantile"; phi ] -> (
      (* float_of_string_opt happily parses "nan" and "inf"; reject anything
         outside (0, 1] here so malformed input never reaches the session. *)
      match float_of_string_opt phi with
      | Some phi when Float.is_finite phi && phi > 0. && phi <= 1. ->
          Ok (Query (Emalg.Online_select.Quantile phi))
      | Some _ -> Error "quantile must satisfy 0 < phi <= 1"
      | None -> Error "quantile needs a float")
  | [ "range"; a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when b < a -> Error "range needs a <= b"
      | Some a, Some b -> Ok (Query (Emalg.Online_select.Range (a, b)))
      | _ -> Error "range needs two integer ranks")
  | [ "stats" ] -> Ok Stats
  | [ "metrics" ] -> Ok Metrics
  | [ "intervals" ] -> Ok Intervals
  | [ "profile" ] -> Ok Profile
  | [ "checkpoint" ] -> Ok Checkpoint
  | [ "quit" ] | [ "exit" ] -> Ok Quit
  | [] -> Error "empty query"
  | w :: _ -> Error (Printf.sprintf "unknown query %S" w)

(* One query, with Resilient-style bounded retries at the query level: a
   typed failure that escapes the per-I/O recovery re-runs the query (each
   re-run metered as a retry; monotone refinement means only the unfinished
   tail is redone). *)
let exec_query srv ~retries q =
  Em.Resilient.with_retries ~max_retries:srv.max_retries
    ~on_retry:(fun ~attempt:_ _ -> incr retries)
    srv.ctx.Em.Ctx.dev
    (fun () -> Emalg.Online_select.query srv.session q)

let run_command srv emit str =
  match parse_command str with
  | Error msg ->
      emit (Printf.sprintf "{\"error\":\"%s\"}" (json_escape msg));
      true
  | Ok Quit -> false
  | Ok Stats ->
      emit (summary_json srv);
      true
  | Ok Metrics ->
      emit (metrics_json srv);
      true
  | Ok Intervals ->
      emit (intervals_json srv);
      true
  | Ok Profile ->
      emit (profile_json srv);
      true
  | Ok Checkpoint ->
      checkpoint_now srv;
      emit (checkpoint_json srv);
      true
  | Ok (Query q) -> (
      let retries = ref 0 in
      match exec_query srv ~retries q with
      | r ->
          emit (reply_json (String.trim str) r);
          mirror_state srv;
          true
      | exception Invalid_argument msg ->
          emit (Printf.sprintf "{\"error\":\"%s\"}" (json_escape msg));
          true
      | exception Em.Em_error.Error (Em.Em_error.Crashed _ as e) ->
          (* A crash halts the machine: reply, then stop serving.  The state
             file (if any) still holds the last checkpoint for --restore;
             deliberately nothing is saved now — a crashed process does not
             get to write. *)
          emit (em_error_json ~retries:!retries e);
          srv.crashed <- true;
          false
      | exception Em.Em_error.Error e ->
          emit (em_error_json ~retries:!retries e);
          mirror_state srv;
          true
      | exception e ->
          (* Programming errors must not kill the loop either; reply and
             keep serving. *)
          emit
            (Printf.sprintf "{\"error\":\"internal\",\"detail\":\"%s\"}"
               (json_escape (Printexc.to_string e)));
          true)

(* One input line = one batch.  Multi-query batches share a scheduling
   window, so a D-disk machine overlaps their I/Os into parallel rounds.
   Every per-query failure is caught inside [run_command] and answered with
   an error reply, and [Ctx.io_window] closes its window on any unwind
   (exception-safe bracket), so a poisoned query can neither silence the
   rest of its batch nor leave the window open for the session. *)
let run_batch srv emit line =
  let queries = String.split_on_char ';' line in
  let go () = List.for_all (fun q -> run_command srv emit q) queries in
  match queries with
  | [] | [ _ ] -> go ()
  | _ -> Em.Ctx.io_window srv.ctx go

let serve_channels ?(should_stop = fun () -> false) srv ic oc =
  let emit line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    if should_stop () then false
    else
      match input_line ic with
      | exception End_of_file -> true
      | exception Sys_error _ ->
          (* A signal can interrupt the blocking read; anything else on the
             input side also ends this client without killing the server. *)
          if should_stop () then false else true
      | "" -> loop ()
      | line -> if run_batch srv emit line then loop () else false
  in
  loop ()

let final_json ?shutdown srv =
  let s = Emalg.Online_select.summary srv.session in
  Printf.sprintf "{\"closed\":true,\"queries\":%d,\"total_ios\":%d,\"pool_pages\":%d%s}"
    s.Emalg.Online_select.queries
    (s.Emalg.Online_select.refine_ios + s.Emalg.Online_select.answer_ios)
    (match Em.Ctx.backend_pool srv.ctx with
    | Some pool -> Em.Backend.Pool.resident pool
    | None -> 0)
    (match shutdown with
    | Some reason -> Printf.sprintf ",\"shutdown\":\"%s\"" (json_escape reason)
    | None -> "")

let greeting_json srv =
  Printf.sprintf
    "{\"serving\":{\"n\":%d,\"mem\":%d,\"block\":%d,\"disks\":%d,\"backend\":\"%s\",\"workload\":\"%s\",\"seed\":%d%s}}"
    srv.meta.m_n srv.meta.m_mem srv.meta.m_block srv.meta.m_disks
    (Em.Ctx.backend_name srv.ctx) srv.meta.m_workload srv.meta.m_seed
    (if srv.restored then
       Printf.sprintf ",\"restored\":true,\"queries\":%d,\"leaves\":%d"
         (Emalg.Online_select.summary srv.session).Emalg.Online_select.queries
         (Emalg.Online_select.summary srv.session).Emalg.Online_select.leaves
     else "")

(* Graceful shutdown, step one: persist (unless the machine crashed — then
   the last pre-crash checkpoint is the truth).  Kept separate from {!close}
   so the final summary can still read the live session in between. *)
let shutdown_checkpoint srv =
  if (not srv.crashed) && Emalg.Online_select.checkpoint_store srv.session <> None then
    checkpoint_now srv

let close srv = Emalg.Online_select.close ~drop_cache:true srv.session
