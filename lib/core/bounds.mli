(** The paper's Table 1 as evaluable formulas.

    Every function returns the {e predicted number of I/Os without its hidden
    constant}; benchmarks report the ratio measured/predicted, which should
    stay flat (bounded above and below) across a sweep if the implementation
    matches the bound.  Following the paper's convention, [lg_x y] denotes
    [max 1 (log_x y)]. *)

val lg : Em.Params.t -> float -> float
(** [lg p y] is [lg_{M/B} y = max 1 (log y / log (M/B))]. *)

val scan : Em.Params.t -> n:int -> float
(** [N/B], the cost of one pass. *)

val sort : Em.Params.t -> n:int -> float
(** [(N/B) lg_{M/B} (N/B)] — the sorting bound and hence the baselines'. *)

val rounds_of : Em.Params.t -> float -> float
(** [rounds_of p ios] is [ios / D]: every formula above counts block
    transfers, and a D-disk machine retires up to [D] per parallel round, so
    dividing an I/O prediction by [D] yields its round prediction
    (Vitter–Shriver style [N/(DB) lg_{M/B}] bounds).  Identity at [D = 1]. *)

val scan_rounds : Em.Params.t -> n:int -> float
(** [N/(DB)], the round cost of one pass. *)

val sort_rounds : Em.Params.t -> n:int -> float
(** [(N/(DB)) lg_{M/B} (N/B)] — the D-disk sorting bound. *)

(** Table 1, row by row. *)

val splitters_right_lower : Em.Params.t -> Problem.spec -> float
(** [Θ((1 + aK/B) lg_{M/B} (K/B))] — Theorems 1 and 5 (tight). *)

val splitters_right_upper : Em.Params.t -> Problem.spec -> float

val splitters_left_lower : Em.Params.t -> Problem.spec -> float
(** [Θ((N/B) lg_{M/B} (N/(bB)))] — Theorems 2 and 5 (tight). *)

val splitters_left_upper : Em.Params.t -> Problem.spec -> float

val splitters_two_sided_lower : Em.Params.t -> Problem.spec -> float
(** [max] of the two grounded lower bounds (the paper's corollary). *)

val splitters_two_sided_upper : Em.Params.t -> Problem.spec -> float
(** [(aK/B) lg_{M/B}(K/B) + (N/B) lg_{M/B}(N/(bB))] — Theorem 5. *)

val partition_right_lower : Em.Params.t -> Problem.spec -> float
(** [Ω(N/B)] — Section 3. *)

val partition_right_upper : Em.Params.t -> Problem.spec -> float
(** [N/B + (aK/B) lg_{M/B} min(K, aK/B)] — Theorem 6. *)

val partition_left_lower : Em.Params.t -> Problem.spec -> float
(** [Θ((N/B) lg_{M/B} min(N/b, N/B))] — Theorems 3 and 6 (tight). *)

val partition_left_upper : Em.Params.t -> Problem.spec -> float

val partition_two_sided_lower : Em.Params.t -> Problem.spec -> float
val partition_two_sided_upper : Em.Params.t -> Problem.spec -> float

(** Companion problems (Section 1.2 and Theorem 4). *)

val multi_select : Em.Params.t -> n:int -> k:int -> float
(** [(N/B) lg_{M/B} (K/B)] — Theorem 4, tight. *)

val multi_partition : Em.Params.t -> n:int -> k:int -> float
(** [(N/B) lg_{M/B} K] — Aggarwal–Vitter, tight (Lemma 5). *)

(** {2 Distributed splitter agreement (histogram sort with sampling)}

    The Yang–Harsh–Solomonik round/sample tradeoff for agreeing on global
    splitters across [P] shards, specialised to {!Cluster.agree}'s
    deterministic refinement: with [m] evenly-spaced candidates per shard
    per unresolved boundary per iteration, every iteration shrinks a
    boundary's global-rank uncertainty from [W] to at most
    [W/(m+1) + P + 1], so [r] iterations reach
    [N/(m+1)^r + 2(P+1)], after which one gather of the residual interval
    finishes exactly.  All budgets are deterministic worst cases — measured
    agreements must land at ratio <= 1 against them, which the bench gates
    via {!Bound_track}. *)

val hss_slop : shards:int -> int
(** [2(P+1)]: the additive uncertainty per-iteration interleaving leaves
    behind, summed geometrically over all iterations. *)

val hss_gather_cap : shards:int -> int
(** Residual interval size at which {!Cluster.agree} stops refining and
    gathers the whole interval ([max 64 (6(P+1))] — comfortably above
    {!hss_slop}, so the gather is guaranteed to trigger). *)

val hss_resolve : shards:int -> tol:int -> int
(** The effective multiplicative shrink target:
    [max tol (gather_cap) - slop], floored at 1. *)

val hss_rounds : shards:int -> tol:int -> n:int -> int
(** Round-optimal refinement-iteration budget: the [r] (in 1..8) minimising
    the [r * x^(1/r)] sample-volume shape, where [x = N / resolve]. *)

val hss_per_round : shards:int -> tol:int -> rounds:int -> n:int -> int
(** [m]: candidates per shard per unresolved boundary per iteration — the
    smallest [m >= 1] with [(m+1)^rounds >= N / resolve]. *)

val hss_comm_rounds_upper : rounds:int -> float
(** [2 * rounds + 2] communication rounds: two allgather supersteps per
    iteration plus a gather and a broadcast for the exact finish. *)

val hss_sample_upper : shards:int -> boundaries:int -> rounds:int -> per_round:int -> float
(** [rounds * boundaries * P * m]: total candidates drawn across the
    agreement, the Yang–Harsh–Solomonik sample volume. *)

(** Dispatchers over the spec's variant. *)

val splitters_lower : Em.Params.t -> Problem.spec -> float
val splitters_upper : Em.Params.t -> Problem.spec -> float
val partitioning_lower : Em.Params.t -> Problem.spec -> float
val partitioning_upper : Em.Params.t -> Problem.spec -> float
