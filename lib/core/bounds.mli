(** The paper's Table 1 as evaluable formulas.

    Every function returns the {e predicted number of I/Os without its hidden
    constant}; benchmarks report the ratio measured/predicted, which should
    stay flat (bounded above and below) across a sweep if the implementation
    matches the bound.  Following the paper's convention, [lg_x y] denotes
    [max 1 (log_x y)]. *)

val lg : Em.Params.t -> float -> float
(** [lg p y] is [lg_{M/B} y = max 1 (log y / log (M/B))]. *)

val scan : Em.Params.t -> n:int -> float
(** [N/B], the cost of one pass. *)

val sort : Em.Params.t -> n:int -> float
(** [(N/B) lg_{M/B} (N/B)] — the sorting bound and hence the baselines'. *)

val rounds_of : Em.Params.t -> float -> float
(** [rounds_of p ios] is [ios / D]: every formula above counts block
    transfers, and a D-disk machine retires up to [D] per parallel round, so
    dividing an I/O prediction by [D] yields its round prediction
    (Vitter–Shriver style [N/(DB) lg_{M/B}] bounds).  Identity at [D = 1]. *)

val scan_rounds : Em.Params.t -> n:int -> float
(** [N/(DB)], the round cost of one pass. *)

val sort_rounds : Em.Params.t -> n:int -> float
(** [(N/(DB)) lg_{M/B} (N/B)] — the D-disk sorting bound. *)

(** Table 1, row by row. *)

val splitters_right_lower : Em.Params.t -> Problem.spec -> float
(** [Θ((1 + aK/B) lg_{M/B} (K/B))] — Theorems 1 and 5 (tight). *)

val splitters_right_upper : Em.Params.t -> Problem.spec -> float

val splitters_left_lower : Em.Params.t -> Problem.spec -> float
(** [Θ((N/B) lg_{M/B} (N/(bB)))] — Theorems 2 and 5 (tight). *)

val splitters_left_upper : Em.Params.t -> Problem.spec -> float

val splitters_two_sided_lower : Em.Params.t -> Problem.spec -> float
(** [max] of the two grounded lower bounds (the paper's corollary). *)

val splitters_two_sided_upper : Em.Params.t -> Problem.spec -> float
(** [(aK/B) lg_{M/B}(K/B) + (N/B) lg_{M/B}(N/(bB))] — Theorem 5. *)

val partition_right_lower : Em.Params.t -> Problem.spec -> float
(** [Ω(N/B)] — Section 3. *)

val partition_right_upper : Em.Params.t -> Problem.spec -> float
(** [N/B + (aK/B) lg_{M/B} min(K, aK/B)] — Theorem 6. *)

val partition_left_lower : Em.Params.t -> Problem.spec -> float
(** [Θ((N/B) lg_{M/B} min(N/b, N/B))] — Theorems 3 and 6 (tight). *)

val partition_left_upper : Em.Params.t -> Problem.spec -> float

val partition_two_sided_lower : Em.Params.t -> Problem.spec -> float
val partition_two_sided_upper : Em.Params.t -> Problem.spec -> float

(** Companion problems (Section 1.2 and Theorem 4). *)

val multi_select : Em.Params.t -> n:int -> k:int -> float
(** [(N/B) lg_{M/B} (K/B)] — Theorem 4, tight. *)

val multi_partition : Em.Params.t -> n:int -> k:int -> float
(** [(N/B) lg_{M/B} K] — Aggarwal–Vitter, tight (Lemma 5). *)

(** Dispatchers over the spec's variant. *)

val splitters_lower : Em.Params.t -> Problem.spec -> float
val splitters_upper : Em.Params.t -> Problem.spec -> float
val partitioning_lower : Em.Params.t -> Problem.spec -> float
val partitioning_upper : Em.Params.t -> Problem.spec -> float
