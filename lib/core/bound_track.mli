(** Bound-ratio telemetry: Table 1 as gauges.

    Each {!row} pairs one Table 1 algorithm with its upper-bound formula
    from {!Bounds}.  {!run} measures the algorithm at a concrete geometry;
    {!publish} exports [bound_measured_ios], [bound_predicted_ios] and
    [bound_ratio] gauges (labelled with the row name and the full
    (N, K, a, b, M, B) geometry) into an {!Em.Metrics} registry.  If the
    implementation matches the paper, every ratio stays inside a small
    constant band across any sweep — which CI enforces against the blessed
    ceilings in [test/golden/ratios.expected]. *)

type row =
  | Splitters_right
  | Splitters_left
  | Splitters_two_sided
  | Partition_right
  | Partition_left
  | Partition_two_sided

val all : row list

val name : row -> string
(** Stable snake_case identifier, e.g. ["splitters_right"] — the [row] label
    of the exported gauges and the key of [ratios.expected]. *)

val of_name : string -> row option

val predicted : row -> Em.Params.t -> Problem.spec -> float
(** The row's Table 1 {e upper}-bound formula (no hidden constant). *)

val default_spec : row -> n:int -> Problem.spec
(** A representative valid spec of the row's regime at input size [n]
    (K = 16, [a = n/256], [b = n/8] where the regime constrains them). *)

val solve : row -> (int -> int -> int) -> int Em.Vec.t -> Problem.spec -> unit
(** Run the row's algorithm and free its outputs (costs stay metered). *)

type sample = {
  s_row : row;
  s_spec : Problem.spec;
  s_params : Em.Params.t;
  measured_ios : int;
  measured_rounds : int;  (** parallel I/O rounds ([= measured_ios] at D = 1) *)
  seeks : int;  (** I/Os the tracer classified as random *)
  comparisons : int;
  mem_peak : int;
  wall_ns : float;  (** host wall-clock around the measured computation *)
  predicted_ios : float;
  ratio : float;  (** measured_ios / predicted_ios *)
}

val run : ?kind:Workload.kind -> ?seed:int -> Em.Params.t -> row -> Problem.spec -> sample
(** Measure the row on a fresh machine loaded with a workload
    (default: the adversarial [Pi_hard] layout, seed 2014). *)

val publish_values :
  ?measured_rounds:int ->
  Em.Metrics.t -> Em.Params.t -> row -> Problem.spec -> measured_ios:int -> float
(** Publish the three gauges from an externally measured I/O count; returns
    the ratio.  When [measured_rounds] is given and the machine has more
    than one disk, also publishes [bound_measured_rounds],
    [bound_predicted_rounds] (upper bound / D) and [bound_round_ratio]. *)

val publish : Em.Metrics.t -> sample -> float
(** Publish a {!run} result; returns the ratio. *)

val publish_cluster :
  Em.Metrics.t ->
  shards:int ->
  algo:string ->
  boundaries:int ->
  rounds_budget:int ->
  per_round:int ->
  iterations:int ->
  samples:int ->
  comm_rounds:int ->
  float * float
(** Publish a {!Cluster.agree} run against its deterministic HSS budgets
    ({!Bounds.hss_comm_rounds_upper} and {!Bounds.hss_sample_upper}), as
    gauges labelled [{algo, shards}]: measured/budget/ratio for both
    communication rounds and sample volume.  Returns
    [(round_ratio, sample_ratio)] — both [<= 1] by construction, which the
    cluster bench gates in CI. *)
