(** A sharded EM machine: P independent {!Em.Ctx} machines plus a metered
    BSP interconnect.

    Each shard is a full machine of its own — own backend instance, own
    M-word memory ledger, own D disks — created with a shard identity so
    its trace events carry the shard id (see {!Em.Ctx.create}).  On top sit
    the classic collectives ({!scatter}, {!broadcast}, {!all_gather},
    {!all_to_all}), each one BSP superstep billed on a dedicated
    communication ledger: {!Em.Stats.record_comm} counts every off-diagonal
    word, and {!Em.Stats.with_comm_round} merges the transfers of a
    superstep into one communication round.  The two ledgers obey the same
    window discipline — comm rounds telescope under nesting exactly like
    Vitter–Shriver I/O rounds do under {!Em.Ctx.io_window}.

    The design invariant extends PR 5's "disks change scheduling, never
    work": {e shards change communication, never work}.  Every driver below
    produces outputs identical to its P = 1 run at every P, and total
    counted work stays within a constant factor; only the communication
    ledger varies with P. *)

type 'a t

val shards_env_var : string
(** ["EM_SHARDS"]. *)

val default_shards : unit -> int
(** [$EM_SHARDS], defaulting to [1]; anything not a positive integer raises
    [Invalid_argument]. *)

val create :
  ?trace:Em.Trace.t ->
  ?backend:Em.Backend.spec ->
  ?backend_dir:string ->
  ?pool_pages:int ->
  ?disks:int ->
  ?shards:int ->
  Em.Params.t ->
  'a t
(** [P] fresh machines sharing one tracer (so {!Em.Trace_report} rollups
    see the whole cluster) and a zeroed communication ledger.  [shards]
    defaults to {!default_shards}; the remaining options are forwarded to
    every {!Em.Ctx.create}.  A [P = 1] cluster attaches no shard ids at
    all, so its traces and goldens are bit-for-bit those of a plain single
    machine. *)

val size : 'a t -> int
val ctx : 'a t -> int -> 'a Em.Ctx.t
val comm : 'a t -> Em.Stats.t
(** The communication ledger.  Only {!Cluster} operations write to it. *)

val trace : 'a t -> Em.Trace.t
val params : 'a t -> Em.Params.t
val close : 'a t -> unit

val totals : 'a t -> int * int * int
(** Summed [(reads, writes, comparisons)] across all shards — the cluster's
    total counted work, the quantity the sharding invariant keeps flat. *)

val superstep : 'a t -> (unit -> 'b) -> 'b
(** [Em.Stats.with_comm_round] on the cluster ledger: all transfers inside
    merge into (at most) one communication round.  Nests; inner supersteps
    telescope into the outermost. *)

val place : 'a t -> 'a array -> 'a Em.Vec.t array
(** Balanced contiguous striping: shard [i] receives positions
    [i*n/P, (i+1)*n/P), so shard lengths differ by at most one.  Placement
    models initially-distributed input and is not billed as
    communication. *)

(** {2 Collectives}

    One superstep each.  Reads are billed to the source shard, writes to
    the destination, and every off-diagonal word crosses the communication
    ledger exactly once; shard-to-itself movement is local work and is
    never billed.  Inputs are not freed. *)

val scatter : 'a t -> root:int -> 'a Em.Vec.t -> 'a Em.Vec.t array
(** Split a vector living on [root] into P balanced contiguous pieces, one
    per shard ({!place} geometry). *)

val broadcast : 'a t -> root:int -> 'a Em.Vec.t -> 'a Em.Vec.t array
(** Copy [root]'s vector to every shard (one metered pass over the source
    feeds all P - 1 copies).  Slot [root] of the result is the original. *)

val all_gather : 'a t -> 'a Em.Vec.t array -> 'a Em.Vec.t array
(** Every shard ends with the concatenation (in shard order) of all
    parts. *)

val all_to_all : 'a t -> 'a Em.Vec.t array array -> 'a Em.Vec.t array array
(** [chunks.(i).(j)] lives on shard [i] and is bound for shard [j]; the
    result transposes: slot [(j).(i)] is shard [i]'s chunk landed on
    [j]. *)

(** {2 Splitter agreement}

    Deterministic histogram sort with sampling (Yang–Harsh–Solomonik
    style; budgets in {!Bounds}).  Each refinement iteration has every
    shard contribute evenly-locally-ranked candidates per unresolved
    target rank, then answer exact [(rank_lt, rank_le)] histograms — two
    allgather supersteps shrinking each target's global-rank uncertainty
    by the {!Bounds.hss_per_round} factor.  Residual intervals are
    gathered and finished exactly.  Communication rounds stay within
    {!Bounds.hss_comm_rounds_upper} and drawn candidates within
    {!Bounds.hss_sample_upper}, deterministically. *)

type 'a agreement = {
  values : 'a array;  (** the agreed boundary values, one per target *)
  ranks : int array;
      (** exact global [rank_le] of each value — the cut position every
          shard's local [rank_le] cuts telescope to *)
  ranks_lt : int array;  (** exact global [rank_lt] of each value *)
  targets : int array;
  tol : int;
      (** every [ranks.(j)] is within [tol] of [targets.(j)] (0 = the
          value's rank interval contains the target exactly) *)
  iterations : int;  (** refinement iterations used, <= [rounds_budget] *)
  rounds_budget : int;  (** {!Bounds.hss_rounds} (or the [?rounds] override) *)
  per_round : int;  (** {!Bounds.hss_per_round}: candidates per shard/target *)
  samples : int;  (** candidates actually drawn *)
  gathered : int;  (** words pulled by the exact finish *)
}

val agree :
  ?tol:int ->
  ?rounds:int ->
  ('a -> 'a -> int) ->
  'a t ->
  sorted:'a Em.Vec.t array ->
  targets:int array ->
  'a agreement
(** Agree on the values at global ranks [targets] (1-based, in
    [1..N]) of the multiset union of per-shard sorted runs.  [tol = 0]
    (default) resolves every target exactly — the returned value [v]
    satisfies [ranks_lt v < target <= ranks v], which is duplicate-proof
    and P-invariant.  [tol > 0] may stop early at any value whose cut rank
    lands within [tol].  [rounds] overrides the iteration budget (the
    exact gather finish still runs, so results stay exact even at
    [rounds:1]).  Raises [Invalid_argument] on out-of-range targets. *)

val agree_splitters :
  ?eps:float ->
  ?rounds:int ->
  ('a -> 'a -> int) ->
  'a t ->
  sorted:'a Em.Vec.t array ->
  k:int ->
  'a agreement
(** {!agree} at the [k - 1] quantile ranks [j*N/k] with
    [tol = eps*N/(2k)], yielding a (1+eps)-balanced global [k]-partition
    ([eps] defaults to 0: exact quantiles). *)

(** {2 Sharded drivers}

    All four run local sort, splitter agreement, local cut at the agreed
    values, one metered all-to-all exchange, local finish — and all four
    produce outputs identical to their P = 1 run.  Inputs are preserved;
    intermediate per-shard runs are freed.  Pass a {e plain} (uncounted)
    comparator: every comparison is counted on the ledger of the shard
    that performs it, so {!totals} is the cluster's true counted work. *)

val sort :
  ?eps:float ->
  ?rounds:int ->
  ('a -> 'a -> int) ->
  'a t ->
  'a Em.Vec.t array ->
  'a Em.Vec.t array * 'a agreement option
(** Globally sort: result slot [i] lives on shard [i], slots concatenate
    (in shard order) to the stable sort of the concatenated inputs.
    [eps] (default 0.5) only balances the intermediate exchange — the
    output is P-invariant regardless.  At P = 1 (or N = 0) no agreement
    runs and the agreement is [None]. *)

val owner : p:int -> k:int -> int -> int
(** [owner ~p ~k g = g*P/k]: the shard that hosts output part [g] of a
    [k]-way split — contiguous and balanced for any [k], identity when
    [k = P]. *)

val partition :
  ?eps:float ->
  ?rounds:int ->
  ('a -> 'a -> int) ->
  'a t ->
  'a Em.Vec.t array ->
  k:int ->
  'a Em.Vec.t array * 'a agreement option
(** Global [k]-way multi-partition: part [g] (sorted, on shard
    [owner ~p ~k g]) holds the elements between quantile boundaries [g]
    and [g + 1]; parts concatenate to the global sort.  [eps] defaults to
    0 — exact quantile cuts, hence P-invariant parts; [eps > 0] trades
    balance slack for fewer samples, still P-invariant for a fixed
    [eps]. *)

val multiselect :
  ?rounds:int ->
  ('a -> 'a -> int) ->
  'a t ->
  'a Em.Vec.t array ->
  ranks:int array ->
  'a array * 'a agreement
(** The values at the given global ranks, exactly ([tol = 0]). *)

val splitters :
  ?eps:float ->
  ?rounds:int ->
  ('a -> 'a -> int) ->
  'a t ->
  'a Em.Vec.t array ->
  k:int ->
  'a agreement
(** Approximate splitters: {!agree_splitters} over freshly local-sorted
    inputs. *)
