(** Optimal multi-selection (Section 4.2 / Theorem 4 of the paper):
    report the elements of [K] given ranks in
    [O((N/B) lg_{M/B} (K/B))] I/Os.

    Structure, following the paper exactly:

    - {b Base case} [K <= m = Θ(M)]: find [Θ(M)] splitters of [S] in linear
      I/Os (the {!Quantile.Mem_splitters} stand-in for Hu et al. [6]), so
      every rank falls into a bucket of known size; build one instance of
      {!Intermixed} selection with one group per requested rank (an element
      joins group [i] if it lies in the bucket containing rank [r_i]) and a
      re-based target per group; solve it in [O(|D|/B) = O(N/B)] I/Os.
    - {b General case} [K > m]: multi-partition [S] at the ranks
      [r_m, r_2m, ...] ([O((N/B) lg_{M/B} (K/B))] I/Os via
      {!Multi_partition}), then run the base case inside each partition with
      its [<= m] re-based ranks.

    Ranks stream from disk and results stream to disk, so [K] may exceed the
    memory budget.  Duplicate keys resolve positionally (stable). *)

val batch_size : 'a Em.Ctx.t -> int
(** The base-case capacity [m = Θ(M)] (bounded by {!Intermixed.max_groups}). *)

val open_session : ('a -> 'a -> int) -> 'a Em.Vec.t -> 'a Emalg.Online_select.t
(** Open an {!Emalg.Online_select} session over [v] whose batch plan is this
    module's Theorem-4 engine: a pristine {!Emalg.Online_select.drain}
    delegates to it (historical batch costs), while individual queries
    refine lazily.  {!select_vec} is exactly open/drain/close. *)

val select_vec :
  ('a -> 'a -> int) -> 'a Em.Vec.t -> ranks:int Em.Vec.t -> 'a Em.Vec.t
(** [select_vec cmp v ~ranks] with ranks strictly increasing in
    [1 .. length v] returns the selected elements in rank order.  Input and
    ranks are preserved.  Implemented as a one-shot {!open_session} drain.
    @raise Invalid_argument on malformed ranks. *)

val select : ('a -> 'a -> int) -> 'a Em.Vec.t -> ranks:int array -> 'a array
(** Convenience wrapper over {!select_vec} (spills the ranks, loads the
    result; the extra [2 * ceil(K/B)] I/Os are on the caller). *)
