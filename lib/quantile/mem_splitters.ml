(* Splitters at exact rank spacing in (near-)linear I/O; see the interface
   for the algorithm outline.  All work past the tagging pass happens on
   (key, position) pairs so that keys are pairwise distinct, which the
   sample-splitter guarantee requires. *)

let tagged_cmp = Emalg.Order.tagged

type 'a emit_state = {
  out : ('a * int) array;  (* collected splitters, with input positions *)
  mutable emitted : int;
  total : int;  (* number of splitters to produce *)
  spacing : int;
  mutable carry : int;  (* elements seen since the last emitted splitter *)
}

(* Feed a sorted in-memory batch of tagged elements through the emitter. *)
let emit_sorted_batch st batch =
  Array.iter
    (fun tagged ->
      st.carry <- st.carry + 1;
      if st.carry = st.spacing then begin
        if st.emitted < st.total then begin
          st.out.(st.emitted) <- tagged;
          st.emitted <- st.emitted + 1
        end;
        st.carry <- 0
      end)
    batch

(* Process (and free) a tagged vector, emitting splitters in order. *)
let rec go ctx cmp st tv =
  let tcmp = tagged_cmp cmp in
  let nt = Em.Vec.length tv in
  let base = Emalg.Layout.big_load ctx in
  if nt = 0 then Em.Vec.free tv
  else if nt <= base then begin
    Em.Phase.with_label ctx "splitter-leaf" (fun () ->
        Emalg.Scan.with_loaded tv (fun batch ->
            Emalg.Mem_sort.sort tcmp batch;
            emit_sorted_batch st batch));
    Em.Vec.free tv
  end
  else begin
    let target = Emalg.Split_step.default_target ctx ~n:nt in
    let buckets = Emalg.Split_step.split tcmp tv ~target_buckets:target in
    Array.iter (go ctx cmp st) buckets
  end

let find_tagged cmp v ~spacing =
  let ctx = Em.Vec.ctx v in
  Emalg.Layout.require_min_geometry ctx;
  if spacing < 1 then invalid_arg "Mem_splitters.find: spacing must be >= 1";
  let n = Em.Vec.length v in
  let total = max 0 (((n + spacing - 1) / spacing) - 1) in
  if total = 0 then [||]
  else begin
    (* Sentinel for [Array.make] only: the value is always overwritten before
       being read, so no unmetered information flows into the algorithm. *)
    let first = (Em.Vec.Oracle.get v 0, 0) in
    let st = { out = Array.make total first; emitted = 0; total; spacing; carry = 0 } in
    let base = Emalg.Layout.big_load ctx in
    if n <= base then
      (* Small input: read it once, tagging in memory. *)
      Em.Ctx.with_words ctx n (fun () ->
          Em.Reader.with_reader v (fun r ->
              let pairs = Array.make n first in
              for i = 0 to n - 1 do
                pairs.(i) <- (Em.Reader.next r, i)
              done;
              Emalg.Mem_sort.sort (tagged_cmp cmp) pairs;
              emit_sorted_batch st pairs))
    else begin
      (* First level tags inline; deeper levels work on the tagged pairs. *)
      let target = Emalg.Split_step.default_target ctx ~n in
      let buckets = Emalg.Split_step.split_tagging cmp v ~target_buckets:target in
      Array.iter (go ctx cmp st) buckets
    end;
    if st.emitted <> total then
      invalid_arg "Mem_splitters.find: internal error (emitted count mismatch)";
    st.out
  end

let find cmp v ~spacing = Array.map fst (find_tagged cmp v ~spacing)

let default_spacing ctx ~n =
  let m = Em.Ctx.mem_capacity ctx in
  max 1 (((8 * n) + m - 1) / m)

let memory_splitters_tagged cmp v =
  let spacing = default_spacing (Em.Vec.ctx v) ~n:(Em.Vec.length v) in
  (find_tagged cmp v ~spacing, spacing)

let memory_splitters cmp v =
  let spacing = default_spacing (Em.Vec.ctx v) ~n:(Em.Vec.length v) in
  (find cmp v ~spacing, spacing)
