(* Checkpointed, crash-restartable drivers; see the interface. *)

type ('s, 'r) step = Next of 's | Done of 'r

type 'r outcome = {
  result : ('r, Em.Em_error.t) result;
  restarts : int;
  saves : int;
  loads : int;
  save_ios : int;
  load_ios : int;
  max_step_ios : int;
}

let drive ctx ?(max_restarts = 100) ~init ~words ~step () =
  let cp = Em.Checkpoint.create ctx in
  let stats = ctx.Em.Ctx.stats in
  Em.Checkpoint.save cp ~words:(words init) init;
  let restarts = ref 0 in
  let max_step_ios = ref 0 in
  let rec run state =
    let before = Em.Stats.ios stats in
    let note_step () = max_step_ios := max !max_step_ios (Em.Stats.ios stats - before) in
    match step state with
    | Done r ->
        note_step ();
        Ok r
    | Next state' ->
        note_step ();
        Em.Checkpoint.save cp ~words:(words state') state';
        run state'
    | exception Em.Em_error.Error (Em.Em_error.Crashed _ as crash) ->
        note_step ();
        recover crash
    | exception Em.Em_error.Error e ->
        note_step ();
        Error e
  and recover crash =
    if !restarts >= max_restarts then Error crash
    else begin
      incr restarts;
      (* The crash wiped RAM: whatever the interrupted step had charged to
         the ledger is gone, and only the checkpoint slot survives. *)
      Em.Stats.wipe_memory stats;
      match Em.Checkpoint.load cp with
      | Some state -> run state
      | None -> assert false (* [init] was saved before the first step *)
      | exception Em.Em_error.Error (Em.Em_error.Crashed _ as crash') ->
          (* Crashing again mid-resume costs another restart. *)
          recover crash'
    end
  in
  let result = run init in
  {
    result;
    restarts = !restarts;
    saves = Em.Checkpoint.saves cp;
    loads = Em.Checkpoint.loads cp;
    save_ios = Em.Checkpoint.save_ios cp;
    load_ios = Em.Checkpoint.load_ios cp;
    max_step_ios = !max_step_ios;
  }

(* Restartable external sort.

   The state machine cuts the sort at its natural pass boundaries: one
   formed run per step, then one merged group per step.  All bulk data lives
   on the device; the checkpoint state holds only handles (block ids of
   already-written runs and the input), so its serialized size is a handful
   of words per run. *)

type 'a sort_state =
  | Forming of { consumed : int; runs : 'a Em.Vec.t list (* newest first *) }
  | Merging of { pending : 'a Em.Vec.t list; merged : 'a Em.Vec.t list (* newest first *) }

let vec_words v = Em.Vec.num_blocks v + 2

let sort_state_words = function
  | Forming { runs; _ } -> 2 + List.fold_left (fun acc r -> acc + vec_words r) 0 runs
  | Merging { pending; merged } ->
      2 + List.fold_left (fun acc r -> acc + vec_words r) 0 (pending @ merged)

let split_at n list =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] list

let sort_step cmp v state =
  let ctx = Em.Vec.ctx v in
  let b = Em.Ctx.block_size ctx in
  let n = Em.Vec.length v in
  let input_blocks = Em.Vec.block_ids v in
  match state with
  | Forming { consumed; runs } when consumed < n ->
      (* Form the next run from a whole-block window of the input.  Reading
         through a sub-vector keeps the step independent of any scan state
         lost in a crash. *)
      let load = Layout.load_size ctx ~reserved_blocks:2 in
      let chunk_blocks = max 1 (load / b) in
      let first_block = consumed / b in
      let len = min (n - consumed) (chunk_blocks * b) in
      let nblocks = Em.Params.blocks_of_elems ctx.Em.Ctx.params len in
      let window = Em.Vec.of_blocks ctx (Array.sub input_blocks first_block nblocks) len in
      let run =
        Em.Phase.with_label ctx "run-formation" (fun () ->
            Scan.with_loaded window (fun chunk ->
                Mem_sort.sort cmp chunk;
                Scan.vec_of_array_io ctx chunk))
      in
      Next (Forming { consumed = consumed + len; runs = run :: runs })
  | Forming { runs; _ } -> (
      match List.rev runs with
      | [] -> Done (Em.Vec.empty ctx)
      | [ single ] -> Done single
      | pending -> Next (Merging { pending; merged = [] }))
  | Merging { pending = []; merged = [ out ] } -> Done out
  | Merging { pending = []; merged } -> Next (Merging { pending = List.rev merged; merged = [] })
  | Merging { pending = [ single ]; merged = [] } -> Done single
  | Merging { pending; merged } ->
      let fanout = Merge.max_fanout ctx in
      let group, rest = split_at fanout pending in
      let out = Em.Phase.with_label ctx "merge" (fun () -> Merge.merge cmp group) in
      (* Only reached when the merge completed: a crash inside [Merge.merge]
         unwinds before this free, so the group is still intact (and still
         referenced by the last checkpoint) on resume. *)
      List.iter Em.Vec.free group;
      Next (Merging { pending = rest; merged = out :: merged })

let sort ?max_restarts cmp v =
  let ctx = Em.Vec.ctx v in
  Layout.require_min_geometry ctx;
  drive ctx ?max_restarts
    ~init:(Forming { consumed = 0; runs = [] })
    ~words:sort_state_words
    ~step:(sort_step cmp v)
    ()
