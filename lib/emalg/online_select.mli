(** Online multiselection sessions: deferred sorting under a query stream.

    A session wraps an on-device vector in a {e pivot-interval tree} whose
    leaves are contiguous rank intervals of the (conceptually) sorted input.
    Nothing is sorted up front.  Each [select]/[quantile]/[range] query
    refines {e only} the intervals it touches — an unsorted leaf is split
    with {!Split_step} (one distribution pass) until the interval containing
    the queried rank fits a memory load, at which point it is sorted once and
    written back as a sorted run.  Repeated or nearby queries then cost a
    single block I/O, so the amortized I/Os per query converge toward free
    while an adversarial stream never pays more than one full
    distribution sort in total (Barbay–Gupta, "Near-Optimal Online
    Multiselection in Internal and External Memory").

    Refinement invariant: intervals only ever {e split}, never re-merge.
    The tree's leaf set is a partition of [0 .. N-1] into rank intervals
    that monotonically refines over the session's lifetime; a [Sorted] leaf
    stays sorted forever.  This is what makes per-query costs amortizable —
    work done for one query is never undone by another.

    Cost accounting: every reply carries two {!Em.Stats.delta} brackets —
    the {e refine} part (tree restructuring: distribution passes and leaf
    sorts) and the whole-query [cost]; [answer_ios = cost - refine] is the
    irreducible lookup price (one block read per touched sorted block).
    Deltas are taken with {!Em.Stats.effective_rounds}, so a query issued
    inside an already-open scheduling window at [D > 1] still reports its
    own round cost.

    The input vector is {e preserved} (never freed, never rewritten); all
    tree storage is owned by the session and released by {!close}.  Under a
    [cached] backend the hot intervals ride the shared buffer pool; pass
    [~drop_cache:true] to {!close} to also evict the session's pages.

    Optional arguments follow the library-wide canonical order
    [?batch_plan ?prefetch] before the comparator (see DESIGN.md). *)

type 'a t
(** A live query session. *)

type query =
  | Select of int  (** [Select k]: the element of rank [k], 1-based. *)
  | Quantile of float
      (** [Quantile phi]: the element of rank [max 1 (ceil (phi * n))],
          [0 < phi <= 1] — same convention as
          {!Quantile.Exact_quantiles.phi_quantile}. *)
  | Range of int * int
      (** [Range (a, b)]: the elements of ranks [a .. b] inclusive
          (1-based), in rank order.  The reply holds [b - a + 1] values and
          must fit a half-memory load. *)

type 'a reply = {
  values : 'a array;  (** the selected elements, in rank order *)
  cost : Em.Stats.delta;  (** whole-query cost bracket *)
  refine : Em.Stats.delta;
      (** the part of [cost] spent restructuring the tree (distribution
          passes + leaf sorts); zero once the touched intervals are sorted *)
  answer_ios : int;
      (** I/Os of the lookup proper: [delta_ios cost - delta_ios refine] *)
  splits : int;  (** interval splits this query caused *)
}

type summary = {
  queries : int;  (** queries answered so far *)
  refine_ios : int;  (** cumulative refinement I/Os *)
  answer_ios : int;  (** cumulative lookup I/Os *)
  splits : int;  (** cumulative interval splits *)
  leaves : int;  (** current leaf intervals (monotone non-decreasing) *)
  sorted_leaves : int;  (** leaves already holding sorted runs *)
}
(** Session-cumulative accounting; [refine_ios + answer_ios] is the total
    metered cost of all queries, the quantity the amortized analysis (and
    [BENCH_online.json]) divides by [queries]. *)

val open_session :
  ?batch_plan:(ranks:int Em.Vec.t -> 'a Em.Vec.t) ->
  ?prefetch:int ->
  ('a -> 'a -> int) ->
  'a Em.Ctx.t ->
  'a Em.Vec.t ->
  'a t
(** [open_session cmp ctx v] wraps [v] (which must live on [ctx]) in a fresh
    session.  Costs zero I/Os — the tree starts as one raw leaf backed by
    the preserved input.

    [batch_plan] is the escape hatch that lets batch entry points
    ({!Core.Multi_select}) be thin session wrappers without changing their
    golden costs: a {!drain} on a {e pristine} session (no query answered
    yet) delegates to the plan verbatim.  [prefetch] sets the reader
    look-ahead of streaming fallbacks (default [D - 1]).
    @raise Invalid_argument if [v] does not live on [ctx] or the geometry
    is below the library minimum. *)

val query : 'a t -> query -> 'a reply
(** Answer one query, refining the touched intervals first.  Duplicate keys
    resolve positionally (stable), matching batch {!Core.Multi_select}.
    @raise Invalid_argument on an out-of-range rank/quantile or a closed
    session. *)

val select : 'a t -> int -> 'a
(** [select t k] = the single value of [query t (Select k)]. *)

val drain : 'a t -> ranks:int Em.Vec.t -> 'a Em.Vec.t
(** Answer every rank of a strictly-increasing rank stream and return the
    selected elements in rank order (the batch multiselection contract).
    On a pristine session with a [batch_plan], delegates to the plan —
    bit-identical I/Os to the historical batch path.  Otherwise streams the
    ranks through {!query}, reusing whatever refinement earlier queries
    already paid for. *)

val summary : 'a t -> summary
val length : 'a t -> int

val intervals : 'a t -> (int * int * bool) list
(** Current leaf partition as [(lo, len, sorted)] triples in rank order
    ([lo] 0-based).  Successive calls refine monotonically: each new
    partition subdivides the previous one (never re-merges), and [sorted]
    never reverts to [false]. *)

val close : ?drop_cache:bool -> 'a t -> unit
(** Release every vector the session owns (the input is preserved).  With
    [~drop_cache:true] also evicts the family's buffer-pool pages
    ({!Em.Backend.Pool.drop_all}), so an idle closed session holds zero pool
    pages.  Idempotent; further queries raise [Invalid_argument]. *)
