(** Online multiselection sessions: deferred sorting under a query stream.

    A session wraps an on-device vector in a {e pivot-interval tree} whose
    leaves are contiguous rank intervals of the (conceptually) sorted input.
    Nothing is sorted up front.  Each [select]/[quantile]/[range] query
    refines {e only} the intervals it touches — an unsorted leaf is split
    with {!Split_step} (one distribution pass) until the interval containing
    the queried rank fits a memory load, at which point it is sorted once and
    written back as a sorted run.  Repeated or nearby queries then cost a
    single block I/O, so the amortized I/Os per query converge toward free
    while an adversarial stream never pays more than one full
    distribution sort in total (Barbay–Gupta, "Near-Optimal Online
    Multiselection in Internal and External Memory").

    Refinement invariant: intervals only ever {e split}, never re-merge.
    The tree's leaf set is a partition of [0 .. N-1] into rank intervals
    that monotonically refines over the session's lifetime; a [Sorted] leaf
    stays sorted forever.  This is what makes per-query costs amortizable —
    work done for one query is never undone by another.

    Cost accounting: every reply carries two {!Em.Stats.delta} brackets —
    the {e refine} part (tree restructuring: distribution passes and leaf
    sorts) and the whole-query [cost]; [answer_ios = cost - refine] is the
    irreducible lookup price (one block read per touched sorted block).
    Deltas are taken with {!Em.Stats.effective_rounds}, so a query issued
    inside an already-open scheduling window at [D > 1] still reports its
    own round cost.

    The input vector is {e preserved} (never freed, never rewritten); all
    tree storage is owned by the session and released by {!close}.  Under a
    [cached] backend the hot intervals ride the shared buffer pool; pass
    [~drop_cache:true] to {!close} to also evict the session's pages.

    {b Crash survivability.}  Monotone refinement makes the whole session
    state a flat list of {e handles}: leaf intervals with the vectors
    backing them, plus four counters — never bulk data.  {!snapshot}
    captures it, {!checkpoint} persists it through {!Em.Checkpoint} (saves
    cost [ceil(words/B)] metered writes where [words] counts handles only),
    and {!restore} rebuilds an equivalent session from the store after a
    crash, paying the metered resume read.  While a store is attached the
    session defers the frees refinement would normally perform until the
    next save, so the saved snapshot's handles stay valid at every instant —
    a crash loses at most the (orphaned) refinement work since the last
    save.  With no store attached, nothing changes: free timing, costs and
    traces are bit-identical to the historical behaviour.

    Optional arguments follow the library-wide canonical order
    [?batch_plan ?prefetch] before the comparator (see DESIGN.md). *)

type 'a t
(** A live query session. *)

type query =
  | Select of int  (** [Select k]: the element of rank [k], 1-based. *)
  | Quantile of float
      (** [Quantile phi]: the element of rank [max 1 (ceil (phi * n))],
          [0 < phi <= 1] — same convention as
          {!Quantile.Exact_quantiles.phi_quantile}. *)
  | Range of int * int
      (** [Range (a, b)]: the elements of ranks [a .. b] inclusive
          (1-based), in rank order.  The reply holds [b - a + 1] values and
          must fit a half-memory load. *)

type 'a reply = {
  values : 'a array;  (** the selected elements, in rank order *)
  cost : Em.Stats.delta;  (** whole-query cost bracket *)
  refine : Em.Stats.delta;
      (** the part of [cost] spent restructuring the tree (distribution
          passes + leaf sorts); zero once the touched intervals are sorted *)
  answer_ios : int;
      (** I/Os of the lookup proper: [delta_ios cost - delta_ios refine] *)
  splits : int;  (** interval splits this query caused *)
}

type summary = {
  queries : int;  (** queries answered so far *)
  refine_ios : int;  (** cumulative refinement I/Os *)
  answer_ios : int;  (** cumulative lookup I/Os *)
  splits : int;  (** cumulative interval splits *)
  leaves : int;  (** current leaf intervals (monotone non-decreasing) *)
  sorted_leaves : int;  (** leaves already holding sorted runs *)
}
(** Session-cumulative accounting; [refine_ios + answer_ios] is the total
    metered cost of all queries, the quantity the amortized analysis (and
    [BENCH_online.json]) divides by [queries]. *)

val open_session :
  ?batch_plan:(ranks:int Em.Vec.t -> 'a Em.Vec.t) ->
  ?prefetch:int ->
  ('a -> 'a -> int) ->
  'a Em.Ctx.t ->
  'a Em.Vec.t ->
  'a t
(** [open_session cmp ctx v] wraps [v] (which must live on [ctx]) in a fresh
    session.  Costs zero I/Os — the tree starts as one raw leaf backed by
    the preserved input.

    [batch_plan] is the escape hatch that lets batch entry points
    ({!Core.Multi_select}) be thin session wrappers without changing their
    golden costs: a {!drain} on a {e pristine} session (no query answered
    yet) delegates to the plan verbatim.  [prefetch] sets the reader
    look-ahead of streaming fallbacks (default [D - 1]).
    @raise Invalid_argument if [v] does not live on [ctx] or the geometry
    is below the library minimum. *)

val query : 'a t -> query -> 'a reply
(** Answer one query, refining the touched intervals first.  Duplicate keys
    resolve positionally (stable), matching batch {!Core.Multi_select}.
    @raise Invalid_argument on an out-of-range rank/quantile or a closed
    session. *)

val select : 'a t -> int -> 'a
(** [select t k] = the single value of [query t (Select k)]. *)

val drain : 'a t -> ranks:int Em.Vec.t -> 'a Em.Vec.t
(** Answer every rank of a strictly-increasing rank stream and return the
    selected elements in rank order (the batch multiselection contract).
    On a pristine session with a [batch_plan], delegates to the plan —
    bit-identical I/Os to the historical batch path.  Otherwise streams the
    ranks through {!query}, reusing whatever refinement earlier queries
    already paid for. *)

(** {2 Checkpointing}

    Handles are live on-device vectors: a snapshot is only meaningful inside
    the process (and against the device family) that created it.  Treat the
    exposed representation as read-only — it is transparent so that callers
    (e.g. the serve state file) can serialize the payloads via
    {!Em.Vec.Oracle} and rebuild snapshots in a fresh process. *)

type 'a handle =
  | H_raw  (** the preserved input itself; pristine root only *)
  | H_unsorted of ('a * int) Em.Vec.t  (** position-tagged bucket *)
  | H_sorted of 'a Em.Vec.t  (** final sorted run *)

type 'a snapshot = {
  s_leaves : (int * int * 'a handle) list;
      (** [(lo, len, handle)] per leaf, in rank order; a partition of
          [0 .. n-1] *)
  s_queries : int;
  s_refine_ios : int;
  s_answer_ios : int;
  s_splits : int;
}

val snapshot : 'a t -> 'a snapshot
(** The session's current state as handles; costs no I/O (the tree skeleton
    is in memory, the payloads stay on the device). *)

val snapshot_words : 'a snapshot -> int
(** Serialized size charged by a save: [O(leaves + referenced blocks)]
    words, independent of [n]. *)

val enable_checkpoints : ?every_splits:int -> 'a t -> unit
(** Attach a checkpoint store (creating it on first use) and save a
    baseline immediately, so {!restore} is valid from this point on.  With
    [every_splits = k], additionally saves automatically: mid-refinement
    once [k] splits accumulate, and at the end of every query that refined
    the tree — so once a reply is emitted, the refinement it paid for is
    durable, and a crash between queries redoes nothing.  Without
    [every_splits] only explicit {!checkpoint} calls (and the baseline)
    save.
    @raise Invalid_argument if [every_splits < 1]. *)

val checkpoint : 'a t -> unit
(** Save the current snapshot now, creating the store if none is attached
    yet.  Charges [ceil(snapshot_words/B)] writes under a ["checkpoint"]
    phase, flushes write-back backends (durability point), and releases the
    vectors deferred since the previous save. *)

val checkpoint_store : 'a t -> 'a snapshot Em.Checkpoint.t option
(** The attached store, for crash/restore drivers and introspection
    ([Em.Checkpoint.saves]/[save_ios]/[loads]/[load_ios]). *)

val restore :
  ?batch_plan:(ranks:int Em.Vec.t -> 'a Em.Vec.t) ->
  ?prefetch:int ->
  ?every_splits:int ->
  ('a -> 'a -> int) ->
  'a Em.Ctx.t ->
  'a Em.Vec.t ->
  'a snapshot Em.Checkpoint.t ->
  'a t
(** [restore cmp ctx v store] rebuilds a session over the preserved input
    [v] from the store's saved snapshot, paying the metered resume read
    ([Em.Checkpoint.load], ["resume"] phase).  The restored session answers
    every query exactly as the lost one would have: same values, same leaf
    partition, same counters, and — because sorted runs and buckets are
    re-referenced, not rebuilt — the same subsequent query costs.  The
    restored session keeps checkpointing on the same [store] under the given
    [every_splits] policy.  In a fresh process, first rebuild the snapshot's
    vectors (e.g. from a serialized state file via {!Em.Vec.of_array}) and
    seed the store with {!Em.Checkpoint.install}.
    @raise Invalid_argument if the store is empty, the leaves do not
    partition [0 .. length v - 1], or a handle's length disagrees with its
    interval. *)

(** {2 Per-query I/O budget} *)

val set_io_budget : 'a t -> int option -> unit
(** Bound the metered I/Os any single query may spend ([None] = unlimited,
    the default).  The budget is checked between refinement steps (one
    distribution pass or one leaf sort each), so a query may overshoot by
    at most one step before aborting with
    [Em_error.Error (Budget_exceeded _)].  Aborted queries keep the
    refinement already paid for — monotone refinement means later queries
    still benefit — and account it in the session's [refine_ios].
    @raise Invalid_argument if the budget is [< 1]. *)

val summary : 'a t -> summary
val length : 'a t -> int

val intervals : 'a t -> (int * int * bool) list
(** Current leaf partition as [(lo, len, sorted)] triples in rank order
    ([lo] 0-based).  Successive calls refine monotonically: each new
    partition subdivides the previous one (never re-merges), and [sorted]
    never reverts to [false]. *)

val close : ?drop_cache:bool -> 'a t -> unit
(** Release every vector the session owns (the input is preserved).  With
    [~drop_cache:true] also evicts the family's buffer-pool pages
    ({!Em.Backend.Pool.drop_all}), so an idle closed session holds zero pool
    pages.  Idempotent; further queries raise [Invalid_argument]. *)
