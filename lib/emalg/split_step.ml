let log_src = Logs.Src.create "emalg.split" ~doc:"Distribution-sort split levels"

module Log = (val Logs.src_log log_src : Logs.LOG)

let default_target ctx ~n =
  let m = Em.Ctx.mem_capacity ctx in
  let base = Layout.big_load ctx in
  (* Target buckets around 2/3 of a leaf load, leaving room for the sampling
     fuzz, so stragglers that must recurse locally stay rare — but never
     exceed the single-pass distribution fanout when one pass can plausibly
     cover the input (a rare straggler recursion is cheaper than a whole
     extra pass over everything). *)
  let wanted = (((3 * n / 2) + base - 1) / base) + 1 in
  let single_pass =
    (* Conservative: the pivot array itself (up to M/8 words) will be charged
       while the writers are open. *)
    let b = Em.Ctx.block_size ctx in
    let free = m - ctx.Em.Ctx.stats.Em.Stats.mem_in_use in
    max 2 (min (Distribute.max_fanout ctx) ((free - b - (m / 8)) / b))
  in
  let wanted =
    if wanted > single_pass && n <= single_pass * base then single_pass else wanted
  in
  max 2 (min (Sample_splitters.max_k ctx) (min (max 2 (m / 8)) (max 2 wanted)))

let split ?(consume = true) cmp v ~target_buckets =
  let ctx = Em.Vec.ctx v in
  Layout.require_min_geometry ctx;
  let n = Em.Vec.length v in
  let k = max 2 target_buckets in
  if Sample_splitters.gap_bound ctx.Em.Ctx.params ~n ~k >= n then begin
    (* Sampling cannot certify progress: split at the exact median. *)
    Log.debug (fun m -> m "split: sampling bound useless at n=%d k=%d; exact-median fallback" n k);
    let median = Em_select.select cmp v ~rank:((n + 1) / 2) in
    let less, equal_count, greater = Distribute.three_way cmp v ~pivot:median in
    if equal_count <> 1 then
      invalid_arg "Split_step.split: duplicate keys (tag elements first)";
    if consume then Em.Vec.free v;
    let middle = Em.Writer.with_writer ctx (fun w -> Em.Writer.push w median) in
    [| less; middle; greater |]
  end
  else begin
    Log.debug (fun m -> m "split: n=%d into %d buckets" n k);
    let pivots = Sample_splitters.find cmp v ~k in
    Em.Ctx.with_words ctx (k - 1) (fun () ->
        Distribute.by_pivots_deep cmp ~pivots ~owned:consume v)
  end

(* One inline-tagged distribution pass: route each raw element, paired with
   its position, into the bucket its tagged value selects. *)
let distribute_tagging_pass cmp ~tagged_pivots pctx v =
  let tcmp = Order.tagged cmp in
  let nbuckets = Array.length tagged_pivots + 1 in
  let writers = Array.init nbuckets (fun _ -> Em.Writer.create pctx) in
  (match
     Em.Phase.with_label (Em.Vec.ctx v) "distribute" (fun () ->
         let pos = ref (-1) in
         Scan.iter
           (fun e ->
             incr pos;
             let pair = (e, !pos) in
             Em.Writer.push writers.(Distribute.bucket_index tcmp tagged_pivots pair) pair)
           v)
   with
  | () -> ()
  | exception e ->
      Array.iter Em.Writer.abandon writers;
      raise e);
  Array.map Em.Writer.finish writers

let split_tagging cmp v ~target_buckets =
  let ctx = Em.Vec.ctx v in
  Layout.require_min_geometry ctx;
  let n = Em.Vec.length v in
  let k = max 2 target_buckets in
  let tcmp = Order.tagged cmp in
  let pctx : ('a * int) Em.Ctx.t = Em.Ctx.linked ctx in
  if Sample_splitters.gap_bound ctx.Em.Ctx.params ~n ~k >= n then begin
    (* Degenerate geometry: materialise the tagged copy and take the
       distinct-key path (which falls back to an exact median split). *)
    Log.debug (fun m -> m "split_tagging: degenerate geometry at n=%d k=%d" n k);
    let tv = Scan.mapi_into pctx (fun i e -> (e, i)) v in
    split tcmp tv ~target_buckets
  end
  else begin
    Log.debug (fun m -> m "split_tagging: n=%d into %d buckets" n k);
    let pivots = Sample_splitters.find_tagging cmp v ~k in
    Em.Ctx.with_words ctx (k - 1) (fun () ->
        let fanout =
          let m = Em.Ctx.mem_capacity ctx and b = Em.Ctx.block_size ctx in
          let free = m - ctx.Em.Ctx.stats.Em.Stats.mem_in_use in
          max 2 (min (Distribute.max_fanout ctx) ((free - b) / b))
        in
        if k <= fanout then distribute_tagging_pass cmp ~tagged_pivots:pivots pctx v
        else begin
          (* Inline pass into <= fanout super-buckets of consecutive target
             buckets, then finish each super-bucket on the tagged pairs. *)
          let stride = (k + fanout - 1) / fanout in
          let nsuper_pivots =
            (k / stride) - (if k mod stride = 0 then 1 else 0)
          in
          let super_pivots =
            Array.init nsuper_pivots (fun j -> pivots.(((j + 1) * stride) - 1))
          in
          let super = distribute_tagging_pass cmp ~tagged_pivots:super_pivots pctx v in
          let parts =
            Array.mapi
              (fun j sub ->
                let lo = j * stride in
                let hi = min (lo + stride) k in
                let sub_pivots = Array.sub pivots lo (hi - 1 - lo) in
                Distribute.by_pivots_deep tcmp ~pivots:sub_pivots ~owned:true sub)
              super
          in
          Array.concat (Array.to_list parts)
        end)
  end
