(* Streams that are consumed in full run with [prefetch = D - 1] readers and
   [write_behind = D - 1] writers, so a D-disk machine overlaps their block
   I/Os into ~N/(DB) rounds.  [prefix] stops early and stays unbuffered:
   read-ahead past the cut-off would read blocks a single-disk run never
   touches, breaking the D-invariance of per-block counts. *)

let read_ahead v = Em.Ctx.disks (Em.Vec.ctx v) - 1
let behind ctx = Em.Ctx.disks ctx - 1

(* Canonical optional-argument convention (see DESIGN.md): entry points take
   [?prefetch] (reader look-ahead, default [D - 1]) before the required
   arguments; producers pair it with an implicit [write_behind = D - 1]. *)
let ahead ?prefetch v = match prefetch with Some p -> p | None -> read_ahead v

let iter ?prefetch f v =
  Em.Reader.with_reader ~prefetch:(ahead ?prefetch v) v (fun r ->
      while Em.Reader.has_next r do
        f (Em.Reader.next r)
      done)

let fold ?prefetch f init v =
  let acc = ref init in
  iter ?prefetch (fun e -> acc := f !acc e) v;
  !acc

let map_into ?prefetch ctx f v =
  Em.Writer.with_writer ~write_behind:(behind ctx) ctx (fun w ->
      iter ?prefetch (fun e -> Em.Writer.push w (f e)) v)

let mapi_into ?prefetch ctx f v =
  let i = ref 0 in
  Em.Writer.with_writer ~write_behind:(behind ctx) ctx (fun w ->
      iter ?prefetch
        (fun e ->
          Em.Writer.push w (f !i e);
          incr i)
        v)

let copy ?prefetch v = map_into ?prefetch (Em.Vec.ctx v) (fun e -> e) v

let filter keep v =
  let ctx = Em.Vec.ctx v in
  Em.Writer.with_writer ~write_behind:(behind ctx) ctx (fun w ->
      iter (fun e -> if keep e then Em.Writer.push w e) v)

let append w v = iter (Em.Writer.push w) v

let prefix v count =
  if count < 0 then invalid_arg "Scan.prefix: negative count";
  let ctx = Em.Vec.ctx v in
  Em.Writer.with_writer ctx (fun w ->
      Em.Reader.with_reader v (fun r ->
          let remaining = ref (min count (Em.Vec.length v)) in
          while !remaining > 0 do
            Em.Writer.push w (Em.Reader.next r);
            decr remaining
          done))
let rank_of cmp v x = fold (fun acc e -> if cmp e x <= 0 then acc + 1 else acc) 0 v
let count p v = fold (fun acc e -> if p e then acc + 1 else acc) 0 v

let chunks ?prefetch ~size f v =
  if size < 1 then invalid_arg "Scan.chunks: size must be >= 1";
  let ctx = Em.Vec.ctx v in
  Em.Reader.with_reader ~prefetch:(ahead ?prefetch v) v (fun r ->
      while Em.Reader.has_next r do
        let load = Em.Reader.take r size in
        Em.Ctx.with_words ctx (Array.length load) (fun () -> f load)
      done)

(* Spill an array block-directly rather than through a [Writer]: the payload
   slices come straight out of [a] (which the caller has charged), so whole
   groups of D blocks can be written in one scheduling window without any
   queue memory.  Each group allocates its ids first and then writes them —
   at D = 1 the group size is 1, reproducing the writer's strict alloc/write
   interleave (same ids, same order, same costs), and the transient [B]-word
   staging charge mirrors the writer's lifetime buffer. *)
let vec_of_array_io ctx a =
  let b = Em.Ctx.block_size ctx in
  let d = Em.Ctx.disks ctx in
  let n = Array.length a in
  let nblocks = (n + b - 1) / b in
  let dev = ctx.Em.Ctx.dev in
  Em.Ctx.with_words ctx b (fun () ->
      let ids = Array.make (max 1 nblocks) (-1) in
      (try
         let written = ref 0 in
         while !written < nblocks do
           let group = min d (nblocks - !written) in
           for k = 0 to group - 1 do
             ids.(!written + k) <- Em.Device.alloc dev
           done;
           let write_group () =
             for k = 0 to group - 1 do
               let bi = !written + k in
               let payload = Array.sub a (bi * b) (min b (n - (bi * b))) in
               Em.Resilient.write dev ids.(bi) payload
             done
           in
           if group > 1 then Em.Ctx.io_window ctx write_group else write_group ();
           written := !written + group
         done
       with e ->
         Array.iter (fun id -> if id >= 0 then Em.Device.free dev id) ids;
         raise e);
      Em.Vec.of_blocks ctx (Array.sub ids 0 nblocks) n)

(* Symmetric block-direct load: groups of D block reads per window, blitting
   into the destination the caller accounts for.  At D = 1 this is the same
   ascending one-block-at-a-time read sequence the buffered reader issued. *)
let array_of_vec_io v =
  match Em.Vec.length v with
  | 0 -> [||]
  | n ->
      let ctx = Em.Vec.ctx v in
      let b = Em.Ctx.block_size ctx in
      let d = Em.Ctx.disks ctx in
      let ids = Em.Vec.block_ids v in
      let nblocks = Array.length ids in
      let dev = ctx.Em.Ctx.dev in
      Em.Ctx.with_words ctx b (fun () ->
          let out = ref [||] in
          let read_block bi =
            let payload = Em.Resilient.read dev ids.(bi) in
            if !out = [||] && Array.length payload > 0 then
              out := Array.make n payload.(0);
            Array.blit payload 0 !out (bi * b) (Array.length payload)
          in
          let loaded = ref 0 in
          while !loaded < nblocks do
            let group = min d (nblocks - !loaded) in
            let base = !loaded in
            let read_group () =
              for k = 0 to group - 1 do
                read_block (base + k)
              done
            in
            if group > 1 then Em.Ctx.io_window ctx read_group else read_group ();
            loaded := !loaded + group
          done;
          !out)

let with_loaded v f =
  let ctx = Em.Vec.ctx v in
  Em.Ctx.with_words ctx (Em.Vec.length v) (fun () -> f (array_of_vec_io v))
