let run_formation cmp v =
  let ctx = Em.Vec.ctx v in
  Layout.require_min_geometry ctx;
  let load = Layout.load_size ctx ~reserved_blocks:2 in
  let runs = ref [] in
  Em.Phase.with_label ctx "run-formation" (fun () ->
      Scan.chunks ~size:load
        (fun chunk ->
          Mem_sort.sort cmp chunk;
          runs := Scan.vec_of_array_io ctx chunk :: !runs)
        v);
  List.rev !runs

let rec merge_passes cmp runs =
  match runs with
  | [] -> invalid_arg "External_sort.merge_passes: no runs"
  | [ single ] -> single
  | _ :: _ ->
      let ctx = Em.Vec.ctx (List.hd runs) in
      let fanout = Merge.max_fanout ctx in
      let rec split_at n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> split_at (n - 1) (x :: acc) rest
      in
      let rec one_pass acc = function
        | [] -> List.rev acc
        | runs ->
            (* Balance group sizes across the pass (ceil(n/groups) runs per
               merge rather than greedy fanout-sized groups).  The group
               {e count} — hence the pass count and the I/O count — is
               unchanged, but no merge sits at the exact fanout limit, so
               block buffers stay spare for the parallel-disk pipeline
               (forecast read-ahead and write-behind) inside each merge. *)
            let remaining = List.length runs in
            let groups = (remaining + fanout - 1) / fanout in
            let size = (remaining + groups - 1) / groups in
            let group, rest = split_at size [] runs in
            let merged = Em.Phase.with_label ctx "merge" (fun () -> Merge.merge cmp group) in
            List.iter Em.Vec.free group;
            one_pass (merged :: acc) rest
      in
      merge_passes cmp (one_pass [] runs)

let sort cmp v =
  let runs = run_formation cmp v in
  match runs with
  | [] -> Em.Vec.empty (Em.Vec.ctx v)
  | _ :: _ -> merge_passes cmp runs
