(** Crash-restartable algorithm drivers.

    A {!Fault.Crash} fault aborts a computation as {!Em_error.Crashed} and
    (conceptually) wipes RAM.  The generic {!drive} harness makes an
    algorithm survive this by structuring it as a state machine whose states
    are cheap, disk-handle-only values: after every completed step the state
    is persisted to a reliable {!Em.Checkpoint} slot, and on a crash the
    driver reloads the last slot and resumes — paying the checkpoint writes,
    the resume reads, and the partial work of the interrupted step, but
    never the work of completed steps.

    With [k] crashes the total I/O is therefore bounded by the crash-free
    cost plus the checkpoint overhead plus [k] times (one step's worth of
    I/O + one resume); the property tests assert exactly this bound.

    {!sort} is the restartable external sort (one formed run / one merged
    group per step).  The restartable multi-selection lives in
    [Core.Restartable], which layers on the algorithms of [lib/core]. *)

type ('s, 'r) step = Next of 's | Done of 'r

type 'r outcome = {
  result : ('r, Em.Em_error.t) result;
      (** [Ok] on success; [Error] for non-crash failures (retry exhaustion,
          corruption) or when [max_restarts] crashes were exceeded. *)
  restarts : int;  (** crashes survived *)
  saves : int;  (** checkpoint saves (one per completed step, plus init) *)
  loads : int;  (** checkpoint loads (one per restart) *)
  save_ios : int;  (** metered writes spent on checkpoints *)
  load_ios : int;  (** metered reads spent on resume *)
  max_step_ios : int;  (** largest I/O cost observed for a single step *)
}

val drive :
  'a Em.Ctx.t ->
  ?max_restarts:int ->
  init:'s ->
  words:('s -> int) ->
  step:('s -> ('s, 'r) step) ->
  unit ->
  'r outcome
(** Run the state machine to completion under crashes.  [words state] is the
    serialized size of [state] in words — checkpoint saves charge
    [ceil(words/B)] writes.  [step] must be {e restartable}: executing it
    again from the same state after a partial, crashed execution must be
    correct (all our steps only read checkpointed inputs and hand off
    freshly written blocks, so re-execution at worst re-does one step's
    I/O).  [max_restarts] (default 100) bounds how many crashes are survived
    before giving up with the crash as [Error].  Must bracket the whole
    computation: on a crash the driver wipes the memory ledger
    ({!Em.Stats.wipe_memory}), which assumes no live buffers outside the
    driver. *)

type 'a sort_state

val sort : ?max_restarts:int -> ('a -> 'a -> int) -> 'a Em.Vec.t -> 'a Em.Vec.t outcome
(** Restartable external merge sort over the same passes as
    {!External_sort.sort}: each formed run and each merged group is one
    checkpointed step.  The input vector is not consumed. *)
