(** One level of distribution-sort recursion: split a vector into value
    buckets with guaranteed progress.

    [split cmp v ~target_buckets] picks pivots with {!Sample_splitters},
    checks that the resulting bucket-size bound actually shrinks the input,
    and distributes (hierarchically if needed).  In the degenerate geometries
    where the sampling bound is useless (M barely above 4B with huge N), it
    falls back to an exact median split via {!Em_select}, which always
    halves.  The input must have pairwise-distinct keys (tag with positions
    if necessary) and by default is consumed (freed); pass [~consume:false]
    to preserve it — the caller then owns the free.  Preserving the input
    makes a failed split harmlessly repeatable (nothing of the input was
    lost on the unwind) and lets checkpointed sessions keep a saved snapshot
    referencing it valid until their next save ({!Online_select}).

    Returned buckets are in ascending value order; concatenating them is a
    permutation of the input.  Every bucket is strictly smaller than the
    input whenever the input has at least two elements. *)

val split :
  ?consume:bool ->
  ('a -> 'a -> int) ->
  'a Em.Vec.t ->
  target_buckets:int ->
  'a Em.Vec.t array

val split_tagging :
  ('a -> 'a -> int) -> 'a Em.Vec.t -> target_buckets:int -> ('a * int) Em.Vec.t array
(** First-level variant for raw inputs with possibly duplicate keys: tags
    each element with its position {e inline} during sampling and
    distribution (the tagged copy of the input is never written to disk,
    saving two scans), and returns buckets of (key, position) pairs that are
    pairwise distinct and ready for {!split}.  The input is {e preserved}. *)

val default_target : 'a Em.Ctx.t -> n:int -> int
(** A good [target_buckets] for level-by-level recursion: large enough that
    buckets fit a memory load when possible, capped at [M/8] so the pivot
    array stays a small fraction of memory, and never below 2. *)
