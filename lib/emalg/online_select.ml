(* Online multiselection sessions; see the interface for the structure.

   The tree refines lazily: a leaf is either the whole raw input (root
   before the first refining query), an owned bucket of (key, position)
   pairs from a distribution pass, or an owned sorted run.  Positions are
   attached on the way out of the raw input (Split_step.split_tagging) and
   stripped when a leaf is finally sorted, so duplicate keys resolve
   positionally exactly like the batch algorithms. *)

type query = Select of int | Quantile of float | Range of int * int

type 'a reply = {
  values : 'a array;
  cost : Em.Stats.delta;
  refine : Em.Stats.delta;
  answer_ios : int;
  splits : int;
}

type summary = {
  queries : int;
  refine_ios : int;
  answer_ios : int;
  splits : int;
  leaves : int;
  sorted_leaves : int;
}

type 'a leaf =
  | Raw  (* backed by the preserved input; root only *)
  | Unsorted of ('a * int) Em.Vec.t  (* owned, position-tagged *)
  | Sorted of 'a Em.Vec.t  (* owned, tags stripped *)

type 'a node = { lo : int; len : int; mutable state : 'a state }
and 'a state = Leaf of 'a leaf | Split of 'a node array

type 'a t = {
  cmp : 'a -> 'a -> int;
  ctx : 'a Em.Ctx.t;
  input : 'a Em.Vec.t;
  root : 'a node;
  batch_plan : (ranks:int Em.Vec.t -> 'a Em.Vec.t) option;
  prefetch : int option;
  mutable queries : int;
  mutable refine_ios : int;
  mutable answer_ios : int;
  mutable splits : int;
  mutable touched : bool;  (* has any query refined or read the tree? *)
  mutable closed : bool;
}

let open_session ?batch_plan ?prefetch cmp ctx v =
  if not (Em.Vec.ctx v == ctx) then
    invalid_arg "Online_select.open_session: vector does not live on ctx";
  Layout.require_min_geometry ctx;
  {
    cmp;
    ctx;
    input = v;
    root = { lo = 0; len = Em.Vec.length v; state = Leaf Raw };
    batch_plan;
    prefetch;
    queries = 0;
    refine_ios = 0;
    answer_ios = 0;
    splits = 0;
    touched = false;
    closed = false;
  }

let ensure_open t =
  if t.closed then invalid_arg "Online_select: session is closed"

let length t = t.root.len

(* ---- tree navigation ---- *)

let rec find_leaf node p =
  match node.state with
  | Leaf _ -> node
  | Split children ->
      (* Children partition [node.lo .. node.lo+len-1] in rank order; a
         linear probe is fine (fanout is Θ(M/B), all in memory). *)
      let rec probe i =
        let c = children.(i) in
        if p < c.lo + c.len then c else probe (i + 1)
      in
      find_leaf (probe 0) p

let fold_leaves t f init =
  let rec go acc node =
    match node.state with
    | Leaf st -> f acc node st
    | Split children -> Array.fold_left go acc children
  in
  go init t.root

(* ---- refinement ---- *)

(* Replace a leaf by the children a split step produced, assigning rank
   offsets cumulatively.  Buckets are in ascending value order and their
   concatenation is a permutation of the leaf, so child [lo]s are exact
   global ranks.  This only ever subdivides — the refinement invariant. *)
let adopt_buckets t node buckets =
  let offs = ref node.lo in
  let children =
    Array.map
      (fun b ->
        let len = Em.Vec.length b in
        let child = { lo = !offs; len; state = Leaf (Unsorted b) } in
        offs := !offs + len;
        child)
      buckets
  in
  if !offs <> node.lo + node.len then
    invalid_arg "Online_select: internal error (split lost elements)";
  node.state <- Split children;
  t.splits <- t.splits + 1

(* Sort the whole (small) raw input in one memory load.  The stable sort
   gives positional tie-breaking without materialising tags. *)
let sort_raw t node =
  let sorted =
    Scan.with_loaded t.input (fun a ->
        Mem_sort.sort t.cmp a;
        Scan.vec_of_array_io t.ctx a)
  in
  node.state <- Leaf (Sorted sorted)

let split_raw t node =
  let buckets =
    Split_step.split_tagging t.cmp t.input
      ~target_buckets:(Split_step.default_target t.ctx ~n:node.len)
  in
  adopt_buckets t node buckets

(* Load, sort and strip a memory-sized pair leaf.  The pairs are charged by
   [with_loaded]; the stripped keys stream out through a writer (one block
   buffer), so the peak is [len + O(B)] words — inside the big-load
   reservation. *)
let sort_unsorted t node tv =
  let tcmp = Order.tagged t.cmp in
  let sorted =
    Scan.with_loaded tv (fun pairs ->
        Mem_sort.sort tcmp pairs;
        Em.Writer.with_writer
          ~write_behind:(Em.Ctx.disks t.ctx - 1)
          t.ctx
          (fun w -> Array.iter (fun (x, _) -> Em.Writer.push w x) pairs))
  in
  Em.Vec.free tv;
  node.state <- Leaf (Sorted sorted)

let split_unsorted t node tv =
  let tcmp = Order.tagged t.cmp in
  let buckets =
    (* [split] consumes (frees) [tv]; pairs are pairwise distinct. *)
    Split_step.split tcmp tv
      ~target_buckets:(Split_step.default_target t.ctx ~n:node.len)
  in
  adopt_buckets t node buckets

(* Refine until the leaf containing rank position [p] (0-based) is a sorted
   run, and return that leaf.  Each iteration strictly shrinks the interval
   containing [p] (Split_step guarantees progress), so this terminates. *)
let rec refine_to t p =
  let node = find_leaf t.root p in
  match node.state with
  | Leaf (Sorted _) -> node
  | Leaf Raw ->
      if node.len <= Layout.big_load t.ctx then sort_raw t node
      else split_raw t node;
      refine_to t p
  | Leaf (Unsorted tv) ->
      if Em.Vec.length tv <= Layout.big_load t.ctx then sort_unsorted t node tv
      else split_unsorted t node tv;
      refine_to t p
  | Split _ -> refine_to t p (* unreachable: find_leaf returns leaves *)

let rec refine_span t p p1 =
  if p <= p1 then begin
    let node = refine_to t p in
    refine_span t (node.lo + node.len) p1
  end

(* ---- answering (post-refinement: every touched leaf is sorted) ---- *)

let sorted_run t p =
  let node = find_leaf t.root p in
  match node.state with
  | Leaf (Sorted sv) -> (node, sv)
  | _ -> invalid_arg "Online_select: internal error (leaf not refined)"

let answer_select t p =
  let node, sv = sorted_run t p in
  Em.Vec.get_io sv (p - node.lo)

(* Gather ranks [p0 .. p1] by walking the sorted leaves and reading each
   touched block once.  The result array is charged while assembled. *)
let answer_range t p0 p1 =
  let count = p1 - p0 + 1 in
  let b = Em.Ctx.block_size t.ctx in
  Em.Ctx.with_words t.ctx count (fun () ->
      let out = ref [||] in
      let p = ref p0 in
      while !p <= p1 do
        let node, sv = sorted_run t !p in
        let li0 = !p - node.lo in
        let li1 = min p1 (node.lo + node.len - 1) - node.lo in
        for bi = li0 / b to li1 / b do
          let payload = Em.Vec.block_io sv bi in
          if !out = [||] then out := Array.make count payload.(0);
          let lo = max li0 (bi * b) in
          let hi = min li1 ((bi * b) + Array.length payload - 1) in
          for li = lo to hi do
            !out.(node.lo + li - p0) <- payload.(li - (bi * b))
          done
        done;
        p := node.lo + node.len
      done;
      !out)

(* ---- queries ---- *)

let rank_of_quantile t phi =
  if not (phi > 0. && phi <= 1.) then
    invalid_arg "Online_select: quantile must satisfy 0 < phi <= 1";
  max 1 (int_of_float (Float.ceil (phi *. float_of_int (length t))))

let check_rank t k =
  if k < 1 || k > length t then
    invalid_arg "Online_select: rank out of range"

let query t q =
  ensure_open t;
  let stats = t.ctx.Em.Ctx.stats in
  let snap = Em.Stats.snapshot stats in
  let splits0 = t.splits in
  let values, refine =
    Em.Phase.with_label t.ctx "online_select" (fun () ->
        let answer_one p =
          Em.Phase.with_label t.ctx "refine" (fun () -> ignore (refine_to t p));
          let refine = Em.Stats.delta stats snap in
          let v = Em.Phase.with_label t.ctx "answer" (fun () -> answer_select t p) in
          ([| v |], refine)
        in
        match q with
        | Select k ->
            check_rank t k;
            answer_one (k - 1)
        | Quantile phi -> answer_one (rank_of_quantile t phi - 1)
        | Range (a, bnd) ->
            check_rank t a;
            check_rank t bnd;
            if bnd < a then invalid_arg "Online_select: empty range";
            if bnd - a + 1 > Layout.half_load t.ctx then
              invalid_arg "Online_select: range exceeds a half-memory load";
            Em.Phase.with_label t.ctx "refine" (fun () ->
                refine_span t (a - 1) (bnd - 1));
            let refine = Em.Stats.delta stats snap in
            let vs =
              Em.Phase.with_label t.ctx "answer" (fun () ->
                  answer_range t (a - 1) (bnd - 1))
            in
            (vs, refine))
  in
  let cost = Em.Stats.delta stats snap in
  let answer_ios = Em.Stats.delta_ios cost - Em.Stats.delta_ios refine in
  t.queries <- t.queries + 1;
  t.refine_ios <- t.refine_ios + Em.Stats.delta_ios refine;
  t.answer_ios <- t.answer_ios + answer_ios;
  t.touched <- true;
  { values; cost; refine; answer_ios; splits = t.splits - splits0 }

let select t k = (query t (Select k)).values.(0)

let drain t ~ranks =
  ensure_open t;
  match t.batch_plan with
  | Some plan when not t.touched -> plan ~ranks
  | _ ->
      Em.Writer.with_writer t.ctx (fun w ->
          Scan.iter ?prefetch:t.prefetch
            (fun r -> Em.Writer.push w (select t r))
            ranks)

(* ---- introspection & teardown ---- *)

let summary t =
  let leaves, sorted_leaves =
    fold_leaves t
      (fun (l, s) _ st ->
        (l + 1, s + match st with Sorted _ -> 1 | Raw | Unsorted _ -> 0))
      (0, 0)
  in
  {
    queries = t.queries;
    refine_ios = t.refine_ios;
    answer_ios = t.answer_ios;
    splits = t.splits;
    leaves;
    sorted_leaves;
  }

let intervals t =
  List.rev
    (fold_leaves t
       (fun acc node st ->
         let sorted = match st with Sorted _ -> true | _ -> false in
         (node.lo, node.len, sorted) :: acc)
       [])

let close ?(drop_cache = false) t =
  if not t.closed then begin
    t.closed <- true;
    let rec free_node node =
      match node.state with
      | Leaf Raw -> ()
      | Leaf (Unsorted tv) -> Em.Vec.free tv
      | Leaf (Sorted sv) -> Em.Vec.free sv
      | Split children -> Array.iter free_node children
    in
    free_node t.root;
    if drop_cache then
      match Em.Ctx.backend_pool t.ctx with
      | Some pool -> Em.Backend.Pool.drop_all pool
      | None -> ()
  end
