(* Online multiselection sessions; see the interface for the structure.

   The tree refines lazily: a leaf is either the whole raw input (root
   before the first refining query), an owned bucket of (key, position)
   pairs from a distribution pass, or an owned sorted run.  Positions are
   attached on the way out of the raw input (Split_step.split_tagging) and
   stripped when a leaf is finally sorted, so duplicate keys resolve
   positionally exactly like the batch algorithms.

   Crash-survivability: because refinement is monotone (leaves only split,
   sorted runs are final, the input is preserved), the whole session state
   is a flat list of leaf handles plus four counters — a [snapshot].  A
   snapshot saved through [Em.Checkpoint] stays valid as long as every
   vector it references stays allocated, so while a checkpoint store is
   attached the session defers the frees refinement would normally do
   ([pending_free]) until the *next* save, at which point the store no
   longer references them.  A crash between saves therefore loses at most
   the refinement work since the last save (orphaning its blocks, like
   [Restart.drive]'s crashed steps), never the saved tree. *)

type query = Select of int | Quantile of float | Range of int * int

type 'a reply = {
  values : 'a array;
  cost : Em.Stats.delta;
  refine : Em.Stats.delta;
  answer_ios : int;
  splits : int;
}

type summary = {
  queries : int;
  refine_ios : int;
  answer_ios : int;
  splits : int;
  leaves : int;
  sorted_leaves : int;
}

type 'a leaf =
  | Raw  (* backed by the preserved input; root only *)
  | Unsorted of ('a * int) Em.Vec.t  (* owned, position-tagged *)
  | Sorted of 'a Em.Vec.t  (* owned, tags stripped *)

type 'a node = { lo : int; len : int; mutable state : 'a state }
and 'a state = Leaf of 'a leaf | Split of 'a node array

type 'a handle =
  | H_raw
  | H_unsorted of ('a * int) Em.Vec.t
  | H_sorted of 'a Em.Vec.t

type 'a snapshot = {
  s_leaves : (int * int * 'a handle) list;
  s_queries : int;
  s_refine_ios : int;
  s_answer_ios : int;
  s_splits : int;
}

type 'a t = {
  cmp : 'a -> 'a -> int;
  ctx : 'a Em.Ctx.t;
  input : 'a Em.Vec.t;
  root : 'a node;
  batch_plan : (ranks:int Em.Vec.t -> 'a Em.Vec.t) option;
  prefetch : int option;
  mutable queries : int;
  mutable refine_ios : int;
  mutable answer_ios : int;
  mutable splits : int;
  mutable touched : bool;  (* has any query refined or read the tree? *)
  mutable closed : bool;
  (* checkpointing *)
  mutable store : 'a snapshot Em.Checkpoint.t option;
  mutable every_splits : int option;  (* automatic-save policy *)
  mutable splits_since_save : int;
  mutable dirty_since_save : bool;  (* any refinement since the last save? *)
  mutable pending_free : (unit -> unit) list;
  (* per-query I/O budget *)
  mutable budget : int option;
  mutable budget_base : Em.Stats.snapshot option;
}

let make_session ?batch_plan ?prefetch ?store ?every_splits cmp ctx v root
    ~queries ~refine_ios ~answer_ios ~splits ~touched =
  (match every_splits with
  | Some k when k < 1 -> invalid_arg "Online_select: every_splits must be >= 1"
  | _ -> ());
  {
    cmp;
    ctx;
    input = v;
    root;
    batch_plan;
    prefetch;
    queries;
    refine_ios;
    answer_ios;
    splits;
    touched;
    closed = false;
    store;
    every_splits;
    splits_since_save = 0;
    dirty_since_save = false;
    pending_free = [];
    budget = None;
    budget_base = None;
  }

let open_session ?batch_plan ?prefetch cmp ctx v =
  if not (Em.Vec.ctx v == ctx) then
    invalid_arg "Online_select.open_session: vector does not live on ctx";
  Layout.require_min_geometry ctx;
  make_session ?batch_plan ?prefetch cmp ctx v
    { lo = 0; len = Em.Vec.length v; state = Leaf Raw }
    ~queries:0 ~refine_ios:0 ~answer_ios:0 ~splits:0 ~touched:false

let ensure_open t =
  if t.closed then invalid_arg "Online_select: session is closed"

let length t = t.root.len

(* ---- tree navigation ---- *)

let rec find_leaf node p =
  match node.state with
  | Leaf _ -> node
  | Split children ->
      (* Children partition [node.lo .. node.lo+len-1] in rank order; a
         linear probe is fine (fanout is Θ(M/B), all in memory). *)
      let rec probe i =
        let c = children.(i) in
        if p < c.lo + c.len then c else probe (i + 1)
      in
      find_leaf (probe 0) p

let fold_leaves t f init =
  let rec go acc node =
    match node.state with
    | Leaf st -> f acc node st
    | Split children -> Array.fold_left go acc children
  in
  go init t.root

(* ---- checkpointing ---- *)

let snapshot t =
  ensure_open t;
  let leaves =
    List.rev
      (fold_leaves t
         (fun acc node st ->
           let h =
             match st with
             | Raw -> H_raw
             | Unsorted tv -> H_unsorted tv
             | Sorted sv -> H_sorted sv
           in
           (node.lo, node.len, h) :: acc)
         [])
  in
  {
    s_leaves = leaves;
    s_queries = t.queries;
    s_refine_ios = t.refine_ios;
    s_answer_ios = t.answer_ios;
    s_splits = t.splits;
  }

(* Serialized size of a snapshot in words: handles only — per leaf its
   bounds/kind plus one word per referenced block id, plus the counters.
   Bulk data is never written; its cost was already paid on the device. *)
let snapshot_words s =
  let handle_blocks = function
    | H_raw -> 0
    | H_unsorted tv -> Em.Vec.num_blocks tv
    | H_sorted sv -> Em.Vec.num_blocks sv
  in
  List.fold_left (fun acc (_, _, h) -> acc + 3 + handle_blocks h) 5 s.s_leaves

(* While a checkpoint store is attached, its saved snapshot references the
   pre-refinement tree, so vectors refinement replaces must outlive the next
   save; without a store, free immediately (the historical behaviour — the
   free order stays bit-identical for golden runs). *)
let defer_free t f =
  match t.store with None -> f () | Some _ -> t.pending_free <- f :: t.pending_free

let flush_pending t =
  let fs = t.pending_free in
  t.pending_free <- [];
  List.iter (fun f -> f ()) fs

let checkpoint t =
  ensure_open t;
  let store =
    match t.store with
    | Some s -> s
    | None ->
        let s = Em.Checkpoint.create t.ctx in
        t.store <- Some s;
        s
  in
  let snap = snapshot t in
  Em.Checkpoint.save store ~words:(snapshot_words snap) snap;
  (* Make the save a real durability point even on write-back backends: the
     buffer pool's dirty pages and any file backend are flushed (no counted
     I/O — durability is outside the Aggarwal–Vitter model). *)
  Em.Ctx.flush t.ctx;
  (* The fresh snapshot references only the current tree, so everything
     orphaned since the previous save can finally go. *)
  flush_pending t;
  t.splits_since_save <- 0;
  t.dirty_since_save <- false

let enable_checkpoints ?every_splits t =
  ensure_open t;
  (match every_splits with
  | Some k when k < 1 -> invalid_arg "Online_select: every_splits must be >= 1"
  | _ -> ());
  t.every_splits <- every_splits;
  (* Establish a restorable baseline immediately: restore is valid from the
     moment checkpointing is enabled. *)
  checkpoint t

let checkpoint_store t = t.store

let restore ?batch_plan ?prefetch ?every_splits cmp ctx v store =
  if not (Em.Vec.ctx v == ctx) then
    invalid_arg "Online_select.restore: vector does not live on ctx";
  Layout.require_min_geometry ctx;
  match Em.Checkpoint.load store with
  | None -> invalid_arg "Online_select.restore: empty checkpoint store"
  | Some snap ->
      let n = Em.Vec.length v in
      (* The handles must partition [0, n) in rank order and carry payloads
         of matching length; a raw leaf can only be the pristine root. *)
      let expect = ref 0 in
      List.iter
        (fun (lo, len, h) ->
          if lo <> !expect || len <= 0 then
            invalid_arg "Online_select.restore: leaves do not partition the input";
          (match h with
          | H_raw ->
              if not (lo = 0 && len = n) then
                invalid_arg "Online_select.restore: raw leaf must span the input"
          | H_unsorted tv ->
              if Em.Vec.length tv <> len then
                invalid_arg "Online_select.restore: handle length mismatch"
          | H_sorted sv ->
              if Em.Vec.length sv <> len then
                invalid_arg "Online_select.restore: handle length mismatch");
          expect := !expect + len)
        snap.s_leaves;
      if !expect <> n then
        invalid_arg "Online_select.restore: leaves do not partition the input";
      let leaf_of_handle = function
        | H_raw -> Raw
        | H_unsorted tv -> Unsorted tv
        | H_sorted sv -> Sorted sv
      in
      let root =
        match snap.s_leaves with
        | [ (_, _, h) ] -> { lo = 0; len = n; state = Leaf (leaf_of_handle h) }
        | leaves ->
            (* One flat level is enough: [find_leaf] only needs a partition
               in rank order, not the historical split hierarchy. *)
            let children =
              Array.of_list
                (List.map
                   (fun (lo, len, h) -> { lo; len; state = Leaf (leaf_of_handle h) })
                   leaves)
            in
            { lo = 0; len = n; state = Split children }
      in
      let pristine =
        match snap.s_leaves with [ (_, _, H_raw) ] -> true | _ -> false
      in
      make_session ?batch_plan ?prefetch ~store ?every_splits cmp ctx v root
        ~queries:snap.s_queries ~refine_ios:snap.s_refine_ios
        ~answer_ios:snap.s_answer_ios ~splits:snap.s_splits
        ~touched:(snap.s_queries > 0 || not pristine)

(* ---- per-query I/O budget ---- *)

let set_io_budget t budget =
  (match budget with
  | Some b when b < 1 -> invalid_arg "Online_select: io budget must be >= 1"
  | _ -> ());
  t.budget <- budget

(* Checked between refinement steps (each step = one distribution pass or
   one leaf sort), so a single step can overshoot before the abort lands;
   completed steps are kept — monotone refinement means the aborted query's
   work still benefits every later query. *)
let check_budget t =
  match (t.budget, t.budget_base) with
  | Some budget, Some base ->
      let spent = Em.Stats.ios_since t.ctx.Em.Ctx.stats base in
      if spent > budget then
        Em.Em_error.raise_error (Em.Em_error.Budget_exceeded { budget; spent })
  | _ -> ()

(* ---- refinement ---- *)

(* Replace a leaf by the children a split step produced, assigning rank
   offsets cumulatively.  Buckets are in ascending value order and their
   concatenation is a permutation of the leaf, so child [lo]s are exact
   global ranks.  This only ever subdivides — the refinement invariant. *)
let adopt_buckets t node buckets =
  let offs = ref node.lo in
  let children =
    Array.map
      (fun b ->
        let len = Em.Vec.length b in
        let child = { lo = !offs; len; state = Leaf (Unsorted b) } in
        offs := !offs + len;
        child)
      buckets
  in
  if !offs <> node.lo + node.len then
    invalid_arg "Online_select: internal error (split lost elements)";
  node.state <- Split children;
  t.splits <- t.splits + 1;
  t.splits_since_save <- t.splits_since_save + 1;
  t.dirty_since_save <- true;
  (* An aborted (faulted / over-budget) query that got this far has still
     refined the tree: the session is no longer pristine. *)
  t.touched <- true

(* Sort the whole (small) raw input in one memory load.  The stable sort
   gives positional tie-breaking without materialising tags. *)
let sort_raw t node =
  let sorted =
    Scan.with_loaded t.input (fun a ->
        Mem_sort.sort t.cmp a;
        Scan.vec_of_array_io t.ctx a)
  in
  node.state <- Leaf (Sorted sorted);
  t.dirty_since_save <- true;
  t.touched <- true

let split_raw t node =
  let buckets =
    Split_step.split_tagging t.cmp t.input
      ~target_buckets:(Split_step.default_target t.ctx ~n:node.len)
  in
  adopt_buckets t node buckets

(* Load, sort and strip a memory-sized pair leaf.  The pairs are charged by
   [with_loaded]; the stripped keys stream out through a writer (one block
   buffer), so the peak is [len + O(B)] words — inside the big-load
   reservation. *)
let sort_unsorted t node tv =
  let tcmp = Order.tagged t.cmp in
  let sorted =
    Scan.with_loaded tv (fun pairs ->
        Mem_sort.sort tcmp pairs;
        Em.Writer.with_writer
          ~write_behind:(Em.Ctx.disks t.ctx - 1)
          t.ctx
          (fun w -> Array.iter (fun (x, _) -> Em.Writer.push w x) pairs))
  in
  defer_free t (fun () -> Em.Vec.free tv);
  node.state <- Leaf (Sorted sorted);
  t.dirty_since_save <- true;
  t.touched <- true

let split_unsorted t node tv =
  let tcmp = Order.tagged t.cmp in
  (* Without a checkpoint store [split] consumes (frees) [tv] exactly as it
     always did; with one, [tv] is preserved through the pass and freed at
     the next save (a crash mid-split or before that save restores a tree
     that still references it).  Pairs are pairwise distinct. *)
  let consume = t.store = None in
  let buckets =
    Split_step.split ~consume tcmp tv
      ~target_buckets:(Split_step.default_target t.ctx ~n:node.len)
  in
  if not consume then t.pending_free <- (fun () -> Em.Vec.free tv) :: t.pending_free;
  adopt_buckets t node buckets

(* Automatic checkpointing: with an every-k-splits policy armed, save as
   soon as k splits accumulate (bounding the in-flight loss of one long
   refining query). *)
let maybe_policy_save t =
  match (t.store, t.every_splits) with
  | Some _, Some k when t.splits_since_save >= k -> checkpoint t
  | _ -> ()

(* Refine until the leaf containing rank position [p] (0-based) is a sorted
   run, and return that leaf.  Each iteration strictly shrinks the interval
   containing [p] (Split_step guarantees progress), so this terminates. *)
let rec refine_to t p =
  let node = find_leaf t.root p in
  match node.state with
  | Leaf (Sorted _) -> node
  | Leaf Raw ->
      check_budget t;
      if node.len <= Layout.big_load t.ctx then sort_raw t node
      else split_raw t node;
      maybe_policy_save t;
      refine_to t p
  | Leaf (Unsorted tv) ->
      check_budget t;
      if Em.Vec.length tv <= Layout.big_load t.ctx then sort_unsorted t node tv
      else split_unsorted t node tv;
      maybe_policy_save t;
      refine_to t p
  | Split _ -> refine_to t p (* unreachable: find_leaf returns leaves *)

let rec refine_span t p p1 =
  if p <= p1 then begin
    let node = refine_to t p in
    refine_span t (node.lo + node.len) p1
  end

(* ---- answering (post-refinement: every touched leaf is sorted) ---- *)

let sorted_run t p =
  let node = find_leaf t.root p in
  match node.state with
  | Leaf (Sorted sv) -> (node, sv)
  | _ -> invalid_arg "Online_select: internal error (leaf not refined)"

let answer_select t p =
  let node, sv = sorted_run t p in
  Em.Vec.get_io sv (p - node.lo)

(* Gather ranks [p0 .. p1] by walking the sorted leaves and reading each
   touched block once.  The result array is charged while assembled. *)
let answer_range t p0 p1 =
  let count = p1 - p0 + 1 in
  let b = Em.Ctx.block_size t.ctx in
  Em.Ctx.with_words t.ctx count (fun () ->
      let out = ref [||] in
      let p = ref p0 in
      while !p <= p1 do
        let node, sv = sorted_run t !p in
        let li0 = !p - node.lo in
        let li1 = min p1 (node.lo + node.len - 1) - node.lo in
        for bi = li0 / b to li1 / b do
          let payload = Em.Vec.block_io sv bi in
          if !out = [||] then out := Array.make count payload.(0);
          let lo = max li0 (bi * b) in
          let hi = min li1 ((bi * b) + Array.length payload - 1) in
          for li = lo to hi do
            !out.(node.lo + li - p0) <- payload.(li - (bi * b))
          done
        done;
        p := node.lo + node.len
      done;
      !out)

(* ---- queries ---- *)

let rank_of_quantile t phi =
  if not (phi > 0. && phi <= 1.) then
    invalid_arg "Online_select: quantile must satisfy 0 < phi <= 1";
  max 1 (int_of_float (Float.ceil (phi *. float_of_int (length t))))

let check_rank t k =
  if k < 1 || k > length t then
    invalid_arg "Online_select: rank out of range"

let query t q =
  ensure_open t;
  let stats = t.ctx.Em.Ctx.stats in
  let snap = Em.Stats.snapshot stats in
  t.budget_base <- Some snap;
  let splits0 = t.splits in
  match
    Em.Phase.with_label t.ctx "online_select" (fun () ->
        let answer_one p =
          Em.Phase.with_label t.ctx "refine" (fun () -> ignore (refine_to t p));
          let refine = Em.Stats.delta stats snap in
          let v = Em.Phase.with_label t.ctx "answer" (fun () -> answer_select t p) in
          ([| v |], refine)
        in
        match q with
        | Select k ->
            check_rank t k;
            answer_one (k - 1)
        | Quantile phi -> answer_one (rank_of_quantile t phi - 1)
        | Range (a, bnd) ->
            check_rank t a;
            check_rank t bnd;
            if bnd < a then invalid_arg "Online_select: empty range";
            if bnd - a + 1 > Layout.half_load t.ctx then
              invalid_arg "Online_select: range exceeds a half-memory load";
            Em.Phase.with_label t.ctx "refine" (fun () ->
                refine_span t (a - 1) (bnd - 1));
            let refine = Em.Stats.delta stats snap in
            let vs =
              Em.Phase.with_label t.ctx "answer" (fun () ->
                  answer_range t (a - 1) (bnd - 1))
            in
            (vs, refine))
  with
  | values, refine ->
      t.budget_base <- None;
      let pre_save = Em.Stats.delta stats snap in
      let answer_ios = Em.Stats.delta_ios pre_save - Em.Stats.delta_ios refine in
      t.queries <- t.queries + 1;
      t.refine_ios <- t.refine_ios + Em.Stats.delta_ios refine;
      t.answer_ios <- t.answer_ios + answer_ios;
      t.touched <- true;
      (* End-of-query durability: with the automatic policy armed, any
         refinement this query did is checkpointed before the reply is
         emitted — counters updated first, so the saved snapshot records the
         completed query and a crash between queries loses nothing.  The
         save's writes land in [cost] but in neither [refine] nor
         [answer_ios]; checkpoint totals live in the store's own meters. *)
      (match (t.store, t.every_splits) with
      | Some _, Some _ when t.dirty_since_save ->
          Em.Phase.with_label t.ctx "online_select" (fun () -> checkpoint t)
      | _ -> ());
      let cost = Em.Stats.delta stats snap in
      { values; cost; refine; answer_ios; splits = t.splits - splits0 }
  | exception e ->
      (* The paid-for partial work (monotone refinement) is kept and
         accounted as refinement; the query itself did not complete, so the
         query counter is untouched. *)
      t.budget_base <- None;
      let d = Em.Stats.delta stats snap in
      t.refine_ios <- t.refine_ios + Em.Stats.delta_ios d;
      raise e

let select t k = (query t (Select k)).values.(0)

let drain t ~ranks =
  ensure_open t;
  match t.batch_plan with
  | Some plan when not t.touched -> plan ~ranks
  | _ ->
      Em.Writer.with_writer t.ctx (fun w ->
          Scan.iter ?prefetch:t.prefetch
            (fun r -> Em.Writer.push w (select t r))
            ranks)

(* ---- introspection & teardown ---- *)

let summary t =
  let leaves, sorted_leaves =
    fold_leaves t
      (fun (l, s) _ st ->
        (l + 1, s + match st with Sorted _ -> 1 | Raw | Unsorted _ -> 0))
      (0, 0)
  in
  {
    queries = t.queries;
    refine_ios = t.refine_ios;
    answer_ios = t.answer_ios;
    splits = t.splits;
    leaves;
    sorted_leaves;
  }

let intervals t =
  List.rev
    (fold_leaves t
       (fun acc node st ->
         let sorted = match st with Sorted _ -> true | _ -> false in
         (node.lo, node.len, sorted) :: acc)
       [])

let close ?(drop_cache = false) t =
  if not t.closed then begin
    t.closed <- true;
    (* Deferred frees reference vectors no longer in the tree; they go too
       (a snapshot left in the store is invalidated by closing). *)
    flush_pending t;
    let rec free_node node =
      match node.state with
      | Leaf Raw -> ()
      | Leaf (Unsorted tv) -> Em.Vec.free tv
      | Leaf (Sorted sv) -> Em.Vec.free sv
      | Split children -> Array.iter free_node children
    in
    free_node t.root;
    if drop_cache then
      match Em.Ctx.backend_pool t.ctx with
      | Some pool -> Em.Backend.Pool.drop_all pool
      | None -> ()
  end
