let max_fanout ctx =
  let m = Em.Ctx.mem_capacity ctx and b = Em.Ctx.block_size ctx in
  max 1 ((m - b) / (b + 2))

let merge cmp vecs =
  match vecs with
  | [] -> invalid_arg "Merge.merge: no input runs"
  | first :: _ ->
      let ctx = Em.Vec.ctx first in
      let nruns = List.length vecs in
      if nruns > max_fanout ctx then
        invalid_arg "Merge.merge: too many runs for the memory budget";
      let d = Em.Ctx.disks ctx in
      (* Refills are batched by {e forecasting} (Vitter-Shriver): when run
         [i] faults, the runs the merge will drain next can ride the same
         scheduling window as [i]'s mandatory read.  Blocks stripe
         round-robin, so the window picks at most one block per disk — one
         parallel round when the budget lets every prefetch land.
         Read-ahead charges are opportunistic: a merge at the fanout limit
         has no spare budget and degrades to single-block refills.  The
         output writer symmetrically queues up to D - 1 filled blocks per
         drain window. *)
      let readers = Array.of_list (List.map Em.Reader.open_vec vecs) in
      let forecast_refill i =
        Em.Ctx.io_window ctx (fun () ->
            (* The faulting run's block is mandatory (it rides the reader's
               base charge, so it always succeeds). *)
            let taken = Array.make d false in
            (match Em.Reader.next_disk readers.(i) with
            | Some disk -> taken.(disk) <- true
            | None -> ());
            ignore (Em.Reader.prefetch_next readers.(i) : bool);
            (* Fill the window's remaining D - 1 slots with the blocks the
               merge will need soonest, one block per free disk.  Need-order
               is approximated by read-ahead depth (shallowest queue faults
               soonest) instead of comparing last-buffered keys: scheduling
               must not change the comparison count — work is D-invariant,
               only rounds compress.  Re-sweeping deepens each run's
               read-ahead — consecutive blocks stripe onto consecutive
               disks — so a low-fanout merge still fills its window from
               few runs. *)
            let order =
              Array.to_list readers
              |> List.mapi (fun j r -> (Em.Reader.buffered_blocks r, j))
              |> List.sort compare
            in
            let budget = ref (d - 1) in
            let progress = ref true in
            while !budget > 0 && !progress do
              progress := false;
              List.iter
                (fun (_, j) ->
                  if !budget > 0 then
                    match Em.Reader.next_disk readers.(j) with
                    | Some disk when not taken.(disk) ->
                        if Em.Reader.prefetch_next readers.(j) then begin
                          taken.(disk) <- true;
                          decr budget;
                          progress := true
                        end
                    | _ -> ())
                order
            done)
      in
      (* Ties break by run index, which makes the merge stable with respect
         to the run order (runs are formed and merged in input order). *)
      let heap_cmp (x, i) (y, j) =
        let c = cmp x y in
        if c <> 0 then c else Int.compare i j
      in
      let run () =
        Em.Ctx.with_words ctx (2 * nruns) (fun () ->
            let heap = Heap.create ~cmp:heap_cmp ~capacity:nruns in
            (* The writer opens before the heap pulls the first element, so
               every mandatory charge lands before the readers' opportunistic
               read-ahead starts nibbling at the spare budget. *)
            Em.Writer.with_writer ~write_behind:(d - 1) ctx (fun w ->
                (* Initial fill: every run faults on its first block, so
                   group those mandatory reads D to a window (each rides its
                   reader's base charge — no ledger pressure). *)
                let i = ref 0 in
                while !i < nruns do
                  let hi = min nruns (!i + d) in
                  Em.Ctx.io_window ctx (fun () ->
                      for j = !i to hi - 1 do
                        if Em.Reader.has_next readers.(j) then
                          Heap.push heap (Em.Reader.next readers.(j), j)
                      done);
                  i := hi
                done;
                while not (Heap.is_empty heap) do
                  let e, i = Heap.pop heap in
                  Em.Writer.push w e;
                  let r = readers.(i) in
                  if Em.Reader.has_next r then begin
                    if d > 1 && Em.Reader.pending_io r then forecast_refill i;
                    Heap.push heap (Em.Reader.next r, i)
                  end
                done))
      in
      (* [close] is idempotent, so closing on both paths is safe; without the
         exception arm a failed I/O would leak every reader's buffer words. *)
      (match run () with
      | out ->
          Array.iter Em.Reader.close readers;
          out
      | exception e ->
          Array.iter Em.Reader.close readers;
          raise e)
