let max_fanout ctx =
  let m = Em.Ctx.mem_capacity ctx and b = Em.Ctx.block_size ctx in
  max 1 ((m - b) / (b + 2))

let merge cmp vecs =
  match vecs with
  | [] -> invalid_arg "Merge.merge: no input runs"
  | first :: _ ->
      let ctx = Em.Vec.ctx first in
      let nruns = List.length vecs in
      if nruns > max_fanout ctx then
        invalid_arg "Merge.merge: too many runs for the memory budget";
      let readers = Array.of_list (List.map Em.Reader.open_vec vecs) in
      (* Ties break by run index, which makes the merge stable with respect
         to the run order (runs are formed and merged in input order). *)
      let heap_cmp (x, i) (y, j) =
        let c = cmp x y in
        if c <> 0 then c else Int.compare i j
      in
      let run () =
        Em.Ctx.with_words ctx (2 * nruns) (fun () ->
            let heap = Heap.create ~cmp:heap_cmp ~capacity:nruns in
            Array.iteri
              (fun i r -> if Em.Reader.has_next r then Heap.push heap (Em.Reader.next r, i))
              readers;
            Em.Writer.with_writer ctx (fun w ->
                while not (Heap.is_empty heap) do
                  let e, i = Heap.pop heap in
                  Em.Writer.push w e;
                  if Em.Reader.has_next readers.(i) then
                    Heap.push heap (Em.Reader.next readers.(i), i)
                done))
      in
      (* [close] is idempotent, so closing on both paths is safe; without the
         exception arm a failed I/O would leak every reader's buffer words. *)
      (match run () with
      | out ->
          Array.iter Em.Reader.close readers;
          out
      | exception e ->
          Array.iter Em.Reader.close readers;
          raise e)
