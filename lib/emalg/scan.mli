(** Linear-I/O scanning utilities over external vectors.

    Optional arguments follow the library-wide canonical order
    [?prefetch ... required args] (see DESIGN.md).  [?prefetch] is the
    reader look-ahead in blocks and defaults to [D - 1] so that full
    consumers overlap into ~[N/(DB)] rounds; pass [~prefetch:0] for strictly
    unbuffered scans.  The counted I/Os are identical either way — prefetch
    only changes round scheduling. *)

val copy : ?prefetch:int -> 'a Em.Vec.t -> 'a Em.Vec.t
(** Read and rewrite the vector: [2 * ceil(N/B)] I/Os. *)

val iter : ?prefetch:int -> ('a -> unit) -> 'a Em.Vec.t -> unit
val fold : ?prefetch:int -> ('acc -> 'a -> 'acc) -> 'acc -> 'a Em.Vec.t -> 'acc

val map_into : ?prefetch:int -> 'b Em.Ctx.t -> ('a -> 'b) -> 'a Em.Vec.t -> 'b Em.Vec.t
(** Map every element into a vector on a (possibly linked) context. *)

val mapi_into :
  ?prefetch:int -> 'b Em.Ctx.t -> (int -> 'a -> 'b) -> 'a Em.Vec.t -> 'b Em.Vec.t

val filter : ('a -> bool) -> 'a Em.Vec.t -> 'a Em.Vec.t

val append : 'a Em.Writer.t -> 'a Em.Vec.t -> unit
(** Stream the whole vector into an open writer. *)

val prefix : 'a Em.Vec.t -> int -> 'a Em.Vec.t
(** [prefix v count] copies the first [min count (length v)] elements into a
    fresh vector ([2 * ceil(count/B)] I/Os). *)

val rank_of : ('a -> 'a -> int) -> 'a Em.Vec.t -> 'a -> int
(** [rank_of cmp v x] counts the elements [<= x]: one scan. *)

val count : ('a -> bool) -> 'a Em.Vec.t -> int

val chunks : ?prefetch:int -> size:int -> ('a array -> unit) -> 'a Em.Vec.t -> unit
(** [chunks ~size f v] feeds [f] successive memory loads of at most [size]
    elements.  The load array is charged against the memory ledger for the
    duration of each call to [f]; the reader buffer adds one block. *)

val vec_of_array_io : 'a Em.Ctx.t -> 'a array -> 'a Em.Vec.t
(** Spill an in-memory array to disk, paying write I/Os (unlike
    {!Em.Vec.of_array}, which is reserved for free test set-up). *)

val array_of_vec_io : 'a Em.Vec.t -> 'a array
(** Load a whole vector into memory, paying read I/Os.  This function charges
    nothing itself; the caller accounts for the array, e.g. with
    {!Em.Ctx.with_words} or via {!with_loaded}. *)

val with_loaded : 'a Em.Vec.t -> ('a array -> 'b) -> 'b
(** Load a vector with read I/Os, charging its length to the memory ledger
    around the callback. *)
